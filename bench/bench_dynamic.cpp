/**
 * @file
 * Implementation of `awbsim --bench-dynamic` (driver/bench_dynamic.hpp):
 * the dynamic-graph streaming benchmark producing the tracked
 * BENCH_dynamic.json document. See DESIGN.md §12 for the churn model,
 * the slack-slot incremental CSR and the convergence-half-life
 * methodology the gates here enforce.
 */

#include "driver/bench_dynamic.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "accel/policy.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "driver/json.hpp"
#include "driver/scenario.hpp"
#include "dynamic/dynamic_runner.hpp"
#include "exec/workload_cache.hpp"
#include "graph/datasets.hpp"
#include "sparse/coo.hpp"
#include "sparse/convert.hpp"

namespace awb::driver {

namespace {

using dynamic::ChurnOp;
using dynamic::ChurnParams;
using dynamic::DeltaCsr;
using dynamic::DynamicFidelity;
using dynamic::DynamicOptions;
using dynamic::DynamicRunStats;
using dynamic::EdgeChurnStream;
using dynamic::EdgeEvent;

/** One dataset × policy point of the benchmark. */
struct DynamicPoint
{
    std::string dataset;
    std::string policy;
    Count epochs = 0;
    Cycle cycles = 0;       ///< summed carried-partition epoch cycles
    Count tasks = 0;
    Count rowsMoved = 0;
    Count rowsChanged = 0;
    Count halfLifeEpochs = -1;
    std::vector<double> drift;       ///< per-epoch carried/fresh - 1
    std::vector<Cycle> epochCycles;  ///< per-epoch carried cycles
    std::vector<Cycle> freshCycles;  ///< per-epoch fresh-tune cycles
    Count bytesTotal = 0;
    double wallMs = 0.0;
};

bool
sameRun(const DynamicRunStats &x, const DynamicRunStats &y)
{
    if (x.totalCycles != y.totalCycles || x.totalTasks != y.totalTasks ||
        x.rowsMoved != y.rowsMoved ||
        x.halfLifeEpochs != y.halfLifeEpochs ||
        x.traffic.total() != y.traffic.total() ||
        x.epochs.size() != y.epochs.size())
        return false;
    for (std::size_t e = 0; e < x.epochs.size(); ++e) {
        if (x.epochs[e].cycles != y.epochs[e].cycles ||
            x.epochs[e].freshCycles != y.epochs[e].freshCycles)
            return false;
    }
    return true;
}

/** Epoch boundaries are fidelity-independent: churn, per-row work and
 *  the boundary policy's migrations must agree between the cycle
 *  engine and the round-level model. */
bool
sameTrajectory(const DynamicRunStats &x, const DynamicRunStats &y)
{
    if (x.epochs.size() != y.epochs.size()) return false;
    for (std::size_t e = 0; e < x.epochs.size(); ++e) {
        const dynamic::DynamicEpoch &a = x.epochs[e];
        const dynamic::DynamicEpoch &b = y.epochs[e];
        if (a.inserts != b.inserts || a.deletes != b.deletes ||
            a.nnz != b.nnz || a.rowsChanged != b.rowsChanged ||
            a.rowsMoved != b.rowsMoved)
            return false;
    }
    return true;
}

/** Replay the dataset's churn schedule through a DeltaCsr and check the
 *  incremental matrix after *every* batch against a from-scratch CSR
 *  rebuild of the live edge set (DESIGN.md §12). */
bool
rebuildIdentical(const CscMatrix &initial, const ChurnParams &churn,
                 Count epochs, Count events_per_epoch)
{
    auto key = [](Index r, Index c) {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r))
                << 32U) |
               static_cast<std::uint32_t>(c);
    };
    EdgeChurnStream stream(initial, churn);
    DeltaCsr delta(initial);
    std::unordered_map<std::uint64_t, Value> live;
    const CsrMatrix seed = cscToCsr(initial);
    for (Index r = 0; r < seed.rows(); ++r) {
        for (Count p = seed.rowPtr()[static_cast<std::size_t>(r)];
             p < seed.rowPtr()[static_cast<std::size_t>(r) + 1]; ++p) {
            live[key(r, seed.colId()[static_cast<std::size_t>(p)])] =
                seed.val()[static_cast<std::size_t>(p)];
        }
    }
    for (Count e = 0; e < epochs; ++e) {
        std::vector<EdgeEvent> batch = stream.nextBatch(events_per_epoch);
        delta.apply(batch);
        for (const EdgeEvent &ev : batch) {
            if (ev.op == ChurnOp::Insert)
                live[key(ev.row, ev.col)] = ev.val;
            else
                live.erase(key(ev.row, ev.col));
        }
        CooMatrix coo(initial.rows(), initial.cols());
        for (const auto &[k, v] : live)
            coo.add(static_cast<Index>(k >> 32U),
                    static_cast<Index>(k & 0xffffffffU), v);
        coo.canonicalize();
        const CsrMatrix rebuilt = CsrMatrix::fromCoo(coo);
        const CsrMatrix inc = delta.toCsr();
        if (inc.rowPtr() != rebuilt.rowPtr() ||
            inc.colId() != rebuilt.colId() || inc.val() != rebuilt.val())
            return false;
    }
    return true;
}

} // namespace

int
runBenchDynamic(const BenchDynamicOptions &opts)
{
    std::vector<std::string> policies;
    for (const auto &p : opts.policies)
        policies.push_back(PolicyRegistry::instance().get(p).name);
    if (std::find(policies.begin(), policies.end(), "baseline") ==
        policies.end())
        policies.insert(policies.begin(), "baseline");

    ChurnParams churn;
    churn.insertFrac = opts.insertFrac;
    churn.seed = opts.seed;

    DynamicOptions dopts;
    dopts.epochs = opts.epochs;
    dopts.eventsPerEpoch = opts.eventsPerEpoch;
    dopts.denseCols = opts.denseCols;
    dopts.driftTolerance = opts.driftTolerance;
    dopts.fidelity = DynamicFidelity::Cycle;
    dopts.seed = opts.seed;

    bool deterministic = true;
    bool engines_identical = true;
    bool rebuild_identical = true;
    bool trajectory_ok = true;
    std::vector<DynamicPoint> points;

    Table t({"dataset", "design", "epochs", "cycles", "moved",
             "end drift", "half-life"});
    for (const auto &dataset : opts.datasets) {
        const DatasetSpec &spec = findDataset(dataset);
        const auto a_p = exec::cachedAdjacency(spec, opts.seed, opts.scale);
        const CscMatrix &a = *a_p;

        // Gate 3: the incremental matrix equals a from-scratch rebuild
        // after every batch (policy-independent, once per dataset).
        if (!rebuildIdentical(a, churn, opts.epochs, opts.eventsPerEpoch))
            rebuild_identical = false;

        for (const auto &policy : policies) {
            AccelConfig cfg =
                makePolicyConfig(policy, opts.pes, hopBase(spec));
            cfg.platform = opts.platform;
            cfg.engine = EngineKind::Event;

            auto t0 = std::chrono::steady_clock::now();
            DynamicRunStats ev = dynamic::runChurnGcn(cfg, a, churn, dopts);
            auto t1 = std::chrono::steady_clock::now();

            // Gate 1: a second event run must reproduce the first.
            DynamicRunStats again =
                dynamic::runChurnGcn(cfg, a, churn, dopts);
            if (!sameRun(ev, again)) deterministic = false;

            // Gate 2: the batched engine must match the event engine.
            AccelConfig bcfg = cfg;
            bcfg.engine = EngineKind::Batched;
            DynamicRunStats bat =
                dynamic::runChurnGcn(bcfg, a, churn, dopts);
            if (!sameRun(ev, bat)) engines_identical = false;

            // Gate 4: the round-level model walks the same epoch
            // trajectory (churn counts, work deltas, migrations).
            DynamicOptions mopts = dopts;
            mopts.fidelity = DynamicFidelity::Model;
            DynamicRunStats mod =
                dynamic::runChurnGcn(cfg, a, churn, mopts);
            if (!sameTrajectory(ev, mod)) trajectory_ok = false;

            DynamicPoint pt;
            pt.dataset = spec.name;
            pt.policy = policy;
            pt.epochs = static_cast<Count>(ev.epochs.size());
            pt.cycles = ev.totalCycles;
            pt.tasks = ev.totalTasks;
            pt.rowsMoved = ev.rowsMoved;
            pt.rowsChanged = ev.rowsChanged;
            pt.halfLifeEpochs = ev.halfLifeEpochs;
            for (const auto &e : ev.epochs) {
                pt.drift.push_back(e.drift);
                pt.epochCycles.push_back(e.cycles);
                pt.freshCycles.push_back(e.freshCycles);
            }
            pt.bytesTotal = ev.traffic.total();
            pt.wallMs =
                std::chrono::duration<double, std::milli>(t1 - t0).count();

            t.addRow({pt.dataset,
                      PolicyRegistry::instance().get(pt.policy).label,
                      std::to_string(pt.epochs),
                      humanCount(static_cast<double>(pt.cycles)),
                      std::to_string(pt.rowsMoved),
                      fixed(pt.drift.empty() ? 0.0 : pt.drift.back(), 3),
                      pt.halfLifeEpochs < 0
                          ? "never"
                          : std::to_string(pt.halfLifeEpochs)});
            points.push_back(std::move(pt));
        }
    }
    std::printf("%s", t.render().c_str());

    Json doc = Json::object();
    doc.set("schema", "awbsim-bench-dynamic-v1");
    doc.set("pes", opts.pes);
    doc.set("seed", opts.seed);
    doc.set("scale", opts.scale);
    doc.set("epochs", opts.epochs);
    doc.set("events_per_epoch", opts.eventsPerEpoch);
    doc.set("dense_cols", opts.denseCols);
    doc.set("insert_frac", opts.insertFrac);
    doc.set("drift_tolerance", opts.driftTolerance);
    doc.set("platform", opts.platform);
    Json jpoints = Json::array();
    for (const auto &pt : points) {
        Json p = Json::object();
        p.set("dataset", pt.dataset);
        p.set("policy", pt.policy);
        p.set("epochs", pt.epochs);
        p.set("cycles", pt.cycles);
        p.set("tasks", pt.tasks);
        p.set("rows_moved", pt.rowsMoved);
        p.set("rows_changed", pt.rowsChanged);
        p.set("half_life_epochs", pt.halfLifeEpochs);
        Json drift = Json::array();
        for (double d : pt.drift) drift.push(d);
        p.set("drift", std::move(drift));
        Json epoch_cycles = Json::array();
        for (Cycle c : pt.epochCycles) epoch_cycles.push(c);
        p.set("epoch_cycles", std::move(epoch_cycles));
        Json fresh_cycles = Json::array();
        for (Cycle c : pt.freshCycles) fresh_cycles.push(c);
        p.set("fresh_cycles", std::move(fresh_cycles));
        p.set("bytes_total", pt.bytesTotal);
        p.set("wall_ms", pt.wallMs);
        jpoints.push(std::move(p));
    }
    doc.set("points", std::move(jpoints));
    Json summary = Json::object();
    summary.set("deterministic", deterministic);
    summary.set("engines_identical", engines_identical);
    summary.set("rebuild_identical", rebuild_identical);
    summary.set("trajectory_ok", trajectory_ok);
    Json half_life = Json::object();
    for (const auto &dataset : opts.datasets) {
        Json per = Json::object();
        for (const auto &pt : points)
            if (pt.dataset == dataset)
                per.set(pt.policy, pt.halfLifeEpochs);
        half_life.set(dataset, std::move(per));
    }
    summary.set("half_life", std::move(half_life));
    doc.set("summary", std::move(summary));

    std::string rendered = doc.dump(2);
    if (opts.jsonPath == "-") {
        std::printf("%s", rendered.c_str());
    } else {
        std::ofstream f(opts.jsonPath);
        if (!f) fatal("cannot write " + opts.jsonPath);
        f << rendered;
        std::printf("bench-dynamic JSON written to %s\n",
                    opts.jsonPath.c_str());
    }

    if (!deterministic || !engines_identical || !rebuild_identical ||
        !trajectory_ok) {
        std::fprintf(stderr,
                     "bench-dynamic: GATE FAILED — deterministic=%d "
                     "engines_identical=%d rebuild_identical=%d "
                     "trajectory_ok=%d\n",
                     deterministic ? 1 : 0, engines_identical ? 1 : 0,
                     rebuild_identical ? 1 : 0, trajectory_ok ? 1 : 0);
        return 1;
    }
    return 0;
}

int
runBenchDynamicCli(int argc, char **argv, int first)
{
    BenchDynamicOptions opts;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) fatal(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (a == "--datasets") {
            opts.datasets = splitCsv(need("--datasets"));
        } else if (a == "--policies" || a == "--designs") {
            opts.policies.clear();
            for (const auto &p : splitCsv(need("--policies")))
                opts.policies.push_back(
                    PolicyRegistry::instance().get(p).name);
        } else if (a == "--pes") {
            opts.pes = parseInt("--pes", need("--pes"));
        } else if (a == "--epochs") {
            opts.epochs = parseInt("--epochs", need("--epochs"));
        } else if (a == "--events") {
            opts.eventsPerEpoch = parseInt("--events", need("--events"));
        } else if (a == "--dense-cols") {
            opts.denseCols =
                parseInt("--dense-cols", need("--dense-cols"));
        } else if (a == "--insert-frac") {
            opts.insertFrac =
                parseDouble("--insert-frac", need("--insert-frac"));
        } else if (a == "--drift-tol") {
            opts.driftTolerance =
                parseDouble("--drift-tol", need("--drift-tol"));
        } else if (a == "--seed") {
            opts.seed = parseUint("--seed", need("--seed"));
        } else if (a == "--scale") {
            opts.scale = parseDouble("--scale", need("--scale"));
        } else if (a == "--platform") {
            opts.platform = findPlatform(need("--platform")).name;
        } else if (a == "--json") {
            opts.jsonPath = need("--json");
        } else {
            fatal("unknown bench-dynamic flag: " + a);
        }
    }
    if (opts.pes < 1) fatal("--pes must be >= 1");
    if (opts.policies.empty()) fatal("--policies must not be empty");
    if (opts.datasets.empty()) fatal("--datasets must not be empty");
    if (opts.epochs < 1) fatal("--epochs must be >= 1");
    if (opts.eventsPerEpoch < 1) fatal("--events must be >= 1");
    for (const auto &d : opts.datasets) findDataset(d);
    findPlatform(opts.platform);
    return runBenchDynamic(opts);
}

} // namespace awb::driver
