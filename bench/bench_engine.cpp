/**
 * @file
 * Implementation of `awbsim --bench-engine` (driver/bench_engine.hpp):
 * the event-vs-batched cycle-engine benchmark producing the tracked
 * BENCH_engine.json perf baseline. See DESIGN.md §6 for why the two
 * engines are bit-identical on every timing statistic and why the
 * batched one is the only way to run Reddit-scale cycle sweeps.
 */

#include "driver/bench_engine.hpp"

#include <cstdio>
#include <fstream>
#include <optional>

#include "accel/policy.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "driver/json.hpp"
#include "driver/scenario.hpp"
#include "exec/run.hpp"
#include "exec/workload_cache.hpp"
#include "graph/datasets.hpp"

namespace awb::driver {

namespace {

/** One engine's run of one grid point. */
struct EngineRun
{
    double wallMs = 0.0;
    Cycle cycles = 0;
    Count tasks = 0;
    Count rowsSwitched = 0;
    Count convergedRound = -1;
    Count rounds = 0;
    Count roundsSimulated = 0;
};

/** One dataset × PEs × policy point (event run absent for batched-only). */
struct BenchPoint
{
    std::string dataset;
    int pes = 0;
    std::string policy;
    Index nodes = 0;
    Count nnz = 0;
    std::optional<EngineRun> event;
    EngineRun batched;
    bool identical = true;  ///< event/batched stats agreed bit for bit
    double speedup = 0.0;   ///< event wall / batched wall (0 if no event)
};

/** One TDQ-2 engine run through the execution core (exec/run.hpp): the
 *  core's wallMs times only the engine execution, exactly what this
 *  bench has always measured (synthesis, the B fill and the partition
 *  build stay outside the clock). */
EngineRun
runOnce(const std::string &dataset, int pes, const std::string &policy,
        EngineKind engine, const BenchEngineOptions &opts)
{
    exec::RunRequest req;
    req.dataset = dataset;
    req.policy = policy;
    req.pes = pes;
    req.mode = exec::Mode::SpmmTdq2;
    req.engine = engine;
    req.seed = opts.seed;
    req.scale = opts.scale;
    req.denseCols = opts.k;
    exec::RunResult r = exec::run(req);
    if (!r.ok)
        fatal("--bench-engine " + dataset + "@" + std::to_string(pes) +
              " " + policy + ": " + r.error);
    EngineRun run;
    run.wallMs = r.wallMs;
    run.cycles = r.cycles;
    run.tasks = r.tasks;
    run.rowsSwitched = r.rowsSwitched;
    run.convergedRound = r.convergedRound;
    run.rounds = r.rounds;
    run.roundsSimulated = r.roundsSimulated;
    return run;
}

BenchPoint
runPoint(const std::string &dataset, const DatasetSpec &spec, int pes,
         const std::string &policy, bool with_event,
         const BenchEngineOptions &opts)
{
    BenchPoint pt;
    pt.dataset = dataset;
    pt.pes = pes;
    pt.policy = policy;
    auto adj = exec::WorkloadCache::instance().adjacency(spec, opts.seed,
                                                         opts.scale);
    pt.nodes = adj->rows();
    pt.nnz = adj->nnz();

    if (with_event)
        pt.event = runOnce(dataset, pes, policy, EngineKind::Event, opts);
    pt.batched = runOnce(dataset, pes, policy, EngineKind::Batched, opts);

    if (pt.event) {
        pt.identical = pt.event->cycles == pt.batched.cycles &&
                       pt.event->tasks == pt.batched.tasks &&
                       pt.event->rowsSwitched == pt.batched.rowsSwitched &&
                       pt.event->convergedRound ==
                           pt.batched.convergedRound;
        pt.speedup = pt.batched.wallMs > 0.0
            ? pt.event->wallMs / pt.batched.wallMs
            : 0.0;
    }
    return pt;
}

Json
engineJson(const EngineRun &run)
{
    Json j = Json::object();
    j.set("wall_ms", run.wallMs);
    j.set("cycles", run.cycles);
    j.set("tasks", run.tasks);
    j.set("rows_switched", run.rowsSwitched);
    j.set("converged_round", run.convergedRound);
    j.set("rounds", run.rounds);
    j.set("rounds_simulated", run.roundsSimulated);
    return j;
}

} // namespace

int
runBenchEngine(const BenchEngineOptions &opts)
{
    std::vector<BenchPoint> points;

    for (const std::string &dataset : opts.datasets) {
        const DatasetSpec &spec = findDataset(dataset);
        for (int pes : opts.peCounts) {
            for (const std::string &policy : opts.policies) {
                std::fprintf(stderr, "bench-engine: %s @ %d PEs %s ...\n",
                             dataset.c_str(), pes, policy.c_str());
                points.push_back(runPoint(
                    dataset, spec, pes,
                    PolicyRegistry::instance().get(policy).name,
                    /*with_event=*/true, opts));
            }
        }
    }

    if (opts.redditPes > 0) {
        const DatasetSpec &spec = findDataset("reddit");
        std::fprintf(stderr,
                     "bench-engine: reddit @ %d PEs %s (batched only, "
                     "%d nodes) ...\n",
                     opts.redditPes, opts.redditPolicy.c_str(), spec.nodes);
        points.push_back(runPoint(
            "reddit", spec, opts.redditPes,
            PolicyRegistry::instance().get(opts.redditPolicy).name,
            /*with_event=*/false, opts));
    }

    // --- Table.
    Table t({"dataset", "PEs", "policy", "nnz", "event(ms)", "batched(ms)",
             "speedup", "cycles", "rounds sim", "identical"});
    bool all_identical = true;
    for (const BenchPoint &p : points) {
        all_identical = all_identical && p.identical;
        t.addRow({p.dataset, std::to_string(p.pes), p.policy,
                  humanCount(static_cast<double>(p.nnz)),
                  p.event ? fixed(p.event->wallMs, 1) : "-",
                  fixed(p.batched.wallMs, 1),
                  p.event ? fixed(p.speedup, 1) + "x" : "-",
                  humanCount(static_cast<double>(p.batched.cycles)),
                  std::to_string(p.batched.roundsSimulated) + "/" +
                      std::to_string(p.batched.rounds),
                  p.event ? (p.identical ? "yes" : "NO") : "n/a"});
    }
    std::printf("%s", t.render().c_str());

    // --- Headline perf-trajectory number: the largest event-vs-batched
    // config (nodes × PEs), aggregated over every policy run at that
    // size so slow-converging policies (whose rounds mostly have to be
    // event-stepped either way) cannot be cherry-picked away.
    const BenchPoint *largest = nullptr;
    for (const BenchPoint &p : points) {
        if (!p.event) continue;
        if (largest == nullptr ||
            static_cast<double>(p.nodes) * p.pes >
                static_cast<double>(largest->nodes) * largest->pes)
            largest = &p;
    }
    double largest_event_ms = 0.0;
    double largest_batched_ms = 0.0;
    double largest_speedup = 0.0;
    if (largest != nullptr) {
        for (const BenchPoint &p : points) {
            if (!p.event || p.dataset != largest->dataset ||
                p.pes != largest->pes)
                continue;
            largest_event_ms += p.event->wallMs;
            largest_batched_ms += p.batched.wallMs;
        }
        largest_speedup = largest_batched_ms > 0.0
            ? largest_event_ms / largest_batched_ms
            : 0.0;
        std::printf("largest paired config %s @ %d PEs (all policies): "
                    "%.1fx batched speedup\n",
                    largest->dataset.c_str(), largest->pes,
                    largest_speedup);
    }

    // --- JSON document.
    Json doc = Json::object();
    doc.set("schema", "awbsim-bench-engine-v1");
    doc.set("seed", opts.seed);
    doc.set("scale", opts.scale);
    doc.set("k", opts.k);
    Json arr = Json::array();
    for (const BenchPoint &p : points) {
        Json j = Json::object();
        j.set("dataset", p.dataset);
        j.set("pes", p.pes);
        j.set("policy", p.policy);
        j.set("nodes", p.nodes);
        j.set("nnz", p.nnz);
        j.set("k", opts.k);
        if (p.event) {
            j.set("event", engineJson(*p.event));
            j.set("speedup", p.speedup);
            j.set("identical", p.identical);
        }
        j.set("batched", engineJson(p.batched));
        arr.push(std::move(j));
    }
    doc.set("points", std::move(arr));
    Json summary = Json::object();
    if (largest != nullptr) {
        Json l = Json::object();
        l.set("dataset", largest->dataset);
        l.set("pes", largest->pes);
        l.set("event_wall_ms", largest_event_ms);
        l.set("batched_wall_ms", largest_batched_ms);
        l.set("speedup", largest_speedup);
        summary.set("largest_paired_config", std::move(l));
    }
    summary.set("all_identical", all_identical);
    doc.set("summary", std::move(summary));

    std::string rendered = doc.dump(2);
    if (opts.jsonPath == "-") {
        std::printf("%s", rendered.c_str());
    } else {
        std::ofstream f(opts.jsonPath);
        if (!f) fatal("cannot write " + opts.jsonPath);
        f << rendered;
        std::printf("bench-engine JSON written to %s\n",
                    opts.jsonPath.c_str());
    }

    if (!all_identical) {
        std::fprintf(stderr, "bench-engine: ENGINE MISMATCH — the batched "
                             "engine diverged from the event engine\n");
        return 1;
    }
    return 0;
}

int
runBenchEngineCli(int argc, char **argv, int first)
{
    BenchEngineOptions opts;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) fatal(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (a == "--datasets") {
            opts.datasets = splitCsv(need("--datasets"));
        } else if (a == "--pes") {
            opts.peCounts.clear();
            for (const auto &p : splitCsv(need("--pes")))
                opts.peCounts.push_back(parseInt("--pes", p));
        } else if (a == "--policies") {
            opts.policies.clear();
            for (const auto &p : splitCsv(need("--policies")))
                opts.policies.push_back(
                    PolicyRegistry::instance().get(p).name);
        } else if (a == "--k") {
            opts.k = parseInt("--k", need("--k"));
        } else if (a == "--reddit-pes") {
            opts.redditPes = parseInt("--reddit-pes", need("--reddit-pes"));
        } else if (a == "--reddit-policy") {
            opts.redditPolicy =
                PolicyRegistry::instance().get(need("--reddit-policy")).name;
        } else if (a == "--seed") {
            opts.seed = parseUint("--seed", need("--seed"));
        } else if (a == "--scale") {
            opts.scale = parseDouble("--scale", need("--scale"));
        } else if (a == "--json") {
            opts.jsonPath = need("--json");
        } else {
            fatal("unknown bench-engine flag: " + a);
        }
    }
    if (opts.k < 1) fatal("--k must be >= 1");
    for (const auto &d : opts.datasets) findDataset(d);
    return runBenchEngine(opts);
}

} // namespace awb::driver
