/**
 * @file
 * Implementation of `awbsim --bench-memory` (driver/bench_memory.hpp):
 * the cross-platform memory-model baseline producing the tracked
 * BENCH_memory.json document. See DESIGN.md §8 for the traffic
 * accounting rules, the roofline composition and the no-op equivalence
 * argument the gate here enforces.
 */

#include "driver/bench_memory.hpp"

#include <cstdio>
#include <fstream>

#include "accel/perf_model.hpp"
#include "accel/policy.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "driver/json.hpp"
#include "driver/scenario.hpp"
#include "exec/workload_cache.hpp"
#include "graph/datasets.hpp"
#include "model/energy_model.hpp"
#include "model/memory_model.hpp"

namespace awb::driver {

namespace {

/** One dataset × policy × platform grid point. */
struct MemoryPoint
{
    std::string dataset;
    std::string policy;
    std::string platform;
    Cycle cycles = 0;
    Cycle memoryCycles = 0;
    Count rounds = 0;
    Count bwBoundRounds = 0;
    Count rowsSwitched = 0;
    Count convergedRound = -1;
    Count bytesTotal = 0;
    Count bytesMigrated = 0;
    double latencyMs = 0.0;
    bool noopIdentical = true;  ///< unconstrained == platform-less twin
};

MemoryPoint
runPoint(const DatasetSpec &spec, const std::string &policy,
         const std::string &platform, const WorkloadProfile &prof,
         int pes)
{
    AccelConfig cfg = makePolicyConfig(policy, pes, hopBase(spec));
    cfg.platform = platform;
    PerfGcnResult res = PerfModel(cfg).runGcn(prof);

    MemoryPoint pt;
    pt.dataset = spec.name;
    pt.policy = policy;
    pt.platform = platform;
    pt.cycles = res.totalCycles;
    pt.memoryCycles = res.memoryCycles;
    pt.bwBoundRounds = res.bwBoundRounds;
    pt.bytesTotal = res.traffic.total();
    pt.bytesMigrated = res.traffic.migrationBytes;
    for (const auto &layer : res.layers) {
        pt.rounds += layer.xw.rounds + layer.ax.rounds;
        pt.rowsSwitched += layer.xw.rowsSwitched + layer.ax.rowsSwitched;
        pt.convergedRound = std::max(
            pt.convergedRound,
            std::max(layer.xw.convergedRound, layer.ax.convergedRound));
    }
    pt.latencyMs = evaluateEnergy(res.totalCycles, res.totalTasks,
                                  policyClockMhz(cfg))
                       .latencyMs;
    return pt;
}

} // namespace

int
runBenchMemory(const BenchMemoryOptions &opts)
{
    std::vector<std::string> platforms = opts.platforms;
    if (platforms.empty())
        for (const PlatformSpec &p : knownPlatforms())
            platforms.push_back(p.name);

    std::vector<MemoryPoint> points;
    bool noop_ok = true;
    Count bw_bound_points = 0;

    Table t({"dataset", "policy", "platform", "cycles", "mem floor",
             "bw-bound", "GB moved", "latency(ms)"});
    for (const auto &dataset : opts.datasets) {
        const DatasetSpec &spec = findDataset(dataset);
        const auto prof_p = exec::cachedProfile(spec, opts.seed, opts.scale);
        const WorkloadProfile &prof = *prof_p;
        for (const auto &policy : opts.policies) {
            for (const auto &platform : platforms) {
                MemoryPoint pt =
                    runPoint(spec, policy, platform, prof, opts.pes);
                if (findPlatform(platform).bandwidthGBs <= 0.0) {
                    // The no-op gate: on an unconstrained platform the
                    // bandwidth floor must never have engaged, which is
                    // what makes the composition provably the identity
                    // (DESIGN.md §8; the bit-identity to platform-less
                    // configs is locked by tests/test_memory_model.cpp).
                    pt.noopIdentical =
                        pt.memoryCycles == 0 && pt.bwBoundRounds == 0;
                    noop_ok = noop_ok && pt.noopIdentical;
                }
                if (pt.bwBoundRounds > 0) ++bw_bound_points;
                t.addRow({pt.dataset, pt.policy, pt.platform,
                          humanCount(static_cast<double>(pt.cycles)),
                          humanCount(static_cast<double>(pt.memoryCycles)),
                          std::to_string(pt.bwBoundRounds) + "/" +
                              std::to_string(pt.rounds),
                          fixed(static_cast<double>(pt.bytesTotal) / 1e9,
                                3),
                          fixed(pt.latencyMs, 3)});
                points.push_back(std::move(pt));
            }
        }
    }
    std::printf("%s", t.render().c_str());

    Json doc = Json::object();
    doc.set("schema", "awbsim-bench-memory-v1");
    doc.set("seed", opts.seed);
    doc.set("scale", opts.scale);
    doc.set("pes", opts.pes);
    Json jpoints = Json::array();
    for (const auto &pt : points) {
        Json p = Json::object();
        p.set("dataset", pt.dataset);
        p.set("policy", pt.policy);
        p.set("platform", pt.platform);
        p.set("cycles", pt.cycles);
        p.set("memory_cycles", pt.memoryCycles);
        p.set("rounds", pt.rounds);
        p.set("bw_bound_rounds", pt.bwBoundRounds);
        p.set("rows_switched", pt.rowsSwitched);
        p.set("converged_round", pt.convergedRound);
        p.set("bytes_total", pt.bytesTotal);
        p.set("bytes_migrated", pt.bytesMigrated);
        p.set("latency_ms", pt.latencyMs);
        p.set("noop_identical", pt.noopIdentical);
        jpoints.push(std::move(p));
    }
    doc.set("points", std::move(jpoints));
    Json summary = Json::object();
    summary.set("noop_identical", noop_ok);
    summary.set("bw_bound_points", bw_bound_points);
    doc.set("summary", std::move(summary));

    std::string rendered = doc.dump(2);
    if (opts.jsonPath == "-") {
        std::printf("%s", rendered.c_str());
    } else {
        std::ofstream f(opts.jsonPath);
        if (!f) fatal("cannot write " + opts.jsonPath);
        f << rendered;
        std::printf("bench-memory JSON written to %s\n",
                    opts.jsonPath.c_str());
    }

    if (!noop_ok) {
        std::fprintf(stderr,
                     "bench-memory: NO-OP GATE FAILED — the bandwidth "
                     "floor engaged on an unconstrained platform\n");
        return 1;
    }
    return 0;
}

int
runBenchMemoryCli(int argc, char **argv, int first)
{
    BenchMemoryOptions opts;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) fatal(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (a == "--datasets") {
            opts.datasets = splitCsv(need("--datasets"));
        } else if (a == "--policies") {
            opts.policies.clear();
            for (const auto &p : splitCsv(need("--policies")))
                opts.policies.push_back(
                    PolicyRegistry::instance().get(p).name);
        } else if (a == "--platforms" || a == "--platform") {
            opts.platforms.clear();
            for (const auto &p : splitCsv(need("--platforms")))
                opts.platforms.push_back(findPlatform(p).name);
        } else if (a == "--pes") {
            opts.pes = parseInt("--pes", need("--pes"));
        } else if (a == "--seed") {
            opts.seed = parseUint("--seed", need("--seed"));
        } else if (a == "--scale") {
            opts.scale = parseDouble("--scale", need("--scale"));
        } else if (a == "--json") {
            opts.jsonPath = need("--json");
        } else {
            fatal("unknown bench-memory flag: " + a);
        }
    }
    if (opts.pes < 1) fatal("--pes must be >= 1");
    for (const auto &d : opts.datasets) findDataset(d);
    return runBenchMemory(opts);
}

} // namespace awb::driver
