/**
 * @file
 * google-benchmark microbenchmarks of the substrate kernels and simulator
 * components: reference SpMM kernels across density, Omega-network
 * throughput, cycle-accurate engine speed, and round-level model speed.
 * These measure THIS library's software performance (simulator throughput),
 * not the modelled hardware.
 */

#include <benchmark/benchmark.h>

#include "accel/omega.hpp"
#include "accel/perf_model.hpp"
#include "accel/spmm_engine.hpp"
#include "common/rng.hpp"
#include "graph/datasets.hpp"
#include "sparse/convert.hpp"
#include "sparse/spmm.hpp"

using namespace awb;

namespace {

CscMatrix
randomCsc(Rng &rng, Index rows, Index cols, double density)
{
    CooMatrix coo(rows, cols);
    for (Index i = 0; i < rows; ++i)
        for (Index j = 0; j < cols; ++j)
            if (rng.nextBool(density))
                coo.add(i, j, rng.nextFloat(-1.0f, 1.0f));
    coo.canonicalize();
    return CscMatrix::fromCoo(coo);
}

void
BM_SpmmCsc(benchmark::State &state)
{
    Rng rng(1);
    auto density = 1.0 / static_cast<double>(state.range(1));
    auto a = randomCsc(rng, static_cast<Index>(state.range(0)),
                       static_cast<Index>(state.range(0)), density);
    DenseMatrix b(static_cast<Index>(state.range(0)), 16);
    b.fillUniform(rng, -1.0f, 1.0f);
    for (auto _ : state) {
        auto c = spmmCsc(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz() * 16);
}

void
BM_SpmmCsr(benchmark::State &state)
{
    Rng rng(2);
    auto density = 1.0 / static_cast<double>(state.range(1));
    auto a = cscToCsr(randomCsc(rng, static_cast<Index>(state.range(0)),
                                static_cast<Index>(state.range(0)),
                                density));
    DenseMatrix b(static_cast<Index>(state.range(0)), 16);
    b.fillUniform(rng, -1.0f, 1.0f);
    for (auto _ : state) {
        auto c = spmmCsr(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz() * 16);
}

void
BM_OmegaThroughput(benchmark::State &state)
{
    const int ports = static_cast<int>(state.range(0));
    Rng rng(3);
    Count delivered = 0;
    for (auto _ : state) {
        OmegaNetwork net(ports, 8, 2);
        for (int cycle = 0; cycle < 256; ++cycle) {
            net.tick(cycle, [&](const Flit &, int) {
                ++delivered;
                return true;
            });
            for (int s = 0; s < ports; ++s) {
                int d = rng.nextIndex(ports);
                net.inject(Flit{Task{static_cast<Index>(d), 1, 1, d}, d},
                           s);
            }
        }
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(delivered);
}

void
BM_CycleEngineCora(benchmark::State &state)
{
    auto ds = loadSyntheticByName("cora", 1, 0.2);
    AccelConfig cfg = makeConfig(Design::RemoteD, 32);
    Rng rng(4);
    DenseMatrix b(ds.spec.nodes, 4);
    b.fillUniform(rng, -1.0f, 1.0f);
    for (auto _ : state) {
        RowPartition part(ds.spec.nodes, cfg.numPes, cfg.mapPolicy);
        SpmmResult r = SpmmEngine(cfg).execute(ds.adjacency, b,
                                               TdqKind::Tdq2OmegaCsc, part);
        benchmark::DoNotOptimize(r.stats.cycles);
    }
}

void
BM_RoundModelFullCora(benchmark::State &state)
{
    auto prof = loadProfile(findDataset("cora"), 1, 1.0);
    AccelConfig cfg = makeConfig(Design::RemoteD, 1024);
    for (auto _ : state) {
        auto res = PerfModel(cfg).runGcn(prof);
        benchmark::DoNotOptimize(res.totalCycles);
    }
}

BENCHMARK(BM_SpmmCsc)->Args({256, 100})->Args({256, 10})->Args({1024, 100});
BENCHMARK(BM_SpmmCsr)->Args({256, 100})->Args({256, 10})->Args({1024, 100});
BENCHMARK(BM_OmegaThroughput)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_CycleEngineCora);
BENCHMARK(BM_RoundModelFullCora);

} // namespace

BENCHMARK_MAIN();
