/**
 * @file
 * Implementation of `awbsim --bench-scaleout` (driver/bench_scaleout.hpp):
 * the multi-chip scaling baseline producing the tracked
 * BENCH_scaleout.json document. See DESIGN.md §9 for the sharding model,
 * the halo accounting rules and the monotonicity argument the gate here
 * enforces.
 */

#include "driver/bench_scaleout.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "accel/policy.hpp"
#include "accel/scaleout.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "driver/json.hpp"
#include "driver/scenario.hpp"
#include "exec/workload_cache.hpp"
#include "graph/datasets.hpp"
#include "model/energy_model.hpp"
#include "model/memory_model.hpp"

namespace awb::driver {

namespace {

/** One chips × platform point of the scaling curve. */
struct ScaleoutPoint
{
    std::string platform;
    int chips = 1;
    Cycle cycles = 0;
    Count haloBytes = 0;
    Cycle haloCycles = 0;
    Count haloBoundRounds = 0;
    double chipImbalance = 1.0;
    Count bytesTotal = 0;
    Cycle memoryCycles = 0;
    Count bwBoundRounds = 0;
    double latencyMs = 0.0;
    double speedup = 1.0;  ///< 1-chip cycles / cycles, same platform
    double wallMs = 0.0;
};

} // namespace

int
runBenchScaleout(const BenchScaleoutOptions &opts)
{
    const DatasetSpec &spec = findDataset(opts.dataset);
    const auto prof_p = exec::cachedProfile(spec, opts.seed, opts.scale);
    const WorkloadProfile &prof = *prof_p;
    const auto adj_p = exec::cachedAdjacency(spec, opts.seed, opts.scale);
    const CscMatrix &adjacency = *adj_p;

    std::vector<ScaleoutPoint> points;
    bool halo_ok = true;

    Table t({"platform", "chips", "cycles", "speedup", "halo GB",
             "halo cycles", "imbalance", "latency(ms)"});
    for (const auto &platform : opts.platforms) {
        Cycle one_chip_cycles = 0;
        Count prev_halo = 0;
        for (std::size_t i = 0; i < opts.chipCounts.size(); ++i) {
            const int chips = opts.chipCounts[i];
            AccelConfig cfg =
                makePolicyConfig(opts.policy, opts.pes, hopBase(spec));
            cfg.platform = platform;
            cfg.chips = chips;

            auto t0 = std::chrono::steady_clock::now();
            ShardedPerfGcnResult res =
                modelGcnSharded(cfg, prof, &adjacency);
            auto t1 = std::chrono::steady_clock::now();

            ScaleoutPoint pt;
            pt.platform = platform;
            pt.chips = chips;
            pt.cycles = res.result.totalCycles;
            pt.haloBytes = res.scaleout.haloBytes;
            pt.haloCycles = res.scaleout.haloCycles;
            pt.haloBoundRounds = res.scaleout.haloBoundRounds;
            pt.chipImbalance = res.scaleout.chipImbalance;
            pt.bytesTotal = res.result.traffic.total();
            pt.memoryCycles = res.result.memoryCycles;
            pt.bwBoundRounds = res.result.bwBoundRounds;
            pt.latencyMs =
                evaluateEnergy(res.result.totalCycles,
                               res.result.totalTasks, policyClockMhz(cfg))
                    .latencyMs;
            pt.wallMs =
                std::chrono::duration<double, std::milli>(t1 - t0).count();

            if (chips == 1) one_chip_cycles = pt.cycles;
            if (one_chip_cycles > 0 && pt.cycles > 0)
                pt.speedup = static_cast<double>(one_chip_cycles) /
                             static_cast<double>(pt.cycles);

            // The halo gate (DESIGN.md §9): one chip has no boundary,
            // and cutting the graph into more shards can only turn more
            // edges into boundary edges.
            if (chips == 1 && pt.haloBytes != 0) halo_ok = false;
            if (i > 0 && opts.chipCounts[i] > opts.chipCounts[i - 1] &&
                pt.haloBytes < prev_halo)
                halo_ok = false;
            prev_halo = pt.haloBytes;

            t.addRow({pt.platform, std::to_string(pt.chips),
                      humanCount(static_cast<double>(pt.cycles)),
                      fixed(pt.speedup, 2) + "x",
                      fixed(static_cast<double>(pt.haloBytes) / 1e9, 3),
                      humanCount(static_cast<double>(pt.haloCycles)),
                      fixed(pt.chipImbalance, 3), fixed(pt.latencyMs, 3)});
            points.push_back(std::move(pt));
        }
    }
    std::printf("%s", t.render().c_str());

    Json doc = Json::object();
    doc.set("schema", "awbsim-bench-scaleout-v1");
    doc.set("dataset", spec.name);
    doc.set("policy", opts.policy);
    doc.set("pes", opts.pes);
    doc.set("seed", opts.seed);
    doc.set("scale", opts.scale);
    Json jpoints = Json::array();
    for (const auto &pt : points) {
        Json p = Json::object();
        p.set("platform", pt.platform);
        p.set("chips", pt.chips);
        p.set("cycles", pt.cycles);
        p.set("halo_bytes", pt.haloBytes);
        p.set("halo_cycles", pt.haloCycles);
        p.set("halo_bound_rounds", pt.haloBoundRounds);
        p.set("chip_imbalance", pt.chipImbalance);
        p.set("bytes_total", pt.bytesTotal);
        p.set("memory_cycles", pt.memoryCycles);
        p.set("bw_bound_rounds", pt.bwBoundRounds);
        p.set("latency_ms", pt.latencyMs);
        p.set("speedup", pt.speedup);
        p.set("wall_ms", pt.wallMs);
        jpoints.push(std::move(p));
    }
    doc.set("points", std::move(jpoints));
    Json summary = Json::object();
    summary.set("halo_monotone", halo_ok);
    doc.set("summary", std::move(summary));

    std::string rendered = doc.dump(2);
    if (opts.jsonPath == "-") {
        std::printf("%s", rendered.c_str());
    } else {
        std::ofstream f(opts.jsonPath);
        if (!f) fatal("cannot write " + opts.jsonPath);
        f << rendered;
        std::printf("bench-scaleout JSON written to %s\n",
                    opts.jsonPath.c_str());
    }

    if (!halo_ok) {
        std::fprintf(stderr,
                     "bench-scaleout: HALO GATE FAILED — halo traffic is "
                     "non-zero at 1 chip or non-monotone along the chip "
                     "axis\n");
        return 1;
    }
    return 0;
}

int
runBenchScaleoutCli(int argc, char **argv, int first)
{
    BenchScaleoutOptions opts;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) fatal(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (a == "--dataset") {
            opts.dataset = need("--dataset");
        } else if (a == "--chips") {
            opts.chipCounts.clear();
            for (const auto &c : splitCsv(need("--chips")))
                opts.chipCounts.push_back(parseInt("--chips", c));
        } else if (a == "--platforms" || a == "--platform") {
            opts.platforms.clear();
            for (const auto &p : splitCsv(need("--platforms")))
                opts.platforms.push_back(findPlatform(p).name);
        } else if (a == "--policy") {
            opts.policy =
                PolicyRegistry::instance().get(need("--policy")).name;
        } else if (a == "--pes") {
            opts.pes = parseInt("--pes", need("--pes"));
        } else if (a == "--seed") {
            opts.seed = parseUint("--seed", need("--seed"));
        } else if (a == "--scale") {
            opts.scale = parseDouble("--scale", need("--scale"));
        } else if (a == "--json") {
            opts.jsonPath = need("--json");
        } else {
            fatal("unknown bench-scaleout flag: " + a);
        }
    }
    if (opts.pes < 1) fatal("--pes must be >= 1");
    if (opts.chipCounts.empty()) fatal("--chips must not be empty");
    for (int c : opts.chipCounts)
        if (c < 1) fatal("--chips entries must be >= 1");
    findDataset(opts.dataset);
    return runBenchScaleout(opts);
}

} // namespace awb::driver
