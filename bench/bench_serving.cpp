/**
 * @file
 * Implementation of `awbsim --bench-serving` (driver/bench_serving.hpp):
 * the serving baseline producing the tracked BENCH_serving.json
 * document. See DESIGN.md §10 for the arrival model, the batching
 * semantics and the determinism argument the double-run gate leans on.
 */

#include "driver/bench_serving.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "accel/policy.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "driver/json.hpp"
#include "driver/scenario.hpp"
#include "driver/serve_cli.hpp"
#include "graph/datasets.hpp"
#include "serve/serve.hpp"

namespace awb::driver {

namespace {

/** One dataset × rate point of the latency curve. */
struct ServingPoint
{
    std::string dataset;
    double rate = 0.0;
    serve::ServeOptions opts;
    serve::ServeResult result;
    bool deterministic = true;  ///< double-run byte-identical JSON
};

serve::ServeOptions
baseOptions(const BenchServingOptions &opts, const std::string &dataset)
{
    serve::ServeOptions o;
    o.dataset = dataset;
    o.fidelity = serve::ServeFidelity::Model;
    o.durationMs = opts.durationMs;
    o.devices = opts.devices;
    o.discipline = opts.discipline;
    o.design = opts.policy;
    o.numPes = opts.pes;
    o.seed = opts.seed;
    return o;
}

bool
percentilesOrdered(const serve::LatencySummary &s)
{
    return s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.p999 &&
           s.p999 <= s.max;
}

bool
conserved(const serve::ServeResult &r)
{
    return r.offered == r.completed + r.dropped + r.timedOut;
}

} // namespace

int
runBenchServing(const BenchServingOptions &opts)
{
    const auto bench_t0 = std::chrono::steady_clock::now();
    std::vector<ServingPoint> points;
    bool gates_ok = true;
    std::string gate_error;
    auto fail = [&](const std::string &why) {
        gates_ok = false;
        if (gate_error.empty()) gate_error = why;
    };

    Table t({"dataset", "rate", "offered", "done", "lost", "p50(ms)",
             "p99(ms)", "batch", "rps"});
    for (const auto &dataset : opts.datasets) {
        for (double rate : opts.rates) {
            ServingPoint pt;
            pt.dataset = dataset;
            pt.rate = rate;
            pt.opts = baseOptions(opts, dataset);
            pt.opts.ratePerSec = rate;
            pt.result = serve::runServe(pt.opts);

            // Determinism gate: a second run of the same options must
            // render byte-identical JSON (DESIGN.md §10).
            const serve::ServeResult again = serve::runServe(pt.opts);
            pt.deterministic = serveToJson(pt.opts, pt.result).dump(2) ==
                               serveToJson(pt.opts, again).dump(2);
            if (!pt.deterministic)
                fail(dataset + " rate " + fixed(rate, 0) +
                     ": double run diverged");
            if (!conserved(pt.result))
                fail(dataset + " rate " + fixed(rate, 0) +
                     ": request conservation violated");
            if (pt.result.completed > 0 &&
                !percentilesOrdered(pt.result.latency))
                fail(dataset + " rate " + fixed(rate, 0) +
                     ": latency percentiles out of order");

            t.addRow({dataset, fixed(rate, 0),
                      std::to_string(pt.result.offered),
                      std::to_string(pt.result.completed),
                      std::to_string(pt.result.dropped +
                                     pt.result.timedOut),
                      fixed(serve::cyclesToMs(pt.result.latency.p50,
                                              pt.result.clockMhz),
                            3),
                      fixed(serve::cyclesToMs(pt.result.latency.p99,
                                              pt.result.clockMhz),
                            3),
                      fixed(pt.result.meanBatchSize, 2),
                      fixed(pt.result.throughputRps, 1)});
            points.push_back(std::move(pt));
        }
    }
    std::printf("%s", t.render().c_str());

    // Closed-loop saturation point per dataset: C clients issuing
    // back-to-back measure the device pool's peak service throughput.
    struct Saturation
    {
        std::string dataset;
        serve::ServeResult result;
    };
    std::vector<Saturation> saturation;
    for (const auto &dataset : opts.datasets) {
        serve::ServeOptions o = baseOptions(opts, dataset);
        o.arrivals = serve::ArrivalMode::Closed;
        o.clients = opts.clients;
        Saturation s{dataset, serve::runServe(o)};
        if (!conserved(s.result))
            fail(dataset + " closed loop: request conservation violated");
        std::printf("%s closed loop: %lld done, %.1f rps saturation, "
                    "p99 %.3f ms\n",
                    dataset.c_str(),
                    static_cast<long long>(s.result.completed),
                    s.result.throughputRps,
                    serve::cyclesToMs(s.result.latency.p99,
                                      s.result.clockMhz));
        saturation.push_back(std::move(s));
    }

    Json doc = Json::object();
    doc.set("schema", "awbsim-bench-serving-v1");
    doc.set("discipline", opts.discipline);
    doc.set("devices", opts.devices);
    doc.set("duration_ms", opts.durationMs);
    doc.set("policy", opts.policy);
    doc.set("pes", opts.pes);
    doc.set("seed", opts.seed);
    Json jpoints = Json::array();
    for (const auto &pt : points) {
        Json p = Json::object();
        p.set("dataset", pt.dataset);
        p.set("rate_rps", pt.rate);
        p.set("offered", pt.result.offered);
        p.set("completed", pt.result.completed);
        p.set("dropped", pt.result.dropped);
        p.set("timed_out", pt.result.timedOut);
        p.set("batches", pt.result.batches);
        p.set("mean_batch_size", pt.result.meanBatchSize);
        p.set("end_cycle", pt.result.endCycle);
        p.set("p50_cycles", pt.result.latency.p50);
        p.set("p95_cycles", pt.result.latency.p95);
        p.set("p99_cycles", pt.result.latency.p99);
        p.set("p999_cycles", pt.result.latency.p999);
        p.set("p99_ms", serve::cyclesToMs(pt.result.latency.p99,
                                          pt.result.clockMhz));
        p.set("throughput_rps", pt.result.throughputRps);
        p.set("peak_queue_depth", pt.result.peakQueueDepth);
        p.set("deterministic", pt.deterministic);
        jpoints.push(std::move(p));
    }
    doc.set("points", std::move(jpoints));

    Json jsat = Json::array();
    for (const auto &s : saturation) {
        Json p = Json::object();
        p.set("dataset", s.dataset);
        p.set("clients", opts.clients);
        p.set("completed", s.result.completed);
        p.set("saturation_rps", s.result.throughputRps);
        p.set("p99_cycles", s.result.latency.p99);
        p.set("mean_batch_size", s.result.meanBatchSize);
        jsat.push(std::move(p));
    }
    doc.set("closed_loop", std::move(jsat));

    // The saturation knee of each open-loop curve: the first rate whose
    // p99 is at least twice the lowest rate's p99 (0 = no knee in range).
    Json knees = Json::object();
    for (const auto &dataset : opts.datasets) {
        Cycle base_p99 = -1;
        double knee = 0.0;
        for (const auto &pt : points) {
            if (pt.dataset != dataset || pt.result.completed == 0)
                continue;
            if (base_p99 < 0) base_p99 = pt.result.latency.p99;
            if (knee == 0.0 && pt.result.latency.p99 >= 2 * base_p99)
                knee = pt.rate;
        }
        knees.set(dataset, knee);
    }
    const auto bench_t1 = std::chrono::steady_clock::now();
    Json summary = Json::object();
    summary.set("gates_ok", gates_ok);
    summary.set("knee_rate_rps", std::move(knees));
    summary.set("wall_ms",
                std::chrono::duration<double, std::milli>(bench_t1 -
                                                          bench_t0)
                    .count());
    doc.set("summary", std::move(summary));

    const std::string rendered = doc.dump(2);
    if (opts.jsonPath == "-") {
        std::printf("%s", rendered.c_str());
    } else {
        std::ofstream f(opts.jsonPath);
        if (!f) fatal("cannot write " + opts.jsonPath);
        f << rendered;
        std::printf("bench-serving JSON written to %s\n",
                    opts.jsonPath.c_str());
    }

    if (!gates_ok) {
        std::fprintf(stderr, "bench-serving: SERVING GATE FAILED — %s\n",
                     gate_error.c_str());
        return 1;
    }
    return 0;
}

int
runBenchServingCli(int argc, char **argv, int first)
{
    BenchServingOptions opts;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) fatal(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (a == "--datasets") {
            opts.datasets = splitCsv(need("--datasets"));
        } else if (a == "--rates") {
            opts.rates.clear();
            for (const auto &r : splitCsv(need("--rates")))
                opts.rates.push_back(parseDouble("--rates", r));
        } else if (a == "--discipline") {
            opts.discipline = serve::DisciplineRegistry::instance()
                                  .get(need("--discipline"))
                                  .name;
        } else if (a == "--devices") {
            opts.devices = parseInt("--devices", need("--devices"));
        } else if (a == "--duration-ms") {
            opts.durationMs =
                parseDouble("--duration-ms", need("--duration-ms"));
        } else if (a == "--clients") {
            opts.clients = parseInt("--clients", need("--clients"));
        } else if (a == "--policy") {
            opts.policy =
                PolicyRegistry::instance().get(need("--policy")).name;
        } else if (a == "--pes") {
            opts.pes = parseInt("--pes", need("--pes"));
        } else if (a == "--seed") {
            opts.seed = parseUint("--seed", need("--seed"));
        } else if (a == "--json") {
            opts.jsonPath = need("--json");
        } else {
            fatal("unknown bench-serving flag: " + a);
        }
    }
    if (opts.datasets.size() < 2)
        fatal("--bench-serving needs at least 2 datasets (the tracked "
              "curve covers multiple non-zero distributions)");
    if (opts.rates.empty()) fatal("--rates must not be empty");
    if (opts.devices < 1) fatal("--devices must be >= 1");
    for (const auto &d : opts.datasets) findDataset(d);
    return runBenchServing(opts);
}

} // namespace awb::driver
