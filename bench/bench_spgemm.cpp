/**
 * @file
 * Implementation of `awbsim --bench-spgemm` (driver/bench_spgemm.hpp):
 * the BFS/PageRank graph-kernel benchmark producing the tracked
 * BENCH_spgemm.json document. See DESIGN.md §11 for the sparse-output
 * SpGEMM cost model, the frontier-kernel semantics and the
 * rebalance-verdict methodology the gates here enforce.
 */

#include "driver/bench_spgemm.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "accel/policy.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "driver/json.hpp"
#include "driver/scenario.hpp"
#include "exec/workload_cache.hpp"
#include "graph/datasets.hpp"
#include "kernels/bfs.hpp"
#include "kernels/pagerank.hpp"
#include "model/memory_model.hpp"

namespace awb::driver {

namespace {

/** One kernel × policy point of the benchmark. */
struct SpgemmPoint
{
    std::string kernel;
    std::string policy;
    Count iterations = 0;
    Cycle cycles = 0;
    Count tasks = 0;
    Count rowsSwitched = 0;
    std::vector<Count> frontier;    ///< per-iteration frontier non-zeros
    std::vector<Cycle> iterCycles;  ///< per-iteration system cycles
    Count bytesTotal = 0;
    Count bRowBytes = 0;
    Count outputIndexBytes = 0;
    Count migrationBytes = 0;
    double cyclesVsBaseline = 1.0;  ///< cycles / same-kernel baseline
    std::string verdict = "baseline";
    double wallMs = 0.0;
};

/** One engine execution of a kernel, reduced to what the gates need. */
struct KernelRun
{
    kernels::FrontierRunStats stats;
    bool functionalOk = false;
};

bool
sameStats(const kernels::FrontierRunStats &x,
          const kernels::FrontierRunStats &y)
{
    return x.totalCycles == y.totalCycles && x.totalTasks == y.totalTasks &&
           x.rowsSwitched == y.rowsSwitched && x.rounds == y.rounds &&
           x.traffic.total() == y.traffic.total() &&
           x.memoryCycles == y.memoryCycles;
}

bool
sameTraffic(const MemoryTraffic &x, const MemoryTraffic &y)
{
    return x.sparseBytes == y.sparseBytes && x.denseBytes == y.denseBytes &&
           x.outputBytes == y.outputBytes &&
           x.migrationBytes == y.migrationBytes &&
           x.haloBytes == y.haloBytes && x.bRowBytes == y.bRowBytes &&
           x.outputIndexBytes == y.outputIndexBytes;
}

std::string
verdictOf(Cycle cycles, Cycle baseline_cycles)
{
    const double ratio = static_cast<double>(cycles) /
                         static_cast<double>(baseline_cycles);
    if (ratio < 0.99) return "helps";
    if (ratio > 1.01) return "hurts";
    return "neutral";
}

} // namespace

int
runBenchSpgemm(const BenchSpgemmOptions &opts)
{
    const DatasetSpec &spec = findDataset(opts.dataset);
    const auto a_p = exec::cachedAdjacency(spec, opts.seed, opts.scale);
    const CscMatrix &a = *a_p;
    if (opts.source < 0 || opts.source >= a.rows())
        fatal("bench-spgemm: --source out of range for the scaled graph");

    // The verdict needs the static baseline's cycle count first.
    std::vector<std::string> policies;
    for (const auto &p : opts.policies)
        policies.push_back(PolicyRegistry::instance().get(p).name);
    if (std::find(policies.begin(), policies.end(), "baseline") ==
        policies.end())
        policies.insert(policies.begin(), "baseline");

    const kernels::BfsResult bfs_ref = kernels::bfsReference(a, opts.source);
    const kernels::PagerankResult pr_ref = kernels::pagerankReference(
        a, opts.damping, opts.tol, opts.maxIters);

    auto runOnce = [&](const std::string &kernel,
                       const AccelConfig &cfg) -> KernelRun {
        KernelRun out;
        if (kernel == "bfs") {
            kernels::BfsRun run = kernels::runBfs(cfg, a, opts.source);
            out.stats = run.stats;
            out.functionalOk = run.result.parent == bfs_ref.parent &&
                               run.result.depth == bfs_ref.depth &&
                               run.result.frontierSizes ==
                                   bfs_ref.frontierSizes;
            return out;
        }
        kernels::PagerankRun run = kernels::runPagerank(
            cfg, a, opts.damping, opts.tol, opts.maxIters);
        out.stats = run.stats;
        double l1 = 0.0;
        for (std::size_t v = 0; v < run.result.scores.size(); ++v)
            l1 += std::fabs(
                static_cast<double>(run.result.scores[v]) -
                static_cast<double>(pr_ref.scores[v]));
        out.functionalOk = run.result.converged == pr_ref.converged &&
                           run.result.iterations == pr_ref.iterations &&
                           l1 <= 1e-6;
        return out;
    };

    bool deterministic = true;
    bool engines_identical = true;
    bool functional_ok = true;
    bool model_traffic_ok = true;
    std::vector<SpgemmPoint> points;

    Table t({"kernel", "design", "iters", "cycles", "vs base", "switched",
             "bytes", "verdict"});
    for (const std::string kernel : {"bfs", "pagerank"}) {
        Cycle baseline_cycles = 0;
        for (const auto &policy : policies) {
            AccelConfig cfg =
                makePolicyConfig(policy, opts.pes, hopBase(spec));
            cfg.platform = opts.platform;
            cfg.engine = EngineKind::Event;

            auto t0 = std::chrono::steady_clock::now();
            KernelRun ev = runOnce(kernel, cfg);
            auto t1 = std::chrono::steady_clock::now();

            // Gate 1: a second event run must reproduce the first.
            KernelRun again = runOnce(kernel, cfg);
            if (!sameStats(ev.stats, again.stats)) deterministic = false;

            // Gate 2: the batched engine must match the event engine.
            AccelConfig bcfg = cfg;
            bcfg.engine = EngineKind::Batched;
            KernelRun bat = runOnce(kernel, bcfg);
            if (!sameStats(ev.stats, bat.stats)) engines_identical = false;

            // Gate 3: functional outputs match the scalar references
            // (checked on every run above).
            if (!ev.functionalOk || !again.functionalOk ||
                !bat.functionalOk)
                functional_ok = false;

            // Gate 4: the round-level model's traffic accounting is
            // byte-equal to the engine's — provable only for static
            // policies, so gated on the baseline (DESIGN.md §11).
            if (policy == "baseline") {
                kernels::FrontierRunStats m =
                    kernel == "bfs"
                        ? kernels::modelBfs(cfg, a, opts.source)
                        : kernels::modelPagerank(cfg, a, opts.damping,
                                                 opts.tol, opts.maxIters);
                if (!sameTraffic(m.traffic, ev.stats.traffic))
                    model_traffic_ok = false;
            }

            SpgemmPoint pt;
            pt.kernel = kernel;
            pt.policy = policy;
            pt.iterations =
                static_cast<Count>(ev.stats.iterations.size());
            pt.cycles = ev.stats.totalCycles;
            pt.tasks = ev.stats.totalTasks;
            pt.rowsSwitched = ev.stats.rowsSwitched;
            for (const auto &it : ev.stats.iterations) {
                pt.frontier.push_back(it.frontierNnz);
                pt.iterCycles.push_back(it.cycles);
            }
            pt.bytesTotal = ev.stats.traffic.total();
            pt.bRowBytes = ev.stats.traffic.bRowBytes;
            pt.outputIndexBytes = ev.stats.traffic.outputIndexBytes;
            pt.migrationBytes = ev.stats.traffic.migrationBytes;
            pt.wallMs =
                std::chrono::duration<double, std::milli>(t1 - t0).count();

            if (policy == "baseline") {
                baseline_cycles = pt.cycles;
            } else if (baseline_cycles > 0) {
                pt.cyclesVsBaseline =
                    static_cast<double>(pt.cycles) /
                    static_cast<double>(baseline_cycles);
                pt.verdict = verdictOf(pt.cycles, baseline_cycles);
            }

            t.addRow({pt.kernel,
                      PolicyRegistry::instance().get(pt.policy).label,
                      std::to_string(pt.iterations),
                      humanCount(static_cast<double>(pt.cycles)),
                      fixed(pt.cyclesVsBaseline, 3) + "x",
                      std::to_string(pt.rowsSwitched),
                      humanCount(static_cast<double>(pt.bytesTotal)),
                      pt.verdict});
            points.push_back(std::move(pt));
        }
    }
    std::printf("%s", t.render().c_str());

    Json doc = Json::object();
    doc.set("schema", "awbsim-bench-spgemm-v1");
    doc.set("dataset", spec.name);
    doc.set("pes", opts.pes);
    doc.set("seed", opts.seed);
    doc.set("scale", opts.scale);
    doc.set("source", opts.source);
    doc.set("damping", opts.damping);
    doc.set("tol", opts.tol);
    doc.set("platform", opts.platform);
    Json jpoints = Json::array();
    for (const auto &pt : points) {
        Json p = Json::object();
        p.set("kernel", pt.kernel);
        p.set("policy", pt.policy);
        p.set("iterations", pt.iterations);
        p.set("cycles", pt.cycles);
        p.set("tasks", pt.tasks);
        p.set("rows_switched", pt.rowsSwitched);
        Json frontier = Json::array();
        for (Count f : pt.frontier) frontier.push(f);
        p.set("frontier", std::move(frontier));
        Json iter_cycles = Json::array();
        for (Cycle c : pt.iterCycles) iter_cycles.push(c);
        p.set("iter_cycles", std::move(iter_cycles));
        p.set("bytes_total", pt.bytesTotal);
        p.set("b_row_bytes", pt.bRowBytes);
        p.set("output_index_bytes", pt.outputIndexBytes);
        p.set("migration_bytes", pt.migrationBytes);
        p.set("cycles_vs_baseline", pt.cyclesVsBaseline);
        p.set("verdict", pt.verdict);
        p.set("wall_ms", pt.wallMs);
        jpoints.push(std::move(p));
    }
    doc.set("points", std::move(jpoints));
    Json summary = Json::object();
    summary.set("deterministic", deterministic);
    summary.set("engines_identical", engines_identical);
    summary.set("functional_ok", functional_ok);
    summary.set("model_traffic_ok", model_traffic_ok);
    Json verdicts = Json::object();
    for (const std::string kernel : {"bfs", "pagerank"}) {
        Json per = Json::object();
        for (const auto &pt : points)
            if (pt.kernel == kernel) per.set(pt.policy, pt.verdict);
        verdicts.set(kernel, std::move(per));
    }
    summary.set("verdicts", std::move(verdicts));
    doc.set("summary", std::move(summary));

    std::string rendered = doc.dump(2);
    if (opts.jsonPath == "-") {
        std::printf("%s", rendered.c_str());
    } else {
        std::ofstream f(opts.jsonPath);
        if (!f) fatal("cannot write " + opts.jsonPath);
        f << rendered;
        std::printf("bench-spgemm JSON written to %s\n",
                    opts.jsonPath.c_str());
    }

    if (!deterministic || !engines_identical || !functional_ok ||
        !model_traffic_ok) {
        std::fprintf(stderr,
                     "bench-spgemm: GATE FAILED — deterministic=%d "
                     "engines_identical=%d functional_ok=%d "
                     "model_traffic_ok=%d\n",
                     deterministic ? 1 : 0, engines_identical ? 1 : 0,
                     functional_ok ? 1 : 0, model_traffic_ok ? 1 : 0);
        return 1;
    }
    return 0;
}

int
runBenchSpgemmCli(int argc, char **argv, int first)
{
    BenchSpgemmOptions opts;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) fatal(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (a == "--dataset") {
            opts.dataset = need("--dataset");
        } else if (a == "--policies" || a == "--designs") {
            opts.policies.clear();
            for (const auto &p : splitCsv(need("--policies")))
                opts.policies.push_back(
                    PolicyRegistry::instance().get(p).name);
        } else if (a == "--pes") {
            opts.pes = parseInt("--pes", need("--pes"));
        } else if (a == "--source") {
            opts.source = parseInt("--source", need("--source"));
        } else if (a == "--damping") {
            opts.damping = parseDouble("--damping", need("--damping"));
        } else if (a == "--tol") {
            opts.tol = parseDouble("--tol", need("--tol"));
        } else if (a == "--max-iters") {
            opts.maxIters = parseInt("--max-iters", need("--max-iters"));
        } else if (a == "--seed") {
            opts.seed = parseUint("--seed", need("--seed"));
        } else if (a == "--scale") {
            opts.scale = parseDouble("--scale", need("--scale"));
        } else if (a == "--platform") {
            opts.platform = findPlatform(need("--platform")).name;
        } else if (a == "--json") {
            opts.jsonPath = need("--json");
        } else {
            fatal("unknown bench-spgemm flag: " + a);
        }
    }
    if (opts.pes < 1) fatal("--pes must be >= 1");
    if (opts.policies.empty()) fatal("--policies must not be empty");
    if (opts.maxIters < 1) fatal("--max-iters must be >= 1");
    findDataset(opts.dataset);
    findPlatform(opts.platform);
    return runBenchSpgemm(opts);
}

} // namespace awb::driver
