/**
 * @file
 * Shared helpers for the paper-reproduction scenarios: design iteration
 * order and per-dataset constants. Banners, argument parsing, seeding and
 * repeat logic live in the driver (src/driver/scenario.hpp).
 */

#pragma once

#include <cctype>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "graph/datasets.hpp"

namespace awb::bench {

/** The paper's five evaluation design points (Fig. 14 legend order). */
inline const std::vector<Design> kFig14Designs = {
    Design::Baseline, Design::LocalA, Design::LocalB, Design::RemoteC,
    Design::RemoteD,
};

/** Uppercase dataset label as the paper prints it. */
inline std::string
datasetLabel(const DatasetSpec &spec)
{
    std::string s = spec.name;
    for (auto &c : s) c = static_cast<char>(std::toupper(c));
    return s;
}

} // namespace awb::bench
