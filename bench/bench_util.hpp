/**
 * @file
 * Shared helpers for the paper-reproduction bench harnesses: dataset and
 * design iteration, common formatting, and a banner printer so every
 * bench's output is self-describing in bench_output.txt.
 */

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "common/table.hpp"
#include "graph/datasets.hpp"

namespace awb::bench {

/** The paper's five evaluation design points (Fig. 14 legend order). */
inline const std::vector<Design> kFig14Designs = {
    Design::Baseline, Design::LocalA, Design::LocalB, Design::RemoteC,
    Design::RemoteD,
};

/** Banner so concatenated bench logs stay readable. */
inline void
banner(const std::string &experiment, const std::string &what)
{
    std::printf("\n==============================================================\n");
    std::printf("%s — %s\n", experiment.c_str(), what.c_str());
    std::printf("==============================================================\n");
}

/** Hop base per dataset (Nell overrides to 2/3-hop, paper §5.2). */
inline int
hopBase(const DatasetSpec &spec)
{
    return spec.hopOverride > 0 ? spec.hopOverride : 1;
}

/** Uppercase dataset label as the paper prints it. */
inline std::string
datasetLabel(const DatasetSpec &spec)
{
    std::string s = spec.name;
    for (auto &c : s) c = static_cast<char>(std::toupper(c));
    return s;
}

} // namespace awb::bench
