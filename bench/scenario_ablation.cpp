/**
 * @file
 * Ablation studies of AWB-GCN design choices called out in DESIGN.md §7
 * (beyond the paper's own figures):
 *
 *  1. Eq. 5 exact division vs the hardware-efficient shift approximation.
 *  2. PESM tracking-window size (tuples tracked concurrently).
 *  3. Initial row-map policy (blocked vs cyclic).
 *  4. Omega-network provisioning (fabric speedup), cycle-accurate.
 *
 * Each table reports total cycles / utilization on a representative
 * skewed workload so the sensitivity of the auto-tuner is visible.
 */

#include <cstdio>

#include "accel/perf_model.hpp"
#include "accel/spmm_engine.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "exec/workload_cache.hpp"

using namespace awb;

namespace {

PerfGcnResult
runModel(const WorkloadProfile &prof, AccelConfig cfg)
{
    return PerfModel(cfg).runGcn(prof);
}

void
runAblation(driver::ScenarioContext &ctx)
{
    auto nell_p = exec::cachedProfile(findDataset("nell"), ctx.seed, 1.0);
    const WorkloadProfile &nell = *nell_p;
    auto cora_p = exec::cachedProfile(findDataset("cora"), ctx.seed, 1.0);
    const WorkloadProfile &cora = *cora_p;

    {
        std::printf("\n1. Eq. 5: exact vs shift-approximate increment "
                    "(Design D, 1024 PEs):\n");
        Table t({"dataset", "variant", "cycles", "util", "rows switched"});
        for (const auto *p : {&cora, &nell}) {
            for (bool approx : {false, true}) {
                AccelConfig cfg = makeConfig(Design::RemoteD, 1024,
                                             hopBase(p->spec));
                cfg.approximateEq5 = approx;
                auto res = runModel(*p, cfg);
                Count switched = 0;
                for (const auto &l : res.layers)
                    switched += l.xw.rowsSwitched + l.ax.rowsSwitched;
                t.addRow({bench::datasetLabel(p->spec),
                          approx ? "shift-approx" : "exact",
                          humanCount(static_cast<double>(res.totalCycles)),
                          percent(res.utilization),
                          std::to_string(switched)});
            }
        }
        std::printf("%s", t.render().c_str());
    }

    {
        std::printf("\n2. PESM tracking-window size (Design D, NELL):\n");
        Table t({"window", "cycles", "util"});
        for (int w : {1, 2, 4, 8}) {
            AccelConfig cfg =
                makeConfig(Design::RemoteD, 1024, hopBase(nell.spec));
            cfg.trackingWindow = w;
            auto res = runModel(nell, cfg);
            t.addRow({std::to_string(w),
                      humanCount(static_cast<double>(res.totalCycles)),
                      percent(res.utilization)});
        }
        std::printf("%s", t.render().c_str());
    }

    {
        std::printf("\n3. Initial row-map policy (Baseline, 1024 PEs):\n");
        Table t({"dataset", "policy", "cycles", "util"});
        for (const auto *p : {&cora, &nell}) {
            for (RowMapPolicy pol :
                 {RowMapPolicy::Blocked, RowMapPolicy::Cyclic}) {
                AccelConfig cfg = makeConfig(Design::Baseline, 1024);
                cfg.mapPolicy = pol;
                auto res = runModel(*p, cfg);
                t.addRow({bench::datasetLabel(p->spec),
                          pol == RowMapPolicy::Blocked ? "blocked"
                                                       : "cyclic",
                          humanCount(static_cast<double>(res.totalCycles)),
                          percent(res.utilization)});
            }
        }
        std::printf("%s", t.render().c_str());
        std::printf("Cyclic interleaving spreads clustered rows across PEs\n"
                    "(a static alternative to remote switching) but cannot\n"
                    "react to the actual non-zero distribution at runtime.\n");
    }

    {
        std::printf("\n4. Omega fabric provisioning (cycle-accurate, CORA "
                    "scale 0.3, 32 PEs, Design B):\n");
        auto ds_p = exec::cachedDataset(findDataset("cora"), ctx.seed + 4, 0.3 * ctx.scale);
        const Dataset &ds = *ds_p;
        Rng rng(9);
        DenseMatrix b(ds.spec.nodes, 8);
        b.fillUniform(rng, -1.0f, 1.0f);
        Table t({"speedup", "buffer", "cycles", "util",
                 "blocked moves"});
        for (int sp : {1, 2, 4, 8}) {
            AccelConfig cfg = makeConfig(Design::LocalB, 32);
            cfg.networkSpeedup = sp;
            RowPartition part(ds.spec.nodes, 32, cfg.mapPolicy);
            SpmmStats stats = SpmmEngine(cfg)
                                  .execute(ds.adjacency, b,
                                           TdqKind::Tdq2OmegaCsc, part)
                                  .stats;
            t.addRow({std::to_string(sp),
                      std::to_string(cfg.omegaBufferDepth),
                      std::to_string(stats.cycles),
                      percent(stats.utilization),
                      std::to_string(stats.rawStalls)});
        }
        std::printf("%s", t.render().c_str());
        std::printf("An under-provisioned fabric (speedup 1) bottlenecks\n"
                    "PEs regardless of balance — the paper's design\n"
                    "premise is a distribution path that keeps PEs fed.\n");
    }
}

const driver::ScenarioRegistrar reg({
    "ablation", "DESIGN.md §7",
    "design-choice sensitivity studies", runAblation});

} // namespace
