/**
 * @file
 * Dynamic-graph streaming study (not a paper figure — the paper tunes
 * against a fixed adjacency): timestamped edge churn applied between
 * inference epochs (DESIGN.md §12). For each balance policy the
 * carried partition's per-epoch cycles are compared against a freshly
 * tuned partition's; the drift curve and its half-life show how fast a
 * tuned workload balance goes stale under churn, and how much of the
 * gap the delta-reacting policies close without a full retune.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "accel/policy.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "dynamic/dynamic_runner.hpp"
#include "exec/workload_cache.hpp"
#include "graph/datasets.hpp"

using namespace awb;

namespace {

void
runDynamicGraphs(driver::ScenarioContext &ctx)
{
    const DatasetSpec &spec = findDataset("cora");
    auto a_p = exec::cachedAdjacency(spec, ctx.seed, ctx.scale);
    const CscMatrix &a = *a_p;
    const std::vector<std::string> policies = {
        "baseline",        "rescratch",  "rechunk", "delta-greedy",
        "delta-threshold", "work-steal", "remote-d"};
    // Growth-heavy churn on a wide array: few rows per PE, so hub rows
    // fattening under preferential attachment age a frozen map visibly
    // (at 64 PEs the same churn averages out across each PE's rows).
    const int pes = 256;

    dynamic::ChurnParams churn;
    churn.seed = ctx.seed;
    churn.insertFrac = 0.9;
    dynamic::DynamicOptions opts;
    opts.epochs = 10;
    opts.eventsPerEpoch = std::max<Count>(16, a.nnz() / 10);
    opts.denseCols = 8;
    opts.seed = ctx.seed;

    std::printf("%s, %d PEs, %lld churn events/epoch "
                "(DESIGN.md §12)\n",
                bench::datasetLabel(spec).c_str(), pes,
                static_cast<long long>(opts.eventsPerEpoch));

    Table t({"design", "cycles", "moved", "end drift", "half-life"});
    driver::Json jpolicies = driver::Json::object();
    for (const auto &policy : policies) {
        AccelConfig cfg = makePolicyConfig(policy, pes, hopBase(spec));
        dynamic::DynamicRunStats s =
            dynamic::runChurnGcn(cfg, a, churn, opts);

        driver::Json curve = driver::Json::array();
        for (const auto &e : s.epochs) {
            driver::Json p = driver::Json::object();
            p.set("nnz", e.nnz);
            p.set("rows_changed", e.rowsChanged);
            p.set("rows_moved", e.rowsMoved);
            p.set("cycles", e.cycles);
            p.set("fresh_cycles", e.freshCycles);
            p.set("drift", e.drift);
            curve.push(std::move(p));
        }
        driver::Json jp = driver::Json::object();
        jp.set("epochs", std::move(curve));
        jp.set("half_life_epochs", s.halfLifeEpochs);
        jp.set("rows_moved", s.rowsMoved);
        jpolicies.set(policy, std::move(jp));

        const double end_drift =
            s.epochs.empty() ? 0.0 : s.epochs.back().drift;
        t.addRow({PolicyRegistry::instance().get(policy).label,
                  humanCount(static_cast<double>(s.totalCycles)),
                  std::to_string(s.rowsMoved), fixed(end_drift, 3),
                  s.halfLifeEpochs < 0
                      ? "never"
                      : std::to_string(s.halfLifeEpochs)});
    }
    std::printf("%s", t.render().c_str());

    ctx.result.set("dataset", spec.name);
    ctx.result.set("pes", pes);
    ctx.result.set("events_per_epoch", opts.eventsPerEpoch);
    ctx.result.set("policies", std::move(jpolicies));
    std::printf(
        "\nShape targets: the baseline never drifts (its carried and\n"
        "fresh partitions are the same static map); rescratch retunes\n"
        "fully every epoch so drift stays near zero at full migration\n"
        "cost; the delta policies move only churned rows, trading a\n"
        "little drift for far fewer migrations; work-steal latches\n"
        "converged and then ages visibly (finite half-life); rechunk's\n"
        "equal-work chunks oscillate near zero; remote-d's interleaved\n"
        "map plus sharing hops soak the churn imbalance.\n");
}

const driver::ScenarioRegistrar reg({
    "dynamic-graphs", "extension",
    "streaming edge churn vs partition staleness (DESIGN.md §12)",
    runDynamicGraphs});

} // namespace
