/**
 * @file
 * Reproduces paper Figures 1 and 13: the per-row non-zero distribution of
 * the five adjacency matrices — the evidence that real graphs are heavily
 * imbalanced (power law) and that Nell is additionally clustered.
 * Prints distribution summaries and an ASCII log-log histogram per
 * dataset.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "exec/workload_cache.hpp"
#include "graph/datasets.hpp"
#include "graph/degree_dist.hpp"

using namespace awb;

namespace {

void
printHistogram(const std::vector<Count> &row_nnz)
{
    Count max_d = *std::max_element(row_nnz.begin(), row_nnz.end());
    // Power-of-4 buckets: 1, 2-4, 5-16, ...
    std::vector<Count> buckets;
    for (Count lo = 1; lo <= max_d; lo *= 4) buckets.push_back(0);
    for (Count d : row_nnz) {
        if (d <= 0) continue;
        std::size_t b = 0;
        for (Count lo = 1; lo * 4 <= d; lo *= 4) ++b;
        ++buckets[b];
    }
    Count peak = *std::max_element(buckets.begin(), buckets.end());
    Count lo = 1;
    for (std::size_t b = 0; b < buckets.size(); ++b, lo *= 4) {
        int bar = peak > 0
            ? static_cast<int>(60.0 * static_cast<double>(buckets[b]) /
                               static_cast<double>(peak))
            : 0;
        std::printf("  nnz %8lld-%-8lld |%-60s| %lld rows\n",
                    static_cast<long long>(lo),
                    static_cast<long long>(lo * 4 - 1),
                    std::string(static_cast<std::size_t>(bar), '#').c_str(),
                    static_cast<long long>(buckets[b]));
    }
}

void
runFig13(driver::ScenarioContext &ctx)
{
    Table t({"dataset", "rows", "nnz", "mean/row", "max/row", "gini",
             "top-1% rows hold"});
    for (const auto &spec : paperDatasets()) {
        auto prof_p = exec::cachedProfile(spec, ctx.seed, ctx.scale);
        const WorkloadProfile &prof = *prof_p;
        auto &nnz = prof.aRowNnz;
        Count total = std::accumulate(nnz.begin(), nnz.end(), Count(0));
        Count max_d = *std::max_element(nnz.begin(), nnz.end());
        auto sorted = nnz;
        std::sort(sorted.begin(), sorted.end(), std::greater<>());
        std::size_t top = std::max<std::size_t>(1, sorted.size() / 100);
        Count top_sum = std::accumulate(sorted.begin(),
                                        sorted.begin() +
                                            static_cast<long>(top),
                                        Count(0));
        t.addRow({bench::datasetLabel(spec),
                  std::to_string(prof.spec.nodes),
                  humanCount(static_cast<double>(total)),
                  fixed(static_cast<double>(total) /
                        static_cast<double>(prof.spec.nodes), 1),
                  std::to_string(max_d), fixed(giniCoefficient(nnz), 2),
                  percent(static_cast<double>(top_sum) /
                          static_cast<double>(total))});
    }
    std::printf("%s", t.render().c_str());

    for (const auto &spec : paperDatasets()) {
        auto prof_p = exec::cachedProfile(spec, ctx.seed, ctx.scale);
        const WorkloadProfile &prof = *prof_p;
        std::printf("\n%s row-degree histogram (log buckets):\n",
                    bench::datasetLabel(spec).c_str());
        printHistogram(prof.aRowNnz);
    }
    std::printf("\nShape target: every dataset is heavy-tailed; NELL shows\n"
                "the extreme clustered tail (a handful of rows with >10^3\n"
                "non-zeros) that forces 2/3-hop sharing (paper §5.2).\n");
}

const driver::ScenarioRegistrar reg({
    "fig13-nnz", "Figures 1 & 13",
    "adjacency per-row non-zero distribution (full scale)", runFig13});

} // namespace
