/**
 * @file
 * Reproduces paper Figure 14 (A-E): overall GCN inference delay with
 * per-layer breakdown and average PE utilization for the five designs
 * (Baseline, 1-hop, 2-hop, 1-hop+remote, 2-hop+remote; 2/3-hop for Nell)
 * on the five datasets, from the round-level model at full dataset scale.
 *
 * PE count: 512. The paper does not state Fig. 14's PE count, but its own
 * numbers pin it down: Table 3's Nell latency (8.4 ms at 275 MHz, 782M
 * ops) implies ~33% utilization at 1024 PEs, while Fig. 14 reports 77%
 * for the same design — only consistent if Fig. 14 used fewer PEs.
 * 512 (the Fig. 15 sweep's starting point) reconciles the two.
 */

#include <cstdio>
#include <array>
#include <map>

#include "accel/perf_model.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "exec/workload_cache.hpp"

using namespace awb;

namespace {

void
runFig14Overall(driver::ScenarioContext &ctx)
{
    // Paper-reported overall PE utilizations (percent) for shape checks:
    // {baseline, local-1, local-2, local-1+remote, local-2+remote}.
    const std::map<std::string, std::array<int, 5>> paper_util = {
        {"cora", {53, 83, 83, 90, 90}},
        {"citeseer", {71, 83, 83, 89, 89}},
        {"pubmed", {69, 93, 93, 96, 96}},
        {"nell", {13, 44, 53, 63, 77}},
        {"reddit", {92, 99, 99, 99, 99}},
    };

    for (const auto &spec : paperDatasets()) {
        auto prof_p = exec::cachedProfile(spec, ctx.seed, ctx.scale);
        const WorkloadProfile &prof = *prof_p;
        std::printf("\n%s (%d nodes, hop base %d):\n",
                    bench::datasetLabel(spec).c_str(), spec.nodes,
                    hopBase(spec));
        Table t({"design", "L1 cycles", "L2 cycles", "total", "speedup",
                 "util (meas)", "util (paper)"});
        Cycle base_total = 0;
        const auto &paper = paper_util.at(spec.name);
        driver::Json ds_json = driver::Json::object();
        for (std::size_t d = 0; d < bench::kFig14Designs.size(); ++d) {
            AccelConfig cfg = makeConfig(bench::kFig14Designs[d], 512,
                                         hopBase(spec));
            auto res = PerfModel(cfg).runGcn(prof);
            if (d == 0) base_total = res.totalCycles;
            driver::Json dj = driver::Json::object();
            dj.set("cycles", res.totalCycles);
            dj.set("utilization", res.utilization);
            dj.set("paper_utilization", paper[d] / 100.0);
            ds_json.set(designName(bench::kFig14Designs[d]), std::move(dj));
            t.addRow({designName(bench::kFig14Designs[d]),
                      humanCount(static_cast<double>(
                          res.layers[0].pipelinedCycles)),
                      humanCount(static_cast<double>(
                          res.layers[1].pipelinedCycles)),
                      humanCount(static_cast<double>(res.totalCycles)),
                      fixed(static_cast<double>(base_total) /
                            static_cast<double>(res.totalCycles), 2) + "x",
                      percent(res.utilization),
                      std::to_string(paper[d]) + "%"});
        }
        ctx.result.set(spec.name, std::move(ds_json));
        std::printf("%s", t.render().c_str());
    }
    std::printf(
        "\nShape targets: rebalancing lifts utilization everywhere; the gain\n"
        "is mild where the baseline is already balanced (REDDIT), large on\n"
        "power-law graphs (CORA/CITESEER/PUBMED), and extreme on the\n"
        "clustered NELL; Design(D) is never slower than Design(A).\n");
}

const driver::ScenarioRegistrar reg({
    "fig14-overall", "Figure 14 A-E",
    "overall delay and PE utilization per design (512 PEs)",
    runFig14Overall});

} // namespace
