/**
 * @file
 * Reproduces paper Figure 14 (K-O): hardware-resource consumption of the
 * five designs, normalized to CLB-equivalents and split the way the paper
 * plots it — task-queue buffering (sized by the worst occupancy the
 * workload produces) versus all other logic (constant per design up to
 * the small rebalancing-logic overheads). Also reports the Nell TQ-depth
 * headline (paper: 65128 slots baseline -> 2675 with Design(D)).
 */

#include <cstdio>

#include "accel/perf_model.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "exec/workload_cache.hpp"
#include "model/area_model.hpp"

using namespace awb;

namespace {

void
runFig14Resources(driver::ScenarioContext &ctx)
{
    for (const auto &spec : paperDatasets()) {
        auto prof_p = exec::cachedProfile(spec, ctx.seed, ctx.scale);
        const WorkloadProfile &prof = *prof_p;
        std::printf("\n%s:\n", bench::datasetLabel(spec).c_str());
        Table t({"design", "peak TQ depth", "TQ CLB", "other CLB",
                 "total CLB", "vs baseline"});
        double base_total = 0.0;
        for (Design d : bench::kFig14Designs) {
            AccelConfig cfg = makeConfig(d, 512, hopBase(spec));
            auto res = PerfModel(cfg).runGcn(prof);
            std::size_t depth = 0;
            for (const auto &layer : res.layers) {
                depth = std::max(depth, layer.xw.peakQueueDepth);
                depth = std::max(depth, layer.ax.peakQueueDepth);
            }
            auto area = estimateArea(cfg, depth);
            if (d == Design::Baseline) base_total = area.totalClb;
            t.addRow({designName(d), std::to_string(depth),
                      humanCount(area.tqClb), humanCount(area.otherClb),
                      humanCount(area.totalClb),
                      percent(area.totalClb / base_total)});
        }
        std::printf("%s", t.render().c_str());
    }
    std::printf(
        "\nShape targets: rebalancing shrinks the TQ component sharply\n"
        "(NELL most of all) while the added logic costs just 2.7/4.3/1.9%%\n"
        "(1-hop/2-hop/remote), so total area goes DOWN versus the baseline\n"
        "on the imbalanced datasets.\n");
}

const driver::ScenarioRegistrar reg({
    "fig14-resources", "Figure 14 K-O",
    "hardware resources (CLB-equivalents, 512 PEs)", runFig14Resources});

} // namespace
