/**
 * @file
 * Reproduces paper Figure 14 (F-J): per-SPMM cycle breakdown — "Ideal"
 * cycles (perfect balance) vs "Sync" cycles (waiting at the per-column
 * barrier) — plus per-SPMM PE utilization, for the four SPMM operations of
 * the 2-layer GCN (X×W and A×(XW) in each layer) across the five designs.
 */

#include <cstdio>

#include "accel/perf_model.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "exec/workload_cache.hpp"

using namespace awb;

namespace {

void
runFig14Spmm(driver::ScenarioContext &ctx)
{
    for (const auto &spec : paperDatasets()) {
        auto prof_p = exec::cachedProfile(spec, ctx.seed, ctx.scale);
        const WorkloadProfile &prof = *prof_p;
        std::printf("\n%s:\n", bench::datasetLabel(spec).c_str());
        Table t({"design", "SPMM", "ideal", "sync", "total", "util"});
        for (Design d : bench::kFig14Designs) {
            AccelConfig cfg = makeConfig(d, 512, hopBase(spec));
            auto res = PerfModel(cfg).runGcn(prof);
            const struct
            {
                const char *name;
                const PerfSpmmResult *r;
            } spmms[4] = {
                {"L1 X*W", &res.layers[0].xw},
                {"L1 A*(XW)", &res.layers[0].ax},
                {"L2 X*W", &res.layers[1].xw},
                {"L2 A*(XW)", &res.layers[1].ax},
            };
            for (const auto &s : spmms) {
                t.addRow({designName(d), s.name,
                          humanCount(static_cast<double>(s.r->idealCycles)),
                          humanCount(static_cast<double>(s.r->syncCycles)),
                          humanCount(static_cast<double>(s.r->cycles)),
                          percent(s.r->utilization)});
            }
        }
        std::printf("%s", t.render().c_str());
    }
    std::printf(
        "\nShape targets (paper §5.2): the imbalance (sync share) sits in\n"
        "A*(XW) of layer 1 for CORA/CITESEER/PUBMED and of the hidden layer\n"
        "for NELL; REDDIT is nearly sync-free already; L2 X*W is dense-ish\n"
        "(post-ReLU) so its baseline utilization is high except CORA.\n");
}

const driver::ScenarioRegistrar reg({
    "fig14-spmm", "Figure 14 F-J",
    "per-SPMM ideal vs sync cycles per design (512 PEs)", runFig14Spmm});

} // namespace
