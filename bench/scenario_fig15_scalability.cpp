/**
 * @file
 * Reproduces paper Figure 15: scalability of the baseline, local-sharing,
 * and local+remote designs from 512 to 768 to 1024 PEs — utilization,
 * performance (cycles and speedup over the 512-PE baseline), and area.
 * Uses the round-level model (768 is not a power of two, which only the
 * cycle-accurate Omega path requires). Local sharing uses 1 hop (3 for
 * Nell), as in the paper.
 */

#include <cstdio>

#include "accel/perf_model.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "exec/workload_cache.hpp"
#include "model/area_model.hpp"

using namespace awb;

namespace {

void
runFig15(driver::ScenarioContext &ctx)
{
    const int pe_counts[3] = {512, 768, 1024};
    for (const auto &spec : paperDatasets()) {
        auto prof_p = exec::cachedProfile(spec, ctx.seed, ctx.scale);
        const WorkloadProfile &prof = *prof_p;
        std::printf("\n%s:\n", bench::datasetLabel(spec).c_str());
        Table t({"design", "PEs", "cycles", "speedup", "util",
                 "area (CLB)"});
        double base512 = 0.0;
        for (Design d :
             {Design::Baseline, Design::LocalA, Design::RemoteC}) {
            for (int pes : pe_counts) {
                AccelConfig cfg = makeConfig(d, pes, hopBase(spec));
                auto res = PerfModel(cfg).runGcn(prof);
                std::size_t depth = 0;
                for (const auto &layer : res.layers) {
                    depth = std::max(depth, layer.xw.peakQueueDepth);
                    depth = std::max(depth, layer.ax.peakQueueDepth);
                }
                auto area = estimateArea(cfg, depth);
                if (d == Design::Baseline && pes == 512)
                    base512 = static_cast<double>(res.totalCycles);
                t.addRow({designName(d), std::to_string(pes),
                          humanCount(static_cast<double>(res.totalCycles)),
                          fixed(base512 /
                                static_cast<double>(res.totalCycles), 2) +
                              "x",
                          percent(res.utilization),
                          humanCount(area.totalClb)});
            }
        }
        std::printf("%s", t.render().c_str());
    }
    std::printf(
        "\nShape targets (paper §5.3): baseline utilization DROPS as PEs\n"
        "grow (fewer rows per PE expose the imbalance); the rebalanced\n"
        "designs hold utilization nearly flat, so their performance scales\n"
        "almost linearly in PE count.\n");
}

const driver::ScenarioRegistrar reg({
    "fig15-scalability", "Figure 15",
    "scalability over 512/768/1024 PEs per design", runFig15});

} // namespace
