/**
 * @file
 * Reproduces paper Figure 9: local versus remote non-zero imbalance on a
 * small PE array. Two crafted 32x32 sparse matrices at 75% sparsity are
 * mapped onto 8 PEs; the cycle-accurate engine shows how each imbalance
 * type inflates the per-column delay over the balanced ideal, and how
 * local sharing fixes (A) but needs remote switching for (B).
 */

#include <cstdio>

#include "accel/spmm_engine.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "sparse/convert.hpp"

using namespace awb;

namespace {

/** (A) Local imbalance: nnz counts alternate between adjacent rows. */
CooMatrix
localImbalance(Rng &rng)
{
    CooMatrix m(32, 32);
    for (Index r = 0; r < 32; ++r) {
        Count deg = (r % 4 == 0) ? 20 : 4;  // ~25% density overall
        for (Count d = 0; d < deg; ++d) m.add(r, rng.nextIndex(32), 1.0f);
    }
    m.canonicalize();
    return m;
}

/** (B) Remote imbalance: non-zeros concentrated in one region of rows. */
CooMatrix
remoteImbalance(Rng &rng)
{
    CooMatrix m(32, 32);
    for (Index r = 0; r < 32; ++r) {
        Count deg = (r >= 8 && r < 16) ? 24 : 2;
        for (Count d = 0; d < deg; ++d) m.add(r, rng.nextIndex(32), 1.0f);
    }
    m.canonicalize();
    return m;
}

void
runCase(const char *label, const CooMatrix &coo)
{
    auto a = CscMatrix::fromCoo(coo);
    Rng rng(7);
    DenseMatrix b(32, 8);
    b.fillUniform(rng, 0.1f, 1.0f);

    std::printf("\n%s (%lld non-zeros, 8 PEs):\n", label,
                static_cast<long long>(a.nnz()));
    RowPartition workload_view(32, 8, RowMapPolicy::Blocked);
    auto pe_work = workload_view.workload(a.rowNnz());
    std::printf("  per-PE non-zeros: ");
    for (auto w : pe_work) std::printf("%lld ", static_cast<long long>(w));
    std::printf("\n");

    Table t({"design", "cycles", "cycles/column", "vs ideal", "PE util"});
    Cycle ideal = 0;
    for (Design d : {Design::Baseline, Design::LocalA, Design::LocalB,
                     Design::RemoteC, Design::RemoteD}) {
        AccelConfig cfg = makeConfig(d, 8);
        RowPartition part(32, 8, cfg.mapPolicy);
        SpmmStats stats = SpmmEngine(cfg)
                              .execute(a, b, TdqKind::Tdq2OmegaCsc, part)
                              .stats;
        if (d == Design::Baseline) ideal = stats.idealCycles;
        t.addRow({designName(d), std::to_string(stats.cycles),
                  fixed(static_cast<double>(stats.cycles) /
                        static_cast<double>(stats.rounds), 1),
                  fixed(static_cast<double>(stats.cycles) /
                        static_cast<double>(ideal), 2) + "x",
                  percent(stats.utilization)});
    }
    std::printf("%s", t.render().c_str());
}

void
runFig9(driver::ScenarioContext &ctx)
{
    Rng rng(ctx.seed + 41);
    auto local = localImbalance(rng);
    auto remote = remoteImbalance(rng);
    runCase("(A) Local imbalance", local);
    runCase("(B) Remote imbalance", remote);
    std::printf(
        "\nShape target (paper Fig. 9/10): local imbalance is absorbed by\n"
        "local sharing alone; remote imbalance (clustered rows) keeps the\n"
        "cluster's PEs hot until remote switching spreads the rows.\n");
}

const driver::ScenarioRegistrar reg({
    "fig9-imbalance", "Figure 9",
    "local vs remote imbalance on 8 PEs", runFig9});

} // namespace
