/**
 * @file
 * Graph-analytics kernel study (not a paper figure — the paper runs
 * GCN inference only): BFS and PageRank as iterated sparse-output
 * SpGEMMs on the AWB array (DESIGN.md §11). Prints the per-iteration
 * frontier-size and cycle curves under the static baseline and the
 * Design(D) rebalancer, showing when dynamic rebalancing of a
 * frontier workload helps (PageRank's all-hot frontier) and when it
 * hurts (BFS's shifting frontiers pay migration for structure that is
 * gone next level).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "accel/policy.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "exec/workload_cache.hpp"
#include "graph/datasets.hpp"
#include "kernels/bfs.hpp"
#include "kernels/pagerank.hpp"

using namespace awb;

namespace {

driver::Json
iterationCurve(const kernels::FrontierRunStats &stats)
{
    driver::Json curve = driver::Json::array();
    for (const auto &it : stats.iterations) {
        driver::Json p = driver::Json::object();
        p.set("frontier", it.frontierNnz);
        p.set("cycles", it.cycles);
        p.set("tasks", it.tasks);
        p.set("rows_switched", it.rowsSwitched);
        curve.push(std::move(p));
    }
    return curve;
}

void
runGraphKernels(driver::ScenarioContext &ctx)
{
    const DatasetSpec &spec = findDataset("cora");
    auto a_p = exec::cachedAdjacency(spec, ctx.seed, ctx.scale);
    const CscMatrix &a = *a_p;
    const std::vector<std::string> policies = {"baseline", "remote-d"};
    const int pes = 64;

    std::printf("%s, %d PEs, frontier kernels (DESIGN.md §11)\n",
                bench::datasetLabel(spec).c_str(), pes);

    driver::Json jkernels = driver::Json::object();
    for (const std::string kernel : {"bfs", "pagerank"}) {
        std::printf("\n%s:\n", kernel.c_str());
        Table t({"design", "iters", "cycles", "tasks", "switched",
                 "peak frontier"});
        driver::Json jpolicies = driver::Json::object();
        for (const auto &policy : policies) {
            AccelConfig cfg = makePolicyConfig(policy, pes, hopBase(spec));
            kernels::FrontierRunStats stats;
            if (kernel == "bfs") {
                stats = kernels::runBfs(cfg, a, /*source=*/0).stats;
            } else {
                stats = kernels::runPagerank(cfg, a, /*damping=*/0.85,
                                             /*tol=*/1e-6,
                                             /*maxIters=*/200)
                            .stats;
            }
            Count peak = 0;
            for (const auto &it : stats.iterations)
                peak = std::max(peak, it.frontierNnz);
            t.addRow({PolicyRegistry::instance().get(policy).label,
                      std::to_string(stats.iterations.size()),
                      humanCount(static_cast<double>(stats.totalCycles)),
                      humanCount(static_cast<double>(stats.totalTasks)),
                      std::to_string(stats.rowsSwitched),
                      std::to_string(peak)});

            driver::Json jp = driver::Json::object();
            jp.set("cycles", stats.totalCycles);
            jp.set("tasks", stats.totalTasks);
            jp.set("rows_switched", stats.rowsSwitched);
            jp.set("iterations", iterationCurve(stats));
            jpolicies.set(policy, std::move(jp));
        }
        std::printf("%s", t.render().c_str());
        jkernels.set(kernel, std::move(jpolicies));
    }
    ctx.result.set("dataset", spec.name);
    ctx.result.set("pes", pes);
    ctx.result.set("kernels", std::move(jkernels));
    std::printf(
        "\nShape targets: BFS frontiers ramp up then collapse in a few\n"
        "levels, so most iterations are tiny and rebalancing has little\n"
        "to amortize against; PageRank processes the full vertex set\n"
        "every iteration, the workload the rebalancer was built for.\n");
}

const driver::ScenarioRegistrar reg({
    "graph-kernels", "extension",
    "BFS/PageRank frontier SpGEMM kernels (DESIGN.md §11)",
    runGraphKernels});

} // namespace
