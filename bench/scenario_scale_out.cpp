/**
 * @file
 * Multi-chip scale-out study (not a paper figure — the paper evaluates a
 * single accelerator): shards each evaluation graph across 1..16 chips
 * with the Design(D) policy and prints the scaling curve the round-level
 * model predicts — cycles, speedup over one chip, parallel efficiency,
 * halo traffic crossing the inter-chip link and the cross-chip load
 * imbalance of the row sharding (DESIGN.md §9).
 */

#include <cstdio>
#include <vector>

#include "accel/policy.hpp"
#include "accel/scaleout.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "exec/workload_cache.hpp"
#include "graph/datasets.hpp"
#include "model/memory_model.hpp"

using namespace awb;

namespace {

void
runScaleOut(driver::ScenarioContext &ctx)
{
    const std::vector<int> chip_curve = {1, 2, 4, 8, 16};
    const std::string platform = "d5005-ddr4";

    std::printf("platform %s, policy remote-d, 1024 PEs per chip\n",
                platform.c_str());
    driver::Json jdatasets = driver::Json::object();
    for (const auto &spec : paperDatasets()) {
        auto prof_p = exec::cachedProfile(spec, ctx.seed, ctx.scale);
        const WorkloadProfile &prof = *prof_p;
        auto a_p = exec::cachedAdjacency(spec, ctx.seed, ctx.scale);
        const CscMatrix &a = *a_p;
        std::printf("\n%s:\n", bench::datasetLabel(spec).c_str());
        Table t({"chips", "cycles", "speedup", "efficiency", "halo MB",
                 "halo-bound", "imbalance"});
        Cycle one_chip = 0;
        driver::Json jcurve = driver::Json::array();
        for (int chips : chip_curve) {
            AccelConfig cfg =
                makePolicyConfig("remote-d", 1024, hopBase(spec));
            cfg.platform = platform;
            cfg.chips = chips;
            ShardedPerfGcnResult res = modelGcnSharded(cfg, prof, &a);

            if (chips == 1) one_chip = res.result.totalCycles;
            const double speedup =
                res.result.totalCycles > 0
                    ? static_cast<double>(one_chip) /
                          static_cast<double>(res.result.totalCycles)
                    : 0.0;
            t.addRow({std::to_string(chips),
                      humanCount(static_cast<double>(res.result.totalCycles)),
                      fixed(speedup, 2) + "x",
                      percent(speedup / static_cast<double>(chips)),
                      fixed(static_cast<double>(res.scaleout.haloBytes) / 1e6,
                            2),
                      std::to_string(res.scaleout.haloBoundRounds),
                      fixed(res.scaleout.chipImbalance, 3)});

            driver::Json p = driver::Json::object();
            p.set("chips", chips);
            p.set("cycles", res.result.totalCycles);
            p.set("speedup", speedup);
            p.set("halo_bytes", res.scaleout.haloBytes);
            p.set("chip_imbalance", res.scaleout.chipImbalance);
            jcurve.push(std::move(p));
        }
        std::printf("%s", t.render().c_str());
        jdatasets.set(spec.name, std::move(jcurve));
    }
    ctx.result.set("platform", platform);
    ctx.result.set("datasets", std::move(jdatasets));
    std::printf(
        "\nShape targets: speedup grows with the chip count but sub-linearly\n"
        "— the power-law graphs cut poorly, so halo traffic rises with\n"
        "every split while per-chip work shrinks, and the round barrier\n"
        "pays for the most-loaded chip (imbalance > 1).\n");
}

const driver::ScenarioRegistrar reg({
    "scale-out", "extension",
    "multi-chip sharding scaling curve (DESIGN.md §9)", runScaleOut});

} // namespace
