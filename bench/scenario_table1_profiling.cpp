/**
 * @file
 * Reproduces paper Table 1: sparsity and dimensions of the matrices in a
 * 2-layer GCN for the five evaluation datasets. Printed from the
 * full-scale synthetic profiles; the "paper" columns give the published
 * values for shape comparison (EXPERIMENTS.md discusses deltas).
 */

#include <cstdio>
#include <numeric>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "exec/workload_cache.hpp"
#include "graph/datasets.hpp"

using namespace awb;

namespace {

void
runTable1(driver::ScenarioContext &ctx)
{
    Table t({"dataset", "nodes", "F1", "F2", "F3", "dens A (meas)",
             "dens A (paper)", "dens X1 (meas)", "dens X1 (paper)",
             "dens X2 (meas)", "dens X2 (paper)"});

    for (const auto &spec : paperDatasets()) {
        auto prof_p = exec::cachedProfile(spec, ctx.seed, ctx.scale);
        const WorkloadProfile &prof = *prof_p;
        auto sum = [](const std::vector<Count> &v) {
            return std::accumulate(v.begin(), v.end(), Count(0));
        };
        double n = static_cast<double>(spec.nodes);
        double dens_a = static_cast<double>(sum(prof.aRowNnz)) / (n * n);
        double dens_x1 =
            static_cast<double>(sum(prof.x1RowNnz)) / (n * spec.f1);
        double dens_x2 =
            static_cast<double>(sum(prof.x2RowNnz)) / (n * spec.f2);

        t.addRow({bench::datasetLabel(spec), std::to_string(spec.nodes),
                  std::to_string(spec.f1), std::to_string(spec.f2),
                  std::to_string(spec.f3), percent(dens_a),
                  percent(spec.densityA), percent(dens_x1),
                  percent(spec.densityX1), percent(dens_x2),
                  percent(spec.densityX2)});
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "W matrices are 100%% dense in every dataset (paper: same).\n");
    std::printf("Measured adjacency densities include the +I self loops\n"
                "of the renormalization trick; the published numbers\n"
                "profile the raw adjacency, hence the small positive\n"
                "offset.\n");
}

const driver::ScenarioRegistrar reg({
    "table1-profiling", "Table 1",
    "matrix density and dimensions per dataset", runTable1});

} // namespace
