/**
 * @file
 * Reproduces paper Table 2: multiply operations required under the two
 * matrix-computation orders, (A×X)×W versus A×(X×W), per layer and in
 * total. The ~1-3 orders-of-magnitude advantage of A×(X×W) motivates the
 * accelerator's execution order (paper §3.1).
 */

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "gcn/ops_count.hpp"
#include "exec/workload_cache.hpp"
#include "graph/datasets.hpp"

using namespace awb;

namespace {

void
runTable2(driver::ScenarioContext &ctx)
{
    // Paper-reported totals for the shape check.
    const std::map<std::string, std::pair<double, double>> paper_total = {
        {"cora", {62.8e6, 1.33e6}},   {"citeseer", {198.0e6, 2.23e6}},
        {"pubmed", {165.5e6, 18.6e6}}, {"nell", {258e9, 782e6}},
        {"reddit", {17.1e9, 6.6e9}},
    };

    Table t({"dataset", "layer", "(A*X)*W", "A*(X*W)", "ratio"});
    for (const auto &spec : paperDatasets()) {
        auto ops = countOpsProfile(*exec::cachedProfile(spec, ctx.seed, ctx.scale));
        for (std::size_t l = 0; l < ops.layer.size(); ++l) {
            t.addRow({bench::datasetLabel(spec),
                      "Layer" + std::to_string(l + 1),
                      humanCount(static_cast<double>(ops.layer[l].axFirst)),
                      humanCount(static_cast<double>(ops.layer[l].xwFirst)),
                      fixed(static_cast<double>(ops.layer[l].axFirst) /
                            static_cast<double>(ops.layer[l].xwFirst), 1) +
                          "x"});
        }
        auto paper = paper_total.at(spec.name);
        t.addRow({bench::datasetLabel(spec), "ALL",
                  humanCount(static_cast<double>(ops.total.axFirst)),
                  humanCount(static_cast<double>(ops.total.xwFirst)),
                  fixed(static_cast<double>(ops.total.axFirst) /
                        static_cast<double>(ops.total.xwFirst), 1) + "x"});
        t.addRow({bench::datasetLabel(spec), "ALL (paper)",
                  humanCount(paper.first), humanCount(paper.second),
                  fixed(paper.first / paper.second, 1) + "x"});
    }
    std::printf("%s", t.render().c_str());
    std::printf("Shape target: A*(X*W) cheaper by 1-3 orders of magnitude on\n"
                "every dataset; the accelerator therefore computes X*W first\n"
                "(paper §3.1).\n");
}

const driver::ScenarioRegistrar reg({
    "table2-orders", "Table 2",
    "multiply ops per execution order (full scale)", runTable2});

} // namespace
