/**
 * @file
 * Reproduces paper Table 3: cross-platform latency and energy efficiency
 * for the five datasets — CPU (host-measured reference GCN for the
 * datasets that fit comfortably; analytic from op counts otherwise), an
 * analytic GPU model (no GPU in this environment; DESIGN.md §3), the
 * EIE-like design, the baseline accelerator, and AWB-GCN Design(D), the
 * last three from the round-level model at 1024 PEs.
 *
 * Absolute numbers are environment-specific; the reproduction targets are
 * the orderings and the rough speedup factors (paper averages: 246.7x vs
 * CPU, 78.9x vs GPU, 2.7x vs baseline, 11.0x vs EIE-like).
 *
 * The accelerator rows run behind the off-chip memory model
 * (DESIGN.md §8). The default platform is `unconstrained`: the paper's
 * Table 3 graphs fit on-chip on its boards, so the measured ratios are
 * compute-bound and the memory model must not distort them (and the
 * unconstrained run is bit-identical to the pre-memory-model scenario).
 * Pass `platform=NAME` (any `awbsim --list-platforms` entry) to instead
 * stream every operand from that memory system — on `d5005-ddr4` the
 * designs converge as rounds hit the bandwidth floor, which is exactly
 * the claim that workload balancing only pays where memory keeps up.
 */

#include <cstdio>

#include "accel/perf_model.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "exec/workload_cache.hpp"
#include "gcn/model.hpp"
#include "gcn/ops_count.hpp"
#include "model/energy_model.hpp"
#include "model/memory_model.hpp"
#include "model/platforms.hpp"

using namespace awb;

namespace {

void
runTable3(driver::ScenarioContext &ctx)
{
    // The 'measure-all' argument additionally wall-clock-measures Nell
    // and Reddit on the host CPU (minutes of runtime, ~1.5 GB RSS).
    bool measure_all = false;
    std::string accel_platform = "unconstrained";
    for (const auto &a : ctx.args) {
        if (a == "measure-all" || a == "--measure-all") measure_all = true;
        if (a.rfind("platform=", 0) == 0)
            accel_platform = findPlatform(a.substr(9)).name;
    }

    const double kFpgaMhz = 275.0, kEieMhz = 285.0;
    Table t({"dataset", "platform", "freq", "latency (ms)",
             "inference/kJ", "bw-bound", "AWB speedup"});
    double sum_cpu = 0, sum_gpu = 0, sum_base = 0, sum_eie = 0;
    int n_rows = 0;

    for (const auto &spec : paperDatasets()) {
        auto prof_p = exec::cachedProfile(spec, ctx.seed, ctx.scale);
        const WorkloadProfile &prof = *prof_p;
        auto ops = countOpsProfile(prof);

        // --- CPU row: measured where practical, analytic otherwise.
        bool measurable =
            measure_all || (spec.nodes <= 20000 && spec.f1 <= 4000);
        double cpu_ms;
        std::string cpu_tag;
        if (measurable) {
            auto ds_p = exec::cachedDataset(spec, ctx.seed, ctx.scale);
            const Dataset &ds = *ds_p;
            auto model = makeGcnModel(spec.f1, spec.f2, spec.f3);
            cpu_ms = measureCpuLatencyMs(ds, model, 3);
            cpu_tag = "host CPU (measured)";
        } else {
            cpu_ms = modelCpuLatencyMs(ops);
            cpu_tag = "CPU (op-count model)";
        }
        auto cpu = evaluateFixedPower(cpu_ms, CpuModelConstants{}.watts);

        // --- GPU row (analytic, see DESIGN.md substitutions).
        auto gpu = evaluateFixedPower(modelGpuLatencyMs(ops, 2),
                                      GpuModelConstants{}.watts);

        // --- Accelerator rows from the round-level model, fed from the
        // selected off-chip memory system (DESIGN.md §8).
        struct AccelRow
        {
            EnergyReport energy;
            Count bwBoundRounds = 0;
            Count rounds = 0;
        };
        auto run_design = [&](Design d, double mhz) {
            AccelConfig cfg = makeConfig(d, 1024, hopBase(spec));
            cfg.platform = accel_platform;
            auto res = PerfModel(cfg).runGcn(prof);
            AccelRow r;
            r.energy =
                evaluateEnergy(res.totalCycles, res.totalTasks, mhz);
            r.bwBoundRounds = res.bwBoundRounds;
            for (const auto &layer : res.layers)
                r.rounds += layer.xw.rounds + layer.ax.rounds;
            return r;
        };
        auto eie = run_design(Design::EieLike, kEieMhz);
        auto base = run_design(Design::Baseline, kFpgaMhz);
        auto awb = run_design(Design::RemoteD, kFpgaMhz);

        auto row = [&](const char *platform, const char *freq,
                       const EnergyReport &r, const AccelRow *accel) {
            t.addRow({bench::datasetLabel(spec), platform, freq,
                      fixed(r.latencyMs, r.latencyMs < 1 ? 4 : 2),
                      humanCount(r.inferencesPerKj),
                      accel ? std::to_string(accel->bwBoundRounds) + "/" +
                                  std::to_string(accel->rounds)
                            : std::string("-"),
                      fixed(r.latencyMs / awb.energy.latencyMs, 1) + "x"});
        };
        row(cpu_tag.c_str(), "2.2GHz", cpu, nullptr);
        row("GPU P100 (analytic)", "1.3GHz", gpu, nullptr);
        row("EIE-like", "285MHz", eie.energy, &eie);
        row("Baseline", "275MHz", base.energy, &base);
        row("AWB-GCN (D)", "275MHz", awb.energy, &awb);

        sum_cpu += cpu.latencyMs / awb.energy.latencyMs;
        sum_gpu += gpu.latencyMs / awb.energy.latencyMs;
        sum_base += base.energy.latencyMs / awb.energy.latencyMs;
        sum_eie += eie.energy.latencyMs / awb.energy.latencyMs;
        ++n_rows;
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nAccelerator rows fed from '%s' off-chip memory "
                "(bw-bound = rounds stretched to the bandwidth floor; "
                "try platform=d5005-ddr4).\n",
                accel_platform.c_str());
    std::printf("Average AWB-GCN speedups: %.1fx vs CPU, %.1fx vs GPU, "
                "%.1fx vs EIE-like, %.2fx vs baseline\n",
                sum_cpu / n_rows, sum_gpu / n_rows, sum_eie / n_rows,
                sum_base / n_rows);
    std::printf("Paper averages: 246.7x CPU, 78.9x GPU, 11.0x EIE-like, "
                "2.7x baseline.\n");
}

const driver::ScenarioRegistrar reg({
    "table3-crossplatform", "Table 3",
    "cross-platform latency and energy efficiency", runTable3});

} // namespace
