/**
 * @file
 * Command-line simulator driver: run any dataset x design x PE-count
 * configuration in either fidelity and print a full report (per-SPMM
 * cycles, utilization, Fig. 10-style per-PE heat maps, latency/energy at
 * 275 MHz), optionally saving/restoring the auto-tuned row map.
 *
 * Usage:
 *   awbgcn_sim [--dataset cora|citeseer|pubmed|nell|reddit]
 *              [--design base|a|b|c|d|eie] [--pes N] [--scale S]
 *              [--mode model|cycle] [--seed N]
 *              [--save-map FILE] [--load-map FILE]
 *
 * `--mode model` (default) runs the round-level performance model at any
 * scale; `--mode cycle` runs the cycle-accurate engine (use --scale to
 * keep it tractable).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "accel/gcn_accel.hpp"
#include "accel/perf_model.hpp"
#include "accel/report.hpp"
#include "common/log.hpp"
#include "gcn/reference.hpp"
#include "graph/datasets.hpp"
#include "model/energy_model.hpp"

using namespace awb;

namespace {

Design
parseDesign(const std::string &s)
{
    if (s == "base") return Design::Baseline;
    if (s == "a") return Design::LocalA;
    if (s == "b") return Design::LocalB;
    if (s == "c") return Design::RemoteC;
    if (s == "d") return Design::RemoteD;
    if (s == "eie") return Design::EieLike;
    fatal("unknown design '" + s + "' (base|a|b|c|d|eie)");
}

struct Options
{
    std::string dataset = "cora";
    Design design = Design::RemoteD;
    int pes = 512;
    double scale = 1.0;
    bool cycleMode = false;
    std::uint64_t seed = 1;
    std::string saveMap;
    std::string loadMap;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) fatal(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (a == "--dataset") {
            opt.dataset = need("--dataset");
        } else if (a == "--design") {
            opt.design = parseDesign(need("--design"));
        } else if (a == "--pes") {
            opt.pes = std::stoi(need("--pes"));
        } else if (a == "--scale") {
            opt.scale = std::stod(need("--scale"));
        } else if (a == "--mode") {
            opt.cycleMode = (need("--mode") == std::string("cycle"));
        } else if (a == "--seed") {
            opt.seed = std::stoull(need("--seed"));
        } else if (a == "--save-map") {
            opt.saveMap = need("--save-map");
        } else if (a == "--load-map") {
            opt.loadMap = need("--load-map");
        } else if (a == "--help" || a == "-h") {
            std::printf("see file header for usage\n");
            std::exit(0);
        } else {
            fatal("unknown flag: " + a);
        }
    }
    return opt;
}

void
printSpmm(const char *name, Cycle cycles, double util, Count tasks,
          const std::vector<Count> &pe_tasks)
{
    std::printf("  %-12s %10lld cycles  util %5.1f%%  %10lld MACs\n",
                name, static_cast<long long>(cycles), util * 100.0,
                static_cast<long long>(tasks));
    std::printf("    PE heat %s\n", utilizationHeatmap(pe_tasks).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    const DatasetSpec &spec = findDataset(opt.dataset);
    int hop_base = spec.hopOverride > 0 ? spec.hopOverride : 1;
    AccelConfig cfg = makeConfig(opt.design, opt.pes, hop_base);

    std::printf("AWB-GCN simulator — %s on %s (%d PEs, scale %.2f, %s)\n",
                designName(opt.design).c_str(), spec.name.c_str(), opt.pes,
                opt.scale, opt.cycleMode ? "cycle-accurate" : "round model");

    Cycle total = 0;
    Count tasks = 0;
    if (opt.cycleMode) {
        Dataset ds = loadSynthetic(spec, opt.seed, opt.scale);
        GcnModel model =
            makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, opt.seed);
        GcnRunResult run = runGcn(cfg, ds, model);
        auto golden = inferGcn(ds, model);
        for (std::size_t l = 0; l < run.layers.size(); ++l) {
            std::printf("layer %zu:\n", l + 1);
            const auto &lr = run.layers[l];
            printSpmm("X*W", lr.xw.cycles, lr.xw.utilization, lr.xw.tasks,
                      lr.xw.perPeTasks);
            printSpmm("A*(XW)", lr.ax.cycles, lr.ax.utilization,
                      lr.ax.tasks, lr.ax.perPeTasks);
            std::printf("  pipelined: %lld cycles\n",
                        static_cast<long long>(lr.pipelinedCycles));
        }
        total = run.totalCycles;
        tasks = run.totalTasks;
        std::printf("functional check vs golden model: max err %.2e\n",
                    run.output.maxAbsDiff(golden.output));
    } else {
        WorkloadProfile prof = loadProfile(spec, opt.seed, opt.scale);
        PerfModel model(cfg);
        PerfGcnResult run = model.runGcn(prof);
        for (std::size_t l = 0; l < run.layers.size(); ++l) {
            std::printf("layer %zu:\n", l + 1);
            const auto &lr = run.layers[l];
            printSpmm("X*W", lr.xw.cycles, lr.xw.utilization, lr.xw.tasks,
                      lr.xw.perPeTasks);
            printSpmm("A*(XW)", lr.ax.cycles, lr.ax.utilization,
                      lr.ax.tasks, lr.ax.perPeTasks);
            std::printf("  pipelined: %lld cycles\n",
                        static_cast<long long>(lr.pipelinedCycles));
        }
        total = run.totalCycles;
        tasks = run.totalTasks;
    }

    auto energy = evaluateEnergy(total, tasks, 275.0);
    std::printf("\ntotal: %lld cycles -> %.4f ms at 275 MHz, "
                "%.3g inferences/kJ\n",
                static_cast<long long>(total), energy.latencyMs,
                energy.inferencesPerKj);

    // Row-map persistence demo: save/restore a tuned adjacency map.
    if (!opt.saveMap.empty()) {
        RowPartition part(spec.nodes, cfg.numPes, cfg.mapPolicy);
        WorkloadProfile prof = loadProfile(spec, opt.seed, opt.scale);
        PerfModel(cfg).runSpmm(prof.aRowNnz, spec.f2, part);
        savePartitionFile(opt.saveMap, part);
        std::printf("tuned adjacency row map saved to %s\n",
                    opt.saveMap.c_str());
    }
    if (!opt.loadMap.empty()) {
        RowPartition part = loadPartitionFile(opt.loadMap);
        std::printf("row map loaded: %d rows over %d PEs\n", part.rows(),
                    part.numPes());
    }
    return 0;
}
