/**
 * @file
 * Bring-your-own-graph: load an adjacency matrix from a Matrix Market
 * (.mtx) file — e.g. a SuiteSparse copy of a real citation graph —
 * normalize it, synthesize features, and run AWB-GCN inference on it.
 * A ready-made sample ships at data/example_graph.mtx; when no file is
 * given, the example writes an equivalent one into the working
 * directory first (demonstrating the writer) and then consumes it, so
 * it is runnable out of the box.
 *
 * Run:  ./custom_dataset_mm [graph.mtx]
 *       ./custom_dataset_mm ../data/example_graph.mtx   # from build/
 */

#include <cstdio>

#include "accel/gcn_accel.hpp"
#include "common/rng.hpp"
#include "gcn/reference.hpp"
#include "graph/generator.hpp"
#include "graph/normalize.hpp"
#include "sparse/convert.hpp"
#include "sparse/mm_io.hpp"

using namespace awb;

int
main(int argc, char **argv)
{
    std::string path;
    if (argc > 1) {
        path = argv[1];
    } else {
        // No input given: synthesize a small power-law graph and save it
        // (same recipe as the committed data/example_graph.mtx sample),
        // so the load path below exercises exactly what a user would run.
        path = "example_graph.mtx";
        Rng rng(11);
        GraphGenParams params;
        params.nodes = 600;
        params.edges = 3600;
        params.style = GraphStyle::PowerLaw;
        params.symmetric = true;
        writeMatrixMarketFile(path, synthesizeAdjacency(rng, params));
        std::printf("wrote synthetic graph to %s\n", path.c_str());
    }

    // 1. Load and renormalize: A_hat = D^-1/2 (A + I) D^-1/2.
    CooMatrix raw = readMatrixMarketFile(path);
    if (raw.rows() != raw.cols()) {
        std::fprintf(stderr, "adjacency must be square\n");
        return 1;
    }
    CscMatrix a_hat = normalizeAdjacencyCsc(raw);
    std::printf("loaded %s: %d nodes, %lld edges\n", path.c_str(),
                raw.rows(), static_cast<long long>(raw.nnz()));

    // 2. Features: users would load real ones; we synthesize sparse
    //    128-dim inputs here.
    Rng rng(23);
    CooMatrix fcoo(raw.rows(), 128);
    for (Index r = 0; r < raw.rows(); ++r)
        for (Index c = 0; c < 128; ++c)
            if (rng.nextBool(0.05)) fcoo.add(r, c, rng.nextFloat(0.1f, 1.0f));
    fcoo.canonicalize();
    CsrMatrix features = CsrMatrix::fromCoo(fcoo);

    // 3. A 2-layer GCN head: 128 -> 32 -> 8 classes.
    GcnModel model = makeGcnModel(128, 32, 8, 23);

    // 4. Accelerate, and check against the golden model.
    Dataset ds;
    ds.spec = {"custom", raw.rows(), 128, 32, 8, raw.density(), 0.05, 0.8,
               GraphStyle::PowerLaw, 2.2, 0, 0};
    ds.adjacency = a_hat;
    ds.features = features;

    GcnRunResult run = runGcn(makeConfig(Design::RemoteD, 32), ds, model);
    InferenceResult golden = inferGcn(ds.adjacency, ds.features, model);

    std::printf("inference done: %lld cycles, util %.1f%%, "
                "max error vs golden %.2e\n",
                static_cast<long long>(run.totalCycles),
                run.utilization * 100.0,
                run.output.maxAbsDiff(golden.output));
    std::printf("predicted class of node 0: ");
    Index best = 0;
    for (Index c = 1; c < run.output.cols(); ++c)
        if (run.output.at(0, c) > run.output.at(0, best)) best = c;
    std::printf("%d\n", best);
    return 0;
}
