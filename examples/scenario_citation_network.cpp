/**
 * @file
 * Citation-network scenario (the paper's §1 motivation: papers linked by
 * citations, power-law hubs): evaluates a full-scale Pubmed-like workload
 * on every design point with the round-level performance model, and
 * reports what an accelerator architect would want to know — delay,
 * utilization, hotspot severity, and how deep the physical task queues
 * would have to be.
 *
 * Run:  ./citation_network [dataset] (default pubmed)
 */

#include <algorithm>
#include <cstdio>

#include "accel/perf_model.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "graph/datasets.hpp"
#include "graph/degree_dist.hpp"
#include "model/area_model.hpp"

using namespace awb;

namespace {

void
runCitationNetwork(driver::ScenarioContext &ctx)
{
    const std::string name = ctx.args.empty() ? "pubmed" : ctx.args[0];
    const DatasetSpec &spec = findDataset(name);
    WorkloadProfile prof = loadProfile(spec, ctx.seed + 6, ctx.scale);

    Count max_row = *std::max_element(prof.aRowNnz.begin(),
                                      prof.aRowNnz.end());
    std::printf("citation graph '%s': %d papers, hub cites %lld, "
                "gini %.2f\n\n",
                spec.name.c_str(), spec.nodes,
                static_cast<long long>(max_row),
                giniCoefficient(prof.aRowNnz));

    Table t({"design", "cycles", "speedup", "util", "TQ depth",
             "area (CLB)"});
    const int pes = 512;
    Cycle base = 0;
    for (Design d : {Design::Baseline, Design::LocalA, Design::LocalB,
                     Design::RemoteC, Design::RemoteD}) {
        AccelConfig cfg = makeConfig(d, pes, hopBase(spec));
        auto res = PerfModel(cfg).runGcn(prof);
        if (d == Design::Baseline) base = res.totalCycles;
        std::size_t depth = 0;
        for (const auto &layer : res.layers) {
            depth = std::max(depth, layer.xw.peakQueueDepth);
            depth = std::max(depth, layer.ax.peakQueueDepth);
        }
        auto area = estimateArea(cfg, depth);
        t.addRow({designName(d),
                  humanCount(static_cast<double>(res.totalCycles)),
                  fixed(static_cast<double>(base) /
                        static_cast<double>(res.totalCycles), 2) + "x",
                  percent(res.utilization), std::to_string(depth),
                  humanCount(area.totalClb)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nTakeaway: runtime rebalancing converts the citation\n"
                "hubs' queueing into spread work — more speed AND smaller\n"
                "queues, i.e. less silicon.\n");
}

const driver::ScenarioRegistrar reg({
    "citation-network", "paper §1",
    "full-scale citation workload on every design (arg: dataset name)",
    runCitationNetwork});

} // namespace
