/**
 * @file
 * Quickstart: build a small synthetic power-law graph, run 2-layer GCN
 * inference on the cycle-accurate AWB-GCN accelerator, validate the result
 * against the software golden model, and compare the baseline design with
 * Design(D) (2-hop local sharing + remote switching).
 *
 * Run:  ./quickstart
 */

#include <cstdio>

#include "accel/gcn_accel.hpp"
#include "driver/scenario.hpp"
#include "gcn/reference.hpp"
#include "graph/datasets.hpp"

using namespace awb;

namespace {

void
runQuickstart(driver::ScenarioContext &ctx)
{
    // 1. A Cora-like dataset at 20% scale (fast enough for the
    //    cycle-accurate engine; use loadProfile + PerfModel for
    //    full-scale studies).
    Dataset ds = loadSyntheticByName("cora", ctx.seed + 41, 0.2 * ctx.scale);
    std::printf("dataset: %s, %d nodes, %lld adjacency non-zeros\n",
                ds.spec.name.c_str(), ds.spec.nodes,
                static_cast<long long>(ds.adjacency.nnz()));

    // 2. A 2-layer GCN with Glorot-initialized weights.
    GcnModel model =
        makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, ctx.seed + 41);

    // 3. Software golden inference.
    InferenceResult golden = inferGcn(ds, model);

    // 4. Run the cycle-accurate accelerator in two configurations.
    for (Design design : {Design::Baseline, Design::RemoteD}) {
        GcnRunResult run = runGcn(makeConfig(design, /*num_pes=*/64), ds,
                                  model);

        double err = run.output.maxAbsDiff(golden.output);
        std::printf("\n%s (64 PEs):\n", designName(design).c_str());
        std::printf("  total cycles (pipelined): %lld\n",
                    static_cast<long long>(run.totalCycles));
        std::printf("  PE utilization:           %.1f%%\n",
                    run.utilization * 100.0);
        std::printf("  max |output - golden|:    %.2e  (%s)\n", err,
                    err < 1e-3 ? "PASS" : "FAIL");
        for (std::size_t l = 0; l < run.layers.size(); ++l) {
            std::printf("  layer %zu: X*W %lld cycles, A*(XW) %lld cycles, "
                        "pipelined %lld\n",
                        l + 1,
                        static_cast<long long>(run.layers[l].xw.cycles),
                        static_cast<long long>(run.layers[l].ax.cycles),
                        static_cast<long long>(
                            run.layers[l].pipelinedCycles));
        }
    }
    std::printf("\nDesign(D) should finish in noticeably fewer cycles at "
                "higher PE utilization.\n");
}

const driver::ScenarioRegistrar reg({
    "quickstart", "walk-through",
    "cycle-accurate baseline vs Design(D) on a small Cora-like graph",
    runQuickstart});

} // namespace
