/**
 * @file
 * Social-network scenario with clustered celebrities (the Nell-like case
 * of paper §5.2): watches the hardware performance auto-tuning happen —
 * per-round (per output column) cycle counts shrink as the PESM/UGT/SLT
 * pipeline rewrites the row map, then the converged configuration is
 * reused for the remaining columns and for the next layer.
 *
 * Run:  ./social_network_autotune
 */

#include <cstdio>

#include "accel/perf_model.hpp"
#include "accel/spmm_engine.hpp"
#include "common/rng.hpp"
#include "driver/scenario.hpp"
#include "graph/datasets.hpp"

using namespace awb;

namespace {

void
runSocialAutotune(driver::ScenarioContext &ctx)
{
    // Nell-like clustered graph, scaled so the cycle-accurate engine
    // finishes quickly.
    Dataset ds = loadSyntheticByName("nell", ctx.seed + 2, 0.04 * ctx.scale);
    std::printf("social graph: %d users, %lld follow edges (clustered "
                "celebrity band)\n\n",
                ds.spec.nodes, static_cast<long long>(ds.adjacency.nnz()));

    Rng rng(ctx.seed + 4);
    DenseMatrix activations(ds.spec.nodes, 32);
    activations.fillUniform(rng, -1.0f, 1.0f);

    auto show = [&](Design d) {
        AccelConfig cfg = makeConfig(d, 32, /*hop_base=*/2);
        RowPartition part(ds.spec.nodes, cfg.numPes, cfg.mapPolicy);
        SpmmStats stats = SpmmEngine(cfg)
                              .execute(ds.adjacency, activations,
                                       TdqKind::Tdq2OmegaCsc, part)
                              .stats;
        std::printf("%s: %lld cycles, util %.1f%%, rows switched %lld, "
                    "converged at round %lld\n",
                    designName(d).c_str(),
                    static_cast<long long>(stats.cycles),
                    stats.utilization * 100.0,
                    static_cast<long long>(stats.rowsSwitched),
                    static_cast<long long>(stats.convergedRound));
        std::printf("  per-round cycles:");
        for (std::size_t k = 0; k < stats.roundCycles.size(); ++k) {
            if (k % 8 == 0) std::printf("\n   ");
            std::printf(" %5lld",
                        static_cast<long long>(stats.roundCycles[k]));
        }
        std::printf("\n\n");
    };

    show(Design::Baseline);   // flat, slow rounds: the celebrity band
                              // pins a couple of PEs at 100%
    show(Design::LocalB);     // 3-hop sharing flattens the band locally
    show(Design::RemoteD);    // remote switching keeps improving round by
                              // round until the map converges

    std::printf("Watch Design(D)'s early rounds shrink as the Shuffling\n"
                "Switches spread the celebrity rows, then hold steady: the\n"
                "converged map is simply reused (hardware auto-tuning,\n"
                "paper §4).\n");
}

const driver::ScenarioRegistrar reg({
    "social-autotune", "paper §4/§5.2",
    "watch remote-switching auto-tuning converge on a clustered graph",
    runSocialAutotune});

} // namespace
