/**
 * @file
 * Workload zoo: compose GraphSAGE-mean, GIN and a 2-hop GCN as workload
 * graphs, execute each through one sim::Session per design point, and
 * validate every cycle-accurate output against the dense software
 * reference (referenceEval). Demonstrates the Session API end to end:
 * builder-composed DAGs, automatic row-map carrying per sparse operand,
 * chained-SPMM column pipelining and StatsSink reporting.
 *
 * Run:  ./workload_zoo [dataset]   (default cora)
 */

#include <cstdio>

#include "common/log.hpp"
#include "driver/scenario.hpp"
#include "gcn/model.hpp"
#include "graph/datasets.hpp"
#include "sim/factories.hpp"
#include "sim/session.hpp"

using namespace awb;

namespace {

void
runWorkloadZoo(driver::ScenarioContext &ctx)
{
    std::string name = ctx.args.empty() ? "cora" : ctx.args[0];
    const DatasetSpec &spec = findDataset(name);
    double scale = (spec.nodes > 10000 ? 0.01 : 0.05) * ctx.scale;
    Dataset ds = loadSynthetic(spec, ctx.seed + 7, scale);
    GcnModel gcn = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3,
                                ctx.seed + 7);

    std::vector<sim::WorkloadBundle> zoo;
    zoo.push_back(sim::buildGraphSage(ds, ds.spec.f2, ds.spec.f3,
                                      /*meanAggregate=*/true, ctx.seed));
    zoo.push_back(sim::buildGraphSage(ds, ds.spec.f2, ds.spec.f3,
                                      /*meanAggregate=*/false, ctx.seed));
    zoo.push_back(sim::buildGin(ds, ds.spec.f2, ds.spec.f3, /*eps=*/0.1,
                                ctx.seed));
    zoo.push_back(sim::buildMultiHopGcn(ds, gcn, 2));

    std::printf("dataset: %s, %d nodes, %lld adjacency non-zeros\n\n",
                ds.spec.name.c_str(), ds.spec.nodes,
                static_cast<long long>(ds.adjacency.nnz()));
    std::printf("%-18s %-10s %12s %12s %8s %6s %s\n", "workload", "design",
                "pipelined", "serial", "util", "SPMMs", "exact");

    bool all_exact = true;
    for (const auto &bundle : zoo) {
        DenseMatrix golden = sim::referenceEval(bundle);
        for (Design design : {Design::Baseline, Design::RemoteD}) {
            sim::Session session(
                makeConfig(design, 16, hopBase(ds.spec)));
            sim::CollectingSink sink;
            sim::SessionResult res =
                sim::runWorkload(session, bundle, &sink);
            double err = res.output.maxAbsDiff(golden);
            bool exact = err < 1e-3;
            all_exact = all_exact && exact;
            std::printf("%-18s %-10s %12lld %12lld %7.1f%% %6zu %s\n",
                        bundle.name.c_str(), designName(design).c_str(),
                        static_cast<long long>(res.totalCycles),
                        static_cast<long long>(res.totalCyclesSerial),
                        res.utilization * 100.0, sink.stats.size(),
                        exact ? "PASS" : "FAIL");
        }
    }
    std::printf("\nchained SPMMs pipeline automatically: pipelined < "
                "serial on every row above.\n");
    ctx.result.set("all_exact", all_exact);
    if (!all_exact)
        fatal("workload-zoo: cycle-accurate output diverged from the "
              "dense reference");
}

const driver::ScenarioRegistrar reg({
    "workload-zoo", "Session API",
    "GraphSAGE/GIN/2-hop GCN workload graphs vs the dense reference",
    runWorkloadZoo});

} // namespace
