#include "accel/chip_partition.hpp"

#include <algorithm>
#include <numeric>

#include "accel/policy.hpp"
#include "common/log.hpp"

namespace awb {

ChipPartition
ChipPartition::build(const AccelConfig &cfg, Index rows,
                     const std::vector<Count> &row_work)
{
    if (cfg.chips < 1) fatal("ChipPartition: chips must be >= 1");
    ChipPartition cp;
    cp.chips_ = cfg.chips;

    // The registered policy partitions rows over "PEs"; running it on a
    // config whose array size is the chip count makes chip sharding an
    // outer application of the same policy.
    AccelConfig chip_cfg = cfg;
    chip_cfg.numPes = cfg.chips;
    chip_cfg.chips = 1;
    RowPartition part =
        makePartitionPolicy(chip_cfg)->build(rows, row_work, chip_cfg);

    cp.chipOf_ = part.owners();
    cp.rowsOf_.assign(static_cast<std::size_t>(cp.chips_), {});
    for (Index r = 0; r < rows; ++r)
        cp.rowsOf_[static_cast<std::size_t>(cp.chipOf_[
            static_cast<std::size_t>(r)])].push_back(r);
    // rowsOf_ lists are ascending by construction (rows visited in
    // order); shard extraction depends on that.
    return cp;
}

std::vector<Count>
ChipPartition::chipWork(const std::vector<Count> &row_work) const
{
    std::vector<Count> w(static_cast<std::size_t>(chips_), 0);
    for (std::size_t r = 0; r < chipOf_.size(); ++r)
        w[static_cast<std::size_t>(chipOf_[r])] += row_work[r];
    return w;
}

double
ChipPartition::imbalance(const std::vector<Count> &row_work) const
{
    std::vector<Count> w = chipWork(row_work);
    Count total = std::accumulate(w.begin(), w.end(), Count(0));
    if (total == 0) return 1.0;
    Count worst = *std::max_element(w.begin(), w.end());
    double mean =
        static_cast<double>(total) / static_cast<double>(chips_);
    return static_cast<double>(worst) / mean;
}

std::vector<Count>
ChipPartition::haloRows(const CscMatrix &a) const
{
    std::vector<Count> halo(static_cast<std::size_t>(chips_), 0);
    if (chips_ <= 1) return halo;
    // Rectangular operand: the dense operand is a replicated small
    // matrix (X×W), nothing crosses the link.
    if (a.rows() != a.cols() ||
        a.rows() != static_cast<Index>(chipOf_.size()))
        return halo;

    // Column j of A is dense-operand row j. Every chip with a non-zero
    // in column j needs row j; those that do not own j fetch it.
    std::vector<char> needs(static_cast<std::size_t>(chips_), 0);
    for (Index j = 0; j < a.cols(); ++j) {
        const Count begin = a.colPtr()[static_cast<std::size_t>(j)];
        const Count end = a.colPtr()[static_cast<std::size_t>(j) + 1];
        if (begin == end) continue;
        std::fill(needs.begin(), needs.end(), 0);
        for (Count p = begin; p < end; ++p) {
            const Index i = a.rowId()[static_cast<std::size_t>(p)];
            needs[static_cast<std::size_t>(chipOf(i))] = 1;
        }
        const int owner = chipOf(j);
        for (int c = 0; c < chips_; ++c)
            if (needs[static_cast<std::size_t>(c)] && c != owner)
                ++halo[static_cast<std::size_t>(c)];
    }
    return halo;
}

CscMatrix
ChipPartition::extractRows(const CscMatrix &a, int chip) const
{
    if (a.rows() != static_cast<Index>(chipOf_.size()))
        fatal("ChipPartition::extractRows: row-count mismatch");
    const std::vector<Index> &mine = rowsOf(chip);
    std::vector<Index> local(chipOf_.size(), 0);
    for (std::size_t l = 0; l < mine.size(); ++l)
        local[static_cast<std::size_t>(mine[l])] = static_cast<Index>(l);

    std::vector<Count> col_ptr(static_cast<std::size_t>(a.cols()) + 1, 0);
    std::vector<Index> row_id;
    std::vector<Value> val;
    for (Index j = 0; j < a.cols(); ++j) {
        const Count begin = a.colPtr()[static_cast<std::size_t>(j)];
        const Count end = a.colPtr()[static_cast<std::size_t>(j) + 1];
        for (Count p = begin; p < end; ++p) {
            const Index i = a.rowId()[static_cast<std::size_t>(p)];
            if (chipOf(i) != chip) continue;
            // Local ids ascend with global ids, so sortedness within
            // each column is preserved.
            row_id.push_back(local[static_cast<std::size_t>(i)]);
            val.push_back(a.val()[static_cast<std::size_t>(p)]);
        }
        col_ptr[static_cast<std::size_t>(j) + 1] =
            static_cast<Count>(row_id.size());
    }
    return CscMatrix::fromParts(static_cast<Index>(mine.size()), a.cols(),
                                std::move(col_ptr), std::move(row_id),
                                std::move(val));
}

std::vector<Count>
ChipPartition::extractWork(const std::vector<Count> &row_work,
                           int chip) const
{
    const std::vector<Index> &mine = rowsOf(chip);
    std::vector<Count> w;
    w.reserve(mine.size());
    for (Index r : mine)
        w.push_back(row_work[static_cast<std::size_t>(r)]);
    return w;
}

} // namespace awb
