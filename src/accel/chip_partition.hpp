/**
 * @file
 * Chip-level row sharding for multi-chip scale-out (DESIGN.md §9).
 *
 * A graph too large for one accelerator is sharded by rows of the sparse
 * operand across `AccelConfig::chips` simulated chips. Sharding reuses
 * the balance-policy registry: "chip" is just an outer level of
 * partitioning, so the configuration's registered PartitionPolicy builds
 * the row→chip map exactly as it builds row→PE maps (blocked for the
 * paper designs, LPT for `degree-sorted`, ...), with `numPes` swapped
 * for the chip count.
 *
 * The partition also answers the halo question: chip c computes output
 * rows it owns, which for a square operand (the adjacency A×(XW) case)
 * requires dense-operand rows j referenced by its non-zeros; rows j
 * owned by another chip are c's *halo* and must cross the inter-chip
 * link once per round (one element of each boundary row per streamed
 * column). Rectangular operands (X×W: the small dense W is replicated
 * on every chip) have no halo.
 */

#pragma once

#include <vector>

#include "accel/config.hpp"
#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace awb {

/** Ownership of sparse-operand rows by chips, plus shard extraction. */
class ChipPartition
{
  public:
    ChipPartition() = default;

    /**
     * Shard `rows` rows across `cfg.chips` chips with the
     * configuration's registered partition policy (cfg.balancePolicy /
     * cfg.mapPolicy applied at chip granularity).
     *
     * @param row_work  per-row task count (row-nnz), for load-aware
     *                  policies
     */
    static ChipPartition build(const AccelConfig &cfg, Index rows,
                               const std::vector<Count> &row_work);

    int chips() const { return chips_; }
    Index rows() const { return static_cast<Index>(chipOf_.size()); }

    int chipOf(Index row) const
    {
        return chipOf_[static_cast<std::size_t>(row)];
    }

    /** Rows owned by chip c, sorted ascending (deterministic shard
     *  extraction order). */
    const std::vector<Index> &rowsOf(int chip) const
    {
        return rowsOf_[static_cast<std::size_t>(chip)];
    }

    /** Per-chip workload: W_c = sum of row_work over rows owned by c. */
    std::vector<Count> chipWork(const std::vector<Count> &row_work) const;

    /** Load imbalance across chips: max(W_c) / mean(W_c); 1.0 when
     *  perfectly balanced or when total work is zero. */
    double imbalance(const std::vector<Count> &row_work) const;

    /**
     * Per-chip halo-row counts for a square sparse operand: the number
     * of distinct dense-operand rows j referenced by chip c's non-zeros
     * (A[i][j] != 0 with chipOf(i) == c) but owned by another chip.
     * Returns all zeros when `a` is rectangular (replicated dense
     * operand, no halo) or when chips() == 1.
     */
    std::vector<Count> haloRows(const CscMatrix &a) const;

    /**
     * Extract chip c's shard of the sparse operand: the sub-matrix of
     * the rows it owns, renumbered 0..|rowsOf(c)|-1 in ascending global
     * order, all columns kept. Column-sortedness is preserved.
     */
    CscMatrix extractRows(const CscMatrix &a, int chip) const;

    /** Chip c's slice of a per-row vector, in rowsOf(c) order. */
    std::vector<Count> extractWork(const std::vector<Count> &row_work,
                                   int chip) const;

  private:
    int chips_ = 1;
    std::vector<int> chipOf_;
    std::vector<std::vector<Index>> rowsOf_;
};

} // namespace awb
