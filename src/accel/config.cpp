#include "accel/config.hpp"

#include "common/log.hpp"

namespace awb {

std::string
designName(Design d)
{
    switch (d) {
      case Design::Baseline: return "Baseline";
      case Design::LocalA:   return "Design(A)";
      case Design::LocalB:   return "Design(B)";
      case Design::RemoteC:  return "Design(C)";
      case Design::RemoteD:  return "Design(D)";
      case Design::EieLike:  return "EIE-like";
    }
    return "?";
}

AccelConfig
makeConfig(Design design, int num_pes, int hop_base)
{
    // Note: only the cycle-accurate TDQ-2 path requires a power-of-two PE
    // count (Omega network); the round-level model accepts any size (the
    // paper's Fig. 15 sweeps 512/768/1024).
    if (num_pes <= 0) fatal("numPes must be positive");
    if (hop_base < 1) hop_base = 1;

    AccelConfig cfg;
    cfg.numPes = num_pes;
    switch (design) {
      case Design::Baseline:
        break;
      case Design::LocalA:
        cfg.sharingHops = hop_base;
        break;
      case Design::LocalB:
        cfg.sharingHops = hop_base + 1;
        break;
      case Design::RemoteC:
        cfg.sharingHops = hop_base;
        cfg.remoteSwitching = true;
        break;
      case Design::RemoteD:
        cfg.sharingHops = hop_base + 1;
        cfg.remoteSwitching = true;
        break;
      case Design::EieLike:
        // EIE forwards non-zeros in column-major order to a single
        // activation queue per PE and has no rebalancing (paper §6).
        cfg.numQueuesPerPe = 1;
        break;
    }
    return cfg;
}

} // namespace awb
