#include "accel/config.hpp"

#include "accel/policy.hpp"
#include "common/log.hpp"
#include "model/memory_model.hpp"

namespace awb {

std::string
engineKindName(EngineKind e)
{
    switch (e) {
      case EngineKind::Event:   return "event";
      case EngineKind::Batched: return "batched";
    }
    return "?";
}

EngineKind
parseEngineKind(const std::string &s)
{
    if (s == "event") return EngineKind::Event;
    if (s == "batched") return EngineKind::Batched;
    fatal("unknown engine '" + s + "' (event|batched)");
}

std::string
designName(Design d)
{
    switch (d) {
      case Design::Baseline: return "Baseline";
      case Design::LocalA:   return "Design(A)";
      case Design::LocalB:   return "Design(B)";
      case Design::RemoteC:  return "Design(C)";
      case Design::RemoteD:  return "Design(D)";
      case Design::EieLike:  return "EIE-like";
    }
    return "?";
}

std::string
AccelConfig::validate(bool cycle_accurate_tdq2) const
{
    if (numPes <= 0) return "numPes must be positive";
    if (macLatency < 1) return "macLatency must be >= 1";
    if (numQueuesPerPe < 1) return "numQueuesPerPe must be >= 1";
    if (receivePorts < 1) return "receivePorts must be positive";
    if (sharingHops < 0) return "sharingHops must be non-negative";
    if (trackingWindow < 1) return "trackingWindow must be >= 1";
    if (omegaBufferDepth < 1) return "omegaBufferDepth must be >= 1";
    if (networkSpeedup < 1) return "networkSpeedup must be >= 1";
    if (injectWidth < 0) return "injectWidth must be non-negative (0 = auto)";
    if (streamWidth < 0) return "streamWidth must be non-negative (0 = auto)";
    if (maxCyclesPerRound <= 0) return "maxCyclesPerRound must be positive";
    if (chips < 1) return "chips must be >= 1";
    // Combination checks: fields that are individually fine but make no
    // sense together.
    if (remoteSwitching && numPes < 2)
        return "remote switching needs at least 2 PEs (the PESM tracks "
               "hot/cold PE tuples)";
    if (sharingHops >= numPes && numPes > 1)
        return "sharingHops must be smaller than the PE count (the "
               "sharing window would span the whole array)";
    if (approximateEq5 && !remoteSwitching)
        return "approximateEq5 selects the shift-based Eq. 5 increment "
               "of the remote switcher; enable remoteSwitching with it";
    if (!balancePolicy.empty() &&
        PolicyRegistry::instance().find(balancePolicy) == nullptr)
        return "unknown balance policy '" + balancePolicy +
               "' — did you mean '" +
               PolicyRegistry::instance().nearest(balancePolicy) + "'?";
    if (!platform.empty() && findPlatformOrNull(platform) == nullptr)
        return "unknown platform '" + platform + "' (" +
               knownPlatformNames() + ")";
    // Only the cycle-accurate TDQ-2 path requires a power-of-two PE count
    // (Omega network); the round-level model accepts any size (the
    // paper's Fig. 15 sweeps 512/768/1024).
    if (cycle_accurate_tdq2 && numPes >= 2 &&
        (numPes & (numPes - 1)) != 0)
        return "cycle-accurate TDQ-2 needs a power-of-two PE count "
               "(Omega network); use the round-level model otherwise";
    return "";
}

AccelConfig
makeConfig(Design design, int num_pes, int hop_base)
{
    return makePolicyConfig(designPolicyName(design), num_pes, hop_base);
}

} // namespace awb
