/**
 * @file
 * Configuration of the AWB-GCN accelerator and the design points evaluated
 * in the paper (§5.2): Baseline, Design(A) 1-hop local sharing, Design(B)
 * 2-hop, Design(C) 1-hop + remote switching, Design(D) 2-hop + remote
 * switching, plus the EIE-like reference of Table 3. Nell overrides the
 * hop counts to 2/3 (paper §5.2).
 */

#pragma once

#include <string>

#include "common/types.hpp"

namespace awb {

/** How rows of the sparse operand are initially assigned to PEs. */
enum class RowMapPolicy
{
    Blocked,  ///< n/P consecutive rows per PE (paper Fig. 6)
    Cyclic,   ///< row i -> PE i mod P
};

/**
 * Evaluated paper design points. Since the balance-policy redesign this
 * enum is a thin shorthand: each value names a policy registered in the
 * PolicyRegistry (accel/policy.hpp), and makeConfig() is a lookup over
 * that registry. Non-paper policies have no enum value — address them by
 * registry name (makePolicyConfig).
 */
enum class Design
{
    Baseline,      ///< static equal partition, no rebalancing
    LocalA,        ///< dynamic local sharing, base hops (1-hop)
    LocalB,        ///< dynamic local sharing, base+1 hops (2-hop)
    RemoteC,       ///< LocalA + dynamic remote switching
    RemoteD,       ///< LocalB + dynamic remote switching
    EieLike,       ///< EIE-style column-major forwarding, single TQ per PE
};

/** Printable design name matching the paper's legend. */
std::string designName(Design d);

/**
 * Which cycle-engine implementation executes an SPMM (DESIGN.md §6).
 *
 * Both produce bit-identical timing statistics (cycles, rowsSwitched,
 * convergedRound, per-round durations); the batched engine event-steps
 * only rounds whose entry state (row partition, PE arbiter cursors,
 * Omega arbitration parity) has not been seen before and replays cached
 * per-round aggregates for the rest, which is what makes Reddit-scale
 * cycle-mode sweeps tractable.
 */
enum class EngineKind
{
    Event,    ///< per-non-zero event stepping of every round
    Batched,  ///< round-batched: state-keyed memoization of round outcomes
};

/** "event" / "batched". */
std::string engineKindName(EngineKind e);

/** Parse an engine name; fatal() with the valid set on an unknown one. */
EngineKind parseEngineKind(const std::string &s);

/** All six design points in evaluation order. */
inline constexpr Design kAllDesigns[] = {
    Design::Baseline, Design::LocalA, Design::LocalB,
    Design::RemoteC,  Design::RemoteD, Design::EieLike,
};

/** Full accelerator configuration. */
struct AccelConfig
{
    int numPes = 64;          ///< PE-array size (power of two for TDQ-2)
    /** MAC accumulate-to-accumulate latency T. Default 1: FPGA DSP-slice
     *  MACCs forward the accumulator register in a single cycle, so
     *  back-to-back accumulations to the same row do not stall; the RaW
     *  scoreboard (paper §3.3) exists for deeper floating-point pipelines
     *  (set T > 1 to model them — heavy rows then serialize at T
     *  cycles/task, which measurably tanks utilization). */
    int macLatency = 1;
    int numQueuesPerPe = 4;   ///< TQs per PE (TDQ-1 arbitration, Fig. 7)
    /** Tasks a PE can receive per cycle (distribution fan-in ports).
     *  Independent of queue count: the EIE-like design has one deep
     *  activation queue but still ingests at full distribution rate. */
    int receivePorts = 4;
    std::size_t queueDepth = 0;  ///< TQ capacity; 0 = unbounded (measure)
    int sharingHops = 0;      ///< local sharing distance; 0 = disabled
    bool remoteSwitching = false;  ///< enable PESM/UGT/SLT path
    int trackingWindow = 2;   ///< PE-tuples tracked concurrently (PESM)
    bool approximateEq5 = false;   ///< hardware-efficient shift-based Eq. 5
    RowMapPolicy mapPolicy = RowMapPolicy::Blocked;
    int omegaBufferDepth = 8; ///< per-router input buffer slots (TDQ-2)
    /** Omega fabric clock multiple relative to the PE clock: flits one
     *  router output passes per PE cycle. The paper provisions the
     *  network so task distribution, not routing, limits throughput. */
    int networkSpeedup = 8;
    int injectWidth = 0;      ///< TDQ-2 flits/cycle; 0 = numPes
    int streamWidth = 0;      ///< TDQ-1 dense elements scanned per cycle;
                              ///< 0 = auto (numPes / operand density)
    Cycle maxCyclesPerRound = 100000000;  ///< watchdog
    /** Cycle-engine implementation (accel/spmm_engine.hpp). The default
     *  event engine steps every non-zero of every round; the batched
     *  engine reproduces its statistics bit for bit while event-stepping
     *  only distinct round-entry states (DESIGN.md §6). */
    EngineKind engine = EngineKind::Event;
    /** Registered balance-policy name (accel/policy.hpp) driving the
     *  initial partition and per-round rebalancing. Empty = derive from
     *  the legacy fields (mapPolicy, remoteSwitching), which is what the
     *  hand-built configs of tests and ablations rely on. */
    std::string balancePolicy;
    /** Registered platform name (model/memory_model.hpp) bounding the
     *  off-chip bandwidth of both fidelities. Empty = `unconstrained`:
     *  no bandwidth floor is composed and timing is bit-identical to a
     *  build without the memory model (DESIGN.md §8). */
    std::string platform;
    /** Simulated accelerator chips the sparse operand's rows are sharded
     *  across (DESIGN.md §9). Each chip runs its own numPes-wide array;
     *  chips synchronize at round barriers and exchange boundary
     *  dense-feature rows over the platform's inter-chip link. 1 (the
     *  default) is a provable timing no-op: the sharded paths reduce to
     *  the single-accelerator engines bit for bit. */
    int chips = 1;

    /** True when this configuration performs any runtime rebalancing. */
    bool rebalancing() const { return sharingHops > 0 || remoteSwitching; }

    /**
     * Check every field for out-of-range values (non-positive PE/queue/
     * port counts, negative hop distances or stream widths, a zero
     * watchdog, ...) and for nonsensical field combinations (remote
     * switching on fewer than 2 PEs, a sharing window wider than the PE
     * array, the Eq. 5 shift approximation without remote switching, an
     * unregistered balancePolicy or platform name). With
     * `cycle_accurate_tdq2`,
     * additionally require the power-of-two PE count the Omega network
     * needs. Returns an empty string when valid, else a descriptive
     * error; callers surface the message (CLI error rows, fatal())
     * instead of asserting.
     */
    std::string validate(bool cycle_accurate_tdq2 = false) const;
};

/**
 * Build the configuration for a paper design point: a thin lookup of the
 * design's registered policy (equivalent to
 * `makePolicyConfig(designPolicyName(design), num_pes, hop_base)`).
 *
 * @param design    design point
 * @param num_pes   PE-array size
 * @param hop_base  base hop distance (1 for most datasets; 2 for Nell, the
 *                  DatasetSpec::hopOverride)
 */
AccelConfig makeConfig(Design design, int num_pes, int hop_base = 1);

} // namespace awb
