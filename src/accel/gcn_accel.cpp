#include "accel/gcn_accel.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "sparse/convert.hpp"

namespace awb {

Cycle
pipelineCycles(const std::vector<Cycle> &stage1,
               const std::vector<Cycle> &stage2)
{
    return pipelineCyclesMulti({&stage1, &stage2});
}

Cycle
pipelineCyclesMulti(const std::vector<const std::vector<Cycle> *> &stages)
{
    if (stages.empty()) return 0;
    const std::size_t rounds = stages.front()->size();
    for (const auto *s : stages) {
        if (s->size() != rounds)
            panic("pipelineCyclesMulti: stage round counts differ");
    }
    // end[s] = completion time of the column most recently finished by
    // stage s; column k of stage s starts at max(end[s-1], end[s]).
    std::vector<Cycle> end(stages.size(), 0);
    for (std::size_t k = 0; k < rounds; ++k) {
        for (std::size_t s = 0; s < stages.size(); ++s) {
            Cycle ready = s == 0 ? end[0] : std::max(end[s - 1], end[s]);
            end[s] = ready + (*stages[s])[k];
        }
    }
    return end.back();
}

GcnRunResult
GcnAccelerator::run(const Dataset &ds, const GcnModel &model)
{
    const Index n = ds.adjacency.rows();
    if (ds.features.cols() != model.inDim(0))
        fatal("GcnAccelerator: feature dim mismatch");

    GcnRunResult res;
    // The adjacency row map persists across layers: auto-tuning work done
    // in layer 1 keeps paying off in layer 2 (the same A is reused).
    RowPartition part_a(n, cfg_.numPes, cfg_.mapPolicy);

    CscMatrix x_csc = csrToCsc(ds.features);
    SpmmEngine engine(cfg_);

    for (Index l = 0; l < model.layers(); ++l) {
        const DenseMatrix &w = model.weights[static_cast<std::size_t>(l)];
        GcnLayerResult layer;
        layer.xw.label = "L" + std::to_string(l + 1) + ".XW";
        layer.ax.label = "L" + std::to_string(l + 1) + ".A(XW)";

        // X × W through TDQ-1 (fresh partition: X changes every layer).
        RowPartition part_x(n, cfg_.numPes, cfg_.mapPolicy);
        DenseMatrix xw = engine.run(x_csc, w, TdqKind::Tdq1DenseScan,
                                    part_x, layer.xw);

        // A × (XW) through TDQ-2 (persistent adjacency partition).
        DenseMatrix z = engine.run(ds.adjacency, xw, TdqKind::Tdq2OmegaCsc,
                                   part_a, layer.ax);

        // Multi-hop aggregation: left-multiply by A again, each stage
        // pipelined after the previous (paper §3.3: "the three
        // multiplications can be pipelined").
        for (Index h = 1; h < model.adjHops; ++h) {
            SpmmStats hop_stats;
            hop_stats.label = "L" + std::to_string(l + 1) + ".A^" +
                              std::to_string(h + 1) + "(XW)";
            z = engine.run(ds.adjacency, z, TdqKind::Tdq2OmegaCsc, part_a,
                           hop_stats);
            layer.extraHops.push_back(std::move(hop_stats));
        }

        std::vector<const std::vector<Cycle> *> stages = {
            &layer.xw.roundCycles, &layer.ax.roundCycles};
        for (const auto &hop : layer.extraHops)
            stages.push_back(&hop.roundCycles);
        layer.pipelinedCycles = pipelineCyclesMulti(stages);
        res.totalCycles += layer.pipelinedCycles;
        res.totalCyclesSerial += layer.xw.cycles + layer.ax.cycles;
        res.totalTasks += layer.xw.tasks + layer.ax.tasks;
        for (const auto &hop : layer.extraHops) {
            res.totalCyclesSerial += hop.cycles;
            res.totalTasks += hop.tasks;
        }
        res.layers.push_back(std::move(layer));

        bool last = (l == model.layers() - 1);
        if (!last) {
            z.relu();
            x_csc = denseToCsc(z);
        } else {
            res.output = std::move(z);
        }
    }

    res.utilization = res.totalCyclesSerial > 0
        ? static_cast<double>(res.totalTasks) /
          (static_cast<double>(cfg_.numPes) *
           static_cast<double>(res.totalCyclesSerial))
        : 0.0;
    return res;
}

} // namespace awb
