#include "accel/gcn_accel.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "sim/factories.hpp"
#include "sim/session.hpp"

namespace awb {

Cycle
pipelineCycles(const std::vector<Cycle> &stage1,
               const std::vector<Cycle> &stage2)
{
    return pipelineCyclesMulti({&stage1, &stage2});
}

Cycle
pipelineCyclesMulti(const std::vector<const std::vector<Cycle> *> &stages)
{
    if (stages.empty()) return 0;
    const std::size_t rounds = stages.front()->size();
    for (const auto *s : stages) {
        if (s->size() != rounds)
            panic("pipelineCyclesMulti: stage round counts differ");
    }
    // end[s] = completion time of the column most recently finished by
    // stage s; column k of stage s starts at max(end[s-1], end[s]).
    std::vector<Cycle> end(stages.size(), 0);
    for (std::size_t k = 0; k < rounds; ++k) {
        for (std::size_t s = 0; s < stages.size(); ++s) {
            Cycle ready = s == 0 ? end[0] : std::max(end[s - 1], end[s]);
            end[s] = ready + (*stages[s])[k];
        }
    }
    return end.back();
}

GcnRunResult
runGcn(const AccelConfig &cfg, const Dataset &ds, const GcnModel &model)
{
    // Compose the GCN as a workload graph and let the Session schedule
    // it: the adjacency row map is carried across layers automatically
    // (auto-tuning work done in layer 1 keeps paying off in layer 2),
    // and each layer's chained SPMMs are column-pipelined (Fig. 8).
    sim::WorkloadBundle bundle = sim::buildGcn(ds, model);
    sim::Session session(cfg);
    sim::SessionResult sres = sim::runWorkload(session, std::move(bundle));

    GcnRunResult res;
    res.output = std::move(sres.output);
    res.totalCycles = sres.totalCycles;
    res.totalCyclesSerial = sres.totalCyclesSerial;
    res.totalTasks = sres.totalTasks;
    res.utilization = sres.utilization;

    // Map the flat schedule-order stats back onto the historical
    // per-layer layout: each layer contributed XW, A(XW), then
    // adjHops-1 extra hop SPMMs, and formed exactly one pipelined chain.
    const auto layers = static_cast<std::size_t>(model.layers());
    if (sres.chains.size() != layers ||
        sres.nodeStats.size() !=
            layers * (1 + static_cast<std::size_t>(model.adjHops)))
        panic("runGcn: Session schedule no longer matches the per-layer "
              "GCN layout");
    std::size_t next = 0;
    for (Index l = 0; l < model.layers(); ++l) {
        GcnLayerResult layer;
        layer.xw = std::move(sres.nodeStats[next++]);
        layer.ax = std::move(sres.nodeStats[next++]);
        for (Index h = 1; h < model.adjHops; ++h)
            layer.extraHops.push_back(std::move(sres.nodeStats[next++]));
        layer.pipelinedCycles =
            sres.chains[static_cast<std::size_t>(l)].pipelinedCycles;
        res.layers.push_back(std::move(layer));
    }
    return res;
}

} // namespace awb
