/**
 * @file
 * The full AWB-GCN accelerator: chains the two SPMMs of every GCN layer
 * (X×W via TDQ-1, then A×(XW) via TDQ-2) with coarse-grained column
 * pipelining (paper Fig. 8: a column of XW feeds the A-multiply as soon as
 * it completes, so only one column of XW is ever buffered on chip), and
 * applies ReLU between layers.
 *
 * The adjacency matrix is identical in every layer, so the row map tuned
 * by remote switching during layer 1's A×(XW) is carried into layer 2
 * (hardware performance auto-tuning, §4).
 *
 * Since the Session API redesign this is a thin front-end over the
 * sim::Session workload-graph executor (sim/session.hpp); arbitrary
 * SPMM pipelines (GraphSAGE, GIN, k-hop GCN) compose through that API.
 */

#pragma once

#include <vector>

#include "accel/spmm_engine.hpp"
#include "gcn/model.hpp"
#include "graph/datasets.hpp"

namespace awb {

/** Cycle results of one GCN layer on the accelerator. */
struct GcnLayerResult
{
    SpmmStats xw;  ///< X(l) × W(l), TDQ-1
    SpmmStats ax;  ///< A × (XW), TDQ-2
    /** Further adjacency multiplications for multi-hop aggregation
     *  (A²(XW), A³(XW), ... — paper §3.3's three-way pipelining). */
    std::vector<SpmmStats> extraHops;
    /** Layer delay when all chained SPMMs are column-pipelined (Fig. 8). */
    Cycle pipelinedCycles = 0;
};

/** Cycle results of a full inference. */
struct GcnRunResult
{
    DenseMatrix output;
    std::vector<GcnLayerResult> layers;
    Cycle totalCycles = 0;        ///< sum of pipelined layer delays
    Cycle totalCyclesSerial = 0;  ///< without inter-SPMM pipelining
    Count totalTasks = 0;
    double utilization = 0.0;     ///< tasks / (P · serial cycles)
};

/**
 * Run multi-layer GCN inference cycle-accurately; functionally exact
 * (validated against inferGcn). Thin builder over the sim::Session
 * workload-graph API (sim/factories.hpp): it composes the per-layer
 * X×W → A^hops(XW) → ReLU graph and maps the SessionResult back onto
 * the historical per-layer result layout, cycle-for-cycle identical to
 * the original hand-rolled orchestration.
 */
GcnRunResult runGcn(const AccelConfig &cfg, const Dataset &ds,
                    const GcnModel &model);

/**
 * Combine per-round durations of two chained SPMMs under column
 * pipelining: stage-2 round k starts when stage 1 finished column k and
 * stage 2 finished column k-1. Returns the end-to-end delay.
 */
Cycle pipelineCycles(const std::vector<Cycle> &stage1,
                     const std::vector<Cycle> &stage2);

/** N-stage generalization: stage s round k starts when stage s-1 finished
 *  column k and stage s finished column k-1. */
Cycle pipelineCyclesMulti(
    const std::vector<const std::vector<Cycle> *> &stages);

} // namespace awb
