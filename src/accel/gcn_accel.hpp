/**
 * @file
 * The full AWB-GCN accelerator: chains the two SPMMs of every GCN layer
 * (X×W via TDQ-1, then A×(XW) via TDQ-2) with coarse-grained column
 * pipelining (paper Fig. 8: a column of XW feeds the A-multiply as soon as
 * it completes, so only one column of XW is ever buffered on chip), and
 * applies ReLU between layers.
 *
 * The adjacency matrix is identical in every layer, so the row map tuned
 * by remote switching during layer 1's A×(XW) is carried into layer 2
 * (hardware performance auto-tuning, §4).
 */

#pragma once

#include <vector>

#include "accel/spmm_engine.hpp"
#include "gcn/model.hpp"
#include "graph/datasets.hpp"

namespace awb {

/** Cycle results of one GCN layer on the accelerator. */
struct GcnLayerResult
{
    SpmmStats xw;  ///< X(l) × W(l), TDQ-1
    SpmmStats ax;  ///< A × (XW), TDQ-2
    /** Further adjacency multiplications for multi-hop aggregation
     *  (A²(XW), A³(XW), ... — paper §3.3's three-way pipelining). */
    std::vector<SpmmStats> extraHops;
    /** Layer delay when all chained SPMMs are column-pipelined (Fig. 8). */
    Cycle pipelinedCycles = 0;
};

/** Cycle results of a full inference. */
struct GcnRunResult
{
    DenseMatrix output;
    std::vector<GcnLayerResult> layers;
    Cycle totalCycles = 0;        ///< sum of pipelined layer delays
    Cycle totalCyclesSerial = 0;  ///< without inter-SPMM pipelining
    Count totalTasks = 0;
    double utilization = 0.0;     ///< tasks / (P · serial cycles)
};

/** Cycle-accurate accelerator for multi-layer GCN inference. */
class GcnAccelerator
{
  public:
    explicit GcnAccelerator(const AccelConfig &cfg) : cfg_(cfg) {}

    /** Run inference; functionally exact (validated against inferGcn). */
    GcnRunResult run(const Dataset &ds, const GcnModel &model);

    const AccelConfig &config() const { return cfg_; }

  private:
    AccelConfig cfg_;
};

/**
 * Combine per-round durations of two chained SPMMs under column
 * pipelining: stage-2 round k starts when stage 1 finished column k and
 * stage 2 finished column k-1. Returns the end-to-end delay.
 */
Cycle pipelineCycles(const std::vector<Cycle> &stage1,
                     const std::vector<Cycle> &stage2);

/** N-stage generalization: stage s round k starts when stage s-1 finished
 *  column k and stage s finished column k-1. */
Cycle pipelineCyclesMulti(
    const std::vector<const std::vector<Cycle> *> &stages);

} // namespace awb
