/**
 * @file
 * Dynamic local workload sharing (paper §4.1).
 *
 * Before a task is pushed into a PE's queues, its pending-task counter is
 * compared against the PEs within `hops` positions; the task goes to the
 * least-loaded of them. A diverted task still accumulates into the home
 * PE's ACC bank (the Task carries homePe), mirroring the return path of
 * Fig. 11-(B). In TDQ-2 this decision happens at the final network layer,
 * whose boundary links make out-of-group neighbours reachable
 * (Fig. 11-(D)); choosing among [home-hops, home+hops] models exactly
 * that reachable set.
 */

#pragma once

#include <vector>

#include "accel/pe.hpp"

namespace awb {

/** Stateless enqueue-time neighbour selection. */
class LocalSharer
{
  public:
    /**
     * @param hops  sharing distance; 0 disables sharing
     */
    explicit LocalSharer(int hops) : hops_(hops) {}

    int hops() const { return hops_; }

    /**
     * Least-pending PE within the sharing window of `home`. Ties favour
     * the home PE, then smaller distance (shorter return path).
     * PEs that cannot accept (bounded queues full, or whose per-cycle
     * receive ports are exhausted per `accepted`/`accept_cap`) are
     * skipped; returns -1 when every candidate is unavailable.
     *
     * @param accepted    per-PE count of tasks already accepted this
     *                    cycle (nullptr to ignore port limits)
     * @param accept_cap  per-PE receive ports per cycle
     */
    int
    choose(int home, const std::vector<Pe> &pes,
           const std::vector<int> *accepted = nullptr,
           int accept_cap = 0) const
    {
        const int n = static_cast<int>(pes.size());
        int best = -1;
        std::size_t best_pending = 0;
        int best_dist = 0;
        for (int d = -hops_; d <= hops_; ++d) {
            int p = home + d;
            if (p < 0 || p >= n) continue;
            const Pe &pe = pes[static_cast<std::size_t>(p)];
            if (!pe.canAccept()) continue;
            if (accepted != nullptr &&
                (*accepted)[static_cast<std::size_t>(p)] >= accept_cap)
                continue;
            std::size_t pending = pe.pending();
            int dist = d < 0 ? -d : d;
            bool better = best == -1 || pending < best_pending ||
                          (pending == best_pending && dist < best_dist);
            if (better) {
                best = p;
                best_pending = pending;
                best_dist = dist;
            }
        }
        return best;
    }

  private:
    int hops_;
};

} // namespace awb
