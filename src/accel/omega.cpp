#include "accel/omega.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace awb {

namespace {

int
log2i(int v)
{
    int s = 0;
    while ((1 << s) < v) ++s;
    return s;
}

} // namespace

OmegaNetwork::OmegaNetwork(int ports, int buffer_depth, int speedup)
    : ports_(ports), stages_(log2i(ports)), bufferDepth_(buffer_depth),
      speedup_(std::max(speedup, 1))
{
    if (ports < 2 || (ports & (ports - 1)) != 0)
        fatal("OmegaNetwork: ports must be a power of two >= 2");
    if (buffer_depth < 1) fatal("OmegaNetwork: buffer depth must be >= 1");
    buffers_.resize(static_cast<std::size_t>(stages_));
    stageCount_.assign(static_cast<std::size_t>(stages_), 0);
    for (int s = 0; s < stages_; ++s) {
        auto &stage = buffers_[static_cast<std::size_t>(s)];
        stage.reserve(static_cast<std::size_t>(ports_));
        for (int p = 0; p < ports_; ++p)
            stage.emplace_back(static_cast<std::size_t>(bufferDepth_));
    }
}

int
OmegaNetwork::shuffle(int port) const
{
    // Rotate the stages_-bit port id left by one.
    return ((port << 1) | (port >> (stages_ - 1))) & (ports_ - 1);
}

bool
OmegaNetwork::inject(const Flit &flit, int src)
{
    Fifo<Flit> &buf = buffers_[0][static_cast<std::size_t>(shuffle(src))];
    if (!buf.push(flit)) return false;
    ++stageCount_[0];
    roundPeak_ = std::max(roundPeak_, buf.size());
    return true;
}

void
OmegaNetwork::tick(Cycle, const Sink &sink)
{
    // Back-to-front: freeing a downstream slot this cycle lets the
    // upstream stage use it this cycle (credit-based flow control).
    const int rr = rrTick_;
    for (int s = stages_ - 1; s >= 0; --s) {
        // A vacant stage (nothing resident) cannot move anything; its
        // routers' state is fully captured by the shared priority bit,
        // so skipping them is behaviour-preserving.
        if (stageCount_[static_cast<std::size_t>(s)] == 0) continue;
        auto &stage = buffers_[static_cast<std::size_t>(s)];
        const int dest_bit = stages_ - 1 - s;
        for (int r = 0; r < ports_ / 2; ++r) {
            if (stage[static_cast<std::size_t>(2 * r)].empty() &&
                stage[static_cast<std::size_t>(2 * r + 1)].empty())
                continue;
            int out_used[2] = {0, 0};
            // The fabric clock allows `speedup_` passes over the two
            // inputs per PE cycle. Within one tick a router's inputs
            // only shrink and its outputs only fill (stages advance
            // back-to-front and each output port belongs to exactly one
            // router), so a pass that moves nothing proves every later
            // pass would move nothing: stop early.
            for (int pass = 0; pass < speedup_; ++pass) {
                bool progressed = false;
                for (int i = 0; i < 2; ++i) {
                    int in_port = 2 * r + ((rr + i) & 1);
                    Fifo<Flit> &buf =
                        stage[static_cast<std::size_t>(in_port)];
                    if (buf.empty()) continue;
                    const Flit &head = buf.front();
                    int bit = (head.destPe >> dest_bit) & 1;
                    if (out_used[bit] >= speedup_) {
                        ++blocked_;
                        continue;
                    }
                    int out_port = 2 * r + bit;
                    if (s == stages_ - 1) {
                        if (sink(head, out_port)) {
                            buf.pop();
                            --stageCount_[static_cast<std::size_t>(s)];
                            ++out_used[bit];
                            ++delivered_;
                            progressed = true;
                        } else {
                            ++blocked_;
                        }
                    } else {
                        int next_in = shuffle(out_port);
                        Fifo<Flit> &next =
                            buffers_[static_cast<std::size_t>(s + 1)]
                                    [static_cast<std::size_t>(next_in)];
                        if (next.push(head)) {
                            buf.pop();
                            --stageCount_[static_cast<std::size_t>(s)];
                            ++stageCount_[static_cast<std::size_t>(s + 1)];
                            roundPeak_ =
                                std::max(roundPeak_, next.size());
                            ++out_used[bit];
                            progressed = true;
                        } else {
                            ++blocked_;
                        }
                    }
                }
                if (!progressed) break;
            }
        }
    }
    rrTick_ ^= 1;  // alternate input priority
}

void
OmegaNetwork::setArbitration(int parity)
{
    rrTick_ = parity & 1;
}

bool
OmegaNetwork::empty() const
{
    for (Count c : stageCount_)
        if (c != 0) return false;
    return true;
}

std::size_t
OmegaNetwork::peakBufferDepth() const
{
    std::size_t m = 0;
    for (const auto &stage : buffers_)
        for (const auto &buf : stage)
            m = std::max(m, buf.peakOccupancy());
    return m;
}

} // namespace awb
