#include "accel/omega.hpp"

#include "common/log.hpp"

namespace awb {

namespace {

int
log2i(int v)
{
    int s = 0;
    while ((1 << s) < v) ++s;
    return s;
}

} // namespace

OmegaNetwork::OmegaNetwork(int ports, int buffer_depth, int speedup)
    : ports_(ports), stages_(log2i(ports)), bufferDepth_(buffer_depth),
      speedup_(std::max(speedup, 1))
{
    if (ports < 2 || (ports & (ports - 1)) != 0)
        fatal("OmegaNetwork: ports must be a power of two >= 2");
    if (buffer_depth < 1) fatal("OmegaNetwork: buffer depth must be >= 1");
    buffers_.resize(static_cast<std::size_t>(stages_));
    rrState_.resize(static_cast<std::size_t>(stages_));
    for (int s = 0; s < stages_; ++s) {
        auto &stage = buffers_[static_cast<std::size_t>(s)];
        stage.reserve(static_cast<std::size_t>(ports_));
        for (int p = 0; p < ports_; ++p)
            stage.emplace_back(static_cast<std::size_t>(bufferDepth_));
        rrState_[static_cast<std::size_t>(s)]
            .assign(static_cast<std::size_t>(ports_ / 2), 0);
    }
}

int
OmegaNetwork::shuffle(int port) const
{
    // Rotate the stages_-bit port id left by one.
    return ((port << 1) | (port >> (stages_ - 1))) & (ports_ - 1);
}

bool
OmegaNetwork::inject(const Flit &flit, int src)
{
    return buffers_[0][static_cast<std::size_t>(shuffle(src))].push(flit);
}

void
OmegaNetwork::tick(Cycle, const Sink &sink)
{
    // Back-to-front: freeing a downstream slot this cycle lets the
    // upstream stage use it this cycle (credit-based flow control).
    for (int s = stages_ - 1; s >= 0; --s) {
        auto &stage = buffers_[static_cast<std::size_t>(s)];
        const int dest_bit = stages_ - 1 - s;
        for (int r = 0; r < ports_ / 2; ++r) {
            int out_used[2] = {0, 0};
            int &rr = rrState_[static_cast<std::size_t>(s)]
                              [static_cast<std::size_t>(r)];
            // The fabric clock allows `speedup_` passes over the two
            // inputs per PE cycle.
            for (int pass = 0; pass < speedup_; ++pass) {
                for (int i = 0; i < 2; ++i) {
                    int in_port = 2 * r + ((rr + i) & 1);
                    Fifo<Flit> &buf =
                        stage[static_cast<std::size_t>(in_port)];
                    if (buf.empty()) continue;
                    const Flit &head = buf.front();
                    int bit = (head.destPe >> dest_bit) & 1;
                    if (out_used[bit] >= speedup_) {
                        ++blocked_;
                        continue;
                    }
                    int out_port = 2 * r + bit;
                    if (s == stages_ - 1) {
                        if (sink(head, out_port)) {
                            buf.pop();
                            ++out_used[bit];
                            ++delivered_;
                        } else {
                            ++blocked_;
                        }
                    } else {
                        int next_in = shuffle(out_port);
                        Fifo<Flit> &next =
                            buffers_[static_cast<std::size_t>(s + 1)]
                                    [static_cast<std::size_t>(next_in)];
                        if (next.push(head)) {
                            buf.pop();
                            ++out_used[bit];
                        } else {
                            ++blocked_;
                        }
                    }
                }
            }
            rr ^= 1;  // alternate input priority
        }
    }
}

bool
OmegaNetwork::empty() const
{
    for (const auto &stage : buffers_)
        for (const auto &buf : stage)
            if (!buf.empty()) return false;
    return true;
}

std::size_t
OmegaNetwork::peakBufferDepth() const
{
    std::size_t m = 0;
    for (const auto &stage : buffers_)
        for (const auto &buf : stage)
            m = std::max(m, buf.peakOccupancy());
    return m;
}

} // namespace awb
