/**
 * @file
 * Multi-stage Omega network used by TDQ-2 to route non-zero elements of
 * the ultra-sparse CSC operand to the PE owning their row (paper §3.3).
 *
 * log2(P) stages of 2x2 routers, perfect-shuffle wiring between stages,
 * one input buffer per router port ("Each router in the Omega-network has
 * a local buffer in case the buffer of the next stage is saturated").
 * Chosen over a crossbar for area: P/2·log2(P) routers vs P^2 crosspoints.
 */

#pragma once

#include <functional>
#include <vector>

#include "accel/task.hpp"
#include "common/stats.hpp"
#include "sim/fifo.hpp"

namespace awb {

/** Blocking multistage interconnect with per-port input buffers. */
class OmegaNetwork
{
  public:
    /**
     * @param ports         network width (power of two, == PE count)
     * @param buffer_depth  per-router-port buffer capacity (>= 1)
     * @param speedup       flits one router output can pass per PE cycle
     *                      (the switch fabric runs faster than the PE
     *                      clock so routing conflicts do not starve the
     *                      PEs; the paper sizes the network to match the
     *                      PEs' aggregate consumption)
     */
    OmegaNetwork(int ports, int buffer_depth, int speedup = 2);

    /** Destination port the sink callback will see for a flit. */
    using Sink = std::function<bool(const Flit &, int out_port)>;

    /**
     * Offer a flit at input port `src`. Returns false when the stage-0
     * buffer on that path is full (caller retries next cycle).
     */
    bool inject(const Flit &flit, int src);

    /**
     * One clock: stages advance in back-to-front order, each router moving
     * at most one flit per output. Flits leaving the final stage are
     * handed to `sink`; if the sink rejects (PE queue full), the flit
     * stays buffered.
     */
    void tick(Cycle now, const Sink &sink);

    /** No flits anywhere in the fabric. */
    bool empty() const;

    int ports() const { return ports_; }
    int stages() const { return stages_; }

    /** Largest buffer occupancy seen anywhere (area model input). */
    std::size_t peakBufferDepth() const;

    Count flitsDelivered() const { return delivered_; }
    Count blockedMoves() const { return blocked_; }

  private:
    /** Perfect-shuffle permutation (rotate-left on log2(P) bits). */
    int shuffle(int port) const;

    int ports_;
    int stages_;
    int bufferDepth_;
    int speedup_;
    /** buffers_[s][p]: input buffer of stage s at port p. */
    std::vector<std::vector<Fifo<Flit>>> buffers_;
    /** Round-robin arbitration state per router per stage. */
    std::vector<std::vector<int>> rrState_;
    Count delivered_ = 0;
    Count blocked_ = 0;
};

} // namespace awb
