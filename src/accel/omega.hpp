/**
 * @file
 * Multi-stage Omega network used by TDQ-2 to route non-zero elements of
 * the ultra-sparse CSC operand to the PE owning their row (paper §3.3).
 *
 * log2(P) stages of 2x2 routers, perfect-shuffle wiring between stages,
 * one input buffer per router port ("Each router in the Omega-network has
 * a local buffer in case the buffer of the next stage is saturated").
 * Chosen over a crossbar for area: P/2·log2(P) routers vs P^2 crosspoints.
 */

#pragma once

#include <functional>
#include <vector>

#include "accel/task.hpp"
#include "common/stats.hpp"
#include "sim/fifo.hpp"

namespace awb {

/** Blocking multistage interconnect with per-port input buffers. */
class OmegaNetwork
{
  public:
    /**
     * @param ports         network width (power of two, == PE count)
     * @param buffer_depth  per-router-port buffer capacity (>= 1)
     * @param speedup       flits one router output can pass per PE cycle
     *                      (the switch fabric runs faster than the PE
     *                      clock so routing conflicts do not starve the
     *                      PEs; the paper sizes the network to match the
     *                      PEs' aggregate consumption)
     */
    OmegaNetwork(int ports, int buffer_depth, int speedup = 2);

    /** Destination port the sink callback will see for a flit. */
    using Sink = std::function<bool(const Flit &, int out_port)>;

    /**
     * Offer a flit at input port `src`. Returns false when the stage-0
     * buffer on that path is full (caller retries next cycle).
     */
    bool inject(const Flit &flit, int src);

    /**
     * One clock: stages advance in back-to-front order, each router moving
     * at most one flit per output. Flits leaving the final stage are
     * handed to `sink`; if the sink rejects (PE queue full), the flit
     * stays buffered.
     */
    void tick(Cycle now, const Sink &sink);

    /** No flits anywhere in the fabric. */
    bool empty() const;

    int ports() const { return ports_; }
    int stages() const { return stages_; }

    /**
     * Force every router's input-priority toggle to `parity`. The toggle
     * flips once per tick() for every router, so after t ticks from reset
     * it equals t mod 2 array-wide; between rounds it is the only network
     * state besides the (empty) buffers. The round-batched engine calls
     * this with the global cycle parity before event-stepping a round so
     * that skipped (replayed) rounds leave the fabric in the same state
     * the event engine would have (DESIGN.md §6). A no-op under pure
     * event stepping, where the toggle already equals the cycle parity.
     */
    void setArbitration(int parity);

    /** Largest buffer occupancy seen anywhere (area model input). */
    std::size_t peakBufferDepth() const;

    /**
     * Largest buffer occupancy since the last resetRoundPeak(). The
     * fabric is empty at every round boundary and `Fifo` peaks only
     * move on push, so the lifetime peak equals the max of these
     * round-local peaks; cached round replay restores it exactly
     * (DESIGN.md §13).
     */
    std::size_t roundPeakBufferDepth() const { return roundPeak_; }
    void resetRoundPeak() { roundPeak_ = 0; }

    Count flitsDelivered() const { return delivered_; }
    /** Moves that found their output busy or the next buffer full. A
     *  congestion indicator, not an exact attempt count: provably futile
     *  re-attempts (a pass that cannot make progress) are skipped. */
    Count blockedMoves() const { return blocked_; }

  private:
    /** Perfect-shuffle permutation (rotate-left on log2(P) bits). */
    int shuffle(int port) const;

    int ports_;
    int stages_;
    int bufferDepth_;
    int speedup_;
    /** buffers_[s][p]: input buffer of stage s at port p. */
    std::vector<std::vector<Fifo<Flit>>> buffers_;
    /**
     * Input-priority toggle shared by every router. Each router used to
     * carry its own bit, but all of them start at 0 and flip exactly
     * once per tick(), so the array was always uniformly equal to the
     * tick parity; one bit models it exactly and lets tick() skip
     * vacant routers without desynchronizing arbitration state.
     */
    int rrTick_ = 0;
    /** Flits resident per stage; lets tick() skip empty stages and
     *  makes empty() O(stages). */
    std::vector<Count> stageCount_;
    std::size_t roundPeak_ = 0;
    Count delivered_ = 0;
    Count blocked_ = 0;
};

} // namespace awb
