#include "accel/pe.hpp"

#include <algorithm>

namespace awb {

Pe::Pe(int id, int num_queues, std::size_t queue_depth, int mac_latency)
    : id_(id), macLatency_(mac_latency),
      stats_("pe" + std::to_string(id) + ".")
{
    if (num_queues < 1) num_queues = 1;
    queues_.reserve(static_cast<std::size_t>(num_queues));
    for (int q = 0; q < num_queues; ++q)
        queues_.emplace_back(queue_depth);
    inflight_.reserve(static_cast<std::size_t>(mac_latency) + 1);
}

std::size_t
Pe::pending() const
{
    std::size_t n = 0;
    for (const auto &q : queues_) n += q.size();
    return n;
}

bool
Pe::drained(Cycle now) const
{
    if (pending() != 0) return false;
    for (const auto &f : inflight_)
        if (f.done > now) return false;
    return true;
}

bool
Pe::canAccept() const
{
    return std::any_of(queues_.begin(), queues_.end(),
                       [](const Fifo<Task> &q) { return !q.full(); });
}

bool
Pe::enqueue(const Task &task)
{
    Fifo<Task> *best = nullptr;
    for (auto &q : queues_) {
        if (q.full()) continue;
        if (best == nullptr || q.size() < best->size()) best = &q;
    }
    if (best == nullptr) {
        stats_.counter("enqueueRejects").inc();
        return false;
    }
    best->push(task);
    roundPeak_ = std::max(roundPeak_, best->size());
    return true;
}

bool
Pe::rowInFlight(Index row) const
{
    for (const auto &f : inflight_)
        if (f.row == row) return true;
    return false;
}

void
Pe::tick(Cycle now, std::vector<Value> &acc)
{
    // Retire MAC ops whose pipeline delay has elapsed.
    inflight_.erase(std::remove_if(inflight_.begin(), inflight_.end(),
                                   [now](const InFlight &f) {
                                       return f.done <= now;
                                   }),
                    inflight_.end());

    // Arbiter: round-robin over queues, issue the first whose head does
    // not RaW-conflict with an in-flight accumulation.
    bool any_pending = false;
    for (std::size_t i = 0; i < queues_.size(); ++i) {
        auto qi = (nextQueue_ + i) % queues_.size();
        Fifo<Task> &q = queues_[qi];
        if (q.empty()) continue;
        any_pending = true;
        if (rowInFlight(q.front().row)) continue;

        Task t = q.pop();
        nextQueue_ = (qi + 1) % queues_.size();
        // Functional accumulate (the value is architecturally visible
        // only after the pipeline delay, which the scoreboard enforces).
        acc[static_cast<std::size_t>(t.row)] += t.a * t.b;
        inflight_.push_back({t.row, now + macLatency_});
        lastBusy_ = now;
        ++tasksRound_;
        stats_.counter("tasks").inc();
        stats_.counter("busyCycles").inc();
        return;
    }

    if (any_pending) {
        stats_.counter("rawStallCycles").inc();
    } else {
        stats_.counter("idleCycles").inc();
    }
}

std::size_t
Pe::peakQueueDepth() const
{
    std::size_t m = 0;
    for (const auto &q : queues_) m = std::max(m, q.peakOccupancy());
    return m;
}

void
Pe::resetRound()
{
    tasksRound_ = 0;
    roundPeak_ = 0;
}

} // namespace awb
