/**
 * @file
 * Processing element: multiple task queues, an arbiter, a pipelined
 * floating-point MAC with a RaW-hazard scoreboard, and the AGU/ACC
 * accumulation path (paper Fig. 7).
 *
 * The MAC is pipelined with latency T (`macLatency`): it accepts one task
 * per cycle but a task whose accumulation target row is still in flight
 * must wait (the scoreboard / stall-buffer of §3.3), otherwise it would
 * read a stale partial sum from the ACC bank.
 */

#pragma once

#include <vector>

#include "accel/task.hpp"
#include "common/stats.hpp"
#include "sim/fifo.hpp"

namespace awb {

/** One PE plus its slice of the accumulator-buffer array. */
class Pe
{
  public:
    /**
     * @param id           PE index in the array
     * @param num_queues   task queues in front of the arbiter
     * @param queue_depth  per-queue capacity (0 = unbounded, measured)
     * @param mac_latency  MAC pipeline depth T
     * @param acc          shared result column (banked by row ownership;
     *                     the engine passes one column per round)
     */
    Pe(int id, int num_queues, std::size_t queue_depth, int mac_latency);

    int id() const { return id_; }

    /** Total buffered tasks across this PE's queues ("pending counter"). */
    std::size_t pending() const;

    /** True when queues are empty and the MAC pipeline has drained. */
    bool drained(Cycle now) const;

    /** Can at least one queue accept a task? */
    bool canAccept() const;

    /**
     * Enqueue a task into the shortest queue. Returns false when all
     * queues are full (backpressure to the distribution network).
     */
    bool enqueue(const Task &task);

    /**
     * One clock: retire finished MAC ops, then let the arbiter issue the
     * first hazard-free queue head into the MAC and accumulate into `acc`.
     */
    void tick(Cycle now, std::vector<Value> &acc);

    /** Cycle the PE last issued real work (utilization accounting). */
    Cycle lastBusyCycle() const { return lastBusy_; }

    /** Tasks executed since the last resetRound(). */
    Count tasksThisRound() const { return tasksRound_; }

    /** Peak queue occupancy across all queues since construction. */
    std::size_t peakQueueDepth() const;

    /**
     * Peak queue occupancy since the last resetRound(). Because queues
     * are empty at every per-column barrier and `Fifo` peaks only move
     * on push, the lifetime peak equals the max of these round-local
     * peaks — which is what lets a replayed cached round carry the same
     * peak its event-stepped twin produced (DESIGN.md §13).
     */
    std::size_t roundPeakQueueDepth() const { return roundPeak_; }

    /** Per-round reset of drain bookkeeping (queues must be empty). */
    void resetRound();

    /**
     * The arbiter's round-robin cursor — the only PE state that carries
     * meaning across round boundaries (queues and the MAC pipeline are
     * drained at every per-column barrier). The batched engine keys its
     * round memoization on it and restores it when replaying a cached
     * round (DESIGN.md §6).
     */
    std::size_t arbiterCursor() const { return nextQueue_; }
    void setArbiterCursor(std::size_t q) { nextQueue_ = q % queues_.size(); }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  private:
    /** True if `row` is being accumulated in the MAC pipeline. */
    bool rowInFlight(Index row) const;

    int id_;
    int macLatency_;
    std::vector<Fifo<Task>> queues_;
    std::size_t nextQueue_ = 0;  ///< round-robin arbiter state

    /** Scoreboard: (row, completion cycle) of in-flight MAC ops. */
    struct InFlight
    {
        Index row;
        Cycle done;
    };
    std::vector<InFlight> inflight_;

    Cycle lastBusy_ = -1;
    Count tasksRound_ = 0;
    std::size_t roundPeak_ = 0;
    StatSet stats_;
};

} // namespace awb
