#include "accel/perf_model.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "accel/gcn_accel.hpp"
#include "accel/policy.hpp"
#include "common/log.hpp"
#include "kernels/spgemm.hpp"

namespace awb {

namespace {

/** Online greedy sharing leaves a few percent on the table compared with
 *  the optimal water-filling bound; calibrated against the cycle engine. */
constexpr double kSharingInefficiency = 1.15;

int
log2i(int v)
{
    int s = 0;
    while ((1 << s) < v) ++s;
    return s;
}

/**
 * Feasibility check for balancedDrain: can every PE's work be served
 * within `hops` positions with per-PE capacity t? Greedy left-to-right
 * serving the earliest-expiring work first (exact for interval-constrained
 * transportation on a line).
 */
bool
feasible(const std::vector<Count> &w, int hops, Cycle t,
         std::vector<Count> *served)
{
    const int P = static_cast<int>(w.size());
    if (served) served->assign(static_cast<std::size_t>(P), 0);
    std::deque<std::pair<int, Count>> pending;  // (source PE, remaining)
    int next_src = 0;
    for (int s = 0; s < P; ++s) {
        while (next_src < P && next_src <= s + hops) {
            if (w[static_cast<std::size_t>(next_src)] > 0)
                pending.emplace_back(
                    next_src, w[static_cast<std::size_t>(next_src)]);
            ++next_src;
        }
        // Work whose window has closed cannot be served any more.
        if (!pending.empty() && pending.front().first < s - hops)
            return false;
        Count cap = t;
        while (cap > 0 && !pending.empty()) {
            auto &[src, rem] = pending.front();
            Count take = std::min(cap, rem);
            rem -= take;
            cap -= take;
            if (served) (*served)[static_cast<std::size_t>(s)] += take;
            if (rem == 0) pending.pop_front();
        }
    }
    return pending.empty();
}

} // namespace

PerfModel::PerfModel(const AccelConfig &cfg) : cfg_(cfg) {}

Cycle
PerfModel::balancedDrain(const std::vector<Count> &pe_work, int hops,
                         std::vector<Count> *served)
{
    const int P = static_cast<int>(pe_work.size());
    Count total = std::accumulate(pe_work.begin(), pe_work.end(), Count(0));
    Cycle lo = (total + P - 1) / P;
    Cycle hi = *std::max_element(pe_work.begin(), pe_work.end());
    if (hops <= 0 || lo >= hi) {
        if (served) *served = pe_work;
        return hi;
    }
    while (lo < hi) {
        Cycle mid = lo + (hi - lo) / 2;
        if (feasible(pe_work, hops, mid, nullptr)) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if (served) feasible(pe_work, hops, lo, served);
    return lo;
}

PerfSpmmResult
PerfModel::runSpmm(const std::vector<Count> &row_work, Index rounds,
                   RowPartition &partition, Index inner_dim) const
{
    const int P = cfg_.numPes;
    PerfSpmmResult res;
    res.rounds = rounds;
    res.roundCycles.reserve(static_cast<std::size_t>(rounds));

    std::unique_ptr<RebalancePolicy> rebalance =
        makeRebalancePolicy(cfg_, partition.rows());
    res.perPeTasks.assign(static_cast<std::size_t>(P), 0);
    const Cycle overhead = cfg_.macLatency + log2i(P) + 2;

    // Off-chip memory model (DESIGN.md §8): same accounting and
    // roofline composition as the cycle engine, at round granularity.
    const MemoryModel mem(findPlatform(cfg_.platform),
                          policyClockMhz(cfg_));
    const Count total_nnz =
        std::accumulate(row_work.begin(), row_work.end(), Count(0));
    const MemoryTraffic steady_traffic = mem.roundTraffic(
        total_nnz, inner_dim > 0 ? inner_dim : partition.rows(),
        partition.rows());
    Count pending_migration_bytes = 0;

    std::vector<Count> served;
    for (Index k = 0; k < rounds; ++k) {
        std::vector<Count> pe_work = partition.workload(row_work);
        Count total = std::accumulate(pe_work.begin(), pe_work.end(),
                                      Count(0));
        Cycle no_share =
            *std::max_element(pe_work.begin(), pe_work.end());
        Cycle drain = balancedDrain(pe_work, cfg_.sharingHops, &served);
        if (cfg_.sharingHops > 0) {
            // Online greedy sharing pays an inefficiency over the optimal
            // water-filling, but never loses to not sharing at all.
            drain = std::min(no_share,
                             static_cast<Cycle>(static_cast<double>(drain) *
                                                kSharingInefficiency));
        }
        Cycle inject = (total + P - 1) / P;
        Cycle round_cycles = std::max(drain, inject) + overhead;

        // Roofline composition with the bandwidth-bound floor; rows the
        // policy moved after round k-1 bill their migration here.
        MemoryTraffic round_traffic = steady_traffic;
        round_traffic.migrationBytes = pending_migration_bytes;
        pending_migration_bytes = 0;
        res.traffic += round_traffic;
        const Cycle bw_floor = mem.floorCycles(round_traffic.total());
        res.memoryCycles += bw_floor;
        if (bw_floor > round_cycles) {
            ++res.bwBoundRounds;
            round_cycles = bw_floor;
        }

        res.roundCycles.push_back(round_cycles);
        res.cycles += round_cycles;
        res.tasks += total;
        res.idealCycles += inject;

        // Peak queue depth: a PE's arrivals spread over the injection
        // window while it drains at one task per cycle.
        for (int p = 0; p < P; ++p) {
            res.perPeTasks[static_cast<std::size_t>(p)] +=
                served[static_cast<std::size_t>(p)];
            Count backlog = served[static_cast<std::size_t>(p)] - inject;
            if (backlog > 0) {
                res.peakQueueDepth = std::max(
                    res.peakQueueDepth, static_cast<std::size_t>(backlog));
            }
        }

        if (k + 1 < rounds && rebalance->wantsObservations()) {
            // PESM ranks by home-attributed load (see SpmmEngine): the
            // switchable quantity is row ownership, not where sharing
            // happened to execute the tasks.
            RoundObservation obs;
            obs.peWork = std::move(pe_work);
            obs.drainCycle.assign(served.begin(), served.end());
            std::vector<int> owners_before = partition.owners();
            rebalance->observeAndAdjust(obs, row_work, partition);
            pending_migration_bytes = mem.migrationBytes(
                owners_before, partition.owners(), row_work);
        }
    }

    res.peakQueueDepth = std::max<std::size_t>(
        res.peakQueueDepth,
        static_cast<std::size_t>(cfg_.numQueuesPerPe));
    res.syncCycles = std::max<Cycle>(0, res.cycles - res.idealCycles);
    res.utilization = res.cycles > 0
        ? static_cast<double>(res.tasks) /
          (static_cast<double>(P) * static_cast<double>(res.cycles))
        : 0.0;
    res.rowsSwitched = rebalance->totalRowsMoved();
    res.convergedRound = rebalance->convergedRound();
    return res;
}

PerfSpmmResult
PerfModel::runSpgemm(const CscMatrix &a, const CscMatrix &b,
                     RowPartition &partition) const
{
    if (a.cols() != b.rows())
        fatal("PerfModel::runSpgemm: inner dimensions differ");
    if (partition.rows() != a.rows())
        fatal("PerfModel::runSpgemm: partition rows != operand rows");

    const int P = cfg_.numPes;
    const Index K = b.cols();
    PerfSpmmResult res;
    res.rounds = K;
    res.roundCycles.reserve(static_cast<std::size_t>(K));

    std::unique_ptr<RebalancePolicy> rebalance =
        makeRebalancePolicy(cfg_, partition.rows());
    res.perPeTasks.assign(static_cast<std::size_t>(P), 0);
    const Cycle overhead = cfg_.macLatency + log2i(P) + 2;

    const MemoryModel mem(findPlatform(cfg_.platform),
                          policyClockMhz(cfg_));
    // Migration billing moves whole rows of A between banks, the same
    // quantity the cycle engine bills (not the round-masked work).
    const std::vector<Count> row_work = a.rowNnz();
    const std::vector<Count> out_nnz = kernels::spgemmColumnNnz(a, b);
    Count pending_migration_bytes = 0;

    std::vector<Count> row_work_k(static_cast<std::size_t>(a.rows()));
    std::vector<Count> served;
    for (Index k = 0; k < K; ++k) {
        // Round-k per-row work: B column k's non-zeros each expand the
        // matching A column, so only rows reachable through those
        // columns carry tasks this round.
        std::fill(row_work_k.begin(), row_work_k.end(), Count(0));
        const Count b_begin = b.colPtr()[static_cast<std::size_t>(k)];
        const Count b_end = b.colPtr()[static_cast<std::size_t>(k) + 1];
        for (Count p = b_begin; p < b_end; ++p) {
            const Index j = b.rowId()[static_cast<std::size_t>(p)];
            for (Count q = a.colPtr()[static_cast<std::size_t>(j)];
                 q < a.colPtr()[static_cast<std::size_t>(j) + 1]; ++q) {
                ++row_work_k[static_cast<std::size_t>(
                    a.rowId()[static_cast<std::size_t>(q)])];
            }
        }

        std::vector<Count> pe_work = partition.workload(row_work_k);
        Count total = std::accumulate(pe_work.begin(), pe_work.end(),
                                      Count(0));
        Cycle no_share =
            *std::max_element(pe_work.begin(), pe_work.end());
        Cycle drain = balancedDrain(pe_work, cfg_.sharingHops, &served);
        if (cfg_.sharingHops > 0) {
            drain = std::min(no_share,
                             static_cast<Cycle>(static_cast<double>(drain) *
                                                kSharingInefficiency));
        }
        Cycle inject = (total + P - 1) / P;
        Cycle round_cycles = std::max(drain, inject) + overhead;

        MemoryTraffic round_traffic = mem.spgemmRoundTraffic(
            total, b_end - b_begin,
            out_nnz[static_cast<std::size_t>(k)]);
        round_traffic.migrationBytes = pending_migration_bytes;
        pending_migration_bytes = 0;
        res.traffic += round_traffic;
        const Cycle bw_floor = mem.floorCycles(round_traffic.total());
        res.memoryCycles += bw_floor;
        if (bw_floor > round_cycles) {
            ++res.bwBoundRounds;
            round_cycles = bw_floor;
        }

        res.roundCycles.push_back(round_cycles);
        res.cycles += round_cycles;
        res.tasks += total;
        res.idealCycles += inject;

        for (int p = 0; p < P; ++p) {
            res.perPeTasks[static_cast<std::size_t>(p)] +=
                served[static_cast<std::size_t>(p)];
            Count backlog = served[static_cast<std::size_t>(p)] - inject;
            if (backlog > 0) {
                res.peakQueueDepth = std::max(
                    res.peakQueueDepth, static_cast<std::size_t>(backlog));
            }
        }

        // Observe after every round, the last included, mirroring
        // SpmmEngine::executeSpgemm (frontier kernels chain 1-round
        // SpGEMMs over a carried partition).
        if (rebalance->wantsObservations()) {
            RoundObservation obs;
            obs.peWork = std::move(pe_work);
            obs.drainCycle.assign(served.begin(), served.end());
            std::vector<int> owners_before = partition.owners();
            rebalance->observeAndAdjust(obs, row_work, partition);
            const Count mig = mem.migrationBytes(
                owners_before, partition.owners(), row_work);
            if (k + 1 < K) {
                pending_migration_bytes = mig;
            } else {
                res.traffic.migrationBytes += mig;
            }
        }
    }

    res.peakQueueDepth = std::max<std::size_t>(
        res.peakQueueDepth,
        static_cast<std::size_t>(cfg_.numQueuesPerPe));
    res.syncCycles = std::max<Cycle>(0, res.cycles - res.idealCycles);
    res.utilization = res.cycles > 0
        ? static_cast<double>(res.tasks) /
          (static_cast<double>(P) * static_cast<double>(res.cycles))
        : 0.0;
    res.rowsSwitched = rebalance->totalRowsMoved();
    res.convergedRound = rebalance->convergedRound();
    return res;
}

PerfGcnResult
PerfModel::runGcn(const WorkloadProfile &profile) const
{
    const Index n = profile.spec.nodes;
    PerfGcnResult res;
    std::unique_ptr<PartitionPolicy> partitioner =
        makePartitionPolicy(cfg_);
    RowPartition part_a = partitioner->build(n, profile.aRowNnz, cfg_);

    struct LayerIn
    {
        const std::vector<Count> *xRow;
        Index rounds;
        Index innerDim;  ///< feature width of X (streamed W column)
    };
    const LayerIn layers[2] = {
        {&profile.x1RowNnz, profile.spec.f2, profile.spec.f1},
        {&profile.x2RowNnz, profile.spec.f3, profile.spec.f2},
    };

    auto fold = [&res](const PerfSpmmResult &s) {
        res.traffic += s.traffic;
        res.memoryCycles += s.memoryCycles;
        res.bwBoundRounds += s.bwBoundRounds;
    };
    for (const LayerIn &li : layers) {
        PerfGcnResult::Layer layer;
        RowPartition part_x = partitioner->build(n, *li.xRow, cfg_);
        layer.xw = runSpmm(*li.xRow, li.rounds, part_x, li.innerDim);
        layer.ax = runSpmm(profile.aRowNnz, li.rounds, part_a, n);
        layer.pipelinedCycles =
            pipelineCycles(layer.xw.roundCycles, layer.ax.roundCycles);
        res.totalCycles += layer.pipelinedCycles;
        res.totalCyclesSerial += layer.xw.cycles + layer.ax.cycles;
        res.totalTasks += layer.xw.tasks + layer.ax.tasks;
        fold(layer.xw);
        fold(layer.ax);
        res.layers.push_back(std::move(layer));
    }

    res.utilization = res.totalCyclesSerial > 0
        ? static_cast<double>(res.totalTasks) /
          (static_cast<double>(cfg_.numPes) *
           static_cast<double>(res.totalCyclesSerial))
        : 0.0;
    return res;
}

} // namespace awb
