/**
 * @file
 * Round-level performance model of the AWB-SPMM engine.
 *
 * Per processed column ("round") the engine's behaviour is determined by
 * the per-PE task counts: a PE's tasks equal the summed row-nnz of the
 * rows it owns, local sharing spreads a PE's surplus to PEs within `hops`
 * positions, and the round ends when the slowest PE drains (per-column
 * barrier, §3.3). This model computes those quantities directly instead of
 * simulating every cycle, which makes full-scale Reddit (≈24M non-zeros ×
 * 64 columns) tractable; DESIGN.md §4 explains the validation against the
 * cycle-accurate engine.
 *
 * It drives the *same* RebalancePolicy objects (accel/policy.hpp — the
 * paper's RemoteSwitcher for Designs C/D, arbitrary registered policies
 * otherwise) as the cycle engine, so auto-tuning decisions are identical
 * between fidelities.
 */

#pragma once

#include <vector>

#include "accel/config.hpp"
#include "accel/row_map.hpp"
#include "graph/datasets.hpp"
#include "model/memory_model.hpp"
#include "sparse/csc.hpp"

namespace awb {

/** Round-level results of one SPMM (mirrors SpmmStats). */
struct PerfSpmmResult
{
    Cycle cycles = 0;
    Count tasks = 0;
    Cycle idealCycles = 0;
    Cycle syncCycles = 0;
    double utilization = 0.0;
    Count rounds = 0;
    Count rowsSwitched = 0;
    Count convergedRound = -1;
    std::size_t peakQueueDepth = 0;
    /** Off-chip traffic accounted by the memory model (DESIGN.md §8). */
    MemoryTraffic traffic;
    Cycle memoryCycles = 0;   ///< summed per-round bandwidth floors
    Count bwBoundRounds = 0;  ///< rounds stretched to their floor
    std::vector<Cycle> roundCycles;
    std::vector<Count> perPeTasks;  ///< modelled executed tasks per PE
};

/** Round-level results of a full GCN inference. */
struct PerfGcnResult
{
    struct Layer
    {
        PerfSpmmResult xw;
        PerfSpmmResult ax;
        Cycle pipelinedCycles = 0;
    };
    std::vector<Layer> layers;
    Cycle totalCycles = 0;        ///< with inter-SPMM column pipelining
    Cycle totalCyclesSerial = 0;
    Count totalTasks = 0;
    double utilization = 0.0;
    MemoryTraffic traffic;        ///< summed over every SPMM
    Cycle memoryCycles = 0;
    Count bwBoundRounds = 0;
};

/** The model. Stateless between runs apart from configuration. */
class PerfModel
{
  public:
    explicit PerfModel(const AccelConfig &cfg);

    /**
     * Model one SPMM.
     *
     * @param row_work   tasks per sparse-operand row (its row-nnz)
     * @param rounds     dense-operand column count
     * @param partition  row map, mutated by remote switching
     * @param inner_dim  columns of the sparse operand == length of the
     *                   streamed dense column (memory-traffic
     *                   accounting); 0 = square operand, use the
     *                   partition's row count (the adjacency case)
     */
    PerfSpmmResult runSpmm(const std::vector<Count> &row_work, Index rounds,
                           RowPartition &partition,
                           Index inner_dim = 0) const;

    /**
     * Model one sparse-output SpGEMM C = a × b (DESIGN.md §11). Rounds
     * are B's sparse columns; round k's per-PE work is the per-row task
     * count of the A columns that B column k references (the work
     * distribution shifts every round — unlike runSpmm's fixed row_work).
     * Shares the cycle engine's traffic accounting
     * (MemoryModel::spgemmRoundTraffic, output fill from
     * kernels::spgemmColumnNnz) and its observe-after-every-round
     * rebalance schedule, so accumulated traffic bytes are byte-equal to
     * SpmmEngine::executeSpgemm under static (non-rebalancing) policies;
     * dynamic policies see fidelity-specific observations and may
     * diverge, as across fidelities everywhere else.
     */
    PerfSpmmResult runSpgemm(const CscMatrix &a, const CscMatrix &b,
                             RowPartition &partition) const;

    /**
     * Model a full 2-layer GCN inference from a workload profile
     * (full-scale capable). The adjacency partition persists across
     * layers, as in the cycle-accurate accelerator.
     */
    PerfGcnResult runGcn(const WorkloadProfile &profile) const;

    /**
     * Given per-PE workloads and the sharing hop distance, the minimum
     * achievable drain time (water-filling with locality): the smallest t
     * such that every PE's work can be served by PEs within `hops` of it
     * with per-PE capacity t. Exposed for testing.
     */
    static Cycle balancedDrain(const std::vector<Count> &pe_work, int hops,
                               std::vector<Count> *served = nullptr);

  private:
    AccelConfig cfg_;
};

} // namespace awb
