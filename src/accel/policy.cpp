#include "accel/policy.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

#include "common/log.hpp"
#include "common/text.hpp"

namespace awb {

namespace {

constexpr double kFpgaMhz = 275.0;  ///< paper operating frequency
constexpr double kEieMhz = 285.0;   ///< EIE-like reference frequency

// ------------------------------------------------- partition policies

/** The enum-era static mappings (paper Fig. 6): blocked or cyclic. */
class StaticMapPartition : public PartitionPolicy
{
  public:
    explicit StaticMapPartition(RowMapPolicy policy) : policy_(policy) {}

    RowPartition build(Index rows, const std::vector<Count> &,
                       const AccelConfig &cfg) const override
    {
        return RowPartition(rows, cfg.numPes, policy_);
    }

  private:
    RowMapPolicy policy_;
};

/**
 * Degree-sorted static partition: rows ordered by descending work and
 * greedily assigned to the least-loaded PE (LPT scheduling). A static
 * alternative to runtime rebalancing — near-perfect load balance when the
 * degree profile is known up front, but blind to queueing dynamics.
 */
class DegreeSortedPartition : public PartitionPolicy
{
  public:
    RowPartition build(Index rows, const std::vector<Count> &row_work,
                       const AccelConfig &cfg) const override
    {
        const int P = cfg.numPes;
        std::vector<Index> order(static_cast<std::size_t>(rows));
        std::iota(order.begin(), order.end(), Index(0));
        std::sort(order.begin(), order.end(), [&](Index a, Index b) {
            Count wa = row_work[static_cast<std::size_t>(a)];
            Count wb = row_work[static_cast<std::size_t>(b)];
            if (wa != wb) return wa > wb;
            return a < b;
        });

        // Min-heap of (load, pe); ties resolve to the lowest PE index so
        // the assignment is fully deterministic.
        using Slot = std::pair<Count, int>;
        std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>>
            heap;
        for (int p = 0; p < P; ++p) heap.push({0, p});

        std::vector<int> owner(static_cast<std::size_t>(rows), 0);
        for (Index r : order) {
            Slot s = heap.top();
            heap.pop();
            owner[static_cast<std::size_t>(r)] = s.second;
            s.first += row_work[static_cast<std::size_t>(r)];
            heap.push(s);
        }
        return RowPartition(std::move(owner), P);
    }
};

// ------------------------------------------------- rebalance policies

/**
 * Greedy round-level work stealing: each round the most-loaded PE (by
 * home-attributed work) hands its heaviest rows to the least-loaded PE,
 * transferring at most half the gap. One donor/thief pair per round —
 * deliberately simpler than the paper's Eq. 5 controller (no gap history,
 * no tracked tuples), as an ablation of how much that machinery buys.
 */
class GreedyStealRebalance : public RebalancePolicy
{
  public:
    int observeAndAdjust(const RoundObservation &obs,
                         const std::vector<Count> &row_work,
                         RowPartition &partition) override
    {
        ++round_;
        if (converged_) return 0;
        const int P = static_cast<int>(obs.peWork.size());
        int hot = 0, cold = 0;
        for (int p = 1; p < P; ++p) {
            if (obs.peWork[static_cast<std::size_t>(p)] >
                obs.peWork[static_cast<std::size_t>(hot)])
                hot = p;
            if (obs.peWork[static_cast<std::size_t>(p)] <
                obs.peWork[static_cast<std::size_t>(cold)])
                cold = p;
        }
        Count total = std::accumulate(obs.peWork.begin(), obs.peWork.end(),
                                      Count(0));
        Count mean = total / std::max(P, 1);
        Count gap = obs.peWork[static_cast<std::size_t>(hot)] -
                    obs.peWork[static_cast<std::size_t>(cold)];
        if (gap <= std::max<Count>(1, mean / 10)) {
            converged_ = true;
            convergedRound_ = round_;
            return 0;
        }

        std::vector<Index> rows = partition.rowsOf(hot);
        std::sort(rows.begin(), rows.end(), [&](Index a, Index b) {
            Count wa = row_work[static_cast<std::size_t>(a)];
            Count wb = row_work[static_cast<std::size_t>(b)];
            if (wa != wb) return wa > wb;
            return a < b;
        });
        const Count target = gap / 2;
        Count transferred = 0;
        int moved = 0;
        for (Index r : rows) {
            Count w = row_work[static_cast<std::size_t>(r)];
            if (w <= 0) break;  // only zero-work rows remain
            // Too-heavy rows are skipped; lighter ones further down may
            // still fit under the no-overshoot budget.
            if (transferred + w > target) continue;
            partition.moveRow(r, cold);
            transferred += w;
            ++moved;
            if (moved >= kMaxRowsPerRound) break;
        }
        if (moved == 0) {
            // Granularity floor: even the lightest positive row of the
            // hotspot overshoots half the gap. Nothing left to steal.
            converged_ = true;
            convergedRound_ = round_;
            return 0;
        }
        totalMoved_ += moved;
        return moved;
    }

    bool converged() const override { return converged_; }
    Count convergedRound() const override { return convergedRound_; }
    Count totalRowsMoved() const override { return totalMoved_; }

  private:
    static constexpr int kMaxRowsPerRound = 64;
    bool converged_ = false;
    Count convergedRound_ = -1;
    Count round_ = 0;
    Count totalMoved_ = 0;
};

/**
 * Periodic contiguous re-chunking: every `period` rounds the whole map is
 * rebuilt as contiguous row chunks of near-equal cumulative work (split
 * at total·p/P boundaries in prefix-sum space). Keeps the baseline's
 * block locality while adapting chunk widths to the degree profile; once
 * a rebuild changes nothing the policy is converged (row work is constant
 * across rounds, so the map is a fixed point).
 */
class PeriodicRechunkRebalance : public RebalancePolicy
{
  public:
    explicit PeriodicRechunkRebalance(int period) : period_(period) {}

    int observeAndAdjust(const RoundObservation &,
                         const std::vector<Count> &row_work,
                         RowPartition &partition) override
    {
        ++round_;
        if (converged_ || round_ % period_ != 0) return 0;
        const int P = partition.numPes();
        const Index n = partition.rows();
        Count total = std::accumulate(row_work.begin(), row_work.end(),
                                      Count(0));
        if (total <= 0) {
            converged_ = true;
            convergedRound_ = round_;
            return 0;
        }

        std::vector<int> owner(static_cast<std::size_t>(n), 0);
        int moved = 0;
        Count prefix = 0;
        for (Index r = 0; r < n; ++r) {
            Count w = row_work[static_cast<std::size_t>(r)];
            // Chunk of the row's midpoint in prefix-sum space; monotonic
            // in r, so chunks stay contiguous.
            Count mid = prefix + w / 2;
            int pe = static_cast<int>(
                std::min<Count>(P - 1, (mid * P) / total));
            owner[static_cast<std::size_t>(r)] = pe;
            if (partition.owner(r) != pe) ++moved;
            prefix += w;
        }
        if (moved == 0) {
            converged_ = true;
            convergedRound_ = round_;
            return 0;
        }
        partition = RowPartition(std::move(owner), P);
        totalMoved_ += moved;
        return moved;
    }

    bool converged() const override { return converged_; }
    Count convergedRound() const override { return convergedRound_; }
    Count totalRowsMoved() const override { return totalMoved_; }

  private:
    int period_;
    bool converged_ = false;
    Count convergedRound_ = -1;
    Count round_ = 0;
    Count totalMoved_ = 0;
};

/**
 * Delta-reacting rebalancing for streaming graphs (DESIGN.md §12): the
 * policy keeps a snapshot of the per-row work it last acted on; each
 * observation it diffs the live row-work vector against that snapshot
 * and only the *changed* rows (the churn delta) are candidates for
 * migration — heaviest first, moved off above-mean PEs onto the
 * current coldest PE when that narrows the gap. A static workload
 * diffs to an empty delta, so inside a fixed-operand execution the
 * policy is a no-op after its first (snapshot-only) observation.
 *
 * `threshold` gates action on global imbalance: the delta is only
 * acted on while max PE load exceeds threshold × mean. While the gate
 * holds the snapshot is *not* advanced, so tolerated drift accumulates
 * and the eventual correction sees every row changed since the last
 * action. threshold == 1.0 reacts to every delta (delta-greedy);
 * 1.15 tolerates ±15% skew first (delta-threshold).
 *
 * Never latches converged(): a streaming workload may change again at
 * any epoch, so the policy stays live for the whole run.
 */
class DeltaRebalance : public RebalancePolicy
{
  public:
    explicit DeltaRebalance(double threshold) : threshold_(threshold) {}

    int observeAndAdjust(const RoundObservation &,
                         const std::vector<Count> &row_work,
                         RowPartition &partition) override
    {
        if (!seeded_) {
            prevWork_ = row_work;
            seeded_ = true;
            return 0;
        }
        const Index n = static_cast<Index>(row_work.size());
        std::vector<Index> changed;
        for (Index r = 0; r < n; ++r) {
            if (row_work[static_cast<std::size_t>(r)] !=
                prevWork_[static_cast<std::size_t>(r)])
                changed.push_back(r);
        }
        if (changed.empty()) return 0;

        const int P = partition.numPes();
        std::vector<Count> load = partition.workload(row_work);
        const Count total =
            std::accumulate(load.begin(), load.end(), Count(0));
        const double mean =
            static_cast<double>(total) / std::max(P, 1);
        const Count max_load =
            *std::max_element(load.begin(), load.end());
        if (static_cast<double>(max_load) <= threshold_ * mean)
            return 0;  // tolerated skew; keep accumulating the delta
        prevWork_ = row_work;

        std::sort(changed.begin(), changed.end(),
                  [&](Index a, Index b) {
                      Count wa = row_work[static_cast<std::size_t>(a)];
                      Count wb = row_work[static_cast<std::size_t>(b)];
                      if (wa != wb) return wa > wb;
                      return a < b;
                  });
        int moved = 0;
        for (Index r : changed) {
            const Count w = row_work[static_cast<std::size_t>(r)];
            if (w <= 0) break;  // only vanished rows remain
            const int from = partition.owner(r);
            const Count mean_floor = static_cast<Count>(mean);
            if (load[static_cast<std::size_t>(from)] <= mean_floor)
                continue;
            int cold = 0;
            for (int p = 1; p < P; ++p) {
                if (load[static_cast<std::size_t>(p)] <
                    load[static_cast<std::size_t>(cold)])
                    cold = p;
            }
            // Move only when it narrows the donor/receiver gap.
            if (cold == from ||
                load[static_cast<std::size_t>(from)] -
                        load[static_cast<std::size_t>(cold)] <=
                    w)
                continue;
            partition.moveRow(r, cold);
            load[static_cast<std::size_t>(from)] -= w;
            load[static_cast<std::size_t>(cold)] += w;
            ++moved;
        }
        totalMoved_ += moved;
        return moved;
    }

    bool converged() const override { return false; }
    Count convergedRound() const override { return -1; }
    Count totalRowsMoved() const override { return totalMoved_; }

  private:
    double threshold_;
    bool seeded_ = false;
    std::vector<Count> prevWork_;
    Count totalMoved_ = 0;
};

/**
 * From-scratch baseline for the streaming experiments: every
 * observation rebuilds the contiguous equal-work chunking (the
 * PeriodicRechunkRebalance math with period 1 and no convergence
 * latch). Under a static workload the rebuild is a fixed point after
 * its first application; under churn it re-tunes completely each
 * epoch — the "retune from scratch" upper bound the delta policies
 * are measured against.
 */
class RescratchRebalance : public RebalancePolicy
{
  public:
    int observeAndAdjust(const RoundObservation &,
                         const std::vector<Count> &row_work,
                         RowPartition &partition) override
    {
        const int P = partition.numPes();
        const Index n = partition.rows();
        Count total = std::accumulate(row_work.begin(), row_work.end(),
                                      Count(0));
        if (total <= 0) return 0;
        std::vector<int> owner(static_cast<std::size_t>(n), 0);
        int moved = 0;
        Count prefix = 0;
        for (Index r = 0; r < n; ++r) {
            Count w = row_work[static_cast<std::size_t>(r)];
            Count mid = prefix + w / 2;
            int pe = static_cast<int>(
                std::min<Count>(P - 1, (mid * P) / total));
            owner[static_cast<std::size_t>(r)] = pe;
            if (partition.owner(r) != pe) ++moved;
            prefix += w;
        }
        if (moved == 0) return 0;
        partition = RowPartition(std::move(owner), P);
        totalMoved_ += moved;
        return moved;
    }

    bool converged() const override { return false; }
    Count convergedRound() const override { return -1; }
    Count totalRowsMoved() const override { return totalMoved_; }

  private:
    Count totalMoved_ = 0;
};

// ------------------------------------------------------------ helpers

/** The enum-era derivation of the paper designs: partition from
 *  cfg.mapPolicy, rebalancing from cfg.remoteSwitching. */
std::unique_ptr<PartitionPolicy>
legacyPartition(const AccelConfig &cfg)
{
    return std::make_unique<StaticMapPartition>(cfg.mapPolicy);
}

std::unique_ptr<RebalancePolicy>
legacyRebalance(const AccelConfig &cfg, Index rows)
{
    if (cfg.remoteSwitching)
        return std::make_unique<RemoteSwitchRebalance>(cfg, rows);
    return std::make_unique<NullRebalance>();
}

} // namespace

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry registry;
    return registry;
}

PolicyRegistry::PolicyRegistry()
{
    // The six paper design points (§5.2 / Table 3). Their partition and
    // rebalance factories are left empty on purpose: they inherit the
    // legacy config-field derivation, so code that mutates mapPolicy /
    // remoteSwitching after makeConfig keeps its enum-era meaning.
    auto paper = [this](std::string name, std::string label,
                        std::string desc, std::vector<std::string> aliases,
                        std::function<void(AccelConfig &, int)> conf,
                        double mhz = kFpgaMhz) {
        BalancePolicy p;
        p.name = std::move(name);
        p.label = std::move(label);
        p.description = std::move(desc);
        p.aliases = std::move(aliases);
        p.clockMhz = mhz;
        p.configure = std::move(conf);
        add(std::move(p));
    };
    paper("baseline", "Baseline",
          "static equal partition, no rebalancing (paper Fig. 6)",
          {"base"}, [](AccelConfig &, int) {});
    paper("local-a", "Design(A)",
          "dynamic local sharing, base hops (paper §4.1)", {"a"},
          [](AccelConfig &cfg, int hop_base) {
              cfg.sharingHops = hop_base;
          });
    paper("local-b", "Design(B)",
          "dynamic local sharing, base+1 hops (paper §4.1)", {"b"},
          [](AccelConfig &cfg, int hop_base) {
              cfg.sharingHops = hop_base + 1;
          });
    paper("remote-c", "Design(C)",
          "local sharing + dynamic remote switching (paper §4.2)", {"c"},
          [](AccelConfig &cfg, int hop_base) {
              cfg.sharingHops = hop_base;
              cfg.remoteSwitching = true;
          });
    paper("remote-d", "Design(D)",
          "2-hop local sharing + dynamic remote switching (paper §4.2)",
          {"d"},
          [](AccelConfig &cfg, int hop_base) {
              cfg.sharingHops = hop_base + 1;
              cfg.remoteSwitching = true;
          });
    paper("eie-like", "EIE-like",
          "EIE-style column-major forwarding, single TQ per PE (Table 3)",
          {"eie"},
          [](AccelConfig &cfg, int) { cfg.numQueuesPerPe = 1; }, kEieMhz);

    // Non-paper extensions: one registration each, runnable through both
    // fidelities and every sweep mode.
    {
        BalancePolicy p;
        p.name = "degree-sorted";
        p.label = "DegSorted";
        p.description = "static degree-sorted LPT partition: heaviest "
                        "rows spread greedily, no runtime rebalancing";
        p.aliases = {"degsort"};
        p.configure = [](AccelConfig &, int) {};
        p.partition = [](const AccelConfig &) {
            return std::make_unique<DegreeSortedPartition>();
        };
        add(std::move(p));
    }
    {
        BalancePolicy p;
        p.name = "work-steal";
        p.label = "WorkSteal";
        p.description = "greedy round-level work stealing: the hottest PE "
                        "hands heaviest rows to the coldest each round";
        p.aliases = {"steal"};
        p.configure = [](AccelConfig &, int) {};
        p.rebalance = [](const AccelConfig &, Index) {
            return std::make_unique<GreedyStealRebalance>();
        };
        add(std::move(p));
    }
    {
        BalancePolicy p;
        p.name = "rechunk";
        p.label = "Rechunk";
        p.description = "periodic contiguous re-chunking: rebuild "
                        "equal-work row chunks every 4 rounds";
        p.configure = [](AccelConfig &, int) {};
        p.rebalance = [](const AccelConfig &, Index) {
            return std::make_unique<PeriodicRechunkRebalance>(4);
        };
        add(std::move(p));
    }

    // Streaming-graph policies (DESIGN.md §12): consumed by the dynamic
    // runner at churn-epoch boundaries, but registered like any other
    // policy so they also run through both fidelities and every sweep
    // mode (where a static workload makes them cheap no-ops).
    {
        BalancePolicy p;
        p.name = "delta-greedy";
        p.label = "DeltaGreedy";
        p.description = "delta-reacting rebalance: only rows whose work "
                        "changed migrate, heaviest-first to the coldest PE";
        p.aliases = {"dgreedy"};
        p.configure = [](AccelConfig &, int) {};
        p.rebalance = [](const AccelConfig &, Index) {
            return std::make_unique<DeltaRebalance>(1.0);
        };
        add(std::move(p));
    }
    {
        BalancePolicy p;
        p.name = "delta-threshold";
        p.label = "DeltaThresh";
        p.description = "delta-reacting rebalance gated on imbalance: "
                        "acts once max PE load exceeds 1.15x the mean";
        p.aliases = {"dthresh"};
        p.configure = [](AccelConfig &, int) {};
        p.rebalance = [](const AccelConfig &, Index) {
            return std::make_unique<DeltaRebalance>(1.15);
        };
        add(std::move(p));
    }
    {
        BalancePolicy p;
        p.name = "rescratch";
        p.label = "Rescratch";
        p.description = "from-scratch streaming baseline: rebuild the "
                        "equal-work chunking at every observation";
        p.aliases = {"scratch"};
        p.configure = [](AccelConfig &, int) {};
        p.rebalance = [](const AccelConfig &, Index) {
            return std::make_unique<RescratchRebalance>();
        };
        add(std::move(p));
    }
}

void
PolicyRegistry::add(BalancePolicy policy)
{
    if (policy.name.empty()) fatal("PolicyRegistry: policy needs a name");
    auto taken = [&](const std::string &key) {
        for (const auto &p : policies_) {
            if (p->name == key) return true;
            for (const auto &a : p->aliases)
                if (a == key) return true;
        }
        return false;
    };
    if (taken(policy.name))
        fatal("PolicyRegistry: duplicate policy name '" + policy.name +
              "'");
    for (std::size_t i = 0; i < policy.aliases.size(); ++i) {
        const std::string &a = policy.aliases[i];
        // Check against earlier registrations AND the policy's own keys
        // (a self-shadowed alias would be dead weight).
        bool self_dup = a == policy.name;
        for (std::size_t j = 0; !self_dup && j < i; ++j)
            self_dup = a == policy.aliases[j];
        if (self_dup || taken(a))
            fatal("PolicyRegistry: alias '" + a + "' of policy '" +
                  policy.name + "' is already registered");
    }
    policies_.push_back(
        std::make_unique<BalancePolicy>(std::move(policy)));
}

const BalancePolicy *
PolicyRegistry::find(const std::string &name_or_alias) const
{
    for (const auto &p : policies_) {
        if (p->name == name_or_alias) return p.get();
        for (const auto &a : p->aliases)
            if (a == name_or_alias) return p.get();
    }
    return nullptr;
}

const BalancePolicy &
PolicyRegistry::get(const std::string &name_or_alias) const
{
    const BalancePolicy *p = find(name_or_alias);
    if (p == nullptr)
        fatal("unknown balance policy '" + name_or_alias +
              "' — did you mean '" + nearest(name_or_alias) +
              "'? (awbsim --list-designs shows all registered policies)");
    return *p;
}

std::vector<const BalancePolicy *>
PolicyRegistry::all() const
{
    std::vector<const BalancePolicy *> out;
    out.reserve(policies_.size());
    for (const auto &p : policies_) out.push_back(p.get());
    return out;
}

std::string
PolicyRegistry::nearest(const std::string &s) const
{
    std::vector<std::string> candidates;
    for (const auto &p : policies_) {
        candidates.push_back(p->name);
        for (const auto &a : p->aliases) candidates.push_back(a);
    }
    return nearestOf(s, candidates);
}

std::string
designPolicyName(Design d)
{
    switch (d) {
      case Design::Baseline: return "baseline";
      case Design::LocalA:   return "local-a";
      case Design::LocalB:   return "local-b";
      case Design::RemoteC:  return "remote-c";
      case Design::RemoteD:  return "remote-d";
      case Design::EieLike:  return "eie-like";
    }
    return "?";
}

AccelConfig
configureForPolicy(const BalancePolicy &spec, int num_pes, int hop_base)
{
    if (hop_base < 1) hop_base = 1;
    AccelConfig cfg;
    cfg.numPes = num_pes;
    cfg.balancePolicy = spec.name;
    if (spec.configure) spec.configure(cfg, hop_base);
    return cfg;
}

AccelConfig
makePolicyConfig(const std::string &policy, int num_pes, int hop_base)
{
    const BalancePolicy &spec = PolicyRegistry::instance().get(policy);
    AccelConfig cfg = configureForPolicy(spec, num_pes, hop_base);
    std::string err = cfg.validate();
    if (!err.empty()) fatal("makePolicyConfig(" + spec.name + "): " + err);
    return cfg;
}

std::unique_ptr<PartitionPolicy>
makePartitionPolicy(const AccelConfig &cfg)
{
    if (!cfg.balancePolicy.empty()) {
        const BalancePolicy &spec =
            PolicyRegistry::instance().get(cfg.balancePolicy);
        if (spec.partition) return spec.partition(cfg);
    }
    return legacyPartition(cfg);
}

std::unique_ptr<RebalancePolicy>
makeRebalancePolicy(const AccelConfig &cfg, Index rows)
{
    if (!cfg.balancePolicy.empty()) {
        const BalancePolicy &spec =
            PolicyRegistry::instance().get(cfg.balancePolicy);
        if (spec.rebalance) return spec.rebalance(cfg, rows);
    }
    return legacyRebalance(cfg, rows);
}

void
tuneWithPolicy(RebalancePolicy &policy,
               const std::vector<Count> &row_work,
               RowPartition &partition, int max_rounds)
{
    int idle = 0;
    for (int round = 0;
         round < max_rounds && !policy.converged() && idle < 4;
         ++round) {
        RoundObservation obs;
        obs.peWork = partition.workload(row_work);
        obs.drainCycle.assign(obs.peWork.begin(), obs.peWork.end());
        const int moved =
            policy.observeAndAdjust(obs, row_work, partition);
        // Four idle rounds, not one: the remote switcher's Eq. 5 sets
        // N_1 = 0 so its first round legitimately moves nothing, and
        // the periodic rechunker only acts on every 4th observation.
        idle = moved == 0 ? idle + 1 : 0;
    }
}

RowPartition
tuneToConvergence(const AccelConfig &cfg,
                  const std::vector<Count> &row_work, int max_rounds)
{
    const Index rows = static_cast<Index>(row_work.size());
    RowPartition partition =
        makePartitionPolicy(cfg)->build(rows, row_work, cfg);
    auto policy = makeRebalancePolicy(cfg, rows);
    tuneWithPolicy(*policy, row_work, partition, max_rounds);
    return partition;
}

double
policyClockMhz(const AccelConfig &cfg)
{
    if (!cfg.balancePolicy.empty()) {
        const BalancePolicy *spec =
            PolicyRegistry::instance().find(cfg.balancePolicy);
        if (spec != nullptr) return spec->clockMhz;
    }
    // Legacy configs without a named policy: the single-queue EIE shape
    // is the only one clocked differently.
    return cfg.numQueuesPerPe == 1 ? kEieMhz : kFpgaMhz;
}

} // namespace awb
