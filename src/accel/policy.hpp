/**
 * @file
 * Pluggable balance-policy API. The paper's workload-rebalancing machinery
 * (static row mapping, local sharing hops, the PESM/UGT/SLT remote
 * switcher) used to be a closed surface: six hard-coded `Design` enum
 * values whose behaviour was scattered across `AccelConfig` field checks
 * in both simulators. This header splits that machinery into two small
 * interfaces plus a string-keyed registry, so a new balancing idea is one
 * registration instead of a cross-cutting patch:
 *
 *  - `PartitionPolicy`: builds the initial row→PE map (subsumes the old
 *    `RowMapPolicy` blocked/cyclic switch);
 *  - `RebalancePolicy`: the per-round observe/adjust/converged protocol
 *    both simulators drive between rounds (subsumes the hard-wired
 *    `RemoteSwitcher`);
 *  - `BalancePolicy`: a named composition of the two plus a config hook,
 *    registered in the process-wide `PolicyRegistry`.
 *
 * The six paper design points are themselves registered policies (the
 * `Design` enum and `makeConfig` are thin lookups over this registry),
 * locked bit-identical to the enum era by tests/test_policy.cpp. Three
 * non-paper policies ship as examples: `degree-sorted` (static LPT
 * partition), `work-steal` (greedy round-level stealing) and `rechunk`
 * (periodic contiguous re-chunking).
 *
 * Both fidelities — the cycle-accurate SpmmEngine and the round-level
 * PerfModel — resolve their policy objects through `makePartitionPolicy`
 * / `makeRebalancePolicy`, so a registered policy automatically runs in
 * Model and Cycle sweeps alike.
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "accel/rebalance.hpp"
#include "accel/row_map.hpp"
#include "common/types.hpp"

namespace awb {

/** Builds the initial row→PE assignment for one sparse operand. */
class PartitionPolicy
{
  public:
    virtual ~PartitionPolicy() = default;

    /**
     * @param rows      rows of the sparse operand (== result rows)
     * @param row_work  per-row task count (its row-nnz); static policies
     *                  that ignore load may disregard it
     * @param cfg       full accelerator configuration
     */
    virtual RowPartition build(Index rows,
                               const std::vector<Count> &row_work,
                               const AccelConfig &cfg) const = 0;
};

/**
 * Per-round rebalancing protocol. One instance lives for one SPMM
 * execution; after every round except the last, the simulator calls
 * observeAndAdjust with what the PESM saw, and the policy may rewrite the
 * row map for the next round. Stats surface through totalRowsMoved /
 * convergedRound exactly as the RemoteSwitcher's did.
 */
class RebalancePolicy
{
  public:
    virtual ~RebalancePolicy() = default;

    /** Digest one round; returns rows moved (0 for static policies). */
    virtual int observeAndAdjust(const RoundObservation &obs,
                                 const std::vector<Count> &row_work,
                                 RowPartition &partition) = 0;

    /** False for policies that never adjust anything; lets simulators
     *  skip assembling per-round observations on static designs. */
    virtual bool wantsObservations() const { return true; }

    /** True once the policy stopped adjusting for good. */
    virtual bool converged() const = 0;

    /** Round at which convergence was declared (-1 if never). */
    virtual Count convergedRound() const = 0;

    virtual Count totalRowsMoved() const = 0;
};

/** RebalancePolicy that never moves anything (static designs). */
class NullRebalance : public RebalancePolicy
{
  public:
    int observeAndAdjust(const RoundObservation &,
                         const std::vector<Count> &,
                         RowPartition &) override
    {
        return 0;
    }
    bool wantsObservations() const override { return false; }
    bool converged() const override { return false; }
    Count convergedRound() const override { return -1; }
    Count totalRowsMoved() const override { return 0; }
};

/** RebalancePolicy adapter over the paper's PESM/UGT/SLT controller. */
class RemoteSwitchRebalance : public RebalancePolicy
{
  public:
    RemoteSwitchRebalance(const AccelConfig &cfg, Index num_rows)
        : switcher_(cfg, num_rows)
    {
    }

    int observeAndAdjust(const RoundObservation &obs,
                         const std::vector<Count> &row_work,
                         RowPartition &partition) override
    {
        return switcher_.observeAndAdjust(obs, row_work, partition);
    }
    bool converged() const override { return switcher_.converged(); }
    Count convergedRound() const override
    {
        return switcher_.convergedRound();
    }
    Count totalRowsMoved() const override
    {
        return switcher_.totalRowsMoved();
    }

  private:
    RemoteSwitcher switcher_;
};

/**
 * A named, registered balancing strategy: how the config is derived for a
 * design point, how rows are initially partitioned, and how (if at all)
 * the map is rewritten between rounds.
 *
 * `configure` runs inside makePolicyConfig and sets the config fields the
 * policy needs (sharing hops, remote-switching flag, queue shape, ...).
 * `partition` / `rebalance` may be left empty to inherit the legacy
 * derivation from config fields (`mapPolicy`, `remoteSwitching`) — the
 * paper designs do exactly that, which keeps hand-mutated configs (e.g.
 * ablations flipping `mapPolicy` after makeConfig) behaving as they
 * always have.
 */
struct BalancePolicy
{
    std::string name;         ///< registry key (kebab-case)
    std::string label;        ///< display name (paper legend for Designs)
    std::string description;  ///< one-liner for `awbsim --list-designs`
    std::vector<std::string> aliases;  ///< CLI shorthands (a, b, eie, ...)
    double clockMhz = 275.0;  ///< modelled operating frequency

    std::function<void(AccelConfig &, int hop_base)> configure;
    std::function<std::unique_ptr<PartitionPolicy>(const AccelConfig &)>
        partition;
    std::function<std::unique_ptr<RebalancePolicy>(const AccelConfig &,
                                                   Index rows)>
        rebalance;
};

/**
 * Process-wide policy registry. Built-in policies (the six paper designs
 * plus the non-paper extensions) register on first access; user code may
 * add() more at any time before the first sweep. Lookup is by canonical
 * name or alias. Thread-safe for concurrent lookups (sweep workers);
 * add() must not race with lookups.
 */
class PolicyRegistry
{
  public:
    static PolicyRegistry &instance();

    /** Register a policy; fatal() on a duplicate name or alias. */
    void add(BalancePolicy policy);

    /** nullptr when neither name nor alias matches. */
    const BalancePolicy *find(const std::string &name_or_alias) const;

    /** fatal() with a near-miss suggestion when unknown. */
    const BalancePolicy &get(const std::string &name_or_alias) const;

    /** All policies in registration order (paper designs first). */
    std::vector<const BalancePolicy *> all() const;

    /** Closest registered name to `s` (for error messages). */
    std::string nearest(const std::string &s) const;

  private:
    PolicyRegistry();
    std::vector<std::unique_ptr<BalancePolicy>> policies_;
};

/** Registry name of a paper design point ("baseline", "remote-c", ...). */
std::string designPolicyName(Design d);

/**
 * Build the configuration for a registered policy: baseline AccelConfig
 * with `numPes`, `balancePolicy` set to the canonical policy name and the
 * policy's `configure` hook applied. fatal() on an unknown policy (with a
 * near-miss suggestion) or an invalid resulting config. The generalized
 * `makeConfig`.
 */
AccelConfig makePolicyConfig(const std::string &policy, int num_pes,
                             int hop_base = 1);

/**
 * The non-validating core of makePolicyConfig: apply `spec.configure` to
 * a fresh config without checking the result. For callers that surface
 * `validate()` errors themselves instead of aborting (the sweep engine
 * turns them into per-point error rows).
 */
AccelConfig configureForPolicy(const BalancePolicy &spec, int num_pes,
                               int hop_base = 1);

/**
 * Resolve the partition policy of a configuration: the registered
 * policy's factory when `cfg.balancePolicy` names one (and it provides
 * one), else the legacy blocked/cyclic derivation from `cfg.mapPolicy`.
 */
std::unique_ptr<PartitionPolicy> makePartitionPolicy(const AccelConfig &cfg);

/**
 * Resolve the rebalance policy of a configuration for one SPMM over
 * `rows` rows: the registered policy's factory when `cfg.balancePolicy`
 * names one (and it provides one), else the legacy derivation — the
 * RemoteSwitcher when `cfg.remoteSwitching`, a NullRebalance otherwise.
 */
std::unique_ptr<RebalancePolicy> makeRebalancePolicy(const AccelConfig &cfg,
                                                     Index rows);

/**
 * Build a partition for `row_work` under `cfg` and drive a *fresh*
 * rebalance-policy instance to convergence against that fixed workload
 * (synthetic observations: per-PE home-attributed work, drain == work).
 * Stops at converged(), after three consecutive zero-move rounds (the
 * remote switcher's first round legitimately moves nothing), or after
 * `max_rounds`. This is the "freshly tuned" reference the dynamic
 * runner compares a carried partition against when computing the
 * convergence half-life (DESIGN.md §12).
 */
RowPartition tuneToConvergence(const AccelConfig &cfg,
                               const std::vector<Count> &row_work,
                               int max_rounds = 64);

/**
 * Drive an *existing* rebalance-policy instance over `partition` with
 * the same synthetic-observation loop as tuneToConvergence(). The
 * dynamic runner uses this to warm up its persistent policy on the
 * initial graph, so that epoch-level drift measures churn-induced
 * staleness rather than the policy's own warm-up transient.
 */
void tuneWithPolicy(RebalancePolicy &policy,
                    const std::vector<Count> &row_work,
                    RowPartition &partition, int max_rounds = 64);

/** Modelled clock of a configuration's policy (kFpgaMhz-style constant
 *  lives with the policy: the EIE-like reference runs at 285 MHz). */
double policyClockMhz(const AccelConfig &cfg);

} // namespace awb
