#include "accel/rebalance.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "common/log.hpp"

namespace awb {

RemoteSwitcher::RemoteSwitcher(const AccelConfig &cfg, Index num_rows)
    : cfg_(cfg)
{
    // R in Eq. 5: the per-PE workload under equal partition, measured in
    // rows (N counts rows of A).
    initialWorkR_ = std::max<Count>(1, num_rows / cfg.numPes);
}

Count
RemoteSwitcher::eq5Increment(Count gap, Count first_gap) const
{
    if (first_gap <= 0) return 0;
    if (!cfg_.approximateEq5) {
        double frac = static_cast<double>(gap) /
                      static_cast<double>(first_gap);
        return static_cast<Count>(frac *
                                  static_cast<double>(initialWorkR_) / 2.0);
    }
    // Hardware-efficient approximation (§4.2 mentions one without
    // detailing it): quantize G_1 up to the next power of two so the
    // division becomes a shift; the multiply by R/2 stays an integer
    // multiply. Underestimates by at most 2x, which only slows
    // convergence by about one round.
    int shift = 0;
    while ((Count(1) << shift) < first_gap) ++shift;
    return (gap * (initialWorkR_ / 2)) >> shift;
}

int
RemoteSwitcher::observeAndAdjust(const RoundObservation &obs,
                                 const std::vector<Count> &row_work,
                                 RowPartition &partition)
{
    ++round_;
    if (converged_) return 0;
    const int P = cfg_.numPes;
    if (static_cast<int>(obs.peWork.size()) != P)
        panic("RemoteSwitcher: observation size mismatch");

    // Thaw expired freeze entries (hotspots whose rows proved unswitchable
    // — e.g. a PE left with one giant row; re-examined after a few rounds).
    for (auto it = frozen_.begin(); it != frozen_.end();) {
        if (it->second + 3 <= round_) {
            it = frozen_.erase(it);
        } else {
            ++it;
        }
    }

    // --- PESM: hotspot = last PE to drain (the recorded Psi when every
    // empty signal has fired), coldspot = first to go idle. Local sharing
    // smears execution across neighbours, so the drain signal naturally
    // walks over every PE of a congested region as rounds proceed.
    auto later = [&](int a, int b) {
        if (obs.drainCycle[static_cast<std::size_t>(a)] !=
            obs.drainCycle[static_cast<std::size_t>(b)])
            return obs.drainCycle[static_cast<std::size_t>(a)] >
                   obs.drainCycle[static_cast<std::size_t>(b)];
        return obs.peWork[static_cast<std::size_t>(a)] >
               obs.peWork[static_cast<std::size_t>(b)];
    };
    int hot = -1, cold = -1;
    for (int p = 0; p < P; ++p) {
        if (!frozen_.count(p) && (hot == -1 || later(p, hot))) hot = p;
        if (cold == -1 || later(cold, p)) cold = p;
    }
    if (hot == -1) return 0;
    Count gap = (hot == cold)
        ? 0
        : obs.drainCycle[static_cast<std::size_t>(hot)] -
          obs.drainCycle[static_cast<std::size_t>(cold)];

    // --- Convergence check: the drain gap fell below 10% of the mean
    // (further switching cannot buy meaningful cycles), or it stopped
    // improving for several rounds (granularity floor — e.g. a single
    // row heavier than the mean PE load cannot be split).
    Count total = std::accumulate(obs.drainCycle.begin(),
                                  obs.drainCycle.end(), Count(0));
    Count mean = total / P;
    if (gap < bestGap_) {
        bestGap_ = gap;
        stallRounds_ = 0;
    } else {
        ++stallRounds_;
    }
    if (gap <= std::max<Count>(1, mean / 10) || stallRounds_ >= 6) {
        converged_ = true;
        convergedRound_ = round_;
        return 0;
    }

    // --- UGT: find the tracking slot for this tuple, or open one.
    bool created = false;
    Tuple *current = nullptr;
    for (auto &t : window_) {
        if (t.hot == hot && t.cold == cold) {
            current = &t;
            break;
        }
    }
    if (current == nullptr) {
        // First sighting: Eq. 5 gives N_1 = 0 for this tuple — measure
        // only (avoids thrashing on a gap local sharing may yet absorb).
        window_.push_back({hot, cold, gap, 0, round_});
        while (static_cast<int>(window_.size()) > cfg_.trackingWindow)
            window_.pop_front();
        created = true;
    }

    // --- Every tracked tuple is updated per round according to Eq. 5
    // (the paper keeps slots for the tuples of the current and previous
    // rounds and adjusts each of them every round).
    int moved = 0;
    for (auto &t : window_) {
        if (t.createdRound == round_ && created) continue;  // N_1 = 0
        Count t_gap = obs.drainCycle[static_cast<std::size_t>(t.hot)] -
                      obs.drainCycle[static_cast<std::size_t>(t.cold)];
        if (t_gap <= std::max<Count>(1, mean / 10)) continue;

        Count increment = eq5Increment(t_gap, t.firstGap);
        if (increment <= 0) increment = 1;
        t.switched += increment;
        int m = shuffleRows(t.hot, t.cold, t_gap, increment, row_work,
                            partition);
        if (m == 0) frozen_[t.hot] = round_;
        moved += m;
    }
    totalMoved_ += moved;
    return moved;
}

int
RemoteSwitcher::shuffleRows(int hot, int cold, Count gap, Count budget_rows,
                            const std::vector<Count> &row_work,
                            RowPartition &partition)
{
    // --- SLT: swap (heaviest-of-hot, lightest-of-cold) row pairs. The
    // Eq. 5 row budget caps how many entries the shuffling switches
    // rewrite per tuple per round; the workload actually transferred must
    // not overshoot half the observed drain gap, or the coldspot would
    // simply become the next hotspot and the tuning would thrash.
    auto sorted_rows = [&](int pe, bool heaviest) {
        std::vector<Index> rows = partition.rowsOf(pe);
        std::sort(rows.begin(), rows.end(), [&](Index a, Index b) {
            Count wa = row_work[static_cast<std::size_t>(a)];
            Count wb = row_work[static_cast<std::size_t>(b)];
            if (wa != wb) return heaviest ? wa > wb : wa < wb;
            return a < b;
        });
        return rows;
    };
    auto hot_sorted = sorted_rows(hot, /*heaviest=*/true);
    auto cold_sorted = sorted_rows(cold, /*heaviest=*/false);
    Count budget = std::min<Count>(
        budget_rows, std::min(static_cast<Count>(hot_sorted.size()),
                              static_cast<Count>(cold_sorted.size())));

    std::vector<Index> hot_rows, cold_rows;
    Count transferred = 0;
    // Equalize without overshoot. With local sharing active, hot and cold
    // are representatives of their sharing windows: moving work between
    // them shifts each window's level by transferred/(2h+1), so the
    // equalizing transfer is (gap/2) x window size.
    const Count window = 2 * static_cast<Count>(cfg_.sharingHops) + 1;
    const Count target = (gap / 2) * window;
    std::size_t cold_i = 0;
    for (std::size_t hot_i = 0;
         hot_i < hot_sorted.size() && cold_i < cold_sorted.size() &&
         static_cast<Count>(hot_rows.size()) < budget;
         ++hot_i) {
        Count hw = row_work[static_cast<std::size_t>(hot_sorted[hot_i])];
        Count cw = row_work[static_cast<std::size_t>(cold_sorted[cold_i])];
        Count delta = hw - cw;
        if (delta <= 0) break;
        // A row too heavy for the remaining budget is skipped — smaller
        // rows further down may still fit (heavy indivisible rows are
        // local sharing's job, not remote switching's).
        if (transferred + delta > target + target / 8) continue;
        transferred += delta;
        hot_rows.push_back(hot_sorted[hot_i]);
        cold_rows.push_back(cold_sorted[cold_i]);
        ++cold_i;
    }
    if (hot_rows.empty()) return 0;
    partition.swapRows(hot_rows, cold_rows, hot, cold);
    return static_cast<int>(hot_rows.size() + cold_rows.size());
}

} // namespace awb
