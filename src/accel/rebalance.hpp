/**
 * @file
 * Dynamic remote switching (paper §4.2): the PE Status Monitor (PESM)
 * identifies the hotspot (last PE to drain) and coldspot (first PE to
 * drain) each round; the Utilization Gap Tracker computes how many rows to
 * interchange via Eq. 5,
 *
 *     N_i = 0                          if i == 1
 *     N_i = N_{i-1} + G_i/G_1 · (R/2)  otherwise
 *
 * (G_i: hot-cold workload gap in round i, R: initial per-PE workload under
 * equal partition); the Shuffling Lookup Table picks which rows move, and
 * the row map (Shuffling Switches) is rewritten for the next round.
 *
 * This controller is deliberately independent of the simulation fidelity:
 * both the cycle-accurate engine and the round-level performance model
 * drive it with per-round observations, so the two simulators auto-tune
 * identically (DESIGN.md §4).
 */

#pragma once

#include <deque>
#include <limits>
#include <map>
#include <vector>

#include "accel/config.hpp"
#include "accel/row_map.hpp"
#include "common/types.hpp"

namespace awb {

/** What the PESM observed in one round. */
struct RoundObservation
{
    /** Tasks executed per PE this round (the workload the mux-tree's
     *  empty-signal timing exposes). */
    std::vector<Count> peWork;
    /** Cycle (relative to round start) each PE went idle; used to break
     *  ties the same way the hardware does (last to abort = hotspot). */
    std::vector<Cycle> drainCycle;
};

/** Remote-switching controller: PESM + UGT + SLT. */
class RemoteSwitcher
{
  public:
    /**
     * @param cfg       accelerator configuration (trackingWindow,
     *                  approximateEq5, numPes)
     * @param num_rows  rows of the sparse operand
     */
    RemoteSwitcher(const AccelConfig &cfg, Index num_rows);

    /**
     * Digest one round and rewrite `partition` for the next one.
     *
     * @param obs        per-PE observations of the finished round
     * @param row_work   per-row task count (constant across rounds: the
     *                   sparse operand is reused for every column)
     * @param partition  row map to adjust in place
     * @return rows moved (hot->cold plus cold->hot)
     */
    int observeAndAdjust(const RoundObservation &obs,
                         const std::vector<Count> &row_work,
                         RowPartition &partition);

    /** True once the hot/cold gap fell below the convergence threshold;
     *  the tuned map is then reused for all remaining rounds (§4). */
    bool converged() const { return converged_; }

    /** Round at which convergence was declared (-1 if never). */
    Count convergedRound() const { return convergedRound_; }

    Count totalRowsMoved() const { return totalMoved_; }

  private:
    /** One tracked hotspot/coldspot PE-tuple (a PESM tracking slot). */
    struct Tuple
    {
        int hot;
        int cold;
        Count firstGap;      ///< G_1 for this tuple
        Count switched;      ///< N_{i-1}, cumulative rows switched
        Count createdRound;  ///< round the slot was opened (N_1 = 0)
    };

    /** Eq. 5 increment, exact or with the hardware shift approximation. */
    Count eq5Increment(Count gap, Count first_gap) const;

    /** SLT row selection + shuffling-switch rewrite for one tuple.
     *  Returns rows moved. */
    int shuffleRows(int hot, int cold, Count gap, Count budget_rows,
                    const std::vector<Count> &row_work,
                    RowPartition &partition);

    AccelConfig cfg_;
    Count initialWorkR_;  ///< R: rows per PE under the equal partition
    std::deque<Tuple> window_;
    /** Hotspots whose rows proved unswitchable (e.g. one giant row),
     *  mapped to the round they were frozen; skipped for a few rounds so
     *  the PESM surfaces the next-latest drainer. */
    std::map<int, Count> frozen_;
    Count bestGap_ = std::numeric_limits<Count>::max();
    int stallRounds_ = 0;  ///< rounds since the gap last improved
    bool converged_ = false;
    Count convergedRound_ = -1;
    Count round_ = 0;
    Count totalMoved_ = 0;
};

} // namespace awb
