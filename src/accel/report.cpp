#include "accel/report.hpp"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>

#include "common/log.hpp"

namespace awb {

std::string
utilizationHeatmap(const std::vector<Count> &pe_tasks, std::size_t width)
{
    static const char kRamp[] = {' ', '.', ':', '-', '=',
                                 '+', '*', '#', '%', '@'};
    if (pe_tasks.empty()) return "";
    width = std::max<std::size_t>(1, std::min(width, pe_tasks.size()));

    // Bucket PEs down to `width` cells.
    std::vector<double> cell(width, 0.0);
    for (std::size_t p = 0; p < pe_tasks.size(); ++p) {
        std::size_t b = p * width / pe_tasks.size();
        cell[b] += static_cast<double>(pe_tasks[p]);
    }
    for (std::size_t b = 0; b < width; ++b) {
        std::size_t lo = b * pe_tasks.size() / width;
        std::size_t hi = (b + 1) * pe_tasks.size() / width;
        cell[b] /= static_cast<double>(std::max<std::size_t>(1, hi - lo));
    }

    double mean = std::accumulate(cell.begin(), cell.end(), 0.0) /
                  static_cast<double>(width);
    std::string s;
    s.reserve(width + 2);
    s.push_back('[');
    for (double v : cell) {
        // 1.0x mean maps mid-ramp; >= 2x mean saturates (paper Fig. 10's
        // red end).
        double t = mean > 0.0 ? v / (2.0 * mean) : 0.0;
        auto idx = static_cast<std::size_t>(t * 9.0);
        s.push_back(kRamp[std::min<std::size_t>(idx, 9)]);
    }
    s.push_back(']');
    return s;
}

namespace {
constexpr char kMagic[] = "awbgcn-rowmap-v1";
} // namespace

void
savePartition(std::ostream &out, const RowPartition &partition)
{
    out << kMagic << " " << partition.rows() << " " << partition.numPes()
        << "\n";
    for (Index r = 0; r < partition.rows(); ++r) {
        out << partition.owner(r);
        out << ((r + 1) % 32 == 0 ? '\n' : ' ');
    }
    out << "\n";
}

void
savePartitionFile(const std::string &path, const RowPartition &partition)
{
    std::ofstream out(path);
    if (!out) fatal("cannot open for write: " + path);
    savePartition(out, partition);
}

RowPartition
loadPartition(std::istream &in)
{
    std::string magic;
    Index rows = 0;
    int pes = 0;
    in >> magic >> rows >> pes;
    if (magic != kMagic) fatal("not a saved row map (bad header)");
    if (rows <= 0 || pes <= 0) fatal("saved row map has bad dimensions");

    RowPartition part(rows, pes, RowMapPolicy::Blocked);
    for (Index r = 0; r < rows; ++r) {
        int owner = -1;
        in >> owner;
        if (!in || owner < 0 || owner >= pes)
            fatal("saved row map truncated or corrupt");
        part.moveRow(r, owner);
    }
    return part;
}

RowPartition
loadPartitionFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) fatal("cannot open row map: " + path);
    return loadPartition(in);
}

} // namespace awb
