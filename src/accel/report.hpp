/**
 * @file
 * Human-readable reporting of accelerator runs: the per-PE utilization
 * heat map of paper Fig. 10 (blue 0% .. red 200% rendered as an ASCII
 * gradient), and row-map persistence so a converged auto-tuned
 * configuration can be saved and reused across inferences of the same
 * graph (§4: "the ideal configuration is reused for the remaining
 * iterations").
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "accel/row_map.hpp"
#include "common/types.hpp"

namespace awb {

/**
 * Render per-PE load as an ASCII heat strip. Each character encodes one
 * PE's load relative to the mean: ' ' (idle) '.' ':' '-' '=' '+' '*' '#'
 * '%' '@' (≥2x mean), mirroring the paper's blue-to-red heat map. Long
 * arrays are bucketed down to `width` characters (mean within bucket).
 *
 * @param pe_tasks  executed tasks (or any load measure) per PE
 * @param width     maximum strip width in characters
 */
std::string utilizationHeatmap(const std::vector<Count> &pe_tasks,
                               std::size_t width = 64);

/** Write a row->PE map as a compact text format (versioned header). */
void savePartition(std::ostream &out, const RowPartition &partition);

/** Save to a file; fatal() on IO failure. */
void savePartitionFile(const std::string &path,
                       const RowPartition &partition);

/**
 * Restore a previously saved row map. The stored row count and PE count
 * must match a fresh partition's (same graph, same array size);
 * fatal() otherwise.
 */
RowPartition loadPartition(std::istream &in);

/** Load from a file; fatal() on IO failure. */
RowPartition loadPartitionFile(const std::string &path);

} // namespace awb
