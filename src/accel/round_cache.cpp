#include "accel/round_cache.hpp"

#include <atomic>
#include <mutex>
#include <unordered_map>

namespace awb {

std::uint64_t
roundMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30U)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27U)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31U);
}

std::uint64_t
hashRoundKey(const RoundEntryKey &key)
{
    std::uint64_t h = roundMix64(static_cast<std::uint64_t>(key.netParity) + 1);
    for (int o : key.owners)
        h = roundMix64(h ^ static_cast<std::uint64_t>(o));
    for (std::size_t q : key.arbiter)
        h = roundMix64(h ^ static_cast<std::uint64_t>(q));
    return h;
}

std::uint64_t
roundContextDigest(const CscMatrix &a, const AccelConfig &cfg, int tdq_kind)
{
    std::uint64_t h = roundMix64(0xA3B1C5D7E9F00301ULL);
    h = roundMix64(h ^ static_cast<std::uint64_t>(a.rows()));
    h = roundMix64(h ^ static_cast<std::uint64_t>(a.cols()));
    h = roundMix64(h ^ static_cast<std::uint64_t>(a.nnz()));
    // Structure only: row ids and column extents drive every control
    // decision; values flow exclusively into the functional accumulator.
    std::uint64_t s = h;
    for (Count p : a.colPtr()) s = roundMix64(s ^ static_cast<std::uint64_t>(p));
    for (Index r : a.rowId()) s = roundMix64(s ^ static_cast<std::uint64_t>(r));
    h = roundMix64(h ^ s);
    // Timing-relevant configuration. Platform/engine/policy/chips are
    // excluded on purpose (see the file header in round_cache.hpp).
    h = roundMix64(h ^ static_cast<std::uint64_t>(cfg.numPes));
    h = roundMix64(h ^ static_cast<std::uint64_t>(cfg.macLatency));
    h = roundMix64(h ^ static_cast<std::uint64_t>(cfg.numQueuesPerPe));
    h = roundMix64(h ^ static_cast<std::uint64_t>(cfg.receivePorts));
    h = roundMix64(h ^ static_cast<std::uint64_t>(cfg.queueDepth));
    h = roundMix64(h ^ static_cast<std::uint64_t>(cfg.sharingHops));
    h = roundMix64(h ^ static_cast<std::uint64_t>(cfg.omegaBufferDepth));
    h = roundMix64(h ^ static_cast<std::uint64_t>(cfg.networkSpeedup));
    h = roundMix64(h ^ static_cast<std::uint64_t>(cfg.injectWidth));
    h = roundMix64(h ^ static_cast<std::uint64_t>(cfg.streamWidth));
    h = roundMix64(h ^ static_cast<std::uint64_t>(cfg.maxCyclesPerRound));
    h = roundMix64(h ^ static_cast<std::uint64_t>(tdq_kind));
    return h;
}

struct RoundStateCache::Impl
{
    struct Entry
    {
        std::uint64_t context;
        RoundEntryKey key;
        std::shared_ptr<const RoundRecord> record;
    };

    std::atomic<bool> enabled{false};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::vector<Entry>> buckets;
    std::size_t entries = 0;
};

RoundStateCache &
RoundStateCache::instance()
{
    static RoundStateCache cache;
    return cache;
}

RoundStateCache::Impl &
RoundStateCache::impl() const
{
    static Impl impl;
    return impl;
}

std::shared_ptr<const RoundRecord>
RoundStateCache::lookup(std::uint64_t context, const RoundEntryKey &key)
{
    Impl &im = impl();
    const std::uint64_t h = roundMix64(context ^ hashRoundKey(key));
    std::lock_guard<std::mutex> lock(im.mu);
    auto bucket = im.buckets.find(h);
    if (bucket != im.buckets.end()) {
        for (const auto &e : bucket->second) {
            if (e.context == context && e.key == key) {
                im.hits.fetch_add(1, std::memory_order_relaxed);
                return e.record;
            }
        }
    }
    im.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
}

void
RoundStateCache::insert(std::uint64_t context, const RoundEntryKey &key,
                        std::shared_ptr<const RoundRecord> record)
{
    Impl &im = impl();
    const std::uint64_t h = roundMix64(context ^ hashRoundKey(key));
    std::lock_guard<std::mutex> lock(im.mu);
    auto &bucket = im.buckets[h];
    for (const auto &e : bucket)
        if (e.context == context && e.key == key) return;
    bucket.push_back({context, key, std::move(record)});
    ++im.entries;
}

void
RoundStateCache::setEnabled(bool on)
{
    impl().enabled.store(on, std::memory_order_relaxed);
}

bool
RoundStateCache::enabled() const
{
    return impl().enabled.load(std::memory_order_relaxed);
}

std::uint64_t
RoundStateCache::hits() const
{
    return impl().hits.load(std::memory_order_relaxed);
}

std::uint64_t
RoundStateCache::misses() const
{
    return impl().misses.load(std::memory_order_relaxed);
}

std::size_t
RoundStateCache::size() const
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    return im.entries;
}

void
RoundStateCache::clear()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    im.buckets.clear();
    im.entries = 0;
    im.hits.store(0, std::memory_order_relaxed);
    im.misses.store(0, std::memory_order_relaxed);
}

} // namespace awb
