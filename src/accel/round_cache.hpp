/**
 * @file
 * Process-wide cache of simulated round outcomes, shared across
 * `SpmmEngine` runs (DESIGN.md §13).
 *
 * The batched engine already memoizes rounds *within* one run: a round's
 * timing is a pure function of its entry state — the row→PE map, the
 * per-PE arbiter cursors and the Omega input-priority parity — because
 * task values never feed a control decision (DESIGN.md §6). That purity
 * argument is run-independent: two runs over the same sparse structure
 * and the same timing configuration produce bit-identical outcomes for
 * equal entry states, no matter which engine, balance policy, platform
 * or chip count drove them there. This cache lifts the memo out of the
 * engine so a dataset×policy×PEs sweep grid event-steps each distinct
 * (structure, timing-config, entry-state) once, process-wide.
 *
 * The context digest deliberately covers only what round dynamics read:
 * the CSC structure (row ids and column extents — values are excluded,
 * they only flow into the functional accumulator) and the timing fields
 * of `AccelConfig`. Platform is excluded because the roofline floor is
 * composed outside the round loop (§8); engine kind because both
 * engines share one simulateRound; balance policy because its whole
 * effect is the owners vector already inside the entry key.
 *
 * Disabled by default so unit tests and library embedders see the
 * uncached engine; `awbsim` enables it (escape hatch: `--no-cache`).
 * Cached outcomes are bit-identical to freshly simulated ones, so
 * enabling the cache never changes any model output.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/config.hpp"
#include "sparse/csc.hpp"

namespace awb {

/**
 * Everything one round produces that later rounds (or replays of the
 * same round-entry state) need: the duration, the PESM observation, the
 * per-PE execution tallies, the post-round arbiter cursors and the
 * round-local buffer peaks.
 */
struct RoundRecord
{
    Cycle roundCycles = 0;
    std::vector<Count> homeTasks;    ///< obs.peWork (dispatch-attributed)
    std::vector<Cycle> drainCycle;   ///< obs.drainCycle
    std::vector<Count> execTasks;    ///< tasks executed per PE
    Count rawStallDelta = 0;         ///< RaW stall cycles this round
    std::vector<std::size_t> arbiterAfter;  ///< post-round PE cursors
    std::size_t peakQueue = 0;       ///< max PE queue depth this round
    std::size_t peakNet = 0;         ///< max Omega buffer depth this round
};

/** Round-entry state the dynamics depend on (and nothing else). */
struct RoundEntryKey
{
    std::vector<int> owners;           ///< row→PE map
    std::vector<std::size_t> arbiter;  ///< per-PE arbiter cursors
    int netParity = 0;  ///< Omega input-priority toggle (0 when unused)

    bool
    operator==(const RoundEntryKey &o) const
    {
        return netParity == o.netParity && arbiter == o.arbiter &&
               owners == o.owners;
    }
};

/** splitmix64 finalizer — the repo's standard avalanche mix. */
std::uint64_t roundMix64(std::uint64_t x);

/** Hash of the entry key alone (bucket index; exact compare on hit). */
std::uint64_t hashRoundKey(const RoundEntryKey &key);

/**
 * 64-bit digest of everything outside the entry key that round dynamics
 * read: the sparse structure of `a` and the timing-relevant fields of
 * `cfg` plus the TDQ kind.
 */
std::uint64_t roundContextDigest(const CscMatrix &a, const AccelConfig &cfg,
                                 int tdq_kind);

/** Thread-safe process-wide (context, entry-key) → outcome memo. */
class RoundStateCache
{
  public:
    static RoundStateCache &instance();

    /** nullptr on miss. Records are immutable once inserted. */
    std::shared_ptr<const RoundRecord> lookup(std::uint64_t context,
                                              const RoundEntryKey &key);

    /** First insert wins; duplicate inserts of an equal key are no-ops. */
    void insert(std::uint64_t context, const RoundEntryKey &key,
                std::shared_ptr<const RoundRecord> record);

    void setEnabled(bool on);
    bool enabled() const;

    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::size_t size() const;
    void clear();

  private:
    RoundStateCache() = default;
    struct Impl;
    Impl &impl() const;
};

} // namespace awb
