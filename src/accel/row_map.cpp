#include "accel/row_map.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace awb {

RowPartition::RowPartition(Index rows, int num_pes, RowMapPolicy policy)
    : numPes_(num_pes), owner_(static_cast<std::size_t>(rows)),
      rowsOf_(static_cast<std::size_t>(num_pes))
{
    if (rows <= 0 || num_pes <= 0)
        fatal("RowPartition: rows and PEs must be positive");
    // Blocked: contiguous blocks as in paper Fig. 6, with the remainder
    // spread one row each over the first (rows % numPes) PEs so every PE
    // owns either floor or ceil rows (a ceil-sized block for everyone
    // would leave trailing PEs with no rows at all).
    const Index base = rows / num_pes;
    const Index extra = rows % num_pes;
    Index next_row = 0;
    for (int p = 0; p < num_pes; ++p) {
        Index count = (policy == RowMapPolicy::Blocked)
            ? base + (p < extra ? 1 : 0)
            : 0;
        for (Index i = 0; i < count; ++i) {
            owner_[static_cast<std::size_t>(next_row)] = p;
            rowsOf_[static_cast<std::size_t>(p)].push_back(next_row);
            ++next_row;
        }
    }
    if (policy == RowMapPolicy::Cyclic) {
        for (Index r = 0; r < rows; ++r) {
            int pe = static_cast<int>(r % num_pes);
            owner_[static_cast<std::size_t>(r)] = pe;
            rowsOf_[static_cast<std::size_t>(pe)].push_back(r);
        }
    }
}

RowPartition::RowPartition(std::vector<int> owner, int num_pes)
    : numPes_(num_pes), owner_(std::move(owner))
{
    if (owner_.empty() || num_pes <= 0)
        fatal("RowPartition: rows and PEs must be positive");
    rowsOf_.resize(static_cast<std::size_t>(num_pes));
    for (std::size_t r = 0; r < owner_.size(); ++r) {
        int pe = owner_[r];
        if (pe < 0 || pe >= num_pes)
            fatal("RowPartition: owner entry out of range");
        rowsOf_[static_cast<std::size_t>(pe)].push_back(
            static_cast<Index>(r));
    }
}

void
RowPartition::moveRow(Index row, int to_pe)
{
    int from = owner_[static_cast<std::size_t>(row)];
    if (from == to_pe) return;
    auto &v = rowsOf_[static_cast<std::size_t>(from)];
    v.erase(std::find(v.begin(), v.end(), row));
    rowsOf_[static_cast<std::size_t>(to_pe)].push_back(row);
    owner_[static_cast<std::size_t>(row)] = to_pe;
}

void
RowPartition::swapRows(const std::vector<Index> &from_hot,
                       const std::vector<Index> &from_cold, int hot_pe,
                       int cold_pe)
{
    for (Index r : from_hot) {
        if (owner(r) != hot_pe)
            panic("swapRows: row not owned by hotspot PE");
        moveRow(r, cold_pe);
    }
    for (Index r : from_cold) {
        if (owner(r) != cold_pe)
            panic("swapRows: row not owned by coldspot PE");
        moveRow(r, hot_pe);
    }
}

std::vector<Count>
RowPartition::workload(const std::vector<Count> &row_work) const
{
    std::vector<Count> w(static_cast<std::size_t>(numPes_), 0);
    for (std::size_t r = 0; r < owner_.size(); ++r)
        w[static_cast<std::size_t>(owner_[r])] += row_work[r];
    return w;
}

bool
RowPartition::consistent() const
{
    std::size_t total = 0;
    for (int p = 0; p < numPes_; ++p) {
        for (Index r : rowsOf_[static_cast<std::size_t>(p)]) {
            if (owner_[static_cast<std::size_t>(r)] != p) return false;
        }
        total += rowsOf_[static_cast<std::size_t>(p)].size();
    }
    return total == owner_.size();
}

} // namespace awb
