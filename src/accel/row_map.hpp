/**
 * @file
 * Row-to-PE ownership map — the state the Shuffling Switches (SS) and the
 * Remote Balancing Control Registers (RBCR) maintain in hardware (paper
 * Fig. 12). The initial assignment is the static equal partition of the
 * baseline (Fig. 6); dynamic remote switching rewrites entries between
 * rounds.
 */

#pragma once

#include <vector>

#include "accel/config.hpp"
#include "common/types.hpp"

namespace awb {

/** Ownership of sparse-operand rows (== result rows) by PEs. */
class RowPartition
{
  public:
    RowPartition() = default;

    /** Build the static initial mapping. */
    RowPartition(Index rows, int num_pes, RowMapPolicy policy);

    /** Adopt an explicit row→PE assignment (balance policies that
     *  compute the whole map at once). Every entry must be in
     *  [0, num_pes). */
    RowPartition(std::vector<int> owner, int num_pes);

    Index rows() const { return static_cast<Index>(owner_.size()); }
    int numPes() const { return numPes_; }

    int owner(Index row) const
    {
        return owner_[static_cast<std::size_t>(row)];
    }

    /** The full row→PE assignment vector. The batched cycle engine keys
     *  its round memoization on this (DESIGN.md §6). */
    const std::vector<int> &owners() const { return owner_; }

    /** Rows currently owned by PE p (unsorted). */
    const std::vector<Index> &rowsOf(int pe) const
    {
        return rowsOf_[static_cast<std::size_t>(pe)];
    }

    /** Reassign one row to a new PE. */
    void moveRow(Index row, int to_pe);

    /** Swap ownership of two row sets between two PEs (remote switching). */
    void swapRows(const std::vector<Index> &from_hot,
                  const std::vector<Index> &from_cold, int hot_pe,
                  int cold_pe);

    /**
     * Per-PE workload given per-row task counts (one round's work):
     * W_p = sum of work[row] over rows owned by p.
     */
    std::vector<Count> workload(const std::vector<Count> &row_work) const;

    /** Structural check: rowsOf lists and owner vector agree. */
    bool consistent() const;

  private:
    int numPes_ = 0;
    std::vector<int> owner_;
    std::vector<std::vector<Index>> rowsOf_;
};

} // namespace awb
