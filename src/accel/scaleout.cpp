#include "accel/scaleout.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "accel/policy.hpp"
#include "common/log.hpp"
#include "sparse/convert.hpp"

namespace awb {

namespace {

/** Copy a shard's result rows back to their global positions. */
void
scatterRows(const DenseMatrix &local, const std::vector<Index> &rows,
            DenseMatrix &out)
{
    for (std::size_t l = 0; l < rows.size(); ++l) {
        const Value *src = local.rowPtr(static_cast<Index>(l));
        std::copy(src, src + local.cols(),
                  out.rowPtr(rows[l]));
    }
}

/** Stat fields only the cycle engine tracks. */
void
foldExtras(SpmmStats &out, const SpmmStats &s)
{
    out.peakNetworkDepth =
        std::max(out.peakNetworkDepth, s.peakNetworkDepth);
    out.roundsSimulated += s.roundsSimulated;
    out.rawStalls += s.rawStalls;
}

void
foldExtras(PerfSpmmResult &, const PerfSpmmResult &)
{
}

/**
 * Round-barrier combination of one SPMM's per-chip results (DESIGN.md
 * §9): system round k is the slowest chip's round k, stretched to the
 * halo link floor when boundary-row exchange dominates. Works on both
 * fidelities' stat structs (shared field names).
 */
template <class T>
T
combineShards(const std::vector<T> &per_chip,
              const std::vector<Count> &halo_rows, const MemoryModel &mem,
              int num_pes, ScaleOutSummary &scale)
{
    const int chips = static_cast<int>(per_chip.size());
    T out;
    const std::size_t K = per_chip.front().roundCycles.size();
    for (const T &s : per_chip)
        if (s.roundCycles.size() != K)
            fatal("scale-out: chips disagree on round count");

    // Per round, chip c receives one element of each halo row over its
    // link; the slowest link bounds the barrier.
    const Count bpv = mem.platform().bytesPerValue;
    Cycle link_floor = 0;
    Count halo_per_round = 0;
    for (Count h : halo_rows) {
        halo_per_round += h * bpv;
        link_floor = std::max(link_floor, mem.haloFloorCycles(h * bpv));
    }

    out.roundCycles.reserve(K);
    for (std::size_t k = 0; k < K; ++k) {
        Cycle sys = 0;
        for (const T &s : per_chip) sys = std::max(sys, s.roundCycles[k]);
        scale.haloCycles += link_floor;
        if (link_floor > sys) {
            ++scale.haloBoundRounds;
            sys = link_floor;
        }
        out.roundCycles.push_back(sys);
        out.cycles += sys;
    }
    scale.haloBytes += static_cast<Count>(K) * halo_per_round;

    out.convergedRound = 0;
    for (const T &s : per_chip) {
        out.tasks += s.tasks;
        out.rowsSwitched += s.rowsSwitched;
        out.traffic += s.traffic;
        out.memoryCycles += s.memoryCycles;
        out.bwBoundRounds += s.bwBoundRounds;
        out.peakQueueDepth =
            std::max(out.peakQueueDepth, s.peakQueueDepth);
        // The system has converged once every chip has (-1 = never).
        out.convergedRound =
            (s.convergedRound < 0 || out.convergedRound < 0)
                ? -1
                : std::max(out.convergedRound, s.convergedRound);
        out.perPeTasks.insert(out.perPeTasks.end(), s.perPeTasks.begin(),
                              s.perPeTasks.end());
        foldExtras(out, s);
    }
    out.traffic.haloBytes += static_cast<Count>(K) * halo_per_round;
    out.rounds = static_cast<Count>(K);

    // Every round streams the full non-zero set, so the combined ideal
    // is the perfectly balanced drain over all chips × PEs.
    if (K > 0) {
        const Count per_round = out.tasks / static_cast<Count>(K);
        const Count total_pes =
            static_cast<Count>(chips) * static_cast<Count>(num_pes);
        out.idealCycles = static_cast<Cycle>(K) *
                          ((per_round + total_pes - 1) / total_pes);
    }
    out.syncCycles = std::max<Cycle>(0, out.cycles - out.idealCycles);
    out.utilization = out.cycles > 0
        ? static_cast<double>(out.tasks) /
          (static_cast<double>(chips) * static_cast<double>(num_pes) *
           static_cast<double>(out.cycles))
        : 0.0;
    return out;
}

} // namespace

ShardedSpmmResult
executeSpmmSharded(const AccelConfig &cfg, const CscMatrix &a,
                   const DenseMatrix &b, TdqKind kind)
{
    ShardedSpmmResult out;
    out.scaleout.chips = std::max(1, cfg.chips);
    const std::vector<Count> row_work = a.rowNnz();
    if (cfg.chips <= 1) {
        // Timing no-op: the plain single-accelerator path, bit for bit.
        SpmmEngine engine(cfg);
        RowPartition part =
            makePartitionPolicy(cfg)->build(a.rows(), row_work, cfg);
        out.result = engine.execute(a, b, kind, part);
        return out;
    }

    AccelConfig sub = cfg;
    sub.chips = 1;
    ChipPartition cp = ChipPartition::build(cfg, a.rows(), row_work);
    const std::vector<Count> halo = cp.haloRows(a);
    const MemoryModel mem(findPlatform(cfg.platform), policyClockMhz(cfg));
    std::unique_ptr<PartitionPolicy> partitioner = makePartitionPolicy(sub);

    out.result.c = DenseMatrix(a.rows(), b.cols());
    std::vector<SpmmStats> per_chip;
    per_chip.reserve(static_cast<std::size_t>(cfg.chips));
    for (int c = 0; c < cfg.chips; ++c) {
        CscMatrix shard = cp.extractRows(a, c);
        std::vector<Count> work = cp.extractWork(row_work, c);
        RowPartition part = partitioner->build(shard.rows(), work, sub);
        SpmmEngine engine(sub);
        SpmmResult r = engine.execute(shard, b, kind, part);
        scatterRows(r.c, cp.rowsOf(c), out.result.c);
        per_chip.push_back(std::move(r.stats));
    }
    out.result.stats =
        combineShards(per_chip, halo, mem, cfg.numPes, out.scaleout);
    out.scaleout.chipImbalance = cp.imbalance(row_work);
    return out;
}

ShardedGcnResult
runGcnSharded(const AccelConfig &cfg, const Dataset &ds,
              const GcnModel &model)
{
    ShardedGcnResult out;
    out.scaleout.chips = std::max(1, cfg.chips);
    if (cfg.chips <= 1) {
        // Timing no-op: the Session-backed single-accelerator inference.
        out.result = runGcn(cfg, ds, model);
        return out;
    }
    if (ds.features.cols() != model.inDim(0))
        fatal("runGcnSharded: feature dim mismatch");

    AccelConfig sub = cfg;
    sub.chips = 1;
    const CscMatrix &a = ds.adjacency;
    const Index n = a.rows();
    const std::vector<Count> a_work = a.rowNnz();
    ChipPartition cp = ChipPartition::build(cfg, n, a_work);
    const std::vector<Count> halo = cp.haloRows(a);
    const std::vector<Count> no_halo(static_cast<std::size_t>(cfg.chips),
                                     0);
    const MemoryModel mem(findPlatform(cfg.platform), policyClockMhz(cfg));
    out.scaleout.chipImbalance = cp.imbalance(a_work);
    std::unique_ptr<PartitionPolicy> partitioner = makePartitionPolicy(sub);

    // Per-chip persistent state: engine plus the adjacency shard and its
    // tuned row map, carried across layers (auto-tuning, §4).
    std::vector<SpmmEngine> engines;
    std::vector<CscMatrix> a_shard;
    std::vector<RowPartition> a_part;
    for (int c = 0; c < cfg.chips; ++c) {
        engines.emplace_back(sub);
        a_shard.push_back(cp.extractRows(a, c));
        a_part.push_back(partitioner->build(
            a_shard.back().rows(), a_shard.back().rowNnz(), sub));
    }

    GcnRunResult &res = out.result;
    CscMatrix h = csrToCsc(ds.features);
    for (Index l = 0; l < model.layers(); ++l) {
        const std::string tag = "L" + std::to_string(l + 1);
        const DenseMatrix &w =
            model.weights[static_cast<std::size_t>(l)];
        GcnLayerResult layer;

        // X×W via TDQ-1: W is replicated on every chip, no halo.
        DenseMatrix xw(n, w.cols());
        {
            const std::vector<Count> h_work = h.rowNnz();
            std::vector<SpmmStats> per_chip;
            for (int c = 0; c < cfg.chips; ++c) {
                CscMatrix shard = cp.extractRows(h, c);
                std::vector<Count> work = cp.extractWork(h_work, c);
                RowPartition part =
                    partitioner->build(shard.rows(), work, sub);
                SpmmResult r = engines[static_cast<std::size_t>(c)]
                                   .execute(shard, w,
                                            TdqKind::Tdq1DenseScan, part);
                scatterRows(r.c, cp.rowsOf(c), xw);
                per_chip.push_back(std::move(r.stats));
            }
            layer.xw = combineShards(per_chip, no_halo, mem, cfg.numPes,
                                     out.scaleout);
            layer.xw.label = tag + ".XW";
        }

        // A×(XW) (+ extra hops) via TDQ-2: boundary XW rows produced on
        // other chips cross the inter-chip link each round.
        DenseMatrix z = std::move(xw);
        for (Index hop = 0; hop < model.adjHops; ++hop) {
            DenseMatrix az(n, z.cols());
            std::vector<SpmmStats> per_chip;
            for (int c = 0; c < cfg.chips; ++c) {
                SpmmResult r =
                    engines[static_cast<std::size_t>(c)].execute(
                        a_shard[static_cast<std::size_t>(c)], z,
                        TdqKind::Tdq2OmegaCsc,
                        a_part[static_cast<std::size_t>(c)]);
                scatterRows(r.c, cp.rowsOf(c), az);
                per_chip.push_back(std::move(r.stats));
            }
            SpmmStats combined = combineShards(per_chip, halo, mem,
                                               cfg.numPes, out.scaleout);
            combined.label =
                hop == 0 ? tag + ".A(XW)"
                         : tag + ".A^" + std::to_string(hop + 1) + "(XW)";
            if (hop == 0) {
                layer.ax = std::move(combined);
            } else {
                layer.extraHops.push_back(std::move(combined));
            }
            z = std::move(az);
        }

        std::vector<const std::vector<Cycle> *> stages;
        stages.push_back(&layer.xw.roundCycles);
        stages.push_back(&layer.ax.roundCycles);
        for (const SpmmStats &e : layer.extraHops)
            stages.push_back(&e.roundCycles);
        layer.pipelinedCycles = pipelineCyclesMulti(stages);

        res.totalCycles += layer.pipelinedCycles;
        res.totalCyclesSerial += layer.xw.cycles + layer.ax.cycles;
        res.totalTasks += layer.xw.tasks + layer.ax.tasks;
        for (const SpmmStats &e : layer.extraHops) {
            res.totalCyclesSerial += e.cycles;
            res.totalTasks += e.tasks;
        }

        const bool last = l == model.layers() - 1;
        if (!last) {
            z.relu();
            h = denseToCsc(z);
        } else {
            res.output = std::move(z);
        }
        res.layers.push_back(std::move(layer));
    }

    res.utilization = res.totalCyclesSerial > 0
        ? static_cast<double>(res.totalTasks) /
          (static_cast<double>(cfg.chips) *
           static_cast<double>(cfg.numPes) *
           static_cast<double>(res.totalCyclesSerial))
        : 0.0;
    return out;
}

ShardedPerfGcnResult
modelGcnSharded(const AccelConfig &cfg, const WorkloadProfile &profile,
                const CscMatrix *structure)
{
    ShardedPerfGcnResult out;
    out.scaleout.chips = std::max(1, cfg.chips);
    if (cfg.chips <= 1) {
        // Timing no-op: the plain round-level model.
        out.result = PerfModel(cfg).runGcn(profile);
        return out;
    }
    if (structure == nullptr)
        fatal("modelGcnSharded: chips > 1 needs the adjacency structure "
              "for halo counting (loadSyntheticAdjacency)");
    const Index n = profile.spec.nodes;
    if (structure->rows() != n || structure->cols() != n)
        fatal("modelGcnSharded: adjacency structure does not match the "
              "profile's node count");

    AccelConfig sub = cfg;
    sub.chips = 1;
    ChipPartition cp = ChipPartition::build(cfg, n, profile.aRowNnz);
    const std::vector<Count> halo = cp.haloRows(*structure);
    const std::vector<Count> no_halo(static_cast<std::size_t>(cfg.chips),
                                     0);
    const MemoryModel mem(findPlatform(cfg.platform), policyClockMhz(cfg));
    out.scaleout.chipImbalance = cp.imbalance(profile.aRowNnz);

    const PerfModel pm(sub);
    std::unique_ptr<PartitionPolicy> partitioner = makePartitionPolicy(sub);

    std::vector<std::vector<Count>> a_work;
    std::vector<RowPartition> a_part;
    for (int c = 0; c < cfg.chips; ++c) {
        a_work.push_back(cp.extractWork(profile.aRowNnz, c));
        a_part.push_back(partitioner->build(
            static_cast<Index>(a_work.back().size()), a_work.back(), sub));
    }

    struct LayerIn
    {
        const std::vector<Count> *xRow;
        Index rounds;
        Index innerDim;
    };
    const LayerIn layers[2] = {
        {&profile.x1RowNnz, profile.spec.f2, profile.spec.f1},
        {&profile.x2RowNnz, profile.spec.f3, profile.spec.f2},
    };

    PerfGcnResult &res = out.result;
    auto fold = [&res](const PerfSpmmResult &s) {
        res.traffic += s.traffic;
        res.memoryCycles += s.memoryCycles;
        res.bwBoundRounds += s.bwBoundRounds;
    };
    for (const LayerIn &li : layers) {
        PerfGcnResult::Layer layer;
        std::vector<PerfSpmmResult> xws, axs;
        for (int c = 0; c < cfg.chips; ++c) {
            std::vector<Count> x_work = cp.extractWork(*li.xRow, c);
            RowPartition part_x = partitioner->build(
                static_cast<Index>(x_work.size()), x_work, sub);
            xws.push_back(
                pm.runSpmm(x_work, li.rounds, part_x, li.innerDim));
            axs.push_back(pm.runSpmm(a_work[static_cast<std::size_t>(c)],
                                     li.rounds,
                                     a_part[static_cast<std::size_t>(c)],
                                     n));
        }
        layer.xw = combineShards(xws, no_halo, mem, cfg.numPes,
                                 out.scaleout);
        layer.ax =
            combineShards(axs, halo, mem, cfg.numPes, out.scaleout);
        layer.pipelinedCycles =
            pipelineCycles(layer.xw.roundCycles, layer.ax.roundCycles);
        res.totalCycles += layer.pipelinedCycles;
        res.totalCyclesSerial += layer.xw.cycles + layer.ax.cycles;
        res.totalTasks += layer.xw.tasks + layer.ax.tasks;
        fold(layer.xw);
        fold(layer.ax);
        res.layers.push_back(std::move(layer));
    }

    res.utilization = res.totalCyclesSerial > 0
        ? static_cast<double>(res.totalTasks) /
          (static_cast<double>(cfg.chips) *
           static_cast<double>(cfg.numPes) *
           static_cast<double>(res.totalCyclesSerial))
        : 0.0;
    return out;
}

} // namespace awb
