/**
 * @file
 * Multi-chip scale-out execution (DESIGN.md §9).
 *
 * Shards one SPMM (or a whole GCN inference) across `AccelConfig::chips`
 * simulated accelerators: a ChipPartition assigns sparse-operand rows to
 * chips, each chip runs its shard on its own numPes-wide array, and the
 * chips synchronize at the per-column round barrier (the same barrier
 * that separates rounds within one chip, §3.3, applied across chips):
 *
 *     system_round_k = max( max_c chip_round_c[k],  link_floor )
 *
 * where `link_floor` is the halo-exchange cycle floor: per round, chip c
 * receives one element of each of its halo rows (boundary dense-operand
 * rows owned by another chip) over the platform's inter-chip link,
 * composed roofline-style exactly like the off-chip DRAM floor (§8).
 * Halo bytes are accounted as a dedicated traffic class
 * (MemoryTraffic::haloBytes) on every platform; only the floor needs a
 * link-bandwidth figure (PlatformSpec::interChipGBs — 0 on
 * `unconstrained`, keeping it the no-op reference).
 *
 * `chips == 1` short-circuits to the unsharded engines, making the
 * default a provable timing no-op (bit-identical statistics, locked by
 * tests/test_scaleout.cpp).
 */

#pragma once

#include "accel/chip_partition.hpp"
#include "accel/gcn_accel.hpp"
#include "accel/perf_model.hpp"
#include "accel/spmm_engine.hpp"
#include "graph/datasets.hpp"

namespace awb {

/** Scale-out-specific aggregates of one sharded execution. */
struct ScaleOutSummary
{
    int chips = 1;
    /** Inter-chip bytes moved (all rounds, all chips). */
    Count haloBytes = 0;
    /** Summed per-round link floors (0 on an unconstrained link). */
    Cycle haloCycles = 0;
    /** Rounds stretched to the link floor at the barrier. */
    Count haloBoundRounds = 0;
    /** Chip-level load imbalance: max(W_c) / mean(W_c). */
    double chipImbalance = 1.0;

    ScaleOutSummary &operator+=(const ScaleOutSummary &o)
    {
        haloBytes += o.haloBytes;
        haloCycles += o.haloCycles;
        haloBoundRounds += o.haloBoundRounds;
        return *this;
    }
};

/** A sharded cycle-accurate SPMM: combined stats plus scale-out view. */
struct ShardedSpmmResult
{
    SpmmResult result;
    ScaleOutSummary scaleout;
};

/** A sharded cycle-accurate GCN inference. */
struct ShardedGcnResult
{
    GcnRunResult result;
    ScaleOutSummary scaleout;
};

/** A sharded round-level GCN model run. */
struct ShardedPerfGcnResult
{
    PerfGcnResult result;
    ScaleOutSummary scaleout;
};

/**
 * Execute C = a × b cycle-accurately across cfg.chips chips. Combined
 * statistics cover the whole system (perPeTasks has chips × numPes
 * entries, utilization is over all PEs); the result matrix is exact.
 * chips == 1 is the plain SpmmEngine path, bit for bit.
 */
ShardedSpmmResult executeSpmmSharded(const AccelConfig &cfg,
                                     const CscMatrix &a,
                                     const DenseMatrix &b, TdqKind kind);

/**
 * Run a full GCN inference cycle-accurately across cfg.chips chips.
 * Node ownership (one ChipPartition over the adjacency's rows) is shared
 * by every SPMM: chip c computes XW rows and output rows of the nodes it
 * owns, so the A×(XW) halo is exactly the boundary XW rows produced on
 * other chips. chips == 1 delegates to runGcn() unchanged.
 */
ShardedGcnResult runGcnSharded(const AccelConfig &cfg, const Dataset &ds,
                               const GcnModel &model);

/**
 * Round-level (PerfModel) twin of runGcnSharded, full-scale capable.
 *
 * @param structure  adjacency structure for halo counting; required when
 *                   cfg.chips > 1 (pass loadSyntheticAdjacency(...) —
 *                   the profile alone cannot locate boundary rows),
 *                   ignored otherwise.
 */
ShardedPerfGcnResult modelGcnSharded(const AccelConfig &cfg,
                                     const WorkloadProfile &profile,
                                     const CscMatrix *structure = nullptr);

} // namespace awb
