#include "accel/spmm_engine.hpp"

#include <algorithm>
#include <numeric>

#include "accel/local_share.hpp"
#include "accel/omega.hpp"
#include "accel/pe.hpp"
#include "accel/policy.hpp"
#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace awb {

namespace {

/** Flattened column-major non-zero stream of the sparse operand. */
struct NnzStream
{
    std::vector<Index> row;
    std::vector<Index> col;
    std::vector<Count> densePos;  ///< column-major element index (TDQ-1)
    std::vector<Value> val;

    explicit NnzStream(const CscMatrix &a)
    {
        auto nnz = static_cast<std::size_t>(a.nnz());
        row.reserve(nnz);
        col.reserve(nnz);
        densePos.reserve(nnz);
        val.reserve(nnz);
        for (Index j = 0; j < a.cols(); ++j) {
            for (Count p = a.colPtr()[static_cast<std::size_t>(j)];
                 p < a.colPtr()[static_cast<std::size_t>(j) + 1]; ++p) {
                Index r = a.rowId()[static_cast<std::size_t>(p)];
                row.push_back(r);
                col.push_back(j);
                densePos.push_back(static_cast<Count>(j) * a.rows() + r);
                val.push_back(a.val()[static_cast<std::size_t>(p)]);
            }
        }
    }

    std::size_t size() const { return row.size(); }
};

} // namespace

SpmmEngine::SpmmEngine(const AccelConfig &cfg) : cfg_(cfg)
{
    std::string err = cfg.validate();
    if (!err.empty()) fatal("SpmmEngine: " + err);
}

SpmmResult
SpmmEngine::execute(const CscMatrix &a, const DenseMatrix &b, TdqKind kind,
                    RowPartition &partition)
{
    if (a.cols() != b.rows()) panic("SpmmEngine: inner dimensions differ");
    if (partition.rows() != a.rows())
        panic("SpmmEngine: partition rows != operand rows");
    if (kind == TdqKind::Tdq2OmegaCsc) {
        std::string err =
            cfg_.validate(/*cycle_accurate_tdq2=*/true);
        if (!err.empty()) fatal("SpmmEngine: " + err);
    }

    const int P = cfg_.numPes;
    const Index m = a.rows();
    const Index K = b.cols();
    DenseMatrix c(m, K);

    NnzStream stream(a);
    const auto n_flits = stream.size();
    const std::vector<Count> row_work = a.rowNnz();

    // --- Build the PE array.
    std::vector<Pe> pes;
    pes.reserve(static_cast<std::size_t>(P));
    for (int p = 0; p < P; ++p)
        pes.emplace_back(p, cfg_.numQueuesPerPe, cfg_.queueDepth,
                         cfg_.macLatency);

    LocalSharer sharer(cfg_.sharingHops);
    std::unique_ptr<RebalancePolicy> rebalance =
        makeRebalancePolicy(cfg_, m);
    const bool use_net = (kind == TdqKind::Tdq2OmegaCsc) && P >= 2;
    OmegaNetwork net(std::max(P, 2), cfg_.omegaBufferDepth,
                     cfg_.networkSpeedup);

    // TDQ-1 scan width: fetch enough dense elements per cycle that, with
    // evenly distributed non-zeros, about P non-zeros emerge per cycle
    // (paper: N_PE / (1 - sparsity) data forwarded per cycle).
    const double elems = static_cast<double>(a.rows()) *
                         static_cast<double>(a.cols());
    const double density =
        elems > 0.0 ? static_cast<double>(a.nnz()) / elems : 1.0;
    Count scan_width = cfg_.streamWidth > 0
        ? cfg_.streamWidth
        : static_cast<Count>(static_cast<double>(P) /
                             std::max(density, 1e-9));
    scan_width = std::max<Count>(scan_width, 1);
    const int inject_width = cfg_.injectWidth > 0 ? cfg_.injectWidth : P;
    const int accept_cap = cfg_.receivePorts;

    // Per-round bookkeeping reused across rounds.
    std::vector<Value> acc(static_cast<std::size_t>(m), Value(0));
    std::vector<int> accepted(static_cast<std::size_t>(P), 0);
    std::vector<Cycle> drain(static_cast<std::size_t>(P), 0);
    // Dispatch-side (home-attributed) task counters: what the PESM's
    // distribution-point monitors see. Local sharing smears *execution*
    // across neighbours, but the switchable quantity is row ownership,
    // so hotspot/coldspot identification must rank by home load.
    std::vector<Count> home_tasks(static_cast<std::size_t>(P), 0);

    SpmmStats stats;
    stats.rounds = K;
    stats.perPeTasks.assign(static_cast<std::size_t>(P), 0);
    Cycle now = 0;

    for (Index k = 0; k < K; ++k) {
        std::fill(acc.begin(), acc.end(), Value(0));
        std::fill(home_tasks.begin(), home_tasks.end(), 0);
        for (auto &pe : pes) pe.resetRound();
        const Cycle round_start = now;
        std::size_t next = 0;    // next flit to dispatch (TDQ-1)
        Count scan_pos = 0;      // TDQ-1 dense-scan pointer
        // TDQ-2: the CSC array is banked P ways; each bank feeds one
        // network port through its own read pointer, so a congested path
        // stalls only its own lane (port p streams flits p, p+P, ...).
        std::vector<std::size_t> port_next(static_cast<std::size_t>(P));
        std::size_t lanes_done = 0;
        for (int p = 0; p < P; ++p) {
            port_next[static_cast<std::size_t>(p)] =
                static_cast<std::size_t>(p);
            if (static_cast<std::size_t>(p) >= n_flits) ++lanes_done;
        }

        // Deliver a task to its (possibly shared) destination.
        auto deliver = [&](std::size_t f) -> bool {
            int home = partition.owner(stream.row[f]);
            int target;
            if (sharer.hops() > 0) {
                target = sharer.choose(home, pes, &accepted, accept_cap);
            } else {
                target =
                    (accepted[static_cast<std::size_t>(home)] < accept_cap &&
                     pes[static_cast<std::size_t>(home)].canAccept())
                        ? home : -1;
            }
            if (target < 0) return false;
            Task t{stream.row[f], stream.val[f],
                   b.at(stream.col[f], k), home};
            if (!pes[static_cast<std::size_t>(target)].enqueue(t))
                return false;
            ++accepted[static_cast<std::size_t>(target)];
            ++home_tasks[static_cast<std::size_t>(home)];
            return true;
        };

        while (true) {
            // 1. PEs consume (they see queue state from previous cycles).
            for (auto &pe : pes) pe.tick(now, acc);

            std::fill(accepted.begin(), accepted.end(), 0);

            // 2. Network advances and delivers into queues.
            if (use_net) {
                net.tick(now, [&](const Flit &flit, int out_port) {
                    if (out_port != flit.destPe)
                        panic("Omega routing invariant violated");
                    int home = flit.destPe;
                    int target;
                    if (sharer.hops() > 0) {
                        target = sharer.choose(home, pes, &accepted,
                                               accept_cap);
                    } else {
                        target = accepted[static_cast<std::size_t>(home)] <
                                 accept_cap ? home : -1;
                    }
                    if (target < 0) return false;
                    if (!pes[static_cast<std::size_t>(target)]
                             .enqueue(flit.task))
                        return false;
                    ++accepted[static_cast<std::size_t>(target)];
                    ++home_tasks[static_cast<std::size_t>(home)];
                    return true;
                });
            }

            // 3. Injection.
            if (kind == TdqKind::Tdq1DenseScan) {
                scan_pos += scan_width;
                while (next < n_flits && stream.densePos[next] < scan_pos) {
                    if (!deliver(next)) {
                        // Backpressure: the scan stalls at this element.
                        scan_pos = stream.densePos[next];
                        break;
                    }
                    ++next;
                }
            } else if (use_net) {
                int injected = 0;
                for (int p = 0; p < P && injected < inject_width; ++p) {
                    std::size_t &cursor =
                        port_next[static_cast<std::size_t>(p)];
                    if (cursor >= n_flits) continue;
                    int home = partition.owner(stream.row[cursor]);
                    Flit flit{Task{stream.row[cursor], stream.val[cursor],
                                   b.at(stream.col[cursor], k), home},
                              home};
                    if (!net.inject(flit, p)) continue;
                    cursor += static_cast<std::size_t>(P);
                    ++injected;
                    if (cursor >= n_flits) ++lanes_done;
                }
            } else {
                // Degenerate single-PE TDQ-2: direct delivery.
                int injected = 0;
                while (next < n_flits && injected < inject_width) {
                    if (!deliver(next)) break;
                    ++next;
                    ++injected;
                }
            }

            ++now;
            if (now - round_start > cfg_.maxCyclesPerRound)
                panic("SpmmEngine: round watchdog expired");

            bool stream_done = use_net
                ? (lanes_done == static_cast<std::size_t>(P))
                : (next >= n_flits);
            if (!stream_done) continue;
            if (use_net && !net.empty()) continue;
            bool done = true;
            for (const auto &pe : pes) {
                if (!pe.drained(now)) {
                    done = false;
                    break;
                }
            }
            if (done) break;
        }

        // Commit the finished column of C.
        for (Index r = 0; r < m; ++r)
            c.at(r, k) = acc[static_cast<std::size_t>(r)];

        // Round accounting.
        const Cycle round_cycles = now - round_start;
        if (std::getenv("AWB_DEBUG_ROUND") && k == 0) {
            std::fprintf(stderr, "round0 cycles=%lld\n",
                         static_cast<long long>(round_cycles));
            for (int p = 0; p < P; ++p) {
                std::fprintf(stderr, "pe%02d exec=%lld home=%lld last=%lld\n",
                    p,
                    static_cast<long long>(
                        pes[static_cast<std::size_t>(p)].tasksThisRound()),
                    static_cast<long long>(
                        home_tasks[static_cast<std::size_t>(p)]),
                    static_cast<long long>(
                        pes[static_cast<std::size_t>(p)].lastBusyCycle() -
                        round_start));
            }
        }
        stats.roundCycles.push_back(round_cycles);
        Count round_tasks = 0;
        RoundObservation obs;
        obs.peWork.resize(static_cast<std::size_t>(P));
        obs.drainCycle.resize(static_cast<std::size_t>(P));
        for (int p = 0; p < P; ++p) {
            Count t = pes[static_cast<std::size_t>(p)].tasksThisRound();
            round_tasks += t;
            stats.perPeTasks[static_cast<std::size_t>(p)] += t;
            // peWork: home-attributed load (what row swaps can change);
            // drainCycle: the actual empty-signal timing the PESM sees.
            obs.peWork[static_cast<std::size_t>(p)] =
                home_tasks[static_cast<std::size_t>(p)];
            Cycle last = pes[static_cast<std::size_t>(p)].lastBusyCycle();
            obs.drainCycle[static_cast<std::size_t>(p)] =
                (t > 0 && last >= round_start) ? last - round_start : 0;
            drain[static_cast<std::size_t>(p)] =
                obs.drainCycle[static_cast<std::size_t>(p)];
        }
        stats.tasks += round_tasks;
        stats.idealCycles += (round_tasks + P - 1) / P;

        // The rebalance policy auto-tunes the row map for the next round
        // (the paper's remote switching, or any registered alternative).
        if (k + 1 < K)
            rebalance->observeAndAdjust(obs, row_work, partition);
    }

    stats.cycles = now;
    stats.syncCycles = std::max<Cycle>(0, stats.cycles - stats.idealCycles);
    stats.utilization = stats.cycles > 0
        ? static_cast<double>(stats.tasks) /
          (static_cast<double>(P) * static_cast<double>(stats.cycles))
        : 0.0;
    stats.rowsSwitched = rebalance->totalRowsMoved();
    stats.convergedRound = rebalance->convergedRound();
    for (const auto &pe : pes) {
        stats.peakQueueDepth =
            std::max(stats.peakQueueDepth, pe.peakQueueDepth());
        if (const Counter *cn = pe.stats().find("rawStallCycles"))
            stats.rawStalls += cn->value();
    }
    if (use_net) stats.peakNetworkDepth = net.peakBufferDepth();
    return {std::move(c), std::move(stats)};
}

} // namespace awb
