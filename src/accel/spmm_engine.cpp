#include "accel/spmm_engine.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "accel/local_share.hpp"
#include "accel/omega.hpp"
#include "accel/pe.hpp"
#include "accel/policy.hpp"
#include "accel/round_cache.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "kernels/spgemm.hpp"
#include "sparse/convert.hpp"

#include <cstdio>
#include <cstdlib>

namespace awb {

namespace {

/** Flattened column-major non-zero stream of the sparse operand. */
struct NnzStream
{
    std::vector<Index> row;
    std::vector<Index> col;
    std::vector<Count> densePos;  ///< column-major element index (TDQ-1)
    std::vector<Value> val;

    explicit NnzStream(const CscMatrix &a)
    {
        auto nnz = static_cast<std::size_t>(a.nnz());
        row.reserve(nnz);
        col.reserve(nnz);
        densePos.reserve(nnz);
        val.reserve(nnz);
        for (Index j = 0; j < a.cols(); ++j) {
            for (Count p = a.colPtr()[static_cast<std::size_t>(j)];
                 p < a.colPtr()[static_cast<std::size_t>(j) + 1]; ++p) {
                Index r = a.rowId()[static_cast<std::size_t>(p)];
                row.push_back(r);
                col.push_back(j);
                densePos.push_back(static_cast<Count>(j) * a.rows() + r);
                val.push_back(a.val()[static_cast<std::size_t>(p)]);
            }
        }
    }

    std::size_t size() const { return row.size(); }
};

// RoundRecord (the per-round outcome) and RoundEntryKey now live in
// accel/round_cache.hpp so outcomes can be shared across engine runs;
// this run-local memo keeps the batched engine's within-run fast path
// lock-free. Hash-bucketed, exact key compare on hit.
using RoundCache = std::unordered_map<
    std::uint64_t,
    std::vector<std::pair<RoundEntryKey,
                          std::shared_ptr<const RoundRecord>>>>;

Count
rawStallsOf(const std::vector<Pe> &pes)
{
    Count total = 0;
    for (const Pe &pe : pes)
        if (const Counter *cn = pe.stats().find("rawStallCycles"))
            total += cn->value();
    return total;
}

} // namespace

SpmmEngine::SpmmEngine(const AccelConfig &cfg) : cfg_(cfg)
{
    std::string err = cfg.validate();
    if (!err.empty()) fatal("SpmmEngine: " + err);
}

SpmmResult
SpmmEngine::execute(const CscMatrix &a, const DenseMatrix &b, TdqKind kind,
                    RowPartition &partition)
{
    if (a.cols() != b.rows()) panic("SpmmEngine: inner dimensions differ");
    if (partition.rows() != a.rows())
        panic("SpmmEngine: partition rows != operand rows");
    if (kind == TdqKind::Tdq2OmegaCsc) {
        std::string err =
            cfg_.validate(/*cycle_accurate_tdq2=*/true);
        if (!err.empty()) fatal("SpmmEngine: " + err);
    }

    const int P = cfg_.numPes;
    const Index m = a.rows();
    const Index K = b.cols();
    const bool batched = cfg_.engine == EngineKind::Batched;
    DenseMatrix c(m, K);

    NnzStream stream(a);
    const auto n_flits = stream.size();
    const std::vector<Count> row_work = a.rowNnz();

    // --- Build the PE array.
    std::vector<Pe> pes;
    pes.reserve(static_cast<std::size_t>(P));
    for (int p = 0; p < P; ++p)
        pes.emplace_back(p, cfg_.numQueuesPerPe, cfg_.queueDepth,
                         cfg_.macLatency);

    LocalSharer sharer(cfg_.sharingHops);
    std::unique_ptr<RebalancePolicy> rebalance =
        makeRebalancePolicy(cfg_, m);
    // Off-chip memory model (DESIGN.md §8): per-round traffic is
    // accounted on every platform; a bandwidth-bound cycle floor is
    // composed roofline-style only when the platform is constrained, so
    // the unconstrained default is a provable timing no-op.
    const MemoryModel mem(findPlatform(cfg_.platform),
                          policyClockMhz(cfg_));
    const MemoryTraffic steady_traffic =
        mem.roundTraffic(a.nnz(), a.cols(), m);
    Count pending_migration_bytes = 0;
    const bool use_net = (kind == TdqKind::Tdq2OmegaCsc) && P >= 2;
    OmegaNetwork net(std::max(P, 2), cfg_.omegaBufferDepth,
                     cfg_.networkSpeedup);

    // TDQ-1 scan width: fetch enough dense elements per cycle that, with
    // evenly distributed non-zeros, about P non-zeros emerge per cycle
    // (paper: N_PE / (1 - sparsity) data forwarded per cycle).
    const double elems = static_cast<double>(a.rows()) *
                         static_cast<double>(a.cols());
    const double density =
        elems > 0.0 ? static_cast<double>(a.nnz()) / elems : 1.0;
    Count scan_width = cfg_.streamWidth > 0
        ? cfg_.streamWidth
        : static_cast<Count>(static_cast<double>(P) /
                             std::max(density, 1e-9));
    scan_width = std::max<Count>(scan_width, 1);
    const int inject_width = cfg_.injectWidth > 0 ? cfg_.injectWidth : P;
    const int accept_cap = cfg_.receivePorts;

    // Per-round bookkeeping reused across rounds.
    std::vector<Value> acc(static_cast<std::size_t>(m), Value(0));
    std::vector<int> accepted(static_cast<std::size_t>(P), 0);
    // Dispatch-side (home-attributed) task counters: what the PESM's
    // distribution-point monitors see. Local sharing smears *execution*
    // across neighbours, but the switchable quantity is row ownership,
    // so hotspot/coldspot identification must rank by home load.
    std::vector<Count> home_tasks(static_cast<std::size_t>(P), 0);

    SpmmStats stats;
    stats.rounds = K;
    stats.perPeTasks.assign(static_cast<std::size_t>(P), 0);
    Cycle now = 0;
    RoundCache cache;
    // Cross-run shared cache (DESIGN.md §13): both engines consult it
    // when enabled; outcomes are bit-identical to fresh simulation, so
    // every model statistic is unchanged either way.
    RoundStateCache &shared = RoundStateCache::instance();
    const bool shared_on = shared.enabled();
    const std::uint64_t shared_ctx =
        shared_on ? roundContextDigest(a, cfg_, static_cast<int>(kind)) : 0;
    // CSR twin of `a`, built lazily for the first replayed round: per-row
    // ascending-column accumulation order equals the column-major stream
    // order restricted to that row, so the row-parallel replay is
    // bit-identical to the serial stream-order replay it replaces.
    CsrMatrix a_csr;
    bool have_csr = false;
    std::size_t peak_queue = 0;
    std::size_t peak_net = 0;

    /**
     * Event-step one round: the exact per-cycle dynamics both engines
     * share. Mutates pes/net/now/acc and returns the round's outcome.
     * The task *values* (b's column k) only flow into `acc`; every
     * control decision reads structure alone, so the outcome — timing
     * included — depends only on the RoundEntryKey captured by the
     * caller.
     */
    auto simulateRound = [&](Index k) -> RoundRecord {
        std::fill(home_tasks.begin(), home_tasks.end(), 0);
        for (auto &pe : pes) pe.resetRound();
        net.resetRoundPeak();
        // Align the fabric's input-priority toggles with the global
        // cycle parity (identity under pure event stepping; required
        // after the batched engine replayed rounds without ticking).
        if (use_net) net.setArbitration(static_cast<int>(now & 1));
        const Count raw_before = rawStallsOf(pes);
        const Cycle round_start = now;
        std::size_t next = 0;    // next flit to dispatch (TDQ-1)
        Count scan_pos = 0;      // TDQ-1 dense-scan pointer
        // TDQ-2: the CSC array is banked P ways; each bank feeds one
        // network port through its own read pointer, so a congested path
        // stalls only its own lane (port p streams flits p, p+P, ...).
        std::vector<std::size_t> port_next(static_cast<std::size_t>(P));
        std::size_t lanes_done = 0;
        for (int p = 0; p < P; ++p) {
            port_next[static_cast<std::size_t>(p)] =
                static_cast<std::size_t>(p);
            if (static_cast<std::size_t>(p) >= n_flits) ++lanes_done;
        }

        // Deliver a task to its (possibly shared) destination.
        auto deliver = [&](std::size_t f) -> bool {
            int home = partition.owner(stream.row[f]);
            int target;
            if (sharer.hops() > 0) {
                target = sharer.choose(home, pes, &accepted, accept_cap);
            } else {
                target =
                    (accepted[static_cast<std::size_t>(home)] < accept_cap &&
                     pes[static_cast<std::size_t>(home)].canAccept())
                        ? home : -1;
            }
            if (target < 0) return false;
            Task t{stream.row[f], stream.val[f],
                   b.at(stream.col[f], k), home};
            if (!pes[static_cast<std::size_t>(target)].enqueue(t))
                return false;
            ++accepted[static_cast<std::size_t>(target)];
            ++home_tasks[static_cast<std::size_t>(home)];
            return true;
        };

        while (true) {
            // 1. PEs consume (they see queue state from previous cycles).
            for (auto &pe : pes) pe.tick(now, acc);

            std::fill(accepted.begin(), accepted.end(), 0);

            // 2. Network advances and delivers into queues.
            if (use_net) {
                net.tick(now, [&](const Flit &flit, int out_port) {
                    if (out_port != flit.destPe)
                        panic("Omega routing invariant violated");
                    int home = flit.destPe;
                    int target;
                    if (sharer.hops() > 0) {
                        target = sharer.choose(home, pes, &accepted,
                                               accept_cap);
                    } else {
                        target = accepted[static_cast<std::size_t>(home)] <
                                 accept_cap ? home : -1;
                    }
                    if (target < 0) return false;
                    if (!pes[static_cast<std::size_t>(target)]
                             .enqueue(flit.task))
                        return false;
                    ++accepted[static_cast<std::size_t>(target)];
                    ++home_tasks[static_cast<std::size_t>(home)];
                    return true;
                });
            }

            // 3. Injection.
            if (kind == TdqKind::Tdq1DenseScan) {
                scan_pos += scan_width;
                while (next < n_flits && stream.densePos[next] < scan_pos) {
                    if (!deliver(next)) {
                        // Backpressure: the scan stalls at this element.
                        scan_pos = stream.densePos[next];
                        break;
                    }
                    ++next;
                }
            } else if (use_net) {
                int injected = 0;
                for (int p = 0; p < P && injected < inject_width; ++p) {
                    std::size_t &cursor =
                        port_next[static_cast<std::size_t>(p)];
                    if (cursor >= n_flits) continue;
                    int home = partition.owner(stream.row[cursor]);
                    Flit flit{Task{stream.row[cursor], stream.val[cursor],
                                   b.at(stream.col[cursor], k), home},
                              home};
                    if (!net.inject(flit, p)) continue;
                    cursor += static_cast<std::size_t>(P);
                    ++injected;
                    if (cursor >= n_flits) ++lanes_done;
                }
            } else {
                // Degenerate single-PE TDQ-2: direct delivery.
                int injected = 0;
                while (next < n_flits && injected < inject_width) {
                    if (!deliver(next)) break;
                    ++next;
                    ++injected;
                }
            }

            ++now;
            if (now - round_start > cfg_.maxCyclesPerRound)
                panic("SpmmEngine: round watchdog expired");

            bool stream_done = use_net
                ? (lanes_done == static_cast<std::size_t>(P))
                : (next >= n_flits);
            if (!stream_done) continue;
            if (use_net && !net.empty()) continue;
            bool done = true;
            for (const auto &pe : pes) {
                if (!pe.drained(now)) {
                    done = false;
                    break;
                }
            }
            if (done) break;
        }

        RoundRecord out;
        out.roundCycles = now - round_start;
        if (std::getenv("AWB_DEBUG_ROUND") && k == 0) {
            std::fprintf(stderr, "round0 cycles=%lld\n",
                         static_cast<long long>(out.roundCycles));
            for (int p = 0; p < P; ++p) {
                std::fprintf(stderr, "pe%02d exec=%lld home=%lld last=%lld\n",
                    p,
                    static_cast<long long>(
                        pes[static_cast<std::size_t>(p)].tasksThisRound()),
                    static_cast<long long>(
                        home_tasks[static_cast<std::size_t>(p)]),
                    static_cast<long long>(
                        pes[static_cast<std::size_t>(p)].lastBusyCycle() -
                        round_start));
            }
        }
        out.homeTasks = home_tasks;
        out.execTasks.resize(static_cast<std::size_t>(P));
        out.drainCycle.resize(static_cast<std::size_t>(P));
        out.arbiterAfter.resize(static_cast<std::size_t>(P));
        for (int p = 0; p < P; ++p) {
            const Pe &pe = pes[static_cast<std::size_t>(p)];
            Count t = pe.tasksThisRound();
            out.execTasks[static_cast<std::size_t>(p)] = t;
            // homeTasks: home-attributed load (what row swaps change);
            // drainCycle: the actual empty-signal timing the PESM sees.
            Cycle last = pe.lastBusyCycle();
            out.drainCycle[static_cast<std::size_t>(p)] =
                (t > 0 && last >= round_start) ? last - round_start : 0;
            out.arbiterAfter[static_cast<std::size_t>(p)] =
                pe.arbiterCursor();
        }
        out.rawStallDelta = rawStallsOf(pes) - raw_before;
        for (const Pe &pe : pes)
            out.peakQueue = std::max(out.peakQueue, pe.roundPeakQueueDepth());
        out.peakNet = use_net ? net.roundPeakBufferDepth() : 0;
        return out;
    };

    for (Index k = 0; k < K; ++k) {
        std::fill(acc.begin(), acc.end(), Value(0));

        // Replay a previously simulated round whose entry state matches,
        // instead of event-stepping it again: the batched engine's
        // within-run memo first, then (both engines) the process-wide
        // shared cache.
        std::shared_ptr<const RoundRecord> from_local;
        std::shared_ptr<const RoundRecord> from_shared;
        std::uint64_t h = 0;
        RoundEntryKey key;
        if (batched || shared_on) {
            key.owners = partition.owners();
            key.arbiter.resize(static_cast<std::size_t>(P));
            for (int p = 0; p < P; ++p)
                key.arbiter[static_cast<std::size_t>(p)] =
                    pes[static_cast<std::size_t>(p)].arbiterCursor();
            key.netParity = use_net ? static_cast<int>(now & 1) : 0;
            h = hashRoundKey(key);
        }
        if (batched) {
            auto bucket = cache.find(h);
            if (bucket != cache.end()) {
                for (const auto &entry : bucket->second) {
                    if (entry.first == key) {
                        from_local = entry.second;
                        break;
                    }
                }
            }
        }
        if (from_local == nullptr && shared_on)
            from_shared = shared.lookup(shared_ctx, key);

        std::shared_ptr<const RoundRecord> record;
        if (from_local != nullptr || from_shared != nullptr) {
            record = from_local != nullptr ? from_local : from_shared;
            // Advance the whole round from its cached aggregates. The
            // functional column is accumulated per output row over the
            // CSR twin (the timing replay has no per-task schedule to
            // follow), so replayed columns may differ from an uncached
            // event run in floating-point rounding only. Rows are
            // independent: deterministic chunked parallelism keeps the
            // result bit-identical at any thread count.
            if (!have_csr) {
                a_csr = cscToCsr(a);
                have_csr = true;
            }
            const std::vector<Count> &rp = a_csr.rowPtr();
            const std::vector<Index> &ci = a_csr.colId();
            const std::vector<Value> &av = a_csr.val();
            auto body = [&](std::size_t rb, std::size_t re) {
                for (std::size_t r = rb; r < re; ++r) {
                    Value s = Value(0);
                    for (Count p = rp[r]; p < rp[r + 1]; ++p) {
                        s += av[static_cast<std::size_t>(p)] *
                             b.at(ci[static_cast<std::size_t>(p)], k);
                    }
                    acc[r] = s;
                }
            };
            const std::size_t rows = static_cast<std::size_t>(m);
            if (shouldParallelize(static_cast<std::uint64_t>(n_flits)))
                parallelFor(rows, std::max<std::size_t>(1, rows / 256),
                            body);
            else
                body(0, rows);
            for (int p = 0; p < P; ++p)
                pes[static_cast<std::size_t>(p)].setArbiterCursor(
                    record->arbiterAfter[static_cast<std::size_t>(p)]);
            now += record->roundCycles;
        } else {
            record = std::make_shared<RoundRecord>(simulateRound(k));
            if (shared_on) shared.insert(shared_ctx, key, record);
        }
        // Charged per round the within-run memo missed (every round for
        // the event engine), so counts are bit-identical with the shared
        // cache on or off.
        if (from_local == nullptr) {
            ++stats.roundsSimulated;
            if (batched) cache[h].emplace_back(key, record);
        }
        const RoundRecord *outcome = record.get();
        peak_queue = std::max(peak_queue, outcome->peakQueue);
        peak_net = std::max(peak_net, outcome->peakNet);

        // Commit the finished column of C.
        for (Index r = 0; r < m; ++r)
            c.at(r, k) = acc[static_cast<std::size_t>(r)];

        // Memory-traffic accounting and roofline composition: row
        // migrations ordered after round k-1 must land before this
        // round's stream, so their bytes bill to this round's floor.
        MemoryTraffic round_traffic = steady_traffic;
        round_traffic.migrationBytes = pending_migration_bytes;
        pending_migration_bytes = 0;
        stats.traffic += round_traffic;
        Cycle round_duration = outcome->roundCycles;
        const Cycle bw_floor = mem.floorCycles(round_traffic.total());
        stats.memoryCycles += bw_floor;
        if (bw_floor > round_duration) {
            // Bandwidth-bound: the PE array idles until the off-chip
            // stream completes; the round stretches to the floor.
            ++stats.bwBoundRounds;
            now += bw_floor - round_duration;
            round_duration = bw_floor;
        }

        // Round accounting.
        stats.roundCycles.push_back(round_duration);
        Count round_tasks = 0;
        for (int p = 0; p < P; ++p) {
            Count t = outcome->execTasks[static_cast<std::size_t>(p)];
            round_tasks += t;
            stats.perPeTasks[static_cast<std::size_t>(p)] += t;
        }
        stats.tasks += round_tasks;
        stats.idealCycles += (round_tasks + P - 1) / P;
        stats.rawStalls += outcome->rawStallDelta;

        // The rebalance policy auto-tunes the row map for the next round
        // (the paper's remote switching, or any registered alternative);
        // it digests the same observation whether the round was stepped
        // or replayed, so auto-tuning trajectories are engine-invariant.
        if (k + 1 < K) {
            RoundObservation obs;
            obs.peWork = outcome->homeTasks;
            obs.drainCycle = outcome->drainCycle;
            // Rows the policy moves must migrate between the PEs'
            // banks before the next round streams them. Static policies
            // never move rows, so skip the owner snapshot for them.
            std::vector<int> owners_before;
            if (rebalance->wantsObservations())
                owners_before = partition.owners();
            rebalance->observeAndAdjust(obs, row_work, partition);
            if (!owners_before.empty())
                pending_migration_bytes = mem.migrationBytes(
                    owners_before, partition.owners(), row_work);
        }
    }

    stats.cycles = now;
    stats.syncCycles = std::max<Cycle>(0, stats.cycles - stats.idealCycles);
    stats.utilization = stats.cycles > 0
        ? static_cast<double>(stats.tasks) /
          (static_cast<double>(P) * static_cast<double>(stats.cycles))
        : 0.0;
    stats.rowsSwitched = rebalance->totalRowsMoved();
    stats.convergedRound = rebalance->convergedRound();
    // Peaks are folded from per-round maxima carried in each
    // RoundRecord: a replayed round repeats the dynamics of the
    // simulated round that produced its cache entry (possibly in a
    // previous engine run), so its recorded peaks are exactly what
    // event-stepping it would have raised.
    stats.peakQueueDepth = peak_queue;
    if (use_net) stats.peakNetworkDepth = peak_net;
    return {std::move(c), std::move(stats)};
}

SpgemmResult
SpmmEngine::executeSpgemm(const CscMatrix &a, const CscMatrix &b,
                          RowPartition &partition)
{
    if (a.cols() != b.rows())
        panic("SpmmEngine: spgemm inner dimensions differ");
    if (partition.rows() != a.rows())
        panic("SpmmEngine: partition rows != operand rows");
    {
        std::string err = cfg_.validate(/*cycle_accurate_tdq2=*/true);
        if (!err.empty()) fatal("SpmmEngine: " + err);
    }

    const int P = cfg_.numPes;
    const Index m = a.rows();
    const Index K = b.cols();

    // Functional result from the golden kernel — the event schedule only
    // prices the work, so values are engine-invariant by construction.
    CscMatrix c = kernels::spgemm(a, b);
    const std::vector<Count> row_work = a.rowNnz();

    std::vector<Pe> pes;
    pes.reserve(static_cast<std::size_t>(P));
    for (int p = 0; p < P; ++p)
        pes.emplace_back(p, cfg_.numQueuesPerPe, cfg_.queueDepth,
                         cfg_.macLatency);

    LocalSharer sharer(cfg_.sharingHops);
    std::unique_ptr<RebalancePolicy> rebalance =
        makeRebalancePolicy(cfg_, m);
    const MemoryModel mem(findPlatform(cfg_.platform),
                          policyClockMhz(cfg_));
    Count pending_migration_bytes = 0;
    const bool use_net = P >= 2;
    OmegaNetwork net(std::max(P, 2), cfg_.omegaBufferDepth,
                     cfg_.networkSpeedup);
    const int inject_width = cfg_.injectWidth > 0 ? cfg_.injectWidth : P;
    const int accept_cap = cfg_.receivePorts;

    // Per-round scratch. `acc` sinks the PE MACs (the schedule needs a
    // target); the committed values come from the kernel result above.
    std::vector<Value> acc(static_cast<std::size_t>(m), Value(0));
    std::vector<int> accepted(static_cast<std::size_t>(P), 0);
    std::vector<Count> home_tasks(static_cast<std::size_t>(P), 0);
    std::vector<Index> r_row;
    std::vector<Value> r_aval;
    std::vector<Value> r_bval;

    SpmmStats stats;
    stats.rounds = K;
    stats.perPeTasks.assign(static_cast<std::size_t>(P), 0);
    Cycle now = 0;

    for (Index k = 0; k < K; ++k) {
        // Round-k task stream: B column k's non-zeros in ascending inner
        // index j, each expanding A column j — the sparse B-column fetch
        // that replaces execute()'s dense-column stream.
        r_row.clear();
        r_aval.clear();
        r_bval.clear();
        const Count b_begin = b.colPtr()[static_cast<std::size_t>(k)];
        const Count b_end = b.colPtr()[static_cast<std::size_t>(k) + 1];
        for (Count p = b_begin; p < b_end; ++p) {
            const Index j = b.rowId()[static_cast<std::size_t>(p)];
            const Value bv = b.val()[static_cast<std::size_t>(p)];
            for (Count q = a.colPtr()[static_cast<std::size_t>(j)];
                 q < a.colPtr()[static_cast<std::size_t>(j) + 1]; ++q) {
                r_row.push_back(a.rowId()[static_cast<std::size_t>(q)]);
                r_aval.push_back(a.val()[static_cast<std::size_t>(q)]);
                r_bval.push_back(bv);
            }
        }
        const std::size_t n_flits = r_row.size();

        // Event-step the round: the same TDQ-2 per-cycle dynamics as
        // execute()'s simulateRound. Both engines step every round —
        // the task stream changes with k, so there is no recurring
        // entry state the batched engine could replay.
        std::fill(acc.begin(), acc.end(), Value(0));
        std::fill(home_tasks.begin(), home_tasks.end(), 0);
        for (auto &pe : pes) pe.resetRound();
        if (use_net) net.setArbitration(static_cast<int>(now & 1));
        const Count raw_before = rawStallsOf(pes);
        const Cycle round_start = now;
        std::size_t next = 0;
        std::vector<std::size_t> port_next(static_cast<std::size_t>(P));
        std::size_t lanes_done = 0;
        for (int p = 0; p < P; ++p) {
            port_next[static_cast<std::size_t>(p)] =
                static_cast<std::size_t>(p);
            if (static_cast<std::size_t>(p) >= n_flits) ++lanes_done;
        }

        auto deliver = [&](std::size_t f) -> bool {
            int home = partition.owner(r_row[f]);
            int target;
            if (sharer.hops() > 0) {
                target = sharer.choose(home, pes, &accepted, accept_cap);
            } else {
                target =
                    (accepted[static_cast<std::size_t>(home)] < accept_cap &&
                     pes[static_cast<std::size_t>(home)].canAccept())
                        ? home : -1;
            }
            if (target < 0) return false;
            Task t{r_row[f], r_aval[f], r_bval[f], home};
            if (!pes[static_cast<std::size_t>(target)].enqueue(t))
                return false;
            ++accepted[static_cast<std::size_t>(target)];
            ++home_tasks[static_cast<std::size_t>(home)];
            return true;
        };

        while (true) {
            for (auto &pe : pes) pe.tick(now, acc);

            std::fill(accepted.begin(), accepted.end(), 0);

            if (use_net) {
                net.tick(now, [&](const Flit &flit, int out_port) {
                    if (out_port != flit.destPe)
                        panic("Omega routing invariant violated");
                    int home = flit.destPe;
                    int target;
                    if (sharer.hops() > 0) {
                        target = sharer.choose(home, pes, &accepted,
                                               accept_cap);
                    } else {
                        target = accepted[static_cast<std::size_t>(home)] <
                                 accept_cap ? home : -1;
                    }
                    if (target < 0) return false;
                    if (!pes[static_cast<std::size_t>(target)]
                             .enqueue(flit.task))
                        return false;
                    ++accepted[static_cast<std::size_t>(target)];
                    ++home_tasks[static_cast<std::size_t>(home)];
                    return true;
                });
                int injected = 0;
                for (int p = 0; p < P && injected < inject_width; ++p) {
                    std::size_t &cursor =
                        port_next[static_cast<std::size_t>(p)];
                    if (cursor >= n_flits) continue;
                    int home = partition.owner(r_row[cursor]);
                    Flit flit{Task{r_row[cursor], r_aval[cursor],
                                   r_bval[cursor], home},
                              home};
                    if (!net.inject(flit, p)) continue;
                    cursor += static_cast<std::size_t>(P);
                    ++injected;
                    if (cursor >= n_flits) ++lanes_done;
                }
            } else {
                int injected = 0;
                while (next < n_flits && injected < inject_width) {
                    if (!deliver(next)) break;
                    ++next;
                    ++injected;
                }
            }

            ++now;
            if (now - round_start > cfg_.maxCyclesPerRound)
                panic("SpmmEngine: round watchdog expired");

            bool stream_done = use_net
                ? (lanes_done == static_cast<std::size_t>(P))
                : (next >= n_flits);
            if (!stream_done) continue;
            if (use_net && !net.empty()) continue;
            bool done = true;
            for (const auto &pe : pes) {
                if (!pe.drained(now)) {
                    done = false;
                    break;
                }
            }
            if (done) break;
        }
        ++stats.roundsSimulated;

        // Traffic accounting and roofline composition (DESIGN.md §11):
        // the A-task stream, the fetched B column, and the written
        // sparse C column (values + row ids), plus any migration bytes
        // billed from the previous round's rebalance.
        const Count out_nnz =
            c.colPtr()[static_cast<std::size_t>(k) + 1] -
            c.colPtr()[static_cast<std::size_t>(k)];
        MemoryTraffic round_traffic = mem.spgemmRoundTraffic(
            static_cast<Count>(n_flits), b_end - b_begin, out_nnz);
        round_traffic.migrationBytes = pending_migration_bytes;
        pending_migration_bytes = 0;
        stats.traffic += round_traffic;
        Cycle round_duration = now - round_start;
        const Cycle bw_floor = mem.floorCycles(round_traffic.total());
        stats.memoryCycles += bw_floor;
        if (bw_floor > round_duration) {
            ++stats.bwBoundRounds;
            now += bw_floor - round_duration;
            round_duration = bw_floor;
        }

        stats.roundCycles.push_back(round_duration);
        Count round_tasks = 0;
        RoundObservation obs;
        obs.peWork = home_tasks;
        obs.drainCycle.resize(static_cast<std::size_t>(P));
        for (int p = 0; p < P; ++p) {
            const Pe &pe = pes[static_cast<std::size_t>(p)];
            Count t = pe.tasksThisRound();
            round_tasks += t;
            stats.perPeTasks[static_cast<std::size_t>(p)] += t;
            Cycle last = pe.lastBusyCycle();
            obs.drainCycle[static_cast<std::size_t>(p)] =
                (t > 0 && last >= round_start) ? last - round_start : 0;
        }
        stats.tasks += round_tasks;
        stats.idealCycles += (round_tasks + P - 1) / P;
        stats.rawStalls += rawStallsOf(pes) - raw_before;

        // Observe after every round, the last included: frontier kernels
        // chain 1-round SpGEMMs over a carried partition, so this is the
        // only observation those rounds would ever produce.
        std::vector<int> owners_before;
        if (rebalance->wantsObservations())
            owners_before = partition.owners();
        rebalance->observeAndAdjust(obs, row_work, partition);
        if (!owners_before.empty()) {
            const Count mig = mem.migrationBytes(
                owners_before, partition.owners(), row_work);
            if (k + 1 < K) {
                pending_migration_bytes = mig;
            } else {
                // No next round to bill the floor to; account the bytes.
                stats.traffic.migrationBytes += mig;
            }
        }
    }

    stats.cycles = now;
    stats.syncCycles = std::max<Cycle>(0, stats.cycles - stats.idealCycles);
    stats.utilization = stats.cycles > 0
        ? static_cast<double>(stats.tasks) /
          (static_cast<double>(P) * static_cast<double>(stats.cycles))
        : 0.0;
    stats.rowsSwitched = rebalance->totalRowsMoved();
    stats.convergedRound = rebalance->convergedRound();
    for (const auto &pe : pes) {
        stats.peakQueueDepth =
            std::max(stats.peakQueueDepth, pe.peakQueueDepth());
    }
    if (use_net) stats.peakNetworkDepth = net.peakBufferDepth();
    return {std::move(c), std::move(stats)};
}

} // namespace awb
