/**
 * @file
 * Cycle-accurate AWB-SPMM engine (paper Figs. 7 and 12): computes
 * C = A × B for a sparse A (CSC) and dense B, streaming B column by
 * column ("rounds", Eq. 4) through either
 *
 *  - TDQ-1: dense-format scan of a general-sparse operand (the X×W SPMM);
 *    a configurable scan width extracts non-zeros into per-PE task queues;
 *  - TDQ-2: CSC non-zero stream routed by the Omega network (the A×(XW)
 *    SPMM over the ultra-sparse adjacency).
 *
 * Dynamic local sharing diverts tasks to under-loaded neighbour PEs at
 * enqueue time; between rounds the configuration's RebalancePolicy
 * (accel/policy.hpp — the paper's RemoteSwitcher for Designs C/D,
 * arbitrary registered policies otherwise) observes the round and may
 * rewrite the row map until it converges, after which the tuned map is
 * reused for the remaining columns. A per-column barrier separates rounds
 * (§3.3: synchronization happens when a full column of C is complete).
 *
 * Two implementations share one execution loop (AccelConfig::engine):
 *
 *  - EngineKind::Event steps every non-zero of every round;
 *  - EngineKind::Batched exploits that a round's timing is a pure
 *    function of its entry state — the row partition, the PE arbiter
 *    cursors and the Omega arbitration parity; task *values* never feed
 *    back into control — so it event-steps each distinct entry state
 *    once and replays cached per-round aggregates for repeats. Once the
 *    rebalance policy converges the state recurs and whole rounds
 *    advance without simulation, which is what makes Reddit-scale
 *    cycle-mode sweeps tractable. Timing statistics are bit-identical
 *    to the event engine by construction (DESIGN.md §6); only the
 *    floating-point accumulation order of replayed columns differs.
 */

#pragma once

#include <string>
#include <vector>

#include "accel/config.hpp"
#include "accel/row_map.hpp"
#include "model/memory_model.hpp"
#include "sparse/csc.hpp"
#include "sparse/dense.hpp"

namespace awb {

/** Which task-distribution path feeds the PEs. */
enum class TdqKind
{
    Tdq1DenseScan,  ///< operand stored dense, scanned with zero-skip
    Tdq2OmegaCsc,   ///< operand in CSC, routed through the Omega network
};

/** Cycle-level results of one SPMM execution. */
struct SpmmStats
{
    std::string label;
    Cycle cycles = 0;          ///< total execution cycles (all rounds)
    Count tasks = 0;           ///< MAC operations executed
    Cycle idealCycles = 0;     ///< sum over rounds of ceil(tasks_r / P)
    Cycle syncCycles = 0;      ///< cycles - idealCycles (barrier waiting)
    double utilization = 0.0;  ///< tasks / (P * cycles)
    std::size_t peakQueueDepth = 0;    ///< worst per-PE TQ occupancy
    std::size_t peakNetworkDepth = 0;  ///< worst Omega buffer occupancy
    Count rounds = 0;
    /** Rounds that were event-stepped: == rounds for EngineKind::Event;
     *  smaller under EngineKind::Batched whenever cached round-entry
     *  states were replayed instead of simulated. */
    Count roundsSimulated = 0;
    Count rowsSwitched = 0;    ///< rows moved by remote switching
    Count convergedRound = -1; ///< auto-tuning convergence round
    Count rawStalls = 0;       ///< cycles lost to RaW hazards (summed)
    /** Off-chip traffic accounted by the memory model (DESIGN.md §8);
     *  filled on every platform, unconstrained included. */
    MemoryTraffic traffic;
    /** Sum over rounds of the bandwidth-bound cycle floor; 0 on an
     *  unconstrained platform. */
    Cycle memoryCycles = 0;
    /** Rounds whose bandwidth floor exceeded their compute cycles (the
     *  round was stretched to the floor). */
    Count bwBoundRounds = 0;
    std::vector<Cycle> roundCycles;   ///< per-round duration incl. any
                                      ///< bandwidth stretch (pipelining)
    std::vector<Count> perPeTasks;    ///< executed tasks per PE (heat map)
};

/** Value-semantics result of one SPMM execution. */
struct SpmmResult
{
    DenseMatrix c;    ///< the dense result matrix (functionally exact)
    SpmmStats stats;  ///< cycle-level results
};

/** Value-semantics result of one sparse-output SpGEMM execution. */
struct SpgemmResult
{
    CscMatrix c;      ///< the sparse result matrix (functionally exact)
    SpmmStats stats;  ///< cycle-level results
};

/**
 * The SPMM engine. One instance may execute several SPMMs; each
 * execution's partition argument carries tuned row maps across
 * invocations (the adjacency matrix is reused every layer, so its map
 * keeps improving). Most callers should not drive the engine directly:
 * sim::Session (sim/session.hpp) schedules whole workload graphs and
 * carries the tuned row maps automatically.
 */
class SpmmEngine
{
  public:
    /** fatal() with a descriptive message when the config is invalid. */
    explicit SpmmEngine(const AccelConfig &cfg);

    /**
     * Execute C = a × b cycle-accurately.
     *
     * @param a          sparse operand in CSC
     * @param b          dense operand (rows == a.cols())
     * @param kind       distribution path (TDQ-1 or TDQ-2)
     * @param partition  row map; mutated by the rebalance policy
     */
    SpmmResult execute(const CscMatrix &a, const DenseMatrix &b,
                       TdqKind kind, RowPartition &partition);

    /**
     * Execute the sparse-output SpGEMM C = a × b cycle-accurately
     * (DESIGN.md §11). Rounds are B's sparse columns streamed through
     * the TDQ-2/Omega path; each round's task stream expands B column
     * k's non-zeros (ascending inner index) against the matching A
     * columns, so per-round task counts track the *output* work, not a
     * fixed non-zero stream. Values are materialized by the functional
     * kernel (kernels::spgemm) — bit-identical across engines — while
     * the event schedule prices the work. Differences from execute():
     * every round is event-stepped (roundsSimulated == rounds under
     * both engines: the task stream changes per round, so there is no
     * recurring entry state to replay), and the rebalance policy
     * observes after *every* round including the last (frontier kernels
     * chain 1-round SpGEMMs over a carried partition, so the last
     * round's observation is the only one they would ever get);
     * migration ordered after the final round bills its bytes to
     * `stats.traffic.migrationBytes` without a bandwidth floor.
     *
     * @param a          sparse left operand in CSC
     * @param b          sparse right operand in CSC (rows == a.cols())
     * @param partition  row map; mutated by the rebalance policy
     */
    SpgemmResult executeSpgemm(const CscMatrix &a, const CscMatrix &b,
                               RowPartition &partition);

  private:
    AccelConfig cfg_;
};

} // namespace awb
