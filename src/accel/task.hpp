/**
 * @file
 * The unit of work flowing through the accelerator: one scalar
 * multiply-accumulate a(row, j) * b(j, k) destined for result element
 * C(row, k). Column indices are implicit (the engine processes one column
 * k per round, and b is captured by value at dispatch).
 */

#pragma once

#include "common/types.hpp"

namespace awb {

/** One MAC task. */
struct Task
{
    Index row;    ///< result row (row of the sparse operand)
    Value a;      ///< sparse-operand value
    Value b;      ///< dense-operand value b(j, k), broadcast per column j
    int homePe;   ///< PE whose ACC bank owns `row` (result returns here
                  ///< when the task was diverted by local sharing)
};

/** A task wrapped with its Omega-network destination. */
struct Flit
{
    Task task;
    int destPe;
};

} // namespace awb
