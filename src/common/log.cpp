#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace awb {

namespace log_detail {

namespace {
LogLevel gLevel = LogLevel::Info;

const char *
tag(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Info:  return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}
} // namespace

LogLevel level() { return gLevel; }

void setLevel(LogLevel lvl) { gLevel = lvl; }

void
emit(LogLevel lvl, const std::string &msg)
{
    if (static_cast<int>(lvl) > static_cast<int>(gLevel)) return;
    std::fprintf(stderr, "[%s] %s\n", tag(lvl), msg.c_str());
}

} // namespace log_detail

void
fatal(const std::string &msg)
{
    log_detail::emit(LogLevel::Error, "fatal: " + msg);
    std::exit(1);
}

void
panic(const std::string &msg)
{
    log_detail::emit(LogLevel::Error, "panic: " + msg);
    std::abort();
}

void warn(const std::string &msg) { log_detail::emit(LogLevel::Warn, msg); }

void inform(const std::string &msg) { log_detail::emit(LogLevel::Info, msg); }

void debug(const std::string &msg) { log_detail::emit(LogLevel::Debug, msg); }

} // namespace awb
