/**
 * @file
 * Minimal leveled logging for the simulator and benches.
 *
 * Follows the gem5 fatal()/panic()/warn()/inform() split: fatal() is a user
 * error (bad configuration) and exits cleanly; panic() is an internal
 * invariant violation and aborts.
 */

#pragma once

#include <sstream>
#include <string>

namespace awb {

/** Log verbosity levels, most severe first. */
enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

namespace log_detail {

/** Current global verbosity (default Info). */
LogLevel level();

/** Set global verbosity. */
void setLevel(LogLevel lvl);

/** Emit a formatted line to stderr with a level tag. */
void emit(LogLevel lvl, const std::string &msg);

} // namespace log_detail

/** Set the global log verbosity. */
inline void setLogLevel(LogLevel lvl) { log_detail::setLevel(lvl); }

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal invariant violation and abort(). */
[[noreturn]] void panic(const std::string &msg);

/** Report a suspicious-but-survivable condition. */
void warn(const std::string &msg);

/** Report normal operating status. */
void inform(const std::string &msg);

/** Verbose diagnostic output, suppressed unless level >= Debug. */
void debug(const std::string &msg);

} // namespace awb
