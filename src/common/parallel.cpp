#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace awb {

namespace {

std::atomic<int> g_intra_threads{0};

/** Set while a worker executes chunks; nested calls run inline. */
thread_local bool t_in_parallel = false;

} // namespace

void
setIntraThreads(int n)
{
    g_intra_threads.store(n < 0 ? 0 : n, std::memory_order_relaxed);
}

int
intraThreads()
{
    int n = g_intra_threads.load(std::memory_order_relaxed);
    if (n > 0) return n;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

bool
shouldParallelize(std::uint64_t work)
{
    return work >= kParallelMinWork && intraThreads() > 1 && !t_in_parallel;
}

void
parallelFor(std::size_t total, std::size_t grain,
            const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (total == 0) return;
    grain = std::max<std::size_t>(grain, 1);
    const std::size_t n_chunks = (total + grain - 1) / grain;
    const int workers = std::min<std::size_t>(
        static_cast<std::size_t>(intraThreads()), n_chunks);
    if (workers <= 1 || t_in_parallel || n_chunks <= 1) {
        fn(0, total);
        return;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        t_in_parallel = true;
        for (;;) {
            std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
            if (c >= n_chunks) break;
            std::size_t begin = c * grain;
            std::size_t end = std::min(begin + grain, total);
            fn(begin, end);
        }
        t_in_parallel = false;
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers) - 1);
    for (int t = 1; t < workers; ++t) pool.emplace_back(worker);
    worker();  // the calling thread participates
    for (auto &t : pool) t.join();
}

} // namespace awb
