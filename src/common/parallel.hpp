/**
 * @file
 * Deterministic chunked parallelism for the functional hot loops
 * (DESIGN.md §13).
 *
 * parallelFor() splits an index range into fixed-size chunks whose
 * boundaries depend only on (total, grain) — never on the worker count —
 * and lets a small thread pool claim chunks in any order. Callers
 * guarantee chunks write disjoint outputs and keep each output element's
 * accumulation order internal to one chunk, so results are bit-identical
 * at any thread count (including 1). The sweep engine already
 * parallelizes across grid points; this layer parallelizes inside one
 * large point (Reddit@4096) where a single SPMM dominates wall clock.
 *
 * Nested calls degrade to serial execution: a parallelFor() issued from
 * inside a worker runs inline, so sweeps that parallelize across points
 * do not multiply their thread count.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace awb {

/**
 * Set the process-wide worker count for intra-point parallelism
 * (`awbsim --intra-threads N`). 0 (the default) means hardware
 * concurrency; 1 forces serial execution everywhere.
 */
void setIntraThreads(int n);

/** The resolved worker count (>= 1). */
int intraThreads();

/** Work below this many scalar operations is not worth spawning for. */
inline constexpr std::uint64_t kParallelMinWork = 1ULL << 20;

/**
 * True when a loop with `work` total scalar operations should use
 * parallelFor: enough work, more than one worker configured, and not
 * already inside a parallelFor worker.
 */
bool shouldParallelize(std::uint64_t work);

/**
 * Invoke fn(begin, end) over consecutive chunks covering [0, total).
 * Chunk boundaries are multiples of `grain` (the last chunk may be
 * short), fixed for a given (total, grain) regardless of worker count.
 * Runs inline when shouldParallelize-style conditions do not hold
 * (single worker, single chunk, or nested call).
 */
void parallelFor(std::size_t total, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)> &fn);

} // namespace awb
