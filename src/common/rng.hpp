/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the repository (synthetic dataset
 * generation, weight initialization, property-test inputs) draw from this
 * PCG32 generator so that every experiment is reproducible from a seed.
 */

#pragma once

#include <cstdint>
#include <cmath>

#include "common/types.hpp"

namespace awb {

/** splitmix64 finalizer (Vigna); full-avalanche mixing used everywhere a
 *  derived seed must be decorrelated from the value it derives from
 *  (per-point sweep seeds, per-stream serving seeds). */
inline std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30U)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27U)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31U);
}

/**
 * PCG32 pseudo-random generator (O'Neill, 2014). Small, fast, and with
 * much better statistical quality than LCGs of the same size.
 */
class Rng
{
  public:
    /** Construct from a seed and an optional stream-selector. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t seq = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0U;
        inc_ = (seq << 1U) | 1U;
        nextU32();
        state_ += seed;
        nextU32();
    }

    /** Next raw 32-bit draw. */
    std::uint32_t
    nextU32()
    {
        std::uint64_t oldstate = state_;
        state_ = oldstate * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((oldstate >> 18U) ^ oldstate) >> 27U);
        std::uint32_t rot = static_cast<std::uint32_t>(oldstate >> 59U);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31U));
    }

    /** Uniform integer in [0, bound), bias-free via rejection. */
    std::uint32_t
    nextBounded(std::uint32_t bound)
    {
        if (bound <= 1) return 0;
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = nextU32();
            if (r >= threshold) return r % bound;
        }
    }

    /** Uniform index in [0, n). */
    Index
    nextIndex(Index n)
    {
        return static_cast<Index>(nextBounded(static_cast<std::uint32_t>(n)));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return nextU32() * (1.0 / 4294967296.0);
    }

    /** Uniform float in [lo, hi). */
    float
    nextFloat(float lo, float hi)
    {
        return lo + static_cast<float>(nextDouble()) * (hi - lo);
    }

    /** Standard normal draw (Box-Muller, one value per call). */
    double
    nextGaussian()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u, v, s;
        do {
            u = 2.0 * nextDouble() - 1.0;
            v = 2.0 * nextDouble() - 1.0;
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        double m = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * m;
        haveSpare_ = true;
        return u * m;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace awb
