#include "common/stats.hpp"

#include <sstream>

namespace awb {

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_) {
        os << kv.second.name() << " " << kv.second.value() << "\n";
    }
    return os.str();
}

} // namespace awb
