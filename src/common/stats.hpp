/**
 * @file
 * Lightweight statistics primitives for the simulator.
 *
 * Modelled loosely on the gem5 stats package: named scalar counters and
 * histograms registered in a StatSet that can be dumped as text. Every
 * simulated component owns counters here rather than ad-hoc ints so that
 * benches can introspect utilization, queue occupancy, stall causes, etc.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace awb {

/** Named monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void inc(Count v = 1) { value_ += v; }
    void set(Count v) { value_ = v; }
    Count value() const { return value_; }
    const std::string &name() const { return name_; }
    void reset() { value_ = 0; }

  private:
    std::string name_;
    Count value_ = 0;
};

/**
 * Running summary statistics (min/max/mean) plus a fixed-width histogram
 * over a configurable range. Out-of-range samples clamp into the first or
 * last bucket, mirroring hardware saturating counters.
 */
class Histogram
{
  public:
    Histogram() : Histogram("", 0.0, 1.0, 10) {}

    Histogram(std::string name, double lo, double hi, int buckets)
        : name_(std::move(name)), lo_(lo), hi_(hi),
          counts_(static_cast<std::size_t>(std::max(buckets, 1)), 0)
    {}

    /** Record one sample. */
    void
    sample(double v)
    {
        ++n_;
        sum_ += v;
        min_ = (n_ == 1) ? v : std::min(min_, v);
        max_ = (n_ == 1) ? v : std::max(max_, v);
        double t = (v - lo_) / (hi_ - lo_);
        auto b = static_cast<std::int64_t>(t * static_cast<double>(size()));
        b = std::clamp<std::int64_t>(b, 0,
                                     static_cast<std::int64_t>(size()) - 1);
        ++counts_[static_cast<std::size_t>(b)];
    }

    Count samples() const { return n_; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    double minValue() const { return n_ ? min_ : 0.0; }
    double maxValue() const { return n_ ? max_ : 0.0; }
    std::size_t size() const { return counts_.size(); }
    Count bucket(std::size_t i) const { return counts_[i]; }
    const std::string &name() const { return name_; }

    /** Lower edge of bucket i. */
    double
    bucketLo(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * static_cast<double>(i) /
               static_cast<double>(size());
    }

    void
    reset()
    {
        n_ = 0;
        sum_ = 0.0;
        std::fill(counts_.begin(), counts_.end(), 0);
    }

  private:
    std::string name_;
    double lo_, hi_;
    Count n_ = 0;
    double sum_ = 0.0, min_ = 0.0, max_ = 0.0;
    std::vector<Count> counts_;
};

/**
 * A named collection of counters owned by one simulated component.
 * Counters are created on first use and live for the set's lifetime.
 */
class StatSet
{
  public:
    explicit StatSet(std::string prefix = "") : prefix_(std::move(prefix)) {}

    /** Get-or-create a counter by (unprefixed) name. */
    Counter &
    counter(const std::string &name)
    {
        auto it = counters_.find(name);
        if (it == counters_.end()) {
            it = counters_.emplace(name, Counter(prefix_ + name)).first;
        }
        return it->second;
    }

    /** Look up an existing counter; returns nullptr if absent. */
    const Counter *
    find(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? nullptr : &it->second;
    }

    /** Dump all counters as "name value" lines. */
    std::string dump() const;

    void
    reset()
    {
        for (auto &kv : counters_) kv.second.reset();
    }

    const std::map<std::string, Counter> &all() const { return counters_; }

  private:
    std::string prefix_;
    std::map<std::string, Counter> counters_;
};

} // namespace awb
