#include "common/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/log.hpp"

namespace awb {

std::string
humanCount(double v)
{
    char buf[64];
    double a = std::fabs(v);
    if (a >= 1e12) {
        std::snprintf(buf, sizeof(buf), "%.1fT", v / 1e12);
    } else if (a >= 1e9) {
        std::snprintf(buf, sizeof(buf), "%.1fG", v / 1e9);
    } else if (a >= 1e6) {
        std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
    } else if (a >= 1e3) {
        std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    }
    return buf;
}

std::string
percent(double frac)
{
    char buf[32];
    double pct = frac * 100.0;
    // Adaptive precision: adjacency densities reach 0.0073% (Table 1).
    if (pct != 0.0 && std::fabs(pct) < 0.1) {
        std::snprintf(buf, sizeof(buf), "%.4f%%", pct);
    } else {
        std::snprintf(buf, sizeof(buf), "%.1f%%", pct);
    }
    return buf;
}

std::string
fixed(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size()) {
        panic("Table row arity mismatch: expected " +
              std::to_string(header_.size()) + " got " +
              std::to_string(row.size()));
    }
    rows_.push_back(std::move(row));
}

std::string
Table::render() const
{
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto line = [&](char fill, char join) {
        std::string s;
        s.push_back(join);
        for (std::size_t c = 0; c < width.size(); ++c) {
            s.append(width[c] + 2, fill);
            s.push_back(join);
        }
        s.push_back('\n');
        return s;
    };
    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string s = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            s += " " + row[c];
            s.append(width[c] - row[c].size() + 1, ' ');
            s += "|";
        }
        s += "\n";
        return s;
    };

    std::string out = line('-', '+');
    out += renderRow(header_);
    out += line('=', '+');
    for (const auto &row : rows_) out += renderRow(row);
    out += line('-', '+');
    return out;
}

} // namespace awb
