/**
 * @file
 * ASCII table rendering used by the bench harnesses to print paper-style
 * tables (Table 1/2/3, Figure 14/15 series) to stdout.
 */

#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace awb {

/** Format a count the way the paper does: 999.7K, 62.3M, 257G, ... */
std::string humanCount(double v);

/** Format a ratio as a percentage with one decimal, e.g. "63.4%". */
std::string percent(double frac);

/** Format a double with the given number of decimals. */
std::string fixed(double v, int decimals);

/**
 * Column-aligned ASCII table. Rows are added as string vectors; render()
 * pads every column to its widest cell and draws a header separator.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one data row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Render with column alignment and +-- style separators. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace awb
