#include "common/text.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace awb {

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    std::iota(row.begin(), row.end(), std::size_t{0});
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t up = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[b.size()];
}

std::string
nearestOf(const std::string &s, const std::vector<std::string> &candidates)
{
    std::string best;
    std::size_t best_d = std::numeric_limits<std::size_t>::max();
    for (const std::string &c : candidates) {
        std::size_t d = editDistance(s, c);
        if (d < best_d) {
            best_d = d;
            best = c;
        }
    }
    return best;
}

} // namespace awb
