/**
 * @file
 * Small text utilities shared by the CLI registries: Levenshtein edit
 * distance and nearest-name lookup for "did you mean ...?" suggestions.
 * The policy registry (accel/policy.cpp) and the platform table
 * (model/memory_model.cpp) both route unknown-name errors through
 * nearestOf so every string-keyed surface fails the same helpful way.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace awb {

/** Levenshtein distance between two strings. */
std::size_t editDistance(const std::string &a, const std::string &b);

/** The candidate closest to `s` by edit distance; earlier candidates win
 *  ties. Empty string when `candidates` is empty. */
std::string nearestOf(const std::string &s,
                      const std::vector<std::string> &candidates);

} // namespace awb
