/**
 * @file
 * Fundamental scalar type aliases used across the AWB-GCN code base.
 */

#pragma once

#include <cstdint>

namespace awb {

/** Row/column index into a matrix. 32-bit: the largest evaluated graph
 *  (Reddit, 233K nodes) and its edge counts fit comfortably. */
using Index = std::int32_t;

/** Counts that may exceed 2^31 (cycle counts, multiply-op counts — Table 2
 *  reaches 258G ops for Nell). */
using Count = std::int64_t;

/** Simulated clock cycle. */
using Cycle = std::int64_t;

/** Matrix element value type. The hardware uses floating-point MACs. */
using Value = float;

} // namespace awb
