/**
 * @file
 * main() of the unified `awbsim` experiment driver. All behaviour lives
 * in driver.cpp; scenario definitions self-register from the scenario
 * TUs linked into this binary.
 */

#include "driver/driver.hpp"

int
main(int argc, char **argv)
{
    return awb::driver::driverMain(argc, argv);
}
