/**
 * @file
 * Dynamic-graph streaming benchmark (`awbsim --bench-dynamic`): runs
 * churn-gcn epochs (DESIGN.md §12) on each dataset, once per balance
 * policy, and records the per-epoch carried-vs-fresh drift curve plus
 * the convergence half-life — the first epoch at which a carried
 * partition's cycles drift past the tolerance relative to a freshly
 * tuned one. Four gates ride on the exit code: determinism (two event
 * runs must produce identical cycles, tasks and half-life), engine
 * equivalence (batched == event statistics), rebuild identity (the
 * DeltaCsr-maintained matrix after every batch bit-equals a
 * from-scratch rebuild of the live edge set), and trajectory agreement
 * (the round-level model's per-epoch churn/migration trajectory equals
 * the cycle engine's — epoch boundaries are fidelity-independent).
 * Emits the `awbsim-bench-dynamic-v1` JSON document
 * (BENCH_dynamic.json), tracked in-repo and diffed by
 * tools/check_bench.py in CI. Implemented in bench/bench_dynamic.cpp
 * (compiled into awbsim).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace awb::driver {

/** Grid axes and knobs of one streaming benchmark run. */
struct BenchDynamicOptions
{
    std::vector<std::string> datasets = {"cora", "citeseer"};
    /** Balance-policy axis; "baseline" is prepended when absent (its
     *  carried partition equals the fresh one, anchoring drift 0). */
    std::vector<std::string> policies = {"baseline", "rescratch", "rechunk",
                                         "delta-greedy", "delta-threshold",
                                         "work-steal", "remote-d"};
    /** 256 PEs (few rows per PE) with growth-dominated churn is the
     *  regime where a frozen partition visibly ages: hub rows fatten
     *  under preferential attachment and single PEs go hot. At 64 PEs
     *  the same churn averages out and every half-life is "never". */
    int pes = 256;             ///< PE-array size (power of two for Omega)
    Count epochs = 10;         ///< churn batches per run
    Count eventsPerEpoch = 1024;
    Index denseCols = 8;       ///< feature-block columns per epoch
    double insertFrac = 0.9;   ///< churn insert:delete mix (growth-heavy)
    double driftTolerance = 0.10;
    std::uint64_t seed = 1;
    double scale = 1.0;
    std::string platform = "unconstrained";
    std::string jsonPath = "BENCH_dynamic.json";
};

/**
 * Run the streaming grid, print a half-life table, write the JSON
 * document. Returns 0 on success, 1 when any gate failed
 * (non-deterministic, engine mismatch, rebuild mismatch, or
 * model-trajectory mismatch) — the gate CI relies on.
 */
int runBenchDynamic(const BenchDynamicOptions &opts);

/** CLI front-end for `awbsim --bench-dynamic`; returns the exit code. */
int runBenchDynamicCli(int argc, char **argv, int first);

} // namespace awb::driver
