/**
 * @file
 * Engine benchmark harness (`awbsim --bench-engine`): runs the same
 * adjacency SPMM (TDQ-2, the paper's A×(XW) kernel) through both cycle
 * engines — per-non-zero event stepping and the round-batched engine
 * (DESIGN.md §6) — across a dataset × PE × policy grid, measuring
 * wall-clock and simulated cycles, cross-checking that the two engines
 * agree bit for bit, and optionally adding a Reddit-scale batched-only
 * point that the event engine cannot complete in reasonable time.
 *
 * Emits the `awbsim-bench-engine-v1` JSON document (BENCH_engine.json),
 * the repo's tracked perf-trajectory baseline: CI uploads it as the
 * `bench-engine` artifact on every push. Implemented in
 * bench/bench_engine.cpp (compiled into the awbsim binary).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace awb::driver {

/** Grid axes and knobs of one benchmark run. */
struct BenchEngineOptions
{
    std::vector<std::string> datasets = {"cora", "citeseer", "pubmed"};
    std::vector<int> peCounts = {64, 256};
    std::vector<std::string> policies = {"baseline", "remote-d"};
    /** Dense-operand column count (rounds). One uniform K makes engine
     *  wall-clocks comparable across datasets; 64 is the Reddit/Nell
     *  hidden dimension, the scale the batched engine exists for. */
    Index k = 64;
    /** When > 0, append a Reddit point at this PE count, run on the
     *  batched engine only. */
    int redditPes = 0;
    std::string redditPolicy = "remote-d";
    std::uint64_t seed = 1;
    double scale = 1.0;
    std::string jsonPath = "BENCH_engine.json";
};

/**
 * Run the grid, print a table, write the JSON document. Returns 0 on
 * success, 1 when any event/batched pair disagreed on cycles,
 * rowsSwitched or convergedRound (the equivalence gate CI relies on).
 */
int runBenchEngine(const BenchEngineOptions &opts);

/** CLI front-end for `awbsim --bench-engine`; returns the exit code. */
int runBenchEngineCli(int argc, char **argv, int first);

} // namespace awb::driver
