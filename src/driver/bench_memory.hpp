/**
 * @file
 * Cross-platform memory-model baseline (`awbsim --bench-memory`): runs
 * the round-level GCN model (full-scale capable) across a dataset ×
 * policy × platform grid, records the bandwidth-bound share of every
 * point (DESIGN.md §8), verifies the no-op gate — on the
 * `unconstrained` platform the bandwidth floor must never engage
 * (`memory_cycles == 0`, `bw_bound_rounds == 0`), the property that
 * makes the roofline composition the identity; the bit-identity to
 * platform-less configs is locked by tests/test_memory_model.cpp —
 * and emits the `awbsim-bench-memory-v1` JSON document
 * (BENCH_memory.json), tracked in-repo and uploaded by CI as the
 * `bench-memory` artifact with the equivalence gate on the exit code.
 * Implemented in bench/bench_memory.cpp (compiled into awbsim).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace awb::driver {

/** Grid axes and knobs of one memory-model benchmark run. */
struct BenchMemoryOptions
{
    std::vector<std::string> datasets = {"cora", "citeseer", "pubmed",
                                         "nell", "reddit"};
    std::vector<std::string> policies = {"baseline", "remote-d"};
    /** Platform axis; empty = every registered platform. */
    std::vector<std::string> platforms;
    int pes = 1024;  ///< PE-array size (the paper's Table 3 operating point)
    std::uint64_t seed = 1;
    double scale = 1.0;
    std::string jsonPath = "BENCH_memory.json";
};

/**
 * Run the grid, print a table, write the JSON document. Returns 0 on
 * success, 1 when the no-op gate failed (the bandwidth floor engaged
 * on an unconstrained platform) — the gate CI relies on.
 */
int runBenchMemory(const BenchMemoryOptions &opts);

/** CLI front-end for `awbsim --bench-memory`; returns the exit code. */
int runBenchMemoryCli(int argc, char **argv, int first);

} // namespace awb::driver
