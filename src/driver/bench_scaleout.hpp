/**
 * @file
 * Multi-chip scaling baseline (`awbsim --bench-scaleout`): runs the
 * round-level GCN model of one dataset sharded across a chip-count
 * curve × platform grid (DESIGN.md §9), records cycles, halo traffic
 * and chip imbalance per point, verifies the halo gate — halo bytes
 * must be zero at 1 chip and monotone non-decreasing along the chip
 * axis (more chips can only cut more boundary edges) — and emits the
 * `awbsim-bench-scaleout-v1` JSON document (BENCH_scaleout.json),
 * tracked in-repo and diffed by tools/check_bench.py in CI with the
 * gate on the exit code. Implemented in bench/bench_scaleout.cpp
 * (compiled into awbsim).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace awb::driver {

/** Grid axes and knobs of one scale-out benchmark run. */
struct BenchScaleoutOptions
{
    std::string dataset = "reddit";
    std::vector<int> chipCounts = {1, 2, 4, 8, 16};
    std::vector<std::string> platforms = {"d5005-ddr4", "p100-hbm2"};
    std::string policy = "remote-d";
    int pes = 1024;  ///< PE-array size per chip
    std::uint64_t seed = 1;
    double scale = 1.0;
    std::string jsonPath = "BENCH_scaleout.json";
};

/**
 * Run the curve, print a scaling table, write the JSON document.
 * Returns 0 on success, 1 when the halo gate failed (non-zero halo at
 * one chip, or a non-monotone halo curve) — the gate CI relies on.
 */
int runBenchScaleout(const BenchScaleoutOptions &opts);

/** CLI front-end for `awbsim --bench-scaleout`; returns the exit code. */
int runBenchScaleoutCli(int argc, char **argv, int first);

} // namespace awb::driver
