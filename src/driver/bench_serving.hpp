/**
 * @file
 * Serving baseline (`awbsim --bench-serving`): sweeps the open-loop
 * arrival rate over ≥ 2 datasets on the model-fidelity serving stack
 * (DESIGN.md §10), records the throughput-vs-p99 curve, runs one
 * closed-loop experiment per dataset to pin the saturation throughput,
 * verifies the serving gates — request conservation (offered ==
 * completed + dropped + timed out), non-decreasing latency percentiles
 * (p50 ≤ p95 ≤ p99 ≤ p999) and double-run byte-determinism per point —
 * and emits the `awbsim-bench-serving-v1` JSON document
 * (BENCH_serving.json), tracked in-repo and diffed by
 * tools/check_bench.py in CI with the gates on the exit code.
 * Implemented in bench/bench_serving.cpp (compiled into awbsim).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace awb::driver {

/** Grid axes and knobs of one serving benchmark run. */
struct BenchServingOptions
{
    std::vector<std::string> datasets = {"cora", "pubmed"};
    /** Open-loop offered rates (requests/s) of the latency curve; the
     *  span brackets both datasets' saturation knees at 2 devices. */
    std::vector<double> rates = {25000.0,  50000.0,  100000.0,
                                 200000.0, 400000.0, 800000.0};
    std::string discipline = "dyn-batch";
    int devices = 2;
    double durationMs = 10.0;  ///< admission horizon per point
    int clients = 16;          ///< closed-loop saturation population
    std::string policy = "remote-d";
    int pes = 64;
    std::uint64_t seed = 1;
    std::string jsonPath = "BENCH_serving.json";
};

/**
 * Run the curve, print a latency table, write the JSON document.
 * Returns 0 on success, 1 when a serving gate failed.
 */
int runBenchServing(const BenchServingOptions &opts);

/** CLI front-end for `awbsim --bench-serving`; returns the exit code. */
int runBenchServingCli(int argc, char **argv, int first);

} // namespace awb::driver
