/**
 * @file
 * Graph-kernel benchmark (`awbsim --bench-spgemm`): runs BFS and
 * PageRank as iterated sparse-output SpGEMMs (DESIGN.md §11) on one
 * dataset, once per balance policy, and records per-iteration
 * frontier-size and cycle curves plus a rebalance helps/hurts verdict
 * against the static baseline. Four gates ride on the exit code:
 * determinism (two event-engine runs must produce identical cycles and
 * tasks), engine equivalence (batched == event statistics), functional
 * correctness (BFS parent/depth arrays bit-equal the scalar reference;
 * PageRank scores within 1e-6 L1 and converged), and model-traffic
 * equality (PerfModel::runSpgemm traffic byte-equal to the engine for
 * the static baseline). Emits the `awbsim-bench-spgemm-v1` JSON
 * document (BENCH_spgemm.json), tracked in-repo and diffed by
 * tools/check_bench.py in CI. Implemented in bench/bench_spgemm.cpp
 * (compiled into awbsim).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace awb::driver {

/** Grid axes and knobs of one graph-kernel benchmark run. */
struct BenchSpgemmOptions
{
    std::string dataset = "cora";
    /** Balance-policy axis; "baseline" is prepended when absent (the
     *  helps/hurts verdict needs its cycle count). */
    std::vector<std::string> policies = {"baseline", "local-b", "remote-c",
                                         "remote-d", "work-steal"};
    int pes = 64;             ///< PE-array size (power of two for Omega)
    Index source = 0;         ///< BFS source vertex
    double damping = 0.85;    ///< PageRank damping factor
    double tol = 1e-6;        ///< PageRank L1 convergence threshold
    Count maxIters = 200;     ///< PageRank iteration cap
    std::uint64_t seed = 1;
    double scale = 1.0;
    std::string platform = "unconstrained";
    std::string jsonPath = "BENCH_spgemm.json";
};

/**
 * Run both kernels across the policy axis, print a verdict table, write
 * the JSON document. Returns 0 on success, 1 when any gate failed
 * (non-deterministic, engine mismatch, functional mismatch, or
 * model-traffic mismatch) — the gate CI relies on.
 */
int runBenchSpgemm(const BenchSpgemmOptions &opts);

/** CLI front-end for `awbsim --bench-spgemm`; returns the exit code. */
int runBenchSpgemmCli(int argc, char **argv, int first);

} // namespace awb::driver
