#include "driver/driver.hpp"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "accel/policy.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "driver/bench_dynamic.hpp"
#include "driver/bench_engine.hpp"
#include "driver/bench_memory.hpp"
#include "driver/bench_scaleout.hpp"
#include "driver/bench_serving.hpp"
#include "driver/bench_spgemm.hpp"
#include "driver/scenario.hpp"
#include "driver/serve_cli.hpp"
#include "driver/sweep.hpp"
#include "exec/workload_cache.hpp"
#include "graph/datasets.hpp"
#include "model/memory_model.hpp"

namespace awb::driver {

namespace {

/** Resolve a --designs value to a canonical registered policy name;
 *  the registry fatal()s with a near-miss suggestion on a miss. */
std::string
parseDesignCli(const std::string &s)
{
    return PolicyRegistry::instance().get(s).name;
}

void
printUsage()
{
    std::printf(
        "awbsim — AWB-GCN unified experiment driver\n\n"
        "  awbsim --list-scenarios\n"
        "      List every registered paper scenario.\n\n"
        "  awbsim --list-designs\n"
        "      List every registered balance policy (paper designs plus\n"
        "      extensions) usable with --designs.\n\n"
        "  awbsim --list-platforms\n"
        "      List every registered off-chip memory platform usable\n"
        "      with --platforms (DESIGN.md §8).\n\n"
        "  awbsim --list-datasets\n"
        "      List every registered dataset usable with --datasets.\n\n"
        "  Global flags (any command):\n"
        "      --no-cache          disable the process-wide workload and\n"
        "                          round-entry-state caches (DESIGN.md\n"
        "                          §13); results are bit-identical either\n"
        "                          way, only wall clock changes\n"
        "      --intra-threads N   worker threads for intra-point dense\n"
        "                          SPMM loops (0 = hardware concurrency;\n"
        "                          deterministic at any value)\n\n"
        "  awbsim --list-disciplines\n"
        "      List every registered serving batch discipline usable\n"
        "      with --discipline (DESIGN.md §10).\n\n"
        "  awbsim run <scenario ...> [--seed N] [--scale S] [--repeat N]\n"
        "             [--json FILE] [args ...]\n"
        "      Run scenarios by name ('all' = every one). Extra\n"
        "      positional args are passed to the scenarios.\n\n"
        "  awbsim --sweep [options]\n"
        "      Expand and run a configuration grid on a worker pool.\n"
        "      --datasets a,b,..   default cora,citeseer,pubmed,nell,reddit\n"
        "      --designs p1,p2,..  registered policy names or aliases\n"
        "                          (default base,a,b,c,d; see\n"
        "                          --list-designs)\n"
        "      --pes n1,n2,..      PE-array sizes (default 512)\n"
        "      --chips n1,n2,..    accelerator-chip counts the graph is\n"
        "                          row-sharded across (default 1 = one\n"
        "                          chip, the unsharded engine; DESIGN.md\n"
        "                          §9; model/cycle/tdq1/tdq2 modes)\n"
        "      --modes m1,m2,..    of model|cycle|tdq1|tdq2|graphsage|gin|\n"
        "                          khop|bfs|pagerank|churn (default model;\n"
        "                          graphsage/gin/khop run workload graphs\n"
        "                          on the Session API; bfs/pagerank run\n"
        "                          frontier SpGEMM kernels, DESIGN.md §11;\n"
        "                          churn streams edge churn through live\n"
        "                          inference epochs, DESIGN.md §12)\n"
        "      --engine E          cycle-engine implementation for the\n"
        "                          cycle-accurate modes: event (default,\n"
        "                          per-non-zero stepping) or batched\n"
        "                          (round-batched, bit-identical stats,\n"
        "                          Reddit-scale capable; DESIGN.md §6)\n"
        "      --platforms p1,..   off-chip memory platform axis (default\n"
        "                          unconstrained = no bandwidth bound;\n"
        "                          see --list-platforms; DESIGN.md §8)\n"
        "      --scale S           dataset node-count scale (default 1.0)\n"
        "      --seed N            global seed (default 1)\n"
        "      --threads N         worker threads (default: hardware)\n"
        "      --repeats N         per-point repeats, checks determinism\n"
        "      --json FILE         write JSON document (default\n"
        "                          awbsim_sweep.json; '-' = stdout)\n"
        "      --no-table          suppress the ASCII result table\n"
        "      --progress          per-point progress lines on stderr\n\n"
        "  awbsim --bench-engine [options]\n"
        "      Benchmark the event vs. round-batched cycle engines\n"
        "      (wall-clock + simulated cycles per dataset x PE x policy,\n"
        "      cross-checked bit-identical) and write the\n"
        "      awbsim-bench-engine-v1 JSON perf baseline.\n"
        "      --datasets a,b,..   default cora,citeseer,pubmed\n"
        "      --pes n1,n2,..      default 64,256\n"
        "      --policies p1,..    default baseline,remote-d\n"
        "      --k N               dense-operand columns (default 64)\n"
        "      --reddit-pes N      also run Reddit at N PEs on the\n"
        "                          batched engine only (default 0 = skip)\n"
        "      --reddit-policy P   policy for the Reddit point\n"
        "                          (default remote-d)\n"
        "      --seed N / --scale S / --json FILE (default\n"
        "                          BENCH_engine.json)\n\n"
        "  awbsim --bench-memory [options]\n"
        "      Cross-platform memory-model baseline: run the round-level\n"
        "      GCN model across dataset x policy x platform, verify the\n"
        "      unconstrained platform is a timing no-op (the equivalence\n"
        "      gate CI relies on) and write the awbsim-bench-memory-v1\n"
        "      JSON document (BENCH_memory.json).\n"
        "      --datasets a,b,..   default cora,citeseer,pubmed,nell,"
        "reddit\n"
        "      --policies p1,..    default baseline,remote-d\n"
        "      --platforms p1,..   default every registered platform\n"
        "      --pes N             PE-array size (default 1024)\n"
        "      --seed N / --scale S / --json FILE (default\n"
        "                          BENCH_memory.json)\n\n"
        "  awbsim --bench-scaleout [options]\n"
        "      Multi-chip scaling baseline: shard one dataset across a\n"
        "      chip-count curve on the round-level model, verify the\n"
        "      halo-traffic curve is monotone (and zero at 1 chip) and\n"
        "      write the awbsim-bench-scaleout-v1 JSON document\n"
        "      (BENCH_scaleout.json; DESIGN.md §9).\n"
        "      --dataset D         default reddit\n"
        "      --chips n1,n2,..    default 1,2,4,8,16\n"
        "      --platforms p1,..   default d5005-ddr4,p100-hbm2\n"
        "      --policy P          balance policy (default remote-d)\n"
        "      --pes N             PE-array size per chip (default 1024)\n"
        "      --seed N / --scale S / --json FILE (default\n"
        "                          BENCH_scaleout.json)\n\n"
        "  awbsim --bench-dynamic [options]\n"
        "      Dynamic-graph streaming baseline: churn-gcn epochs across\n"
        "      the balance-policy axis with per-epoch carried-vs-fresh\n"
        "      drift curves and the convergence half-life; gated on\n"
        "      double-run determinism, event/batched engine equivalence,\n"
        "      incremental-vs-rebuilt matrix identity and cycle/model\n"
        "      trajectory agreement; writes the awbsim-bench-dynamic-v1\n"
        "      JSON document (BENCH_dynamic.json; DESIGN.md §12).\n"
        "      --datasets a,b,..   default cora,citeseer\n"
        "      --policies p1,..    default baseline,rescratch,\n"
        "                          delta-greedy,delta-threshold,remote-d\n"
        "      --pes N             default 64\n"
        "      --epochs N          churn batches per run (default 8)\n"
        "      --events N          churn events per batch (default 256)\n"
        "      --dense-cols N      feature columns per epoch (default 8)\n"
        "      --insert-frac F     churn insert:delete mix (default 0.5)\n"
        "      --drift-tol F       half-life drift tolerance (default\n"
        "                          0.10)\n"
        "      --seed N / --scale S / --platform P / --json FILE\n"
        "                          (default BENCH_dynamic.json)\n\n"
        "  awbsim --bench-spgemm [options]\n"
        "      Graph-kernel baseline: BFS and PageRank as iterated\n"
        "      sparse-output SpGEMMs across the balance-policy axis, with\n"
        "      per-iteration frontier curves and a rebalance helps/hurts\n"
        "      verdict per policy; gated on determinism, batched==event\n"
        "      equivalence, functional correctness vs the scalar\n"
        "      references, and model-vs-engine traffic equality; writes\n"
        "      the awbsim-bench-spgemm-v1 JSON document\n"
        "      (BENCH_spgemm.json; DESIGN.md §11).\n"
        "      --dataset D         default cora\n"
        "      --policies p1,..    default baseline,local-b,remote-c,\n"
        "                          remote-d,work-steal\n"
        "      --pes N             PE-array size (default 64)\n"
        "      --source N          BFS source vertex (default 0)\n"
        "      --damping F / --tol F / --max-iters N   PageRank knobs\n"
        "      --platform P        default unconstrained\n"
        "      --seed N / --scale S / --json FILE (default\n"
        "                          BENCH_spgemm.json)\n\n"
        "  awbsim --serve [options]\n"
        "      Serve a per-user inference request stream on N simulated\n"
        "      accelerators and report SLO-percentile latency statistics\n"
        "      (DESIGN.md §10).\n"
        "      --dataset D         default cora\n"
        "      --fidelity F        model (round-level, default) or cycle\n"
        "      --arrivals A        open (Poisson, default) or closed\n"
        "      --rate R            open-loop offered rate, requests/s\n"
        "      --clients N         closed-loop client population\n"
        "      --think-cycles N    closed-loop gap before reissue\n"
        "      --duration-ms D     admission horizon in simulated ms\n"
        "      --requests N        stop issuing after N requests\n"
        "      --devices N         simulated accelerator count\n"
        "      --discipline D      of fifo|sjf-nnz|dyn-batch (see\n"
        "                          --list-disciplines)\n"
        "      --max-batch N / --max-wait CYCLES   dyn-batch knobs\n"
        "      --queue-cap N       admission queue bound (0 = unbounded)\n"
        "      --timeout-cycles N  queue-age eviction deadline\n"
        "      --slo-ms S          latency SLO for violation accounting\n"
        "      --ego-frac F / --hops N / --max-ego-nodes N   request mix\n"
        "      --design P / --pes N / --seed N / --scale S\n"
        "      --json FILE         default awbsim_serve.json; '-' stdout\n\n"
        "  awbsim --serve-sweep [options]\n"
        "      Grid of serving runs: arrival rates x disciplines x\n"
        "      device counts on a worker pool (same JSON at any thread\n"
        "      count).\n"
        "      --rates r1,r2,..    default 500,1000,2000,4000\n"
        "      --disciplines d1,.. default fifo,dyn-batch\n"
        "      --devices n1,n2,..  default 1,4\n"
        "      --threads N         worker threads (default: hardware)\n"
        "      plus every --serve knob for the shared base options;\n"
        "      --json FILE (default awbsim_serve_sweep.json)\n\n"
        "  awbsim --bench-serving [options]\n"
        "      Serving baseline: open-loop throughput-vs-p99 curves over\n"
        "      >= 2 datasets plus a closed-loop saturation point each,\n"
        "      gated on request conservation, percentile ordering and\n"
        "      double-run byte-determinism; writes the\n"
        "      awbsim-bench-serving-v1 JSON document (BENCH_serving.json,\n"
        "      tracked and diffed by tools/check_bench.py).\n"
        "      --datasets a,b,..   default cora,pubmed\n"
        "      --rates r1,r2,..    default 25000..800000, x2 steps\n"
        "      --discipline D      default dyn-batch\n"
        "      --devices N         default 2\n"
        "      --duration-ms D     default 10\n"
        "      --clients N         closed-loop population (default 16)\n"
        "      --policy P / --pes N / --seed N / --json FILE (default\n"
        "                          BENCH_serving.json)\n");
}

int
listScenarios()
{
    auto all = ScenarioRegistry::instance().all();
    std::printf("%zu scenarios:\n", all.size());
    for (const Scenario *s : all)
        std::printf("  %-24s %-16s %s\n", s->name.c_str(),
                    ("[" + s->figure + "]").c_str(), s->summary.c_str());
    return 0;
}

int
listDesigns()
{
    auto all = PolicyRegistry::instance().all();
    std::printf("%zu registered balance policies:\n", all.size());
    for (const BalancePolicy *p : all) {
        std::string aliases;
        for (const auto &a : p->aliases)
            aliases += (aliases.empty() ? "" : ",") + a;
        std::printf("  %-14s %-10s %s%s%s\n", p->name.c_str(),
                    ("[" + p->label + "]").c_str(), p->description.c_str(),
                    aliases.empty() ? "" : "  alias: ", aliases.c_str());
    }
    return 0;
}

int
listDatasets()
{
    const auto &all = paperDatasets();
    std::printf("%zu registered datasets:\n", all.size());
    for (const DatasetSpec &d : all)
        std::printf("  %-10s %8lld nodes  f1=%lld f2=%lld f3=%lld  "
                    "densityA=%g\n",
                    d.name.c_str(), static_cast<long long>(d.nodes),
                    static_cast<long long>(d.f1),
                    static_cast<long long>(d.f2),
                    static_cast<long long>(d.f3), d.densityA);
    return 0;
}

int
listPlatforms()
{
    const auto &all = knownPlatforms();
    std::printf("%zu registered platforms:\n", all.size());
    for (const PlatformSpec &p : all) {
        if (p.bandwidthGBs > 0.0)
            std::printf("  %-14s %7.1f GB/s  %s\n", p.name.c_str(),
                        p.bandwidthGBs, p.description.c_str());
        else
            std::printf("  %-14s %12s  %s\n", p.name.c_str(), "--",
                        p.description.c_str());
    }
    return 0;
}

int
runSweepCli(int argc, char **argv, int first)
{
    SweepOptions opts;
    bool table = true;
    std::string json_path = "awbsim_sweep.json";
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) fatal(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (a == "--datasets") {
            opts.datasets = splitCsv(need("--datasets"));
        } else if (a == "--designs") {
            opts.designs.clear();
            for (const auto &d : splitCsv(need("--designs")))
                opts.designs.push_back(parseDesignCli(d));
        } else if (a == "--pes") {
            opts.peCounts.clear();
            for (const auto &p : splitCsv(need("--pes")))
                opts.peCounts.push_back(parseInt("--pes", p));
        } else if (a == "--chips") {
            opts.chipCounts.clear();
            for (const auto &c : splitCsv(need("--chips")))
                opts.chipCounts.push_back(parseInt("--chips", c));
        } else if (a == "--modes") {
            opts.modes.clear();
            for (const auto &m : splitCsv(need("--modes")))
                opts.modes.push_back(parseSweepMode(m));
        } else if (a == "--engine") {
            opts.engine = parseEngineKind(need("--engine"));
        } else if (a == "--platforms" || a == "--platform") {
            opts.platforms.clear();
            for (const auto &p : splitCsv(need("--platforms")))
                opts.platforms.push_back(findPlatform(p).name);
        } else if (a == "--scale") {
            opts.scale = parseDouble("--scale", need("--scale"));
        } else if (a == "--seed") {
            opts.seed = parseUint("--seed", need("--seed"));
        } else if (a == "--threads") {
            opts.threads = parseInt("--threads", need("--threads"));
        } else if (a == "--repeats") {
            opts.repeats = parseInt("--repeats", need("--repeats"));
        } else if (a == "--json") {
            json_path = need("--json");
        } else if (a == "--no-table") {
            table = false;
        } else if (a == "--progress") {
            opts.progress = true;
        } else {
            fatal("unknown sweep flag: " + a);
        }
    }
    if (opts.datasets.empty() || opts.designs.empty() ||
        opts.peCounts.empty() || opts.modes.empty() ||
        opts.platforms.empty() || opts.chipCounts.empty())
        fatal("sweep grid has an empty axis");

    std::vector<SweepPoint> points = expandGrid(opts);
    std::fprintf(stderr, "sweep: %zu grid points, %u worker threads\n",
                 points.size(), resolveThreads(opts, points.size()));

    auto outcomes = runSweep(opts, points);
    if (table) std::printf("%s", sweepTable(outcomes).c_str());

    std::string doc = sweepToJson(opts, outcomes).dump(2);
    if (json_path == "-") {
        std::printf("%s", doc.c_str());
    } else {
        std::ofstream f(json_path);
        if (!f) fatal("cannot write " + json_path);
        f << doc;
        std::printf("sweep JSON written to %s\n", json_path.c_str());
    }

    int failed = 0;
    for (const auto &o : outcomes)
        if (!o.ok) ++failed;
    if (failed)
        std::fprintf(stderr, "%d of %zu points failed\n", failed,
                     outcomes.size());
    return failed ? 1 : 0;
}

} // namespace

int
driverMain(int argc, char **argv)
{
    // Global execution-core flags (DESIGN.md §13) may appear anywhere on
    // the command line; strip them before command dispatch. The caches
    // default ON in the driver — library users and unit tests see plain
    // uncached behavior unless they opt in via exec::setCachesEnabled.
    bool no_cache = false;
    int intra_threads = 0;
    std::vector<char *> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--no-cache") {
            no_cache = true;
        } else if (a == "--intra-threads") {
            if (i + 1 >= argc) fatal("--intra-threads needs a value");
            intra_threads = parseInt("--intra-threads", argv[++i]);
        } else {
            args.push_back(argv[i]);
        }
    }
    exec::setCachesEnabled(!no_cache);
    setIntraThreads(intra_threads);
    argc = static_cast<int>(args.size());
    argv = args.data();

    if (argc < 2) {
        printUsage();
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        printUsage();
        return 0;
    }
    if (cmd == "--list-scenarios" || cmd == "list") return listScenarios();
    if (cmd == "--list-designs" || cmd == "--list-policies")
        return listDesigns();
    if (cmd == "--list-platforms") return listPlatforms();
    if (cmd == "--list-datasets") return listDatasets();
    if (cmd == "run") {
        ScenarioCli cli = parseScenarioCli(argc, argv, 2,
                                           /*warn_unknown=*/true);
        if (cli.help) {
            printUsage();
            return 0;
        }
        return runScenarioCli(cli, /*default_all=*/false);
    }
    if (cmd == "--sweep" || cmd == "sweep") return runSweepCli(argc, argv, 2);
    if (cmd == "--bench-engine" || cmd == "bench-engine")
        return runBenchEngineCli(argc, argv, 2);
    if (cmd == "--bench-memory" || cmd == "bench-memory")
        return runBenchMemoryCli(argc, argv, 2);
    if (cmd == "--bench-scaleout" || cmd == "bench-scaleout")
        return runBenchScaleoutCli(argc, argv, 2);
    if (cmd == "--bench-serving" || cmd == "bench-serving")
        return runBenchServingCli(argc, argv, 2);
    if (cmd == "--bench-spgemm" || cmd == "bench-spgemm")
        return runBenchSpgemmCli(argc, argv, 2);
    if (cmd == "--bench-dynamic" || cmd == "bench-dynamic")
        return runBenchDynamicCli(argc, argv, 2);
    if (cmd == "--list-disciplines") return listDisciplines();
    if (cmd == "--serve" || cmd == "serve")
        return runServeCli(argc, argv, 2);
    if (cmd == "--serve-sweep" || cmd == "serve-sweep")
        return runServeSweepCli(argc, argv, 2);
    printUsage();
    fatal("unknown command: " + cmd);
}

} // namespace awb::driver
