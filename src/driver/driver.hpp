/**
 * @file
 * The `awbsim` unified experiment driver CLI.
 *
 *   awbsim --list-scenarios
 *   awbsim run <scenario ...> [--seed N] [--scale S] [--repeat N] [args]
 *   awbsim --sweep [--datasets cora,nell] [--designs base,a,b,c,d,eie]
 *          [--pes 512,1024] [--modes model,cycle,graphsage,gin,khop,...]
 *          [--scale S]
 *          [--seed N] [--threads N] [--repeats N] [--json FILE]
 *          [--no-table] [--progress]
 *
 * `run` executes registered paper scenarios (the former bench_* and
 * example mains); `--sweep` expands a configuration grid and runs it on
 * the multithreaded sweep engine, emitting an ASCII table and a
 * deterministic JSON document.
 */

#pragma once

namespace awb::driver {

/** Full CLI entry point; returns the process exit code. */
int driverMain(int argc, char **argv);

} // namespace awb::driver
