#include "driver/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/log.hpp"

namespace awb::driver {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
    // std::to_chars is locale-independent by definition; snprintf("%.12g")
    // consults the process LC_NUMERIC and emits a decimal *comma* under
    // e.g. de_DE.UTF-8 — invalid JSON, and a break of the byte-identical
    // sweep-output guarantee. The general/12 form matches C-locale
    // "%.12g" byte for byte (locked by tests/test_driver.cpp).
    char buf[40];
    auto res = std::to_chars(buf, buf + sizeof(buf), v,
                             std::chars_format::general, 12);
    if (res.ec != std::errc()) panic("jsonNumber: to_chars failed");
    return std::string(buf, res.ptr);
}

void
Json::push(Json v)
{
    if (type_ == Type::Null) type_ = Type::Array;
    if (type_ != Type::Array) panic("Json::push on non-array");
    arr_.push_back(std::move(v));
}

Json &
Json::set(const std::string &key, Json v)
{
    Json &slot = (*this)[key];
    slot = std::move(v);
    return slot;
}

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::Null) type_ = Type::Object;
    if (type_ != Type::Object) panic("Json::operator[] on non-object");
    for (auto &kv : obj_)
        if (kv.first == key) return kv.second;
    obj_.emplace_back(key, Json());
    return obj_.back().second;
}

std::size_t
Json::size() const
{
    switch (type_) {
      case Type::Array: return arr_.size();
      case Type::Object: return obj_.size();
      default: return 0;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0) out += '\n';
    return out;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent > 0;
    auto newline = [&](int d) {
        if (pretty) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int:
        if (uint_)
            out += std::to_string(static_cast<std::uint64_t>(int_));
        else
            out += std::to_string(int_);
        break;
      case Type::Double:
        out += jsonNumber(dbl_);
        break;
      case Type::String:
        out += '"';
        out += jsonEscape(str_);
        out += '"';
        break;
      case Type::Array:
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i) out += ',';
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        if (!arr_.empty()) newline(depth);
        out += ']';
        break;
      case Type::Object:
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i) out += ',';
            newline(depth + 1);
            out += '"';
            out += jsonEscape(obj_[i].first);
            out += "\":";
            if (pretty) out += ' ';
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!obj_.empty()) newline(depth);
        out += '}';
        break;
    }
}

} // namespace awb::driver
