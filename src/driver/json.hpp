/**
 * @file
 * Minimal JSON document builder for machine-readable experiment output.
 *
 * Write-only by design: the driver emits results, it never parses them.
 * Object keys keep insertion order and numbers are formatted through one
 * fixed code path, so a document built from the same values is always
 * byte-identical — the property the sweep-determinism guarantee
 * (same seed ⇒ identical output, any thread count) rests on.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace awb::driver {

/** A JSON value: null, bool, integer, double, string, array or object. */
class Json
{
  public:
    enum class Type { Null, Bool, Int, Double, String, Array, Object };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    // One constructor per distinct builtin integer type: std::int64_t,
    // std::uint64_t and std::size_t alias different builtins per platform,
    // so spelling the builtins avoids duplicate-overload errors.
    Json(int v) : type_(Type::Int), int_(v) {}
    Json(long v) : type_(Type::Int), int_(v) {}
    Json(long long v) : type_(Type::Int), int_(v) {}
    Json(unsigned v)
        : type_(Type::Int), uint_(true), int_(static_cast<std::int64_t>(v)) {}
    Json(unsigned long v)
        : type_(Type::Int), uint_(true), int_(static_cast<std::int64_t>(v)) {}
    Json(unsigned long long v)
        : type_(Type::Int), uint_(true), int_(static_cast<std::int64_t>(v)) {}
    Json(double v) : type_(Type::Double), dbl_(v) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }

    /** Append to an array (converts a null value to an array first). */
    void push(Json v);

    /** Insert-or-overwrite a key (converts a null value to an object).
     *  New keys are appended, preserving insertion order on output. */
    Json &set(const std::string &key, Json v);

    /** Object member access; creates a null member if absent. */
    Json &operator[](const std::string &key);

    std::size_t size() const;

    /** Serialize. indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    bool uint_ = false;  ///< render int_'s bits as unsigned decimal
    std::int64_t int_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** JSON string escaping (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/** The one number-to-text path used for every JSON double. */
std::string jsonNumber(double v);

} // namespace awb::driver
