#include "driver/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/log.hpp"

namespace awb::driver {

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry registry;
    return registry;
}

void
ScenarioRegistry::add(Scenario s)
{
    if (s.name.empty() || !s.run) fatal("scenario needs a name and a body");
    if (find(s.name)) fatal("duplicate scenario name: " + s.name);
    scenarios_.push_back(std::move(s));
}

const Scenario *
ScenarioRegistry::find(const std::string &name) const
{
    for (const auto &s : scenarios_)
        if (s.name == name) return &s;
    return nullptr;
}

std::vector<const Scenario *>
ScenarioRegistry::all() const
{
    std::vector<const Scenario *> out;
    out.reserve(scenarios_.size());
    for (const auto &s : scenarios_) out.push_back(&s);
    std::sort(out.begin(), out.end(),
              [](const Scenario *a, const Scenario *b) {
                  return a->name < b->name;
              });
    return out;
}

ScenarioRegistrar::ScenarioRegistrar(Scenario s)
{
    ScenarioRegistry::instance().add(std::move(s));
}

void
scenarioBanner(const Scenario &s)
{
    std::printf(
        "\n=============================================================="
        "\n%s — %s\n"
        "==============================================================\n",
        s.figure.c_str(), s.summary.c_str());
}

std::uint64_t
parseUint(const std::string &flag, const std::string &v)
{
    try {
        std::size_t used = 0;
        std::uint64_t out = std::stoull(v, &used);
        if (used != v.size()) throw std::invalid_argument(v);
        return out;
    } catch (const std::exception &) {
        fatal(flag + " needs an unsigned integer, got '" + v + "'");
    }
}

int
parseInt(const std::string &flag, const std::string &v)
{
    try {
        std::size_t used = 0;
        int out = std::stoi(v, &used);
        if (used != v.size()) throw std::invalid_argument(v);
        return out;
    } catch (const std::exception &) {
        fatal(flag + " needs an integer, got '" + v + "'");
    }
}

double
parseDouble(const std::string &flag, const std::string &v)
{
    try {
        std::size_t used = 0;
        double out = std::stod(v, &used);
        if (used != v.size()) throw std::invalid_argument(v);
        return out;
    } catch (const std::exception &) {
        fatal(flag + " needs a number, got '" + v + "'");
    }
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos) comma = s.size();
        if (comma > start) out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

ScenarioCli
parseScenarioCli(int argc, char **argv, int first, bool warn_unknown)
{
    ScenarioCli cli;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) fatal(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (a == "--seed") {
            cli.ctx.seed = parseUint("--seed", need("--seed"));
        } else if (a == "--scale") {
            cli.ctx.scale = parseDouble("--scale", need("--scale"));
        } else if (a == "--repeat") {
            cli.repeats = parseInt("--repeat", need("--repeat"));
        } else if (a == "--json") {
            cli.jsonPath = need("--json");
        } else if (a == "--help" || a == "-h") {
            cli.help = true;
        } else if (a == "all") {
            cli.runAll = true;
        } else if (ScenarioRegistry::instance().find(a)) {
            cli.names.push_back(a);
        } else if (!a.empty() && a[0] == '-') {
            fatal("unknown flag: " + a);
        } else {
            // On the multi-scenario surface a misspelled scenario name
            // would land here and vanish silently; surface it.
            if (warn_unknown)
                warn("'" + a + "' is not a scenario name; passing it to "
                     "the selected scenarios as an argument");
            cli.ctx.args.push_back(a);
        }
    }
    return cli;
}

int
runScenarioCli(ScenarioCli &cli, bool default_all)
{
    std::vector<const Scenario *> to_run;
    if (cli.runAll || (default_all && cli.names.empty())) {
        to_run = ScenarioRegistry::instance().all();
    } else {
        for (const auto &n : cli.names)
            to_run.push_back(ScenarioRegistry::instance().find(n));
    }
    if (to_run.empty()) {
        if (default_all) fatal("no scenarios linked into this binary");
        fatal("no scenario named; try 'awbsim --list-scenarios'");
    }

    Json results = Json::object();
    for (const Scenario *s : to_run) {
        for (int r = 0; r < cli.repeats; ++r) {
            cli.ctx.repeat = r;
            cli.ctx.result = Json::object();
            scenarioBanner(*s);
            s->run(cli.ctx);
        }
        if (cli.ctx.result.size() > 0)
            results.set(s->name, std::move(cli.ctx.result));
    }
    if (!cli.jsonPath.empty()) {
        if (results.size() == 0)
            warn("--json given but no selected scenario produced "
                 "machine-readable results; not writing " + cli.jsonPath);
        else {
            std::ofstream f(cli.jsonPath);
            if (!f) fatal("cannot write " + cli.jsonPath);
            f << results.dump(2);
            std::printf("\nscenario JSON written to %s\n",
                        cli.jsonPath.c_str());
        }
    }
    return 0;
}

int
scenarioMain(int argc, char **argv)
{
    ScenarioCli cli = parseScenarioCli(argc, argv, 1);
    if (cli.help) {
        std::printf("usage: %s [scenario ...] [--seed N] [--scale S] "
                    "[--repeat N] [--json FILE] [args ...]\n\nscenarios:\n",
                    argv[0]);
        for (const Scenario *s : ScenarioRegistry::instance().all())
            std::printf("  %-24s %s\n", s->name.c_str(),
                        s->summary.c_str());
        return 0;
    }
    return runScenarioCli(cli, /*default_all=*/true);
}

} // namespace awb::driver
