/**
 * @file
 * Scenario registry: every paper experiment (bench_* figure/table
 * reproduction, example walk-through) registers itself here as a named
 * scenario and is then runnable from the unified `awbsim` driver or from
 * its historical thin per-scenario executable.
 *
 * A scenario is a function taking a ScenarioContext — shared argument
 * parsing, seeding, scaling and repeat logic live in the driver, not in
 * each experiment. Registration happens from static initializers
 * (ScenarioRegistrar at namespace scope in the scenario's TU), so the set
 * of scenarios in a binary is exactly the set of scenario TUs linked in.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "driver/json.hpp"

namespace awb::driver {

/** Everything the driver passes into a scenario run. */
struct ScenarioContext
{
    std::uint64_t seed = 1;   ///< base RNG seed (scenarios derive from it)
    double scale = 1.0;       ///< multiplies the scenario's intrinsic
                              ///< dataset scale (cycle-accurate scenarios
                              ///< pick small defaults; 1.0 = as published)
    int repeat = 0;           ///< which repetition this is (0 = first)
    std::vector<std::string> args;  ///< scenario-specific positional args
    Json result = Json::object();   ///< optional machine-readable output
};

/** A registered experiment. */
struct Scenario
{
    std::string name;     ///< CLI identifier, e.g. "fig14-overall"
    std::string figure;   ///< paper artifact reproduced, e.g. "Figure 14 A-E"
    std::string summary;  ///< one-line description for --list-scenarios
    std::function<void(ScenarioContext &)> run;
};

/** Process-wide scenario table. */
class ScenarioRegistry
{
  public:
    static ScenarioRegistry &instance();

    /** Register one scenario; fatal() on duplicate names. */
    void add(Scenario s);

    /** Look up by name; nullptr if unknown. */
    const Scenario *find(const std::string &name) const;

    /** All scenarios, sorted by name. */
    std::vector<const Scenario *> all() const;

  private:
    std::vector<Scenario> scenarios_;
};

/** Registers a scenario from a static initializer. */
struct ScenarioRegistrar
{
    explicit ScenarioRegistrar(Scenario s);
};

/** Print the scenario banner the old bench mains printed. */
void scenarioBanner(const Scenario &s);

/** Parsed state of the shared scenario CLI (`awbsim run ...` and the
 *  per-scenario executables use the same contract). */
struct ScenarioCli
{
    ScenarioContext ctx;
    int repeats = 1;
    bool runAll = false;        ///< the literal token "all" was given
    bool help = false;
    std::string jsonPath;       ///< --json target for scenario results
    std::vector<std::string> names;
};

/**
 * Parse argv[first..): --seed/--scale/--repeat/--json, scenario names,
 * "all", and scenario-specific positional args. Unknown flags are
 * fatal(). With `warn_unknown` (the multi-scenario `awbsim run`
 * surface), unknown positional tokens go to ctx.args with a warning —
 * a misspelled scenario name would otherwise vanish silently; the
 * per-scenario executables expect positional args and stay quiet.
 */
ScenarioCli parseScenarioCli(int argc, char **argv, int first,
                             bool warn_unknown = false);

/**
 * Run the scenarios the CLI selected. With no names, runs every linked
 * scenario when `default_all` (per-scenario executables) and fails
 * otherwise (`awbsim run` demands an explicit name or "all").
 * Returns a process exit code.
 */
int runScenarioCli(ScenarioCli &cli, bool default_all);

/** main() body of every per-scenario executable. */
int scenarioMain(int argc, char **argv);

/** fatal()-on-malformed-input numeric parsing for the driver CLIs. */
std::uint64_t parseUint(const std::string &flag, const std::string &v);
int parseInt(const std::string &flag, const std::string &v);
double parseDouble(const std::string &flag, const std::string &v);

/** Split a comma-separated CLI value; empty segments are dropped. */
std::vector<std::string> splitCsv(const std::string &s);

} // namespace awb::driver
