/**
 * @file
 * Generic main() for the thin per-scenario executables (the historical
 * bench_* and example binaries): runs every scenario linked into the
 * binary — normally exactly one — with the shared argument handling of
 * scenarioMain().
 */

#include "driver/scenario.hpp"

int
main(int argc, char **argv)
{
    return awb::driver::scenarioMain(argc, argv);
}
