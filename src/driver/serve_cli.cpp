#include "driver/serve_cli.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>

#include "common/log.hpp"
#include "common/table.hpp"
#include "driver/scenario.hpp"
#include "graph/datasets.hpp"

namespace awb::driver {

namespace {

/** Latency summary as JSON: exact cycle fields plus derived ms. */
Json
latencyJson(const serve::LatencySummary &s, double clock_mhz)
{
    Json j = Json::object();
    j.set("count", s.count);
    j.set("p50", s.p50);
    j.set("p95", s.p95);
    j.set("p99", s.p99);
    j.set("p999", s.p999);
    j.set("min", s.min);
    j.set("max", s.max);
    j.set("mean", s.mean);
    j.set("p50_ms", serve::cyclesToMs(s.p50, clock_mhz));
    j.set("p99_ms", serve::cyclesToMs(s.p99, clock_mhz));
    return j;
}

/** Shared flag parsing for the knobs --serve and --serve-sweep have in
 *  common; returns false when the flag is not a base serving knob. */
bool
parseServeFlag(serve::ServeOptions &o, const std::string &a,
               const std::function<std::string(const char *)> &need)
{
    if (a == "--dataset") {
        o.dataset = need("--dataset");
    } else if (a == "--fidelity") {
        o.fidelity = serve::parseServeFidelity(need("--fidelity"));
    } else if (a == "--arrivals") {
        o.arrivals = serve::parseArrivalMode(need("--arrivals"));
    } else if (a == "--rate") {
        o.ratePerSec = parseDouble("--rate", need("--rate"));
    } else if (a == "--clients") {
        o.clients = parseInt("--clients", need("--clients"));
    } else if (a == "--think-cycles") {
        o.thinkCycles = static_cast<Cycle>(
            parseUint("--think-cycles", need("--think-cycles")));
    } else if (a == "--duration-ms") {
        o.durationMs = parseDouble("--duration-ms", need("--duration-ms"));
    } else if (a == "--requests") {
        o.requestCap = parseUint("--requests", need("--requests"));
    } else if (a == "--discipline") {
        o.discipline =
            serve::DisciplineRegistry::instance().get(need("--discipline"))
                .name;
    } else if (a == "--max-batch") {
        o.disciplineParams.maxBatch = static_cast<std::size_t>(
            parseUint("--max-batch", need("--max-batch")));
    } else if (a == "--max-wait") {
        o.disciplineParams.maxWait = static_cast<Cycle>(
            parseUint("--max-wait", need("--max-wait")));
    } else if (a == "--queue-cap") {
        o.queueCapacity = static_cast<std::size_t>(
            parseUint("--queue-cap", need("--queue-cap")));
    } else if (a == "--timeout-cycles") {
        o.timeoutCycles = static_cast<Cycle>(
            parseUint("--timeout-cycles", need("--timeout-cycles")));
    } else if (a == "--slo-ms") {
        o.sloMs = parseDouble("--slo-ms", need("--slo-ms"));
    } else if (a == "--ego-frac") {
        o.mix.egoFraction = parseDouble("--ego-frac", need("--ego-frac"));
    } else if (a == "--hops") {
        o.mix.hops = parseInt("--hops", need("--hops"));
    } else if (a == "--max-ego-nodes") {
        o.mix.maxEgoNodes = static_cast<Index>(
            parseUint("--max-ego-nodes", need("--max-ego-nodes")));
    } else if (a == "--seed") {
        o.seed = parseUint("--seed", need("--seed"));
    } else if (a == "--design") {
        o.design = need("--design");
    } else if (a == "--pes") {
        o.numPes = parseInt("--pes", need("--pes"));
    } else if (a == "--scale") {
        o.scale = parseDouble("--scale", need("--scale"));
    } else {
        return false;
    }
    return true;
}

void
writeDoc(const Json &doc, const std::string &path, const char *what)
{
    const std::string rendered = doc.dump(2);
    if (path == "-") {
        std::printf("%s", rendered.c_str());
        return;
    }
    std::ofstream f(path);
    if (!f) fatal("cannot write " + path);
    f << rendered;
    std::printf("%s JSON written to %s\n", what, path.c_str());
}

void
serveTableRow(const serve::ServeResult &r, std::vector<std::string> *row)
{
    row->push_back(std::to_string(r.offered));
    row->push_back(std::to_string(r.completed));
    row->push_back(std::to_string(r.dropped + r.timedOut));
    row->push_back(fixed(serve::cyclesToMs(r.latency.p50, r.clockMhz), 3));
    row->push_back(fixed(serve::cyclesToMs(r.latency.p99, r.clockMhz), 3));
    double util = 0.0;
    for (const auto &d : r.devices) util += d.utilization;
    if (!r.devices.empty()) util /= static_cast<double>(r.devices.size());
    row->push_back(percent(util));
    row->push_back(fixed(r.throughputRps, 1));
}

} // namespace

Json
serveToJson(const serve::ServeOptions &opts, const serve::ServeResult &res)
{
    Json doc = Json::object();
    doc.set("schema", "awbsim-serve-v1");
    doc.set("dataset", findDataset(opts.dataset).name);
    doc.set("fidelity", serve::serveFidelityName(opts.fidelity));
    doc.set("arrivals", serve::arrivalModeName(opts.arrivals));
    if (opts.arrivals == serve::ArrivalMode::Open) {
        doc.set("rate_rps", opts.ratePerSec);
    } else {
        doc.set("clients", opts.clients);
        doc.set("think_cycles", opts.thinkCycles);
    }
    doc.set("duration_ms", opts.durationMs);
    doc.set("devices", static_cast<int>(res.devices.size()));
    doc.set("discipline", opts.discipline);
    doc.set("max_batch", opts.disciplineParams.maxBatch);
    doc.set("max_wait_cycles", opts.disciplineParams.maxWait);
    doc.set("queue_capacity", opts.queueCapacity);
    doc.set("timeout_cycles", opts.timeoutCycles);
    doc.set("slo_ms", opts.sloMs);
    doc.set("seed", opts.seed);
    doc.set("design", opts.design);
    doc.set("pes", opts.numPes);
    doc.set("scale", opts.scale);
    Json mix = Json::object();
    mix.set("gcn", opts.mix.gcn);
    mix.set("graphsage", opts.mix.graphsage);
    mix.set("gin", opts.mix.gin);
    mix.set("ego_fraction", opts.mix.egoFraction);
    mix.set("hops", opts.mix.hops);
    mix.set("max_ego_nodes", opts.mix.maxEgoNodes);
    doc.set("mix", std::move(mix));

    doc.set("clock_mhz", res.clockMhz);
    doc.set("horizon_cycles", res.horizonCycles);
    doc.set("end_cycle", res.endCycle);
    doc.set("offered", res.offered);
    doc.set("admitted", res.admitted);
    doc.set("dropped", res.dropped);
    doc.set("timed_out", res.timedOut);
    doc.set("completed", res.completed);
    doc.set("batches", res.batches);
    doc.set("mean_batch_size", res.meanBatchSize);
    doc.set("offered_rps", res.offeredRps);
    doc.set("throughput_rps", res.throughputRps);
    doc.set("latency", latencyJson(res.latency, res.clockMhz));

    Json queue = Json::object();
    queue.set("peak_depth", res.peakQueueDepth);
    queue.set("mean_depth", res.meanQueueDepth);
    queue.set("wait", latencyJson(res.queueWait, res.clockMhz));
    doc.set("queue", std::move(queue));

    Json trace = Json::array();
    for (const auto &s : res.depthTrace) {
        Json p = Json::object();
        p.set("at", s.at);
        p.set("depth", s.depth);
        trace.push(std::move(p));
    }
    doc.set("depth_trace", std::move(trace));

    Json kinds = Json::object();
    for (std::size_t k = 0; k < res.kindLatency.size(); ++k)
        kinds.set(serve::workloadKindName(
                      static_cast<serve::WorkloadKind>(k)),
                  latencyJson(res.kindLatency[k], res.clockMhz));
    doc.set("kinds", std::move(kinds));

    Json scopes = Json::object();
    scopes.set("ego_completed", res.egoCompleted);
    scopes.set("full_completed", res.fullCompleted);
    doc.set("scopes", std::move(scopes));

    Json slo = Json::object();
    slo.set("slo_cycles", res.sloCycles);
    slo.set("violations", res.sloViolations);
    slo.set("violation_rate",
            res.offered > 0 ? static_cast<double>(res.sloViolations) /
                                  static_cast<double>(res.offered)
                            : 0.0);
    doc.set("slo", std::move(slo));

    Json devices = Json::array();
    for (const auto &d : res.devices) {
        Json p = Json::object();
        p.set("id", d.id);
        p.set("batches", d.batches);
        p.set("requests", d.requests);
        p.set("busy_cycles", d.busyCycles);
        p.set("utilization", d.utilization);
        devices.push(std::move(p));
    }
    doc.set("device_stats", std::move(devices));
    return doc;
}

std::vector<ServeSweepOutcome>
runServeSweep(const ServeSweepOptions &opts)
{
    // Expand the grid in a fixed order: rate-major, then discipline,
    // then device count — the JSON point order is part of the contract.
    std::vector<serve::ServeOptions> points;
    for (double rate : opts.rates)
        for (const auto &disc : opts.disciplines)
            for (int devices : opts.deviceCounts) {
                serve::ServeOptions o = opts.base;
                o.ratePerSec = rate;
                o.discipline = disc;
                o.devices = devices;
                points.push_back(std::move(o));
            }

    std::vector<ServeSweepOutcome> outcomes(points.size());
    unsigned n_threads = opts.threads > 0
                             ? static_cast<unsigned>(opts.threads)
                             : std::max(1U,
                                        std::thread::hardware_concurrency());
    n_threads = std::min<unsigned>(
        n_threads,
        static_cast<unsigned>(std::max<std::size_t>(points.size(), 1)));

    // Slot-indexed pool: each worker claims the next grid index and
    // writes outcomes[i] — results land by position, so the thread
    // count cannot reorder (or otherwise perturb) the document.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= points.size()) break;
            outcomes[i].opts = points[i];
            outcomes[i].result = serve::runServe(points[i]);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (auto &t : pool) t.join();
    return outcomes;
}

int
listDisciplines()
{
    auto all = serve::DisciplineRegistry::instance().all();
    std::printf("%zu registered batch disciplines:\n", all.size());
    for (const serve::DisciplineSpec *d : all)
        std::printf("  %-10s %s\n", d->name.c_str(),
                    d->description.c_str());
    return 0;
}

int
runServeCli(int argc, char **argv, int first)
{
    serve::ServeOptions opts;
    bool table = true;
    std::string json_path = "awbsim_serve.json";
    for (int i = first; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) fatal(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (parseServeFlag(opts, a, need)) continue;
        if (a == "--devices") {
            opts.devices = parseInt("--devices", need("--devices"));
        } else if (a == "--json") {
            json_path = need("--json");
        } else if (a == "--no-table") {
            table = false;
        } else {
            fatal("unknown serve flag: " + a);
        }
    }

    const serve::ServeResult res = serve::runServe(opts);

    if (table) {
        Table t({"dataset", "discipline", "devices", "offered", "done",
                 "lost", "p50(ms)", "p99(ms)", "util", "rps"});
        std::vector<std::string> row{opts.dataset, opts.discipline,
                                     std::to_string(opts.devices)};
        serveTableRow(res, &row);
        t.addRow(std::move(row));
        std::printf("%s", t.render().c_str());
    }
    writeDoc(serveToJson(opts, res), json_path, "serve");
    return 0;
}

int
runServeSweepCli(int argc, char **argv, int first)
{
    ServeSweepOptions opts;
    bool table = true;
    std::string json_path = "awbsim_serve_sweep.json";
    for (int i = first; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) fatal(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (parseServeFlag(opts.base, a, need)) continue;
        if (a == "--rates") {
            opts.rates.clear();
            for (const auto &r : splitCsv(need("--rates")))
                opts.rates.push_back(parseDouble("--rates", r));
        } else if (a == "--disciplines") {
            opts.disciplines.clear();
            for (const auto &d : splitCsv(need("--disciplines")))
                opts.disciplines.push_back(
                    serve::DisciplineRegistry::instance().get(d).name);
        } else if (a == "--devices") {
            opts.deviceCounts.clear();
            for (const auto &d : splitCsv(need("--devices")))
                opts.deviceCounts.push_back(parseInt("--devices", d));
        } else if (a == "--threads") {
            opts.threads = parseInt("--threads", need("--threads"));
        } else if (a == "--json") {
            json_path = need("--json");
        } else if (a == "--no-table") {
            table = false;
        } else {
            fatal("unknown serve-sweep flag: " + a);
        }
    }
    if (opts.rates.empty() || opts.disciplines.empty() ||
        opts.deviceCounts.empty())
        fatal("serve-sweep grid has an empty axis");

    const auto outcomes = runServeSweep(opts);

    if (table) {
        Table t({"rate", "discipline", "devices", "offered", "done",
                 "lost", "p50(ms)", "p99(ms)", "util", "rps"});
        for (const auto &o : outcomes) {
            std::vector<std::string> row{fixed(o.opts.ratePerSec, 0),
                                         o.opts.discipline,
                                         std::to_string(o.opts.devices)};
            serveTableRow(o.result, &row);
            t.addRow(std::move(row));
        }
        std::printf("%s", t.render().c_str());
    }

    Json doc = Json::object();
    doc.set("schema", "awbsim-serve-sweep-v1");
    doc.set("dataset", opts.base.dataset);
    doc.set("fidelity", serve::serveFidelityName(opts.base.fidelity));
    doc.set("seed", opts.base.seed);
    Json jpoints = Json::array();
    for (const auto &o : outcomes)
        jpoints.push(serveToJson(o.opts, o.result));
    doc.set("points", std::move(jpoints));
    writeDoc(doc, json_path, "serve-sweep");
    return 0;
}

} // namespace awb::driver
