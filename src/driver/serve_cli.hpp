/**
 * @file
 * CLI front end of the inference-serving subsystem (`awbsim --serve`,
 * `awbsim --serve-sweep`, `awbsim --list-disciplines`; DESIGN.md §10).
 * The serving core (src/serve) is driver-free; this layer parses flags,
 * renders tables and owns the JSON rendering — one fixed formatting
 * path, so serving documents inherit the sweep determinism guarantee
 * (same options ⇒ byte-identical bytes at any thread count).
 */

#pragma once

#include <string>
#include <vector>

#include "driver/json.hpp"
#include "serve/serve.hpp"

namespace awb::driver {

/** Grid axes of one `--serve-sweep` run; `base` carries every knob the
 *  axes do not override. */
struct ServeSweepOptions
{
    serve::ServeOptions base;
    std::vector<double> rates = {500.0, 1000.0, 2000.0, 4000.0};
    std::vector<std::string> disciplines = {"fifo", "dyn-batch"};
    std::vector<int> deviceCounts = {1, 4};
    int threads = 0;  ///< worker threads; 0 = hardware concurrency
};

/** One grid point's outcome (options echo + result). */
struct ServeSweepOutcome
{
    serve::ServeOptions opts;
    serve::ServeResult result;
};

/** Render one serving run as the awbsim-serve-v1 JSON document. */
Json serveToJson(const serve::ServeOptions &opts,
                 const serve::ServeResult &res);

/** Expand the grid and run every point on a slot-indexed worker pool
 *  (results land by grid position — thread count cannot reorder). */
std::vector<ServeSweepOutcome> runServeSweep(const ServeSweepOptions &opts);

/** `awbsim --list-disciplines`. */
int listDisciplines();

/** CLI front-end for `awbsim --serve`; returns the exit code. */
int runServeCli(int argc, char **argv, int first);

/** CLI front-end for `awbsim --serve-sweep`; returns the exit code. */
int runServeSweepCli(int argc, char **argv, int first);

} // namespace awb::driver
