#include "driver/sweep.hpp"

#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "accel/policy.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "graph/datasets.hpp"
#include "model/memory_model.hpp"

namespace awb::driver {

namespace {

/** One execution of a point's workload; everything but repeat checking.
 *  All plumbing (dataset resolution through the WorkloadCache, policy
 *  config, mode dispatch, folding, utilization/energy/area) lives in
 *  the execution core (exec/run.hpp). */
SweepOutcome
executeOnce(const SweepPoint &p, const SweepOptions &opts)
{
    SweepOutcome out;
    out.point = p;
    exec::RunRequest req;
    req.dataset = p.dataset;
    req.policy = p.policy;
    req.platform = p.platform;
    req.pes = p.pes;
    req.chips = p.chips;
    req.mode = p.mode;
    req.engine = opts.engine;
    req.seed = p.seed;
    req.scale = opts.scale;
    static_cast<exec::RunResult &>(out) = exec::run(req);
    return out;
}

} // namespace

std::string
sweepModeName(SweepMode m)
{
    return exec::modeName(m);
}

SweepMode
parseSweepMode(const std::string &s)
{
    return exec::parseMode(s);
}

std::uint64_t
derivePointSeed(std::uint64_t global_seed, std::size_t index)
{
    return splitmix64(splitmix64(global_seed) ^
                      splitmix64(static_cast<std::uint64_t>(index) + 1));
}

std::uint64_t
deriveWorkloadSeed(std::uint64_t global_seed, const std::string &dataset)
{
    // FNV-1a over the name (not std::hash: its value is implementation-
    // defined, and workload seeds must be stable across builds).
    std::uint64_t name_hash = 1469598103934665603ULL;
    for (unsigned char c : dataset) {
        name_hash ^= c;
        name_hash *= 1099511628211ULL;
    }
    return splitmix64(splitmix64(global_seed) ^ splitmix64(name_hash));
}

std::vector<SweepPoint>
expandGrid(const SweepOptions &opts)
{
    std::vector<SweepPoint> points;
    for (const auto &dataset : opts.datasets) {
        findDataset(dataset);  // validate early; fatal() on unknown
        for (const std::string &design : opts.designs) {
            // Resolve aliases ("d" → "remote-d") up front; fatal() with a
            // near-miss suggestion on an unknown policy.
            const BalancePolicy &pol =
                PolicyRegistry::instance().get(design);
            for (int pes : opts.peCounts) {
                for (SweepMode mode : opts.modes) {
                    for (const std::string &platform : opts.platforms) {
                        // Validate early; fatal() on an unknown name.
                        findPlatform(platform);
                        for (int chips : opts.chipCounts) {
                            SweepPoint p;
                            p.index = points.size();
                            p.dataset = dataset;
                            p.policy = pol.name;
                            p.platform = platform;
                            p.pes = pes;
                            p.chips = chips;
                            p.mode = mode;
                            p.seed = deriveWorkloadSeed(opts.seed, dataset);
                            points.push_back(std::move(p));
                        }
                    }
                }
            }
        }
    }
    return points;
}

SweepOutcome
runSweepPoint(const SweepPoint &point, const SweepOptions &opts)
{
    SweepOutcome out;
    try {
        out = executeOnce(point, opts);
        for (int r = 1; out.ok && r < opts.repeats; ++r) {
            SweepOutcome again = executeOnce(point, opts);
            if (again.cycles != out.cycles || again.tasks != out.tasks)
                out.deterministic = false;
        }
    } catch (const std::exception &e) {
        out.point = point;
        out.ok = false;
        out.error = e.what();
    }
    return out;
}

unsigned
resolveThreads(const SweepOptions &opts, std::size_t n_points)
{
    unsigned n = opts.threads > 0
        ? static_cast<unsigned>(opts.threads)
        : std::max(1U, std::thread::hardware_concurrency());
    return std::min<unsigned>(
        n, static_cast<unsigned>(std::max<std::size_t>(n_points, 1)));
}

std::vector<SweepOutcome>
runSweep(const SweepOptions &opts, const std::vector<SweepPoint> &points)
{
    std::vector<SweepOutcome> outcomes(points.size());
    unsigned n_threads = resolveThreads(opts, points.size());

    std::atomic<std::size_t> next{0};
    std::mutex progress_mutex;
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= points.size()) break;
            outcomes[i] = runSweepPoint(points[i], opts);
            if (opts.progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                std::fprintf(stderr, "[%zu/%zu] %s %s %d PEs %s on %s: %s\n",
                             i + 1, points.size(),
                             points[i].dataset.c_str(),
                             points[i].policy.c_str(), points[i].pes,
                             sweepModeName(points[i].mode).c_str(),
                             points[i].platform.c_str(),
                             outcomes[i].ok ? "ok"
                                            : outcomes[i].error.c_str());
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (auto &t : pool) t.join();
    return outcomes;
}

std::vector<SweepOutcome>
runSweep(const SweepOptions &opts)
{
    return runSweep(opts, expandGrid(opts));
}

Json
sweepToJson(const SweepOptions &opts,
            const std::vector<SweepOutcome> &outcomes)
{
    Json doc = Json::object();
    doc.set("schema", "awbsim-sweep-v1");
    doc.set("seed", opts.seed);
    doc.set("scale", opts.scale);
    doc.set("repeats", opts.repeats);
    doc.set("engine", engineKindName(opts.engine));

    Json grid = Json::object();
    Json datasets = Json::array();
    for (const auto &d : opts.datasets) datasets.push(d);
    grid.set("datasets", std::move(datasets));
    Json designs = Json::array();
    for (const std::string &d : opts.designs)
        designs.push(PolicyRegistry::instance().get(d).label);
    grid.set("designs", std::move(designs));
    Json platforms = Json::array();
    for (const std::string &p : opts.platforms) platforms.push(p);
    grid.set("platforms", std::move(platforms));
    Json pes = Json::array();
    for (int p : opts.peCounts) pes.push(p);
    grid.set("pe_counts", std::move(pes));
    Json chips = Json::array();
    for (int c : opts.chipCounts) chips.push(c);
    grid.set("chip_counts", std::move(chips));
    Json modes = Json::array();
    for (SweepMode m : opts.modes) modes.push(sweepModeName(m));
    grid.set("modes", std::move(modes));
    doc.set("grid", std::move(grid));

    Json points = Json::array();
    for (const auto &o : outcomes) {
        Json p = Json::object();
        p.set("index", o.point.index);
        p.set("dataset", o.point.dataset);
        p.set("design",
              PolicyRegistry::instance().get(o.point.policy).label);
        p.set("policy", o.point.policy);
        p.set("platform", o.point.platform);
        p.set("pes", o.point.pes);
        p.set("chips", o.point.chips);
        p.set("mode", sweepModeName(o.point.mode));
        p.set("seed", o.point.seed);
        p.set("ok", o.ok);
        if (!o.ok) {
            p.set("error", o.error);
        } else {
            p.set("cycles", o.cycles);
            p.set("ideal_cycles", o.idealCycles);
            p.set("sync_cycles", o.syncCycles);
            p.set("tasks", o.tasks);
            p.set("utilization", o.utilization);
            p.set("peak_tq_depth", o.peakTqDepth);
            p.set("rows_switched", o.rowsSwitched);
            p.set("converged_round", o.convergedRound);
            p.set("rounds", o.rounds);
            p.set("rounds_simulated", o.roundsSimulated);
            p.set("bytes_total", o.bytesTotal);
            p.set("memory_cycles", o.memoryCycles);
            p.set("bw_bound_rounds", o.bwBoundRounds);
            p.set("halo_bytes", o.haloBytes);
            p.set("halo_cycles", o.haloCycles);
            p.set("halo_bound_rounds", o.haloBoundRounds);
            p.set("chip_imbalance", o.chipImbalance);
            p.set("half_life_epochs", o.halfLifeEpochs);
            p.set("latency_ms", o.latencyMs);
            p.set("inferences_per_kj", o.inferencesPerKj);
            p.set("area_total_clb", o.areaTotalClb);
            p.set("area_tq_clb", o.areaTqClb);
            p.set("deterministic", o.deterministic);
        }
        points.push(std::move(p));
    }
    doc.set("points", std::move(points));
    return doc;
}

std::string
sweepTable(const std::vector<SweepOutcome> &outcomes)
{
    Table t({"mode", "dataset", "design", "PEs", "cycles", "util",
             "TQ depth", "switched", "latency(ms)", "area(CLB)"});
    for (const auto &o : outcomes) {
        std::string label =
            PolicyRegistry::instance().get(o.point.policy).label;
        if (!o.ok) {
            t.addRow({sweepModeName(o.point.mode), o.point.dataset, label,
                      std::to_string(o.point.pes), "ERROR: " + o.error, "",
                      "", "", "", ""});
            continue;
        }
        t.addRow({sweepModeName(o.point.mode), o.point.dataset, label,
                  std::to_string(o.point.pes),
                  humanCount(static_cast<double>(o.cycles)),
                  percent(o.utilization), std::to_string(o.peakTqDepth),
                  std::to_string(o.rowsSwitched), fixed(o.latencyMs, 3),
                  humanCount(o.areaTotalClb)});
    }
    return t.render();
}

} // namespace awb::driver
