#include "driver/sweep.hpp"

#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "accel/gcn_accel.hpp"
#include "accel/perf_model.hpp"
#include "accel/policy.hpp"
#include "accel/scaleout.hpp"
#include "accel/spmm_engine.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dynamic/dynamic_runner.hpp"
#include "gcn/model.hpp"
#include "graph/datasets.hpp"
#include "kernels/bfs.hpp"
#include "kernels/pagerank.hpp"
#include "model/area_model.hpp"
#include "model/energy_model.hpp"
#include "model/memory_model.hpp"
#include "sim/factories.hpp"
#include "sim/session.hpp"
#include "sparse/convert.hpp"

namespace awb::driver {

namespace {

/** Fold cycle-level stats of one SPMM into the outcome accumulators. */
void
accumulate(SweepOutcome &out, const SpmmStats &s)
{
    out.cycles += s.cycles;
    out.idealCycles += s.idealCycles;
    out.syncCycles += s.syncCycles;
    out.tasks += s.tasks;
    out.rounds += s.rounds;
    out.roundsSimulated += s.roundsSimulated;
    out.rowsSwitched += s.rowsSwitched;
    out.convergedRound = std::max(out.convergedRound, s.convergedRound);
    out.peakTqDepth = std::max(out.peakTqDepth, s.peakQueueDepth);
    out.bytesTotal += s.traffic.total();
    out.memoryCycles += s.memoryCycles;
    out.bwBoundRounds += s.bwBoundRounds;
}

void
accumulate(SweepOutcome &out, const PerfSpmmResult &s)
{
    out.idealCycles += s.idealCycles;
    out.syncCycles += s.syncCycles;
    out.rounds += s.rounds;
    out.rowsSwitched += s.rowsSwitched;
    out.convergedRound = std::max(out.convergedRound, s.convergedRound);
    out.peakTqDepth = std::max(out.peakTqDepth, s.peakQueueDepth);
    out.bytesTotal += s.traffic.total();
    out.memoryCycles += s.memoryCycles;
    out.bwBoundRounds += s.bwBoundRounds;
}

/** Fold a frontier-kernel run (BFS/PageRank) into the outcome. */
void
accumulate(SweepOutcome &out, const kernels::FrontierRunStats &s)
{
    out.cycles += s.totalCycles;
    out.tasks += s.totalTasks;
    out.rounds += s.rounds;
    out.roundsSimulated += s.roundsSimulated;
    out.rowsSwitched += s.rowsSwitched;
    out.convergedRound = std::max(out.convergedRound, s.convergedRound);
    out.peakTqDepth = std::max(out.peakTqDepth, s.peakQueueDepth);
    out.bytesTotal += s.traffic.total();
    out.memoryCycles += s.memoryCycles;
    out.bwBoundRounds += s.bwBoundRounds;
    out.haloBytes += s.haloBytes;
    out.haloCycles += s.haloCycles;
    out.haloBoundRounds += s.haloBoundRounds;
    out.chipImbalance = s.chipImbalance;
}

/** Fold a streaming churn run into the outcome. */
void
accumulate(SweepOutcome &out, const dynamic::DynamicRunStats &s, int pes)
{
    out.cycles += s.totalCycles;
    out.tasks += s.totalTasks;
    out.rounds += s.rounds;
    out.roundsSimulated += s.roundsSimulated;
    out.rowsSwitched += s.rowsMoved;
    out.peakTqDepth = std::max(out.peakTqDepth, s.peakQueueDepth);
    out.bytesTotal += s.traffic.total();
    out.memoryCycles += s.memoryCycles;
    out.bwBoundRounds += s.bwBoundRounds;
    out.halfLifeEpochs = s.halfLifeEpochs;
    if (out.cycles > 0 && pes > 0)
        out.utilization = static_cast<double>(out.tasks) /
                          (static_cast<double>(pes) *
                           static_cast<double>(out.cycles));
}

/** Fold a full Session run into the outcome accumulators. */
void
accumulate(SweepOutcome &out, const sim::SessionResult &res)
{
    for (const auto &s : res.nodeStats) accumulate(out, s);
    out.cycles = res.totalCycles;  // pipelined end-to-end delay
    out.utilization = res.utilization;
}

/** Fold the scale-out view of a sharded run into the outcome. */
void
accumulate(SweepOutcome &out, const ScaleOutSummary &s)
{
    out.haloBytes += s.haloBytes;
    out.haloCycles += s.haloCycles;
    out.haloBoundRounds += s.haloBoundRounds;
    out.chipImbalance = s.chipImbalance;
}

/** One execution of a point's workload; everything but repeat checking. */
SweepOutcome
executeOnce(const SweepPoint &p, const SweepOptions &opts)
{
    SweepOutcome out;
    out.point = p;
    const DatasetSpec &spec = findDataset(p.dataset);
    if (p.pes <= 0) {
        out.error = "numPes must be positive";
        return out;
    }
    // Surface configuration errors (bad field combinations, and for the
    // cycle-accurate modes the power-of-two PE count the Omega network
    // needs) as per-point results, not aborts: configure without
    // validating, then route validate() into the error row.
    AccelConfig cfg = configureForPolicy(
        PolicyRegistry::instance().get(p.policy), p.pes, hopBase(spec));
    cfg.engine = opts.engine;
    cfg.platform = p.platform;
    cfg.chips = p.chips;
    std::string cfg_err =
        cfg.validate(/*cycle_accurate_tdq2=*/p.mode != SweepMode::Model);
    if (!cfg_err.empty()) {
        out.error = cfg_err;
        return out;
    }
    const bool sharded = cfg.chips > 1;
    if (sharded &&
        (p.mode == SweepMode::GraphSage || p.mode == SweepMode::Gin ||
         p.mode == SweepMode::KhopGcn)) {
        out.error = "mode '" + sweepModeName(p.mode) + "' with chips=" +
                    std::to_string(p.chips) +
                    " is unsupported: the workload-graph modes "
                    "(graphsage|gin|khop) run unsharded only; multi-chip "
                    "sharding supports model|cycle|tdq1|tdq2";
        return out;
    }
    if (sharded && p.mode == SweepMode::ChurnGcn) {
        out.error = "mode 'churn' with chips=" + std::to_string(p.chips) +
                    " is unsupported: edge churn invalidates static "
                    "shard boundaries";
        return out;
    }

    switch (p.mode) {
      case SweepMode::Model: {
        WorkloadProfile prof = loadProfile(spec, p.seed, opts.scale);
        if (sharded) {
            // Halo counting needs the adjacency structure, which the
            // profile alone cannot provide.
            CscMatrix a = loadSyntheticAdjacency(spec, p.seed, opts.scale);
            ShardedPerfGcnResult sr = modelGcnSharded(cfg, prof, &a);
            out.cycles = sr.result.totalCycles;
            out.tasks = sr.result.totalTasks;
            out.utilization = sr.result.utilization;
            for (const auto &layer : sr.result.layers) {
                accumulate(out, layer.xw);
                accumulate(out, layer.ax);
            }
            accumulate(out, sr.scaleout);
            break;
        }
        PerfGcnResult res = PerfModel(cfg).runGcn(prof);
        out.cycles = res.totalCycles;
        out.tasks = res.totalTasks;
        out.utilization = res.utilization;
        for (const auto &layer : res.layers) {
            accumulate(out, layer.xw);
            accumulate(out, layer.ax);
        }
        break;
      }
      case SweepMode::Cycle: {
        Dataset ds = loadSynthetic(spec, p.seed, opts.scale);
        GcnModel model =
            makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, p.seed);
        if (sharded) {
            ShardedGcnResult sr = runGcnSharded(cfg, ds, model);
            out.utilization = sr.result.utilization;
            for (const auto &layer : sr.result.layers) {
                accumulate(out, layer.xw);
                accumulate(out, layer.ax);
                for (const auto &hop : layer.extraHops)
                    accumulate(out, hop);
            }
            out.cycles = sr.result.totalCycles;
            out.tasks = sr.result.totalTasks;
            accumulate(out, sr.scaleout);
            break;
        }
        GcnRunResult res = runGcn(cfg, ds, model);
        out.utilization = res.utilization;
        for (const auto &layer : res.layers) {
            accumulate(out, layer.xw);
            accumulate(out, layer.ax);
            for (const auto &hop : layer.extraHops) accumulate(out, hop);
        }
        out.cycles = res.totalCycles;  // pipelined end-to-end delay
        out.tasks = res.totalTasks;
        break;
      }
      case SweepMode::SpmmTdq1: {
        Dataset ds = loadSynthetic(spec, p.seed, opts.scale);
        CscMatrix x = csrToCsc(ds.features);
        Rng rng(p.seed, /*seq=*/1);
        DenseMatrix w(ds.spec.f1, ds.spec.f2);
        w.fillUniform(rng, -1.0f, 1.0f);
        if (sharded) {
            ShardedSpmmResult sr =
                executeSpmmSharded(cfg, x, w, TdqKind::Tdq1DenseScan);
            accumulate(out, sr.result.stats);
            out.utilization = sr.result.stats.utilization;
            accumulate(out, sr.scaleout);
            break;
        }
        RowPartition part =
            makePartitionPolicy(cfg)->build(x.rows(), x.rowNnz(), cfg);
        SpmmResult r =
            SpmmEngine(cfg).execute(x, w, TdqKind::Tdq1DenseScan, part);
        accumulate(out, r.stats);
        out.utilization = r.stats.utilization;
        break;
      }
      case SweepMode::SpmmTdq2: {
        Dataset ds = loadSynthetic(spec, p.seed, opts.scale);
        Rng rng(p.seed, /*seq=*/2);
        DenseMatrix b(ds.spec.nodes, ds.spec.f2);
        b.fillUniform(rng, -1.0f, 1.0f);
        if (sharded) {
            ShardedSpmmResult sr = executeSpmmSharded(
                cfg, ds.adjacency, b, TdqKind::Tdq2OmegaCsc);
            accumulate(out, sr.result.stats);
            out.utilization = sr.result.stats.utilization;
            accumulate(out, sr.scaleout);
            break;
        }
        RowPartition part = makePartitionPolicy(cfg)->build(
            ds.adjacency.rows(), ds.adjacency.rowNnz(), cfg);
        SpmmResult r = SpmmEngine(cfg).execute(ds.adjacency, b,
                                               TdqKind::Tdq2OmegaCsc, part);
        accumulate(out, r.stats);
        out.utilization = r.stats.utilization;
        break;
      }
      case SweepMode::GraphSage: {
        Dataset ds = loadSynthetic(spec, p.seed, opts.scale);
        sim::WorkloadBundle w = sim::buildGraphSage(
            ds, ds.spec.f2, ds.spec.f3, /*meanAggregate=*/true, p.seed);
        sim::Session session(cfg);
        accumulate(out, sim::runWorkload(session, std::move(w)));
        break;
      }
      case SweepMode::Gin: {
        Dataset ds = loadSynthetic(spec, p.seed, opts.scale);
        sim::WorkloadBundle w =
            sim::buildGin(ds, ds.spec.f2, ds.spec.f3, /*eps=*/0.1, p.seed);
        sim::Session session(cfg);
        accumulate(out, sim::runWorkload(session, std::move(w)));
        break;
      }
      case SweepMode::KhopGcn: {
        Dataset ds = loadSynthetic(spec, p.seed, opts.scale);
        GcnModel model =
            makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, p.seed);
        sim::WorkloadBundle w = sim::buildExactKhopGcn(ds, model, 2);
        sim::Session session(cfg);
        accumulate(out, sim::runWorkload(session, std::move(w)));
        break;
      }
      case SweepMode::Bfs: {
        CscMatrix a = loadSyntheticAdjacency(spec, p.seed, opts.scale);
        kernels::BfsRun run = kernels::runBfs(cfg, a, /*source=*/0);
        accumulate(out, run.stats);
        break;
      }
      case SweepMode::Pagerank: {
        CscMatrix a = loadSyntheticAdjacency(spec, p.seed, opts.scale);
        kernels::PagerankRun run = kernels::runPagerank(
            cfg, a, /*damping=*/0.85, /*tol=*/1e-6, /*maxIters=*/200);
        accumulate(out, run.stats);
        break;
      }
      case SweepMode::ChurnGcn: {
        CscMatrix a = loadSyntheticAdjacency(spec, p.seed, opts.scale);
        dynamic::ChurnParams churn;
        churn.seed = p.seed;
        dynamic::DynamicOptions dopts;
        dopts.fidelity = dynamic::DynamicFidelity::Cycle;
        dopts.epochs = 6;
        dopts.eventsPerEpoch = std::max<Count>(16, a.nnz() / 20);
        dopts.denseCols = 8;
        dopts.seed = p.seed;
        accumulate(out, dynamic::runChurnGcn(cfg, a, churn, dopts),
                   p.pes);
        break;
      }
    }

    double mhz = policyClockMhz(cfg);
    EnergyReport energy = evaluateEnergy(out.cycles, out.tasks, mhz);
    out.latencyMs = energy.latencyMs;
    out.inferencesPerKj = energy.inferencesPerKj;
    AreaEstimate area = estimateArea(cfg, out.peakTqDepth);
    out.areaTotalClb = area.totalClb;
    out.areaTqClb = area.tqClb;
    out.ok = true;
    return out;
}

} // namespace

std::string
sweepModeName(SweepMode m)
{
    switch (m) {
      case SweepMode::Model: return "model";
      case SweepMode::Cycle: return "cycle";
      case SweepMode::SpmmTdq1: return "tdq1";
      case SweepMode::SpmmTdq2: return "tdq2";
      case SweepMode::GraphSage: return "graphsage";
      case SweepMode::Gin: return "gin";
      case SweepMode::KhopGcn: return "khop";
      case SweepMode::Bfs: return "bfs";
      case SweepMode::Pagerank: return "pagerank";
      case SweepMode::ChurnGcn: return "churn";
    }
    return "?";
}

SweepMode
parseSweepMode(const std::string &s)
{
    if (s == "model") return SweepMode::Model;
    if (s == "cycle") return SweepMode::Cycle;
    if (s == "tdq1") return SweepMode::SpmmTdq1;
    if (s == "tdq2") return SweepMode::SpmmTdq2;
    if (s == "graphsage") return SweepMode::GraphSage;
    if (s == "gin") return SweepMode::Gin;
    if (s == "khop") return SweepMode::KhopGcn;
    if (s == "bfs") return SweepMode::Bfs;
    if (s == "pagerank") return SweepMode::Pagerank;
    if (s == "churn" || s == "churn-gcn") return SweepMode::ChurnGcn;
    fatal("unknown sweep mode '" + s +
          "' (model|cycle|tdq1|tdq2|graphsage|gin|khop|bfs|pagerank|"
          "churn)");
}

std::uint64_t
derivePointSeed(std::uint64_t global_seed, std::size_t index)
{
    return splitmix64(splitmix64(global_seed) ^
                      splitmix64(static_cast<std::uint64_t>(index) + 1));
}

std::vector<SweepPoint>
expandGrid(const SweepOptions &opts)
{
    std::vector<SweepPoint> points;
    for (const auto &dataset : opts.datasets) {
        findDataset(dataset);  // validate early; fatal() on unknown
        for (const std::string &design : opts.designs) {
            // Resolve aliases ("d" → "remote-d") up front; fatal() with a
            // near-miss suggestion on an unknown policy.
            const BalancePolicy &pol =
                PolicyRegistry::instance().get(design);
            for (int pes : opts.peCounts) {
                for (SweepMode mode : opts.modes) {
                    for (const std::string &platform : opts.platforms) {
                        // Validate early; fatal() on an unknown name.
                        findPlatform(platform);
                        for (int chips : opts.chipCounts) {
                            SweepPoint p;
                            p.index = points.size();
                            p.dataset = dataset;
                            p.policy = pol.name;
                            p.platform = platform;
                            p.pes = pes;
                            p.chips = chips;
                            p.mode = mode;
                            p.seed = derivePointSeed(opts.seed, p.index);
                            points.push_back(std::move(p));
                        }
                    }
                }
            }
        }
    }
    return points;
}

SweepOutcome
runSweepPoint(const SweepPoint &point, const SweepOptions &opts)
{
    SweepOutcome out;
    try {
        out = executeOnce(point, opts);
        for (int r = 1; out.ok && r < opts.repeats; ++r) {
            SweepOutcome again = executeOnce(point, opts);
            if (again.cycles != out.cycles || again.tasks != out.tasks)
                out.deterministic = false;
        }
    } catch (const std::exception &e) {
        out.point = point;
        out.ok = false;
        out.error = e.what();
    }
    return out;
}

unsigned
resolveThreads(const SweepOptions &opts, std::size_t n_points)
{
    unsigned n = opts.threads > 0
        ? static_cast<unsigned>(opts.threads)
        : std::max(1U, std::thread::hardware_concurrency());
    return std::min<unsigned>(
        n, static_cast<unsigned>(std::max<std::size_t>(n_points, 1)));
}

std::vector<SweepOutcome>
runSweep(const SweepOptions &opts, const std::vector<SweepPoint> &points)
{
    std::vector<SweepOutcome> outcomes(points.size());
    unsigned n_threads = resolveThreads(opts, points.size());

    std::atomic<std::size_t> next{0};
    std::mutex progress_mutex;
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= points.size()) break;
            outcomes[i] = runSweepPoint(points[i], opts);
            if (opts.progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                std::fprintf(stderr, "[%zu/%zu] %s %s %d PEs %s on %s: %s\n",
                             i + 1, points.size(),
                             points[i].dataset.c_str(),
                             points[i].policy.c_str(), points[i].pes,
                             sweepModeName(points[i].mode).c_str(),
                             points[i].platform.c_str(),
                             outcomes[i].ok ? "ok"
                                            : outcomes[i].error.c_str());
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (auto &t : pool) t.join();
    return outcomes;
}

std::vector<SweepOutcome>
runSweep(const SweepOptions &opts)
{
    return runSweep(opts, expandGrid(opts));
}

Json
sweepToJson(const SweepOptions &opts,
            const std::vector<SweepOutcome> &outcomes)
{
    Json doc = Json::object();
    doc.set("schema", "awbsim-sweep-v1");
    doc.set("seed", opts.seed);
    doc.set("scale", opts.scale);
    doc.set("repeats", opts.repeats);
    doc.set("engine", engineKindName(opts.engine));

    Json grid = Json::object();
    Json datasets = Json::array();
    for (const auto &d : opts.datasets) datasets.push(d);
    grid.set("datasets", std::move(datasets));
    Json designs = Json::array();
    for (const std::string &d : opts.designs)
        designs.push(PolicyRegistry::instance().get(d).label);
    grid.set("designs", std::move(designs));
    Json platforms = Json::array();
    for (const std::string &p : opts.platforms) platforms.push(p);
    grid.set("platforms", std::move(platforms));
    Json pes = Json::array();
    for (int p : opts.peCounts) pes.push(p);
    grid.set("pe_counts", std::move(pes));
    Json chips = Json::array();
    for (int c : opts.chipCounts) chips.push(c);
    grid.set("chip_counts", std::move(chips));
    Json modes = Json::array();
    for (SweepMode m : opts.modes) modes.push(sweepModeName(m));
    grid.set("modes", std::move(modes));
    doc.set("grid", std::move(grid));

    Json points = Json::array();
    for (const auto &o : outcomes) {
        Json p = Json::object();
        p.set("index", o.point.index);
        p.set("dataset", o.point.dataset);
        p.set("design",
              PolicyRegistry::instance().get(o.point.policy).label);
        p.set("policy", o.point.policy);
        p.set("platform", o.point.platform);
        p.set("pes", o.point.pes);
        p.set("chips", o.point.chips);
        p.set("mode", sweepModeName(o.point.mode));
        p.set("seed", o.point.seed);
        p.set("ok", o.ok);
        if (!o.ok) {
            p.set("error", o.error);
        } else {
            p.set("cycles", o.cycles);
            p.set("ideal_cycles", o.idealCycles);
            p.set("sync_cycles", o.syncCycles);
            p.set("tasks", o.tasks);
            p.set("utilization", o.utilization);
            p.set("peak_tq_depth", o.peakTqDepth);
            p.set("rows_switched", o.rowsSwitched);
            p.set("converged_round", o.convergedRound);
            p.set("rounds", o.rounds);
            p.set("rounds_simulated", o.roundsSimulated);
            p.set("bytes_total", o.bytesTotal);
            p.set("memory_cycles", o.memoryCycles);
            p.set("bw_bound_rounds", o.bwBoundRounds);
            p.set("halo_bytes", o.haloBytes);
            p.set("halo_cycles", o.haloCycles);
            p.set("halo_bound_rounds", o.haloBoundRounds);
            p.set("chip_imbalance", o.chipImbalance);
            p.set("half_life_epochs", o.halfLifeEpochs);
            p.set("latency_ms", o.latencyMs);
            p.set("inferences_per_kj", o.inferencesPerKj);
            p.set("area_total_clb", o.areaTotalClb);
            p.set("area_tq_clb", o.areaTqClb);
            p.set("deterministic", o.deterministic);
        }
        points.push(std::move(p));
    }
    doc.set("points", std::move(points));
    return doc;
}

std::string
sweepTable(const std::vector<SweepOutcome> &outcomes)
{
    Table t({"mode", "dataset", "design", "PEs", "cycles", "util",
             "TQ depth", "switched", "latency(ms)", "area(CLB)"});
    for (const auto &o : outcomes) {
        std::string label =
            PolicyRegistry::instance().get(o.point.policy).label;
        if (!o.ok) {
            t.addRow({sweepModeName(o.point.mode), o.point.dataset, label,
                      std::to_string(o.point.pes), "ERROR: " + o.error, "",
                      "", "", "", ""});
            continue;
        }
        t.addRow({sweepModeName(o.point.mode), o.point.dataset, label,
                  std::to_string(o.point.pes),
                  humanCount(static_cast<double>(o.cycles)),
                  percent(o.utilization), std::to_string(o.peakTqDepth),
                  std::to_string(o.rowsSwitched), fixed(o.latencyMs, 3),
                  humanCount(o.areaTotalClb)});
    }
    return t.render();
}

} // namespace awb::driver
