/**
 * @file
 * Multithreaded scenario-sweep engine: expands a grid of
 * dataset × policy × PE-count × execution-mode points, runs every point
 * on a std::thread worker pool (one independent SpmmEngine / PerfModel
 * per point, nothing shared but the result slot), and aggregates
 * cycle/utilization/energy/area results into paper-style tables and a
 * machine-readable JSON document.
 *
 * The design axis is a list of registered balance-policy names
 * (accel/policy.hpp): the six paper designs plus any registered
 * extension, so `awbsim --sweep --designs remote-d,work-steal,...` works
 * without touching the sweep engine.
 *
 * Determinism contract: each point derives its RNG seed from the global
 * seed and its own grid index (splitmix64 mixing), results land in a
 * pre-sized vector slot keyed by that index, and JSON rendering uses one
 * fixed formatting path — so the output is byte-identical for a given
 * (options, seed) regardless of worker-thread count or scheduling.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "driver/json.hpp"

namespace awb::driver {

/** What one sweep point executes. */
enum class SweepMode
{
    Model,     ///< round-level PerfModel, full 2-layer GCN (any scale)
    Cycle,     ///< cycle-accurate 2-layer GCN (sim::Session)
    SpmmTdq1,  ///< cycle-accurate single SPMM, TDQ-1 dense-scan path (X×W)
    SpmmTdq2,  ///< cycle-accurate single SPMM, TDQ-2 Omega path (A×B)
    GraphSage, ///< cycle-accurate 2-layer GraphSAGE-mean workload graph
    Gin,       ///< cycle-accurate 2-layer GIN workload graph
    KhopGcn,   ///< cycle-accurate 2-hop GCN (A²(XW) chains, §3.3, §11)
    Bfs,       ///< frontier BFS via sparse-output SpGEMM (§11)
    Pagerank,  ///< PageRank power iteration via SpGEMM (§11)
    ChurnGcn,  ///< streaming churn epochs over a live adjacency (§12)
};

std::string sweepModeName(SweepMode m);
SweepMode parseSweepMode(const std::string &s);

/** The grid axes plus execution knobs. */
struct SweepOptions
{
    std::vector<std::string> datasets = {"cora", "citeseer", "pubmed",
                                         "nell", "reddit"};
    /** Balance-policy axis: canonical names or aliases registered in the
     *  PolicyRegistry (the paper's five evaluated designs by default). */
    std::vector<std::string> designs = {"baseline", "local-a", "local-b",
                                        "remote-c", "remote-d"};
    /** Platform axis: registered names from model/memory_model.hpp
     *  (`--platforms`, see `awbsim --list-platforms`). The default
     *  `unconstrained` composes no bandwidth floor and reproduces the
     *  platform-less grids bit for bit (DESIGN.md §8). */
    std::vector<std::string> platforms = {"unconstrained"};
    std::vector<int> peCounts = {512};
    /** Chip axis (`--chips`): simulated accelerators the graph is row-
     *  sharded across (DESIGN.md §9). The default {1} is the unsharded
     *  single-accelerator path, bit-identical to the pre-scale-out
     *  engine. Multi-chip points are supported by the model, cycle and
     *  single-SPMM modes and by the frontier kernels (bfs, pagerank);
     *  the workload-graph modes (graphsage, gin, khop) produce
     *  per-point error rows for chips > 1. */
    std::vector<int> chipCounts = {1};
    std::vector<SweepMode> modes = {SweepMode::Model};
    /** Cycle-engine implementation for the cycle-accurate modes
     *  (`--engine`): the per-non-zero event engine, or the round-batched
     *  engine whose statistics are bit-identical but whose wall clock
     *  makes Reddit-scale cycle sweeps feasible (DESIGN.md §6). Ignored
     *  by SweepMode::Model. */
    EngineKind engine = EngineKind::Event;
    double scale = 1.0;        ///< dataset node-count scale
    std::uint64_t seed = 1;    ///< global seed; per-point seeds derive
    int threads = 0;           ///< worker threads; 0 = hardware concurrency
    int repeats = 1;           ///< re-run each point; all repeats must
                               ///< produce identical cycles (verified)
    bool progress = false;     ///< emit per-point progress lines to stderr
};

/** One expanded grid point. */
struct SweepPoint
{
    std::size_t index = 0;     ///< position in the expanded grid
    std::string dataset;
    std::string policy = "baseline";  ///< canonical balance-policy name
    std::string platform = "unconstrained";  ///< registered platform name
    int pes = 0;
    int chips = 1;             ///< accelerator chips (row sharding, §9)
    SweepMode mode = SweepMode::Model;
    std::uint64_t seed = 0;    ///< derived, deterministic per point
};

/** Results of one executed point. */
struct SweepOutcome
{
    SweepPoint point;
    bool ok = false;
    std::string error;         ///< set when ok == false
    Cycle cycles = 0;
    Cycle idealCycles = 0;
    Cycle syncCycles = 0;
    Count tasks = 0;
    double utilization = 0.0;
    std::size_t peakTqDepth = 0;
    Count rowsSwitched = 0;
    Count convergedRound = -1;     ///< latest auto-tune convergence round
    Count rounds = 0;
    /** Rounds event-stepped by the cycle engine (< rounds when the
     *  batched engine replayed cached rounds; 0 in Model mode). */
    Count roundsSimulated = 0;
    Count bytesTotal = 0;          ///< modelled off-chip traffic (bytes)
    Cycle memoryCycles = 0;        ///< summed per-round bandwidth floors
    Count bwBoundRounds = 0;       ///< rounds stretched to their floor
    Count haloBytes = 0;           ///< inter-chip boundary-row traffic
    Cycle haloCycles = 0;          ///< summed per-round link floors
    Count haloBoundRounds = 0;     ///< rounds stretched to the link floor
    double chipImbalance = 1.0;    ///< max/mean chip workload (1 = even)
    /** Churn mode only: first epoch whose carried-vs-fresh cycle drift
     *  reached the tolerance (-1 = never went stale; DESIGN.md §12). */
    Count halfLifeEpochs = -1;
    double latencyMs = 0.0;        ///< at the paper's 275 MHz
    double inferencesPerKj = 0.0;
    double areaTotalClb = 0.0;
    double areaTqClb = 0.0;
    bool deterministic = true;     ///< repeats reproduced identical cycles
};

/** Deterministic per-point seed derivation (splitmix64 of seed, index). */
std::uint64_t derivePointSeed(std::uint64_t global_seed, std::size_t index);

/** Worker-pool size a sweep will actually use: opts.threads, or the
 *  hardware concurrency when 0, capped at the number of grid points. */
unsigned resolveThreads(const SweepOptions &opts, std::size_t n_points);

/** Expand the option axes into ordered grid points. */
std::vector<SweepPoint> expandGrid(const SweepOptions &opts);

/** Execute one point in isolation (used by workers and tests). */
SweepOutcome runSweepPoint(const SweepPoint &point,
                           const SweepOptions &opts);

/** Run already-expanded points across the worker pool; outcomes in
 *  grid order. */
std::vector<SweepOutcome> runSweep(const SweepOptions &opts,
                                   const std::vector<SweepPoint> &points);

/** Convenience: expandGrid + runSweep. */
std::vector<SweepOutcome> runSweep(const SweepOptions &opts);

/** Machine-readable document ("awbsim-sweep-v1" schema). */
Json sweepToJson(const SweepOptions &opts,
                 const std::vector<SweepOutcome> &outcomes);

/** Paper-style ASCII table of the outcomes. */
std::string sweepTable(const std::vector<SweepOutcome> &outcomes);

} // namespace awb::driver
