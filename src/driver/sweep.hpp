/**
 * @file
 * Multithreaded scenario-sweep engine: expands a grid of
 * dataset × policy × PE-count × execution-mode points, runs every point
 * on a std::thread worker pool (one independent SpmmEngine / PerfModel
 * per point, nothing shared but the result slot), and aggregates
 * cycle/utilization/energy/area results into paper-style tables and a
 * machine-readable JSON document.
 *
 * The design axis is a list of registered balance-policy names
 * (accel/policy.hpp): the six paper designs plus any registered
 * extension, so `awbsim --sweep --designs remote-d,work-steal,...` works
 * without touching the sweep engine.
 *
 * Determinism contract: each point derives its RNG seed from the global
 * seed and its dataset name (splitmix64 mixing — per dataset, not per
 * grid index, so the WorkloadCache synthesizes each dataset once per
 * grid), results land in a pre-sized vector slot keyed by grid index,
 * and JSON rendering uses one fixed formatting path — so the output is
 * byte-identical for a given (options, seed) regardless of worker-thread
 * count, intra-point thread count, or cache on/off.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "driver/json.hpp"
#include "exec/run.hpp"

namespace awb::driver {

/** What one sweep point executes — the execution core's Mode
 *  (exec/run.hpp), aliased for the sweep's historical spelling. */
using SweepMode = exec::Mode;

std::string sweepModeName(SweepMode m);
SweepMode parseSweepMode(const std::string &s);

/** The grid axes plus execution knobs. */
struct SweepOptions
{
    std::vector<std::string> datasets = {"cora", "citeseer", "pubmed",
                                         "nell", "reddit"};
    /** Balance-policy axis: canonical names or aliases registered in the
     *  PolicyRegistry (the paper's five evaluated designs by default). */
    std::vector<std::string> designs = {"baseline", "local-a", "local-b",
                                        "remote-c", "remote-d"};
    /** Platform axis: registered names from model/memory_model.hpp
     *  (`--platforms`, see `awbsim --list-platforms`). The default
     *  `unconstrained` composes no bandwidth floor and reproduces the
     *  platform-less grids bit for bit (DESIGN.md §8). */
    std::vector<std::string> platforms = {"unconstrained"};
    std::vector<int> peCounts = {512};
    /** Chip axis (`--chips`): simulated accelerators the graph is row-
     *  sharded across (DESIGN.md §9). The default {1} is the unsharded
     *  single-accelerator path, bit-identical to the pre-scale-out
     *  engine. Multi-chip points are supported by the model, cycle and
     *  single-SPMM modes and by the frontier kernels (bfs, pagerank);
     *  the workload-graph modes (graphsage, gin, khop) produce
     *  per-point error rows for chips > 1. */
    std::vector<int> chipCounts = {1};
    std::vector<SweepMode> modes = {SweepMode::Model};
    /** Cycle-engine implementation for the cycle-accurate modes
     *  (`--engine`): the per-non-zero event engine, or the round-batched
     *  engine whose statistics are bit-identical but whose wall clock
     *  makes Reddit-scale cycle sweeps feasible (DESIGN.md §6). Ignored
     *  by SweepMode::Model. */
    EngineKind engine = EngineKind::Event;
    double scale = 1.0;        ///< dataset node-count scale
    std::uint64_t seed = 1;    ///< global seed; per-point seeds derive
    int threads = 0;           ///< worker threads; 0 = hardware concurrency
    int repeats = 1;           ///< re-run each point; all repeats must
                               ///< produce identical cycles (verified)
    bool progress = false;     ///< emit per-point progress lines to stderr
};

/** One expanded grid point. */
struct SweepPoint
{
    std::size_t index = 0;     ///< position in the expanded grid
    std::string dataset;
    std::string policy = "baseline";  ///< canonical balance-policy name
    std::string platform = "unconstrained";  ///< registered platform name
    int pes = 0;
    int chips = 1;             ///< accelerator chips (row sharding, §9)
    SweepMode mode = SweepMode::Model;
    std::uint64_t seed = 0;    ///< derived, deterministic per dataset
};

/** Results of one executed point: the execution core's folded outcome
 *  (exec/run.hpp) plus the sweep's own bookkeeping. */
struct SweepOutcome : exec::RunResult
{
    SweepPoint point;
    bool deterministic = true;     ///< repeats reproduced identical cycles
};

/** Deterministic seed derivation (splitmix64 mixing). derivePointSeed
 *  keys on the grid index; deriveWorkloadSeed keys on the dataset name,
 *  which is what expandGrid uses — every point of one dataset shares a
 *  workload seed, so the WorkloadCache synthesizes each dataset once
 *  per grid instead of once per point (DESIGN.md §13). */
std::uint64_t derivePointSeed(std::uint64_t global_seed, std::size_t index);
std::uint64_t deriveWorkloadSeed(std::uint64_t global_seed,
                                 const std::string &dataset);

/** Worker-pool size a sweep will actually use: opts.threads, or the
 *  hardware concurrency when 0, capped at the number of grid points. */
unsigned resolveThreads(const SweepOptions &opts, std::size_t n_points);

/** Expand the option axes into ordered grid points. */
std::vector<SweepPoint> expandGrid(const SweepOptions &opts);

/** Execute one point in isolation (used by workers and tests). */
SweepOutcome runSweepPoint(const SweepPoint &point,
                           const SweepOptions &opts);

/** Run already-expanded points across the worker pool; outcomes in
 *  grid order. */
std::vector<SweepOutcome> runSweep(const SweepOptions &opts,
                                   const std::vector<SweepPoint> &points);

/** Convenience: expandGrid + runSweep. */
std::vector<SweepOutcome> runSweep(const SweepOptions &opts);

/** Machine-readable document ("awbsim-sweep-v1" schema). */
Json sweepToJson(const SweepOptions &opts,
                 const std::vector<SweepOutcome> &outcomes);

/** Paper-style ASCII table of the outcomes. */
std::string sweepTable(const std::vector<SweepOutcome> &outcomes);

} // namespace awb::driver
