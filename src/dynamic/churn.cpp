#include "dynamic/churn.hpp"

#include <algorithm>
#include <tuple>

#include "common/log.hpp"
#include "graph/generator.hpp"

namespace awb::dynamic {

namespace {

/** Preferential-attachment insert attempts before degrading to uniform
 *  sampling (a hub neighbourhood may be locally saturated). */
constexpr int kPrefAttempts = 32;

/** Uniform rejection-sampling attempts before the deterministic scan. */
constexpr int kUniformAttempts = 256;

/** Aged-delete tournament size: candidates sampled uniformly, the
 *  oldest (smallest born, ties by row then col) wins. */
constexpr std::size_t kAgedCandidates = 8;

} // namespace

EdgeChurnStream::EdgeChurnStream(const CscMatrix &initial,
                                 const ChurnParams &params)
    : params_(params), rng_(splitmix64(params.seed)),
      rows_(initial.rows()), cols_(initial.cols())
{
    if (rows_ <= 0 || cols_ <= 0)
        fatal("EdgeChurnStream: initial matrix must have positive dims");
    if (params_.insertFrac < 0.0 || params_.insertFrac > 1.0)
        fatal("EdgeChurnStream: insertFrac must be in [0, 1]");
    if (params_.agedFrac < 0.0 || params_.agedFrac > 1.0)
        fatal("EdgeChurnStream: agedFrac must be in [0, 1]");

    edges_.reserve(static_cast<std::size_t>(initial.nnz()));
    edgeCols_.reserve(static_cast<std::size_t>(initial.nnz()));
    present_.reserve(static_cast<std::size_t>(initial.nnz()) * 2);
    for (Index j = 0; j < cols_; ++j) {
        for (Count p = initial.colPtr()[static_cast<std::size_t>(j)];
             p < initial.colPtr()[static_cast<std::size_t>(j) + 1]; ++p) {
            const Index r =
                initial.rowId()[static_cast<std::size_t>(p)];
            edges_.push_back({r, j, /*born=*/0});
            edgeCols_.push_back(j);
            present_.insert(packKey(r, j));
        }
    }
}

EdgeEvent
EdgeChurnStream::next()
{
    // One mix draw per event, always consumed, so the draw sequence —
    // and with it the whole stream — is independent of batching.
    const bool insert = rng_.nextBool(params_.insertFrac);
    EdgeEvent ev =
        (insert || edges_.empty()) ? emitInsert() : emitDelete();
    ev.time = time_++;
    return ev;
}

std::vector<EdgeEvent>
EdgeChurnStream::nextBatch(Count n)
{
    std::vector<EdgeEvent> batch;
    batch.reserve(static_cast<std::size_t>(std::max<Count>(n, 0)));
    for (Count i = 0; i < n; ++i) batch.push_back(next());
    return batch;
}

EdgeEvent
EdgeChurnStream::emitInsert()
{
    auto acceptable = [&](Index r, Index c) {
        if (!params_.allowSelfLoops && r == c) return false;
        return present_.find(packKey(r, c)) == present_.end();
    };

    Index row = -1, col = -1;
    for (int a = 0; a < kPrefAttempts && row < 0; ++a) {
        const Index c = preferentialColumn(rng_, edgeCols_, cols_);
        const Index r = rng_.nextIndex(rows_);
        if (acceptable(r, c)) { row = r; col = c; }
    }
    for (int a = 0; a < kUniformAttempts && row < 0; ++a) {
        const Index r = rng_.nextIndex(rows_);
        const Index c = rng_.nextIndex(cols_);
        if (acceptable(r, c)) { row = r; col = c; }
    }
    if (row < 0) {
        // Near-full matrix: deterministic linear probe from a random
        // cell; fatal() only when genuinely no free slot remains.
        const std::uint64_t total = static_cast<std::uint64_t>(rows_) *
                                    static_cast<std::uint64_t>(cols_);
        std::uint64_t start =
            static_cast<std::uint64_t>(rng_.nextIndex(rows_)) *
                static_cast<std::uint64_t>(cols_) +
            static_cast<std::uint64_t>(rng_.nextIndex(cols_));
        for (std::uint64_t k = 0; k < total && row < 0; ++k) {
            const std::uint64_t cell = (start + k) % total;
            const Index r = static_cast<Index>(
                cell / static_cast<std::uint64_t>(cols_));
            const Index c = static_cast<Index>(
                cell % static_cast<std::uint64_t>(cols_));
            if (acceptable(r, c)) { row = r; col = c; }
        }
        if (row < 0)
            fatal("EdgeChurnStream: no free cell left to insert into");
    }

    edges_.push_back({row, col, time_});
    edgeCols_.push_back(col);
    present_.insert(packKey(row, col));
    return {0, ChurnOp::Insert, row, col, Value(1)};
}

EdgeEvent
EdgeChurnStream::emitDelete()
{
    const std::size_t n = edges_.size();
    std::size_t idx;
    if (rng_.nextBool(params_.agedFrac)) {
        // Aged delete: tournament among sampled candidates, oldest wins.
        idx = static_cast<std::size_t>(
            rng_.nextIndex(static_cast<Index>(n)));
        const std::size_t k = std::min(kAgedCandidates, n);
        for (std::size_t a = 1; a < k; ++a) {
            const std::size_t cand = static_cast<std::size_t>(
                rng_.nextIndex(static_cast<Index>(n)));
            const LiveEdge &x = edges_[cand];
            const LiveEdge &y = edges_[idx];
            if (std::make_tuple(x.born, x.row, x.col) <
                std::make_tuple(y.born, y.row, y.col))
                idx = cand;
        }
    } else {
        idx = static_cast<std::size_t>(
            rng_.nextIndex(static_cast<Index>(n)));
    }
    const LiveEdge e = edges_[idx];
    removeEdgeAt(idx);
    return {0, ChurnOp::Delete, e.row, e.col, Value(0)};
}

void
EdgeChurnStream::removeEdgeAt(std::size_t idx)
{
    present_.erase(packKey(edges_[idx].row, edges_[idx].col));
    edges_[idx] = edges_.back();
    edges_.pop_back();
    edgeCols_[idx] = edgeCols_.back();
    edgeCols_.pop_back();
}

} // namespace awb::dynamic
