/**
 * @file
 * Timestamped edge-churn stream (DESIGN.md §12): a deterministic,
 * splitmix64-seeded generator of insert/delete events against a live
 * edge set, extending the synthetic-graph machinery of graph/generator.
 *
 * Inserts are preferential-attachment draws (the target column is the
 * endpoint of a uniformly random live edge, i.e. degree-proportional —
 * graph/generator.hpp's preferentialColumn), deletes pick a live edge
 * either uniformly or aged (a deterministic tournament among sampled
 * candidates favouring the oldest insertion timestamp), and the
 * insert:delete mix is configurable. The stream owns all of its state
 * (live-edge list, membership set, PCG32 generator), so the emitted
 * event list is a pure function of (initial matrix, ChurnParams): it
 * replays byte-identically at any thread count and regardless of
 * whether events are drawn one at a time or in batches — the
 * determinism contract tests/test_dynamic.cpp locks.
 */

#pragma once

#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "sparse/csc.hpp"

namespace awb::dynamic {

/** What one churn event does to the live edge set. */
enum class ChurnOp
{
    Insert,  ///< add a new (row, col) edge; never a duplicate
    Delete,  ///< remove a live (row, col) edge
};

/** One timestamped mutation of the adjacency. */
struct EdgeEvent
{
    Count time = 0;   ///< strictly increasing per-stream event timestamp
    ChurnOp op = ChurnOp::Insert;
    Index row = 0;
    Index col = 0;
    Value val = 0;    ///< inserted value (1.0, pre-normalization); 0 for
                      ///< deletes
};

inline bool
operator==(const EdgeEvent &a, const EdgeEvent &b)
{
    return a.time == b.time && a.op == b.op && a.row == b.row &&
           a.col == b.col && a.val == b.val;
}

/** Knobs of one churn stream. */
struct ChurnParams
{
    double insertFrac = 0.5;  ///< probability an event is an insert
    /** Probability a delete is "aged" (tournament-oldest) instead of
     *  uniform over live edges. */
    double agedFrac = 0.5;
    bool allowSelfLoops = false;  ///< permit r == c inserts
    std::uint64_t seed = 1;   ///< splitmix64-mixed into the PCG32 state
};

/**
 * The stream. Construct from the initial adjacency, then draw events
 * with next() / nextBatch(); each event is valid against the live edge
 * set at its timestamp (inserts are never duplicates, deletes always
 * name a live edge), so applying the events in order — singly or in
 * batches — reconstructs the same matrix.
 */
class EdgeChurnStream
{
  public:
    EdgeChurnStream(const CscMatrix &initial, const ChurnParams &params);

    /** Draw the next event. When a delete is scheduled against an empty
     *  edge set it degrades to an insert (the only valid mutation). */
    EdgeEvent next();

    /** Draw `n` events — exactly the sequence n next() calls produce. */
    std::vector<EdgeEvent> nextBatch(Count n);

    Count liveEdges() const { return static_cast<Count>(edges_.size()); }
    Count emitted() const { return time_; }

  private:
    /** One live edge; `born` is the timestamp of its insertion (0 for
     *  edges of the initial matrix) — what aged deletes key on. */
    struct LiveEdge
    {
        Index row;
        Index col;
        Count born;
    };

    static std::uint64_t packKey(Index r, Index c)
    {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r))
                << 32U) |
               static_cast<std::uint32_t>(c);
    }

    EdgeEvent emitInsert();
    EdgeEvent emitDelete();
    void removeEdgeAt(std::size_t idx);

    ChurnParams params_;
    Rng rng_;
    Index rows_ = 0;
    Index cols_ = 0;
    Count time_ = 0;
    std::vector<LiveEdge> edges_;
    /** Column endpoints aligned with edges_ (swap-removed in lockstep);
     *  the degree-proportional sample space of preferentialColumn. */
    std::vector<Index> edgeCols_;
    std::unordered_set<std::uint64_t> present_;
};

} // namespace awb::dynamic
