#include "dynamic/delta_csr.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "sparse/convert.hpp"

namespace awb::dynamic {

namespace {

/** Minimum capacity granted to a row on its first relocation. */
constexpr Count kMinRowCap = 4;

} // namespace

DeltaCsr::DeltaCsr(const CsrMatrix &a)
{
    seed(a.rows(), a.cols(), a.rowPtr(), a.colId(), a.val());
}

DeltaCsr::DeltaCsr(const CscMatrix &a)
{
    const CsrMatrix r = cscToCsr(a);
    seed(r.rows(), r.cols(), r.rowPtr(), r.colId(), r.val());
}

void
DeltaCsr::seed(Index rows, Index cols, const std::vector<Count> &row_ptr,
               const std::vector<Index> &col_id,
               const std::vector<Value> &val)
{
    rows_ = rows;
    cols_ = cols;
    nnz_ = static_cast<Count>(col_id.size());
    colId_ = col_id;
    val_ = val;
    start_.assign(static_cast<std::size_t>(rows), 0);
    len_.assign(static_cast<std::size_t>(rows), 0);
    cap_.assign(static_cast<std::size_t>(rows), 0);
    for (Index r = 0; r < rows; ++r) {
        const std::size_t i = static_cast<std::size_t>(r);
        start_[i] = row_ptr[i];
        len_[i] = row_ptr[i + 1] - row_ptr[i];
        cap_[i] = len_[i];
    }
}

Count
DeltaCsr::findSlot(Index r, Index c) const
{
    const std::size_t i = static_cast<std::size_t>(r);
    const auto first = colId_.begin() + start_[i];
    const auto last = first + len_[i];
    return start_[i] + (std::lower_bound(first, last, c) - first);
}

bool
DeltaCsr::insert(Index r, Index c, Value v)
{
    if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
        fatal("DeltaCsr::insert: coordinate out of range");
    const std::size_t i = static_cast<std::size_t>(r);
    Count pos = findSlot(r, c);
    if (pos < start_[i] + len_[i] &&
        colId_[static_cast<std::size_t>(pos)] == c) {
        ++stats_.rejected;
        return false;
    }
    if (len_[i] == cap_[i]) {
        relocate(r, len_[i] + 1);
        pos = findSlot(r, c);
    }
    // Shift the tail of the live prefix one slot right, then drop the
    // new entry into the gap; the row stays sorted by construction.
    const Count end = start_[i] + len_[i];
    for (Count p = end; p > pos; --p) {
        colId_[static_cast<std::size_t>(p)] =
            colId_[static_cast<std::size_t>(p - 1)];
        val_[static_cast<std::size_t>(p)] =
            val_[static_cast<std::size_t>(p - 1)];
    }
    colId_[static_cast<std::size_t>(pos)] = c;
    val_[static_cast<std::size_t>(pos)] = v;
    ++len_[i];
    ++nnz_;
    ++stats_.inserts;
    return true;
}

bool
DeltaCsr::erase(Index r, Index c)
{
    if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
        fatal("DeltaCsr::erase: coordinate out of range");
    const std::size_t i = static_cast<std::size_t>(r);
    const Count pos = findSlot(r, c);
    const Count end = start_[i] + len_[i];
    if (pos >= end || colId_[static_cast<std::size_t>(pos)] != c) {
        ++stats_.rejected;
        return false;
    }
    for (Count p = pos; p + 1 < end; ++p) {
        colId_[static_cast<std::size_t>(p)] =
            colId_[static_cast<std::size_t>(p + 1)];
        val_[static_cast<std::size_t>(p)] =
            val_[static_cast<std::size_t>(p + 1)];
    }
    --len_[i];
    --nnz_;
    ++stats_.deletes;
    // The vacated slot stays as slack for the next insert; compaction
    // reclaims it once dead+slack slots outnumber live non-zeros.
    if (static_cast<Count>(colId_.size()) > 2 * nnz_ &&
        static_cast<Count>(colId_.size()) > 64)
        compact();
    return true;
}

Count
DeltaCsr::apply(const std::vector<EdgeEvent> &batch)
{
    Count applied = 0;
    for (const EdgeEvent &ev : batch) {
        const bool ok = ev.op == ChurnOp::Insert
                            ? insert(ev.row, ev.col, ev.val)
                            : erase(ev.row, ev.col);
        if (ok) ++applied;
    }
    return applied;
}

void
DeltaCsr::relocate(Index r, Count need)
{
    const std::size_t i = static_cast<std::size_t>(r);
    const Count new_cap = std::max({kMinRowCap, need, 2 * len_[i]});
    const Count new_start = static_cast<Count>(colId_.size());
    colId_.resize(static_cast<std::size_t>(new_start + new_cap), 0);
    val_.resize(static_cast<std::size_t>(new_start + new_cap), Value(0));
    for (Count p = 0; p < len_[i]; ++p) {
        colId_[static_cast<std::size_t>(new_start + p)] =
            colId_[static_cast<std::size_t>(start_[i] + p)];
        val_[static_cast<std::size_t>(new_start + p)] =
            val_[static_cast<std::size_t>(start_[i] + p)];
    }
    start_[i] = new_start;
    cap_[i] = new_cap;
    ++stats_.relocations;
    // No compaction here: the caller is mid-insert and relies on this
    // row keeping its freshly granted slack. Dead holes left behind are
    // bounded by the doubling schedule (the arena never exceeds a small
    // multiple of the live size) and reclaimed by the erase-path
    // compaction.
}

void
DeltaCsr::compact()
{
    std::vector<Index> col_id(static_cast<std::size_t>(nnz_));
    std::vector<Value> val(static_cast<std::size_t>(nnz_));
    Count out = 0;
    for (Index r = 0; r < rows_; ++r) {
        const std::size_t i = static_cast<std::size_t>(r);
        for (Count p = 0; p < len_[i]; ++p) {
            col_id[static_cast<std::size_t>(out + p)] =
                colId_[static_cast<std::size_t>(start_[i] + p)];
            val[static_cast<std::size_t>(out + p)] =
                val_[static_cast<std::size_t>(start_[i] + p)];
        }
        start_[i] = out;
        cap_[i] = len_[i];
        out += len_[i];
    }
    colId_ = std::move(col_id);
    val_ = std::move(val);
    ++stats_.compactions;
}

CsrMatrix
DeltaCsr::toCsr() const
{
    std::vector<Count> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
    std::vector<Index> col_id(static_cast<std::size_t>(nnz_));
    std::vector<Value> val(static_cast<std::size_t>(nnz_));
    Count out = 0;
    for (Index r = 0; r < rows_; ++r) {
        const std::size_t i = static_cast<std::size_t>(r);
        row_ptr[i] = out;
        for (Count p = 0; p < len_[i]; ++p) {
            col_id[static_cast<std::size_t>(out + p)] =
                colId_[static_cast<std::size_t>(start_[i] + p)];
            val[static_cast<std::size_t>(out + p)] =
                val_[static_cast<std::size_t>(start_[i] + p)];
        }
        out += len_[i];
    }
    row_ptr[static_cast<std::size_t>(rows_)] = out;
    return CsrMatrix::fromParts(rows_, cols_, std::move(row_ptr),
                                std::move(col_id), std::move(val));
}

CscMatrix
DeltaCsr::toCsc() const
{
    return csrToCsc(toCsr());
}

double
DeltaCsr::slackRatio() const
{
    if (colId_.empty()) return 0.0;
    return 1.0 - static_cast<double>(nnz_) /
                     static_cast<double>(colId_.size());
}

} // namespace awb::dynamic
