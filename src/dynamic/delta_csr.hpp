/**
 * @file
 * Incremental CSR/CSC updater with a slack-slot row layout
 * (DESIGN.md §12). Rows live in one shared arena with per-row
 * (start, len, cap) bookkeeping; within a row the column ids stay
 * sorted, so a point insert is a binary search plus an in-row shift.
 * A row that outgrows its capacity relocates to the arena tail with
 * doubled capacity (classic amortized growth), leaving a dead hole
 * behind; once dead+slack slots outnumber live non-zeros the whole
 * arena is compacted in row order.
 *
 * Rebuild equivalence: because each row's live prefix is always the
 * sorted (colId, val) sequence of its edges and values are only ever
 * copied (never recomputed), concatenating the rows yields *the* CSR
 * form a from-scratch CsrMatrix::fromCoo build of the live edge set
 * produces — bit-identical arrays, locked by tests/test_dynamic.cpp
 * after every churn batch.
 */

#pragma once

#include <vector>

#include "dynamic/churn.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace awb::dynamic {

/** Counters of one DeltaCsr's mutation history (introspection). */
struct DeltaCsrStats
{
    Count inserts = 0;      ///< accepted inserts
    Count deletes = 0;      ///< accepted deletes
    Count rejected = 0;     ///< duplicate inserts / absent deletes
    Count relocations = 0;  ///< rows moved to the arena tail to grow
    Count compactions = 0;  ///< whole-arena rebuilds
};

/** The updatable matrix. */
class DeltaCsr
{
  public:
    DeltaCsr() = default;

    /** Seed from an existing matrix (rows packed with zero slack). */
    explicit DeltaCsr(const CsrMatrix &a);
    explicit DeltaCsr(const CscMatrix &a);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Count nnz() const { return nnz_; }

    /** Insert (r, c) = v. Returns false — and changes nothing — when
     *  the coordinate is already present (duplicate rejection). */
    bool insert(Index r, Index c, Value v);

    /** Remove (r, c). Returns false when the coordinate is absent. */
    bool erase(Index r, Index c);

    /** Apply a churn batch in timestamp order; returns accepted events.
     *  Inserts of present coordinates and deletes of absent ones are
     *  counted in stats().rejected, not applied. */
    Count apply(const std::vector<EdgeEvent> &batch);

    /** Per-row non-zero counts — the live row-work vector the policy
     *  layer consumes; maintained incrementally, O(1) to read. */
    const std::vector<Count> &rowNnz() const { return len_; }

    /** Snapshot as CSR — bit-identical to CsrMatrix::fromCoo over the
     *  live edge set. */
    CsrMatrix toCsr() const;

    /** Snapshot as CSC — bit-identical to csrToCsc(toCsr()). */
    CscMatrix toCsc() const;

    /** Fraction of arena slots that are dead or slack (0 when packed). */
    double slackRatio() const;

    const DeltaCsrStats &stats() const { return stats_; }

  private:
    void seed(Index rows, Index cols, const std::vector<Count> &row_ptr,
              const std::vector<Index> &col_id,
              const std::vector<Value> &val);
    /** Position of c within row r's live prefix (lower bound). */
    Count findSlot(Index r, Index c) const;
    /** Relocate row r to the arena tail with capacity >= need. */
    void relocate(Index r, Count need);
    /** Pack every row contiguously, capacity == length. */
    void compact();

    Index rows_ = 0;
    Index cols_ = 0;
    Count nnz_ = 0;
    std::vector<Index> colId_;  ///< arena: column ids
    std::vector<Value> val_;    ///< arena: values, aligned with colId_
    std::vector<Count> start_;  ///< per-row arena offset
    std::vector<Count> len_;    ///< per-row live non-zeros
    std::vector<Count> cap_;    ///< per-row capacity (len <= cap)
    DeltaCsrStats stats_;
};

} // namespace awb::dynamic
