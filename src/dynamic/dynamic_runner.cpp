#include "dynamic/dynamic_runner.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "accel/perf_model.hpp"
#include "accel/spmm_engine.hpp"
#include "common/log.hpp"

namespace awb::dynamic {

namespace {

/** Static derivative of `cfg` for epoch execution: same engine, PEs,
 *  sharing hops and platform, but no between-round rebalancing — the
 *  carried/fresh partitions must pass through an epoch untouched so
 *  cycles measure partition quality, and both fidelities see the same
 *  partition trajectory. */
AccelConfig
staticExecConfig(AccelConfig cfg)
{
    cfg.balancePolicy.clear();
    cfg.remoteSwitching = false;
    cfg.approximateEq5 = false;
    return cfg;
}

} // namespace

DynamicRunner::DynamicRunner(const AccelConfig &cfg,
                             const CscMatrix &initial,
                             const ChurnParams &churn,
                             const DynamicOptions &opts)
    : cfg_(cfg), execCfg_(staticExecConfig(cfg)), opts_(opts),
      stream_(initial, churn), delta_(initial),
      partition_(initial.rows(), cfg.numPes, cfg.mapPolicy)
{
    std::string err = cfg_.validate();
    if (!err.empty()) fatal("DynamicRunner: " + err);
    if (cfg_.chips > 1)
        fatal("DynamicRunner: multi-chip streaming is unsupported — "
              "churn invalidates static shard boundaries");
    if (initial.rows() != initial.cols())
        fatal("DynamicRunner: adjacency must be square");
    if (opts_.epochs <= 0 || opts_.eventsPerEpoch <= 0)
        fatal("DynamicRunner: epochs and eventsPerEpoch must be > 0");
    if (opts_.denseCols <= 0)
        fatal("DynamicRunner: denseCols must be > 0");
    if (opts_.driftTolerance <= 0.0)
        fatal("DynamicRunner: driftTolerance must be > 0");

    const std::vector<Count> &row_work = delta_.rowNnz();
    partition_ = makePartitionPolicy(cfg_)->build(initial.rows(),
                                                  row_work, cfg_);
    policy_ = makeRebalancePolicy(cfg_, initial.rows());
    // Warm the persistent policy up on the initial graph so the first
    // epoch's carried partition is already tuned: without this, epoch-1
    // drift measures the policy's own warm-up transient (one
    // observation vs a converged fresh reference) instead of
    // churn-induced staleness.
    tuneWithPolicy(*policy_, row_work, partition_);

    features_ = DenseMatrix(initial.cols(), opts_.denseCols);
    Rng rng(splitmix64(opts_.seed), 0x5eedu);
    features_.fillUniform(rng, Value(-1), Value(1));
}

Cycle
DynamicRunner::executeEpoch(const CscMatrix &a,
                            const std::vector<Count> &row_work,
                            RowPartition &partition, DynamicEpoch *out)
{
    if (opts_.fidelity == DynamicFidelity::Cycle) {
        SpmmEngine engine(execCfg_);
        SpmmResult r = engine.execute(a, features_,
                                      TdqKind::Tdq2OmegaCsc, partition);
        if (out != nullptr) {
            out->tasks = r.stats.tasks;
            stats_.rounds += r.stats.rounds;
            stats_.roundsSimulated += r.stats.roundsSimulated;
            stats_.traffic += r.stats.traffic;
            stats_.memoryCycles += r.stats.memoryCycles;
            stats_.bwBoundRounds += r.stats.bwBoundRounds;
            stats_.peakQueueDepth =
                std::max(stats_.peakQueueDepth, r.stats.peakQueueDepth);
        }
        return r.stats.cycles;
    }
    PerfModel model(execCfg_);
    PerfSpmmResult r = model.runSpmm(row_work, opts_.denseCols, partition);
    if (out != nullptr) {
        out->tasks = r.tasks;
        stats_.rounds += r.rounds;
        stats_.traffic += r.traffic;
        stats_.memoryCycles += r.memoryCycles;
        stats_.bwBoundRounds += r.bwBoundRounds;
        stats_.peakQueueDepth =
            std::max(stats_.peakQueueDepth, r.peakQueueDepth);
    }
    return r.cycles;
}

DynamicEpoch
DynamicRunner::step()
{
    DynamicEpoch ep;

    // 1. Churn: one batch against the live edge set. Every event is
    // valid by stream construction, so apply() accepts all of them.
    std::vector<EdgeEvent> batch = stream_.nextBatch(opts_.eventsPerEpoch);
    delta_.apply(batch);
    std::unordered_set<Index> touched;
    for (const EdgeEvent &ev : batch) {
        touched.insert(ev.row);
        if (ev.op == ChurnOp::Insert)
            ++ep.inserts;
        else
            ++ep.deletes;
    }
    ep.rowsChanged = static_cast<Count>(touched.size());
    ep.nnz = delta_.nnz();

    // 2. Boundary rebalance: the persistent policy digests the work
    // delta through one synthetic observation (home-attributed per-PE
    // work; drain == work, the same shape the round-level model feeds).
    const std::vector<Count> &row_work = delta_.rowNnz();
    if (policy_->wantsObservations()) {
        RoundObservation obs;
        obs.peWork = partition_.workload(row_work);
        obs.drainCycle.assign(obs.peWork.begin(), obs.peWork.end());
        ep.rowsMoved = policy_->observeAndAdjust(obs, row_work, partition_);
    }

    // 3. Execute the epoch on the carried partition, and on a freshly
    // tuned one as the drift reference (same matrix, same features).
    const CscMatrix a = delta_.toCsc();
    ep.cycles = executeEpoch(a, row_work, partition_, &ep);
    RowPartition fresh = tuneToConvergence(cfg_, row_work);
    ep.freshCycles = executeEpoch(a, row_work, fresh, nullptr);
    ep.drift = ep.freshCycles > 0
                   ? static_cast<double>(ep.cycles) /
                             static_cast<double>(ep.freshCycles) -
                         1.0
                   : 0.0;

    stats_.epochs.push_back(ep);
    stats_.totalCycles += ep.cycles;
    stats_.totalTasks += ep.tasks;
    stats_.rowsMoved += ep.rowsMoved;
    stats_.rowsChanged += ep.rowsChanged;
    if (stats_.halfLifeEpochs < 0 && ep.drift >= opts_.driftTolerance)
        stats_.halfLifeEpochs = static_cast<Count>(stats_.epochs.size());
    return ep;
}

const DynamicRunStats &
DynamicRunner::run()
{
    while (static_cast<Count>(stats_.epochs.size()) < opts_.epochs)
        step();
    return stats_;
}

DynamicRunStats
runChurnGcn(const AccelConfig &cfg, const CscMatrix &initial,
            const ChurnParams &churn, const DynamicOptions &opts)
{
    DynamicRunner runner(cfg, initial, churn, opts);
    return runner.run();
}

} // namespace awb::dynamic
