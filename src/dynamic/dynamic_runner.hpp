/**
 * @file
 * Dynamic-graph streaming runner (DESIGN.md §12): the FrontierRunner-
 * style loop of the churn experiments. Each epoch applies one churn
 * batch to a DeltaCsr-maintained adjacency, lets the configuration's
 * RebalancePolicy digest the per-row work delta at the epoch boundary
 * (one synthetic observation: per-PE home-attributed work), then runs
 * an inference epoch — an SPMM of the live adjacency against a fixed
 * dense feature block — on the chosen fidelity with the *carried*
 * partition.
 *
 * Alongside the carried partition the runner keeps a freshly tuned
 * reference: every epoch it re-tunes a partition from scratch against
 * the live row work (policy.hpp's tuneToConvergence) and executes the
 * same epoch on it. The per-epoch drift carried/fresh − 1 measures how
 * stale the carried map has become; the **convergence half-life** is
 * the first epoch at which drift reaches the configured tolerance
 * (−1 when it never does). Execution inside an epoch uses a static
 * derivative of the config (no rebalancing), so cycles reflect
 * partition quality alone and both fidelities see identical partition
 * trajectories.
 */

#pragma once

#include <vector>

#include "accel/config.hpp"
#include "accel/policy.hpp"
#include "accel/row_map.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/delta_csr.hpp"
#include "model/memory_model.hpp"
#include "sparse/dense.hpp"

namespace awb::dynamic {

/** Which simulator executes the per-epoch SPMMs. */
enum class DynamicFidelity
{
    Cycle,  ///< cycle-accurate SpmmEngine (TDQ-2/Omega path)
    Model,  ///< round-level PerfModel
};

/** Knobs of one streaming run. */
struct DynamicOptions
{
    Count epochs = 8;           ///< churn batches to apply
    Count eventsPerEpoch = 256; ///< churn events per batch
    Index denseCols = 16;       ///< feature-block columns per epoch
    /** Carried-vs-fresh cycle drift declaring the carried partition
     *  stale (0.10 == 10%). */
    double driftTolerance = 0.10;
    DynamicFidelity fidelity = DynamicFidelity::Cycle;
    std::uint64_t seed = 1;     ///< dense feature block fill
};

/** One epoch's accounting. */
struct DynamicEpoch
{
    Count inserts = 0;      ///< accepted edge inserts this batch
    Count deletes = 0;      ///< accepted edge deletes this batch
    Count nnz = 0;          ///< live non-zeros after the batch
    Count rowsChanged = 0;  ///< distinct rows the batch touched
    Count rowsMoved = 0;    ///< rows the boundary policy migrated
    Cycle cycles = 0;       ///< epoch cycles on the carried partition
    Cycle freshCycles = 0;  ///< epoch cycles on the fresh partition
    double drift = 0.0;     ///< cycles / freshCycles - 1
    Count tasks = 0;        ///< MACs executed (carried run)
};

/** Aggregated statistics of one streaming run. */
struct DynamicRunStats
{
    std::vector<DynamicEpoch> epochs;
    Cycle totalCycles = 0;  ///< summed carried-partition epoch cycles
    Count totalTasks = 0;
    Count rowsMoved = 0;    ///< summed boundary-policy migrations
    Count rowsChanged = 0;  ///< summed distinct-row churn footprint
    /** First epoch (1-based) whose drift reached the tolerance; -1
     *  when the carried partition never went stale. */
    Count halfLifeEpochs = -1;
    Count rounds = 0;           ///< SPMM rounds executed (carried runs)
    Count roundsSimulated = 0;  ///< event-stepped rounds (0 for model)
    MemoryTraffic traffic;      ///< summed over carried runs
    Cycle memoryCycles = 0;
    Count bwBoundRounds = 0;
    std::size_t peakQueueDepth = 0;
};

/**
 * The runner. Construct, then step() per epoch (or run() them all);
 * stats() aggregates as epochs complete.
 */
class DynamicRunner
{
  public:
    /** fatal() on an invalid config; `initial` seeds both the DeltaCsr
     *  and the churn stream. Multi-chip configs are rejected — churn
     *  invalidates static shard boundaries (future work, §12). */
    DynamicRunner(const AccelConfig &cfg, const CscMatrix &initial,
                  const ChurnParams &churn, const DynamicOptions &opts);

    /** Apply one churn batch, rebalance, execute the epoch on carried
     *  and fresh partitions. Also folds the epoch into stats(). */
    DynamicEpoch step();

    /** step() through opts.epochs epochs; returns stats(). */
    const DynamicRunStats &run();

    const DynamicRunStats &stats() const { return stats_; }

    /** Live adjacency snapshot (for rebuild-equivalence checks). */
    const DeltaCsr &matrix() const { return delta_; }

    const RowPartition &partition() const { return partition_; }

  private:
    Cycle executeEpoch(const CscMatrix &a,
                       const std::vector<Count> &row_work,
                       RowPartition &partition, DynamicEpoch *out);

    AccelConfig cfg_;      ///< as given (boundary-policy resolution)
    AccelConfig execCfg_;  ///< static derivative (epoch execution)
    DynamicOptions opts_;
    EdgeChurnStream stream_;
    DeltaCsr delta_;
    RowPartition partition_;  ///< the carried row map
    std::unique_ptr<RebalancePolicy> policy_;  ///< boundary policy
    DenseMatrix features_;    ///< fixed dense block, all epochs
    DynamicRunStats stats_;
};

/** Convenience: construct a runner over `initial` and run every epoch
 *  (the churn-gcn sweep mode and bench entry point). */
DynamicRunStats runChurnGcn(const AccelConfig &cfg,
                            const CscMatrix &initial,
                            const ChurnParams &churn,
                            const DynamicOptions &opts);

} // namespace awb::dynamic
