#include "exec/run.hpp"

#include <chrono>
#include <memory>
#include <utility>

#include "accel/gcn_accel.hpp"
#include "accel/perf_model.hpp"
#include "accel/policy.hpp"
#include "accel/scaleout.hpp"
#include "accel/spmm_engine.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "dynamic/dynamic_runner.hpp"
#include "exec/workload_cache.hpp"
#include "gcn/model.hpp"
#include "graph/datasets.hpp"
#include "kernels/bfs.hpp"
#include "kernels/pagerank.hpp"
#include "model/area_model.hpp"
#include "model/energy_model.hpp"
#include "sim/factories.hpp"
#include "sim/session.hpp"
#include "sparse/convert.hpp"

namespace awb::exec {

namespace {

/** Wall-clock stopwatch for the execution segment only. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace

std::string
modeName(Mode m)
{
    switch (m) {
      case Mode::Model: return "model";
      case Mode::Cycle: return "cycle";
      case Mode::SpmmTdq1: return "tdq1";
      case Mode::SpmmTdq2: return "tdq2";
      case Mode::GraphSage: return "graphsage";
      case Mode::Gin: return "gin";
      case Mode::KhopGcn: return "khop";
      case Mode::Bfs: return "bfs";
      case Mode::Pagerank: return "pagerank";
      case Mode::ChurnGcn: return "churn";
    }
    return "?";
}

Mode
parseMode(const std::string &s)
{
    if (s == "model") return Mode::Model;
    if (s == "cycle") return Mode::Cycle;
    if (s == "tdq1") return Mode::SpmmTdq1;
    if (s == "tdq2") return Mode::SpmmTdq2;
    if (s == "graphsage") return Mode::GraphSage;
    if (s == "gin") return Mode::Gin;
    if (s == "khop") return Mode::KhopGcn;
    if (s == "bfs") return Mode::Bfs;
    if (s == "pagerank") return Mode::Pagerank;
    if (s == "churn" || s == "churn-gcn") return Mode::ChurnGcn;
    fatal("unknown sweep mode '" + s +
          "' (model|cycle|tdq1|tdq2|graphsage|gin|khop|bfs|pagerank|"
          "churn)");
}

void
fold(RunResult &out, const SpmmStats &s)
{
    out.cycles += s.cycles;
    out.idealCycles += s.idealCycles;
    out.syncCycles += s.syncCycles;
    out.tasks += s.tasks;
    out.rounds += s.rounds;
    out.roundsSimulated += s.roundsSimulated;
    out.rowsSwitched += s.rowsSwitched;
    out.convergedRound = std::max(out.convergedRound, s.convergedRound);
    out.peakTqDepth = std::max(out.peakTqDepth, s.peakQueueDepth);
    out.bytesTotal += s.traffic.total();
    out.memoryCycles += s.memoryCycles;
    out.bwBoundRounds += s.bwBoundRounds;
}

void
fold(RunResult &out, const PerfSpmmResult &s)
{
    out.idealCycles += s.idealCycles;
    out.syncCycles += s.syncCycles;
    out.rounds += s.rounds;
    out.rowsSwitched += s.rowsSwitched;
    out.convergedRound = std::max(out.convergedRound, s.convergedRound);
    out.peakTqDepth = std::max(out.peakTqDepth, s.peakQueueDepth);
    out.bytesTotal += s.traffic.total();
    out.memoryCycles += s.memoryCycles;
    out.bwBoundRounds += s.bwBoundRounds;
}

void
fold(RunResult &out, const kernels::FrontierRunStats &s)
{
    out.cycles += s.totalCycles;
    out.tasks += s.totalTasks;
    out.rounds += s.rounds;
    out.roundsSimulated += s.roundsSimulated;
    out.rowsSwitched += s.rowsSwitched;
    out.convergedRound = std::max(out.convergedRound, s.convergedRound);
    out.peakTqDepth = std::max(out.peakTqDepth, s.peakQueueDepth);
    out.bytesTotal += s.traffic.total();
    out.memoryCycles += s.memoryCycles;
    out.bwBoundRounds += s.bwBoundRounds;
    out.haloBytes += s.haloBytes;
    out.haloCycles += s.haloCycles;
    out.haloBoundRounds += s.haloBoundRounds;
    out.chipImbalance = s.chipImbalance;
}

void
fold(RunResult &out, const dynamic::DynamicRunStats &s)
{
    out.cycles += s.totalCycles;
    out.tasks += s.totalTasks;
    out.rounds += s.rounds;
    out.roundsSimulated += s.roundsSimulated;
    out.rowsSwitched += s.rowsMoved;
    out.peakTqDepth = std::max(out.peakTqDepth, s.peakQueueDepth);
    out.bytesTotal += s.traffic.total();
    out.memoryCycles += s.memoryCycles;
    out.bwBoundRounds += s.bwBoundRounds;
    out.halfLifeEpochs = s.halfLifeEpochs;
}

void
fold(RunResult &out, const sim::SessionResult &res)
{
    for (const auto &s : res.nodeStats) fold(out, s);
    out.cycles = res.totalCycles;  // pipelined end-to-end delay
}

void
fold(RunResult &out, const ScaleOutSummary &s)
{
    out.haloBytes += s.haloBytes;
    out.haloCycles += s.haloCycles;
    out.haloBoundRounds += s.haloBoundRounds;
    out.chipImbalance = s.chipImbalance;
}

void
finalize(RunResult &out, const AccelConfig &cfg)
{
    // One utilization definition for every mode (DESIGN.md §13):
    // executed tasks over the PE-cycles the run occupied. Historically
    // the churn fold computed this, the SPMM modes took the engine's
    // value (same formula), the model/session modes reported a
    // serial-cycle variant and the frontier kernels reported nothing.
    out.utilization =
        out.cycles > 0 && cfg.numPes > 0
            ? static_cast<double>(out.tasks) /
                  (static_cast<double>(cfg.numPes) *
                   static_cast<double>(out.cycles))
            : 0.0;
    double mhz = policyClockMhz(cfg);
    EnergyReport energy = evaluateEnergy(out.cycles, out.tasks, mhz);
    out.latencyMs = energy.latencyMs;
    out.inferencesPerKj = energy.inferencesPerKj;
    AreaEstimate area = estimateArea(cfg, out.peakTqDepth);
    out.areaTotalClb = area.totalClb;
    out.areaTqClb = area.tqClb;
    out.ok = true;
}

RunResult
run(const RunRequest &req)
{
    RunResult out;
    const DatasetSpec &spec = findDataset(req.dataset);
    WorkloadCache &wl = WorkloadCache::instance();
    if (req.pes <= 0) {
        out.error = "numPes must be positive";
        return out;
    }
    // Surface configuration errors (bad field combinations, and for the
    // cycle-accurate modes the power-of-two PE count the Omega network
    // needs) as error results, not aborts: configure without validating,
    // then route validate() into the error field.
    AccelConfig cfg = configureForPolicy(
        PolicyRegistry::instance().get(req.policy), req.pes, hopBase(spec));
    cfg.engine = req.engine;
    cfg.platform = req.platform;
    cfg.chips = req.chips;
    std::string cfg_err =
        cfg.validate(/*cycle_accurate_tdq2=*/req.mode != Mode::Model);
    if (!cfg_err.empty()) {
        out.error = cfg_err;
        return out;
    }
    const bool sharded = cfg.chips > 1;
    if (sharded &&
        (req.mode == Mode::GraphSage || req.mode == Mode::Gin ||
         req.mode == Mode::KhopGcn)) {
        out.error = "mode '" + modeName(req.mode) + "' with chips=" +
                    std::to_string(req.chips) +
                    " is unsupported: the workload-graph modes "
                    "(graphsage|gin|khop) run unsharded only; multi-chip "
                    "sharding supports model|cycle|tdq1|tdq2";
        return out;
    }
    if (sharded && req.mode == Mode::ChurnGcn) {
        out.error = "mode 'churn' with chips=" + std::to_string(req.chips) +
                    " is unsupported: edge churn invalidates static "
                    "shard boundaries";
        return out;
    }

    switch (req.mode) {
      case Mode::Model: {
        auto prof = wl.profile(spec, req.seed, req.scale);
        if (sharded) {
            // Halo counting needs the adjacency structure, which the
            // profile alone cannot provide.
            auto a = wl.adjacency(spec, req.seed, req.scale);
            Stopwatch timer;
            ShardedPerfGcnResult sr = modelGcnSharded(cfg, *prof, a.get());
            out.wallMs = timer.elapsedMs();
            out.cycles = sr.result.totalCycles;
            out.tasks = sr.result.totalTasks;
            for (const auto &layer : sr.result.layers) {
                fold(out, layer.xw);
                fold(out, layer.ax);
            }
            fold(out, sr.scaleout);
            break;
        }
        Stopwatch timer;
        PerfGcnResult res = PerfModel(cfg).runGcn(*prof);
        out.wallMs = timer.elapsedMs();
        out.cycles = res.totalCycles;
        out.tasks = res.totalTasks;
        for (const auto &layer : res.layers) {
            fold(out, layer.xw);
            fold(out, layer.ax);
        }
        break;
      }
      case Mode::Cycle: {
        auto ds = wl.dataset(spec, req.seed, req.scale);
        GcnModel model =
            makeGcnModel(ds->spec.f1, ds->spec.f2, ds->spec.f3, req.seed);
        if (sharded) {
            Stopwatch timer;
            ShardedGcnResult sr = runGcnSharded(cfg, *ds, model);
            out.wallMs = timer.elapsedMs();
            for (const auto &layer : sr.result.layers) {
                fold(out, layer.xw);
                fold(out, layer.ax);
                for (const auto &hop : layer.extraHops) fold(out, hop);
            }
            out.cycles = sr.result.totalCycles;
            out.tasks = sr.result.totalTasks;
            fold(out, sr.scaleout);
            break;
        }
        Stopwatch timer;
        GcnRunResult res = runGcn(cfg, *ds, model);
        out.wallMs = timer.elapsedMs();
        for (const auto &layer : res.layers) {
            fold(out, layer.xw);
            fold(out, layer.ax);
            for (const auto &hop : layer.extraHops) fold(out, hop);
        }
        out.cycles = res.totalCycles;  // pipelined end-to-end delay
        out.tasks = res.totalTasks;
        break;
      }
      case Mode::SpmmTdq1: {
        auto ds = wl.dataset(spec, req.seed, req.scale);
        CscMatrix x = csrToCsc(ds->features);
        Rng rng(req.seed, /*seq=*/1);
        DenseMatrix w(ds->spec.f1, ds->spec.f2);
        w.fillUniform(rng, -1.0f, 1.0f);
        if (sharded) {
            Stopwatch timer;
            ShardedSpmmResult sr =
                executeSpmmSharded(cfg, x, w, TdqKind::Tdq1DenseScan);
            out.wallMs = timer.elapsedMs();
            fold(out, sr.result.stats);
            fold(out, sr.scaleout);
            break;
        }
        RowPartition part =
            makePartitionPolicy(cfg)->build(x.rows(), x.rowNnz(), cfg);
        Stopwatch timer;
        SpmmResult r =
            SpmmEngine(cfg).execute(x, w, TdqKind::Tdq1DenseScan, part);
        out.wallMs = timer.elapsedMs();
        fold(out, r.stats);
        break;
      }
      case Mode::SpmmTdq2: {
        // Only the adjacency and the scaled dims are needed; skip the
        // feature matrix (it would dominate memory at Reddit scale).
        // loadSyntheticAdjacency is bit-identical to the adjacency
        // member loadSynthetic would produce for the same key.
        auto a = wl.adjacency(spec, req.seed, req.scale);
        const DatasetSpec sc = scaledSpec(spec, req.scale);
        Rng rng(req.seed, /*seq=*/2);
        DenseMatrix b(sc.nodes, req.denseCols > 0 ? req.denseCols : sc.f2);
        b.fillUniform(rng, -1.0f, 1.0f);
        if (sharded) {
            Stopwatch timer;
            ShardedSpmmResult sr =
                executeSpmmSharded(cfg, *a, b, TdqKind::Tdq2OmegaCsc);
            out.wallMs = timer.elapsedMs();
            fold(out, sr.result.stats);
            fold(out, sr.scaleout);
            break;
        }
        RowPartition part =
            makePartitionPolicy(cfg)->build(a->rows(), a->rowNnz(), cfg);
        Stopwatch timer;
        SpmmResult r =
            SpmmEngine(cfg).execute(*a, b, TdqKind::Tdq2OmegaCsc, part);
        out.wallMs = timer.elapsedMs();
        fold(out, r.stats);
        break;
      }
      case Mode::GraphSage: {
        auto ds = wl.dataset(spec, req.seed, req.scale);
        sim::WorkloadBundle w = sim::buildGraphSage(
            *ds, ds->spec.f2, ds->spec.f3, /*meanAggregate=*/true,
            req.seed);
        sim::Session session(cfg);
        Stopwatch timer;
        fold(out, sim::runWorkload(session, std::move(w)));
        out.wallMs = timer.elapsedMs();
        break;
      }
      case Mode::Gin: {
        auto ds = wl.dataset(spec, req.seed, req.scale);
        sim::WorkloadBundle w = sim::buildGin(*ds, ds->spec.f2,
                                              ds->spec.f3, /*eps=*/0.1,
                                              req.seed);
        sim::Session session(cfg);
        Stopwatch timer;
        fold(out, sim::runWorkload(session, std::move(w)));
        out.wallMs = timer.elapsedMs();
        break;
      }
      case Mode::KhopGcn: {
        auto ds = wl.dataset(spec, req.seed, req.scale);
        GcnModel model =
            makeGcnModel(ds->spec.f1, ds->spec.f2, ds->spec.f3, req.seed);
        sim::WorkloadBundle w = sim::buildExactKhopGcn(*ds, model, 2);
        sim::Session session(cfg);
        Stopwatch timer;
        fold(out, sim::runWorkload(session, std::move(w)));
        out.wallMs = timer.elapsedMs();
        break;
      }
      case Mode::Bfs: {
        auto a = wl.adjacency(spec, req.seed, req.scale);
        Stopwatch timer;
        kernels::BfsRun run = kernels::runBfs(cfg, *a, /*source=*/0);
        out.wallMs = timer.elapsedMs();
        fold(out, run.stats);
        break;
      }
      case Mode::Pagerank: {
        auto a = wl.adjacency(spec, req.seed, req.scale);
        Stopwatch timer;
        kernels::PagerankRun run = kernels::runPagerank(
            cfg, *a, /*damping=*/0.85, /*tol=*/1e-6, /*maxIters=*/200);
        out.wallMs = timer.elapsedMs();
        fold(out, run.stats);
        break;
      }
      case Mode::ChurnGcn: {
        auto a = wl.adjacency(spec, req.seed, req.scale);
        dynamic::ChurnParams churn;
        churn.seed = req.seed;
        dynamic::DynamicOptions dopts;
        dopts.fidelity = dynamic::DynamicFidelity::Cycle;
        dopts.epochs = 6;
        dopts.eventsPerEpoch = std::max<Count>(16, a->nnz() / 20);
        dopts.denseCols = 8;
        dopts.seed = req.seed;
        Stopwatch timer;
        fold(out, dynamic::runChurnGcn(cfg, *a, churn, dopts));
        out.wallMs = timer.elapsedMs();
        break;
      }
    }

    finalize(out, cfg);
    return out;
}

} // namespace awb::exec
