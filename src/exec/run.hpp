/**
 * @file
 * Unified execution core (DESIGN.md §13): one function maps a
 * (dataset, policy, platform, PEs, chips, mode, engine, seed) request
 * to a folded outcome. The sweep engine, the bench drivers and the
 * scenarios all sit on this dispatch instead of hand-wiring the
 * config→policy→engine→stats plumbing per front end.
 *
 * Workloads come from the process-wide WorkloadCache; the fold()
 * overloads flatten every engine's stats struct into one RunResult; and
 * finalize() derives utilization, energy and area in exactly one place
 * — tasks / (PEs × cycles) for every mode, fixing the historical drift
 * where each mode's accumulate() computed it differently or not at all.
 *
 * wallMs times only the execution segment (the engine/model run), never
 * dataset synthesis, operand fills or partition builds — matching what
 * the tracked BENCH_engine.json has always measured.
 */

#pragma once

#include <cstdint>
#include <string>

#include "accel/config.hpp"
#include "common/types.hpp"

namespace awb {
struct SpmmStats;
struct PerfSpmmResult;
struct ScaleOutSummary;
namespace kernels {
struct FrontierRunStats;
}
namespace dynamic {
struct DynamicRunStats;
}
namespace sim {
struct SessionResult;
}
} // namespace awb

namespace awb::exec {

/** What one request executes (the sweep's SweepMode is an alias). */
enum class Mode
{
    Model,     ///< round-level PerfModel, full 2-layer GCN (any scale)
    Cycle,     ///< cycle-accurate 2-layer GCN (sim::Session)
    SpmmTdq1,  ///< cycle-accurate single SPMM, TDQ-1 dense-scan path (X×W)
    SpmmTdq2,  ///< cycle-accurate single SPMM, TDQ-2 Omega path (A×B)
    GraphSage, ///< cycle-accurate 2-layer GraphSAGE-mean workload graph
    Gin,       ///< cycle-accurate 2-layer GIN workload graph
    KhopGcn,   ///< cycle-accurate 2-hop GCN (A²(XW) chains, §3.3, §11)
    Bfs,       ///< frontier BFS via sparse-output SpGEMM (§11)
    Pagerank,  ///< PageRank power iteration via SpGEMM (§11)
    ChurnGcn,  ///< streaming churn epochs over a live adjacency (§12)
};

std::string modeName(Mode m);
Mode parseMode(const std::string &s);

/** One workload execution, fully specified. */
struct RunRequest
{
    std::string dataset;
    std::string policy = "baseline";  ///< registered balance-policy name
    std::string platform = "unconstrained";  ///< registered platform name
    int pes = 0;
    int chips = 1;
    Mode mode = Mode::Model;
    EngineKind engine = EngineKind::Event;
    std::uint64_t seed = 1;
    double scale = 1.0;
    /** TDQ-2 only: dense-operand column count; 0 = the spec's f2. The
     *  engine bench sweeps this as its `k` axis. */
    Index denseCols = 0;
};

/** Folded outcome of one request — every front end reads from here. */
struct RunResult
{
    bool ok = false;
    std::string error;             ///< set when ok == false
    Cycle cycles = 0;
    Cycle idealCycles = 0;
    Cycle syncCycles = 0;
    Count tasks = 0;
    /** tasks / (PEs × cycles), derived once in finalize() for every
     *  mode (DESIGN.md §13). */
    double utilization = 0.0;
    std::size_t peakTqDepth = 0;
    Count rowsSwitched = 0;
    Count convergedRound = -1;     ///< latest auto-tune convergence round
    Count rounds = 0;
    /** Rounds event-stepped by the cycle engine (< rounds when the
     *  batched engine replayed cached rounds; 0 in Model mode). */
    Count roundsSimulated = 0;
    Count bytesTotal = 0;          ///< modelled off-chip traffic (bytes)
    Cycle memoryCycles = 0;        ///< summed per-round bandwidth floors
    Count bwBoundRounds = 0;       ///< rounds stretched to their floor
    Count haloBytes = 0;           ///< inter-chip boundary-row traffic
    Cycle haloCycles = 0;          ///< summed per-round link floors
    Count haloBoundRounds = 0;     ///< rounds stretched to the link floor
    double chipImbalance = 1.0;    ///< max/mean chip workload (1 = even)
    /** Churn mode only: first epoch whose carried-vs-fresh cycle drift
     *  reached the tolerance (-1 = never went stale; DESIGN.md §12). */
    Count halfLifeEpochs = -1;
    double latencyMs = 0.0;        ///< at the paper's 275 MHz
    double inferencesPerKj = 0.0;
    double areaTotalClb = 0.0;
    double areaTqClb = 0.0;
    /** Host wall clock of the execution segment only (advisory). */
    double wallMs = 0.0;
};

/** Fold one stats struct into the outcome accumulators. */
void fold(RunResult &out, const SpmmStats &s);
void fold(RunResult &out, const PerfSpmmResult &s);
void fold(RunResult &out, const kernels::FrontierRunStats &s);
void fold(RunResult &out, const dynamic::DynamicRunStats &s);
void fold(RunResult &out, const sim::SessionResult &res);
void fold(RunResult &out, const ScaleOutSummary &s);

/**
 * Derive everything computed from the folded aggregates: utilization
 * (tasks / (PEs × cycles)), energy (latency, inferences/kJ) and area.
 * Marks the result ok.
 */
void finalize(RunResult &out, const AccelConfig &cfg);

/**
 * Execute one request end to end: resolve the dataset (through the
 * WorkloadCache), build the policy configuration, dispatch on mode,
 * fold and finalize. Configuration errors come back as error results,
 * not aborts; unknown dataset/policy/platform names fatal() exactly
 * like the loaders they wrap.
 */
RunResult run(const RunRequest &req);

} // namespace awb::exec
