#include "exec/workload_cache.hpp"

#include <atomic>
#include <future>
#include <locale>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>

#include "accel/round_cache.hpp"

namespace awb::exec {

namespace {

/**
 * Content key: every spec field plus seed and scale. Two specs that
 * agree field-for-field are the same workload no matter which registry
 * or hand-built struct they came from.
 */
std::string
contentKey(const char *kind, const DatasetSpec &s, std::uint64_t seed,
           double scale)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << kind << '|' << s.name << '|' << s.nodes << '|' << s.f1 << '|'
       << s.f2 << '|' << s.f3 << '|' << std::hexfloat << s.densityA << '|'
       << s.densityX1 << '|' << s.densityX2 << '|'
       << static_cast<int>(s.style) << '|' << s.alpha << '|' << s.dMax
       << '|' << s.hopOverride << '|' << seed << '|' << scale;
    return os.str();
}

template <typename T>
using FutureMap =
    std::unordered_map<std::string,
                       std::shared_future<std::shared_ptr<const T>>>;

/**
 * Single-flight memoization: the first requester of a key installs a
 * future and synthesizes outside the lock; concurrent requesters wait
 * on the same future. A build() that throws removes the slot so a later
 * request can retry, and rethrows to the waiters via the future.
 */
template <typename T, typename Build>
std::shared_ptr<const T>
getOrBuild(std::mutex &mu, FutureMap<T> &map, const std::string &key,
           std::atomic<std::uint64_t> &hits,
           std::atomic<std::uint64_t> &misses, Build build)
{
    std::promise<std::shared_ptr<const T>> promise;
    std::shared_future<std::shared_ptr<const T>> waiter;
    bool is_builder = false;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = map.find(key);
        if (it != map.end()) {
            hits.fetch_add(1, std::memory_order_relaxed);
            waiter = it->second;  // copy: wait outside the lock
        } else {
            misses.fetch_add(1, std::memory_order_relaxed);
            waiter = promise.get_future().share();
            map.emplace(key, waiter);
            is_builder = true;
        }
    }
    if (!is_builder) return waiter.get();
    try {
        auto value = std::make_shared<const T>(build());
        promise.set_value(value);
        return value;
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(mu);
            map.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

} // namespace

struct WorkloadCache::Impl
{
    std::atomic<bool> enabled{false};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::mutex mu;
    FutureMap<Dataset> datasets;
    FutureMap<CscMatrix> adjacencies;
    FutureMap<WorkloadProfile> profiles;
};

WorkloadCache &
WorkloadCache::instance()
{
    static WorkloadCache cache;
    return cache;
}

WorkloadCache::Impl &
WorkloadCache::impl() const
{
    static Impl impl;
    return impl;
}

std::shared_ptr<const Dataset>
WorkloadCache::dataset(const DatasetSpec &spec, std::uint64_t seed,
                       double scale)
{
    Impl &im = impl();
    if (!enabled())
        return std::make_shared<const Dataset>(
            loadSynthetic(spec, seed, scale));
    return getOrBuild<Dataset>(
        im.mu, im.datasets, contentKey("dataset", spec, seed, scale),
        im.hits, im.misses,
        [&] { return loadSynthetic(spec, seed, scale); });
}

std::shared_ptr<const CscMatrix>
WorkloadCache::adjacency(const DatasetSpec &spec, std::uint64_t seed,
                         double scale)
{
    Impl &im = impl();
    if (!enabled())
        return std::make_shared<const CscMatrix>(
            loadSyntheticAdjacency(spec, seed, scale));
    return getOrBuild<CscMatrix>(
        im.mu, im.adjacencies, contentKey("adjacency", spec, seed, scale),
        im.hits, im.misses,
        [&] { return loadSyntheticAdjacency(spec, seed, scale); });
}

std::shared_ptr<const WorkloadProfile>
WorkloadCache::profile(const DatasetSpec &spec, std::uint64_t seed,
                       double scale)
{
    Impl &im = impl();
    if (!enabled())
        return std::make_shared<const WorkloadProfile>(
            loadProfile(spec, seed, scale));
    return getOrBuild<WorkloadProfile>(
        im.mu, im.profiles, contentKey("profile", spec, seed, scale),
        im.hits, im.misses,
        [&] { return loadProfile(spec, seed, scale); });
}

void
WorkloadCache::setEnabled(bool on)
{
    impl().enabled.store(on, std::memory_order_relaxed);
}

bool
WorkloadCache::enabled() const
{
    return impl().enabled.load(std::memory_order_relaxed);
}

std::uint64_t
WorkloadCache::hits() const
{
    return impl().hits.load(std::memory_order_relaxed);
}

std::uint64_t
WorkloadCache::misses() const
{
    return impl().misses.load(std::memory_order_relaxed);
}

void
WorkloadCache::clear()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    im.datasets.clear();
    im.adjacencies.clear();
    im.profiles.clear();
    im.hits.store(0, std::memory_order_relaxed);
    im.misses.store(0, std::memory_order_relaxed);
}

std::shared_ptr<const Dataset>
cachedDataset(const DatasetSpec &spec, std::uint64_t seed, double scale)
{
    return WorkloadCache::instance().dataset(spec, seed, scale);
}

std::shared_ptr<const CscMatrix>
cachedAdjacency(const DatasetSpec &spec, std::uint64_t seed, double scale)
{
    return WorkloadCache::instance().adjacency(spec, seed, scale);
}

std::shared_ptr<const WorkloadProfile>
cachedProfile(const DatasetSpec &spec, std::uint64_t seed, double scale)
{
    return WorkloadCache::instance().profile(spec, seed, scale);
}

void
setCachesEnabled(bool on)
{
    WorkloadCache::instance().setEnabled(on);
    RoundStateCache::instance().setEnabled(on);
}

bool
cachesEnabled()
{
    return WorkloadCache::instance().enabled();
}

} // namespace awb::exec
