/**
 * @file
 * Process-wide, thread-safe, content-keyed cache of synthesized
 * workloads (DESIGN.md §13).
 *
 * Every front end — sweep, the bench drivers, the scenarios, serving —
 * used to call `loadSynthetic` / `loadSyntheticAdjacency` /
 * `loadProfile` independently, so a dataset×policy×PEs grid synthesized
 * the same dataset once per point. The loaders are pure functions of
 * (spec, seed, scale); this cache keys on exactly that content (every
 * spec field, not just the name) and hands out shared immutable
 * instances, so each distinct workload is built once per process.
 *
 * Concurrent requesters of the same key block on a shared future while
 * the first one synthesizes — a grid never builds a dataset twice, even
 * when a point per worker thread asks simultaneously.
 *
 * Disabled by default (library embedders and unit tests see the plain
 * loaders); `awbsim` enables it via exec::setCachesEnabled (escape
 * hatch: `--no-cache`).
 */

#pragma once

#include <cstdint>
#include <memory>

#include "graph/datasets.hpp"

namespace awb::exec {

/** Process-wide memo of loadSynthetic/loadSyntheticAdjacency/loadProfile. */
class WorkloadCache
{
  public:
    static WorkloadCache &instance();

    /** Cached loadSynthetic(spec, seed, scale). */
    std::shared_ptr<const Dataset> dataset(const DatasetSpec &spec,
                                           std::uint64_t seed, double scale);

    /** Cached loadSyntheticAdjacency(spec, seed, scale). */
    std::shared_ptr<const CscMatrix>
    adjacency(const DatasetSpec &spec, std::uint64_t seed, double scale);

    /** Cached loadProfile(spec, seed, scale). */
    std::shared_ptr<const WorkloadProfile>
    profile(const DatasetSpec &spec, std::uint64_t seed, double scale);

    /** When disabled, every call builds fresh (and counts nothing). */
    void setEnabled(bool on);
    bool enabled() const;

    /** A hit is a request that found the key present or in flight. */
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    void clear();

  private:
    WorkloadCache() = default;
    struct Impl;
    Impl &impl() const;
};

/** Call-site shorthands for WorkloadCache::instance().xxx(...). */
std::shared_ptr<const Dataset> cachedDataset(const DatasetSpec &spec,
                                             std::uint64_t seed,
                                             double scale);
std::shared_ptr<const CscMatrix> cachedAdjacency(const DatasetSpec &spec,
                                                 std::uint64_t seed,
                                                 double scale);
std::shared_ptr<const WorkloadProfile>
cachedProfile(const DatasetSpec &spec, std::uint64_t seed, double scale);

/**
 * Master switch for both process-wide caches: the WorkloadCache above
 * and the engine's RoundStateCache (accel/round_cache.hpp). Cached
 * results are bit-identical to fresh ones, so flipping this never
 * changes a model output.
 */
void setCachesEnabled(bool on);
bool cachesEnabled();

} // namespace awb::exec
