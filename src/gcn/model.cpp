#include "gcn/model.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace awb {

namespace {

DenseMatrix
glorotUniform(Rng &rng, Index fan_in, Index fan_out)
{
    DenseMatrix w(fan_in, fan_out);
    auto limit = static_cast<float>(
        std::sqrt(6.0 / static_cast<double>(fan_in + fan_out)));
    w.fillUniform(rng, -limit, limit);
    return w;
}

} // namespace

GcnModel
makeGcnModel(Index f1, Index f2, Index f3, std::uint64_t seed)
{
    return makeDeepGcnModel({f1, f2, f3}, seed);
}

GcnModel
makeDeepGcnModel(const std::vector<Index> &dims, std::uint64_t seed)
{
    if (dims.size() < 2) fatal("GCN needs at least one weight matrix");
    Rng rng(seed ^ 0xfeedULL);
    GcnModel m;
    for (std::size_t l = 0; l + 1 < dims.size(); ++l)
        m.weights.push_back(glorotUniform(rng, dims[l], dims[l + 1]));
    return m;
}

} // namespace awb
