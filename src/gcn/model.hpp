/**
 * @file
 * The 2-layer spectral GCN model of the paper (Kipf & Welling style):
 *
 *   X2 = ReLU(A_hat · X1 · W1)
 *   Y  = A_hat · X2 · W2
 *
 * Weights are dense (Table 1: W density 100%). The model owns only the
 * weights; the graph (A_hat) and features (X1) live in Dataset.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sparse/dense.hpp"

namespace awb {

/** Dense weights of a multi-layer GCN. */
struct GcnModel
{
    /** weights[l] maps layer-l input features to layer-(l+1) features. */
    std::vector<DenseMatrix> weights;

    /** Adjacency multiplications per layer: 1 = standard GCN; k collects
     *  k-hop neighbourhood information per layer, A^k (X W) — the paper's
     *  §2.1/§3.3 extension, pipelined as three (or more) chained SPMMs. */
    Index adjHops = 1;

    Index layers() const { return static_cast<Index>(weights.size()); }

    /** Input feature dimension of layer l. */
    Index inDim(Index l) const
    {
        return weights[static_cast<std::size_t>(l)].rows();
    }

    /** Output feature dimension of layer l. */
    Index outDim(Index l) const
    {
        return weights[static_cast<std::size_t>(l)].cols();
    }
};

/**
 * Build a 2-layer GCN with Glorot-uniform initialized weights.
 *
 * @param f1  input feature dimension
 * @param f2  hidden dimension
 * @param f3  output dimension (classes)
 */
GcnModel makeGcnModel(Index f1, Index f2, Index f3, std::uint64_t seed = 1);

/** Build an n-layer GCN given the full dimension chain {f1, f2, ..., fn+1}.
 *  Supports the paper's "GCNs are becoming deeper" extension (§1). */
GcnModel makeDeepGcnModel(const std::vector<Index> &dims,
                          std::uint64_t seed = 1);

} // namespace awb
