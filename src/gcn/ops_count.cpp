#include "gcn/ops_count.hpp"

#include <numeric>

#include "common/log.hpp"
#include "sparse/convert.hpp"

namespace awb {

namespace {

/** Exact SpGEMM multiply count for A (CSC) times X given X's per-row nnz:
 *  every non-zero a(i,j) multiplies all nnz of X row j. */
Count
spgemmOps(const CscMatrix &a, const std::vector<Count> &x_row_nnz)
{
    Count ops = 0;
    for (Index j = 0; j < a.cols(); ++j) {
        Count col = a.colNnz(j);
        ops += col * x_row_nnz[static_cast<std::size_t>(j)];
    }
    return ops;
}

LayerOps
layerOps(Count nnz_a, Count nnz_x, Count spgemm, Index n, Index f_in,
         Index f_out)
{
    LayerOps ops;
    ops.xwFirst = nnz_x * f_out + nnz_a * f_out;
    ops.axFirst = spgemm + static_cast<Count>(n) * f_in * f_out;
    return ops;
}

} // namespace

NetworkOps
countOps(const Dataset &ds, const GcnModel &model)
{
    NetworkOps net;
    const Index n = ds.spec.nodes;
    const Count nnz_a = ds.adjacency.nnz();

    // Layer-by-layer X evolution via a real inference.
    InferenceResult inf = inferGcn(ds, model);

    // Per-row nnz of X1 from the CSR features.
    std::vector<Count> x_row(static_cast<std::size_t>(n));
    for (Index r = 0; r < n; ++r)
        x_row[static_cast<std::size_t>(r)] = ds.features.rowNnz(r);
    Count nnz_x = ds.features.nnz();

    for (Index l = 0; l < model.layers(); ++l) {
        LayerOps ops = layerOps(nnz_a, nnz_x, spgemmOps(ds.adjacency, x_row),
                                n, model.inDim(l), model.outDim(l));
        net.layer.push_back(ops);
        net.total.xwFirst += ops.xwFirst;
        net.total.axFirst += ops.axFirst;

        if (l + 1 < model.layers()) {
            const DenseMatrix &next =
                inf.layerInputs[static_cast<std::size_t>(l)];
            nnz_x = 0;
            for (Index r = 0; r < n; ++r) {
                Count c = 0;
                for (Index k = 0; k < next.cols(); ++k)
                    if (next.at(r, k) != Value(0)) ++c;
                x_row[static_cast<std::size_t>(r)] = c;
                nnz_x += c;
            }
        }
    }
    return net;
}

NetworkOps
countOpsProfile(const WorkloadProfile &profile)
{
    NetworkOps net;
    const auto &s = profile.spec;
    const Index n = s.nodes;

    Count nnz_a = std::accumulate(profile.aRowNnz.begin(),
                                  profile.aRowNnz.end(), Count(0));
    Count nnz_x1 = std::accumulate(profile.x1RowNnz.begin(),
                                   profile.x1RowNnz.end(), Count(0));
    Count nnz_x2 = std::accumulate(profile.x2RowNnz.begin(),
                                   profile.x2RowNnz.end(), Count(0));

    // Mean-field SpGEMM term: nnz(A) x (nnz(X)/n).
    auto spgemm = [&](Count nnz_x) {
        return static_cast<Count>(static_cast<double>(nnz_a) *
                                  static_cast<double>(nnz_x) /
                                  static_cast<double>(n));
    };

    LayerOps l1 = layerOps(nnz_a, nnz_x1, spgemm(nnz_x1), n, s.f1, s.f2);
    LayerOps l2 = layerOps(nnz_a, nnz_x2, spgemm(nnz_x2), n, s.f2, s.f3);
    net.layer = {l1, l2};
    net.total.xwFirst = l1.xwFirst + l2.xwFirst;
    net.total.axFirst = l1.axFirst + l2.axFirst;
    return net;
}

} // namespace awb
