/**
 * @file
 * Multiplication-operation counting for the two matrix-computation orders
 * of paper §3.1 (reproduces Table 2).
 *
 * Counting rules (matching the paper's numbers):
 *  - X×W first (the accelerator's order): both products are SPMM with
 *    zero-skipping, so ops = nnz(X)·f_out + nnz(A)·f_out.
 *  - (A×X) first: A×X is sparse×sparse, ops = sum over non-zeros a(i,j) of
 *    nnz(X row j); its result is effectively dense (n × f_in), so the
 *    second product costs n·f_in·f_out dense multiplies. (E.g. Cora
 *    layer 1: 2708·1433·16 = 62.1M, the paper's 62.3M.)
 */

#pragma once

#include <vector>

#include "gcn/reference.hpp"
#include "graph/datasets.hpp"

namespace awb {

/** Multiply-op counts of one layer under both orders. */
struct LayerOps
{
    Count xwFirst = 0;  ///< A × (X × W)
    Count axFirst = 0;  ///< (A × X) × W
};

/** Counts for a whole network plus the total. */
struct NetworkOps
{
    std::vector<LayerOps> layer;
    LayerOps total;
};

/**
 * Exact counts from materialized matrices (runs the per-layer density
 * evolution with a real inference to obtain nnz(X2)).
 */
NetworkOps countOps(const Dataset &ds, const GcnModel &model);

/**
 * Approximate counts from a workload profile only (no matrices). Uses the
 * profile's per-row nnz for X1/X2 and the mean-field approximation
 * nnz(X row j) ≈ nnz(X)/n inside the A×X SpGEMM term. Cheap at full
 * Nell/Reddit scale.
 */
NetworkOps countOpsProfile(const WorkloadProfile &profile);

} // namespace awb
