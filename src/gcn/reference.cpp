#include "gcn/reference.hpp"

#include "common/log.hpp"
#include "sparse/convert.hpp"
#include "sparse/spmm.hpp"

namespace awb {

InferenceResult
inferGcn(const CscMatrix &adjacency, const CsrMatrix &features,
         const GcnModel &model, ComputeOrder order)
{
    if (adjacency.rows() != adjacency.cols())
        fatal("inferGcn: adjacency must be square");
    if (features.rows() != adjacency.rows())
        fatal("inferGcn: feature row count must equal node count");
    if (features.cols() != model.inDim(0))
        fatal("inferGcn: feature dim does not match layer-0 weights");

    InferenceResult res;
    // The layer-0 input X1 stays in CSR the whole time: for Nell its dense
    // form is n x 61278 and cannot be materialized. Hidden activations are
    // small (n x f2) and kept dense.
    DenseMatrix x;  // dense input of layers >= 1

    for (Index l = 0; l < model.layers(); ++l) {
        const DenseMatrix &w = model.weights[static_cast<std::size_t>(l)];
        DenseMatrix z;
        if (order == ComputeOrder::XwFirst) {
            DenseMatrix xw = (l == 0) ? spmmCsr(features, w)
                                      : spmmDenseStored(x, w);
            z = spmmCsc(adjacency, xw);
            for (Index h = 1; h < model.adjHops; ++h)
                z = spmmCsc(adjacency, z);
        } else {
            // (A x X) first. For l == 0 this computes A x X1 with X1's
            // dense *columns* streamed via CSR-of-X; the result AX is
            // dense n x f1, so this order is only usable at scales where
            // that fits (which is the paper's point — Table 2).
            DenseMatrix ax = (l == 0)
                ? spmmCsc(adjacency, csrToDense(features))
                : spmmCsc(adjacency, x);
            for (Index h = 1; h < model.adjHops; ++h)
                ax = spmmCsc(adjacency, ax);
            z = spmmDenseStored(ax, w);
        }
        bool last = (l == model.layers() - 1);
        if (!last) {
            z.relu();
            res.layerInputs.push_back(z);
        }
        x = std::move(z);
    }
    res.output = std::move(x);
    return res;
}

InferenceResult
inferGcn(const Dataset &ds, const GcnModel &model, ComputeOrder order)
{
    return inferGcn(ds.adjacency, ds.features, model, order);
}

} // namespace awb
