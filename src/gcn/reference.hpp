/**
 * @file
 * Golden software GCN inference. This is (a) the functional reference the
 * cycle-accurate accelerator must match bit-for-shape, and (b) the CPU
 * baseline measured for Table 3.
 *
 * Both matrix-computation orders of paper §3.1 are provided:
 *   XwFirst: A × (X × W)  — the order the accelerator uses
 *   AxFirst: (A × X) × W  — the naive order (Table 2 shows it is far more
 *                           expensive; kept for validation and the Table 2
 *                           bench)
 */

#pragma once

#include "gcn/model.hpp"
#include "graph/datasets.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace awb {

/** Which side of AXW is multiplied first (paper §3.1). */
enum class ComputeOrder { XwFirst, AxFirst };

/** Per-layer activation. The hidden layers use ReLU; the output layer is
 *  linear (class scores; softmax is monotone and omitted, as in the
 *  paper's compute flow which ends at the output features). */
struct InferenceResult
{
    DenseMatrix output;  ///< nodes x f_last class scores
    /** Hidden-layer inputs: layerInputs[i] is the (post-ReLU) input of
     *  layer i+1. The layer-0 input is the dataset's CSR feature matrix
     *  and is not duplicated here (for Nell it cannot be dense). */
    std::vector<DenseMatrix> layerInputs;
};

/**
 * Run full multi-layer GCN inference.
 *
 * @param adjacency normalized A_hat (CSC)
 * @param features  X1 (CSR, content-sparse)
 * @param model     weight stack
 * @param order     computation order (results are identical; cost differs)
 */
InferenceResult inferGcn(const CscMatrix &adjacency,
                         const CsrMatrix &features, const GcnModel &model,
                         ComputeOrder order = ComputeOrder::XwFirst);

/** Convenience overload for a loaded dataset. */
InferenceResult inferGcn(const Dataset &ds, const GcnModel &model,
                         ComputeOrder order = ComputeOrder::XwFirst);

} // namespace awb
