#include "graph/datasets.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <unordered_set>

#include "common/log.hpp"
#include "common/text.hpp"
#include "graph/degree_dist.hpp"
#include "graph/normalize.hpp"

namespace awb {

namespace {

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

/** GraphGenParams implied by a (possibly scaled) dataset spec. */
GraphGenParams
genParams(const DatasetSpec &spec)
{
    GraphGenParams p;
    p.nodes = spec.nodes;
    p.edges = static_cast<Count>(spec.densityA *
                                 static_cast<double>(spec.nodes) *
                                 static_cast<double>(spec.nodes));
    p.style = spec.style;
    p.alpha = spec.alpha;
    p.dMax = spec.dMax;
    return p;
}

/**
 * Sample a row's feature non-zero count: Binomial(f, d) approximated by a
 * clamped Gaussian (exact Bernoulli looping is too slow at Nell/Reddit
 * scale and the tail shape is irrelevant for feature matrices).
 */
Count
sampleRowFeatureNnz(Rng &rng, Index f, double d)
{
    double mean = d * static_cast<double>(f);
    double sdev = std::sqrt(std::max(mean * (1.0 - d), 0.0));
    double v = mean + sdev * rng.nextGaussian();
    return std::clamp<Count>(static_cast<Count>(std::llround(v)), 0,
                             static_cast<Count>(f));
}

/** Build a content-sparse CSR feature matrix with the given density. */
CsrMatrix
makeFeatures(Rng &rng, Index nodes, Index f, double density)
{
    CooMatrix coo(nodes, f);
    std::unordered_set<Index> used;
    for (Index r = 0; r < nodes; ++r) {
        Count k = sampleRowFeatureNnz(rng, f, density);
        k = std::min<Count>(k, f);
        used.clear();
        while (static_cast<Count>(used.size()) < k) {
            Index c = rng.nextIndex(f);
            if (used.insert(c).second)
                coo.add(r, c, rng.nextFloat(0.05f, 1.0f));
        }
    }
    coo.canonicalize();
    return CsrMatrix::fromCoo(coo);
}

} // namespace

const std::vector<DatasetSpec> &
paperDatasets()
{
    // Table 1 of the paper. Style/alpha follow the Fig. 1/13 shapes: all
    // five graphs are power-law; Nell additionally has its non-zeros
    // heavily clustered (paper §5.2: baseline utilization only 13%);
    // Reddit's per-row distribution is comparatively even at the
    // granularity of PE row-blocks (baseline already 92% utilized), which
    // a milder exponent with a high mean degree reproduces.
    // dMax values follow the published hub sizes of the real datasets
    // (Cora's largest hub has degree 168, Citeseer's 99, Pubmed's 171;
    // Reddit's reaches the tens of thousands), so the per-row tail the
    // rebalancer fights matches Fig. 1/13.
    static const std::vector<DatasetSpec> specs = {
        {"cora", 2708, 1433, 16, 7,
         0.0018, 0.0127, 0.780, GraphStyle::PowerLaw, 2.1, 170, 0},
        {"citeseer", 3327, 3703, 16, 6,
         0.0011, 0.0085, 0.891, GraphStyle::PowerLaw, 2.3, 100, 0},
        {"pubmed", 19717, 500, 16, 3,
         0.00028, 0.100, 0.776, GraphStyle::PowerLaw, 2.2, 172, 0},
        {"nell", 65755, 61278, 64, 186,
         0.000073, 0.00011, 0.864, GraphStyle::Clustered, 2.4, 1500, 2},
        {"reddit", 232965, 602, 64, 41,
         0.00043, 0.516, 0.600, GraphStyle::PowerLaw, 3.2, 22000, 0},
    };
    return specs;
}

const DatasetSpec &
findDataset(const std::string &name)
{
    std::string key = lower(name);
    std::vector<std::string> candidates;
    for (const auto &spec : paperDatasets()) {
        if (spec.name == key) return spec;
        candidates.push_back(spec.name);
    }
    std::string known;
    for (const auto &c : candidates)
        known += (known.empty() ? "" : "/") + c;
    fatal("unknown dataset '" + name + "' — did you mean '" +
          nearestOf(key, candidates) + "'? (" + known +
          "; awbsim --list-datasets shows details)");
}

DatasetSpec
scaledSpec(const DatasetSpec &spec, double scale)
{
    if (scale <= 0.0 || scale > 1.0)
        fatal("dataset scale must be in (0, 1]");
    DatasetSpec s = spec;
    s.nodes = std::max<Index>(
        16, static_cast<Index>(std::llround(scale *
                                            static_cast<double>(spec.nodes))));
    // Scale the hub cap too, so scaled instances keep the same relative
    // tail (a 5% Cora still has its hub at ~6% of the nodes).
    s.dMax = std::max<Count>(8, static_cast<Count>(std::llround(
                                    scale * static_cast<double>(spec.dMax))));
    return s;
}

Dataset
loadSynthetic(const DatasetSpec &spec, std::uint64_t seed, double scale)
{
    DatasetSpec s = scaledSpec(spec, scale);
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL, std::hash<std::string>{}(s.name));

    auto raw = synthesizeAdjacency(rng, genParams(s));
    Dataset ds;
    ds.spec = s;
    ds.scale = scale;
    ds.adjacency = normalizeAdjacencyCsc(raw, /*add_self_loops=*/true);
    ds.features = makeFeatures(rng, s.nodes, s.f1, s.densityX1);
    return ds;
}

CscMatrix
loadSyntheticAdjacency(const DatasetSpec &spec, std::uint64_t seed,
                       double scale)
{
    // Same spec scaling and RNG construction as loadSynthetic, so the
    // adjacency structure and values match it bit for bit; the feature
    // draws simply never happen.
    DatasetSpec s = scaledSpec(spec, scale);
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL, std::hash<std::string>{}(s.name));
    return normalizeAdjacencyCsc(synthesizeAdjacency(rng, genParams(s)),
                                 /*add_self_loops=*/true);
}

Dataset
loadSyntheticByName(const std::string &name, std::uint64_t seed, double scale)
{
    return loadSynthetic(findDataset(name), seed, scale);
}

WorkloadProfile
loadProfile(const DatasetSpec &spec, std::uint64_t seed, double scale)
{
    DatasetSpec s = scaledSpec(spec, scale);
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL, std::hash<std::string>{}(s.name));

    WorkloadProfile p;
    p.spec = s;
    p.scale = scale;
    p.aRowNnz = synthesizeRowDegrees(rng, genParams(s));
    // Normalization adds the +I self loop to every row.
    for (auto &d : p.aRowNnz) d += 1;
    p.x1RowNnz.resize(static_cast<std::size_t>(s.nodes));
    p.x2RowNnz.resize(static_cast<std::size_t>(s.nodes));
    for (Index r = 0; r < s.nodes; ++r) {
        p.x1RowNnz[static_cast<std::size_t>(r)] =
            sampleRowFeatureNnz(rng, s.f1, s.densityX1);
        p.x2RowNnz[static_cast<std::size_t>(r)] =
            sampleRowFeatureNnz(rng, s.f2, s.densityX2);
    }
    return p;
}

std::vector<Count>
rowNnzOf(const CscMatrix &m)
{
    return m.rowNnz();
}

} // namespace awb
