/**
 * @file
 * Registry of the five GCN datasets the paper evaluates (Table 1), plus
 * loaders that build fully synthetic equivalents matched to the published
 * statistics (node count, feature dimensions, matrix densities, non-zero
 * distribution shape). See DESIGN.md §3 for the substitution rationale.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generator.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace awb {

/** Published per-dataset statistics (paper Table 1). */
struct DatasetSpec
{
    std::string name;
    Index nodes;        ///< vertex count
    Index f1;           ///< input feature dimension (layer-1 input)
    Index f2;           ///< hidden feature dimension
    Index f3;           ///< output classes (layer-2 output)
    double densityA;    ///< adjacency density (fraction, e.g. 0.0018)
    double densityX1;   ///< layer-1 input feature density
    double densityX2;   ///< layer-2 input feature density (post-ReLU)
    GraphStyle style;   ///< non-zero distribution shape
    double alpha;       ///< power-law exponent used for synthesis
    Count dMax;         ///< max row degree (published hub sizes)
    int hopOverride;    ///< 0 = paper-default sharing hops (1/2-hop);
                        ///< N > 0 = evaluate N and N+1 hops instead
                        ///< (Nell uses 2/3-hop, paper §5.2)
};

/** A loaded dataset ready for functional inference. */
struct Dataset
{
    DatasetSpec spec;
    CscMatrix adjacency;    ///< normalized A_hat, n x n, CSC (TDQ-2 input)
    CsrMatrix features;     ///< X1, n x f1. Content-sparse; the hardware
                            ///< stores X densely but skips zeros (TDQ-1),
                            ///< so CSR carries exactly the streamed work.
    double scale = 1.0;     ///< applied node-count scale factor
};

/**
 * Row-level workload profile of a dataset — all the information the
 * round-level performance model needs, cheap to build even at full Reddit
 * scale (no matrices are materialized).
 *
 * Per processed column ("round") of the dense operand, the work a PE
 * performs is the summed row-nnz of the rows it owns, so per-row non-zero
 * counts fully determine workload balance (DESIGN.md §4).
 */
struct WorkloadProfile
{
    DatasetSpec spec;       ///< scaled copy (nodes adjusted)
    double scale = 1.0;
    std::vector<Count> aRowNnz;   ///< adjacency non-zeros per row (with +I)
    std::vector<Count> x1RowNnz;  ///< layer-1 feature non-zeros per row
    std::vector<Count> x2RowNnz;  ///< layer-2 feature non-zeros per row
};

/** The five paper datasets: Cora, Citeseer, Pubmed, Nell, Reddit. */
const std::vector<DatasetSpec> &paperDatasets();

/** Base sharing-hop distance for a dataset (Nell overrides to 2/3-hop,
 *  paper §5.2). */
inline int
hopBase(const DatasetSpec &spec)
{
    return spec.hopOverride > 0 ? spec.hopOverride : 1;
}

/** Look up a spec by (case-insensitive) name; fatal() if unknown. */
const DatasetSpec &findDataset(const std::string &name);

/** Spec with node count scaled by `scale` (dims/densities preserved). */
DatasetSpec scaledSpec(const DatasetSpec &spec, double scale);

/**
 * Build a synthetic instance of a dataset with materialized matrices.
 *
 * @param spec   published statistics to match
 * @param seed   RNG seed (deterministic per (spec, seed, scale))
 * @param scale  node-count scale in (0, 1]; densities preserved.
 *               Intended for the cycle-accurate simulator; use
 *               loadProfile() for full-scale round-level modelling.
 */
Dataset loadSynthetic(const DatasetSpec &spec, std::uint64_t seed = 1,
                      double scale = 1.0);

/** Shorthand: loadSynthetic(findDataset(name), seed, scale). */
Dataset loadSyntheticByName(const std::string &name, std::uint64_t seed = 1,
                            double scale = 1.0);

/**
 * Build only the normalized adjacency of a dataset — bit-identical to
 * the `adjacency` member loadSynthetic() would produce for the same
 * (spec, seed, scale), without materializing the feature matrix. Used
 * by single-SPMM benchmarks (bench/bench_engine.cpp) where features
 * would dominate memory at Reddit scale.
 */
CscMatrix loadSyntheticAdjacency(const DatasetSpec &spec,
                                 std::uint64_t seed = 1, double scale = 1.0);

/**
 * Build only the per-row workload profile (degree sequences), matched to
 * the same distributions loadSynthetic() uses. O(nodes) time and memory.
 */
WorkloadProfile loadProfile(const DatasetSpec &spec, std::uint64_t seed = 1,
                            double scale = 1.0);

/** Per-row non-zero counts of an already-built CSC matrix. */
std::vector<Count> rowNnzOf(const CscMatrix &m);

} // namespace awb
