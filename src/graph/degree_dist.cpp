#include "graph/degree_dist.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.hpp"

namespace awb {

std::vector<Count>
samplePowerLawDegrees(Rng &rng, Index n, double alpha, Count d_min,
                      Count d_max, Count target_total)
{
    if (n <= 0) return {};
    if (alpha <= 1.0) fatal("power-law exponent must be > 1");
    if (d_min < 1) d_min = 1;
    if (d_max < d_min) d_max = d_min;

    std::vector<double> raw(static_cast<std::size_t>(n));
    const double a = 1.0 - alpha;
    const double lo = std::pow(static_cast<double>(d_min), a);
    const double hi = std::pow(static_cast<double>(d_max) + 1.0, a);
    for (auto &d : raw) {
        // Inverse-CDF sample of a bounded Pareto.
        double u = rng.nextDouble();
        d = std::pow(lo + u * (hi - lo), 1.0 / a);
    }

    if (target_total > 0) {
        double sum = std::accumulate(raw.begin(), raw.end(), 0.0);
        double k = static_cast<double>(target_total) / sum;
        for (auto &d : raw) d *= k;
    }

    // Post-scaling degrees may exceed d_max; the cap is a property of the
    // matrix (a row has at most d_max wanted non-zeros), not of the sampled
    // population size.
    std::vector<Count> deg(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < deg.size(); ++i) {
        deg[i] = std::clamp<Count>(static_cast<Count>(std::llround(raw[i])),
                                   0, d_max);
    }
    // Fix up rounding/clamping drift toward the target by bumping random
    // nodes.
    if (target_total > 0) {
        Count total = std::accumulate(deg.begin(), deg.end(), Count(0));
        Count guard = 8 * static_cast<Count>(n);
        while (total != target_total && guard-- > 0) {
            auto i = static_cast<std::size_t>(rng.nextIndex(n));
            if (total < target_total && deg[i] < d_max) {
                ++deg[i];
                ++total;
            } else if (total > target_total && deg[i] > 0) {
                --deg[i];
                --total;
            }
        }
    }
    return deg;
}

std::vector<Count>
sampleUniformDegrees(Rng &rng, Index n, Count target_total)
{
    std::vector<Count> deg(static_cast<std::size_t>(n), 0);
    if (n <= 0 || target_total <= 0) return deg;
    Count base = target_total / n;
    Count extra = target_total % n;
    std::fill(deg.begin(), deg.end(), base);
    for (Count e = 0; e < extra; ++e)
        ++deg[static_cast<std::size_t>(rng.nextIndex(n))];
    return deg;
}

double
giniCoefficient(const std::vector<Count> &degrees)
{
    if (degrees.empty()) return 0.0;
    std::vector<Count> sorted(degrees);
    std::sort(sorted.begin(), sorted.end());
    double cum = 0.0, weighted = 0.0;
    const auto n = static_cast<double>(sorted.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        double rank = 2.0 * static_cast<double>(i + 1) - n - 1.0;
        weighted += static_cast<double>(sorted[i]) * rank;
        cum += static_cast<double>(sorted[i]);
    }
    if (cum == 0.0) return 0.0;
    return weighted / (cum * static_cast<double>(sorted.size()));
}

} // namespace awb
