/**
 * @file
 * Degree-sequence samplers for synthetic graph generation.
 *
 * Real-world graphs follow power-law degree distributions (paper Section 1,
 * Figures 1 and 13); the rebalancing problem AWB-GCN solves exists exactly
 * because of the heavy tail these samplers produce.
 */

#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace awb {

/**
 * Sample n degrees from a discrete power law P(d) ~ d^-alpha over
 * [d_min, d_max] via inverse-CDF of the continuous Pareto, then scale the
 * sequence so it sums to (approximately) target_total while keeping every
 * degree >= d_min' = max(0, ...) and <= d_max.
 *
 * @param rng           generator
 * @param n             number of nodes
 * @param alpha         power-law exponent (> 1; 2.1-3 typical for graphs)
 * @param d_min         minimum degree before scaling (>= 1)
 * @param d_max         maximum degree cap
 * @param target_total  desired sum of degrees (total non-zeros); 0 = no
 *                      rescaling
 * @return degree per node
 */
std::vector<Count> samplePowerLawDegrees(Rng &rng, Index n, double alpha,
                                         Count d_min, Count d_max,
                                         Count target_total);

/**
 * Sample n degrees that are uniform-ish (Poisson-like around mean):
 * the balanced counterpart used for the "evenly distributed" assumption of
 * the baseline design.
 */
std::vector<Count> sampleUniformDegrees(Rng &rng, Index n,
                                        Count target_total);

/** Gini coefficient of a degree sequence: 0 = perfectly even, ->1 skewed. */
double giniCoefficient(const std::vector<Count> &degrees);

} // namespace awb
