#include "graph/generator.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/log.hpp"
#include "graph/degree_dist.hpp"

namespace awb {

namespace {

/**
 * Append `degree` distinct non-zeros to row `r` at uniform random columns.
 * Sampling is without replacement (rejection against a per-row set), which
 * keeps the realized row-degree exactly equal to the requested one — the
 * quantity the workload-balance experiments key on.
 */
void
fillRow(Rng &rng, CooMatrix &m, Index r, Count degree)
{
    Index n = m.cols();
    degree = std::min<Count>(degree, n);
    if (degree <= 0) return;
    std::unordered_set<Index> used;
    used.reserve(static_cast<std::size_t>(degree) * 2);
    while (static_cast<Count>(used.size()) < degree) {
        Index c = rng.nextIndex(n);
        if (used.insert(c).second) m.add(r, c, Value(1));
    }
}

} // namespace

std::vector<Count>
synthesizeRowDegrees(Rng &rng, const GraphGenParams &params)
{
    const Index n = params.nodes;
    if (n <= 0) fatal("synthesizeRowDegrees: nodes must be positive");
    Count d_max = params.dMax > 0 ? params.dMax
                                  : std::max<Count>(Count(8), n / 8);

    switch (params.style) {
      case GraphStyle::Uniform:
        return sampleUniformDegrees(rng, n, params.edges);
      case GraphStyle::PowerLaw:
        return samplePowerLawDegrees(rng, n, params.alpha, 1, d_max,
                                     params.edges);
      case GraphStyle::Clustered: {
        // A narrow contiguous band of rows receives clusterNnzFrac of all
        // non-zeros (the Nell signature, paper Fig. 13: a few rows with
        // tens of thousands of entries while the bulk have a handful).
        auto band_rows = static_cast<Index>(
            std::max<double>(1.0, params.clusterRowFrac *
                                  static_cast<double>(n)));
        auto band_edges = static_cast<Count>(
            params.clusterNnzFrac * static_cast<double>(params.edges));
        Count rest_edges = params.edges - band_edges;
        Index band_start = n / 2 - band_rows / 2;

        auto deg = samplePowerLawDegrees(rng, n, params.alpha, 1, d_max,
                                         rest_edges);
        auto band_deg = samplePowerLawDegrees(
            rng, band_rows, 1.5, band_edges / (2 * band_rows) + 1, n,
            band_edges);
        for (Index i = 0; i < band_rows; ++i) {
            deg[static_cast<std::size_t>(band_start + i)] =
                std::min<Count>(band_deg[static_cast<std::size_t>(i)], n);
        }
        return deg;
      }
    }
    panic("unreachable graph style");
}

CooMatrix
adjacencyFromDegrees(Rng &rng, Index nodes, const std::vector<Count> &degrees)
{
    CooMatrix m(nodes, nodes);
    for (Index r = 0; r < nodes; ++r)
        fillRow(rng, m, r, degrees[static_cast<std::size_t>(r)]);
    m.canonicalize();
    return m;
}

Index
preferentialColumn(Rng &rng, const std::vector<Index> &endpoint_cols,
                   Index num_cols)
{
    if (num_cols <= 0) fatal("preferentialColumn: num_cols must be > 0");
    if (endpoint_cols.empty()) return rng.nextIndex(num_cols);
    return endpoint_cols[static_cast<std::size_t>(
        rng.nextIndex(static_cast<Index>(endpoint_cols.size())))];
}

CooMatrix
synthesizeAdjacency(Rng &rng, const GraphGenParams &params)
{
    auto deg = synthesizeRowDegrees(rng, params);
    auto m = adjacencyFromDegrees(rng, params.nodes, deg);

    if (params.symmetric) {
        auto ents = m.entries();  // copy: add() invalidates iteration
        for (const Triplet &t : ents)
            if (t.row != t.col) m.add(t.col, t.row, t.val);
        m.canonicalize();
        for (Triplet &t : m.entries()) t.val = Value(1);
    }
    return m;
}

} // namespace awb
