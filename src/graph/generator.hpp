/**
 * @file
 * Synthetic graph adjacency generators.
 *
 * Substitution (see DESIGN.md §3): the paper evaluates on the published
 * Cora/Citeseer/Pubmed/Nell/Reddit datasets. These generators reproduce the
 * structural properties those results depend on — size, density, power-law
 * per-row non-zero skew, and (for Nell) heavy clustering of non-zeros in a
 * small contiguous band of rows.
 */

#pragma once

#include "common/rng.hpp"
#include "sparse/coo.hpp"

namespace awb {

/** Shape of the per-row non-zero distribution to synthesize. */
enum class GraphStyle
{
    Uniform,    ///< evenly distributed non-zeros (the baseline's happy case)
    PowerLaw,   ///< heavy-tailed row degrees (Cora/Citeseer/Pubmed-like)
    Clustered,  ///< power law + dense clustered band of rows (Nell-like)
};

/** Parameters for synthesizeAdjacency(). */
struct GraphGenParams
{
    Index nodes = 1000;          ///< vertex count (matrix is nodes x nodes)
    Count edges = 5000;          ///< target non-zero count (pre-self-loop)
    GraphStyle style = GraphStyle::PowerLaw;
    double alpha = 2.2;          ///< power-law exponent
    Count dMax = 0;              ///< max row degree; 0 = nodes/8
    double clusterRowFrac = 0.004;  ///< Clustered: fraction of rows in band
    double clusterNnzFrac = 0.5;    ///< Clustered: fraction of nnz in band
    bool symmetric = false;      ///< mirror edges (undirected graph)
};

/**
 * Sample only the per-row non-zero counts the generator would realize.
 * synthesizeAdjacency() consumes exactly this sequence, so profile-only
 * workload modelling (DESIGN.md §4) sees the same distribution the full
 * matrices have.
 */
std::vector<Count> synthesizeRowDegrees(Rng &rng,
                                        const GraphGenParams &params);

/**
 * Generate a random adjacency matrix with the requested non-zero
 * distribution. Values are 1.0 (pre-normalization); no self loops
 * (normalizeAdjacency() adds the +I term).
 */
CooMatrix synthesizeAdjacency(Rng &rng, const GraphGenParams &params);

/** Materialize an adjacency from an explicit per-row degree sequence. */
CooMatrix adjacencyFromDegrees(Rng &rng, Index nodes,
                               const std::vector<Count> &degrees);

/**
 * Degree-proportional column sampling via edge-endpoint draw: picking
 * the column endpoint of a uniformly random live edge selects column c
 * with probability deg(c)/|E| — the same "rich get richer" mechanism
 * the power-law degree synthesis above models, here applied online.
 * Used by the preferential-attachment inserts of the edge-churn stream
 * (dynamic/churn.hpp, DESIGN.md §12). Falls back to a uniform column
 * when no edges exist yet.
 *
 * @param endpoint_cols  column endpoints of every live edge
 * @param num_cols       matrix column count (uniform fallback range)
 */
Index preferentialColumn(Rng &rng, const std::vector<Index> &endpoint_cols,
                         Index num_cols);

} // namespace awb
