#include "graph/normalize.hpp"

#include <cmath>
#include <vector>

#include "common/log.hpp"

namespace awb {

CooMatrix
normalizeAdjacency(const CooMatrix &a, bool add_self_loops)
{
    if (a.rows() != a.cols())
        fatal("normalizeAdjacency: adjacency must be square");
    const Index n = a.rows();

    CooMatrix aug = a;
    if (add_self_loops) {
        for (Index i = 0; i < n; ++i) aug.add(i, i, Value(1));
        aug.canonicalize();
        // A node that already had a self loop now has value 2; clamp, as
        // the renormalization trick uses A + I with binary A.
        for (Triplet &t : aug.entries())
            if (t.row == t.col && t.val > Value(1)) t.val = Value(1);
    }

    std::vector<double> degree(static_cast<std::size_t>(n), 0.0);
    for (const Triplet &t : aug.entries())
        degree[static_cast<std::size_t>(t.row)] += t.val;

    std::vector<double> inv_sqrt(static_cast<std::size_t>(n), 0.0);
    for (std::size_t i = 0; i < inv_sqrt.size(); ++i)
        inv_sqrt[i] = degree[i] > 0.0 ? 1.0 / std::sqrt(degree[i]) : 0.0;

    CooMatrix out(n, n);
    for (const Triplet &t : aug.entries()) {
        double v = inv_sqrt[static_cast<std::size_t>(t.row)] *
                   static_cast<double>(t.val) *
                   inv_sqrt[static_cast<std::size_t>(t.col)];
        out.add(t.row, t.col, static_cast<Value>(v));
    }
    out.canonicalize();
    return out;
}

CscMatrix
normalizeAdjacencyCsc(const CooMatrix &a, bool add_self_loops)
{
    return CscMatrix::fromCoo(normalizeAdjacency(a, add_self_loops));
}

} // namespace awb
