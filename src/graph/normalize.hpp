/**
 * @file
 * Symmetric Laplacian normalization of a graph adjacency matrix:
 * A_hat = D^-1/2 (A + I) D^-1/2 with D_ii = sum_j (A + I)_ij
 * (paper Section 2.1). A_hat is computed offline and stays constant for
 * every layer and every inference, so the accelerator receives it as a
 * ready CSC matrix.
 */

#pragma once

#include "sparse/coo.hpp"
#include "sparse/csc.hpp"

namespace awb {

/**
 * Compute the renormalized adjacency A_hat from a raw (0/1) adjacency.
 * @param a     raw adjacency, square
 * @param add_self_loops  add the +I term (standard GCN renormalization
 *                        trick); pass false if `a` already has self loops
 */
CooMatrix normalizeAdjacency(const CooMatrix &a, bool add_self_loops = true);

/** Convenience: normalize and convert to the accelerator's CSC format. */
CscMatrix normalizeAdjacencyCsc(const CooMatrix &a,
                                bool add_self_loops = true);

} // namespace awb
