#include "kernels/bfs.hpp"

#include <algorithm>

#include "accel/policy.hpp"
#include "common/log.hpp"

namespace awb::kernels {

namespace {

void
checkBfsArgs(const CscMatrix &a, Index source)
{
    if (a.rows() != a.cols())
        fatal("bfs: adjacency must be square");
    if (source < 0 || source >= a.rows())
        fatal("bfs: source out of range");
}

/** Claim the next level from `frontier` (ascending): first-setting
 *  frontier vertex wins, so parents are the smallest eligible u. */
std::vector<Index>
claimNextLevel(const CscMatrix &a, const std::vector<Index> &frontier,
               Index level, BfsResult &res)
{
    std::vector<Index> next;
    for (Index u : frontier) {
        for (Count q = a.colPtr()[static_cast<std::size_t>(u)];
             q < a.colPtr()[static_cast<std::size_t>(u) + 1]; ++q) {
            const Index v = a.rowId()[static_cast<std::size_t>(q)];
            if (res.depth[static_cast<std::size_t>(v)] != -1) continue;
            res.depth[static_cast<std::size_t>(v)] = level + 1;
            res.parent[static_cast<std::size_t>(v)] = u;
            next.push_back(v);
        }
    }
    std::sort(next.begin(), next.end());
    return next;
}

BfsResult
initResult(const CscMatrix &a, Index source)
{
    BfsResult res;
    res.parent.assign(static_cast<std::size_t>(a.rows()), -1);
    res.depth.assign(static_cast<std::size_t>(a.rows()), -1);
    res.parent[static_cast<std::size_t>(source)] = source;
    res.depth[static_cast<std::size_t>(source)] = 0;
    return res;
}

} // namespace

BfsResult
bfsReference(const CscMatrix &a, Index source)
{
    checkBfsArgs(a, source);
    BfsResult res = initResult(a, source);
    std::vector<Index> frontier{source};
    Index level = 0;
    while (!frontier.empty()) {
        res.frontierSizes.push_back(
            static_cast<Count>(frontier.size()));
        ++res.iterations;
        frontier = claimNextLevel(a, frontier, level, res);
        ++level;
    }
    return res;
}

BfsRun
runBfs(const AccelConfig &cfg, const CscMatrix &a, Index source)
{
    checkBfsArgs(a, source);
    BfsRun run;
    run.result = initResult(a, source);
    FrontierRunner runner(cfg, a);

    std::vector<Index> frontier{source};
    Index level = 0;
    std::vector<std::pair<Index, Value>> entries;
    while (!frontier.empty()) {
        run.result.frontierSizes.push_back(
            static_cast<Count>(frontier.size()));
        ++run.result.iterations;

        entries.clear();
        for (Index u : frontier) entries.emplace_back(u, Value(1));
        const CscMatrix y = runner.step(frontierVector(a.rows(), entries));

        frontier = claimNextLevel(a, frontier, level, run.result);
        ++level;

        // The engine's structural output is exactly the vertices
        // reachable from the processed frontier; every newly claimed
        // vertex must appear in it.
        for (Index v : frontier) {
            const auto &ids = y.rowId();
            if (!std::binary_search(ids.begin(), ids.end(), v))
                fatal("runBfs: engine frontier misses vertex " +
                      std::to_string(v));
        }
    }
    run.stats = runner.stats();
    return run;
}

FrontierRunStats
modelBfs(const AccelConfig &cfg, const CscMatrix &a, Index source)
{
    checkBfsArgs(a, source);
    if (cfg.chips > 1) fatal("modelBfs: chips must be 1");
    const PerfModel model(cfg);
    std::unique_ptr<PartitionPolicy> partitioner =
        makePartitionPolicy(cfg);
    RowPartition part = partitioner->build(a.rows(), a.rowNnz(), cfg);

    FrontierRunStats stats;
    BfsResult res = initResult(a, source);
    std::vector<Index> frontier{source};
    Index level = 0;
    std::vector<std::pair<Index, Value>> entries;
    while (!frontier.empty()) {
        entries.clear();
        for (Index u : frontier) entries.emplace_back(u, Value(1));
        const CscMatrix x = frontierVector(a.rows(), entries);
        accumulateModelIteration(stats, model.runSpgemm(a, x, part),
                                 x.nnz());
        frontier = claimNextLevel(a, frontier, level, res);
        ++level;
    }
    return stats;
}

} // namespace awb::kernels
