/**
 * @file
 * Breadth-first search as a frontier SpGEMM workload (DESIGN.md §11):
 * level-synchronous push-style BFS where iteration t multiplies the
 * adjacency by the level-t frontier vector, y = A × x_t, and the next
 * frontier is y's structural non-zeros minus the visited set. Parent
 * selection is deterministic: a newly reached vertex v takes the
 * smallest frontier vertex u with A[v][u] != 0 (frontier scanned in
 * ascending order), so parent/depth arrays are exact integers the
 * accelerated run must reproduce bit for bit against bfsReference().
 */

#pragma once

#include <vector>

#include "accel/config.hpp"
#include "kernels/frontier.hpp"
#include "sparse/csc.hpp"

namespace awb::kernels {

/** Functional BFS output. */
struct BfsResult
{
    std::vector<Index> parent;  ///< -1 unreached; parent[source] == source
    std::vector<Index> depth;   ///< -1 unreached; depth[source] == 0
    std::vector<Count> frontierSizes;  ///< processed frontier per level
    Count iterations = 0;       ///< levels processed (== frontierSizes size)
};

/** Scalar reference BFS over a square CSC adjacency; fatal() on a
 *  non-square operand or out-of-range source. */
BfsResult bfsReference(const CscMatrix &a, Index source);

/** BFS executed on the AWB array (cycle fidelity). */
struct BfsRun
{
    BfsResult result;
    FrontierRunStats stats;
};

/** Run BFS on the cycle-accurate engine through FrontierRunner; the
 *  functional arrays must equal bfsReference() exactly (fatal() when
 *  the engine's structural output disagrees). Honors cfg.chips. */
BfsRun runBfs(const AccelConfig &cfg, const CscMatrix &a, Index source);

/** Round-level model twin (PerfModel::runSpgemm per level over the
 *  reference frontier sequence, carried partition); chips must be 1. */
FrontierRunStats modelBfs(const AccelConfig &cfg, const CscMatrix &a,
                          Index source);

} // namespace awb::kernels
