#include "kernels/frontier.hpp"

#include <algorithm>

#include "accel/policy.hpp"
#include "common/log.hpp"

namespace awb::kernels {

CscMatrix
frontierVector(Index rows,
               const std::vector<std::pair<Index, Value>> &entries)
{
    std::vector<Count> col_ptr{0, static_cast<Count>(entries.size())};
    std::vector<Index> row_id;
    std::vector<Value> val;
    row_id.reserve(entries.size());
    val.reserve(entries.size());
    Index prev = -1;
    for (const auto &[row, v] : entries) {
        if (row <= prev)
            fatal("frontierVector: entries must be strictly ascending");
        if (row >= rows) fatal("frontierVector: row out of range");
        prev = row;
        row_id.push_back(row);
        val.push_back(v);
    }
    return CscMatrix::fromParts(rows, 1, std::move(col_ptr),
                                std::move(row_id), std::move(val));
}

void
accumulateModelIteration(FrontierRunStats &stats, const PerfSpmmResult &r,
                         Count frontier_nnz)
{
    stats.iterations.push_back(
        {frontier_nnz, r.cycles, r.tasks, r.rowsSwitched});
    stats.totalCycles += r.cycles;
    stats.totalTasks += r.tasks;
    stats.rowsSwitched += r.rowsSwitched;
    stats.rounds += 1;
    stats.traffic += r.traffic;
    stats.memoryCycles += r.memoryCycles;
    stats.bwBoundRounds += r.bwBoundRounds;
    stats.peakQueueDepth =
        std::max(stats.peakQueueDepth, r.peakQueueDepth);
    stats.convergedRound = r.convergedRound;
}

FrontierRunner::FrontierRunner(const AccelConfig &cfg, const CscMatrix &a)
    : cfg_(cfg), engine_(cfg),
      mem_(findPlatform(cfg.platform), policyClockMhz(cfg)),
      rows_(a.rows())
{
    std::unique_ptr<PartitionPolicy> partitioner =
        makePartitionPolicy(cfg_);
    const std::vector<Count> row_work = a.rowNnz();
    if (cfg_.chips <= 1) {
        a_ = a;
        part_ = partitioner->build(a.rows(), row_work, cfg_);
        return;
    }
    chipPart_ = ChipPartition::build(cfg_, a.rows(), row_work);
    stats_.chipImbalance = chipPart_.imbalance(row_work);
    for (int c = 0; c < chipPart_.chips(); ++c) {
        // Skip empty shards (chips may exceed rows): a 0-row partition
        // has nothing to execute or rebalance.
        if (chipPart_.rowsOf(c).empty()) continue;
        shardChip_.push_back(c);
        shards_.push_back(chipPart_.extractRows(a, c));
        shardParts_.push_back(partitioner->build(
            shards_.back().rows(),
            chipPart_.extractWork(row_work, c), cfg_));
    }
}

void
FrontierRunner::setOperand(const CscMatrix &a)
{
    if (cfg_.chips > 1)
        fatal("FrontierRunner::setOperand: unsupported on sharded runs "
              "— churn invalidates static shard boundaries");
    if (a.rows() != rows_ || a.cols() != a_.cols())
        fatal("FrontierRunner::setOperand: operand shape must match");
    a_ = a;
}

CscMatrix
FrontierRunner::step(const CscMatrix &x)
{
    if (x.cols() != 1)
        fatal("FrontierRunner::step: frontier must be a 1-column vector");

    FrontierIteration it;
    it.frontierNnz = x.nnz();

    if (cfg_.chips <= 1) {
        SpgemmResult r = engine_.executeSpgemm(a_, x, part_);
        it.cycles = r.stats.cycles;
        it.tasks = r.stats.tasks;
        it.rowsSwitched = r.stats.rowsSwitched;
        stats_.roundsSimulated += r.stats.roundsSimulated;
        stats_.traffic += r.stats.traffic;
        stats_.memoryCycles += r.stats.memoryCycles;
        stats_.bwBoundRounds += r.stats.bwBoundRounds;
        stats_.peakQueueDepth =
            std::max(stats_.peakQueueDepth, r.stats.peakQueueDepth);
        stats_.convergedRound = r.stats.convergedRound;
        stats_.iterations.push_back(it);
        stats_.totalCycles += it.cycles;
        stats_.totalTasks += it.tasks;
        stats_.rowsSwitched += it.rowsSwitched;
        stats_.rounds += 1;
        return std::move(r.c);
    }

    // Multi-chip iteration: every chip processes its shard against the
    // whole frontier; the round barrier is the slowest chip, stretched
    // roofline-style to the slowest chip's frontier-halo link floor.
    const Count per_entry = mem_.platform().bytesPerValue +
                            mem_.platform().bytesPerIndex;
    Cycle chip_max = 0;
    Cycle halo_floor = 0;
    Count halo_total = 0;
    std::vector<std::pair<Index, Value>> merged;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const int c = shardChip_[s];
        SpgemmResult r =
            engine_.executeSpgemm(shards_[s], x, shardParts_[s]);
        chip_max = std::max(chip_max, r.stats.cycles);
        it.tasks += r.stats.tasks;
        it.rowsSwitched += r.stats.rowsSwitched;
        stats_.roundsSimulated += r.stats.roundsSimulated;
        stats_.traffic += r.stats.traffic;
        stats_.memoryCycles += r.stats.memoryCycles;
        stats_.bwBoundRounds += r.stats.bwBoundRounds;
        stats_.peakQueueDepth =
            std::max(stats_.peakQueueDepth, r.stats.peakQueueDepth);
        stats_.convergedRound = r.stats.convergedRound;

        // Dynamic halo: frontier entries this chip references (its shard
        // has non-zeros in that column) but does not own cross the link.
        Count halo_c = 0;
        for (Count p = x.colPtr()[0]; p < x.colPtr()[1]; ++p) {
            const Index u = x.rowId()[static_cast<std::size_t>(p)];
            if (chipPart_.chipOf(u) != c &&
                shards_[s].colNnz(u) > 0)
                halo_c += per_entry;
        }
        halo_total += halo_c;
        halo_floor = std::max(halo_floor, mem_.haloFloorCycles(halo_c));

        // Map the shard's local output rows back to global numbering.
        const std::vector<Index> &mine = chipPart_.rowsOf(c);
        for (Count p = r.c.colPtr()[0]; p < r.c.colPtr()[1]; ++p) {
            merged.emplace_back(
                mine[static_cast<std::size_t>(
                    r.c.rowId()[static_cast<std::size_t>(p)])],
                r.c.val()[static_cast<std::size_t>(p)]);
        }
    }

    it.cycles = chip_max;
    if (halo_floor > it.cycles) {
        ++stats_.haloBoundRounds;
        it.cycles = halo_floor;
    }
    stats_.haloBytes += halo_total;
    stats_.haloCycles += halo_floor;
    stats_.traffic.haloBytes += halo_total;

    stats_.iterations.push_back(it);
    stats_.totalCycles += it.cycles;
    stats_.totalTasks += it.tasks;
    stats_.rowsSwitched += it.rowsSwitched;
    stats_.rounds += 1;

    std::sort(merged.begin(), merged.end(),
              [](const auto &l, const auto &r) { return l.first < r.first; });
    return frontierVector(rows_, merged);
}

} // namespace awb::kernels
