/**
 * @file
 * Frontier-kernel runner (DESIGN.md §11): drives iterated 1-column
 * SpGEMMs y = A × x on the cycle-accurate engine, the execution shape
 * shared by BFS and PageRank. The frontier vector x is an n×1 CSC
 * matrix, so each iteration is one SpmmEngine::executeSpgemm round; the
 * row partition is carried across iterations, which is exactly how a
 * rebalance policy's adjustments from iteration t reach iteration t+1
 * (and why executeSpgemm observes after its last round).
 *
 * Multi-chip runs shard A's rows with ChipPartition (DESIGN.md §9): each
 * chip owns a persistent shard + partition, the whole frontier is
 * broadcast (all columns are kept in every shard), and frontier entries
 * a chip needs but does not own cross the inter-chip link — a *dynamic*
 * halo, recomputed per iteration from the live frontier, unlike the
 * static boundary-row halo of the SPMM scale-out path.
 */

#pragma once

#include <utility>
#include <vector>

#include "accel/chip_partition.hpp"
#include "accel/config.hpp"
#include "accel/perf_model.hpp"
#include "accel/row_map.hpp"
#include "accel/spmm_engine.hpp"
#include "model/memory_model.hpp"
#include "sparse/csc.hpp"

namespace awb::kernels {

/** One frontier iteration's accounting. */
struct FrontierIteration
{
    Count frontierNnz = 0;   ///< non-zeros of the processed frontier
    Cycle cycles = 0;        ///< system cycles (max over chips, halo incl.)
    Count tasks = 0;         ///< MACs executed (summed over chips)
    Count rowsSwitched = 0;  ///< rows the rebalance policy moved
};

/** Aggregated statistics of one frontier-kernel run. */
struct FrontierRunStats
{
    std::vector<FrontierIteration> iterations;
    Cycle totalCycles = 0;  ///< summed per-iteration system cycles
    Count totalTasks = 0;
    Count rowsSwitched = 0;
    Count rounds = 0;           ///< system-level iterations executed
    Count roundsSimulated = 0;  ///< event-stepped iterations (0 for model)
    /** Off-chip traffic summed over chips and iterations; haloBytes is
     *  the dynamic frontier halo (DESIGN.md §11). */
    MemoryTraffic traffic;
    Cycle memoryCycles = 0;
    Count bwBoundRounds = 0;
    Count haloBytes = 0;       ///< inter-chip frontier bytes (all chips)
    Cycle haloCycles = 0;      ///< summed per-iteration link floors
    Count haloBoundRounds = 0; ///< iterations stretched to the link floor
    double chipImbalance = 1.0;  ///< static row-work imbalance over chips
    std::size_t peakQueueDepth = 0;
    Count convergedRound = -1;  ///< last iteration's convergence round
};

/** Build an n×1 CSC frontier vector from (row, value) entries, which
 *  must be strictly ascending by row; fatal() otherwise. */
CscMatrix frontierVector(Index rows,
                         const std::vector<std::pair<Index, Value>> &entries);

/** Fold one modelled iteration (PerfModel::runSpgemm over the same
 *  frontier vector) into run stats — the round-level twin of
 *  FrontierRunner::step used by modelBfs / modelPagerank. */
void accumulateModelIteration(FrontierRunStats &stats,
                              const PerfSpmmResult &r, Count frontier_nnz);

/**
 * Executes a sequence of frontier SpGEMMs against one sparse operand,
 * carrying partitions (and chip shards) across iterations.
 */
class FrontierRunner
{
  public:
    /** fatal() on an invalid config; shards `a` when cfg.chips > 1. */
    FrontierRunner(const AccelConfig &cfg, const CscMatrix &a);

    /** One iteration y = A × x; x must be an a.cols()×1 CSC vector.
     *  Returns the sparse result with *global* row numbering and folds
     *  the iteration into stats(). */
    CscMatrix step(const CscMatrix &x);

    /** Replace the sparse operand between iterations (a churned
     *  adjacency, DESIGN.md §12) while *keeping* the carried partition
     *  — the streaming scenario where the policy's tuning must survive
     *  graph mutation. Single-chip only (shard boundaries are static),
     *  and the new operand must keep the old one's shape; fatal()
     *  otherwise. */
    void setOperand(const CscMatrix &a);

    const FrontierRunStats &stats() const { return stats_; }

  private:
    AccelConfig cfg_;
    SpmmEngine engine_;
    MemoryModel mem_;
    Index rows_ = 0;
    // chips == 1
    CscMatrix a_;
    RowPartition part_;
    // chips > 1: non-empty shards only (chips may exceed rows)
    ChipPartition chipPart_;
    std::vector<int> shardChip_;
    std::vector<CscMatrix> shards_;
    std::vector<RowPartition> shardParts_;
    FrontierRunStats stats_;
};

} // namespace awb::kernels
