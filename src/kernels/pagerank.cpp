#include "kernels/pagerank.hpp"

#include <cmath>

#include "accel/policy.hpp"
#include "common/log.hpp"

namespace awb::kernels {

namespace {

void
checkPagerankArgs(const CscMatrix &a, double damping, double tol,
                  Count max_iters)
{
    if (a.rows() != a.cols())
        fatal("pagerank: adjacency must be square");
    if (a.rows() < 1) fatal("pagerank: empty adjacency");
    if (damping <= 0.0 || damping >= 1.0)
        fatal("pagerank: damping must be in (0, 1)");
    if (tol <= 0.0) fatal("pagerank: tol must be positive");
    if (max_iters < 1) fatal("pagerank: maxIters must be >= 1");
}

/** r' = (1-d)/n + d*y, with the L1 residual accumulated in double. */
double
applyDamping(const std::vector<Value> &r, const std::vector<Value> &y,
             Value dv, std::vector<Value> &r_new)
{
    const auto n = static_cast<Index>(r.size());
    const Value base = (Value(1) - dv) / static_cast<Value>(n);
    double residual = 0.0;
    for (std::size_t v = 0; v < r.size(); ++v) {
        r_new[v] = base + dv * y[v];
        residual += std::fabs(static_cast<double>(r_new[v]) -
                              static_cast<double>(r[v]));
    }
    return residual;
}

} // namespace

CscMatrix
columnStochastic(const CscMatrix &a)
{
    if (a.rows() != a.cols())
        fatal("columnStochastic: adjacency must be square");
    std::vector<Count> col_ptr;
    std::vector<Index> row_id;
    std::vector<Value> val;
    col_ptr.reserve(static_cast<std::size_t>(a.cols()) + 1);
    col_ptr.push_back(0);
    for (Index j = 0; j < a.cols(); ++j) {
        const Count nnz = a.colNnz(j);
        if (nnz == 0) {
            // Dangling column: a self-loop keeps M column-stochastic.
            row_id.push_back(j);
            val.push_back(Value(1));
        } else {
            const Value w = Value(1) / static_cast<Value>(nnz);
            for (Count p = a.colPtr()[static_cast<std::size_t>(j)];
                 p < a.colPtr()[static_cast<std::size_t>(j) + 1]; ++p) {
                row_id.push_back(a.rowId()[static_cast<std::size_t>(p)]);
                val.push_back(w);
            }
        }
        col_ptr.push_back(static_cast<Count>(row_id.size()));
    }
    return CscMatrix::fromParts(a.rows(), a.cols(), std::move(col_ptr),
                                std::move(row_id), std::move(val));
}

PagerankResult
pagerankReference(const CscMatrix &a, double damping, double tol,
                  Count max_iters)
{
    checkPagerankArgs(a, damping, tol, max_iters);
    const CscMatrix m = columnStochastic(a);
    const Index n = m.rows();
    const auto dv = static_cast<Value>(damping);

    PagerankResult res;
    std::vector<Value> r(static_cast<std::size_t>(n),
                         Value(1) / static_cast<Value>(n));
    std::vector<Value> y(static_cast<std::size_t>(n));
    std::vector<Value> r_new(static_cast<std::size_t>(n));
    while (res.iterations < max_iters) {
        // y = M r, scattered in ascending source order — the same
        // per-row accumulation order as the SpGEMM kernel.
        std::fill(y.begin(), y.end(), Value(0));
        for (Index u = 0; u < n; ++u) {
            const Value ru = r[static_cast<std::size_t>(u)];
            for (Count q = m.colPtr()[static_cast<std::size_t>(u)];
                 q < m.colPtr()[static_cast<std::size_t>(u) + 1]; ++q) {
                y[static_cast<std::size_t>(
                    m.rowId()[static_cast<std::size_t>(q)])] +=
                    m.val()[static_cast<std::size_t>(q)] * ru;
            }
        }
        res.residual = applyDamping(r, y, dv, r_new);
        res.residuals.push_back(res.residual);
        ++res.iterations;
        r.swap(r_new);
        if (res.residual <= tol) {
            res.converged = true;
            break;
        }
    }
    res.scores = std::move(r);
    return res;
}

PagerankRun
runPagerank(const AccelConfig &cfg, const CscMatrix &a, double damping,
            double tol, Count max_iters)
{
    checkPagerankArgs(a, damping, tol, max_iters);
    const CscMatrix m = columnStochastic(a);
    const Index n = m.rows();
    const auto dv = static_cast<Value>(damping);

    PagerankRun run;
    FrontierRunner runner(cfg, m);
    std::vector<Value> r(static_cast<std::size_t>(n),
                         Value(1) / static_cast<Value>(n));
    std::vector<Value> y(static_cast<std::size_t>(n));
    std::vector<Value> r_new(static_cast<std::size_t>(n));
    std::vector<std::pair<Index, Value>> entries(
        static_cast<std::size_t>(n));
    while (run.result.iterations < max_iters) {
        // The rank vector is strictly positive, so the frontier always
        // carries all n entries.
        for (Index v = 0; v < n; ++v)
            entries[static_cast<std::size_t>(v)] = {
                v, r[static_cast<std::size_t>(v)]};
        const CscMatrix yc = runner.step(frontierVector(n, entries));
        std::fill(y.begin(), y.end(), Value(0));
        for (Count p = yc.colPtr()[0]; p < yc.colPtr()[1]; ++p)
            y[static_cast<std::size_t>(
                yc.rowId()[static_cast<std::size_t>(p)])] =
                yc.val()[static_cast<std::size_t>(p)];
        run.result.residual = applyDamping(r, y, dv, r_new);
        run.result.residuals.push_back(run.result.residual);
        ++run.result.iterations;
        r.swap(r_new);
        if (run.result.residual <= tol) {
            run.result.converged = true;
            break;
        }
    }
    run.result.scores = std::move(r);
    run.stats = runner.stats();
    return run;
}

FrontierRunStats
modelPagerank(const AccelConfig &cfg, const CscMatrix &a, double damping,
              double tol, Count max_iters)
{
    checkPagerankArgs(a, damping, tol, max_iters);
    if (cfg.chips > 1) fatal("modelPagerank: chips must be 1");
    const CscMatrix m = columnStochastic(a);
    const Index n = m.rows();

    const PerfModel model(cfg);
    std::unique_ptr<PartitionPolicy> partitioner =
        makePartitionPolicy(cfg);
    RowPartition part = partitioner->build(m.rows(), m.rowNnz(), cfg);

    // The modelled timing only depends on the frontier *structure*,
    // which for PageRank is all n entries every iteration; the scalar
    // reference supplies the iteration count.
    const PagerankResult ref =
        pagerankReference(a, damping, tol, max_iters);
    FrontierRunStats stats;
    std::vector<std::pair<Index, Value>> entries(
        static_cast<std::size_t>(n));
    for (Index v = 0; v < n; ++v)
        entries[static_cast<std::size_t>(v)] = {v, Value(1)};
    const CscMatrix x = frontierVector(n, entries);
    for (Count it = 0; it < ref.iterations; ++it)
        accumulateModelIteration(stats, model.runSpgemm(m, x, part),
                                 x.nnz());
    return stats;
}

} // namespace awb::kernels
