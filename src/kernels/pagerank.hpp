/**
 * @file
 * PageRank as a frontier SpGEMM workload (DESIGN.md §11): power
 * iteration r' = (1-d)/n + d·(M r) over the column-stochastic operator
 * M built from the adjacency (empty columns get a self-loop, so there
 * are no dangling vertices), stopping when the double-precision L1
 * residual ||r' - r||_1 drops to `tol` or after `maxIters` iterations.
 * The rank vector is dense and strictly positive, so every iteration's
 * "frontier" carries all n entries — the all-hot counterpoint to BFS's
 * shifting frontiers. Per-row accumulation runs in ascending source
 * order in both the scalar reference and the SpGEMM kernel, so the
 * accelerated scores bit-match pagerankReference().
 */

#pragma once

#include <vector>

#include "accel/config.hpp"
#include "kernels/frontier.hpp"
#include "sparse/csc.hpp"

namespace awb::kernels {

/** Column-stochastic operator of a square adjacency: every column's
 *  values become 1/colNnz; empty columns get a (j, 1) self-loop so the
 *  result has no dangling columns. fatal() on a non-square operand. */
CscMatrix columnStochastic(const CscMatrix &a);

/** Functional PageRank output. */
struct PagerankResult
{
    std::vector<Value> scores;       ///< final rank vector (sums to ~1)
    Count iterations = 0;            ///< power iterations executed
    double residual = 0.0;           ///< final L1 residual
    std::vector<double> residuals;   ///< per-iteration L1 residuals
    bool converged = false;          ///< residual <= tol before maxIters
};

/** Scalar reference power iteration; fatal() on a non-square operand,
 *  damping outside (0, 1), non-positive tol or maxIters < 1. */
PagerankResult pagerankReference(const CscMatrix &a, double damping,
                                 double tol, Count maxIters);

/** PageRank executed on the AWB array (cycle fidelity). */
struct PagerankRun
{
    PagerankResult result;
    FrontierRunStats stats;
};

/** Run PageRank on the cycle-accurate engine through FrontierRunner;
 *  scores bit-match pagerankReference(). Honors cfg.chips. */
PagerankRun runPagerank(const AccelConfig &cfg, const CscMatrix &a,
                        double damping, double tol, Count maxIters);

/** Round-level model twin (PerfModel::runSpgemm per iteration, carried
 *  partition); chips must be 1. */
FrontierRunStats modelPagerank(const AccelConfig &cfg, const CscMatrix &a,
                               double damping, double tol, Count maxIters);

} // namespace awb::kernels
