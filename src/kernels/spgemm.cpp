#include "kernels/spgemm.hpp"

#include <algorithm>
#include <cstdint>

#include "common/log.hpp"

namespace awb::kernels {

namespace {

/**
 * Open-addressing accumulator for one output column: row id → running
 * value. Entries record insertion order; emission sorts a copy of the
 * touched rows, so the per-row accumulation order (ascending j, fixed
 * by the caller's visit order) is independent of hash placement.
 */
class HashAccumulator
{
  public:
    void reset(Count upper_bound)
    {
        std::size_t want = 8;
        while (want < 2 * static_cast<std::size_t>(upper_bound)) want *= 2;
        table_.assign(want, -1);
        mask_ = want - 1;
        entries_.clear();
    }

    void add(Index row, Value v)
    {
        std::size_t slot =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) *
             0x9e3779b9ULL) &
            mask_;
        while (true) {
            std::int64_t e = table_[slot];
            if (e < 0) {
                table_[slot] = static_cast<std::int64_t>(entries_.size());
                entries_.emplace_back(row, v);
                return;
            }
            if (entries_[static_cast<std::size_t>(e)].first == row) {
                entries_[static_cast<std::size_t>(e)].second += v;
                return;
            }
            slot = (slot + 1) & mask_;
        }
    }

    /** Touched (row, value) pairs sorted by row id. */
    std::vector<std::pair<Index, Value>> &sorted()
    {
        std::sort(entries_.begin(), entries_.end(),
                  [](const auto &x, const auto &y) {
                      return x.first < y.first;
                  });
        return entries_;
    }

  private:
    std::vector<std::int64_t> table_;  ///< slot → entry index, -1 empty
    std::size_t mask_ = 0;
    std::vector<std::pair<Index, Value>> entries_;
};

/** Upper bound on one output column's fill: the summed nnz of the A
 *  columns the B column references (duplicate rows not yet merged). */
Count
columnUpperBound(const CscMatrix &a, const CscMatrix &b, Index k)
{
    Count upper = 0;
    const Count begin = b.colPtr()[static_cast<std::size_t>(k)];
    const Count end = b.colPtr()[static_cast<std::size_t>(k) + 1];
    for (Count p = begin; p < end; ++p) {
        const Index j = b.rowId()[static_cast<std::size_t>(p)];
        upper += a.colPtr()[static_cast<std::size_t>(j) + 1] -
                 a.colPtr()[static_cast<std::size_t>(j)];
    }
    return upper;
}

} // namespace

CscMatrix
spgemm(const CscMatrix &a, const CscMatrix &b)
{
    if (a.cols() != b.rows())
        fatal("spgemm: inner dimensions differ (" +
              std::to_string(a.cols()) + " vs " + std::to_string(b.rows()) +
              ")");
    const Index m = a.rows();

    std::vector<Count> col_ptr(static_cast<std::size_t>(b.cols()) + 1, 0);
    std::vector<Index> row_id;
    std::vector<Value> val;

    HashAccumulator hash;
    // Dense fallback scratch: an epoch mark avoids clearing per column.
    std::vector<Value> dense(static_cast<std::size_t>(m), Value(0));
    std::vector<std::uint32_t> epoch(static_cast<std::size_t>(m), 0);
    std::uint32_t cur = 0;

    for (Index k = 0; k < b.cols(); ++k) {
        const Count begin = b.colPtr()[static_cast<std::size_t>(k)];
        const Count end = b.colPtr()[static_cast<std::size_t>(k) + 1];
        const Count upper = columnUpperBound(a, b, k);
        // Dense rows: when the candidate fill approaches the row count a
        // hash table buys nothing — accumulate into a dense column and
        // emit it with a sorted row scan (the sorted-merge fallback).
        const bool use_dense = upper * 4 >= static_cast<Count>(m);

        if (use_dense) {
            ++cur;
            for (Count p = begin; p < end; ++p) {
                const Index j = b.rowId()[static_cast<std::size_t>(p)];
                const Value bv = b.val()[static_cast<std::size_t>(p)];
                for (Count q = a.colPtr()[static_cast<std::size_t>(j)];
                     q < a.colPtr()[static_cast<std::size_t>(j) + 1]; ++q) {
                    const auto i = static_cast<std::size_t>(
                        a.rowId()[static_cast<std::size_t>(q)]);
                    if (epoch[i] != cur) {
                        epoch[i] = cur;
                        dense[i] = Value(0);
                    }
                    dense[i] += a.val()[static_cast<std::size_t>(q)] * bv;
                }
            }
            for (Index i = 0; i < m; ++i) {
                if (epoch[static_cast<std::size_t>(i)] != cur) continue;
                row_id.push_back(i);
                val.push_back(dense[static_cast<std::size_t>(i)]);
            }
        } else {
            hash.reset(std::max<Count>(upper, 1));
            for (Count p = begin; p < end; ++p) {
                const Index j = b.rowId()[static_cast<std::size_t>(p)];
                const Value bv = b.val()[static_cast<std::size_t>(p)];
                for (Count q = a.colPtr()[static_cast<std::size_t>(j)];
                     q < a.colPtr()[static_cast<std::size_t>(j) + 1]; ++q) {
                    hash.add(a.rowId()[static_cast<std::size_t>(q)],
                             a.val()[static_cast<std::size_t>(q)] * bv);
                }
            }
            for (const auto &[row, v] : hash.sorted()) {
                row_id.push_back(row);
                val.push_back(v);
            }
        }
        col_ptr[static_cast<std::size_t>(k) + 1] =
            static_cast<Count>(row_id.size());
    }

    return CscMatrix::fromParts(m, b.cols(), std::move(col_ptr),
                                std::move(row_id), std::move(val));
}

CscMatrix
spgemmPower(const CscMatrix &a, Index k)
{
    if (a.rows() != a.cols()) fatal("spgemmPower: operand must be square");
    if (k < 1) fatal("spgemmPower: exponent must be >= 1");
    CscMatrix out = a;
    for (Index h = 1; h < k; ++h) out = spgemm(a, out);
    return out;
}

std::vector<Count>
spgemmColumnNnz(const CscMatrix &a, const CscMatrix &b)
{
    if (a.cols() != b.rows())
        fatal("spgemmColumnNnz: inner dimensions differ");
    std::vector<Count> out;
    out.reserve(static_cast<std::size_t>(b.cols()));
    std::vector<std::uint32_t> epoch(static_cast<std::size_t>(a.rows()), 0);
    std::uint32_t cur = 0;
    for (Index k = 0; k < b.cols(); ++k) {
        ++cur;
        Count nnz = 0;
        for (Count p = b.colPtr()[static_cast<std::size_t>(k)];
             p < b.colPtr()[static_cast<std::size_t>(k) + 1]; ++p) {
            const Index j = b.rowId()[static_cast<std::size_t>(p)];
            for (Count q = a.colPtr()[static_cast<std::size_t>(j)];
                 q < a.colPtr()[static_cast<std::size_t>(j) + 1]; ++q) {
                const auto i = static_cast<std::size_t>(
                    a.rowId()[static_cast<std::size_t>(q)]);
                if (epoch[i] == cur) continue;
                epoch[i] = cur;
                ++nnz;
            }
        }
        out.push_back(nnz);
    }
    return out;
}

} // namespace awb::kernels
