/**
 * @file
 * Functional sparse×sparse SPGEMM kernel (DESIGN.md §11): C = A × B for
 * CSC operands, producing a sparse CSC result. Column-wise Gustavson
 * with hash-based per-row accumulation — per output column k, B's
 * column-k non-zeros are visited in ascending inner index j and A's
 * column j is scattered into a per-column accumulator. Columns whose
 * upper-bound fill approaches the row count fall back to a dense
 * accumulator emitted by a sorted row scan; both paths accumulate each
 * output row's contributions in the same ascending-j order, so the
 * values bit-match the dense reference interpreter (which adds exact
 * zeros for the structurally absent terms — a floating-point identity).
 *
 * This is the golden model the Spgemm workload node and the
 * SpmmEngine::executeSpgemm cycle path are validated against; it is
 * also what they use to materialize the functional result (the event
 * schedule never feeds values back into control, so timing and values
 * are computed independently).
 */

#pragma once

#include <vector>

#include "sparse/csc.hpp"

namespace awb::kernels {

/** C = A × B, both CSC; fatal() when inner dimensions differ. Entries
 *  whose accumulated value is a hard zero are kept (structural result:
 *  frontier kernels read reachability off the non-zero pattern). */
CscMatrix spgemm(const CscMatrix &a, const CscMatrix &b);

/** A^k for k >= 1 by left-multiplication (A × A^(k-1)); k = 1 returns a
 *  copy of A. fatal() on a non-square operand or k < 1. */
CscMatrix spgemmPower(const CscMatrix &a, Index k);

/** Structural non-zero count of every output column of A × B — the
 *  output-traffic accounting the round-level PerfModel shares with the
 *  cycle engine (DESIGN.md §11) without forming values. */
std::vector<Count> spgemmColumnNnz(const CscMatrix &a, const CscMatrix &b);

} // namespace awb::kernels
