#include "model/area_model.hpp"

#include <cmath>

namespace awb {

namespace {

int
log2i(int v)
{
    int s = 0;
    while ((1 << s) < v) ++s;
    return s;
}

} // namespace

AreaEstimate
estimateArea(const AccelConfig &cfg, std::size_t peak_tq_depth,
             const AreaConstants &consts)
{
    AreaEstimate est;
    const double P = cfg.numPes;

    double logic = consts.clbFixed + P * consts.clbPerPe;
    // Omega network: P/2 routers per stage, log2(P) stages.
    logic += (P / 2.0) * log2i(cfg.numPes) * consts.clbPerRouter;

    // Rebalancing logic overheads (measured by the paper after synthesis).
    double overhead = 0.0;
    if (cfg.sharingHops == 1) {
        overhead += consts.localSharing1HopFrac;
    } else if (cfg.sharingHops >= 2) {
        overhead += consts.localSharing2HopFrac;
    }
    if (cfg.remoteSwitching) overhead += consts.remoteSwitchFrac;
    logic *= 1.0 + overhead;

    est.otherClb = logic;
    est.tqClb = P * static_cast<double>(peak_tq_depth) * consts.clbPerTqSlot;
    est.totalClb = est.otherClb + est.tqClb;
    return est;
}

} // namespace awb
