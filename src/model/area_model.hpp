/**
 * @file
 * Hardware-resource (area) model in CLB-equivalents, reproducing the
 * structure of paper Fig. 14 K-O and the bars of Fig. 15.
 *
 * The paper's area accounting splits into (1) the task queues (TQs), whose
 * physical size is set by the worst-case occupancy the workload produces —
 * this is the component rebalancing shrinks dramatically (Nell: depth
 * 65128 → 2675) — and (2) everything else (PEs, Omega network, memories,
 * control), which is constant per design except for the small rebalancing
 * logic overheads the paper reports: +2.7% for 1-hop sharing, +4.3% for
 * 2-hop, +1.9% for remote switching, relative to baseline logic.
 */

#pragma once

#include "accel/config.hpp"
#include "common/types.hpp"

namespace awb {

/** Calibration constants (CLB-equivalents). */
struct AreaConstants
{
    double clbPerPe = 120.0;       ///< MAC + AGU + scoreboard + ACC control
    double clbPerRouter = 24.0;    ///< one 2x2 Omega router + buffers
    double clbPerTqSlot = 0.6;     ///< one task-queue entry (val+row+tag)
    double clbFixed = 4000.0;      ///< SPMMeM/DCM controllers, misc
    double localSharing1HopFrac = 0.027;  ///< paper §5.2 overheads
    double localSharing2HopFrac = 0.043;
    double remoteSwitchFrac = 0.019;
};

/** Area broken down the way Fig. 14 K-O plots it. */
struct AreaEstimate
{
    double tqClb = 0.0;     ///< task-queue buffering (the red bars)
    double otherClb = 0.0;  ///< all other logic (the green bars)
    double totalClb = 0.0;
};

/**
 * Estimate design area.
 *
 * @param cfg          accelerator configuration (PEs, hops, remote)
 * @param peak_tq_depth  worst per-PE TQ occupancy measured by simulation;
 *                       the physical queues must be at least this deep
 * @param consts       calibration constants
 */
AreaEstimate estimateArea(const AccelConfig &cfg, std::size_t peak_tq_depth,
                          const AreaConstants &consts = AreaConstants{});

} // namespace awb
