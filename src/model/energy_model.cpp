#include "model/energy_model.hpp"

namespace awb {

EnergyReport
evaluateEnergy(Cycle cycles, Count tasks, double freq_mhz, Count moves,
               const EnergyConstants &consts)
{
    if (moves < 0) moves = 2 * tasks;
    EnergyReport rep;
    double seconds = static_cast<double>(cycles) / (freq_mhz * 1e6);
    rep.latencyMs = seconds * 1e3;
    rep.energyJ = consts.staticWatts * seconds +
                  consts.macPj * 1e-12 * static_cast<double>(tasks) +
                  consts.movePj * 1e-12 * static_cast<double>(moves);
    rep.inferencesPerKj = rep.energyJ > 0.0 ? 1000.0 / rep.energyJ : 0.0;
    return rep;
}

EnergyReport
evaluateFixedPower(double latency_ms, double watts)
{
    EnergyReport rep;
    rep.latencyMs = latency_ms;
    rep.energyJ = watts * latency_ms * 1e-3;
    rep.inferencesPerKj = rep.energyJ > 0.0 ? 1000.0 / rep.energyJ : 0.0;
    return rep;
}

} // namespace awb
