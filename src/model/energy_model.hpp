/**
 * @file
 * Board-level latency/energy model for Table 3.
 *
 * The paper measures wall power with a meter; we substitute a standard
 * static + per-event dynamic decomposition:
 *
 *   E = P_static · t  +  e_mac · #MACs  +  e_move · #queue/network events
 *
 * and report the paper's metrics: inference latency in milliseconds and
 * energy efficiency in Graph-Inference/kJ. Constants are calibrated so the
 * FPGA designs land in the magnitude range of Table 3; cross-platform
 * *ratios* (who wins, by what factor) are the reproduction target.
 */

#pragma once

#include "common/types.hpp"

namespace awb {

/** Power/energy calibration constants. */
struct EnergyConstants
{
    double staticWatts = 12.0;   ///< board static + clock tree
    double macPj = 18.0;         ///< one fp32 MAC (pJ)
    double movePj = 6.0;         ///< one queue push / network hop (pJ)
};

/** Latency + energy of one inference on a clocked accelerator. */
struct EnergyReport
{
    double latencyMs = 0.0;
    double energyJ = 0.0;
    double inferencesPerKj = 0.0;
};

/**
 * Evaluate an accelerator run.
 *
 * @param cycles     end-to-end cycles of one inference
 * @param tasks      MAC operations executed
 * @param moves      data-movement events (defaults to 2 per task: one
 *                   queue push + one network/scan hop on average)
 * @param freq_mhz   operating frequency (paper: 275 MHz, EIE-like 285)
 */
EnergyReport evaluateEnergy(Cycle cycles, Count tasks, double freq_mhz,
                            Count moves = -1,
                            const EnergyConstants &consts = EnergyConstants{});

/** Latency/energy for a fixed-power platform (CPU/GPU rows of Table 3). */
EnergyReport evaluateFixedPower(double latency_ms, double watts);

} // namespace awb
