#include "model/memory_model.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/text.hpp"

namespace awb {

const std::vector<PlatformSpec> &
knownPlatforms()
{
    // Bandwidth figures are the parts' published peaks; the reproduction
    // target is the cross-platform ordering, not absolute numbers.
    // interChipGBs is the per-chip scale-out link: PCIe gen3 x16-class
    // (16 GB/s) for the FPGA boards, NVLink-class (80 GB/s) for the GPU
    // part, a modest 8 GB/s for the edge board. unconstrained has no
    // link bound, keeping it the provable-no-op reference platform.
    static const std::vector<PlatformSpec> kPlatforms = {
        {"unconstrained", "inf BW",
         "no off-chip bandwidth bound (compute-only, the default)", 0.0,
         4, 4, 0.0},
        {"ddr4-2400", "DDR4 x1",
         "single-channel DDR4-2400 (19.2 GB/s): edge/embedded board",
         19.2, 4, 4, 8.0},
        {"d5005-ddr4", "D5005",
         "Intel FPGA PAC D5005, 4x DDR4-2400 (76.8 GB/s): the paper's "
         "Stratix 10 SX board class",
         76.8, 4, 4, 16.0},
        {"vcu128-hbm2", "VCU128",
         "Xilinx VCU128 HBM2 (460 GB/s)", 460.0, 4, 4, 16.0},
        {"p100-hbm2", "P100 HBM2",
         "Tesla P100-class HBM2 (732 GB/s, the Table 3 GPU's memory)",
         732.0, 4, 4, 80.0},
    };
    return kPlatforms;
}

const PlatformSpec *
findPlatformOrNull(const std::string &name)
{
    if (name.empty()) return &knownPlatforms().front();
    for (const PlatformSpec &p : knownPlatforms())
        if (p.name == name) return &p;
    return nullptr;
}

std::string
knownPlatformNames()
{
    std::string known;
    for (const PlatformSpec &p : knownPlatforms())
        known += (known.empty() ? "" : "|") + p.name;
    return known;
}

std::string
nearestPlatformName(const std::string &name)
{
    std::vector<std::string> candidates;
    for (const PlatformSpec &p : knownPlatforms())
        candidates.push_back(p.name);
    return nearestOf(name, candidates);
}

const PlatformSpec &
findPlatform(const std::string &name)
{
    if (const PlatformSpec *p = findPlatformOrNull(name)) return *p;
    fatal("unknown platform '" + name + "' — did you mean '" +
          nearestPlatformName(name) + "'? (" + knownPlatformNames() +
          "; awbsim --list-platforms shows details)");
}

MemoryModel::MemoryModel(const PlatformSpec &platform, double clock_mhz)
    : platform_(platform)
{
    if (clock_mhz <= 0.0) fatal("MemoryModel: clock must be positive");
    if (platform.bandwidthGBs > 0.0) {
        // GB/s over MHz: (bw * 1e9 bytes/s) / (clock * 1e6 cycles/s).
        bytesPerCycle_ = platform.bandwidthGBs * 1e3 / clock_mhz;
    }
    if (platform.interChipGBs > 0.0)
        linkBytesPerCycle_ = platform.interChipGBs * 1e3 / clock_mhz;
}

MemoryTraffic
MemoryModel::roundTraffic(Count nnz, Index inner_dim, Index rows) const
{
    MemoryTraffic t;
    t.sparseBytes =
        nnz * (platform_.bytesPerValue + platform_.bytesPerIndex);
    t.denseBytes = static_cast<Count>(inner_dim) * platform_.bytesPerValue;
    t.outputBytes = static_cast<Count>(rows) * platform_.bytesPerValue;
    return t;
}

MemoryTraffic
MemoryModel::spgemmRoundTraffic(Count tasks, Count b_nnz,
                                Count out_nnz) const
{
    MemoryTraffic t;
    const Count per_nnz =
        platform_.bytesPerValue + platform_.bytesPerIndex;
    t.sparseBytes = tasks * per_nnz;
    t.bRowBytes = b_nnz * per_nnz;
    t.outputBytes = out_nnz * platform_.bytesPerValue;
    t.outputIndexBytes = out_nnz * platform_.bytesPerIndex;
    return t;
}

Count
MemoryModel::migrationBytes(const std::vector<int> &owners_before,
                            const std::vector<int> &owners_after,
                            const std::vector<Count> &row_work) const
{
    Count bytes = 0;
    const Count per_nnz =
        platform_.bytesPerValue + platform_.bytesPerIndex;
    for (std::size_t r = 0; r < owners_before.size(); ++r)
        if (owners_before[r] != owners_after[r])
            bytes += row_work[r] * per_nnz;
    return bytes;
}

Cycle
MemoryModel::floorCycles(Count bytes) const
{
    if (bytesPerCycle_ <= 0.0 || bytes <= 0) return 0;
    return static_cast<Cycle>(
        std::ceil(static_cast<double>(bytes) / bytesPerCycle_));
}

Cycle
MemoryModel::haloFloorCycles(Count bytes) const
{
    if (linkBytesPerCycle_ <= 0.0 || bytes <= 0) return 0;
    return static_cast<Cycle>(
        std::ceil(static_cast<double>(bytes) / linkBytesPerCycle_));
}

} // namespace awb
