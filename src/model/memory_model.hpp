/**
 * @file
 * Bandwidth-aware off-chip memory model (DESIGN.md §8).
 *
 * The paper's platforms (Table 3) differ as much in memory system as in
 * compute: an accelerator fed from single-channel DDR4 cannot sustain the
 * task rate an HBM2 part can, however well the PE array is balanced. This
 * module models that bound. A `PlatformSpec` names an off-chip memory
 * system (peak bandwidth, element widths); `MemoryModel` converts one
 * SPMM round's off-chip traffic — the sparse-operand non-zero stream,
 * the streamed dense column, the output-column write and any row
 * migrations the rebalance policy ordered — into a bandwidth-bound cycle
 * floor, which both simulation fidelities compose with their compute
 * cycles roofline-style:
 *
 *     round_cycles = max(compute_cycles, ceil(bytes / bytes_per_cycle))
 *
 * The `unconstrained` platform (also the empty `AccelConfig::platform`)
 * has no bandwidth bound: its floor is identically zero, making the
 * composition a provable no-op — cycles, rowsSwitched and convergedRound
 * are bit-identical to a build without the memory model (locked by
 * tests/test_memory_model.cpp). Traffic bytes are accounted on every
 * platform; only the floor needs a bandwidth figure.
 */

#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace awb {

/** An off-chip memory system an accelerator build can be mounted on. */
struct PlatformSpec
{
    std::string name;         ///< registry key (kebab-case)
    std::string label;        ///< display name
    std::string description;  ///< one-liner for `awbsim --list-platforms`
    /** Peak off-chip bandwidth in GB/s; 0 = unconstrained (no bound). */
    double bandwidthGBs = 0.0;
    int bytesPerValue = 4;    ///< fp32 matrix elements
    int bytesPerIndex = 4;    ///< row ids / CSC bookkeeping entries
    /** Per-chip inter-chip link bandwidth in GB/s (halo exchange,
     *  DESIGN.md §9); 0 = unconstrained link (no halo floor). */
    double interChipGBs = 0.0;
};

/** Registered platforms: `unconstrained` first, then real memory systems
 *  spanning single-channel DDR4 through P100-class HBM2. */
const std::vector<PlatformSpec> &knownPlatforms();

/** nullptr when no platform matches (empty string = `unconstrained`). */
const PlatformSpec *findPlatformOrNull(const std::string &name);

/** "unconstrained|ddr4-2400|..." — for error messages. */
std::string knownPlatformNames();

/** Registered platform name closest to `name` by edit distance — the
 *  "did you mean ...?" suggestion findPlatform's error carries, same as
 *  the policy registry's. */
std::string nearestPlatformName(const std::string &name);

/** Look up a platform by name; the empty string resolves to
 *  `unconstrained`. fatal() with the registered set on an unknown name. */
const PlatformSpec &findPlatform(const std::string &name);

/** Off-chip bytes moved, by accounting category (DESIGN.md §8, §11). */
struct MemoryTraffic
{
    Count sparseBytes = 0;     ///< sparse-operand non-zero stream
    Count denseBytes = 0;      ///< streamed dense-column loads
    Count outputBytes = 0;     ///< result-column writes
    Count migrationBytes = 0;  ///< remote-switch row migrations
    Count haloBytes = 0;       ///< inter-chip boundary-row exchange (§9)
    Count bRowBytes = 0;       ///< SpGEMM sparse B-column fetch (§11)
    Count outputIndexBytes = 0;  ///< SpGEMM output row-id writes (§11)

    Count total() const
    {
        return sparseBytes + denseBytes + outputBytes + migrationBytes +
               haloBytes + bRowBytes + outputIndexBytes;
    }

    MemoryTraffic &operator+=(const MemoryTraffic &o)
    {
        sparseBytes += o.sparseBytes;
        denseBytes += o.denseBytes;
        outputBytes += o.outputBytes;
        migrationBytes += o.migrationBytes;
        haloBytes += o.haloBytes;
        bRowBytes += o.bRowBytes;
        outputIndexBytes += o.outputIndexBytes;
        return *this;
    }
};

/**
 * Converts per-round traffic into a bandwidth-bound cycle floor at a
 * given accelerator clock. Stateless; both fidelities construct one per
 * SPMM from `AccelConfig::platform` and the policy clock.
 */
class MemoryModel
{
  public:
    /**
     * @param platform   the memory system (bandwidth + element widths)
     * @param clock_mhz  PE clock the floor is expressed in (the policy
     *                   clock: 275 MHz paper designs, 285 MHz EIE-like)
     */
    MemoryModel(const PlatformSpec &platform, double clock_mhz);

    /** True when the platform imposes no bandwidth bound (floor == 0). */
    bool unconstrained() const { return bytesPerCycle_ <= 0.0; }

    /** Sustainable off-chip bytes per PE-clock cycle (0 when unbounded). */
    double bytesPerCycle() const { return bytesPerCycle_; }

    /**
     * Steady per-round traffic of one SPMM C = A×B processing one dense
     * column: A's non-zero stream (value + index each), one column of B
     * (`inner_dim` = rows of B), one written column of C (`rows`).
     * Migration traffic is accounted separately (migrationBytes()).
     */
    MemoryTraffic roundTraffic(Count nnz, Index inner_dim,
                               Index rows) const;

    /**
     * Steady per-round traffic of one SpGEMM C = A×B round processing one
     * sparse B column (DESIGN.md §11): the A non-zero stream the round's
     * `tasks` multiply (value + index each), the fetched B column
     * (`b_nnz` value + index pairs — replacing the dense-column stream),
     * and the written sparse C column (`out_nnz` values plus the same
     * count of row-id index writes, the new outputIndexBytes class).
     */
    MemoryTraffic spgemmRoundTraffic(Count tasks, Count b_nnz,
                                     Count out_nnz) const;

    /**
     * Bytes to migrate the rows whose owner changed between two row→PE
     * maps: each moved row re-streams its non-zeros (value + index) to
     * the new owner's bank.
     */
    Count migrationBytes(const std::vector<int> &owners_before,
                         const std::vector<int> &owners_after,
                         const std::vector<Count> &row_work) const;

    /** Cycle floor for moving `bytes` off-chip: ceil(bytes / B_cyc);
     *  0 on an unconstrained platform. */
    Cycle floorCycles(Count bytes) const;

    /** Sustainable inter-chip link bytes per PE-clock cycle (0 when the
     *  platform's link is unconstrained). */
    double interChipBytesPerCycle() const { return linkBytesPerCycle_; }

    /** Cycle floor for moving `bytes` over one chip's inter-chip link:
     *  ceil(bytes / link_B_cyc); 0 on an unconstrained link. Composed
     *  into the round barrier the same roofline way as floorCycles()
     *  (DESIGN.md §9). */
    Cycle haloFloorCycles(Count bytes) const;

    const PlatformSpec &platform() const { return platform_; }

  private:
    PlatformSpec platform_;
    double bytesPerCycle_ = 0.0;
    double linkBytesPerCycle_ = 0.0;
};

} // namespace awb
