#include "model/platforms.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "gcn/reference.hpp"

namespace awb {

double
measureCpuLatencyMs(const Dataset &ds, const GcnModel &model, int reps)
{
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        auto start = std::chrono::steady_clock::now();
        auto result = inferGcn(ds, model, ComputeOrder::XwFirst);
        auto stop = std::chrono::steady_clock::now();
        // Touch the output so the inference cannot be optimized away.
        volatile Value sink = result.output.at(0, 0);
        (void)sink;
        samples.push_back(
            std::chrono::duration<double, std::milli>(stop - start).count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

double
modelCpuLatencyMs(const NetworkOps &ops, const CpuModelConstants &c)
{
    // 2 FLOPs per multiply-accumulate; XwFirst order (what PyTorch runs).
    double flops = 2.0 * static_cast<double>(ops.total.xwFirst);
    return flops / (c.effGflops * 1e9) * 1e3 + c.overheadMs;
}

double
modelGpuLatencyMs(const NetworkOps &ops, int layers,
                  const GpuModelConstants &c)
{
    double flops = 2.0 * static_cast<double>(ops.total.xwFirst);
    // Data movement: every MAC touches one 8-byte sparse entry + one
    // 4-byte dense operand on average (CSR stream + dense column reuse).
    double bytes = 12.0 * static_cast<double>(ops.total.xwFirst);
    double compute_ms = flops / (c.peakGflops * 1e9 * c.spmmEfficiency) * 1e3;
    double memory_ms = bytes / (c.bandwidthGBs * 1e9) * 1e3;
    double overhead_ms =
        c.kernelOverheadMs * c.kernelsPerLayer * static_cast<double>(layers);
    return std::max(compute_ms, memory_ms) + overhead_ms;
}

} // namespace awb
