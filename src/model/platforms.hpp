/**
 * @file
 * Cross-platform baselines for Table 3: the CPU (measured on the host
 * running the reference GCN, or analytically from op counts when a full
 * run is impractical) and an analytic GPU model standing in for the
 * PyTorch/cuSPARSE Tesla-P100 of the paper (no GPU exists in this
 * environment; DESIGN.md §3 documents the substitution).
 */

#pragma once

#include "gcn/model.hpp"
#include "gcn/ops_count.hpp"
#include "graph/datasets.hpp"

namespace awb {

/** Effective-throughput model of a server CPU running sparse GCN. */
struct CpuModelConstants
{
    /** Sustained SpMM GFLOP/s of the paper's Xeon E5-2698v4 with PyTorch:
     *  sparse kernels reach only a few percent of peak. */
    double effGflops = 2.0;
    double watts = 135.0;        ///< package TDP
    double overheadMs = 0.8;     ///< framework dispatch per inference
};

/** Roofline-style model of a Tesla-P100 running cuSPARSE SpMM. */
struct GpuModelConstants
{
    double peakGflops = 9300.0;  ///< fp32 peak
    /** cuSPARSE on ultra-sparse operands sustains ~0.1% of peak: back-
     *  solved from the paper's own GPU latencies (Nell 130.65 ms for
     *  1.56 GFLOP -> 0.13%; Reddit 2.43 s for 13.2 GFLOP -> 0.06%). */
    double spmmEfficiency = 0.001;
    double bandwidthGBs = 732.0; ///< HBM2
    /** Launch + PyTorch dispatch; 0.4 ms/kernel reproduces the paper's
     *  small-graph latencies (Cora 1.78 ms ~= 4 kernels x 0.4 ms). */
    double kernelOverheadMs = 0.4;
    int kernelsPerLayer = 2;     ///< XW and A(XW)
    double watts = 250.0;        ///< board TDP
};

/**
 * Wall-clock measure of the reference GCN on the host CPU (median of
 * `reps` runs), in milliseconds. This is the honest CPU baseline for
 * datasets that fit.
 */
double measureCpuLatencyMs(const Dataset &ds, const GcnModel &model,
                           int reps = 3);

/** Analytic CPU latency from op counts (used at full Nell/Reddit scale). */
double modelCpuLatencyMs(const NetworkOps &ops,
                         const CpuModelConstants &c = CpuModelConstants{});

/** Analytic GPU latency from op counts. */
double modelGpuLatencyMs(const NetworkOps &ops, int layers,
                         const GpuModelConstants &c = GpuModelConstants{});

} // namespace awb
