#include "serve/ego.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/log.hpp"

namespace awb::serve {

std::vector<Index>
egoNodes(const CscMatrix &a, Index seed, int hops, Index max_nodes)
{
    if (seed < 0 || seed >= a.cols()) panic("egoNodes: seed out of range");
    if (max_nodes < 1) max_nodes = 1;

    std::vector<Index> nodes{seed};
    std::unordered_map<Index, bool> seen{{seed, true}};
    std::size_t frontier_begin = 0;
    for (int h = 0; h < hops; ++h) {
        const std::size_t frontier_end = nodes.size();
        if (frontier_begin == frontier_end) break;
        for (std::size_t f = frontier_begin; f < frontier_end; ++f) {
            const Index u = nodes[f];
            const Count lo = a.colPtr()[static_cast<std::size_t>(u)];
            const Count hi = a.colPtr()[static_cast<std::size_t>(u) + 1];
            for (Count p = lo; p < hi; ++p) {
                const Index v = a.rowId()[static_cast<std::size_t>(p)];
                if (seen.emplace(v, true).second) {
                    nodes.push_back(v);
                    if (static_cast<Index>(nodes.size()) >= max_nodes) {
                        std::sort(nodes.begin(), nodes.end());
                        return nodes;
                    }
                }
            }
        }
        frontier_begin = frontier_end;
    }
    std::sort(nodes.begin(), nodes.end());
    return nodes;
}

CscMatrix
inducedSubgraph(const CscMatrix &a, const std::vector<Index> &nodes)
{
    const Index n = static_cast<Index>(nodes.size());
    std::unordered_map<Index, Index> local;
    local.reserve(nodes.size());
    for (Index i = 0; i < n; ++i) {
        if (i > 0 && nodes[static_cast<std::size_t>(i)] <=
                         nodes[static_cast<std::size_t>(i) - 1])
            panic("inducedSubgraph: node list must be sorted and unique");
        local.emplace(nodes[static_cast<std::size_t>(i)], i);
    }

    std::vector<Count> col_ptr(static_cast<std::size_t>(n) + 1, 0);
    std::vector<Index> row_id;
    std::vector<Value> val;
    for (Index j = 0; j < n; ++j) {
        const Index gj = nodes[static_cast<std::size_t>(j)];
        const Count lo = a.colPtr()[static_cast<std::size_t>(gj)];
        const Count hi = a.colPtr()[static_cast<std::size_t>(gj) + 1];
        for (Count p = lo; p < hi; ++p) {
            auto it = local.find(a.rowId()[static_cast<std::size_t>(p)]);
            if (it == local.end()) continue;
            // Global rows are sorted within the column and the
            // global→local map is monotone, so locals stay sorted.
            row_id.push_back(it->second);
            val.push_back(a.val()[static_cast<std::size_t>(p)]);
        }
        col_ptr[static_cast<std::size_t>(j) + 1] =
            static_cast<Count>(row_id.size());
    }
    return CscMatrix::fromParts(n, n, std::move(col_ptr),
                                std::move(row_id), std::move(val));
}

CsrMatrix
selectRows(const CsrMatrix &x, const std::vector<Index> &nodes)
{
    const Index n = static_cast<Index>(nodes.size());
    std::vector<Count> row_ptr(static_cast<std::size_t>(n) + 1, 0);
    std::vector<Index> col_id;
    std::vector<Value> val;
    for (Index i = 0; i < n; ++i) {
        const Index gi = nodes[static_cast<std::size_t>(i)];
        if (gi < 0 || gi >= x.rows())
            panic("selectRows: node id out of range");
        const Count lo = x.rowPtr()[static_cast<std::size_t>(gi)];
        const Count hi = x.rowPtr()[static_cast<std::size_t>(gi) + 1];
        for (Count p = lo; p < hi; ++p) {
            col_id.push_back(x.colId()[static_cast<std::size_t>(p)]);
            val.push_back(x.val()[static_cast<std::size_t>(p)]);
        }
        row_ptr[static_cast<std::size_t>(i) + 1] =
            static_cast<Count>(col_id.size());
    }
    return CsrMatrix::fromParts(n, x.cols(), std::move(row_ptr),
                                std::move(col_id), std::move(val));
}

} // namespace awb::serve
