/**
 * @file
 * Ego-subgraph extraction: deterministic k-hop BFS node sets and induced
 * sub-matrices over a dataset's adjacency/features (DESIGN.md §10). Used
 * by the request generator (to profile a request's work at admission
 * time) and by the cycle-fidelity service model (to materialize the
 * matrices a batch actually executes on).
 */

#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace awb::serve {

/**
 * Nodes of the k-hop neighbourhood around `seed`, breadth-first, capped
 * at `max_nodes` (frontier order decides who makes the cut, so hub
 * explosions in power-law graphs stay bounded). A column's entries act
 * as the node's neighbour list. Returned sorted ascending.
 */
std::vector<Index> egoNodes(const CscMatrix &a, Index seed, int hops,
                            Index max_nodes);

/** Induced sub-adjacency over sorted `nodes` (rows and columns both
 *  restricted; local ids follow the sorted order). */
CscMatrix inducedSubgraph(const CscMatrix &a,
                          const std::vector<Index> &nodes);

/** Feature-row subset: row i of the result is row nodes[i] of `x`. */
CsrMatrix selectRows(const CsrMatrix &x, const std::vector<Index> &nodes);

} // namespace awb::serve
