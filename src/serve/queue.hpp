/**
 * @file
 * Admission-controlled request queue of the serving front end
 * (DESIGN.md §10). A thin policy layer over the hardware Fifo: arrivals
 * that find the queue full are *dropped* (counted, never blocked — an
 * open-loop client does not wait for admission), and queued requests
 * whose age exceeds the deadline are *timed out* and evicted before each
 * dispatch decision. Both failure counts feed the SLO accounting.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "serve/request.hpp"
#include "sim/fifo.hpp"

namespace awb::serve {

/** Bounded FIFO of waiting requests with drop/timeout accounting. */
class RequestQueue
{
  public:
    /** capacity == 0 means unbounded. */
    explicit RequestQueue(std::size_t capacity) : q_(capacity) {}

    /** Admit an arrival; false (and a counted drop) when full. */
    bool
    admit(Request r)
    {
        return q_.push(std::move(r));
    }

    /**
     * Evict every queued request older than `timeout` cycles at time
     * `now` (timeout == 0 disables). Returns the number evicted; the
     * evicted requests are appended to `out` when given (closed-loop
     * clients reissue on timeout).
     */
    std::size_t
    expire(Cycle now, Cycle timeout, std::vector<Request> *out = nullptr)
    {
        if (timeout <= 0) return 0;
        std::size_t evicted = 0;
        for (std::size_t i = 0; i < q_.size();) {
            if (now - q_.at(i).arrival > timeout) {
                Request r = q_.erase(i);
                if (out) out->push_back(std::move(r));
                ++evicted;
            } else {
                ++i;
            }
        }
        timedOut_ += static_cast<Count>(evicted);
        return evicted;
    }

    /** Earliest cycle at which expire() would evict something, or -1
     *  when nothing queued can time out. */
    Cycle
    nextExpiry(Cycle timeout) const
    {
        if (timeout <= 0 || q_.empty()) return -1;
        Cycle earliest = -1;
        for (std::size_t i = 0; i < q_.size(); ++i) {
            const Cycle at = q_.at(i).arrival + timeout + 1;
            if (earliest < 0 || at < earliest) earliest = at;
        }
        return earliest;
    }

    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }
    const Request &at(std::size_t i) const { return q_.at(i); }
    Request take(std::size_t i) { return q_.erase(i); }

    Count dropped() const { return q_.rejectedPushes(); }
    Count timedOut() const { return timedOut_; }
    Count admitted() const { return q_.totalPushes(); }
    std::size_t peakDepth() const { return q_.peakOccupancy(); }

  private:
    Fifo<Request> q_;
    Count timedOut_ = 0;
};

} // namespace awb::serve
