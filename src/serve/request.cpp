#include "serve/request.hpp"

namespace awb::serve {

std::string
workloadKindName(WorkloadKind k)
{
    switch (k) {
      case WorkloadKind::Gcn: return "gcn";
      case WorkloadKind::GraphSage: return "graphsage";
      case WorkloadKind::Gin: return "gin";
    }
    return "?";
}

std::string
requestScopeName(RequestScope s)
{
    switch (s) {
      case RequestScope::Ego: return "ego";
      case RequestScope::FullGraph: return "full";
    }
    return "?";
}

} // namespace awb::serve
