/**
 * @file
 * Inference-serving request types (DESIGN.md §10).
 *
 * A request is one user's inference: either an ego-subgraph query (the
 * k-hop neighbourhood around a seed node — "classify this user from
 * their local graph") or a full-graph inference whose result is shared
 * by every request batched with it. Requests carry the induced
 * subgraph's per-row non-zero profile so both service fidelities and
 * the sjf-by-nnz discipline can cost them without touching the dataset
 * again; the node list lets the cycle-fidelity service re-extract the
 * actual matrices deterministically at batch-launch time.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace awb::serve {

/** GNN family a request asks to be evaluated with (sim/factories.hpp). */
enum class WorkloadKind
{
    Gcn,       ///< 2-layer GCN (paper workload)
    GraphSage, ///< 2-layer GraphSAGE-mean over an input projection
    Gin,       ///< 2-layer GIN sum-and-MLP over an input projection
};

/** How much of the graph one request touches. */
enum class RequestScope
{
    Ego,        ///< induced k-hop subgraph around a seed node
    FullGraph,  ///< whole-graph inference (result shared across a batch)
};

std::string workloadKindName(WorkloadKind k);
std::string requestScopeName(RequestScope s);

/** One timestamped per-user inference request. */
struct Request
{
    std::uint64_t id = 0;   ///< generation order (unique per run)
    Cycle arrival = 0;      ///< arrival time on the serving clock
    WorkloadKind kind = WorkloadKind::Gcn;
    RequestScope scope = RequestScope::Ego;
    Index seedNode = 0;     ///< ego center (Ego scope)
    int hops = 2;           ///< ego neighbourhood radius (Ego scope)
    /** Induced-subgraph node ids, sorted ascending (Ego scope; empty for
     *  FullGraph). The cycle-fidelity service re-extracts matrices from
     *  this list, so it fully determines the request's work. */
    std::vector<Index> nodes;
    /** Induced sub-adjacency non-zeros per subgraph row (Ego scope). */
    std::vector<Count> aRowNnz;
    /** Feature-matrix non-zeros per subgraph row (Ego scope). */
    std::vector<Count> xRowNnz;
    /** Total induced adjacency non-zeros — the sjf-by-nnz cost key (for
     *  FullGraph scope: the full adjacency nnz). */
    Count nnz = 0;
    /** Closed-loop client that issued this request; -1 = open loop. */
    int client = -1;
};

} // namespace awb::serve
