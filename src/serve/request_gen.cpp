#include "serve/request_gen.hpp"

#include <cmath>

#include "common/log.hpp"
#include "serve/ego.hpp"

namespace awb::serve {

RequestGenerator::RequestGenerator(const Dataset &ds, const RequestMix &mix,
                                   std::uint64_t seed)
    : ds_(ds), mix_(mix),
      bodyRng_(splitmix64(seed ^ 0x626f6479ULL), /*seq=*/0x51),
      arrivalRng_(splitmix64(seed ^ 0x61727276ULL), /*seq=*/0x52)
{
    if (mix_.gcn < 0.0 || mix_.graphsage < 0.0 || mix_.gin < 0.0 ||
        mix_.gcn + mix_.graphsage + mix_.gin <= 0.0)
        fatal("RequestMix: kind weights must be non-negative, sum > 0");
    if (mix_.egoFraction < 0.0 || mix_.egoFraction > 1.0)
        fatal("RequestMix: egoFraction must be in [0, 1]");
    if (mix_.hops < 1) fatal("RequestMix: hops must be >= 1");
    if (mix_.maxEgoNodes < 1)
        fatal("RequestMix: maxEgoNodes must be >= 1");
}

Request
RequestGenerator::next()
{
    Request r;
    r.id = nextId_++;

    const double wsum = mix_.gcn + mix_.graphsage + mix_.gin;
    const double uk = bodyRng_.nextDouble() * wsum;
    r.kind = uk < mix_.gcn ? WorkloadKind::Gcn
             : uk < mix_.gcn + mix_.graphsage ? WorkloadKind::GraphSage
                                              : WorkloadKind::Gin;
    r.scope = bodyRng_.nextDouble() < mix_.egoFraction
                  ? RequestScope::Ego
                  : RequestScope::FullGraph;
    // Draw the seed node even for full-graph requests so the body
    // stream's draw count per request is scope-independent (keeps the
    // sequence aligned however the mix dices).
    const Index seed_node = bodyRng_.nextIndex(ds_.adjacency.cols());

    if (r.scope == RequestScope::FullGraph) {
        r.nnz = ds_.adjacency.nnz();
        return r;
    }

    r.seedNode = seed_node;
    r.hops = mix_.hops;
    r.nodes = egoNodes(ds_.adjacency, seed_node, mix_.hops,
                       mix_.maxEgoNodes);
    const CscMatrix sub = inducedSubgraph(ds_.adjacency, r.nodes);
    r.aRowNnz = sub.rowNnz();
    r.nnz = sub.nnz();
    r.xRowNnz.reserve(r.nodes.size());
    for (Index node : r.nodes) r.xRowNnz.push_back(ds_.features.rowNnz(node));
    return r;
}

Cycle
RequestGenerator::nextArrivalGap(double mean_cycles)
{
    if (mean_cycles <= 0.0) fatal("nextArrivalGap: mean must be positive");
    // Exponential via inverse CDF; 1-u keeps the argument in (0, 1].
    const double u = arrivalRng_.nextDouble();
    const double gap = -std::log(1.0 - u) * mean_cycles;
    return static_cast<Cycle>(std::llround(std::max(gap, 1.0)));
}

} // namespace awb::serve
