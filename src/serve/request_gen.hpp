/**
 * @file
 * Deterministic request generation for the serving front end
 * (DESIGN.md §10). A RequestGenerator owns two decorrelated PCG32
 * streams seeded through splitmix64: one for request *bodies* (workload
 * kind, scope, ego seed node — consumed strictly in issue order, so the
 * body sequence is identical between open- and closed-loop runs of the
 * same seed) and one for open-loop Poisson arrival gaps. Ego requests
 * are profiled at generation time: the k-hop node set is extracted and
 * the induced row-nnz vectors stored on the request, making every later
 * stage (sjf cost key, both service fidelities) a pure function of the
 * request.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/datasets.hpp"
#include "serve/request.hpp"

namespace awb::serve {

/** Workload-mix knobs of a request stream. */
struct RequestMix
{
    /** Relative weights of the three workload kinds (normalized). */
    double gcn = 0.6;
    double graphsage = 0.3;
    double gin = 0.1;
    /** Fraction of requests that are ego-subgraph queries; the rest are
     *  full-graph inferences. */
    double egoFraction = 0.9;
    int hops = 2;            ///< ego neighbourhood radius
    Index maxEgoNodes = 256; ///< ego node-set cap (hub explosion bound)
};

/** Emits the per-user request stream over one dataset. */
class RequestGenerator
{
  public:
    /** `ds` must outlive the generator. */
    RequestGenerator(const Dataset &ds, const RequestMix &mix,
                     std::uint64_t seed);

    /** Next request body in generation order (arrival/client unset). */
    Request next();

    /** Next Poisson arrival gap in cycles (exponential with the given
     *  mean); consumed from the arrival stream only. */
    Cycle nextArrivalGap(double mean_cycles);

    /** Requests issued so far. */
    std::uint64_t issued() const { return nextId_; }

  private:
    const Dataset &ds_;
    RequestMix mix_;
    Rng bodyRng_;
    Rng arrivalRng_;
    std::uint64_t nextId_ = 0;
};

} // namespace awb::serve
