#include "serve/scheduler.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/text.hpp"

namespace awb::serve {

namespace {

/** Requests batch together only within one (kind, scope) class. */
bool
sameClass(const Request &a, const Request &b)
{
    return a.kind == b.kind && a.scope == b.scope;
}

/** Strict FCFS, one request per dispatch. */
class FifoDiscipline : public BatchDiscipline
{
  public:
    std::vector<Request>
    nextBatch(RequestQueue &queue, Cycle, Cycle *revisit_at) override
    {
        *revisit_at = -1;
        std::vector<Request> batch;
        if (!queue.empty()) batch.push_back(queue.take(0));
        return batch;
    }
};

/** Shortest job first by request nnz (FCFS tie-break), one per dispatch.
 *  Classic latency optimizer; starves heavy full-graph requests under
 *  load, which the p999/timeout columns make visible. */
class SjfNnzDiscipline : public BatchDiscipline
{
  public:
    std::vector<Request>
    nextBatch(RequestQueue &queue, Cycle, Cycle *revisit_at) override
    {
        *revisit_at = -1;
        std::vector<Request> batch;
        if (queue.empty()) return batch;
        std::size_t best = 0;
        for (std::size_t i = 1; i < queue.size(); ++i)
            if (queue.at(i).nnz < queue.at(best).nnz) best = i;
        batch.push_back(queue.take(best));
        return batch;
    }
};

/**
 * Dynamic batching: serve the front request together with up to
 * maxBatch-1 later requests of its (kind, scope) class. Dispatch as soon
 * as the batch is full, or once the front has waited maxWait cycles;
 * until then hold and ask to be revisited at the front's deadline.
 */
class DynBatchDiscipline : public BatchDiscipline
{
  public:
    explicit DynBatchDiscipline(const DisciplineParams &params)
        : params_(params)
    {
        if (params_.maxBatch < 1)
            fatal("dyn-batch: maxBatch must be >= 1");
        if (params_.maxWait < 0) fatal("dyn-batch: maxWait must be >= 0");
    }

    std::vector<Request>
    nextBatch(RequestQueue &queue, Cycle now, Cycle *revisit_at) override
    {
        *revisit_at = -1;
        std::vector<Request> batch;
        if (queue.empty()) return batch;

        const Request &head = queue.at(0);
        std::vector<std::size_t> members{0};
        for (std::size_t i = 1;
             i < queue.size() && members.size() < params_.maxBatch; ++i)
            if (sameClass(queue.at(i), head)) members.push_back(i);

        const Cycle deadline = head.arrival + params_.maxWait;
        if (members.size() < params_.maxBatch && now < deadline) {
            *revisit_at = deadline;
            return batch;
        }
        // Take back to front so earlier indices stay valid.
        batch.reserve(members.size());
        for (std::size_t m = members.size(); m-- > 0;)
            batch.push_back(queue.take(members[m]));
        std::reverse(batch.begin(), batch.end());
        return batch;
    }

  private:
    DisciplineParams params_;
};

} // namespace

DisciplineRegistry::DisciplineRegistry()
{
    add({"fifo", "first-come-first-served, one request per dispatch",
         [](const DisciplineParams &) {
             return std::make_unique<FifoDiscipline>();
         }});
    add({"sjf-nnz",
         "shortest job first by request non-zero count (FCFS tie-break)",
         [](const DisciplineParams &) {
             return std::make_unique<SjfNnzDiscipline>();
         }});
    add({"dyn-batch",
         "coalesce up to max-batch same-class requests, front waits up to "
         "max-wait cycles",
         [](const DisciplineParams &params) {
             return std::make_unique<DynBatchDiscipline>(params);
         }});
}

DisciplineRegistry &
DisciplineRegistry::instance()
{
    static DisciplineRegistry registry;
    return registry;
}

void
DisciplineRegistry::add(DisciplineSpec spec)
{
    if (find(spec.name))
        fatal("duplicate batch discipline '" + spec.name + "'");
    specs_.push_back(std::make_unique<DisciplineSpec>(std::move(spec)));
}

const DisciplineSpec *
DisciplineRegistry::find(const std::string &name) const
{
    for (const auto &spec : specs_)
        if (spec->name == name) return spec.get();
    return nullptr;
}

const DisciplineSpec &
DisciplineRegistry::get(const std::string &name) const
{
    if (const DisciplineSpec *spec = find(name)) return *spec;
    fatal("unknown batch discipline '" + name + "' — did you mean '" +
          nearest(name) + "'? (awbsim --list-disciplines shows all)");
}

std::vector<const DisciplineSpec *>
DisciplineRegistry::all() const
{
    std::vector<const DisciplineSpec *> out;
    out.reserve(specs_.size());
    for (const auto &spec : specs_) out.push_back(spec.get());
    return out;
}

std::string
DisciplineRegistry::nearest(const std::string &s) const
{
    std::vector<std::string> names;
    names.reserve(specs_.size());
    for (const auto &spec : specs_) names.push_back(spec->name);
    return nearestOf(s, names);
}

std::unique_ptr<BatchDiscipline>
makeDiscipline(const std::string &name, const DisciplineParams &params)
{
    return DisciplineRegistry::instance().get(name).make(params);
}

} // namespace awb::serve
