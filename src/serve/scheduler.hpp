/**
 * @file
 * Pluggable batching disciplines for the serving scheduler
 * (DESIGN.md §10), mirroring the balance-policy registry of
 * accel/policy.hpp: each discipline is a named strategy in a
 * process-wide string-keyed registry, so a new scheduling idea is one
 * registration instead of a switch spread across the event loop.
 *
 * Three ship built in:
 *  - `fifo`       — strict arrival order, one request per dispatch;
 *  - `sjf-nnz`    — shortest-job-first keyed by the request's non-zero
 *                   count (the work both fidelities charge for);
 *  - `dyn-batch`  — dynamic batching: coalesce up to maxBatch requests
 *                   of the front request's (kind, scope) class, waiting
 *                   up to maxWait cycles for the batch to fill.
 *
 * Batched requests must share (kind, scope): a batch runs as one fused
 * inference (block-diagonal merge for ego scopes, result sharing for
 * full-graph scopes), which is only meaningful within one model class.
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace awb::serve {

/** Knobs a discipline may consume (others ignore them). */
struct DisciplineParams
{
    std::size_t maxBatch = 8;  ///< dyn-batch: batch-size cap
    Cycle maxWait = 20000;     ///< dyn-batch: max cycles the front waits
};

/**
 * One scheduling strategy. A discipline instance lives for one serving
 * run and is consulted whenever a device is free; it may hold state
 * (none of the built-ins do). Implementations must be deterministic
 * functions of (queue contents, now).
 */
class BatchDiscipline
{
  public:
    virtual ~BatchDiscipline() = default;

    /**
     * Remove and return the next batch to dispatch at time `now`, or an
     * empty vector to hold (queue non-empty but the discipline prefers
     * to wait). When holding, `revisit_at` is set to the earliest cycle
     * the decision may flip without a new arrival (-1 = only an arrival
     * can change it). All returned requests share (kind, scope).
     */
    virtual std::vector<Request> nextBatch(RequestQueue &queue, Cycle now,
                                           Cycle *revisit_at) = 0;
};

/** Factory signature: build a discipline instance for one run. */
using DisciplineFactory =
    std::function<std::unique_ptr<BatchDiscipline>(const DisciplineParams &)>;

/** A named, registered batching discipline. */
struct DisciplineSpec
{
    std::string name;         ///< registry key (kebab-case)
    std::string description;  ///< one-liner for `awbsim --list-disciplines`
    DisciplineFactory make;
};

/**
 * Process-wide discipline registry (the PolicyRegistry pattern).
 * Built-ins register on first access; user code may add() more before
 * the first serving run. Thread-safe for concurrent lookups (serve-sweep
 * workers); add() must not race with lookups.
 */
class DisciplineRegistry
{
  public:
    static DisciplineRegistry &instance();

    /** Register a discipline; fatal() on a duplicate name. */
    void add(DisciplineSpec spec);

    /** nullptr when unknown. */
    const DisciplineSpec *find(const std::string &name) const;

    /** fatal() with a near-miss suggestion when unknown. */
    const DisciplineSpec &get(const std::string &name) const;

    /** All disciplines in registration order (built-ins first). */
    std::vector<const DisciplineSpec *> all() const;

    /** Closest registered name to `s` (for error messages). */
    std::string nearest(const std::string &s) const;

  private:
    DisciplineRegistry();
    std::vector<std::unique_ptr<DisciplineSpec>> specs_;
};

/** Shorthand: DisciplineRegistry::instance().get(name).make(params). */
std::unique_ptr<BatchDiscipline> makeDiscipline(const std::string &name,
                                                const DisciplineParams &params);

} // namespace awb::serve
