#include "serve/serve.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "accel/policy.hpp"
#include "common/log.hpp"
#include "exec/workload_cache.hpp"
#include "serve/queue.hpp"

namespace awb::serve {

namespace {

constexpr std::size_t kNumKinds = 3;

/** A scheduled future arrival. `seq` breaks same-cycle ties in push
 *  order, which keeps the heap deterministic. */
struct PendingArrival
{
    Cycle at = 0;
    std::uint64_t seq = 0;
    Request req;
};

struct ArrivalLater
{
    bool
    operator()(const PendingArrival &a, const PendingArrival &b) const
    {
        return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
};

/** One virtual accelerator: a clock plus the batch in flight. */
struct Device
{
    bool busy = false;
    Cycle freeAt = 0;
    std::vector<Request> batch;
    Cycle busyCycles = 0;
    Count batches = 0;
    Count served = 0;
};

/**
 * The event loop proper. `gen` == nullptr runs trace mode: `trace`
 * requests arrive at their pre-set `arrival` cycles and no new requests
 * are ever issued.
 */
ServeResult
runLoop(const ServeOptions &opts, ServiceModel &svc, RequestGenerator *gen,
        std::vector<Request> trace, double clock_mhz)
{
    if (opts.devices < 1) fatal("--serve: devices must be >= 1");

    ServeResult res;
    res.clockMhz = clock_mhz;
    res.horizonCycles = static_cast<Cycle>(
        std::llround(opts.durationMs * clock_mhz * 1000.0));
    if (opts.sloMs > 0.0)
        res.sloCycles = static_cast<Cycle>(
            std::llround(opts.sloMs * clock_mhz * 1000.0));

    RequestQueue queue(opts.queueCapacity);
    std::unique_ptr<BatchDiscipline> discipline =
        makeDiscipline(opts.discipline, opts.disciplineParams);
    std::vector<Device> devices(static_cast<std::size_t>(opts.devices));

    std::priority_queue<PendingArrival, std::vector<PendingArrival>,
                        ArrivalLater>
        pending;
    std::uint64_t seq = 0;
    auto pushArrival = [&](Request r, Cycle at) {
        r.arrival = at;
        pending.push({at, seq++, std::move(r)});
    };

    const bool open = gen && opts.arrivals == ArrivalMode::Open;
    const bool closed = gen && opts.arrivals == ArrivalMode::Closed;
    const double mean_gap =
        open ? clock_mhz * 1e6 / opts.ratePerSec : 0.0;
    Cycle last_arrival = 0;
    auto capped = [&]() {
        return opts.requestCap != 0 && gen->issued() >= opts.requestCap;
    };
    // Open loop: exactly one future arrival is pending at a time, so
    // body and gap streams are both consumed in issue order.
    auto scheduleOpen = [&]() {
        if (capped()) return;
        const Cycle at = last_arrival + gen->nextArrivalGap(mean_gap);
        if (at > res.horizonCycles) return;
        last_arrival = at;
        pushArrival(gen->next(), at);
    };
    auto reissue = [&](int client, Cycle at) {
        if (at > res.horizonCycles || capped()) return;
        Request r = gen->next();
        r.client = client;
        pushArrival(std::move(r), at);
    };

    if (open) {
        if (opts.ratePerSec <= 0.0)
            fatal("--serve: open-loop rate must be positive");
        scheduleOpen();
    } else if (closed) {
        if (opts.clients < 1) fatal("--serve: clients must be >= 1");
        if (opts.queueCapacity != 0 &&
            opts.queueCapacity < static_cast<std::size_t>(opts.clients))
            fatal("--serve: closed-loop queue capacity below the client "
                  "population would starve clients at admission");
        for (int c = 0; c < opts.clients; ++c) reissue(c, 0);
    } else {
        for (Request &r : trace) {
            const Cycle at = r.arrival;
            pushArrival(std::move(r), at);
        }
    }

    std::vector<Cycle> latencies;
    std::vector<std::vector<Cycle>> kind_lat(kNumKinds);
    std::vector<Cycle> waits;
    Count dispatched = 0;
    DepthTrace depth;
    depth.record(0, 0);

    Cycle now = 0;
    Cycle revisit = -1;
    for (;;) {
        Cycle next = -1;
        auto consider = [&](Cycle t) {
            if (t >= 0 && (next < 0 || t < next)) next = t;
        };
        if (!pending.empty()) consider(pending.top().at);
        for (const Device &d : devices)
            if (d.busy) consider(d.freeAt);
        consider(queue.nextExpiry(opts.timeoutCycles));
        consider(revisit);
        if (next < 0) break;
        now = next;
        revisit = -1;

        // 1. Completions, devices in id order, batch members in batch
        //    order (fixes the closed-loop reissue sequence).
        for (Device &d : devices) {
            if (!d.busy || d.freeAt != now) continue;
            for (const Request &r : d.batch) {
                const Cycle lat = now - r.arrival;
                latencies.push_back(lat);
                kind_lat[static_cast<std::size_t>(r.kind)].push_back(lat);
                if (r.scope == RequestScope::Ego)
                    ++res.egoCompleted;
                else
                    ++res.fullCompleted;
                if (res.sloCycles > 0 && lat > res.sloCycles)
                    ++res.sloViolations;
                ++d.served;
                if (closed) reissue(r.client, now + opts.thinkCycles);
            }
            d.batch.clear();
            d.busy = false;
        }

        // 2. Arrivals (<= catches zero-think closed-loop reissues
        //    scheduled at `now` during step 1).
        while (!pending.empty() && pending.top().at <= now) {
            PendingArrival a = pending.top();
            pending.pop();
            ++res.offered;
            queue.admit(std::move(a.req));
            if (open) scheduleOpen();
        }

        // 3. Timeout evictions; closed-loop clients reissue so the
        //    population stays fixed.
        std::vector<Request> evicted;
        queue.expire(now, opts.timeoutCycles, closed ? &evicted : nullptr);
        for (const Request &r : evicted)
            reissue(r.client, now + opts.thinkCycles);

        // 4. Dispatch onto free devices in id order. A held decision
        //    applies to every remaining device (same queue view).
        for (Device &d : devices) {
            if (d.busy) continue;
            if (queue.empty()) break;
            Cycle rev = -1;
            std::vector<Request> batch =
                discipline->nextBatch(queue, now, &rev);
            if (batch.empty()) {
                if (rev >= 0 && (revisit < 0 || rev < revisit))
                    revisit = rev;
                break;
            }
            for (const Request &r : batch)
                waits.push_back(now - r.arrival);
            dispatched += static_cast<Count>(batch.size());
            const Cycle cost = std::max<Cycle>(1, svc.batchCycles(batch));
            d.busy = true;
            d.freeAt = now + cost;
            d.busyCycles += cost;
            ++d.batches;
            d.batch = std::move(batch);
        }

        depth.record(now, queue.size());
    }

    res.endCycle = now;
    res.admitted = queue.admitted();
    res.dropped = queue.dropped();
    res.timedOut = queue.timedOut();
    res.completed = static_cast<Count>(latencies.size());
    res.latency = summarizeLatencies(latencies);
    res.queueWait = summarizeLatencies(waits);
    res.kindLatency.resize(kNumKinds);
    for (std::size_t k = 0; k < kNumKinds; ++k)
        res.kindLatency[k] = summarizeLatencies(kind_lat[k]);
    if (res.sloCycles > 0) res.sloViolations += res.dropped + res.timedOut;
    res.peakQueueDepth = queue.peakDepth();
    res.meanQueueDepth = depth.meanDepth(res.endCycle);
    res.depthTrace = depth.bucketed(res.endCycle, 64);
    res.devices.reserve(devices.size());
    Count total_batches = 0;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        DeviceStats ds;
        ds.id = static_cast<int>(i);
        ds.batches = devices[i].batches;
        ds.requests = devices[i].served;
        ds.busyCycles = devices[i].busyCycles;
        ds.utilization =
            res.endCycle > 0 ? static_cast<double>(devices[i].busyCycles) /
                                   static_cast<double>(res.endCycle)
                             : 0.0;
        total_batches += devices[i].batches;
        res.devices.push_back(ds);
    }
    res.batches = total_batches;
    res.meanBatchSize = total_batches > 0 ? static_cast<double>(dispatched) /
                                                static_cast<double>(
                                                    total_batches)
                                          : 0.0;
    const double secs =
        static_cast<double>(res.endCycle) / (clock_mhz * 1e6);
    res.offeredRps =
        secs > 0.0 ? static_cast<double>(res.offered) / secs : 0.0;
    res.throughputRps =
        secs > 0.0 ? static_cast<double>(res.completed) / secs : 0.0;
    return res;
}

} // namespace

std::string
serveFidelityName(ServeFidelity f)
{
    return f == ServeFidelity::Model ? "model" : "cycle";
}

ServeFidelity
parseServeFidelity(const std::string &s)
{
    if (s == "model") return ServeFidelity::Model;
    if (s == "cycle") return ServeFidelity::Cycle;
    fatal("unknown serving fidelity '" + s + "' (model|cycle)");
}

std::string
arrivalModeName(ArrivalMode m)
{
    return m == ArrivalMode::Open ? "open" : "closed";
}

ArrivalMode
parseArrivalMode(const std::string &s)
{
    if (s == "open") return ArrivalMode::Open;
    if (s == "closed") return ArrivalMode::Closed;
    fatal("unknown arrival mode '" + s + "' (open|closed)");
}

double
cyclesToMs(Cycle cycles, double clock_mhz)
{
    return static_cast<double>(cycles) / (clock_mhz * 1000.0);
}

ServeResult
runServe(const ServeOptions &opts)
{
    const DatasetSpec &spec = findDataset(opts.dataset);
    const AccelConfig cfg =
        makePolicyConfig(opts.design, opts.numPes, hopBase(spec));
    const double clock = policyClockMhz(cfg);
    const auto ds_p = exec::cachedDataset(spec, opts.seed, opts.scale);
    const Dataset &ds = *ds_p;
    RequestGenerator gen(ds, opts.mix, opts.seed);
    if (opts.fidelity == ServeFidelity::Model) {
        ModelServiceModel svc(ds, cfg);
        return runLoop(opts, svc, &gen, {}, clock);
    }
    CycleServiceModel svc(ds, cfg, opts.seed);
    return runLoop(opts, svc, &gen, {}, clock);
}

ServeResult
runServeTrace(std::vector<Request> trace, ServiceModel &svc,
              const ServeOptions &opts)
{
    // No dataset/policy is involved; report at the paper's FPGA clock.
    return runLoop(opts, svc, nullptr, std::move(trace), 275.0);
}

} // namespace awb::serve
