/**
 * @file
 * The serving event loop (DESIGN.md §10): request stream → admission
 * queue → batching discipline → N virtual accelerator devices, each
 * advancing a simulated-cycle clock by the service model's cost for the
 * batches it executes. The loop is single-threaded and event-ordered
 * (completions, then arrivals, then timeout evictions, then dispatch,
 * with fixed id-order tie-breaks), so a run is a deterministic function
 * of its options — byte-identical output at any host thread count.
 *
 * Two arrival regimes:
 *  - open loop: Poisson arrivals at a fixed offered rate until the
 *    admission horizon; the standard latency-vs-throughput probe;
 *  - closed loop: C clients, each issuing its next request when the
 *    previous completes (or times out) plus a think time; measures the
 *    saturation throughput of the device pool.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request_gen.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "serve/stats.hpp"

namespace awb::serve {

/** Which service-time oracle cost the batches. */
enum class ServeFidelity
{
    Model,  ///< round-level PerfModel over merged profiles
    Cycle,  ///< cycle-accurate Session over materialized subgraphs
};

/** "model" / "cycle". */
std::string serveFidelityName(ServeFidelity f);

/** Parse a fidelity name; fatal() with the valid set when unknown. */
ServeFidelity parseServeFidelity(const std::string &s);

/** How requests enter the system. */
enum class ArrivalMode
{
    Open,    ///< Poisson arrivals at a fixed offered rate
    Closed,  ///< fixed client population, issue-on-completion
};

/** "open" / "closed". */
std::string arrivalModeName(ArrivalMode m);

/** Parse an arrival-mode name; fatal() when unknown. */
ArrivalMode parseArrivalMode(const std::string &s);

/** Everything one serving run needs. */
struct ServeOptions
{
    std::string dataset = "cora";
    ServeFidelity fidelity = ServeFidelity::Model;
    ArrivalMode arrivals = ArrivalMode::Open;
    double ratePerSec = 2000.0;  ///< open loop: offered arrival rate
    int clients = 8;             ///< closed loop: client population
    Cycle thinkCycles = 0;       ///< closed loop: gap before reissue
    double durationMs = 10.0;    ///< admission horizon (simulated ms)
    std::uint64_t requestCap = 0;  ///< stop issuing after N (0 = horizon)
    int devices = 1;             ///< simulated accelerator count
    std::string discipline = "fifo";
    DisciplineParams disciplineParams;
    std::size_t queueCapacity = 1024;  ///< 0 = unbounded
    Cycle timeoutCycles = 0;     ///< queue-age eviction deadline (0 = off)
    double sloMs = 0.0;          ///< latency SLO (0 = no SLO accounting)
    RequestMix mix;
    std::uint64_t seed = 1;
    std::string design = "remote-d";  ///< registered balance policy
    int numPes = 64;
    double scale = 1.0;          ///< dataset scale (cycle fidelity)
};

/** Per-device outcome. */
struct DeviceStats
{
    int id = 0;
    Count batches = 0;
    Count requests = 0;
    Cycle busyCycles = 0;
    double utilization = 0.0;  ///< busy / endCycle
};

/** Everything one serving run produces. */
struct ServeResult
{
    double clockMhz = 0.0;
    Cycle horizonCycles = 0;
    Cycle endCycle = 0;      ///< last event (backlog fully drained)
    Count offered = 0;       ///< requests that arrived
    Count admitted = 0;
    Count dropped = 0;       ///< rejected at admission (queue full)
    Count timedOut = 0;      ///< evicted after aging out in the queue
    Count completed = 0;
    Count batches = 0;
    double meanBatchSize = 0.0;
    LatencySummary latency;    ///< completion - arrival, cycles
    LatencySummary queueWait;  ///< dispatch - arrival, cycles
    /** Per workload kind, indexed by WorkloadKind cast to size_t. */
    std::vector<LatencySummary> kindLatency;
    Count egoCompleted = 0;
    Count fullCompleted = 0;
    Cycle sloCycles = 0;
    /** Completions over the SLO, plus drops and timeouts. */
    Count sloViolations = 0;
    std::size_t peakQueueDepth = 0;
    double meanQueueDepth = 0.0;
    std::vector<DepthSample> depthTrace;  ///< bucketed, <= 64 steps
    std::vector<DeviceStats> devices;
    double offeredRps = 0.0;     ///< offered / simulated seconds
    double throughputRps = 0.0;  ///< completed / simulated seconds
};

/** Completed requests per simulated second at `clock_mhz`. */
double cyclesToMs(Cycle cycles, double clock_mhz);

/** Run one serving experiment end to end. fatal() on invalid options. */
ServeResult runServe(const ServeOptions &opts);

/**
 * Test seam: drive the same event loop over a hand-built arrival trace
 * (each request's `arrival` pre-set; `client` < 0) and an external
 * service model. Uses opts.devices / discipline / queueCapacity /
 * timeoutCycles; the generator, dataset and arrival-regime options are
 * ignored. Latencies are then closed-form checkable.
 */
ServeResult runServeTrace(std::vector<Request> trace, ServiceModel &svc,
                          const ServeOptions &opts);

} // namespace awb::serve
