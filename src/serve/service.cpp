#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "accel/policy.hpp"
#include "common/log.hpp"
#include "serve/ego.hpp"
#include "sim/factories.hpp"
#include "sim/session.hpp"

namespace awb::serve {

namespace {

/** Uniform per-row non-zero estimate for an un-materialized operand
 *  (the post-ReLU hidden features — same closure loadProfile() uses). */
Count
uniformRowNnz(double density, Index cols)
{
    return std::max<Count>(
        1, static_cast<Count>(std::llround(density * cols)));
}

} // namespace

CscMatrix
blockDiag(const std::vector<CscMatrix> &blocks)
{
    Index n = 0;
    Count nnz = 0;
    for (const CscMatrix &b : blocks) {
        if (b.rows() != b.cols()) panic("blockDiag: blocks must be square");
        n += b.rows();
        nnz += b.nnz();
    }
    std::vector<Count> col_ptr;
    std::vector<Index> row_id;
    std::vector<Value> val;
    col_ptr.reserve(static_cast<std::size_t>(n) + 1);
    row_id.reserve(static_cast<std::size_t>(nnz));
    val.reserve(static_cast<std::size_t>(nnz));
    col_ptr.push_back(0);
    Index base = 0;
    for (const CscMatrix &b : blocks) {
        for (Index j = 0; j < b.cols(); ++j) {
            const Count lo = b.colPtr()[static_cast<std::size_t>(j)];
            const Count hi = b.colPtr()[static_cast<std::size_t>(j) + 1];
            for (Count p = lo; p < hi; ++p) {
                row_id.push_back(base +
                                 b.rowId()[static_cast<std::size_t>(p)]);
                val.push_back(b.val()[static_cast<std::size_t>(p)]);
            }
            col_ptr.push_back(static_cast<Count>(row_id.size()));
        }
        base += b.rows();
    }
    return CscMatrix::fromParts(n, n, std::move(col_ptr), std::move(row_id),
                                std::move(val));
}

CsrMatrix
stackRows(const std::vector<CsrMatrix> &parts)
{
    if (parts.empty()) panic("stackRows: no parts");
    const Index cols = parts.front().cols();
    Index rows = 0;
    Count nnz = 0;
    for (const CsrMatrix &p : parts) {
        if (p.cols() != cols) panic("stackRows: column counts differ");
        rows += p.rows();
        nnz += p.nnz();
    }
    std::vector<Count> row_ptr;
    std::vector<Index> col_id;
    std::vector<Value> val;
    row_ptr.reserve(static_cast<std::size_t>(rows) + 1);
    col_id.reserve(static_cast<std::size_t>(nnz));
    val.reserve(static_cast<std::size_t>(nnz));
    row_ptr.push_back(0);
    for (const CsrMatrix &p : parts) {
        for (Index i = 0; i < p.rows(); ++i) {
            const Count lo = p.rowPtr()[static_cast<std::size_t>(i)];
            const Count hi = p.rowPtr()[static_cast<std::size_t>(i) + 1];
            for (Count q = lo; q < hi; ++q) {
                col_id.push_back(p.colId()[static_cast<std::size_t>(q)]);
                val.push_back(p.val()[static_cast<std::size_t>(q)]);
            }
            row_ptr.push_back(static_cast<Count>(col_id.size()));
        }
    }
    return CsrMatrix::fromParts(rows, cols, std::move(row_ptr),
                                std::move(col_id), std::move(val));
}

ModelServiceModel::ModelServiceModel(const Dataset &ds,
                                     const AccelConfig &cfg)
    : ds_(ds), cfg_(cfg), model_(cfg)
{
    dsARowNnz_ = ds_.adjacency.rowNnz();
    dsXRowNnz_.reserve(static_cast<std::size_t>(ds_.features.rows()));
    for (Index i = 0; i < ds_.features.rows(); ++i)
        dsXRowNnz_.push_back(ds_.features.rowNnz(i));
}

Cycle
ModelServiceModel::batchCycles(const std::vector<Request> &batch)
{
    if (batch.empty()) panic("batchCycles: empty batch");
    if (batch.front().scope == RequestScope::FullGraph)
        return fullGraphCycles(batch.front().kind);

    // Block-diagonal merge in profile space: the fused operand's row-nnz
    // vector is the concatenation of the members' induced row-nnz.
    std::vector<Count> a_row;
    std::vector<Count> x_row;
    for (const Request &r : batch) {
        a_row.insert(a_row.end(), r.aRowNnz.begin(), r.aRowNnz.end());
        x_row.insert(x_row.end(), r.xRowNnz.begin(), r.xRowNnz.end());
    }
    return profileCycles(batch.front().kind, a_row, x_row);
}

Cycle
ModelServiceModel::profileCycles(WorkloadKind kind,
                                 const std::vector<Count> &a_row,
                                 const std::vector<Count> &x_row) const
{
    const Index n = static_cast<Index>(a_row.size());
    const DatasetSpec &spec = ds_.spec;
    const Index f1 = spec.f1, f2 = spec.f2, f3 = spec.f3;

    if (kind == WorkloadKind::Gcn) {
        // The paper's 2-layer GCN maps directly onto the profile-driven
        // runGcn (chained-SPMM pipelining included).
        WorkloadProfile profile;
        profile.spec = spec;
        profile.spec.nodes = n;
        profile.scale = ds_.scale;
        profile.aRowNnz = a_row;
        profile.x1RowNnz = x_row;
        profile.x2RowNnz.assign(static_cast<std::size_t>(n),
                                uniformRowNnz(spec.densityX2, f2));
        return model_.runGcn(profile).totalCycles;
    }

    // GraphSAGE / GIN: serial sum over the factories' costed stages
    // (sim/factories.hpp). Dense operands charge one task per element
    // row; the serving model does not credit inter-stage pipelining —
    // the cycle fidelity covers that refinement.
    auto spmm = [&](const std::vector<Count> &row_work, Index rounds,
                    Index inner) {
        RowPartition part = makePartitionPolicy(cfg_)->build(
            static_cast<Index>(row_work.size()), row_work, cfg_);
        return model_.runSpmm(row_work, rounds, part, inner).cycles;
    };
    const std::vector<Count> dense_row(static_cast<std::size_t>(n),
                                       static_cast<Count>(f2));

    // Shared input projection h0 = X x W_proj (f1 -> f2).
    Cycle total = spmm(x_row, f2, f1);
    if (kind == WorkloadKind::GraphSage) {
        // Per layer: Am x h, then combine(h, Am h) x W.
        total += spmm(a_row, f2, n) + spmm(dense_row, f2, f2);
        total += spmm(a_row, f2, n) + spmm(dense_row, f3, f2);
        return total;
    }
    // GIN: per layer A x h then the two-matrix MLP.
    total += spmm(a_row, f2, n) + spmm(dense_row, f2, f2) +
             spmm(dense_row, f2, f2);
    total += spmm(a_row, f2, n) + spmm(dense_row, f2, f2) +
             spmm(dense_row, f3, f2);
    return total;
}

Cycle
ModelServiceModel::fullGraphCycles(WorkloadKind kind)
{
    auto it = fullCache_.find(kind);
    if (it != fullCache_.end()) return it->second;
    const Cycle cycles = profileCycles(kind, dsARowNnz_, dsXRowNnz_);
    fullCache_.emplace(kind, cycles);
    return cycles;
}

CycleServiceModel::CycleServiceModel(const Dataset &ds,
                                     const AccelConfig &cfg,
                                     std::uint64_t seed)
    : ds_(ds), cfg_(cfg), seed_(seed)
{
}

Cycle
CycleServiceModel::batchCycles(const std::vector<Request> &batch)
{
    if (batch.empty()) panic("batchCycles: empty batch");
    if (batch.front().scope == RequestScope::FullGraph)
        return fullGraphCycles(batch.front().kind);

    // Materialize the fused multi-graph inference: block-diagonal
    // adjacency over the members' induced subgraphs, their feature rows
    // stacked in the same order.
    std::vector<CscMatrix> adj;
    std::vector<CsrMatrix> feat;
    adj.reserve(batch.size());
    feat.reserve(batch.size());
    for (const Request &r : batch) {
        adj.push_back(inducedSubgraph(ds_.adjacency, r.nodes));
        feat.push_back(selectRows(ds_.features, r.nodes));
    }
    Dataset fused;
    fused.spec = ds_.spec;
    fused.scale = ds_.scale;
    fused.adjacency = blockDiag(adj);
    fused.features = stackRows(feat);
    fused.spec.nodes = fused.adjacency.rows();
    return datasetCycles(batch.front().kind, fused);
}

Cycle
CycleServiceModel::datasetCycles(WorkloadKind kind, const Dataset &target)
{
    const DatasetSpec &spec = ds_.spec;
    sim::WorkloadBundle bundle;
    switch (kind) {
      case WorkloadKind::Gcn:
        bundle = sim::buildGcn(
            target, makeGcnModel(spec.f1, spec.f2, spec.f3, seed_));
        break;
      case WorkloadKind::GraphSage:
        bundle = sim::buildGraphSage(target, spec.f2, spec.f3,
                                     /*meanAggregate=*/true, seed_);
        break;
      case WorkloadKind::Gin:
        bundle = sim::buildGin(target, spec.f2, spec.f3, /*eps=*/0.0,
                               seed_);
        break;
    }
    // A fresh Session per batch keeps the cost a pure function of the
    // batch (no tuned-map carry-over between unrelated operands).
    sim::Session session(cfg_);
    return sim::runWorkload(session, std::move(bundle)).totalCycles;
}

Cycle
CycleServiceModel::fullGraphCycles(WorkloadKind kind)
{
    auto it = fullCache_.find(kind);
    if (it != fullCache_.end()) return it->second;
    const Cycle cycles = datasetCycles(kind, ds_);
    fullCache_.emplace(kind, cycles);
    return cycles;
}

} // namespace awb::serve
