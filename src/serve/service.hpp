/**
 * @file
 * Service-time oracles of the serving front end (DESIGN.md §10): given a
 * dispatched batch, how many simulated cycles does one accelerator
 * device spend executing it? Three fidelities implement the same
 * interface:
 *
 *  - FixedServiceModel — an affine per-batch cost; the closed-form test
 *    seam (hand-computable latencies for the determinism tests);
 *  - ModelServiceModel — the round-level PerfModel over the batch's
 *    merged row-work profile (full-rate serving experiments);
 *  - CycleServiceModel — the cycle-accurate Session over materialized
 *    merged subgraphs (small scaled datasets; validates the model).
 *
 * Batch semantics shared by the real fidelities: an *ego* batch fuses
 * its members' induced subgraphs block-diagonally into one inference
 * (disjoint local node sets — exactly the multi-graph batching the
 * Session's per-operand row maps support); a *full-graph* batch runs
 * the whole-dataset inference once and shares the result across its
 * members, so its cost is independent of batch size. Every cost is a
 * pure function of the batch — devices are stateless — which is what
 * lets the event loop bind batches to devices in any order without
 * changing timing.
 */

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "accel/config.hpp"
#include "accel/perf_model.hpp"
#include "gcn/model.hpp"
#include "graph/datasets.hpp"
#include "serve/request.hpp"

namespace awb::serve {

/** Cost oracle: cycles one device spends executing one batch. */
class ServiceModel
{
  public:
    virtual ~ServiceModel() = default;

    /** `batch` is non-empty and shares one (kind, scope) class. */
    virtual Cycle batchCycles(const std::vector<Request> &batch) = 0;
};

/** base + perRequest * |batch| cycles; the closed-form test seam. */
class FixedServiceModel : public ServiceModel
{
  public:
    FixedServiceModel(Cycle base, Cycle per_request)
        : base_(base), perRequest_(per_request)
    {
    }

    Cycle
    batchCycles(const std::vector<Request> &batch) override
    {
        return base_ + perRequest_ * static_cast<Cycle>(batch.size());
    }

  private:
    Cycle base_;
    Cycle perRequest_;
};

/** Round-level PerfModel fidelity over merged request profiles. */
class ModelServiceModel : public ServiceModel
{
  public:
    /** `ds` must outlive the model. */
    ModelServiceModel(const Dataset &ds, const AccelConfig &cfg);

    Cycle batchCycles(const std::vector<Request> &batch) override;

  private:
    Cycle profileCycles(WorkloadKind kind, const std::vector<Count> &a_row,
                        const std::vector<Count> &x_row) const;
    Cycle fullGraphCycles(WorkloadKind kind);

    const Dataset &ds_;
    AccelConfig cfg_;
    PerfModel model_;
    std::vector<Count> dsARowNnz_;  ///< whole-dataset adjacency row-nnz
    std::vector<Count> dsXRowNnz_;  ///< whole-dataset feature row-nnz
    /** Result-sharing cache: full-graph cost per workload kind. */
    std::map<WorkloadKind, Cycle> fullCache_;
};

/** Cycle-accurate Session fidelity over materialized merged subgraphs. */
class CycleServiceModel : public ServiceModel
{
  public:
    /** `ds` must outlive the model; `seed` fixes the synthetic weights. */
    CycleServiceModel(const Dataset &ds, const AccelConfig &cfg,
                      std::uint64_t seed);

    Cycle batchCycles(const std::vector<Request> &batch) override;

  private:
    Cycle datasetCycles(WorkloadKind kind, const Dataset &target);
    Cycle fullGraphCycles(WorkloadKind kind);

    const Dataset &ds_;
    AccelConfig cfg_;
    std::uint64_t seed_;
    std::map<WorkloadKind, Cycle> fullCache_;
};

/** Block-diagonal fusion of square CSC blocks (ego-batch adjacency). */
CscMatrix blockDiag(const std::vector<CscMatrix> &blocks);

/** Vertical stack of CSR matrices with identical column counts
 *  (ego-batch feature rows). */
CsrMatrix stackRows(const std::vector<CsrMatrix> &parts);

} // namespace awb::serve
