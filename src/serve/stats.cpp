#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace awb::serve {

Cycle
percentile(std::vector<Cycle> sample, double p)
{
    if (sample.empty()) panic("percentile: empty sample");
    if (p <= 0.0 || p > 100.0) panic("percentile: p out of (0, 100]");
    std::sort(sample.begin(), sample.end());
    // Nearest rank: the smallest value with at least p% of the sample
    // at or below it (ceil(p/100 * n), 1-based).
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sample.size())));
    return sample[std::max<std::size_t>(rank, 1) - 1];
}

LatencySummary
summarizeLatencies(const std::vector<Cycle> &sample)
{
    LatencySummary s;
    if (sample.empty()) return s;
    std::vector<Cycle> sorted = sample;
    std::sort(sorted.begin(), sorted.end());
    s.count = static_cast<Count>(sorted.size());
    auto at = [&](double p) {
        const std::size_t rank = static_cast<std::size_t>(
            std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
        return sorted[std::max<std::size_t>(rank, 1) - 1];
    };
    s.p50 = at(50.0);
    s.p95 = at(95.0);
    s.p99 = at(99.0);
    s.p999 = at(99.9);
    s.min = sorted.front();
    s.max = sorted.back();
    double sum = 0.0;
    for (Cycle c : sorted) sum += static_cast<double>(c);
    s.mean = sum / static_cast<double>(sorted.size());
    return s;
}

void
DepthTrace::record(Cycle at, std::size_t depth)
{
    if (!samples_.empty()) {
        if (at < samples_.back().at)
            panic("DepthTrace::record: time went backwards");
        // Coalesce same-cycle changes: only the final depth held.
        if (at == samples_.back().at) {
            samples_.back().depth = depth;
            return;
        }
        if (depth == samples_.back().depth) return;
    }
    samples_.push_back({at, depth});
}

double
DepthTrace::meanDepth(Cycle end) const
{
    if (samples_.empty()) return 0.0;
    double weighted = 0.0;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const Cycle until =
            i + 1 < samples_.size() ? samples_[i + 1].at : end;
        if (until <= samples_[i].at) continue;
        weighted += static_cast<double>(samples_[i].depth) *
                    static_cast<double>(until - samples_[i].at);
    }
    const Cycle span = end - samples_.front().at;
    return span > 0 ? weighted / static_cast<double>(span) : 0.0;
}

std::vector<DepthSample>
DepthTrace::bucketed(Cycle end, std::size_t buckets) const
{
    std::vector<DepthSample> out;
    if (samples_.empty() || buckets == 0) return out;
    if (samples_.size() <= buckets) return samples_;
    const Cycle first = samples_.front().at;
    const double width =
        static_cast<double>(end - first) / static_cast<double>(buckets);
    std::size_t last_bucket = static_cast<std::size_t>(-1);
    for (const DepthSample &s : samples_) {
        const std::size_t bucket =
            width > 0.0 ? std::min(buckets - 1,
                                   static_cast<std::size_t>(
                                       static_cast<double>(s.at - first) /
                                       width))
                        : 0;
        if (bucket == last_bucket) continue;
        out.push_back(s);
        last_bucket = bucket;
    }
    return out;
}

} // namespace awb::serve
