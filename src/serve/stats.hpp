/**
 * @file
 * SLO-percentile statistics of a serving run (DESIGN.md §10): tail
 * latency summaries (nearest-rank percentiles — the convention SLO
 * contracts use), time-weighted queue-depth traces, and per-device
 * utilization. Everything is computed from exact cycle timestamps, so
 * summaries are bit-reproducible across hosts and thread counts.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace awb::serve {

/** Nearest-rank percentile of an unsorted sample (p in (0, 100]);
 *  panic() on an empty sample. */
Cycle percentile(std::vector<Cycle> sample, double p);

/** Tail summary of one latency population. */
struct LatencySummary
{
    Count count = 0;
    Cycle p50 = 0;
    Cycle p95 = 0;
    Cycle p99 = 0;
    Cycle p999 = 0;
    Cycle min = 0;
    Cycle max = 0;
    double mean = 0.0;
};

/** Summarize a latency sample; all-zero summary when empty. */
LatencySummary summarizeLatencies(const std::vector<Cycle> &sample);

/** One step of the queue-depth trace: depth held from `at` until the
 *  next sample's `at`. */
struct DepthSample
{
    Cycle at = 0;
    std::size_t depth = 0;
};

/**
 * Time-weighted queue-depth accumulator. Record every depth change with
 * its timestamp; the mean weights each depth by how long it was held.
 */
class DepthTrace
{
  public:
    /** Record the depth from cycle `at` onward (at must not decrease). */
    void record(Cycle at, std::size_t depth);

    /** Time-weighted mean depth over [first record, end]. */
    double meanDepth(Cycle end) const;

    /** Down-sample to at most `buckets` steps for reporting (keeps the
     *  first sample of each equal-width time bucket). */
    std::vector<DepthSample> bucketed(Cycle end, std::size_t buckets) const;

    const std::vector<DepthSample> &samples() const { return samples_; }

  private:
    std::vector<DepthSample> samples_;
};

} // namespace awb::serve
