/**
 * @file
 * Minimal clocked simulation kernel: components implement tick(cycle) and
 * an engine advances them in registration order until a quiescence
 * predicate holds. Registration order defines intra-cycle evaluation order
 * (downstream components are registered first so a value takes one cycle
 * per pipeline stage, matching the RTL).
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace awb {

/** Base class for everything that owns per-cycle behaviour. */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;

    /** Advance one clock cycle. */
    virtual void tick(Cycle cycle) = 0;

    /** True when the component has no pending work. */
    virtual bool quiescent() const = 0;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

/**
 * Fixed-order cycle driver. Not event-driven: the accelerator is a
 * streaming design where nearly every unit is active nearly every cycle,
 * so a ticked model is both simpler and faster than an event queue.
 */
class Engine
{
  public:
    /** Register a component; earlier registrations tick first each cycle. */
    void add(Component *c) { components_.push_back(c); }

    /**
     * Run until every component is quiescent (checked after each cycle) or
     * `max_cycles` elapse. Returns the number of cycles executed.
     */
    Cycle
    run(Cycle max_cycles)
    {
        Cycle executed = 0;
        while (executed < max_cycles) {
            for (Component *c : components_) c->tick(now_);
            ++now_;
            ++executed;
            bool idle = true;
            for (Component *c : components_) {
                if (!c->quiescent()) {
                    idle = false;
                    break;
                }
            }
            if (idle) break;
        }
        return executed;
    }

    Cycle now() const { return now_; }
    void resetClock() { now_ = 0; }

  private:
    std::vector<Component *> components_;
    Cycle now_ = 0;
};

} // namespace awb
