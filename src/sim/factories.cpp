#include "sim/factories.hpp"

#include <cmath>
#include <unordered_map>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "sparse/convert.hpp"

namespace awb::sim {

namespace {

DenseMatrix
glorotUniform(Rng &rng, Index fan_in, Index fan_out)
{
    DenseMatrix w(fan_in, fan_out);
    auto limit = static_cast<float>(
        std::sqrt(6.0 / static_cast<double>(fan_in + fan_out)));
    w.fillUniform(rng, -limit, limit);
    return w;
}

std::string
layerTag(Index l)
{
    return "L" + std::to_string(l + 1);
}

} // namespace

CscMatrix
rowNormalized(const CscMatrix &m)
{
    std::vector<Value> rowSum(static_cast<std::size_t>(m.rows()), Value(0));
    for (std::size_t p = 0; p < m.val().size(); ++p)
        rowSum[static_cast<std::size_t>(m.rowId()[p])] += m.val()[p];
    std::vector<Value> val = m.val();
    for (std::size_t p = 0; p < val.size(); ++p) {
        Value s = rowSum[static_cast<std::size_t>(m.rowId()[p])];
        if (s != Value(0)) val[p] /= s;
    }
    return CscMatrix::fromParts(m.rows(), m.cols(),
                                std::vector<Count>(m.colPtr()),
                                std::vector<Index>(m.rowId()),
                                std::move(val));
}

WorkloadBundle
buildMultiHopGcn(const Dataset &ds, const GcnModel &model, Index k)
{
    if (k < 1) fatal("buildMultiHopGcn: hop count must be >= 1");
    if (ds.features.cols() != model.inDim(0))
        fatal("buildMultiHopGcn: feature dim mismatch");

    WorkloadBundle w;
    w.name = k == 1 ? "gcn" : "gcn-" + std::to_string(k) + "hop";
    w.sparse.emplace("A", ds.adjacency);
    w.sparse.emplace("X0", csrToCsc(ds.features));

    WorkloadBuilder b;
    b.input("A");
    TensorId h = b.input("X0");
    for (Index l = 0; l < model.layers(); ++l) {
        const std::string tag = layerTag(l);
        const TensorId wName = "W" + std::to_string(l + 1);
        w.dense.emplace(
            wName, model.weights[static_cast<std::size_t>(l)]);
        TensorId xw = b.spmm(h, b.input(wName), TdqKind::Tdq1DenseScan,
                             tag + ".XW");
        TensorId z = b.spmm("A", xw, TdqKind::Tdq2OmegaCsc,
                            tag + ".A(XW)");
        for (Index hop = 1; hop < k; ++hop)
            z = b.spmm("A", z, TdqKind::Tdq2OmegaCsc,
                       tag + ".A^" + std::to_string(hop + 1) + "(XW)");
        bool last = (l == model.layers() - 1);
        h = last ? z : b.relu(z, "H" + std::to_string(l + 1));
    }
    w.graph = b.build(h);
    return w;
}

WorkloadBundle
buildExactKhopGcn(const Dataset &ds, const GcnModel &model, Index k)
{
    if (k < 1) fatal("buildExactKhopGcn: hop count must be >= 1");
    if (ds.features.cols() != model.inDim(0))
        fatal("buildExactKhopGcn: feature dim mismatch");

    WorkloadBundle w;
    w.name = k == 1 ? "gcn" : "gcn-" + std::to_string(k) + "hop-exact";
    w.sparse.emplace("A", ds.adjacency);
    w.sparse.emplace("X0", csrToCsc(ds.features));

    WorkloadBuilder b;
    b.input("A");
    TensorId h = b.input("X0");
    // Materialize A^k once as a chain of sparse×sparse powers; every
    // layer then aggregates over it with a single TDQ-2 SPMM.
    TensorId ak = "A";
    for (Index hop = 1; hop < k; ++hop)
        ak = b.spgemm("A", ak, "A^" + std::to_string(hop + 1),
                      "A" + std::to_string(hop + 1));
    for (Index l = 0; l < model.layers(); ++l) {
        const std::string tag = layerTag(l);
        const TensorId wName = "W" + std::to_string(l + 1);
        w.dense.emplace(
            wName, model.weights[static_cast<std::size_t>(l)]);
        TensorId xw = b.spmm(h, b.input(wName), TdqKind::Tdq1DenseScan,
                             tag + ".XW");
        TensorId z = b.spmm(ak, xw, TdqKind::Tdq2OmegaCsc,
                            tag + ".A^k(XW)");
        bool last = (l == model.layers() - 1);
        h = last ? z : b.relu(z, "H" + std::to_string(l + 1));
    }
    w.graph = b.build(h);
    return w;
}

WorkloadBundle
buildGcn(const Dataset &ds, const GcnModel &model)
{
    WorkloadBundle w = buildMultiHopGcn(ds, model, model.adjHops);
    w.name = "gcn";
    return w;
}

WorkloadBundle
buildGraphSage(const Dataset &ds, Index hidden, Index out,
               bool meanAggregate, std::uint64_t seed)
{
    WorkloadBundle w;
    w.name = meanAggregate ? "graphsage-mean" : "graphsage-concat";
    w.sparse.emplace("X0", csrToCsc(ds.features));
    w.sparse.emplace(
        "A", meanAggregate ? rowNormalized(ds.adjacency) : ds.adjacency);

    Rng rng(seed ^ 0x5a9eULL);
    const Index f1 = ds.features.cols();
    w.dense.emplace("Wproj", glorotUniform(rng, f1, hidden));
    const Index combDim = meanAggregate ? hidden : 2 * hidden;
    w.dense.emplace("W1", glorotUniform(rng, combDim, hidden));
    w.dense.emplace("W2", glorotUniform(rng, combDim, out));

    WorkloadBuilder b;
    b.input("A");
    TensorId h = b.spmm(b.input("X0"), b.input("Wproj"),
                        TdqKind::Tdq1DenseScan, "proj.XW", "H0");
    for (int l = 0; l < 2; ++l) {
        const std::string tag = layerTag(l);
        TensorId agg = b.spmm("A", h, TdqKind::Tdq2OmegaCsc,
                              tag + ".A(H)");
        TensorId comb = meanAggregate ? b.mean(h, agg) : b.concat(h, agg);
        TensorId z = b.denseMm(comb,
                               b.input("W" + std::to_string(l + 1)),
                               tag + ".CW");
        h = l == 0 ? b.relu(z, "H1") : z;
    }
    w.graph = b.build(h);
    return w;
}

WorkloadBundle
buildGin(const Dataset &ds, Index hidden, Index out, double eps,
         std::uint64_t seed)
{
    WorkloadBundle w;
    w.name = "gin";
    w.sparse.emplace("X0", csrToCsc(ds.features));
    w.sparse.emplace("A", ds.adjacency);

    Rng rng(seed ^ 0x61bULL);
    const Index f1 = ds.features.cols();
    w.dense.emplace("Wproj", glorotUniform(rng, f1, hidden));
    w.dense.emplace("W1a", glorotUniform(rng, hidden, hidden));
    w.dense.emplace("W1b", glorotUniform(rng, hidden, hidden));
    w.dense.emplace("W2a", glorotUniform(rng, hidden, hidden));
    w.dense.emplace("W2b", glorotUniform(rng, hidden, out));

    WorkloadBuilder b;
    b.input("A");
    TensorId h = b.spmm(b.input("X0"), b.input("Wproj"),
                        TdqKind::Tdq1DenseScan, "proj.XW", "H0");
    for (int l = 0; l < 2; ++l) {
        const std::string tag = layerTag(l);
        const std::string ln = std::to_string(l + 1);
        TensorId agg = b.spmm("A", h, TdqKind::Tdq2OmegaCsc,
                              tag + ".A(H)");
        // (1 + eps) * h + sum of neighbours.
        TensorId comb = b.addScaled(agg, h, 1.0 + eps);
        TensorId z1 = b.denseMm(comb, b.input("W" + ln + "a"),
                                tag + ".MLP1");
        TensorId r1 = b.relu(z1);
        TensorId z2 = b.denseMm(r1, b.input("W" + ln + "b"),
                                tag + ".MLP2");
        h = l == 0 ? b.relu(z2, "H1") : z2;
    }
    w.graph = b.build(h);
    return w;
}

SessionResult
runWorkload(Session &session, const WorkloadBundle &bundle, StatsSink *sink)
{
    for (const auto &[name, m] : bundle.sparse)
        session.bindSparse(name, m);
    for (const auto &[name, m] : bundle.dense)
        session.bindDense(name, m);
    return session.run(bundle.graph, sink);
}

SessionResult
runWorkload(Session &session, WorkloadBundle &&bundle, StatsSink *sink)
{
    for (auto &[name, m] : bundle.sparse)
        session.bindSparse(name, std::move(m));
    for (auto &[name, m] : bundle.dense)
        session.bindDense(name, std::move(m));
    return session.run(bundle.graph, sink);
}

DenseMatrix
referenceEval(const WorkloadBundle &bundle)
{
    std::unordered_map<TensorId, DenseMatrix> env;
    for (const auto &[name, m] : bundle.sparse)
        env.emplace(name, cscToDense(m));
    for (const auto &[name, m] : bundle.dense) env.emplace(name, m);

    auto get = [&](const TensorId &name) -> const DenseMatrix & {
        auto it = env.find(name);
        if (it == env.end())
            fatal("referenceEval: unbound tensor '" + name + "'");
        return it->second;
    };

    for (std::size_t id : bundle.graph.schedule()) {
        const WorkloadNode &n = bundle.graph.nodes()[id];
        DenseMatrix out;
        switch (n.kind) {
          case OpKind::Spmm:
          case OpKind::DenseMm:
          case OpKind::Spgemm:
            out = multiply(get(n.a), get(n.b));
            break;
          case OpKind::Elementwise:
            out = evalElementwise(n, get(n.a),
                                  n.unary() ? nullptr : &get(n.b));
            break;
          case OpKind::Concat:
            out = evalConcat(n, get(n.a), get(n.b));
            break;
        }
        env.insert_or_assign(n.out, std::move(out));
    }
    return env.at(bundle.graph.output());
}

} // namespace awb::sim
