/**
 * @file
 * Workload factories: canned workload graphs plus their tensor bindings
 * for the GNN families the accelerator can serve — the paper's GCN, k-hop
 * GCN chains (§3.3), GraphSAGE aggregate-combine, and GIN sum-and-MLP.
 * Each factory returns a self-contained WorkloadBundle; runWorkload()
 * binds and executes it on a Session, and referenceEval() interprets the
 * same graph with dense software kernels for functional validation.
 *
 * GraphSAGE and GIN start from a dense input projection h0 = X x W_proj
 * (a TDQ-1 SPMM over the sparse feature matrix) so that Nell's 61278-wide
 * feature matrix never has to be materialized densely.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "gcn/model.hpp"
#include "graph/datasets.hpp"
#include "sim/session.hpp"
#include "sim/workload.hpp"

namespace awb::sim {

/** A workload graph together with the matrices its inputs bind to. */
struct WorkloadBundle
{
    std::string name;  ///< e.g. "gcn", "graphsage-mean", "gin", "gcn-2hop"
    WorkloadGraph graph;
    std::map<TensorId, CscMatrix> sparse;
    std::map<TensorId, DenseMatrix> dense;
};

/** The paper's multi-layer GCN: per layer X x W (TDQ-1) then A^hops x (XW)
 *  (TDQ-2, chained/pipelined), ReLU between layers. Equivalent to the
 *  legacy GcnAccelerator::run orchestration. */
WorkloadBundle buildGcn(const Dataset &ds, const GcnModel &model);

/** GCN whose layers aggregate over the k-hop neighbourhood: A^k (X W),
 *  the k chained adjacency SPMMs column-pipelined (paper §3.3). */
WorkloadBundle buildMultiHopGcn(const Dataset &ds, const GcnModel &model,
                                Index k);

/**
 * k-hop GCN on an *exact* A^k built with Spgemm nodes (DESIGN.md §11):
 * a chain of sparse×sparse powers A^2 ... A^k precedes the layers, and
 * every layer aggregates once over the materialized sparse A^k instead
 * of applying A k times per layer. Numerically equivalent to
 * buildMultiHopGcn up to float associativity; structurally it exercises
 * the sparse-output path and prices the power chain once, not per layer.
 */
WorkloadBundle buildExactKhopGcn(const Dataset &ds, const GcnModel &model,
                                 Index k);

/**
 * Two-layer GraphSAGE on top of an input projection.
 *
 * meanAggregate = true:  h' = ReLU( mean(h, Am x h) x W )   with Am the
 *   row-normalized adjacency (each row sums to 1: a weighted neighbour
 *   mean), W of shape d_in x d_out;
 * meanAggregate = false: h' = ReLU( concat(h, A x h) x W ) — the
 *   sum-aggregate + concat-combine variant, W of shape 2*d_in x d_out.
 */
WorkloadBundle buildGraphSage(const Dataset &ds, Index hidden, Index out,
                              bool meanAggregate, std::uint64_t seed = 1);

/** Two GIN layers on top of an input projection:
 *  h' = MLP( (1 + eps) * h + A x h ), MLP = W_a, ReLU, W_b. */
WorkloadBundle buildGin(const Dataset &ds, Index hidden, Index out,
                        double eps, std::uint64_t seed = 1);

/** Bind the bundle's tensors into the session and run its graph. */
SessionResult runWorkload(Session &session, const WorkloadBundle &bundle,
                          StatsSink *sink = nullptr);

/** Move overload for one-shot bundles: hands the matrices to the Session
 *  instead of deep-copying adjacency/features/weights a second time. */
SessionResult runWorkload(Session &session, WorkloadBundle &&bundle,
                          StatsSink *sink = nullptr);

/** Dense software interpretation of the bundle (the functional golden
 *  model the Session result is validated against). */
DenseMatrix referenceEval(const WorkloadBundle &bundle);

/** Row-normalize a sparse matrix so every non-empty row sums to 1 (the
 *  GraphSAGE mean-aggregation operand). */
CscMatrix rowNormalized(const CscMatrix &m);

} // namespace awb::sim
