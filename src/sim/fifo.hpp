/**
 * @file
 * Bounded FIFO queue with occupancy statistics.
 *
 * Every hardware buffer in the design (PE task queues, Omega-network router
 * buffers, the remote-balancing control registers) is modelled with this
 * class. Peak occupancy is tracked because the paper sizes the physical
 * task queues by worst-case depth (§5.2: Nell's TQ depth drops from 65128
 * to 2675 once rebalancing is enabled) and the Fig. 14 K-O area results are
 * dominated by it.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <limits>

#include "common/log.hpp"
#include "common/types.hpp"

namespace awb {

/**
 * FIFO with optional capacity. capacity == 0 means unbounded (used when
 * measuring the depth a physical queue would need).
 */
template <typename T>
class Fifo
{
  public:
    explicit Fifo(std::size_t capacity = 0) : capacity_(capacity) {}

    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }

    bool
    full() const
    {
        return capacity_ != 0 && q_.size() >= capacity_;
    }

    /** Push; returns false (and drops nothing) when full. Rejected
     *  pushes are counted — serving queues report them as admission
     *  drops (serve/queue.hpp). */
    bool
    push(T item)
    {
        if (full()) {
            ++rejected_;
            return false;
        }
        q_.push_back(std::move(item));
        peak_ = std::max(peak_, q_.size());
        ++pushes_;
        return true;
    }

    const T &
    front() const
    {
        if (q_.empty()) panic("Fifo::front on empty queue");
        return q_.front();
    }

    T
    pop()
    {
        if (q_.empty()) panic("Fifo::pop on empty queue");
        T item = std::move(q_.front());
        q_.pop_front();
        return item;
    }

    /** Indexed peek (0 == front); used by multi-queue arbiters and the
     *  serving batch disciplines. panic() on out-of-range instead of
     *  throwing std::out_of_range through simulator frames. */
    const T &
    at(std::size_t i) const
    {
        if (i >= q_.size()) panic("Fifo::at index out of range");
        return q_[i];
    }

    /** Remove the element at index i (0 == front), preserving the order
     *  of the rest. Non-front removal is what batch disciplines that
     *  cherry-pick from the middle (sjf-nnz, per-kind batching) need.
     *  panic() on out-of-range. */
    T
    erase(std::size_t i)
    {
        if (i >= q_.size()) panic("Fifo::erase index out of range");
        T item = std::move(q_[i]);
        q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(i));
        return item;
    }

    /** Drop all queued elements; statistics are kept (use clearStats). */
    void clear() { q_.clear(); }

    std::size_t peakOccupancy() const { return peak_; }
    Count totalPushes() const { return pushes_; }
    /** Pushes rejected because the queue was full. */
    Count rejectedPushes() const { return rejected_; }
    std::size_t capacity() const { return capacity_; }

    void
    clearStats()
    {
        peak_ = q_.size();
        pushes_ = 0;
        rejected_ = 0;
    }

  private:
    std::size_t capacity_;
    std::deque<T> q_;
    std::size_t peak_ = 0;
    Count pushes_ = 0;
    Count rejected_ = 0;
};

} // namespace awb
