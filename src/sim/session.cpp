#include "sim/session.hpp"

#include <algorithm>
#include <unordered_map>

#include "accel/gcn_accel.hpp"
#include "common/log.hpp"
#include "sparse/convert.hpp"

namespace awb::sim {

Session::Session(const AccelConfig &cfg) : cfg_(cfg)
{
    std::string err = cfg.validate();
    if (!err.empty()) fatal("Session: " + err);
    partitioner_ = makePartitionPolicy(cfg_);
}

void
Session::bindSparse(const TensorId &name, CscMatrix m)
{
    // PE load depends only on the sparsity structure, so a rebind with
    // the same structure (e.g. runWorkload called again on the same
    // bundle) keeps the tuned row map; a structurally different operand
    // starts untuned.
    auto it = sparse_.find(name);
    bool same_structure = it != sparse_.end() &&
                          it->second.rows() == m.rows() &&
                          it->second.cols() == m.cols() &&
                          it->second.colPtr() == m.colPtr() &&
                          it->second.rowId() == m.rowId();
    if (!same_structure) rowMaps_.erase(name);
    sparse_.insert_or_assign(name, std::move(m));
}

void
Session::bindSparse(const TensorId &name, const CsrMatrix &m)
{
    bindSparse(name, csrToCsc(m));
}

void
Session::bindDense(const TensorId &name, DenseMatrix m)
{
    dense_.insert_or_assign(name, std::move(m));
}

const RowPartition *
Session::rowMap(const TensorId &name) const
{
    auto it = rowMaps_.find(name);
    return it == rowMaps_.end() ? nullptr : &it->second;
}

SessionResult
Session::run(const WorkloadGraph &graph, StatsSink *sink)
{
    std::vector<std::size_t> order = graph.schedule();

    // Per-run tensor environment: produced dense tensors, produced
    // *sparse* tensors (Spgemm outputs), plus CSC conversions of
    // produced tensors used as sparse operands.
    std::unordered_map<TensorId, DenseMatrix> env;
    std::unordered_map<TensorId, CscMatrix> sparseEnv;
    std::unordered_map<TensorId, CscMatrix> cscCache;

    auto denseOf = [&](const TensorId &name) -> const DenseMatrix & {
        auto it = env.find(name);
        if (it != env.end()) return it->second;
        auto bound = dense_.find(name);
        if (bound != dense_.end()) return bound->second;
        auto sprod = sparseEnv.find(name);
        if (sprod != sparseEnv.end()) {
            // A Spgemm output consumed densely: materialize once.
            return env.emplace(name, cscToDense(sprod->second))
                .first->second;
        }
        auto sp = sparse_.find(name);
        if (sp != sparse_.end()) {
            // Rare: a sparse-bound tensor consumed densely (e.g. as the
            // streamed operand of a chain head). Materialize once.
            return env.emplace(name, cscToDense(sp->second)).first->second;
        }
        fatal("Session: tensor '" + name + "' is not bound or produced");
    };

    auto sparseOf = [&](const TensorId &name) -> const CscMatrix & {
        auto sprod = sparseEnv.find(name);
        if (sprod != sparseEnv.end()) return sprod->second;
        auto bound = sparse_.find(name);
        if (bound != sparse_.end()) return bound->second;
        auto cached = cscCache.find(name);
        if (cached != cscCache.end()) return cached->second;
        auto it = env.find(name);
        if (it != env.end())
            return cscCache.emplace(name, denseToCsc(it->second))
                .first->second;
        auto dbound = dense_.find(name);  // dense-bound left operand
        if (dbound != dense_.end())
            return cscCache.emplace(name, denseToCsc(dbound->second))
                .first->second;
        fatal("Session: sparse operand '" + name +
              "' is not bound or produced");
    };

    SessionResult res;
    // One engine for the whole run. cfg_.engine selects event-stepped or
    // round-batched execution (DESIGN.md §6); the two are bit-identical
    // on every statistic and on the auto-tuned row maps carried below,
    // so Sessions may switch engines between runs without perturbing
    // the tuning trajectory.
    SpmmEngine engine(cfg_);

    // Only sparse-bound operands (stable across run() calls, e.g. the
    // adjacency) carry their tuned row maps in the Session; maps for
    // produced or dense-bound left operands live for this run only —
    // their content (and possibly shape) changes between runs/graphs.
    std::map<TensorId, RowPartition> localMaps;

    // Chain tracking: the open chain's nodeStats indices and the tensor
    // its tail produced.
    ChainStats chain;
    TensorId chainTail;
    auto flushChain = [&]() {
        if (chain.stages.empty()) return;
        std::vector<const std::vector<Cycle> *> stages;
        stages.reserve(chain.stages.size());
        for (std::size_t s : chain.stages)
            stages.push_back(&res.nodeStats[s].roundCycles);
        chain.pipelinedCycles = pipelineCyclesMulti(stages);
        chain.serialCycles = 0;
        for (std::size_t s : chain.stages)
            chain.serialCycles += res.nodeStats[s].cycles;
        res.totalCycles += chain.pipelinedCycles;
        if (sink) sink->onChain(chain);
        res.chains.push_back(std::move(chain));
        chain = ChainStats{};
        chainTail.clear();
    };

    for (std::size_t id : order) {
        const WorkloadNode &n = graph.nodes()[id];
        switch (n.kind) {
          case OpKind::Spmm:
          case OpKind::DenseMm: {
            const CscMatrix &a = sparseOf(n.a);
            const DenseMatrix &b = denseOf(n.b);
            auto &maps = sparse_.count(n.a) ? rowMaps_ : localMaps;
            auto mapIt = maps.find(n.a);
            const bool fresh = mapIt == maps.end();
            if (fresh) {
                mapIt = maps.emplace(n.a, partitioner_->build(
                                              a.rows(), a.rowNnz(), cfg_))
                            .first;
            }
            if (!fresh && mapIt->second.rows() != a.rows())
                fatal("Session: sparse operand '" + n.a +
                      "' changed row count; rebind it under a new name");
            SpmmResult r = engine.execute(a, b, n.tdq, mapIt->second);
            r.stats.label = n.label.empty() ? n.out : n.label;

            // A node extends the open chain when it streams the chain
            // tail's output as its dense operand — column k of the tail
            // feeds stage k+1 as soon as it completes (Fig. 8). A
            // mismatched round count (re-tiled operand) breaks the chain.
            bool extends = !chain.stages.empty() && n.b == chainTail &&
                           res.nodeStats[chain.stages.back()]
                                   .roundCycles.size() ==
                               r.stats.roundCycles.size();
            if (!extends) flushChain();

            res.totalCyclesSerial += r.stats.cycles;
            res.totalTasks += r.stats.tasks;
            res.traffic += r.stats.traffic;
            res.memoryCycles += r.stats.memoryCycles;
            res.bwBoundRounds += r.stats.bwBoundRounds;
            res.nodeIds.push_back(id);
            res.nodeStats.push_back(std::move(r.stats));
            chain.stages.push_back(res.nodeStats.size() - 1);
            chainTail = n.out;
            if (sink) sink->onNode(n, res.nodeStats.back());
            env.insert_or_assign(n.out, std::move(r.c));
            break;
          }
          case OpKind::Spgemm: {
            const CscMatrix &a = sparseOf(n.a);
            const CscMatrix &b = sparseOf(n.b);
            auto &maps = sparse_.count(n.a) ? rowMaps_ : localMaps;
            auto mapIt = maps.find(n.a);
            const bool fresh = mapIt == maps.end();
            if (fresh) {
                mapIt = maps.emplace(n.a, partitioner_->build(
                                              a.rows(), a.rowNnz(), cfg_))
                            .first;
            }
            if (!fresh && mapIt->second.rows() != a.rows())
                fatal("Session: sparse operand '" + n.a +
                      "' changed row count; rebind it under a new name");
            SpgemmResult r = engine.executeSpgemm(a, b, mapIt->second);
            r.stats.label = n.label.empty() ? n.out : n.label;

            // A Spgemm completes output column k at the end of round k,
            // so it chains exactly like a dense-output node: a consumer
            // streaming n.out column by column overlaps with it, and a
            // Spgemm whose sparse *streamed* operand n.b is the chain
            // tail extends the chain (the A×A-power case).
            bool extends = !chain.stages.empty() && n.b == chainTail &&
                           res.nodeStats[chain.stages.back()]
                                   .roundCycles.size() ==
                               r.stats.roundCycles.size();
            if (!extends) flushChain();

            res.totalCyclesSerial += r.stats.cycles;
            res.totalTasks += r.stats.tasks;
            res.traffic += r.stats.traffic;
            res.memoryCycles += r.stats.memoryCycles;
            res.bwBoundRounds += r.stats.bwBoundRounds;
            res.nodeIds.push_back(id);
            res.nodeStats.push_back(std::move(r.stats));
            chain.stages.push_back(res.nodeStats.size() - 1);
            chainTail = n.out;
            if (sink) sink->onNode(n, res.nodeStats.back());
            sparseEnv.insert_or_assign(n.out, std::move(r.c));
            break;
          }
          case OpKind::Elementwise: {
            flushChain();
            const DenseMatrix &a = denseOf(n.a);
            const DenseMatrix *b2 = n.unary() ? nullptr : &denseOf(n.b);
            env.insert_or_assign(n.out, evalElementwise(n, a, b2));
            break;
          }
          case OpKind::Concat: {
            flushChain();
            env.insert_or_assign(n.out,
                                 evalConcat(n, denseOf(n.a), denseOf(n.b)));
            break;
          }
        }
    }
    flushChain();

    const int P = cfg_.numPes;
    res.utilization = res.totalCyclesSerial > 0
        ? static_cast<double>(res.totalTasks) /
          (static_cast<double>(P) *
           static_cast<double>(res.totalCyclesSerial))
        : 0.0;

    auto sparseOut = sparseEnv.find(graph.output());
    if (sparseOut != sparseEnv.end()) {
        res.outputSparse = true;
        res.output = cscToDense(sparseOut->second);
        res.sparseOutput = std::move(sparseOut->second);
    } else {
        auto outIt = env.find(graph.output());
        if (outIt != env.end()) {
            res.output = std::move(outIt->second);
        } else {
            // Output is a bound tensor.
            res.output = denseOf(graph.output());
        }
    }
    if (sink) sink->onRunComplete(res);
    return res;
}

} // namespace awb::sim
