/**
 * @file
 * Session: the single execution interface for workload graphs. A Session
 * owns an accelerator configuration, the tensor bindings of a workload,
 * and — crucially — one tuned RowPartition per distinct sparse operand
 * name, carried across every node, layer and run() call. This generalizes
 * the manual adjacency-map reuse the legacy GcnAccelerator hand-coded:
 * any operand that appears in several SPMM nodes (the adjacency in every
 * GCN layer, A^k chains, multi-graph batches) keeps benefiting from the
 * remote-switching auto-tuning work done in earlier nodes (paper §4).
 *
 * Chained SPMMs are column-pipelined automatically (paper Fig. 8 / §3.3):
 * consecutive costed nodes where each consumes the previous node's output
 * as its *streamed dense operand* form a chain, whose end-to-end delay is
 * pipelineCyclesMulti over the per-round durations. Elementwise and
 * Concat nodes are free (inline datapath units) and break chains.
 *
 * Results are reported through the StatsSink interface — no out-params.
 */

#pragma once

#include <map>
#include <memory>
#include <vector>

#include "accel/config.hpp"
#include "accel/policy.hpp"
#include "accel/row_map.hpp"
#include "accel/spmm_engine.hpp"
#include "sim/workload.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace awb::sim {

/** One maximal column-pipelined run of chained SPMM nodes. */
struct ChainStats
{
    /** Indices into SessionResult::nodeStats of the chained stages. */
    std::vector<std::size_t> stages;
    Cycle pipelinedCycles = 0;  ///< end-to-end delay under pipelining
    Cycle serialCycles = 0;     ///< sum of the stages' cycles
};

/** Everything one Session::run produces. */
struct SessionResult
{
    DenseMatrix output;                ///< value of the graph output tensor
    /** When the graph output is a Spgemm node's tensor, its sparse value
     *  (outputSparse == true); `output` then holds the densified copy so
     *  dense-only consumers keep working (DESIGN.md §11). */
    CscMatrix sparseOutput;
    bool outputSparse = false;
    std::vector<SpmmStats> nodeStats;  ///< per costed node, schedule order
    std::vector<std::size_t> nodeIds;  ///< graph node index per stats entry
    std::vector<ChainStats> chains;    ///< pipelined chain decomposition
    Cycle totalCycles = 0;        ///< sum of pipelined chain delays
    Cycle totalCyclesSerial = 0;  ///< without inter-SPMM pipelining
    Count totalTasks = 0;         ///< MACs executed
    double utilization = 0.0;     ///< tasks / (P * serial cycles)
    /** Off-chip traffic summed over every costed node; per-node (per
     *  layer) figures live in nodeStats[i].traffic (DESIGN.md §8). */
    MemoryTraffic traffic;
    Cycle memoryCycles = 0;       ///< summed per-round bandwidth floors
    Count bwBoundRounds = 0;      ///< rounds stretched to their floor
};

/**
 * Observer of a run's progress. Override what you need; the default
 * implementations discard. onNode fires after each costed node completes,
 * onChain when a pipelined chain is sealed, onRunComplete once at the end.
 */
class StatsSink
{
  public:
    virtual ~StatsSink() = default;
    virtual void onNode(const WorkloadNode &node, const SpmmStats &stats)
    {
        (void)node;
        (void)stats;
    }
    virtual void onChain(const ChainStats &chain) { (void)chain; }
    virtual void onRunComplete(const SessionResult &result) { (void)result; }
};

/** StatsSink that records everything it sees (tests, reporting). */
class CollectingSink : public StatsSink
{
  public:
    void onNode(const WorkloadNode &node, const SpmmStats &s) override
    {
        nodes.push_back(node);
        stats.push_back(s);
    }
    void onChain(const ChainStats &chain) override { chains.push_back(chain); }
    void onRunComplete(const SessionResult &) override { ++runs; }

    std::vector<WorkloadNode> nodes;
    std::vector<SpmmStats> stats;
    std::vector<ChainStats> chains;
    int runs = 0;
};

/** Executes workload graphs on the cycle-accurate engine. */
class Session
{
  public:
    /** fatal() with a descriptive message when the config is invalid. */
    explicit Session(const AccelConfig &cfg);

    /** Bind a sparse operand (TDQ-2 input, or a pre-sparsified TDQ-1
     *  left operand such as the layer-1 feature matrix). */
    void bindSparse(const TensorId &name, CscMatrix m);
    /** Convenience: bind CSR content (e.g. Dataset::features) as CSC. */
    void bindSparse(const TensorId &name, const CsrMatrix &m);
    /** Bind a dense tensor (weights, dense features). */
    void bindDense(const TensorId &name, DenseMatrix m);

    /**
     * Topologically schedule and execute the graph. All graph inputs must
     * be bound. Row maps tuned during the run persist in the Session, so
     * a later run() (another inference over the same operands) starts
     * from the tuned maps.
     */
    SessionResult run(const WorkloadGraph &graph, StatsSink *sink = nullptr);

    /** The tuned row map carried for a sparse operand; nullptr before the
     *  operand's first SPMM. Only operands bound via bindSparse carry
     *  across run() calls — maps for produced intermediates are per-run
     *  (their content changes between runs). */
    const RowPartition *rowMap(const TensorId &name) const;

    const AccelConfig &config() const { return cfg_; }

  private:
    AccelConfig cfg_;
    /** Initial row→PE mapping strategy of cfg_'s balance policy; used to
     *  build the map of every sparse operand on first touch. */
    std::unique_ptr<PartitionPolicy> partitioner_;
    std::map<TensorId, CscMatrix> sparse_;
    std::map<TensorId, DenseMatrix> dense_;
    std::map<TensorId, RowPartition> rowMaps_;
};

} // namespace awb::sim
