#include "sim/workload.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/log.hpp"

namespace awb::sim {

namespace {

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::Spmm:        return "Spmm";
      case OpKind::DenseMm:     return "DenseMm";
      case OpKind::Spgemm:      return "Spgemm";
      case OpKind::Elementwise: return "Elementwise";
      case OpKind::Concat:      return "Concat";
    }
    return "?";
}

} // namespace

std::string
WorkloadGraph::validate() const
{
    std::unordered_set<TensorId> known(inputs_.begin(), inputs_.end());
    std::unordered_set<TensorId> produced;
    for (const auto &n : nodes_) {
        if (n.out.empty())
            return std::string(opKindName(n.kind)) +
                   " node has no output tensor";
        if (!produced.insert(n.out).second)
            return "tensor '" + n.out + "' is produced by more than one node";
        if (known.count(n.out))
            return "tensor '" + n.out + "' is both an input and a node output";
        if (n.a.empty())
            return "node '" + n.out + "' has no first input";
        if (n.unary() && !n.b.empty())
            return "ReLU node '" + n.out + "' must have exactly one input";
        if (!n.unary() && n.b.empty())
            return std::string(opKindName(n.kind)) + " node '" + n.out +
                   "' needs a second input";
    }
    // Unknown tensors: everything referenced must be an input or produced.
    for (const auto &n : nodes_) {
        for (const TensorId *t : {&n.a, &n.b}) {
            if (t->empty()) continue;
            if (!known.count(*t) && !produced.count(*t))
                return "node '" + n.out + "' references unbound tensor '" +
                       *t + "'";
        }
    }
    if (output_.empty()) return "graph has no output tensor";
    if (!known.count(output_) && !produced.count(output_))
        return "output tensor '" + output_ + "' is never produced";

    // Acyclicity: Kahn over producer edges; leftovers mean a cycle.
    std::unordered_map<TensorId, std::size_t> producer;
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        producer[nodes_[i].out] = i;
    std::vector<int> indeg(nodes_.size(), 0);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        for (const TensorId *t : {&nodes_[i].a, &nodes_[i].b}) {
            if (!t->empty() && producer.count(*t)) ++indeg[i];
        }
    }
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        if (indeg[i] == 0) ready.push_back(i);
    std::size_t seen = 0;
    while (!ready.empty()) {
        std::size_t i = ready.back();
        ready.pop_back();
        ++seen;
        for (std::size_t j = 0; j < nodes_.size(); ++j) {
            for (const TensorId *t : {&nodes_[j].a, &nodes_[j].b}) {
                if (!t->empty() && producer.count(*t) &&
                    producer.at(*t) == i && --indeg[j] == 0)
                    ready.push_back(j);
            }
        }
    }
    if (seen != nodes_.size()) {
        // Name the nodes left on the cycle (indeg > 0 after Kahn) so the
        // error points at the offending part of the graph instead of
        // relying on scheduler behavior downstream.
        std::string cyclic;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            if (indeg[i] <= 0) continue;
            if (!cyclic.empty()) cyclic += ", ";
            cyclic += "'" + nodes_[i].out + "'";
        }
        return "workload graph contains a cycle through node(s) " + cyclic;
    }
    return "";
}

std::vector<std::size_t>
WorkloadGraph::schedule() const
{
    std::string err = validate();
    if (!err.empty()) fatal("workload graph: " + err);

    std::unordered_map<TensorId, std::size_t> producer;
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        producer[nodes_[i].out] = i;

    std::vector<int> indeg(nodes_.size(), 0);
    std::vector<std::vector<std::size_t>> consumers(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        for (const TensorId *t : {&nodes_[i].a, &nodes_[i].b}) {
            if (t->empty()) continue;
            auto it = producer.find(*t);
            if (it != producer.end()) {
                ++indeg[i];
                consumers[it->second].push_back(i);
            }
        }
    }

    // Min-heap on insertion index keeps the order deterministic and equal
    // to the authoring order whenever that order is already topological.
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        if (indeg[i] == 0) frontier.push_back(i);
    std::make_heap(frontier.begin(), frontier.end(),
                   std::greater<std::size_t>());

    std::vector<std::size_t> order;
    order.reserve(nodes_.size());
    while (!frontier.empty()) {
        std::pop_heap(frontier.begin(), frontier.end(),
                      std::greater<std::size_t>());
        std::size_t i = frontier.back();
        frontier.pop_back();
        order.push_back(i);
        for (std::size_t j : consumers[i]) {
            if (--indeg[j] == 0) {
                frontier.push_back(j);
                std::push_heap(frontier.begin(), frontier.end(),
                               std::greater<std::size_t>());
            }
        }
    }
    return order;
}

DenseMatrix
evalElementwise(const WorkloadNode &node, const DenseMatrix &a,
                const DenseMatrix *b)
{
    if (node.ew == EwKind::Relu) {
        DenseMatrix out = a;
        out.relu();
        return out;
    }
    if (b == nullptr || !a.sameShape(*b))
        fatal("elementwise node '" + node.out +
              "' has mismatched input shapes");
    DenseMatrix out(a.rows(), a.cols());
    const bool is_mean = node.ew == EwKind::Mean;
    const auto alpha = static_cast<Value>(node.alpha);
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index c = 0; c < a.cols(); ++c) {
            out.at(r, c) = is_mean
                ? (a.at(r, c) + b->at(r, c)) / Value(2)
                : a.at(r, c) + alpha * b->at(r, c);
        }
    }
    return out;
}

DenseMatrix
evalConcat(const WorkloadNode &node, const DenseMatrix &a,
           const DenseMatrix &b)
{
    if (a.rows() != b.rows())
        fatal("concat node '" + node.out + "' has mismatched row counts");
    DenseMatrix out(a.rows(), a.cols() + b.cols());
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index c = 0; c < a.cols(); ++c)
            out.at(r, c) = a.at(r, c);
        for (Index c = 0; c < b.cols(); ++c)
            out.at(r, a.cols() + c) = b.at(r, c);
    }
    return out;
}

TensorId
WorkloadBuilder::input(const TensorId &name)
{
    if (name.empty()) fatal("workload input needs a name");
    if (std::find(inputs_.begin(), inputs_.end(), name) == inputs_.end())
        inputs_.push_back(name);
    return name;
}

TensorId
WorkloadBuilder::emit(WorkloadNode node, const TensorId &out,
                      const char *stem)
{
    node.out = out.empty()
        ? "%" + std::string(stem) + std::to_string(autoNames_++)
        : out;
    if (node.label.empty()) node.label = node.out;
    nodes_.push_back(std::move(node));
    return nodes_.back().out;
}

TensorId
WorkloadBuilder::spmm(const TensorId &sparse, const TensorId &dense,
                      TdqKind tdq, const std::string &label,
                      const TensorId &out)
{
    WorkloadNode n;
    n.kind = OpKind::Spmm;
    n.a = sparse;
    n.b = dense;
    n.tdq = tdq;
    n.label = label;
    return emit(std::move(n), out, "spmm");
}

TensorId
WorkloadBuilder::denseMm(const TensorId &a, const TensorId &b,
                         const std::string &label, const TensorId &out)
{
    WorkloadNode n;
    n.kind = OpKind::DenseMm;
    n.a = a;
    n.b = b;
    n.tdq = TdqKind::Tdq1DenseScan;
    n.label = label;
    return emit(std::move(n), out, "mm");
}

TensorId
WorkloadBuilder::spgemm(const TensorId &a, const TensorId &b,
                        const std::string &label, const TensorId &out)
{
    WorkloadNode n;
    n.kind = OpKind::Spgemm;
    n.a = a;
    n.b = b;
    n.tdq = TdqKind::Tdq2OmegaCsc;
    n.label = label;
    return emit(std::move(n), out, "spgemm");
}

TensorId
WorkloadBuilder::relu(const TensorId &a, const TensorId &out)
{
    WorkloadNode n;
    n.kind = OpKind::Elementwise;
    n.ew = EwKind::Relu;
    n.a = a;
    return emit(std::move(n), out, "relu");
}

TensorId
WorkloadBuilder::addScaled(const TensorId &a, const TensorId &b,
                           double alpha, const TensorId &out)
{
    WorkloadNode n;
    n.kind = OpKind::Elementwise;
    n.ew = EwKind::AddScaled;
    n.a = a;
    n.b = b;
    n.alpha = alpha;
    return emit(std::move(n), out, "add");
}

TensorId
WorkloadBuilder::mean(const TensorId &a, const TensorId &b,
                      const TensorId &out)
{
    WorkloadNode n;
    n.kind = OpKind::Elementwise;
    n.ew = EwKind::Mean;
    n.a = a;
    n.b = b;
    return emit(std::move(n), out, "mean");
}

TensorId
WorkloadBuilder::concat(const TensorId &a, const TensorId &b,
                        const TensorId &out)
{
    WorkloadNode n;
    n.kind = OpKind::Concat;
    n.a = a;
    n.b = b;
    return emit(std::move(n), out, "cat");
}

WorkloadGraph
WorkloadBuilder::build(const TensorId &output) const
{
    WorkloadGraph g(nodes_, inputs_, output);
    std::string err = g.validate();
    if (!err.empty()) fatal("WorkloadBuilder::build: " + err);
    return g;
}

} // namespace awb::sim
