/**
 * @file
 * Workload-graph IR: a value-semantics DAG of typed tensor operations
 * describing an arbitrary SPMM pipeline (GCN layers, GraphSAGE
 * aggregate-combine, GIN sum-and-MLP, k-hop chains, ...). Nodes name
 * their input/output tensors; a Session (session.hpp) binds the named
 * inputs to matrices, topologically schedules the nodes and executes
 * the costed ones on the cycle-accurate SpmmEngine.
 *
 * The IR is deliberately small: five node kinds cover every workload the
 * paper's hardware can express.
 *
 *  - Spmm      C = S x B, S a named sparse operand routed through TDQ-1
 *              (dense-stored scan) or TDQ-2 (CSC through the Omega net)
 *  - Spgemm    C = S x T with both operands sparse and a *sparse* result
 *              (DESIGN.md §11): hash-accumulated per output column on the
 *              TDQ-2 path, unlocking A×A powers and frontier kernels
 *  - DenseMm   C = A x W with a produced dense A; executed as a TDQ-1
 *              SPMM over the zero-skipped dense-stored A (exactly how the
 *              hardware runs X(l) x W(l) for l >= 2)
 *  - Elementwise  ReLU (unary), AddScaled out = a + alpha*b, Mean
 *              out = (a+b)/2; free in the cycle model, like the inline
 *              ReLU units of the accelerator datapath
 *  - Concat    column-wise concatenation (GraphSAGE combine); free
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "accel/spmm_engine.hpp"

namespace awb::sim {

/** Tensors are referenced by name; the name is also the key under which a
 *  Session carries the tuned RowPartition of a sparse operand. */
using TensorId = std::string;

/** Node kinds of the workload IR. */
enum class OpKind
{
    Spmm,         ///< sparse x dense through a TDQ path (costed)
    DenseMm,      ///< produced-dense x dense, zero-skipping TDQ-1 (costed)
    Spgemm,       ///< sparse x sparse, sparse output (costed, §11)
    Elementwise,  ///< ReLU / AddScaled / Mean (free)
    Concat,       ///< column-wise concatenation (free)
};

/** Elementwise operator selection. */
enum class EwKind
{
    Relu,       ///< out = max(a, 0)            (unary)
    AddScaled,  ///< out = a + alpha * b        (binary)
    Mean,       ///< out = (a + b) / 2          (binary)
};

/** One operation over named tensors. */
struct WorkloadNode
{
    OpKind kind = OpKind::Spmm;
    TensorId out;  ///< produced tensor (unique across the graph)
    /** Spmm: the sparse operand; DenseMm: the produced dense left matrix;
     *  Elementwise/Concat: first input. */
    TensorId a;
    /** Spmm/DenseMm: the dense operand streamed column by column;
     *  binary Elementwise/Concat: second input. Empty for ReLU. */
    TensorId b;
    TdqKind tdq = TdqKind::Tdq2OmegaCsc;  ///< Spmm distribution path
    EwKind ew = EwKind::Relu;
    double alpha = 1.0;  ///< AddScaled coefficient
    std::string label;   ///< stats label; defaults to `out`

    /** True when the node runs on the SpmmEngine, producing SpmmStats. */
    bool costed() const
    {
        return kind == OpKind::Spmm || kind == OpKind::DenseMm ||
               kind == OpKind::Spgemm;
    }

    /** True for single-input nodes. */
    bool unary() const
    {
        return kind == OpKind::Elementwise && ew == EwKind::Relu;
    }
};

/**
 * An immutable workload DAG. Nodes may be stored in any order; schedule()
 * returns a deterministic topological order (Kahn's algorithm with
 * insertion-index tie-break) and validate() reports structural errors as
 * text instead of asserting.
 */
class WorkloadGraph
{
  public:
    WorkloadGraph() = default;
    WorkloadGraph(std::vector<WorkloadNode> nodes,
                  std::vector<TensorId> inputs, TensorId output)
        : nodes_(std::move(nodes)), inputs_(std::move(inputs)),
          output_(std::move(output))
    {}

    const std::vector<WorkloadNode> &nodes() const { return nodes_; }
    const std::vector<TensorId> &inputs() const { return inputs_; }
    const TensorId &output() const { return output_; }

    /**
     * Structural validation: every referenced tensor is an input or is
     * produced exactly once, arities match the node kind, the output
     * tensor exists, and the graph is acyclic. Returns an empty string
     * when well-formed, else a descriptive error.
     */
    std::string validate() const;

    /** Topological execution order (node indices). fatal() on a graph
     *  that does not validate. */
    std::vector<std::size_t> schedule() const;

  private:
    std::vector<WorkloadNode> nodes_;
    std::vector<TensorId> inputs_;
    TensorId output_;
};

/**
 * Dense semantics of an Elementwise node — the single definition shared
 * by the Session executor and the referenceEval interpreter (only the
 * costed Spmm/DenseMm paths differ between them). `b` is ignored for
 * unary nodes; fatal() on shape mismatch.
 */
DenseMatrix evalElementwise(const WorkloadNode &node, const DenseMatrix &a,
                            const DenseMatrix *b);

/** Dense semantics of a Concat node (column-wise); fatal() on mismatched
 *  row counts. Shared like evalElementwise. */
DenseMatrix evalConcat(const WorkloadNode &node, const DenseMatrix &a,
                       const DenseMatrix &b);

/**
 * Fluent construction of a WorkloadGraph. Methods return the produced
 * tensor's name so pipelines compose naturally:
 *
 *   WorkloadBuilder b;
 *   auto x  = b.input("X");
 *   auto xw = b.spmm(x, b.input("W1"), TdqKind::Tdq1DenseScan, "L1.XW");
 *   auto z  = b.spmm(b.input("A"), xw, TdqKind::Tdq2OmegaCsc, "L1.A(XW)");
 *   WorkloadGraph g = b.build(b.relu(z));
 */
class WorkloadBuilder
{
  public:
    /** Declare an externally bound tensor; idempotent per name. */
    TensorId input(const TensorId &name);

    /** Sparse x dense SPMM through the given TDQ path. */
    TensorId spmm(const TensorId &sparse, const TensorId &dense,
                  TdqKind tdq, const std::string &label = "",
                  const TensorId &out = "");

    /** Produced-dense x dense matrix multiply (zero-skipping TDQ-1). */
    TensorId denseMm(const TensorId &a, const TensorId &b,
                     const std::string &label = "",
                     const TensorId &out = "");

    /** Sparse x sparse SPGEMM with a sparse result (TDQ-2 path, §11).
     *  `b` may itself be a Spgemm node's output, so A×A powers chain. */
    TensorId spgemm(const TensorId &a, const TensorId &b,
                    const std::string &label = "",
                    const TensorId &out = "");

    TensorId relu(const TensorId &a, const TensorId &out = "");
    TensorId addScaled(const TensorId &a, const TensorId &b, double alpha,
                       const TensorId &out = "");
    TensorId mean(const TensorId &a, const TensorId &b,
                  const TensorId &out = "");
    TensorId concat(const TensorId &a, const TensorId &b,
                    const TensorId &out = "");

    /** Finalize with the given output tensor; fatal() if the graph does
     *  not validate. The builder may be reused afterwards. */
    WorkloadGraph build(const TensorId &output) const;

  private:
    TensorId emit(WorkloadNode node, const TensorId &out, const char *stem);

    std::vector<WorkloadNode> nodes_;
    std::vector<TensorId> inputs_;
    int autoNames_ = 0;
};

} // namespace awb::sim
