#include "sparse/convert.hpp"

namespace awb {

namespace {

/** Rebuild a COO from CSR arrays. */
CooMatrix
csrAsCoo(const CsrMatrix &a)
{
    CooMatrix coo(a.rows(), a.cols());
    for (Index i = 0; i < a.rows(); ++i) {
        for (Count k = a.rowPtr()[static_cast<std::size_t>(i)];
             k < a.rowPtr()[static_cast<std::size_t>(i) + 1]; ++k) {
            coo.add(i, a.colId()[static_cast<std::size_t>(k)],
                    a.val()[static_cast<std::size_t>(k)]);
        }
    }
    return coo;
}

/** Rebuild a COO from CSC arrays. */
CooMatrix
cscAsCoo(const CscMatrix &a)
{
    CooMatrix coo(a.rows(), a.cols());
    for (Index j = 0; j < a.cols(); ++j) {
        for (Count k = a.colPtr()[static_cast<std::size_t>(j)];
             k < a.colPtr()[static_cast<std::size_t>(j) + 1]; ++k) {
            coo.add(a.rowId()[static_cast<std::size_t>(k)], j,
                    a.val()[static_cast<std::size_t>(k)]);
        }
    }
    return coo;
}

} // namespace

CscMatrix
csrToCsc(const CsrMatrix &a)
{
    return CscMatrix::fromCoo(csrAsCoo(a));
}

CsrMatrix
cscToCsr(const CscMatrix &a)
{
    return CsrMatrix::fromCoo(cscAsCoo(a));
}

CooMatrix
denseToCoo(const DenseMatrix &a)
{
    CooMatrix coo(a.rows(), a.cols());
    for (Index i = 0; i < a.rows(); ++i)
        for (Index j = 0; j < a.cols(); ++j)
            if (a.at(i, j) != Value(0)) coo.add(i, j, a.at(i, j));
    return coo;
}

DenseMatrix
cscToDense(const CscMatrix &a)
{
    DenseMatrix d(a.rows(), a.cols());
    for (Index j = 0; j < a.cols(); ++j) {
        for (Count k = a.colPtr()[static_cast<std::size_t>(j)];
             k < a.colPtr()[static_cast<std::size_t>(j) + 1]; ++k) {
            d.at(a.rowId()[static_cast<std::size_t>(k)], j) =
                a.val()[static_cast<std::size_t>(k)];
        }
    }
    return d;
}

DenseMatrix
csrToDense(const CsrMatrix &a)
{
    DenseMatrix d(a.rows(), a.cols());
    for (Index i = 0; i < a.rows(); ++i) {
        for (Count k = a.rowPtr()[static_cast<std::size_t>(i)];
             k < a.rowPtr()[static_cast<std::size_t>(i) + 1]; ++k) {
            d.at(i, a.colId()[static_cast<std::size_t>(k)]) =
                a.val()[static_cast<std::size_t>(k)];
        }
    }
    return d;
}

DenseMatrix
cooToDense(const CooMatrix &a)
{
    DenseMatrix d(a.rows(), a.cols());
    for (const Triplet &t : a.entries()) d.at(t.row, t.col) += t.val;
    return d;
}

CscMatrix
denseToCsc(const DenseMatrix &a)
{
    return CscMatrix::fromCoo(denseToCoo(a));
}

CsrMatrix
denseToCsr(const DenseMatrix &a)
{
    return CsrMatrix::fromCoo(denseToCoo(a));
}

} // namespace awb
