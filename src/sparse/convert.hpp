/**
 * @file
 * Conversions between the sparse/dense matrix representations.
 */

#pragma once

#include "sparse/coo.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace awb {

/** CSR -> CSC (transpose of the storage, same logical matrix). */
CscMatrix csrToCsc(const CsrMatrix &a);

/** CSC -> CSR. */
CsrMatrix cscToCsr(const CscMatrix &a);

/** COO from a dense matrix (drops zeros). */
CooMatrix denseToCoo(const DenseMatrix &a);

/** Expand sparse to dense. */
DenseMatrix cscToDense(const CscMatrix &a);
DenseMatrix csrToDense(const CsrMatrix &a);
DenseMatrix cooToDense(const CooMatrix &a);

/** Dense -> CSC/CSR, dropping exact zeros. */
CscMatrix denseToCsc(const DenseMatrix &a);
CsrMatrix denseToCsr(const DenseMatrix &a);

} // namespace awb
