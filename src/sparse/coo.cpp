#include "sparse/coo.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace awb {

void
CooMatrix::add(Index r, Index c, Value v)
{
    if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
        panic("CooMatrix::add out-of-range coordinate");
    entries_.push_back({r, c, v});
}

void
CooMatrix::canonicalize()
{
    std::sort(entries_.begin(), entries_.end(),
              [](const Triplet &a, const Triplet &b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    std::vector<Triplet> merged;
    merged.reserve(entries_.size());
    for (const Triplet &t : entries_) {
        if (!merged.empty() && merged.back().row == t.row &&
            merged.back().col == t.col) {
            merged.back().val += t.val;
        } else {
            merged.push_back(t);
        }
    }
    merged.erase(std::remove_if(merged.begin(), merged.end(),
                                [](const Triplet &t) {
                                    return t.val == Value(0);
                                }),
                 merged.end());
    entries_ = std::move(merged);
}

double
CooMatrix::density() const
{
    if (rows_ == 0 || cols_ == 0) return 0.0;
    return static_cast<double>(nnz()) /
           (static_cast<double>(rows_) * static_cast<double>(cols_));
}

bool
CooMatrix::valid() const
{
    for (const Triplet &t : entries_) {
        if (t.row < 0 || t.row >= rows_ || t.col < 0 || t.col >= cols_)
            return false;
    }
    return true;
}

} // namespace awb
