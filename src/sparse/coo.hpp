/**
 * @file
 * Coordinate-format sparse matrix: the interchange format produced by the
 * graph generators and the Matrix Market reader, and the source for CSR/CSC
 * construction.
 */

#pragma once

#include <vector>

#include "common/types.hpp"

namespace awb {

/** One non-zero entry. */
struct Triplet
{
    Index row;
    Index col;
    Value val;
};

/**
 * Sparse matrix as an unordered list of (row, col, value) triplets.
 * Duplicate coordinates are permitted until canonicalize() merges them.
 */
class CooMatrix
{
  public:
    CooMatrix() = default;
    CooMatrix(Index rows, Index cols) : rows_(rows), cols_(cols) {}

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Count nnz() const { return static_cast<Count>(entries_.size()); }

    /** Append one non-zero. Coordinates must be in range. */
    void add(Index r, Index c, Value v);

    const std::vector<Triplet> &entries() const { return entries_; }
    std::vector<Triplet> &entries() { return entries_; }

    /**
     * Sort by (row, col) and merge duplicate coordinates by summing their
     * values; entries that sum to exactly zero are dropped.
     */
    void canonicalize();

    /** Fraction of the rows*cols entries that are non-zero. */
    double density() const;

    /** True if every stored coordinate is within bounds. */
    bool valid() const;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Triplet> entries_;
};

} // namespace awb
