#include "sparse/csc.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "sparse/coo.hpp"

namespace awb {

std::vector<Count>
CscMatrix::rowNnz() const
{
    std::vector<Count> counts(static_cast<std::size_t>(rows_), 0);
    for (Index r : rowId_) ++counts[static_cast<std::size_t>(r)];
    return counts;
}

double
CscMatrix::density() const
{
    if (rows_ == 0 || cols_ == 0) return 0.0;
    return static_cast<double>(nnz()) /
           (static_cast<double>(rows_) * static_cast<double>(cols_));
}

bool
CscMatrix::valid() const
{
    if (colPtr_.size() != static_cast<std::size_t>(cols_) + 1) return false;
    if (colPtr_.front() != 0) return false;
    if (colPtr_.back() != nnz()) return false;
    for (Index j = 0; j < cols_; ++j) {
        auto lo = colPtr_[static_cast<std::size_t>(j)];
        auto hi = colPtr_[static_cast<std::size_t>(j) + 1];
        if (lo > hi) return false;
        for (Count k = lo; k < hi; ++k) {
            Index r = rowId_[static_cast<std::size_t>(k)];
            if (r < 0 || r >= rows_) return false;
            if (k > lo && rowId_[static_cast<std::size_t>(k - 1)] >= r)
                return false;
        }
    }
    return true;
}

CscMatrix
CscMatrix::fromCoo(const CooMatrix &coo)
{
    CscMatrix m(coo.rows(), coo.cols());
    const auto &ent = coo.entries();
    // Count per-column occupancy.
    for (const Triplet &t : ent)
        ++m.colPtr_[static_cast<std::size_t>(t.col) + 1];
    for (std::size_t j = 1; j < m.colPtr_.size(); ++j)
        m.colPtr_[j] += m.colPtr_[j - 1];
    m.rowId_.resize(ent.size());
    m.val_.resize(ent.size());
    std::vector<Count> cursor(m.colPtr_.begin(), m.colPtr_.end() - 1);
    for (const Triplet &t : ent) {
        Count k = cursor[static_cast<std::size_t>(t.col)]++;
        m.rowId_[static_cast<std::size_t>(k)] = t.row;
        m.val_[static_cast<std::size_t>(k)] = t.val;
    }
    // Sort each column by row index (COO canonicalization already sorts by
    // (row, col), which makes the scatter above row-ordered per column, but
    // we do not rely on the caller having canonicalized).
    for (Index j = 0; j < m.cols_; ++j) {
        auto lo = m.colPtr_[static_cast<std::size_t>(j)];
        auto hi = m.colPtr_[static_cast<std::size_t>(j) + 1];
        std::vector<std::pair<Index, Value>> tmp;
        tmp.reserve(static_cast<std::size_t>(hi - lo));
        for (Count k = lo; k < hi; ++k)
            tmp.emplace_back(m.rowId_[static_cast<std::size_t>(k)],
                             m.val_[static_cast<std::size_t>(k)]);
        std::sort(tmp.begin(), tmp.end());
        for (Count k = lo; k < hi; ++k) {
            m.rowId_[static_cast<std::size_t>(k)] =
                tmp[static_cast<std::size_t>(k - lo)].first;
            m.val_[static_cast<std::size_t>(k)] =
                tmp[static_cast<std::size_t>(k - lo)].second;
        }
    }
    return m;
}

CscMatrix
CscMatrix::fromParts(Index rows, Index cols, std::vector<Count> col_ptr,
                     std::vector<Index> row_id, std::vector<Value> val)
{
    CscMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.colPtr_ = std::move(col_ptr);
    m.rowId_ = std::move(row_id);
    m.val_ = std::move(val);
    if (!m.valid()) panic("CscMatrix::fromParts: invalid structure");
    return m;
}

} // namespace awb
