/**
 * @file
 * Compressed-Sparse-Column matrix — the storage format of the ultra-sparse
 * adjacency matrix A in the accelerator (paper Figure 4). TDQ-2 streams the
 * val/rowId arrays column by column through the Omega network.
 */

#pragma once

#include <vector>

#include "common/types.hpp"

namespace awb {

class CooMatrix;

/**
 * CSC sparse matrix: colPtr has cols()+1 entries; the non-zeros of column j
 * occupy [colPtr[j], colPtr[j+1]) in rowId/val, sorted by row within each
 * column.
 */
class CscMatrix
{
  public:
    CscMatrix() = default;

    /** Build an empty rows x cols matrix (all-zero). */
    CscMatrix(Index rows, Index cols)
        : rows_(rows), cols_(cols),
          colPtr_(static_cast<std::size_t>(cols) + 1, 0)
    {}

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Count nnz() const { return static_cast<Count>(val_.size()); }

    const std::vector<Count> &colPtr() const { return colPtr_; }
    const std::vector<Index> &rowId() const { return rowId_; }
    const std::vector<Value> &val() const { return val_; }

    /** Number of non-zeros in column j. */
    Count
    colNnz(Index j) const
    {
        return colPtr_[static_cast<std::size_t>(j) + 1] -
               colPtr_[static_cast<std::size_t>(j)];
    }

    /** Number of non-zeros in each row (the Fig. 1/13 distribution). */
    std::vector<Count> rowNnz() const;

    /** Fraction of entries that are non-zero. */
    double density() const;

    /** Validate the structural invariants (monotone colPtr, sorted rows). */
    bool valid() const;

    /** Construct from a canonicalized COO matrix. */
    static CscMatrix fromCoo(const CooMatrix &coo);

    /** Raw-array constructor used by converters; takes ownership. */
    static CscMatrix fromParts(Index rows, Index cols,
                               std::vector<Count> col_ptr,
                               std::vector<Index> row_id,
                               std::vector<Value> val);

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Count> colPtr_;
    std::vector<Index> rowId_;
    std::vector<Value> val_;
};

} // namespace awb
