#include "sparse/csr.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "sparse/coo.hpp"

namespace awb {

double
CsrMatrix::density() const
{
    if (rows_ == 0 || cols_ == 0) return 0.0;
    return static_cast<double>(nnz()) /
           (static_cast<double>(rows_) * static_cast<double>(cols_));
}

bool
CsrMatrix::valid() const
{
    if (rowPtr_.size() != static_cast<std::size_t>(rows_) + 1) return false;
    if (rowPtr_.front() != 0) return false;
    if (rowPtr_.back() != nnz()) return false;
    for (Index i = 0; i < rows_; ++i) {
        auto lo = rowPtr_[static_cast<std::size_t>(i)];
        auto hi = rowPtr_[static_cast<std::size_t>(i) + 1];
        if (lo > hi) return false;
        for (Count k = lo; k < hi; ++k) {
            Index c = colId_[static_cast<std::size_t>(k)];
            if (c < 0 || c >= cols_) return false;
            if (k > lo && colId_[static_cast<std::size_t>(k - 1)] >= c)
                return false;
        }
    }
    return true;
}

CsrMatrix
CsrMatrix::fromCoo(const CooMatrix &coo)
{
    CsrMatrix m(coo.rows(), coo.cols());
    const auto &ent = coo.entries();
    for (const Triplet &t : ent)
        ++m.rowPtr_[static_cast<std::size_t>(t.row) + 1];
    for (std::size_t i = 1; i < m.rowPtr_.size(); ++i)
        m.rowPtr_[i] += m.rowPtr_[i - 1];
    m.colId_.resize(ent.size());
    m.val_.resize(ent.size());
    std::vector<Count> cursor(m.rowPtr_.begin(), m.rowPtr_.end() - 1);
    for (const Triplet &t : ent) {
        Count k = cursor[static_cast<std::size_t>(t.row)]++;
        m.colId_[static_cast<std::size_t>(k)] = t.col;
        m.val_[static_cast<std::size_t>(k)] = t.val;
    }
    for (Index i = 0; i < m.rows_; ++i) {
        auto lo = m.rowPtr_[static_cast<std::size_t>(i)];
        auto hi = m.rowPtr_[static_cast<std::size_t>(i) + 1];
        std::vector<std::pair<Index, Value>> tmp;
        tmp.reserve(static_cast<std::size_t>(hi - lo));
        for (Count k = lo; k < hi; ++k)
            tmp.emplace_back(m.colId_[static_cast<std::size_t>(k)],
                             m.val_[static_cast<std::size_t>(k)]);
        std::sort(tmp.begin(), tmp.end());
        for (Count k = lo; k < hi; ++k) {
            m.colId_[static_cast<std::size_t>(k)] =
                tmp[static_cast<std::size_t>(k - lo)].first;
            m.val_[static_cast<std::size_t>(k)] =
                tmp[static_cast<std::size_t>(k - lo)].second;
        }
    }
    return m;
}

CsrMatrix
CsrMatrix::fromParts(Index rows, Index cols, std::vector<Count> row_ptr,
                     std::vector<Index> col_id, std::vector<Value> val)
{
    CsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.rowPtr_ = std::move(row_ptr);
    m.colId_ = std::move(col_id);
    m.val_ = std::move(val);
    if (!m.valid()) panic("CsrMatrix::fromParts: invalid structure");
    return m;
}

} // namespace awb
