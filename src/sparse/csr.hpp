/**
 * @file
 * Compressed-Sparse-Row matrix. Used by the reference software SpMM (the
 * CPU baseline of Table 3) and by row-oriented analyses such as the
 * per-row non-zero histograms of Figures 1 and 13.
 */

#pragma once

#include <vector>

#include "common/types.hpp"

namespace awb {

class CooMatrix;

/**
 * CSR sparse matrix: rowPtr has rows()+1 entries; the non-zeros of row i
 * occupy [rowPtr[i], rowPtr[i+1]) in colId/val, sorted by column within
 * each row.
 */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    CsrMatrix(Index rows, Index cols)
        : rows_(rows), cols_(cols),
          rowPtr_(static_cast<std::size_t>(rows) + 1, 0)
    {}

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Count nnz() const { return static_cast<Count>(val_.size()); }

    const std::vector<Count> &rowPtr() const { return rowPtr_; }
    const std::vector<Index> &colId() const { return colId_; }
    const std::vector<Value> &val() const { return val_; }

    /** Number of non-zeros in row i. */
    Count
    rowNnz(Index i) const
    {
        return rowPtr_[static_cast<std::size_t>(i) + 1] -
               rowPtr_[static_cast<std::size_t>(i)];
    }

    double density() const;

    /** Validate structural invariants. */
    bool valid() const;

    static CsrMatrix fromCoo(const CooMatrix &coo);

    static CsrMatrix fromParts(Index rows, Index cols,
                               std::vector<Count> row_ptr,
                               std::vector<Index> col_id,
                               std::vector<Value> val);

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Count> rowPtr_;
    std::vector<Index> colId_;
    std::vector<Value> val_;
};

} // namespace awb
