#include "sparse/dense.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace awb {

Count
DenseMatrix::nnz() const
{
    Count n = 0;
    for (Value v : data_)
        if (v != Value(0)) ++n;
    return n;
}

double
DenseMatrix::density() const
{
    if (data_.empty()) return 0.0;
    return static_cast<double>(nnz()) / static_cast<double>(data_.size());
}

void
DenseMatrix::clear()
{
    std::fill(data_.begin(), data_.end(), Value(0));
}

void
DenseMatrix::fillUniform(Rng &rng, Value lo, Value hi)
{
    for (Value &v : data_) v = rng.nextFloat(lo, hi);
}

void
DenseMatrix::fillSparse(Rng &rng, double density, Value lo, Value hi)
{
    for (Value &v : data_) {
        if (!rng.nextBool(density)) {
            v = Value(0);
            continue;
        }
        v = rng.nextFloat(lo, hi);
        if (v == Value(0)) v = (hi != Value(0)) ? hi : Value(1);
    }
}

void
DenseMatrix::relu()
{
    for (Value &v : data_) v = std::max(v, Value(0));
}

double
DenseMatrix::maxAbsDiff(const DenseMatrix &other) const
{
    if (!sameShape(other))
        panic("maxAbsDiff on mismatched shapes");
    double m = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::fabs(static_cast<double>(data_[i]) -
                                  static_cast<double>(other.data()[i])));
    return m;
}

DenseMatrix
multiply(const DenseMatrix &a, const DenseMatrix &b)
{
    if (a.cols() != b.rows())
        panic("dense multiply: inner dimensions differ");
    DenseMatrix c(a.rows(), b.cols());
    for (Index i = 0; i < a.rows(); ++i) {
        for (Index k = 0; k < a.cols(); ++k) {
            Value aik = a.at(i, k);
            if (aik == Value(0)) continue;
            const Value *brow = b.rowPtr(k);
            Value *crow = c.rowPtr(i);
            for (Index j = 0; j < b.cols(); ++j)
                crow[j] += aik * brow[j];
        }
    }
    return c;
}

} // namespace awb
