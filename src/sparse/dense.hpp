/**
 * @file
 * Row-major dense matrix, the representation for feature matrices X,
 * weight matrices W and SPMM results in the reference model.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace awb {

/**
 * A rows x cols dense matrix of Value stored row-major.
 *
 * The GCN feature matrices X are "general sparse" in the paper but stored
 * in dense format by the hardware (TDQ-1 consumes them densely); this class
 * is therefore also used for sparse-in-content feature matrices.
 */
class DenseMatrix
{
  public:
    DenseMatrix() = default;

    /** Create a zero-initialized rows x cols matrix. */
    DenseMatrix(Index rows, Index cols)
        : rows_(rows), cols_(cols),
          data_(static_cast<std::size_t>(rows) *
                    static_cast<std::size_t>(cols),
                Value(0))
    {}

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    Value &
    at(Index r, Index c)
    {
        return data_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(cols_) +
                     static_cast<std::size_t>(c)];
    }

    Value
    at(Index r, Index c) const
    {
        return data_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(cols_) +
                     static_cast<std::size_t>(c)];
    }

    /** Pointer to the start of row r. */
    Value *rowPtr(Index r)
    {
        return data_.data() + static_cast<std::size_t>(r) * cols_;
    }
    const Value *rowPtr(Index r) const
    {
        return data_.data() + static_cast<std::size_t>(r) * cols_;
    }

    const std::vector<Value> &data() const { return data_; }
    std::vector<Value> &data() { return data_; }

    /** Number of non-zero entries. */
    Count nnz() const;

    /** Fraction of entries that are non-zero, in [0, 1]. */
    double density() const;

    /** Set all entries to zero. */
    void clear();

    /** Fill with uniform random values in [lo, hi). */
    void fillUniform(Rng &rng, Value lo, Value hi);

    /**
     * Fill so that approximately `density` of entries are non-zero
     * (non-zeros uniform in [lo, hi), rest zero). Used to synthesize the
     * general-sparse feature matrices of Table 1.
     */
    void fillSparse(Rng &rng, double density, Value lo, Value hi);

    /** Elementwise ReLU in place. */
    void relu();

    /** Max absolute difference against another matrix of the same shape. */
    double maxAbsDiff(const DenseMatrix &other) const;

    bool
    sameShape(const DenseMatrix &o) const
    {
        return rows_ == o.rows_ && cols_ == o.cols_;
    }

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Value> data_;
};

/** Reference dense GEMM: C = A * B. Shapes must agree. */
DenseMatrix multiply(const DenseMatrix &a, const DenseMatrix &b);

} // namespace awb
