#include "sparse/mm_io.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/log.hpp"

namespace awb {

namespace {

/** getline that strips a trailing '\r' (CRLF files read on POSIX). */
bool
getlineStripped(std::istream &in, std::string &line)
{
    if (!std::getline(in, line)) return false;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return true;
}

/** Whitespace-only lines carry no entry and must be skipped, not parsed. */
bool
isBlank(const std::string &line)
{
    return line.find_first_not_of(" \t") == std::string::npos;
}

} // namespace

CooMatrix
readMatrixMarket(std::istream &in)
{
    std::string line;
    if (!getlineStripped(in, line))
        fatal("MatrixMarket: empty input");
    std::istringstream hdr(line);
    std::string banner, object, fmt, field, symmetry;
    hdr >> banner >> object >> fmt >> field >> symmetry;
    if (banner != "%%MatrixMarket" || object != "matrix")
        fatal("MatrixMarket: bad banner '" + line + "'");
    if (fmt != "coordinate")
        fatal("MatrixMarket: only coordinate format supported");
    bool pattern = (field == "pattern");
    if (field != "real" && field != "integer" && !pattern)
        fatal("MatrixMarket: unsupported field '" + field + "'");
    bool symmetric = (symmetry == "symmetric");
    if (symmetry != "general" && !symmetric)
        fatal("MatrixMarket: unsupported symmetry '" + symmetry + "'");

    // Skip comments and blank lines (writers that emit a separator line
    // before the size line are within the format).
    do {
        if (!getlineStripped(in, line))
            fatal("MatrixMarket: missing size line");
    } while (isBlank(line) || line[0] == '%');

    std::istringstream size(line);
    long rows = 0, cols = 0, nnz = 0;
    // Zero-dimension and zero-nnz matrices are within the format (and
    // are what writeMatrixMarket emits for them) — only negative sizes
    // and unparseable lines are errors. The explicit stream check
    // matters: a failed extraction leaves zeros, which are now legal.
    if (!(size >> rows >> cols >> nnz) || rows < 0 || cols < 0 ||
        nnz < 0)
        fatal("MatrixMarket: bad size line '" + line + "'");
    if (nnz > 0 && (rows == 0 || cols == 0))
        fatal("MatrixMarket: entries in a zero-dimension matrix: '" +
              line + "'");

    CooMatrix m(static_cast<Index>(rows), static_cast<Index>(cols));
    for (long e = 0; e < nnz; ++e) {
        if (!getlineStripped(in, line))
            fatal("MatrixMarket: truncated entry list");
        if (isBlank(line) || line[0] == '%') { --e; continue; }
        std::istringstream es(line);
        long r = 0, c = 0;
        double v = 1.0;
        es >> r >> c;
        if (!pattern) es >> v;
        if (r < 1 || r > rows || c < 1 || c > cols)
            fatal("MatrixMarket: entry out of range: '" + line + "'");
        m.add(static_cast<Index>(r - 1), static_cast<Index>(c - 1),
              static_cast<Value>(v));
        if (symmetric && r != c) {
            m.add(static_cast<Index>(c - 1), static_cast<Index>(r - 1),
                  static_cast<Value>(v));
        }
    }
    m.canonicalize();
    return m;
}

CooMatrix
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) fatal("cannot open Matrix Market file: " + path);
    return readMatrixMarket(in);
}

void
writeMatrixMarket(std::ostream &out, const CooMatrix &m)
{
    // max_digits10 makes the text round-trip exact: the default
    // 6-significant-digit precision silently perturbs any value whose
    // decimal expansion is longer (1e-7-scale deltas, subnormals).
    const std::streamsize old_precision = out.precision(
        std::numeric_limits<Value>::max_digits10);
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
    for (const Triplet &t : m.entries())
        out << (t.row + 1) << " " << (t.col + 1) << " " << t.val << "\n";
    out.precision(old_precision);
}

void
writeMatrixMarketFile(const std::string &path, const CooMatrix &m)
{
    std::ofstream out(path);
    if (!out) fatal("cannot open for write: " + path);
    writeMatrixMarket(out, m);
}

} // namespace awb
