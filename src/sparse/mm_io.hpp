/**
 * @file
 * Matrix Market (.mtx) reader/writer so users can run the accelerator on
 * real graph datasets (e.g. the SuiteSparse copies of Cora/Pubmed) instead
 * of the synthetic equivalents bundled with this repository.
 *
 * Supports the `matrix coordinate real/integer/pattern general/symmetric`
 * subset, which covers published graph adjacency matrices.
 */

#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"

namespace awb {

/** Parse a Matrix Market stream into COO. Throws via fatal() on bad input. */
CooMatrix readMatrixMarket(std::istream &in);

/** Load a .mtx file. */
CooMatrix readMatrixMarketFile(const std::string &path);

/** Write COO as `matrix coordinate real general`. */
void writeMatrixMarket(std::ostream &out, const CooMatrix &m);

/** Save to a .mtx file. */
void writeMatrixMarketFile(const std::string &path, const CooMatrix &m);

} // namespace awb
