#include "sparse/spmm.hpp"

#include "common/log.hpp"

namespace awb {

DenseMatrix
spmmCsc(const CscMatrix &a, const DenseMatrix &b)
{
    if (a.cols() != b.rows()) panic("spmmCsc: inner dimensions differ");
    DenseMatrix c(a.rows(), b.cols());
    // Stream B element-by-element: b(j, k) broadcasts to column j of A
    // (paper Eq. 4). Loop order chosen for cache locality on C.
    for (Index k = 0; k < b.cols(); ++k) {
        for (Index j = 0; j < a.cols(); ++j) {
            Value bjk = b.at(j, k);
            if (bjk == Value(0)) continue;
            for (Count p = a.colPtr()[static_cast<std::size_t>(j)];
                 p < a.colPtr()[static_cast<std::size_t>(j) + 1]; ++p) {
                c.at(a.rowId()[static_cast<std::size_t>(p)], k) +=
                    a.val()[static_cast<std::size_t>(p)] * bjk;
            }
        }
    }
    return c;
}

DenseMatrix
spmmCsr(const CsrMatrix &a, const DenseMatrix &b)
{
    if (a.cols() != b.rows()) panic("spmmCsr: inner dimensions differ");
    DenseMatrix c(a.rows(), b.cols());
    for (Index i = 0; i < a.rows(); ++i) {
        Value *crow = c.rowPtr(i);
        for (Count p = a.rowPtr()[static_cast<std::size_t>(i)];
             p < a.rowPtr()[static_cast<std::size_t>(i) + 1]; ++p) {
            Index j = a.colId()[static_cast<std::size_t>(p)];
            Value av = a.val()[static_cast<std::size_t>(p)];
            const Value *brow = b.rowPtr(j);
            for (Index k = 0; k < b.cols(); ++k) crow[k] += av * brow[k];
        }
    }
    return c;
}

DenseMatrix
spmmDenseStored(const DenseMatrix &a, const DenseMatrix &b)
{
    if (a.cols() != b.rows())
        panic("spmmDenseStored: inner dimensions differ");
    DenseMatrix c(a.rows(), b.cols());
    for (Index i = 0; i < a.rows(); ++i) {
        Value *crow = c.rowPtr(i);
        for (Index j = 0; j < a.cols(); ++j) {
            Value aij = a.at(i, j);
            if (aij == Value(0)) continue;
            const Value *brow = b.rowPtr(j);
            for (Index k = 0; k < b.cols(); ++k) crow[k] += aij * brow[k];
        }
    }
    return c;
}

Count
spmmMultCount(const CscMatrix &a, const DenseMatrix &b)
{
    return a.nnz() * static_cast<Count>(b.cols());
}

Count
spmmMultCount(const DenseMatrix &a, const DenseMatrix &b)
{
    return a.nnz() * static_cast<Count>(b.cols());
}

} // namespace awb
