#include "sparse/spmm.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/parallel.hpp"

namespace {

// Chunk size that depends only on the trip count, never on the worker
// count — required for deterministic parallelFor boundaries.
std::size_t
grainFor(std::size_t total)
{
    return std::max<std::size_t>(1, total / 256);
}

} // namespace

namespace awb {

DenseMatrix
spmmCsc(const CscMatrix &a, const DenseMatrix &b)
{
    if (a.cols() != b.rows()) panic("spmmCsc: inner dimensions differ");
    DenseMatrix c(a.rows(), b.cols());
    // Stream B element-by-element: b(j, k) broadcasts to column j of A
    // (paper Eq. 4). Loop order chosen for cache locality on C.
    // Each k writes column k of C only, so chunks over k are disjoint
    // and the per-element accumulation order (ascending j, then stream
    // order within the column) is unchanged at any thread count.
    auto body = [&](std::size_t kb, std::size_t ke) {
        for (Index k = static_cast<Index>(kb);
             k < static_cast<Index>(ke); ++k) {
            for (Index j = 0; j < a.cols(); ++j) {
                Value bjk = b.at(j, k);
                if (bjk == Value(0)) continue;
                for (Count p = a.colPtr()[static_cast<std::size_t>(j)];
                     p < a.colPtr()[static_cast<std::size_t>(j) + 1]; ++p) {
                    c.at(a.rowId()[static_cast<std::size_t>(p)], k) +=
                        a.val()[static_cast<std::size_t>(p)] * bjk;
                }
            }
        }
    };
    const std::size_t total = static_cast<std::size_t>(b.cols());
    if (shouldParallelize(a.nnz() * static_cast<Count>(b.cols())))
        parallelFor(total, grainFor(total), body);
    else
        body(0, total);
    return c;
}

DenseMatrix
spmmCsr(const CsrMatrix &a, const DenseMatrix &b)
{
    if (a.cols() != b.rows()) panic("spmmCsr: inner dimensions differ");
    DenseMatrix c(a.rows(), b.cols());
    // Each row of C is produced by exactly one row of A: chunks over
    // rows are disjoint and in-row accumulation order is unchanged.
    auto body = [&](std::size_t ib, std::size_t ie) {
        for (Index i = static_cast<Index>(ib);
             i < static_cast<Index>(ie); ++i) {
            Value *crow = c.rowPtr(i);
            for (Count p = a.rowPtr()[static_cast<std::size_t>(i)];
                 p < a.rowPtr()[static_cast<std::size_t>(i) + 1]; ++p) {
                Index j = a.colId()[static_cast<std::size_t>(p)];
                Value av = a.val()[static_cast<std::size_t>(p)];
                const Value *brow = b.rowPtr(j);
                for (Index k = 0; k < b.cols(); ++k) crow[k] += av * brow[k];
            }
        }
    };
    const std::size_t total = static_cast<std::size_t>(a.rows());
    if (shouldParallelize(a.nnz() * static_cast<Count>(b.cols())))
        parallelFor(total, grainFor(total), body);
    else
        body(0, total);
    return c;
}

DenseMatrix
spmmDenseStored(const DenseMatrix &a, const DenseMatrix &b)
{
    if (a.cols() != b.rows())
        panic("spmmDenseStored: inner dimensions differ");
    DenseMatrix c(a.rows(), b.cols());
    auto body = [&](std::size_t ib, std::size_t ie) {
        for (Index i = static_cast<Index>(ib);
             i < static_cast<Index>(ie); ++i) {
            Value *crow = c.rowPtr(i);
            for (Index j = 0; j < a.cols(); ++j) {
                Value aij = a.at(i, j);
                if (aij == Value(0)) continue;
                const Value *brow = b.rowPtr(j);
                for (Index k = 0; k < b.cols(); ++k) crow[k] += aij * brow[k];
            }
        }
    };
    const std::size_t total = static_cast<std::size_t>(a.rows());
    if (shouldParallelize(a.nnz() * static_cast<Count>(b.cols())))
        parallelFor(total, grainFor(total), body);
    else
        body(0, total);
    return c;
}

Count
spmmMultCount(const CscMatrix &a, const DenseMatrix &b)
{
    return a.nnz() * static_cast<Count>(b.cols());
}

Count
spmmMultCount(const DenseMatrix &a, const DenseMatrix &b)
{
    return a.nnz() * static_cast<Count>(b.cols());
}

} // namespace awb
