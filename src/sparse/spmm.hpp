/**
 * @file
 * Reference (software) sparse-matrix multiplication kernels.
 *
 * These are the functional golden models against which the cycle-accurate
 * accelerator is validated, and the computation measured for the CPU row of
 * Table 3. The column-streaming variant mirrors the paper's Eq. 4
 * formulation: C_col(k) = sum_j A_col(j) * b(j, k).
 */

#pragma once

#include "common/types.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace awb {

/** C = A * B with A in CSC form (column-major streaming as in Eq. 4). */
DenseMatrix spmmCsc(const CscMatrix &a, const DenseMatrix &b);

/** C = A * B with A in CSR form (classic row-major kernel). */
DenseMatrix spmmCsr(const CsrMatrix &a, const DenseMatrix &b);

/**
 * C = A * B where A is sparse-in-content but stored densely (the X x W
 * SPMM of a GCN layer: X general-sparse, W dense). Zero entries of A are
 * skipped, matching the hardware's zero-skipping TDQ-1 path.
 */
DenseMatrix spmmDenseStored(const DenseMatrix &a, const DenseMatrix &b);

/** Number of scalar multiplications spmmCsc would perform: nnz(A)*cols(B). */
Count spmmMultCount(const CscMatrix &a, const DenseMatrix &b);

/** Number of scalar multiplications skipping zeros of dense-stored A. */
Count spmmMultCount(const DenseMatrix &a, const DenseMatrix &b);

} // namespace awb
