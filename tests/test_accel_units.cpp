/**
 * @file
 * Unit tests for the accelerator building blocks: configuration factory,
 * row partition, PE (RaW hazards, arbitration, accumulation), local
 * sharing policy, and the remote-switching controller (Eq. 5 dynamics and
 * convergence).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "accel/config.hpp"
#include "accel/local_share.hpp"
#include "accel/pe.hpp"
#include "accel/rebalance.hpp"
#include "accel/row_map.hpp"

using namespace awb;

TEST(Config, DesignPoints)
{
    auto base = makeConfig(Design::Baseline, 64);
    EXPECT_EQ(base.sharingHops, 0);
    EXPECT_FALSE(base.remoteSwitching);

    auto a = makeConfig(Design::LocalA, 64);
    EXPECT_EQ(a.sharingHops, 1);
    EXPECT_FALSE(a.remoteSwitching);

    auto b = makeConfig(Design::LocalB, 64);
    EXPECT_EQ(b.sharingHops, 2);

    auto c = makeConfig(Design::RemoteC, 64);
    EXPECT_EQ(c.sharingHops, 1);
    EXPECT_TRUE(c.remoteSwitching);

    auto d = makeConfig(Design::RemoteD, 64);
    EXPECT_EQ(d.sharingHops, 2);
    EXPECT_TRUE(d.remoteSwitching);

    auto eie = makeConfig(Design::EieLike, 64);
    EXPECT_EQ(eie.numQueuesPerPe, 1);
    EXPECT_FALSE(eie.rebalancing());
}

TEST(Config, NellHopOverride)
{
    // Nell uses 2/3-hop instead of 1/2-hop (paper §5.2).
    auto a = makeConfig(Design::LocalA, 64, 2);
    EXPECT_EQ(a.sharingHops, 2);
    auto d = makeConfig(Design::RemoteD, 64, 2);
    EXPECT_EQ(d.sharingHops, 3);
}

TEST(RowPartition, BlockedAssignsContiguous)
{
    RowPartition part(16, 8, RowMapPolicy::Blocked);
    // Paper Fig. 6: each two consecutive rows to one PE.
    for (Index r = 0; r < 16; ++r) EXPECT_EQ(part.owner(r), r / 2);
    EXPECT_TRUE(part.consistent());
}

TEST(RowPartition, CyclicAssignsRoundRobin)
{
    RowPartition part(16, 4, RowMapPolicy::Cyclic);
    for (Index r = 0; r < 16; ++r) EXPECT_EQ(part.owner(r), r % 4);
}

TEST(RowPartition, MoveAndWorkload)
{
    RowPartition part(8, 2, RowMapPolicy::Blocked);
    std::vector<Count> work = {5, 5, 5, 5, 1, 1, 1, 1};
    auto w = part.workload(work);
    EXPECT_EQ(w[0], 20);
    EXPECT_EQ(w[1], 4);
    part.moveRow(0, 1);
    w = part.workload(work);
    EXPECT_EQ(w[0], 15);
    EXPECT_EQ(w[1], 9);
    EXPECT_TRUE(part.consistent());
}

TEST(RowPartition, SwapRows)
{
    RowPartition part(8, 2, RowMapPolicy::Blocked);
    part.swapRows({0, 1}, {4, 5}, 0, 1);
    EXPECT_EQ(part.owner(0), 1);
    EXPECT_EQ(part.owner(4), 0);
    EXPECT_TRUE(part.consistent());
    EXPECT_EQ(part.rowsOf(0).size(), 4u);
    EXPECT_EQ(part.rowsOf(1).size(), 4u);
}

TEST(Pe, ExecutesAndAccumulates)
{
    Pe pe(0, 4, 0, 4);
    std::vector<Value> acc(4, 0.0f);
    pe.enqueue({0, 2.0f, 3.0f, 0});
    pe.enqueue({1, 1.0f, 5.0f, 0});
    for (Cycle t = 0; t < 10; ++t) pe.tick(t, acc);
    EXPECT_FLOAT_EQ(acc[0], 6.0f);
    EXPECT_FLOAT_EQ(acc[1], 5.0f);
    EXPECT_TRUE(pe.drained(10));
    EXPECT_EQ(pe.tasksThisRound(), 2);
}

TEST(Pe, RawHazardStallsSameRow)
{
    // Two tasks on the same row with MAC latency 4: the second must wait
    // for the first to retire -> total ~latency+2 cycles, not 2.
    Pe pe(0, 4, 0, 4);
    std::vector<Value> acc(1, 0.0f);
    pe.enqueue({0, 1.0f, 1.0f, 0});
    pe.enqueue({0, 1.0f, 1.0f, 0});
    Cycle done = -1;
    for (Cycle t = 0; t < 20; ++t) {
        pe.tick(t, acc);
        if (done < 0 && pe.tasksThisRound() == 2) done = t;
    }
    EXPECT_FLOAT_EQ(acc[0], 2.0f);
    EXPECT_GE(done, 4);  // issue at t=0, retire at t=4, reissue at t>=4
    EXPECT_GT(pe.stats().find("rawStallCycles")->value(), 0);
}

TEST(Pe, DifferentRowsPipelineBackToBack)
{
    // Independent rows issue 1/cycle despite the 4-cycle MAC latency.
    Pe pe(0, 4, 0, 4);
    std::vector<Value> acc(8, 0.0f);
    for (Index r = 0; r < 8; ++r) pe.enqueue({r, 1.0f, 1.0f, 0});
    Cycle t = 0;
    for (; t < 30 && pe.tasksThisRound() < 8; ++t) pe.tick(t, acc);
    EXPECT_EQ(pe.tasksThisRound(), 8);
    EXPECT_LE(t, 9);  // 8 issues + at most one skew cycle
}

TEST(Pe, MultipleQueuesDodgeHazard)
{
    // With 2 queues, a same-row pair in one queue does not block an
    // independent task in the other queue.
    Pe pe(0, 2, 0, 8);
    std::vector<Value> acc(4, 0.0f);
    pe.enqueue({0, 1.0f, 1.0f, 0});  // queue A
    pe.enqueue({0, 1.0f, 1.0f, 0});  // queue B (shortest-queue placement)
    pe.enqueue({1, 1.0f, 1.0f, 0});  // queue A again
    int issued_by_cycle3 = 0;
    for (Cycle t = 0; t < 3; ++t) {
        pe.tick(t, acc);
        issued_by_cycle3 = static_cast<int>(pe.tasksThisRound());
    }
    // Cycle 0 issues row 0; cycle 1 skips the second row-0 task and
    // issues row 1 from the other queue.
    EXPECT_GE(issued_by_cycle3, 2);
}

TEST(Pe, BoundedQueueBackpressure)
{
    Pe pe(0, 1, 2, 4);
    EXPECT_TRUE(pe.enqueue({0, 1, 1, 0}));
    EXPECT_TRUE(pe.enqueue({1, 1, 1, 0}));
    EXPECT_FALSE(pe.canAccept());
    EXPECT_FALSE(pe.enqueue({2, 1, 1, 0}));
    EXPECT_EQ(pe.stats().find("enqueueRejects")->value(), 1);
}

TEST(LocalShare, PicksLeastLoadedNeighbour)
{
    std::vector<Pe> pes;
    for (int i = 0; i < 5; ++i) pes.emplace_back(i, 1, 0, 4);
    // Load PE 2 with 3 tasks, PE 1 with 1, PE 3 with 0.
    for (int i = 0; i < 3; ++i) pes[2].enqueue({0, 1, 1, 2});
    pes[1].enqueue({0, 1, 1, 1});

    LocalSharer s1(1);
    EXPECT_EQ(s1.choose(2, pes), 3);

    LocalSharer s0(0);
    EXPECT_EQ(s0.choose(2, pes), 2);  // hops=0: degenerate self
}

TEST(LocalShare, TieFavoursHome)
{
    std::vector<Pe> pes;
    for (int i = 0; i < 3; ++i) pes.emplace_back(i, 1, 0, 4);
    LocalSharer s(1);
    EXPECT_EQ(s.choose(1, pes), 1);
}

TEST(LocalShare, RespectsArrayBounds)
{
    std::vector<Pe> pes;
    for (int i = 0; i < 4; ++i) pes.emplace_back(i, 1, 0, 4);
    LocalSharer s(2);
    EXPECT_GE(s.choose(0, pes), 0);
    EXPECT_LE(s.choose(3, pes), 3);
}

TEST(LocalShare, SkipsFullPes)
{
    std::vector<Pe> pes;
    for (int i = 0; i < 3; ++i) pes.emplace_back(i, 1, 1, 4);
    pes[1].enqueue({0, 1, 1, 1});  // home full
    LocalSharer s(1);
    int got = s.choose(1, pes);
    EXPECT_NE(got, 1);
    EXPECT_GE(got, 0);
}

namespace {

/** Drive the switcher with synthetic per-round observations derived from
 *  the partition itself (work == queue-observed work). */
RoundObservation
observe(const RowPartition &part, const std::vector<Count> &row_work)
{
    RoundObservation obs;
    obs.peWork = part.workload(row_work);
    obs.drainCycle.resize(obs.peWork.size());
    for (std::size_t p = 0; p < obs.peWork.size(); ++p)
        obs.drainCycle[p] = obs.peWork[p];  // drain time ~ workload
    return obs;
}

} // namespace

namespace {

/** Remote switching in isolation: no local sharing, so the synthetic
 *  drain observations (= raw per-PE loads) match the component's
 *  contract (drainCycle is the post-sharing drain; with hops = 0 that is
 *  just the load). */
AccelConfig
remoteOnlyConfig(int pes)
{
    AccelConfig cfg = makeConfig(Design::RemoteC, pes);
    cfg.sharingHops = 0;
    return cfg;
}

} // namespace

TEST(RemoteSwitch, FirstSightingMeasuresOnly)
{
    AccelConfig cfg = remoteOnlyConfig(4);
    RowPartition part(16, 4, RowMapPolicy::Blocked);
    std::vector<Count> work(16, 1);
    for (int r = 0; r < 4; ++r) work[static_cast<std::size_t>(r)] = 50;

    RemoteSwitcher sw(cfg, 16);
    int moved = sw.observeAndAdjust(observe(part, work), work, part);
    EXPECT_EQ(moved, 0);  // Eq. 5: N_1 = 0
    EXPECT_FALSE(sw.converged());
}

TEST(RemoteSwitch, SecondRoundMovesRows)
{
    AccelConfig cfg = remoteOnlyConfig(4);
    RowPartition part(16, 4, RowMapPolicy::Blocked);
    std::vector<Count> work(16, 1);
    for (int r = 0; r < 4; ++r) work[static_cast<std::size_t>(r)] = 50;

    RemoteSwitcher sw(cfg, 16);
    sw.observeAndAdjust(observe(part, work), work, part);
    int moved = sw.observeAndAdjust(observe(part, work), work, part);
    EXPECT_GT(moved, 0);
    EXPECT_TRUE(part.consistent());
}

TEST(RemoteSwitch, ConvergesOnSkewedWorkload)
{
    AccelConfig cfg = remoteOnlyConfig(8);
    const Index rows = 64;
    RowPartition part(rows, 8, RowMapPolicy::Blocked);
    std::vector<Count> work(static_cast<std::size_t>(rows), 1);
    // One heavy block of rows on PE 0 (local imbalance the switcher must
    // spread), mild noise elsewhere.
    for (int r = 0; r < 8; ++r) work[static_cast<std::size_t>(r)] = 20;

    RemoteSwitcher sw(cfg, rows);
    auto gap = [&]() {
        auto w = part.workload(work);
        return *std::max_element(w.begin(), w.end()) -
               *std::min_element(w.begin(), w.end());
    };
    Count initial_gap = gap();
    for (int round = 0; round < 30 && !sw.converged(); ++round)
        sw.observeAndAdjust(observe(part, work), work, part);
    EXPECT_TRUE(sw.converged());
    EXPECT_LT(gap(), initial_gap / 2);
    EXPECT_TRUE(part.consistent());
}

TEST(RemoteSwitch, BalancedInputConvergesImmediately)
{
    AccelConfig cfg = remoteOnlyConfig(4);
    RowPartition part(16, 4, RowMapPolicy::Blocked);
    std::vector<Count> work(16, 3);
    RemoteSwitcher sw(cfg, 16);
    EXPECT_EQ(sw.observeAndAdjust(observe(part, work), work, part), 0);
    EXPECT_TRUE(sw.converged());
    EXPECT_EQ(sw.convergedRound(), 1);
}

TEST(RemoteSwitch, ApproximateEq5AlsoConverges)
{
    AccelConfig cfg = remoteOnlyConfig(8);
    cfg.approximateEq5 = true;
    const Index rows = 64;
    RowPartition part(rows, 8, RowMapPolicy::Blocked);
    std::vector<Count> work(static_cast<std::size_t>(rows), 1);
    for (int r = 0; r < 8; ++r) work[static_cast<std::size_t>(r)] = 20;

    RemoteSwitcher sw(cfg, rows);
    for (int round = 0; round < 40 && !sw.converged(); ++round)
        sw.observeAndAdjust(observe(part, work), work, part);
    EXPECT_TRUE(sw.converged());
}
