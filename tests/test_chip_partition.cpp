/**
 * @file
 * ChipPartition edge-case tests (DESIGN.md §9): shard extraction when
 * chips outnumber rows (empty shards), single-row shards, non-zero
 * coverage across shards, and halo-row sanity — the boundary shapes the
 * frontier kernels (DESIGN.md §11) shard through.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "accel/chip_partition.hpp"
#include "accel/policy.hpp"
#include "sparse/coo.hpp"

using namespace awb;

namespace {

CscMatrix
smallMatrix(Index rows, Index cols)
{
    CooMatrix coo(rows, cols);
    for (Index r = 0; r < rows; ++r)
        for (Index c = 0; c < cols; c += 2)
            coo.add(r, (c + r) % cols, static_cast<Value>(r + 1));
    return CscMatrix::fromCoo(coo);
}

} // namespace

TEST(ChipPartition, EmptyShardsWhenChipsExceedRows)
{
    CscMatrix a = smallMatrix(3, 5);
    AccelConfig cfg = makePolicyConfig("baseline", 8, 1);
    cfg.chips = 8;
    ChipPartition part =
        ChipPartition::build(cfg, a.rows(), a.rowNnz());

    int empty = 0;
    Index covered = 0;
    for (int c = 0; c < part.chips(); ++c) {
        const auto &rows = part.rowsOf(c);
        covered += static_cast<Index>(rows.size());
        if (!rows.empty()) continue;
        ++empty;
        // An empty shard extracts a valid 0×cols matrix and an empty
        // work slice — the degenerate shapes FrontierRunner skips.
        CscMatrix shard = part.extractRows(a, c);
        EXPECT_EQ(shard.rows(), 0);
        EXPECT_EQ(shard.cols(), a.cols());
        EXPECT_EQ(shard.nnz(), 0);
        EXPECT_TRUE(shard.valid());
        EXPECT_TRUE(part.extractWork(a.rowNnz(), c).empty());
    }
    EXPECT_GE(empty, 5);  // at most 3 of 8 shards can own a row
    EXPECT_EQ(covered, a.rows());
}

TEST(ChipPartition, SingleRowShards)
{
    CscMatrix a = smallMatrix(4, 4);
    AccelConfig cfg = makePolicyConfig("baseline", 4, 1);
    cfg.chips = 4;
    ChipPartition part =
        ChipPartition::build(cfg, a.rows(), a.rowNnz());

    const std::vector<Count> row_work = a.rowNnz();
    Count nnz_covered = 0;
    for (int c = 0; c < part.chips(); ++c) {
        ASSERT_EQ(part.rowsOf(c).size(), 1u) << c;
        const Index global = part.rowsOf(c)[0];
        EXPECT_EQ(part.chipOf(global), c);

        CscMatrix shard = part.extractRows(a, c);
        EXPECT_EQ(shard.rows(), 1);
        EXPECT_EQ(shard.cols(), a.cols());
        EXPECT_TRUE(shard.valid());
        EXPECT_EQ(shard.nnz(),
                  row_work[static_cast<std::size_t>(global)]);
        nnz_covered += shard.nnz();

        std::vector<Count> work = part.extractWork(row_work, c);
        ASSERT_EQ(work.size(), 1u);
        EXPECT_EQ(work[0], row_work[static_cast<std::size_t>(global)]);
    }
    // Every non-zero of the original lands in exactly one shard.
    EXPECT_EQ(nnz_covered, a.nnz());
    EXPECT_EQ(part.imbalance(row_work), 1.0);
}

TEST(ChipPartition, HaloRowsZeroUnshardedAndRectangular)
{
    CscMatrix square = smallMatrix(6, 6);
    AccelConfig one = makePolicyConfig("baseline", 4, 1);
    one.chips = 1;
    ChipPartition p1 =
        ChipPartition::build(one, square.rows(), square.rowNnz());
    for (Count h : p1.haloRows(square)) EXPECT_EQ(h, 0);

    // Rectangular operand: the dense operand is replicated, no halo.
    CscMatrix rect = smallMatrix(6, 4);
    AccelConfig two = makePolicyConfig("baseline", 4, 1);
    two.chips = 2;
    ChipPartition p2 =
        ChipPartition::build(two, rect.rows(), rect.rowNnz());
    for (Count h : p2.haloRows(rect)) EXPECT_EQ(h, 0);

    // Square sharded operand with cross-chip references has a halo.
    ChipPartition p3 =
        ChipPartition::build(two, square.rows(), square.rowNnz());
    std::vector<Count> halo = p3.haloRows(square);
    EXPECT_GT(std::accumulate(halo.begin(), halo.end(), Count(0)), 0);
}
