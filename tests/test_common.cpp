/**
 * @file
 * Unit tests for the common substrate: RNG determinism and distribution
 * sanity, statistics counters/histograms, and table formatting.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace awb;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.nextU32() == b.nextU32()) ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.nextBounded(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(9);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 10000; ++i) seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += r.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double sum = 0, sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double g = r.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.nextBool(0.3)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Counter, IncrementAndReset)
{
    Counter c("c");
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42);
    c.reset();
    EXPECT_EQ(c.value(), 0);
}

TEST(Histogram, SummaryStats)
{
    Histogram h("h", 0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i) h.sample(i);
    EXPECT_EQ(h.samples(), 10);
    EXPECT_DOUBLE_EQ(h.mean(), 4.5);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 9.0);
}

TEST(Histogram, BucketPlacement)
{
    Histogram h("h", 0.0, 10.0, 10);
    h.sample(0.5);
    h.sample(9.5);
    EXPECT_EQ(h.bucket(0), 1);
    EXPECT_EQ(h.bucket(9), 1);
}

TEST(Histogram, OutOfRangeClamps)
{
    Histogram h("h", 0.0, 1.0, 4);
    h.sample(-5.0);
    h.sample(42.0);
    EXPECT_EQ(h.bucket(0), 1);
    EXPECT_EQ(h.bucket(3), 1);
}

TEST(StatSet, CounterPersistence)
{
    StatSet s("pe0.");
    s.counter("busy").inc(10);
    s.counter("busy").inc(5);
    EXPECT_EQ(s.counter("busy").value(), 15);
    EXPECT_NE(s.find("busy"), nullptr);
    EXPECT_EQ(s.find("missing"), nullptr);
}

TEST(StatSet, DumpContainsPrefix)
{
    StatSet s("pe0.");
    s.counter("busy").inc(3);
    auto text = s.dump();
    EXPECT_NE(text.find("pe0.busy 3"), std::string::npos);
}

TEST(TableFormat, HumanCount)
{
    EXPECT_EQ(humanCount(999), "999");
    EXPECT_EQ(humanCount(999700), "999.7K");
    EXPECT_EQ(humanCount(62.3e6), "62.3M");
    EXPECT_EQ(humanCount(257e9), "257.0G");
}

TEST(TableFormat, Percent)
{
    EXPECT_EQ(percent(0.634), "63.4%");
    EXPECT_EQ(percent(1.0), "100.0%");
}

TEST(TableRender, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    auto s = t.render();
    EXPECT_NE(s.find("| name"), std::string::npos);
    EXPECT_NE(s.find("| longer"), std::string::npos);
    // Every line has the same width.
    std::size_t first_nl = s.find('\n');
    std::size_t w = first_nl;
    for (std::size_t pos = 0; pos < s.size();) {
        std::size_t nl = s.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        EXPECT_EQ(nl - pos, w);
        pos = nl + 1;
    }
}
