/**
 * @file
 * Unit tests of the experiment-driver subsystem: JSON document builder,
 * scenario registration, sweep-grid expansion, per-point seed derivation,
 * worker-pool determinism (same seed ⇒ byte-identical JSON regardless of
 * thread count) and the JSON schema of sweep output.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>

#include "driver/json.hpp"
#include "driver/scenario.hpp"
#include "driver/sweep.hpp"

using namespace awb;
using namespace awb::driver;

namespace {

/** A small, fast grid exercising both fidelities. */
SweepOptions
smallGrid()
{
    SweepOptions opts;
    opts.datasets = {"cora", "citeseer"};
    opts.designs = {"baseline", "remote-d"};
    opts.peCounts = {32, 64};
    opts.modes = {SweepMode::Model};
    opts.scale = 0.5;
    opts.seed = 7;
    return opts;
}

} // namespace

// ---------------------------------------------------------------- JSON

TEST(Json, ScalarsAndEscaping)
{
    Json o = Json::object();
    o.set("int", 42);
    o.set("neg", std::int64_t{-7});
    o.set("str", "a\"b\\c\nd");
    o.set("bool", true);
    o.set("null", Json());
    EXPECT_EQ(o.dump(),
              "{\"int\":42,\"neg\":-7,\"str\":\"a\\\"b\\\\c\\nd\","
              "\"bool\":true,\"null\":null}");
}

TEST(Json, UnsignedValuesRenderUnsigned)
{
    Json o = Json::object();
    o.set("seed", std::uint64_t{18446744073709551615ULL});
    EXPECT_EQ(o.dump(), "{\"seed\":18446744073709551615}");
}

TEST(Json, ObjectKeysKeepInsertionOrder)
{
    Json o = Json::object();
    o.set("zebra", 1);
    o.set("alpha", 2);
    o.set("mid", 3);
    EXPECT_EQ(o.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
}

TEST(Json, ArraysAndNesting)
{
    Json a = Json::array();
    a.push(1);
    a.push("two");
    Json o = Json::object();
    o.set("list", std::move(a));
    EXPECT_EQ(o.dump(), "{\"list\":[1,\"two\"]}");
}

TEST(Json, DoubleFormattingIsStable)
{
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(jsonNumber(1.0 / 3.0), jsonNumber(1.0 / 3.0));
    EXPECT_EQ(jsonNumber(1e300), "1e+300");
}

// ------------------------------------------------------------ registry

TEST(ScenarioRegistry, RegistrationAndLookup)
{
    auto &reg = ScenarioRegistry::instance();
    std::size_t before = reg.all().size();
    ScenarioRegistrar r({"test-scenario-a", "Test", "a test scenario",
                         [](ScenarioContext &) {}});
    EXPECT_EQ(reg.all().size(), before + 1);
    const Scenario *s = reg.find("test-scenario-a");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->figure, "Test");
    EXPECT_EQ(reg.find("no-such-scenario"), nullptr);
}

TEST(ScenarioRegistry, AllIsSortedByName)
{
    ScenarioRegistrar rz({"zz-test-scenario", "Test", "late name",
                          [](ScenarioContext &) {}});
    ScenarioRegistrar ra({"aa-test-scenario", "Test", "early name",
                          [](ScenarioContext &) {}});
    auto all = ScenarioRegistry::instance().all();
    ASSERT_GE(all.size(), 2u);
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1]->name, all[i]->name);
}

TEST(ScenarioRegistry, RunReceivesContext)
{
    std::uint64_t seen_seed = 0;
    ScenarioRegistrar r({"test-scenario-ctx", "Test", "context check",
                         [&](ScenarioContext &ctx) {
                             seen_seed = ctx.seed;
                             ctx.result.set("ran", true);
                         }});
    ScenarioContext ctx;
    ctx.seed = 99;
    ScenarioRegistry::instance().find("test-scenario-ctx")->run(ctx);
    EXPECT_EQ(seen_seed, 99u);
    EXPECT_EQ(ctx.result.dump(), "{\"ran\":true}");
}

// ---------------------------------------------------------------- grid

TEST(SweepGrid, ExpansionIsFullCrossProduct)
{
    SweepOptions opts = smallGrid();
    opts.modes = {SweepMode::Model, SweepMode::Cycle};
    auto points = expandGrid(opts);
    EXPECT_EQ(points.size(), 2u * 2u * 2u * 2u);
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].index, i);
    // Axis order: dataset (slowest), design, PEs, mode (fastest).
    EXPECT_EQ(points[0].dataset, "cora");
    EXPECT_EQ(points[0].mode, SweepMode::Model);
    EXPECT_EQ(points[1].mode, SweepMode::Cycle);
    EXPECT_EQ(points[2].pes, 64);
    EXPECT_EQ(points[8].dataset, "citeseer");
}

TEST(SweepGrid, PointSeedsAreDistinctAndDeterministic)
{
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < 1000; ++i)
        seeds.insert(derivePointSeed(1, i));
    EXPECT_EQ(seeds.size(), 1000u);
    EXPECT_EQ(derivePointSeed(42, 7), derivePointSeed(42, 7));
    EXPECT_NE(derivePointSeed(42, 7), derivePointSeed(43, 7));
}

// ------------------------------------------------- sweep determinism

TEST(Sweep, SameSeedSameJsonAcrossThreadCounts)
{
    SweepOptions opts = smallGrid();
    opts.threads = 1;
    std::string one = sweepToJson(opts, runSweep(opts)).dump(2);
    opts.threads = 4;
    std::string four = sweepToJson(opts, runSweep(opts)).dump(2);
    EXPECT_EQ(one, four);
    opts.threads = 3;  // pool larger than some axes, smaller than grid
    std::string three = sweepToJson(opts, runSweep(opts)).dump(2);
    EXPECT_EQ(one, three);
}

TEST(Sweep, DifferentSeedDifferentWorkload)
{
    SweepOptions opts = smallGrid();
    std::string a = sweepToJson(opts, runSweep(opts)).dump();
    opts.seed = 8;
    std::string b = sweepToJson(opts, runSweep(opts)).dump();
    EXPECT_NE(a, b);
}

TEST(Sweep, RepeatsVerifyDeterminism)
{
    SweepOptions opts = smallGrid();
    opts.datasets = {"cora"};
    opts.peCounts = {32};
    opts.repeats = 2;
    auto outcomes = runSweep(opts);
    for (const auto &o : outcomes) {
        ASSERT_TRUE(o.ok) << o.error;
        EXPECT_TRUE(o.deterministic);
    }
}

TEST(Sweep, CycleModeMatchesAcceleratorAndChecksPow2)
{
    SweepOptions opts = smallGrid();
    opts.datasets = {"cora"};
    opts.designs = {"remote-d"};
    opts.peCounts = {24};  // not a power of two
    opts.modes = {SweepMode::Cycle};
    opts.scale = 0.2;
    auto outcomes = runSweep(opts);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);

    opts.peCounts = {32};
    outcomes = runSweep(opts);
    ASSERT_EQ(outcomes.size(), 1u);
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_GT(outcomes[0].cycles, 0);
    EXPECT_GT(outcomes[0].tasks, 0);
    EXPECT_GT(outcomes[0].utilization, 0.0);
}

TEST(Sweep, TdqModesRun)
{
    SweepOptions opts;
    opts.datasets = {"cora"};
    opts.designs = {"local-a"};
    opts.peCounts = {16};
    opts.modes = {SweepMode::SpmmTdq1, SweepMode::SpmmTdq2};
    opts.scale = 0.1;
    auto outcomes = runSweep(opts);
    ASSERT_EQ(outcomes.size(), 2u);
    for (const auto &o : outcomes) {
        ASSERT_TRUE(o.ok) << o.error;
        EXPECT_GT(o.cycles, 0);
        EXPECT_GT(o.rounds, 0);
    }
}

// ------------------------------------------------------------- schema

TEST(Sweep, JsonSchema)
{
    SweepOptions opts = smallGrid();
    opts.datasets = {"cora"};
    opts.designs = {"baseline"};
    opts.peCounts = {32};
    auto outcomes = runSweep(opts);
    std::string doc = sweepToJson(opts, outcomes).dump(2);

    for (const char *key :
         {"\"schema\": \"awbsim-sweep-v1\"", "\"seed\": 7", "\"grid\":",
          "\"datasets\":", "\"designs\":", "\"pe_counts\":", "\"modes\":",
          "\"points\":", "\"index\": 0", "\"dataset\": \"cora\"",
          "\"design\": \"Baseline\"", "\"policy\": \"baseline\"",
          "\"pes\": 32", "\"mode\": \"model\"",
          "\"ok\": true", "\"cycles\":", "\"ideal_cycles\":",
          "\"sync_cycles\":", "\"tasks\":", "\"utilization\":",
          "\"peak_tq_depth\":", "\"rows_switched\":",
          "\"converged_round\":", "\"rounds\":",
          "\"latency_ms\":", "\"inferences_per_kj\":",
          "\"area_total_clb\":", "\"area_tq_clb\":", "\"deterministic\":"})
        EXPECT_NE(doc.find(key), std::string::npos) << "missing " << key;

    // Balanced braces/brackets — cheap well-formedness check.
    long depth = 0;
    for (char c : doc) {
        if (c == '{' || c == '[') ++depth;
        if (c == '}' || c == ']') --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Sweep, ModeNamesRoundTrip)
{
    for (SweepMode m : {SweepMode::Model, SweepMode::Cycle,
                        SweepMode::SpmmTdq1, SweepMode::SpmmTdq2})
        EXPECT_EQ(parseSweepMode(sweepModeName(m)), m);
}

// ------------------------------------------------- thread resolution

TEST(Sweep, ResolveThreadsCapsAtGridSizeAndFallsBackToOne)
{
    SweepOptions opts = smallGrid();

    // More workers than points: the pool shrinks to the grid size.
    opts.threads = 64;
    EXPECT_EQ(resolveThreads(opts, 3), 3u);
    EXPECT_EQ(resolveThreads(opts, 64), 64u);

    // threads == 0 defers to std::thread::hardware_concurrency(), which
    // may itself report 0 on exotic hosts; the resolved pool must stay
    // in [1, n_points] either way (the max(1, hw) fallback).
    opts.threads = 0;
    unsigned resolved = resolveThreads(opts, 5);
    EXPECT_GE(resolved, 1u);
    EXPECT_LE(resolved, 5u);

    // Degenerate empty grid still yields a positive pool size.
    opts.threads = 8;
    EXPECT_EQ(resolveThreads(opts, 0), 1u);
}

TEST(Sweep, MoreThreadsThanPointsIsDeterministic)
{
    SweepOptions opts = smallGrid();
    opts.datasets = {"cora"};
    opts.designs = {"baseline", "remote-d"};
    opts.peCounts = {32};  // 2 grid points
    opts.threads = 1;
    std::string serial = sweepToJson(opts, runSweep(opts)).dump(2);
    opts.threads = 16;  // far more workers than points
    std::string wide = sweepToJson(opts, runSweep(opts)).dump(2);
    EXPECT_EQ(serial, wide);
}

// ------------------------------------------------- platform axis

TEST(SweepGrid, PlatformAxisExpandsAndValidates)
{
    SweepOptions opts = smallGrid();
    opts.datasets = {"cora"};
    opts.designs = {"baseline"};
    opts.peCounts = {32};
    opts.platforms = {"unconstrained", "d5005-ddr4"};
    auto points = expandGrid(opts);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].platform, "unconstrained");
    EXPECT_EQ(points[1].platform, "d5005-ddr4");
    // Same dataset → same workload seed: the two platform points share
    // one synthesized workload through the WorkloadCache (DESIGN.md §13).
    EXPECT_EQ(points[0].seed, points[1].seed);
}

TEST(SweepGridDeath, UnknownPlatformIsFatal)
{
    SweepOptions opts = smallGrid();
    opts.platforms = {"hbm9"};
    EXPECT_EXIT(expandGrid(opts), ::testing::ExitedWithCode(1),
                "unknown platform");
}

TEST(Sweep, ShardedWorkloadGraphModeNamesTheUnsupportedCombination)
{
    // The workload-graph modes run unsharded only; asking for chips > 1
    // must produce an error row that names the exact mode × chips pair
    // and the modes that DO support sharding.
    SweepOptions opts = smallGrid();
    for (SweepMode mode :
         {SweepMode::GraphSage, SweepMode::Gin, SweepMode::KhopGcn}) {
        SweepPoint p;
        p.dataset = "cora";
        p.policy = "baseline";
        p.pes = 32;
        p.chips = 2;
        p.mode = mode;
        SweepOutcome out = runSweepPoint(p, opts);
        EXPECT_FALSE(out.ok);
        EXPECT_NE(out.error.find("mode '" + sweepModeName(mode) +
                                 "' with chips=2 is unsupported"),
                  std::string::npos)
            << out.error;
        EXPECT_NE(out.error.find("run unsharded only"), std::string::npos);
        EXPECT_NE(out.error.find("model|cycle|tdq1|tdq2"),
                  std::string::npos);
    }
    // The same point with one chip is a supported combination.
    SweepPoint ok_point;
    ok_point.dataset = "cora";
    ok_point.policy = "baseline";
    ok_point.pes = 32;
    ok_point.chips = 1;
    ok_point.mode = SweepMode::GraphSage;
    EXPECT_TRUE(runSweepPoint(ok_point, opts).ok);
}

TEST(Sweep, JsonSchemaCarriesMemoryModelKeys)
{
    SweepOptions opts = smallGrid();
    opts.datasets = {"cora"};
    opts.designs = {"remote-d"};
    opts.peCounts = {32};
    opts.platforms = {"ddr4-2400"};
    auto outcomes = runSweep(opts);
    ASSERT_EQ(outcomes.size(), 1u);
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
    // The capped platform must actually bind some rounds.
    EXPECT_GT(outcomes[0].bwBoundRounds, 0);
    EXPECT_GT(outcomes[0].memoryCycles, 0);
    EXPECT_GT(outcomes[0].bytesTotal, 0);

    std::string doc = sweepToJson(opts, outcomes).dump(2);
    for (const char *key :
         {"\"platforms\":", "\"platform\": \"ddr4-2400\"",
          "\"bytes_total\":", "\"memory_cycles\":",
          "\"bw_bound_rounds\":"})
        EXPECT_NE(doc.find(key), std::string::npos) << "missing " << key;
}

// ------------------------------------------------- locale independence

namespace {

/**
 * Activate a decimal-comma locale for the calling process; returns the
 * locale name, or "" when none can be found or generated (the caller
 * skips). Tries installed candidates first, then generates de_DE.UTF-8
 * into a scratch directory via localedef + LOCPATH (glibc).
 */
std::string
activateCommaLocale()
{
    static const char *candidates[] = {"de_DE.UTF-8", "de_DE.utf8",
                                       "fr_FR.UTF-8", "fr_FR.utf8"};
    for (const char *c : candidates)
        if (std::setlocale(LC_ALL, c) != nullptr) return c;
    std::string dir = ::testing::TempDir() + "awb-locales";
    std::string cmd = "mkdir -p '" + dir + "' && localedef -i de_DE " +
                      "-f UTF-8 '" + dir + "/de_DE.UTF-8' >/dev/null 2>&1";
    if (std::system(cmd.c_str()) == 0) {
        setenv("LOCPATH", dir.c_str(), 1);
        if (std::setlocale(LC_ALL, "de_DE.UTF-8") != nullptr)
            return "de_DE.UTF-8 (generated)";
    }
    return "";
}

/** RAII guard restoring the C locale however the test exits. */
struct CLocaleGuard
{
    ~CLocaleGuard() { std::setlocale(LC_ALL, "C"); }
};

} // namespace

// In the C locale, jsonNumber must match snprintf("%.12g") byte for
// byte — the historical format every tracked JSON document uses.
TEST(JsonLocale, NumberFormatMatchesHistoricalPrintf)
{
    for (double v : {0.0, 0.5, -0.5, 1.0 / 3, 1e-7, 76.8, 732.0, 1e12,
                     123456789012345.0, 2.5e-300, -1234.5678}) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.12g", v);
        EXPECT_EQ(jsonNumber(v), buf) << v;
    }
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
}

// The satellite bug: under de_DE.UTF-8, snprintf("%.12g") emits a
// decimal comma, which is invalid JSON and breaks the byte-identical
// sweep-output guarantee. The dump must not depend on LC_NUMERIC.
TEST(JsonLocale, DumpIsByteIdenticalUnderCommaLocale)
{
    Json doc = Json::object();
    doc.set("half", 0.5);
    doc.set("bandwidth_gbs", 76.8);
    doc.set("tiny", 1e-7);
    Json arr = Json::array();
    for (double v : {0.25, -1234.5678, 3.14159265358979})
        arr.push(v);
    doc.set("values", std::move(arr));
    const std::string c_dump = doc.dump(2);
    EXPECT_NE(c_dump.find("0.5"), std::string::npos);

    CLocaleGuard guard;
    std::string locale = activateCommaLocale();
    if (locale.empty())
        GTEST_SKIP() << "no decimal-comma locale available or generable";

    // Prove the locale really re-punctuates printf before relying on it.
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.1f", 0.5);
    ASSERT_TRUE(std::strchr(probe, ',') != nullptr)
        << "locale '" << locale << "' does not use decimal commas";

    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(doc.dump(2), c_dump);
}
