/**
 * @file
 * Unit tests of the experiment-driver subsystem: JSON document builder,
 * scenario registration, sweep-grid expansion, per-point seed derivation,
 * worker-pool determinism (same seed ⇒ byte-identical JSON regardless of
 * thread count) and the JSON schema of sweep output.
 */

#include <gtest/gtest.h>

#include <set>

#include "driver/json.hpp"
#include "driver/scenario.hpp"
#include "driver/sweep.hpp"

using namespace awb;
using namespace awb::driver;

namespace {

/** A small, fast grid exercising both fidelities. */
SweepOptions
smallGrid()
{
    SweepOptions opts;
    opts.datasets = {"cora", "citeseer"};
    opts.designs = {"baseline", "remote-d"};
    opts.peCounts = {32, 64};
    opts.modes = {SweepMode::Model};
    opts.scale = 0.5;
    opts.seed = 7;
    return opts;
}

} // namespace

// ---------------------------------------------------------------- JSON

TEST(Json, ScalarsAndEscaping)
{
    Json o = Json::object();
    o.set("int", 42);
    o.set("neg", std::int64_t{-7});
    o.set("str", "a\"b\\c\nd");
    o.set("bool", true);
    o.set("null", Json());
    EXPECT_EQ(o.dump(),
              "{\"int\":42,\"neg\":-7,\"str\":\"a\\\"b\\\\c\\nd\","
              "\"bool\":true,\"null\":null}");
}

TEST(Json, UnsignedValuesRenderUnsigned)
{
    Json o = Json::object();
    o.set("seed", std::uint64_t{18446744073709551615ULL});
    EXPECT_EQ(o.dump(), "{\"seed\":18446744073709551615}");
}

TEST(Json, ObjectKeysKeepInsertionOrder)
{
    Json o = Json::object();
    o.set("zebra", 1);
    o.set("alpha", 2);
    o.set("mid", 3);
    EXPECT_EQ(o.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
}

TEST(Json, ArraysAndNesting)
{
    Json a = Json::array();
    a.push(1);
    a.push("two");
    Json o = Json::object();
    o.set("list", std::move(a));
    EXPECT_EQ(o.dump(), "{\"list\":[1,\"two\"]}");
}

TEST(Json, DoubleFormattingIsStable)
{
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(jsonNumber(1.0 / 3.0), jsonNumber(1.0 / 3.0));
    EXPECT_EQ(jsonNumber(1e300), "1e+300");
}

// ------------------------------------------------------------ registry

TEST(ScenarioRegistry, RegistrationAndLookup)
{
    auto &reg = ScenarioRegistry::instance();
    std::size_t before = reg.all().size();
    ScenarioRegistrar r({"test-scenario-a", "Test", "a test scenario",
                         [](ScenarioContext &) {}});
    EXPECT_EQ(reg.all().size(), before + 1);
    const Scenario *s = reg.find("test-scenario-a");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->figure, "Test");
    EXPECT_EQ(reg.find("no-such-scenario"), nullptr);
}

TEST(ScenarioRegistry, AllIsSortedByName)
{
    ScenarioRegistrar rz({"zz-test-scenario", "Test", "late name",
                          [](ScenarioContext &) {}});
    ScenarioRegistrar ra({"aa-test-scenario", "Test", "early name",
                          [](ScenarioContext &) {}});
    auto all = ScenarioRegistry::instance().all();
    ASSERT_GE(all.size(), 2u);
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1]->name, all[i]->name);
}

TEST(ScenarioRegistry, RunReceivesContext)
{
    std::uint64_t seen_seed = 0;
    ScenarioRegistrar r({"test-scenario-ctx", "Test", "context check",
                         [&](ScenarioContext &ctx) {
                             seen_seed = ctx.seed;
                             ctx.result.set("ran", true);
                         }});
    ScenarioContext ctx;
    ctx.seed = 99;
    ScenarioRegistry::instance().find("test-scenario-ctx")->run(ctx);
    EXPECT_EQ(seen_seed, 99u);
    EXPECT_EQ(ctx.result.dump(), "{\"ran\":true}");
}

// ---------------------------------------------------------------- grid

TEST(SweepGrid, ExpansionIsFullCrossProduct)
{
    SweepOptions opts = smallGrid();
    opts.modes = {SweepMode::Model, SweepMode::Cycle};
    auto points = expandGrid(opts);
    EXPECT_EQ(points.size(), 2u * 2u * 2u * 2u);
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].index, i);
    // Axis order: dataset (slowest), design, PEs, mode (fastest).
    EXPECT_EQ(points[0].dataset, "cora");
    EXPECT_EQ(points[0].mode, SweepMode::Model);
    EXPECT_EQ(points[1].mode, SweepMode::Cycle);
    EXPECT_EQ(points[2].pes, 64);
    EXPECT_EQ(points[8].dataset, "citeseer");
}

TEST(SweepGrid, PointSeedsAreDistinctAndDeterministic)
{
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < 1000; ++i)
        seeds.insert(derivePointSeed(1, i));
    EXPECT_EQ(seeds.size(), 1000u);
    EXPECT_EQ(derivePointSeed(42, 7), derivePointSeed(42, 7));
    EXPECT_NE(derivePointSeed(42, 7), derivePointSeed(43, 7));
}

// ------------------------------------------------- sweep determinism

TEST(Sweep, SameSeedSameJsonAcrossThreadCounts)
{
    SweepOptions opts = smallGrid();
    opts.threads = 1;
    std::string one = sweepToJson(opts, runSweep(opts)).dump(2);
    opts.threads = 4;
    std::string four = sweepToJson(opts, runSweep(opts)).dump(2);
    EXPECT_EQ(one, four);
    opts.threads = 3;  // pool larger than some axes, smaller than grid
    std::string three = sweepToJson(opts, runSweep(opts)).dump(2);
    EXPECT_EQ(one, three);
}

TEST(Sweep, DifferentSeedDifferentWorkload)
{
    SweepOptions opts = smallGrid();
    std::string a = sweepToJson(opts, runSweep(opts)).dump();
    opts.seed = 8;
    std::string b = sweepToJson(opts, runSweep(opts)).dump();
    EXPECT_NE(a, b);
}

TEST(Sweep, RepeatsVerifyDeterminism)
{
    SweepOptions opts = smallGrid();
    opts.datasets = {"cora"};
    opts.peCounts = {32};
    opts.repeats = 2;
    auto outcomes = runSweep(opts);
    for (const auto &o : outcomes) {
        ASSERT_TRUE(o.ok) << o.error;
        EXPECT_TRUE(o.deterministic);
    }
}

TEST(Sweep, CycleModeMatchesAcceleratorAndChecksPow2)
{
    SweepOptions opts = smallGrid();
    opts.datasets = {"cora"};
    opts.designs = {"remote-d"};
    opts.peCounts = {24};  // not a power of two
    opts.modes = {SweepMode::Cycle};
    opts.scale = 0.2;
    auto outcomes = runSweep(opts);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);

    opts.peCounts = {32};
    outcomes = runSweep(opts);
    ASSERT_EQ(outcomes.size(), 1u);
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_GT(outcomes[0].cycles, 0);
    EXPECT_GT(outcomes[0].tasks, 0);
    EXPECT_GT(outcomes[0].utilization, 0.0);
}

TEST(Sweep, TdqModesRun)
{
    SweepOptions opts;
    opts.datasets = {"cora"};
    opts.designs = {"local-a"};
    opts.peCounts = {16};
    opts.modes = {SweepMode::SpmmTdq1, SweepMode::SpmmTdq2};
    opts.scale = 0.1;
    auto outcomes = runSweep(opts);
    ASSERT_EQ(outcomes.size(), 2u);
    for (const auto &o : outcomes) {
        ASSERT_TRUE(o.ok) << o.error;
        EXPECT_GT(o.cycles, 0);
        EXPECT_GT(o.rounds, 0);
    }
}

// ------------------------------------------------------------- schema

TEST(Sweep, JsonSchema)
{
    SweepOptions opts = smallGrid();
    opts.datasets = {"cora"};
    opts.designs = {"baseline"};
    opts.peCounts = {32};
    auto outcomes = runSweep(opts);
    std::string doc = sweepToJson(opts, outcomes).dump(2);

    for (const char *key :
         {"\"schema\": \"awbsim-sweep-v1\"", "\"seed\": 7", "\"grid\":",
          "\"datasets\":", "\"designs\":", "\"pe_counts\":", "\"modes\":",
          "\"points\":", "\"index\": 0", "\"dataset\": \"cora\"",
          "\"design\": \"Baseline\"", "\"policy\": \"baseline\"",
          "\"pes\": 32", "\"mode\": \"model\"",
          "\"ok\": true", "\"cycles\":", "\"ideal_cycles\":",
          "\"sync_cycles\":", "\"tasks\":", "\"utilization\":",
          "\"peak_tq_depth\":", "\"rows_switched\":",
          "\"converged_round\":", "\"rounds\":",
          "\"latency_ms\":", "\"inferences_per_kj\":",
          "\"area_total_clb\":", "\"area_tq_clb\":", "\"deterministic\":"})
        EXPECT_NE(doc.find(key), std::string::npos) << "missing " << key;

    // Balanced braces/brackets — cheap well-formedness check.
    long depth = 0;
    for (char c : doc) {
        if (c == '{' || c == '[') ++depth;
        if (c == '}' || c == ']') --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Sweep, ModeNamesRoundTrip)
{
    for (SweepMode m : {SweepMode::Model, SweepMode::Cycle,
                        SweepMode::SpmmTdq1, SweepMode::SpmmTdq2})
        EXPECT_EQ(parseSweepMode(sweepModeName(m)), m);
}
