/**
 * @file
 * Dynamic-graph streaming tests (DESIGN.md §12): the churn stream's
 * determinism contract (same seed ⇒ byte-identical events, batched
 * draws == single draws), event validity against the live edge set,
 * DeltaCsr's rebuild equivalence (bit-identical CSR arrays vs a
 * from-scratch CsrMatrix::fromCoo build after every batch, through
 * relocations, compactions, whole-row deletions and rejected events),
 * the dynamic runner's determinism and fidelity-independent churn
 * trajectory, the convergence half-life's churn-rate monotonicity, and
 * FrontierRunner::setOperand carrying a tuned partition across graph
 * mutation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "accel/policy.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/delta_csr.hpp"
#include "dynamic/dynamic_runner.hpp"
#include "graph/datasets.hpp"
#include "kernels/frontier.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"

using namespace awb;
using namespace awb::dynamic;

namespace {

/** Scaled-down Cora: big enough to churn, small enough for ctest. */
CscMatrix
smallAdjacency(std::uint64_t seed = 7)
{
    return loadSyntheticAdjacency(findDataset("cora"), seed, 0.25);
}

std::uint64_t
packEdge(Index r, Index c)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r))
            << 32U) |
           static_cast<std::uint32_t>(c);
}

/** Live edge set of a CSR snapshot, keyed by packed (row, col). */
std::unordered_map<std::uint64_t, Value>
liveEdgeMap(const CsrMatrix &a)
{
    std::unordered_map<std::uint64_t, Value> live;
    for (Index r = 0; r < a.rows(); ++r) {
        for (Count k = a.rowPtr()[static_cast<std::size_t>(r)];
             k < a.rowPtr()[static_cast<std::size_t>(r) + 1]; ++k) {
            live.emplace(
                packEdge(r, a.colId()[static_cast<std::size_t>(k)]),
                a.val()[static_cast<std::size_t>(k)]);
        }
    }
    return live;
}

/** Apply one event to a live edge map (the reference implementation the
 *  DeltaCsr is checked against). */
void
applyToMap(std::unordered_map<std::uint64_t, Value> &live,
           const EdgeEvent &e)
{
    if (e.op == ChurnOp::Insert)
        live.emplace(packEdge(e.row, e.col), e.val);
    else
        live.erase(packEdge(e.row, e.col));
}

/** From-scratch rebuild of a live edge map as CSR. */
CsrMatrix
rebuildCsr(Index rows, Index cols,
           const std::unordered_map<std::uint64_t, Value> &live)
{
    CooMatrix coo(rows, cols);
    for (const auto &[key, val] : live)
        coo.add(static_cast<Index>(key >> 32U),
                static_cast<Index>(key & 0xffffffffU), val);
    return CsrMatrix::fromCoo(coo);
}

void
expectCsrEq(const CsrMatrix &a, const CsrMatrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    EXPECT_EQ(a.rowPtr(), b.rowPtr());
    EXPECT_EQ(a.colId(), b.colId());
    EXPECT_EQ(a.val(), b.val());
}

/** Tiny hand-built matrix for targeted DeltaCsr cases. */
CscMatrix
tinyMatrix()
{
    CooMatrix coo(6, 6);
    coo.add(0, 1, Value(1));
    coo.add(0, 3, Value(2));
    coo.add(2, 0, Value(3));
    coo.add(2, 5, Value(4));
    coo.add(4, 2, Value(5));
    return CscMatrix::fromCoo(coo);
}

} // namespace

// --------------------------------------------------------- churn stream

TEST(ChurnStream, SameSeedReplaysByteIdentically)
{
    const CscMatrix a = smallAdjacency();
    ChurnParams params;
    params.seed = 42;
    EdgeChurnStream s1(a, params);
    EdgeChurnStream s2(a, params);
    std::vector<EdgeEvent> e1, e2;
    for (int i = 0; i < 600; ++i) e1.push_back(s1.next());
    for (int i = 0; i < 600; ++i) e2.push_back(s2.next());
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(s1.liveEdges(), s2.liveEdges());

    params.seed = 43;
    EdgeChurnStream s3(a, params);
    std::vector<EdgeEvent> e3;
    for (int i = 0; i < 600; ++i) e3.push_back(s3.next());
    EXPECT_NE(e1, e3);  // a different seed must change the stream
}

TEST(ChurnStream, BatchedDrawsMatchSingleDraws)
{
    const CscMatrix a = smallAdjacency();
    ChurnParams params;
    params.seed = 9;
    EdgeChurnStream single(a, params);
    EdgeChurnStream batched(a, params);

    std::vector<EdgeEvent> one_by_one;
    for (int i = 0; i < 504; ++i) one_by_one.push_back(single.next());

    // Uneven batch sizes: the split points must not matter.
    std::vector<EdgeEvent> concatenated;
    for (Count n : {1, 7, 64, 129, 3, 300}) {
        std::vector<EdgeEvent> b = batched.nextBatch(n);
        ASSERT_EQ(static_cast<Count>(b.size()), n);
        concatenated.insert(concatenated.end(), b.begin(), b.end());
    }
    EXPECT_EQ(one_by_one, concatenated);
}

TEST(ChurnStream, EventsAreValidAgainstTheLiveSet)
{
    const CscMatrix a = smallAdjacency();
    ChurnParams params;
    params.seed = 3;
    params.insertFrac = 0.6;
    EdgeChurnStream stream(a, params);

    std::unordered_map<std::uint64_t, Value> live =
        liveEdgeMap(cscToCsr(a));
    Count prev_time = -1;
    for (const EdgeEvent &e : stream.nextBatch(800)) {
        EXPECT_GT(e.time, prev_time);  // strictly increasing timestamps
        prev_time = e.time;
        ASSERT_GE(e.row, 0);
        ASSERT_LT(e.row, a.rows());
        ASSERT_GE(e.col, 0);
        ASSERT_LT(e.col, a.cols());
        const auto it = live.find(packEdge(e.row, e.col));
        if (e.op == ChurnOp::Insert) {
            EXPECT_EQ(it, live.end());  // inserts are never duplicates
            EXPECT_NE(e.row, e.col);    // no self-loops by default
        } else {
            EXPECT_NE(it, live.end());  // deletes name a live edge
        }
        applyToMap(live, e);
    }
    EXPECT_EQ(stream.liveEdges(), static_cast<Count>(live.size()));
}

TEST(ChurnStream, DeleteOnlyStreamDrainsThenDegradesToInserts)
{
    const CscMatrix a = tinyMatrix();
    ChurnParams params;
    params.insertFrac = 0.0;
    EdgeChurnStream stream(a, params);
    for (Count i = 0; i < a.nnz(); ++i)
        EXPECT_EQ(stream.next().op, ChurnOp::Delete);
    EXPECT_EQ(stream.liveEdges(), 0);
    // The only valid mutation of an empty edge set is an insert.
    EXPECT_EQ(stream.next().op, ChurnOp::Insert);
    EXPECT_EQ(stream.liveEdges(), 1);
}

// ------------------------------------------------------------- DeltaCsr

TEST(DeltaCsr, MatchesFromScratchRebuildAfterEveryBatch)
{
    const CscMatrix a = smallAdjacency();
    ChurnParams params;
    params.seed = 11;
    EdgeChurnStream stream(a, params);
    DeltaCsr delta(a);
    std::unordered_map<std::uint64_t, Value> live =
        liveEdgeMap(cscToCsr(a));

    for (int batch = 0; batch < 12; ++batch) {
        SCOPED_TRACE("batch " + std::to_string(batch));
        const std::vector<EdgeEvent> events = stream.nextBatch(64);
        const Count applied = delta.apply(events);
        EXPECT_EQ(applied, static_cast<Count>(events.size()));
        for (const EdgeEvent &e : events) applyToMap(live, e);

        const CsrMatrix snapshot = delta.toCsr();
        expectCsrEq(snapshot, rebuildCsr(a.rows(), a.cols(), live));
        EXPECT_EQ(delta.nnz(), static_cast<Count>(live.size()));
        // rowNnz() is the same row-work vector the snapshot implies.
        for (Index r = 0; r < a.rows(); ++r)
            ASSERT_EQ(delta.rowNnz()[static_cast<std::size_t>(r)],
                      snapshot.rowNnz(r));
    }
    EXPECT_EQ(delta.stats().rejected, 0);
}

TEST(DeltaCsr, DuplicateInsertAndAbsentDeleteAreRejected)
{
    DeltaCsr delta(tinyMatrix());
    const CsrMatrix before = delta.toCsr();
    EXPECT_FALSE(delta.insert(0, 1, Value(9)));  // already present
    EXPECT_FALSE(delta.erase(5, 5));             // never present
    EXPECT_EQ(delta.stats().rejected, 2);
    EXPECT_EQ(delta.nnz(), before.nnz());
    expectCsrEq(delta.toCsr(), before);  // rejections change nothing
}

TEST(DeltaCsr, DeletingAWholeRowLeavesAnEmptyRow)
{
    const CscMatrix a = tinyMatrix();
    DeltaCsr delta(a);
    std::unordered_map<std::uint64_t, Value> live =
        liveEdgeMap(cscToCsr(a));

    // Row 2 has two edges; remove them all.
    EXPECT_TRUE(delta.erase(2, 0));
    EXPECT_TRUE(delta.erase(2, 5));
    live.erase(packEdge(2, 0));
    live.erase(packEdge(2, 5));
    EXPECT_EQ(delta.rowNnz()[2], 0);
    expectCsrEq(delta.toCsr(), rebuildCsr(a.rows(), a.cols(), live));

    // The row is re-insertable after being emptied.
    EXPECT_TRUE(delta.insert(2, 4, Value(7)));
    live.emplace(packEdge(2, 4), Value(7));
    expectCsrEq(delta.toCsr(), rebuildCsr(a.rows(), a.cols(), live));
}

TEST(DeltaCsr, RelocationAndCompactionPreserveRebuildEquivalence)
{
    const CscMatrix a = tinyMatrix();
    DeltaCsr delta(a);
    std::unordered_map<std::uint64_t, Value> live =
        liveEdgeMap(cscToCsr(a));

    // Grow one row far past its seeded capacity: every doubling is a
    // relocation to the arena tail.
    CooMatrix grown(6, 200);
    for (const auto &[key, val] : live)
        grown.add(static_cast<Index>(key >> 32U),
                  static_cast<Index>(key & 0xffffffffU), val);
    DeltaCsr wide(CscMatrix::fromCoo(grown));
    std::unordered_map<std::uint64_t, Value> wide_live = live;
    for (Index c = 0; c < 120; ++c) {
        if (wide_live.count(packEdge(0, c)) != 0U) continue;
        ASSERT_TRUE(wide.insert(0, c, Value(c)));
        wide_live.emplace(packEdge(0, c), Value(c));
    }
    EXPECT_GT(wide.stats().relocations, 0);
    expectCsrEq(wide.toCsr(), rebuildCsr(6, 200, wide_live));

    // Now delete most of it: dead + slack slots outnumber live
    // non-zeros and the arena compacts.
    for (Index c = 0; c < 120; ++c) {
        const auto it = wide_live.find(packEdge(0, c));
        if (it == wide_live.end()) continue;
        ASSERT_TRUE(wide.erase(0, c));
        wide_live.erase(it);
    }
    EXPECT_GT(wide.stats().compactions, 0);
    EXPECT_LT(wide.slackRatio(), 1.0);
    expectCsrEq(wide.toCsr(), rebuildCsr(6, 200, wide_live));
}

TEST(DeltaCsr, SelfLoopsAreOrdinaryCoordinates)
{
    DeltaCsr delta(tinyMatrix());
    EXPECT_TRUE(delta.insert(3, 3, Value(1)));
    EXPECT_FALSE(delta.insert(3, 3, Value(1)));  // now a duplicate
    EXPECT_TRUE(delta.erase(3, 3));
}

TEST(DeltaCsr, CscSnapshotMatchesCsrConversion)
{
    const CscMatrix a = smallAdjacency();
    ChurnParams params;
    params.seed = 5;
    EdgeChurnStream stream(a, params);
    DeltaCsr delta(a);
    delta.apply(stream.nextBatch(300));

    const CscMatrix direct = delta.toCsc();
    const CscMatrix via_csr = csrToCsc(delta.toCsr());
    EXPECT_EQ(direct.colPtr(), via_csr.colPtr());
    EXPECT_EQ(direct.rowId(), via_csr.rowId());
    EXPECT_EQ(direct.val(), via_csr.val());
}

TEST(DeltaCsr, SingleEventsAndBatchesReachTheSameMatrix)
{
    const CscMatrix a = smallAdjacency();
    ChurnParams params;
    params.seed = 21;
    EdgeChurnStream s1(a, params);
    EdgeChurnStream s2(a, params);

    DeltaCsr one_by_one(a);
    for (int i = 0; i < 400; ++i) {
        const EdgeEvent e = s1.next();
        if (e.op == ChurnOp::Insert)
            EXPECT_TRUE(one_by_one.insert(e.row, e.col, e.val));
        else
            EXPECT_TRUE(one_by_one.erase(e.row, e.col));
    }
    DeltaCsr batched(a);
    batched.apply(s2.nextBatch(400));
    expectCsrEq(one_by_one.toCsr(), batched.toCsr());
}

// ------------------------------------------------------- dynamic runner

TEST(DynamicRunner, IdenticalRunsAreDeterministic)
{
    const CscMatrix a = smallAdjacency();
    const AccelConfig cfg = makePolicyConfig("work-steal", 32);
    ChurnParams churn;
    churn.seed = 2;
    DynamicOptions opts;
    opts.epochs = 4;
    opts.eventsPerEpoch = 64;
    opts.denseCols = 4;
    opts.fidelity = DynamicFidelity::Model;

    const DynamicRunStats s1 = runChurnGcn(cfg, a, churn, opts);
    const DynamicRunStats s2 = runChurnGcn(cfg, a, churn, opts);
    EXPECT_EQ(s1.totalCycles, s2.totalCycles);
    EXPECT_EQ(s1.totalTasks, s2.totalTasks);
    EXPECT_EQ(s1.rowsMoved, s2.rowsMoved);
    EXPECT_EQ(s1.halfLifeEpochs, s2.halfLifeEpochs);
    ASSERT_EQ(s1.epochs.size(), s2.epochs.size());
    for (std::size_t i = 0; i < s1.epochs.size(); ++i) {
        EXPECT_EQ(s1.epochs[i].cycles, s2.epochs[i].cycles);
        EXPECT_EQ(s1.epochs[i].freshCycles, s2.epochs[i].freshCycles);
    }
}

TEST(DynamicRunner, ModelAndCycleShareTheChurnTrajectory)
{
    const CscMatrix a = smallAdjacency();
    const AccelConfig cfg = makePolicyConfig("work-steal", 32);
    ChurnParams churn;
    churn.seed = 4;
    DynamicOptions opts;
    opts.epochs = 3;
    opts.eventsPerEpoch = 64;
    opts.denseCols = 4;

    opts.fidelity = DynamicFidelity::Cycle;
    const DynamicRunStats cycle = runChurnGcn(cfg, a, churn, opts);
    opts.fidelity = DynamicFidelity::Model;
    const DynamicRunStats model = runChurnGcn(cfg, a, churn, opts);

    // Epoch boundaries are fidelity-independent: the churn batches,
    // row-work deltas, and boundary-policy migrations must agree even
    // though cycle counts differ.
    ASSERT_EQ(cycle.epochs.size(), model.epochs.size());
    for (std::size_t i = 0; i < cycle.epochs.size(); ++i) {
        SCOPED_TRACE("epoch " + std::to_string(i));
        EXPECT_EQ(cycle.epochs[i].inserts, model.epochs[i].inserts);
        EXPECT_EQ(cycle.epochs[i].deletes, model.epochs[i].deletes);
        EXPECT_EQ(cycle.epochs[i].nnz, model.epochs[i].nnz);
        EXPECT_EQ(cycle.epochs[i].rowsChanged,
                  model.epochs[i].rowsChanged);
        EXPECT_EQ(cycle.epochs[i].rowsMoved, model.epochs[i].rowsMoved);
    }
    EXPECT_EQ(cycle.roundsSimulated > 0, true);
    EXPECT_EQ(model.roundsSimulated, 0);
}

TEST(DynamicRunner, BaselineNeverDrifts)
{
    const CscMatrix a = smallAdjacency();
    const AccelConfig cfg = makePolicyConfig("baseline", 32);
    ChurnParams churn;
    churn.seed = 6;
    DynamicOptions opts;
    opts.epochs = 4;
    opts.eventsPerEpoch = 128;
    opts.denseCols = 4;
    opts.fidelity = DynamicFidelity::Model;

    // The baseline's carried and fresh partitions are the same static
    // blocked map, so drift is exactly zero and the half-life never
    // triggers — the anchor row of the bench table.
    const DynamicRunStats s = runChurnGcn(cfg, a, churn, opts);
    EXPECT_EQ(s.halfLifeEpochs, -1);
    EXPECT_EQ(s.rowsMoved, 0);
    for (const DynamicEpoch &e : s.epochs) {
        EXPECT_EQ(e.cycles, e.freshCycles);
        EXPECT_DOUBLE_EQ(e.drift, 0.0);
    }
}

TEST(DynamicRunner, HalfLifeShrinksWithChurnRate)
{
    // A frozen work-steal map on a wide array ages with accumulated
    // churn; heavier growth-dominated churn must reach the drift
    // tolerance no later than lighter churn. "Never" (−1) is encoded
    // as epochs + 1 so it orders after every finite half-life.
    const CscMatrix a =
        loadSyntheticAdjacency(findDataset("cora"), 1, 1.0);
    const AccelConfig cfg = makePolicyConfig("work-steal", 256);
    DynamicOptions opts;
    opts.epochs = 10;
    opts.denseCols = 4;
    opts.fidelity = DynamicFidelity::Model;

    auto halfLife = [&](Count events_per_epoch) {
        ChurnParams churn;
        churn.seed = 1;
        churn.insertFrac = 0.9;
        DynamicOptions o = opts;
        o.eventsPerEpoch = events_per_epoch;
        const DynamicRunStats s = runChurnGcn(cfg, a, churn, o);
        return s.halfLifeEpochs < 0 ? opts.epochs + 1 : s.halfLifeEpochs;
    };

    const Count light = halfLife(256);
    const Count heavy = halfLife(2048);
    EXPECT_LE(heavy, light);
    EXPECT_LE(heavy, opts.epochs);  // heavy churn must actually trigger
}

// ------------------------------------------- FrontierRunner::setOperand

TEST(FrontierRunner, SetOperandCarriesThePartitionAcrossChurn)
{
    const CscMatrix a = smallAdjacency();
    const AccelConfig cfg = makePolicyConfig("work-steal", 8);
    kernels::FrontierRunner runner(cfg, a);

    const CscMatrix x0 = kernels::frontierVector(
        a.cols(), {{0, Value(1)}, {3, Value(1)}});
    runner.step(x0);
    const Count moved_before = runner.stats().rowsSwitched;

    // Churn the adjacency, swap it in, and keep stepping: the carried
    // partition (with whatever tuning the policy did) survives.
    ChurnParams params;
    params.seed = 13;
    EdgeChurnStream stream(a, params);
    DeltaCsr delta(a);
    delta.apply(stream.nextBatch(200));
    runner.setOperand(delta.toCsc());
    runner.step(x0);

    EXPECT_EQ(runner.stats().iterations.size(), 2U);
    EXPECT_GE(runner.stats().rowsSwitched, moved_before);
}

TEST(FrontierRunnerDeath, SetOperandRejectsShapeChangesAndShards)
{
    const CscMatrix a = smallAdjacency();
    const AccelConfig cfg = makePolicyConfig("baseline", 8);
    kernels::FrontierRunner runner(cfg, a);
    CooMatrix wrong(a.rows() + 1, a.cols() + 1);
    wrong.add(0, 0, Value(1));
    EXPECT_EXIT(runner.setOperand(CscMatrix::fromCoo(wrong)),
                ::testing::ExitedWithCode(1), "shape");

    AccelConfig sharded = makePolicyConfig("baseline", 8);
    sharded.chips = 2;
    kernels::FrontierRunner multi(sharded, a);
    EXPECT_EXIT(multi.setOperand(a), ::testing::ExitedWithCode(1),
                "shard");
}
