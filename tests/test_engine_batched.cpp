/**
 * @file
 * Round-batched cycle engine tests (DESIGN.md §6): the batched engine
 * must reproduce the event engine's timing statistics bit for bit —
 * cycles, rowsSwitched, convergedRound and every derived count — on all
 * six paper policies across Cora, Citeseer and Pubmed (the acceptance
 * lock), at the single-SPMM level including per-round durations and
 * per-PE tallies, while actually event-stepping fewer rounds than it
 * reports (the speedup mechanism), and deterministically.
 */

#include <gtest/gtest.h>

#include "accel/policy.hpp"
#include "accel/spmm_engine.hpp"
#include "common/rng.hpp"
#include "driver/sweep.hpp"
#include "graph/datasets.hpp"
#include "sparse/convert.hpp"

using namespace awb;

namespace {

AccelConfig
configFor(const std::string &policy, int pes, EngineKind engine)
{
    AccelConfig cfg = makePolicyConfig(policy, pes);
    cfg.engine = engine;
    return cfg;
}

SpmmResult
runAdjacencySpmm(const AccelConfig &cfg, const Dataset &ds,
                 const DenseMatrix &b, TdqKind kind)
{
    const CscMatrix &a = ds.adjacency;
    RowPartition part =
        makePartitionPolicy(cfg)->build(a.rows(), a.rowNnz(), cfg);
    return SpmmEngine(cfg).execute(a, b, kind, part);
}

/** Every timing statistic of the two engines must agree exactly. */
void
expectStatsIdentical(const SpmmStats &event, const SpmmStats &batched,
                     const std::string &what)
{
    EXPECT_EQ(event.cycles, batched.cycles) << what;
    EXPECT_EQ(event.tasks, batched.tasks) << what;
    EXPECT_EQ(event.idealCycles, batched.idealCycles) << what;
    EXPECT_EQ(event.syncCycles, batched.syncCycles) << what;
    EXPECT_EQ(event.rounds, batched.rounds) << what;
    EXPECT_EQ(event.rowsSwitched, batched.rowsSwitched) << what;
    EXPECT_EQ(event.convergedRound, batched.convergedRound) << what;
    EXPECT_EQ(event.rawStalls, batched.rawStalls) << what;
    EXPECT_EQ(event.peakQueueDepth, batched.peakQueueDepth) << what;
    EXPECT_EQ(event.peakNetworkDepth, batched.peakNetworkDepth) << what;
    EXPECT_EQ(event.roundCycles, batched.roundCycles) << what;
    EXPECT_EQ(event.perPeTasks, batched.perPeTasks) << what;
    EXPECT_DOUBLE_EQ(event.utilization, batched.utilization) << what;
}

} // namespace

TEST(EngineKindNames, ParseAndNameRoundTrip)
{
    EXPECT_EQ(engineKindName(EngineKind::Event), "event");
    EXPECT_EQ(engineKindName(EngineKind::Batched), "batched");
    EXPECT_EQ(parseEngineKind("event"), EngineKind::Event);
    EXPECT_EQ(parseEngineKind("batched"), EngineKind::Batched);
}

TEST(EngineKindNamesDeath, UnknownEngineIsFatal)
{
    EXPECT_EXIT(parseEngineKind("fast"), ::testing::ExitedWithCode(1),
                "event\\|batched");
}

// Single-SPMM level: full stats vectors (per-round durations, per-PE
// task tallies) must match on both distribution paths, and the batched
// engine must have replayed at least one round to earn its keep.
TEST(BatchedEngine, SpmmLevelBitIdenticalOnBothTdqPaths)
{
    Dataset ds = loadSyntheticByName("cora", /*seed=*/5);
    Rng rng(5, /*seq=*/2);
    DenseMatrix b(ds.adjacency.cols(), 24);
    b.fillUniform(rng, -1.0f, 1.0f);

    for (const char *policy : {"baseline", "local-b", "remote-d"}) {
        for (TdqKind kind :
             {TdqKind::Tdq1DenseScan, TdqKind::Tdq2OmegaCsc}) {
            std::string what = std::string(policy) +
                (kind == TdqKind::Tdq1DenseScan ? " tdq1" : " tdq2");
            SpmmResult ev = runAdjacencySpmm(
                configFor(policy, 32, EngineKind::Event), ds, b, kind);
            SpmmResult ba = runAdjacencySpmm(
                configFor(policy, 32, EngineKind::Batched), ds, b, kind);

            expectStatsIdentical(ev.stats, ba.stats, what);
            EXPECT_EQ(ev.stats.roundsSimulated, ev.stats.rounds) << what;
            EXPECT_LT(ba.stats.roundsSimulated, ba.stats.rounds) << what;
            EXPECT_GT(ba.stats.roundsSimulated, 0) << what;

            // Replayed columns accumulate in stream order, so the result
            // may differ from the event engine only by floating-point
            // rounding.
            EXPECT_LE(ev.c.maxAbsDiff(ba.c), 1e-4f) << what;
        }
    }
}

// The acceptance lock: all six paper policies on Cora, Citeseer and
// Pubmed, full cycle-mode GCN inference (both SPMMs of both layers,
// chained through sim::Session), batched == event on every reported
// count.
TEST(BatchedEngine, CycleModeGcnBitIdenticalOnSixPoliciesThreeDatasets)
{
    driver::SweepOptions opts;
    opts.datasets = {"cora", "citeseer", "pubmed"};
    opts.designs = {"baseline", "local-a", "local-b",
                    "remote-c", "remote-d", "eie-like"};
    opts.peCounts = {64};
    opts.modes = {driver::SweepMode::Cycle};
    opts.seed = 7;

    auto points = driver::expandGrid(opts);
    opts.engine = EngineKind::Event;
    auto event = driver::runSweep(opts, points);
    opts.engine = EngineKind::Batched;
    auto batched = driver::runSweep(opts, points);

    ASSERT_EQ(event.size(), 18u);
    ASSERT_EQ(batched.size(), 18u);
    for (std::size_t i = 0; i < event.size(); ++i) {
        const auto &e = event[i];
        const auto &b = batched[i];
        std::string what = e.point.dataset + " " + e.point.policy;
        ASSERT_TRUE(e.ok) << what << ": " << e.error;
        ASSERT_TRUE(b.ok) << what << ": " << b.error;
        EXPECT_EQ(e.cycles, b.cycles) << what;
        EXPECT_EQ(e.tasks, b.tasks) << what;
        EXPECT_EQ(e.idealCycles, b.idealCycles) << what;
        EXPECT_EQ(e.syncCycles, b.syncCycles) << what;
        EXPECT_EQ(e.rowsSwitched, b.rowsSwitched) << what;
        EXPECT_EQ(e.convergedRound, b.convergedRound) << what;
        EXPECT_EQ(e.peakTqDepth, b.peakTqDepth) << what;
        EXPECT_EQ(e.rounds, b.rounds) << what;
        // The speedup mechanism engaged: fewer rounds were event-stepped
        // than executed.
        EXPECT_EQ(e.roundsSimulated, e.rounds) << what;
        EXPECT_LT(b.roundsSimulated, b.rounds) << what;
    }
}

// Two batched runs of the same point are identical down to the result
// bits (the sweep's determinism contract holds for the new engine).
TEST(BatchedEngine, BatchedRunsAreDeterministic)
{
    Dataset ds = loadSyntheticByName("citeseer", /*seed=*/9);
    Rng rng(9, /*seq=*/2);
    DenseMatrix b(ds.adjacency.cols(), 16);
    b.fillUniform(rng, -1.0f, 1.0f);

    AccelConfig cfg = configFor("remote-c", 16, EngineKind::Batched);
    SpmmResult r1 =
        runAdjacencySpmm(cfg, ds, b, TdqKind::Tdq2OmegaCsc);
    SpmmResult r2 =
        runAdjacencySpmm(cfg, ds, b, TdqKind::Tdq2OmegaCsc);
    expectStatsIdentical(r1.stats, r2.stats, "repeat");
    EXPECT_EQ(r1.stats.roundsSimulated, r2.stats.roundsSimulated);
    EXPECT_EQ(r1.c.maxAbsDiff(r2.c), 0.0f);
}

// The partition tuned by a batched run is the same partition the event
// engine would have produced (auto-tuning trajectories are
// engine-invariant, so carried row maps stay exchangeable).
TEST(BatchedEngine, TunedPartitionMatchesEventEngine)
{
    Dataset ds = loadSyntheticByName("cora", /*seed=*/3);
    Rng rng(3, /*seq=*/2);
    DenseMatrix b(ds.adjacency.cols(), 16);
    b.fillUniform(rng, -1.0f, 1.0f);

    const CscMatrix &a = ds.adjacency;
    AccelConfig ev_cfg = configFor("remote-d", 32, EngineKind::Event);
    AccelConfig ba_cfg = configFor("remote-d", 32, EngineKind::Batched);
    RowPartition ev_part =
        makePartitionPolicy(ev_cfg)->build(a.rows(), a.rowNnz(), ev_cfg);
    RowPartition ba_part =
        makePartitionPolicy(ba_cfg)->build(a.rows(), a.rowNnz(), ba_cfg);
    SpmmEngine(ev_cfg).execute(a, b, TdqKind::Tdq2OmegaCsc, ev_part);
    SpmmEngine(ba_cfg).execute(a, b, TdqKind::Tdq2OmegaCsc, ba_part);
    EXPECT_EQ(ev_part.owners(), ba_part.owners());
}
