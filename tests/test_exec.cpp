/**
 * @file
 * Unit tests of the unified execution core (DESIGN.md §13): the
 * process-wide WorkloadCache (hit/miss accounting, bit-identical
 * results, single-flight concurrency), the shared round-entry-state
 * cache (stats equivalence on fresh engines, both engine kinds), the
 * Runner's centralized utilization derivation, deterministic intra-point
 * parallelism (bit-identical functional SPMM at any thread count) and
 * the cache-independence of sweep JSON output.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "accel/policy.hpp"
#include "accel/round_cache.hpp"
#include "accel/spmm_engine.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "driver/driver.hpp"
#include "driver/sweep.hpp"
#include "exec/run.hpp"
#include "exec/workload_cache.hpp"
#include "graph/datasets.hpp"
#include "sparse/convert.hpp"
#include "sparse/dense.hpp"
#include "sparse/spmm.hpp"

using namespace awb;
using namespace awb::driver;

namespace {

/** Every test leaves the process-wide caches the way library users see
 *  them: disabled and empty. */
struct CacheGuard
{
    CacheGuard()
    {
        exec::setCachesEnabled(false);
        exec::WorkloadCache::instance().clear();
        RoundStateCache::instance().clear();
    }
    ~CacheGuard()
    {
        exec::setCachesEnabled(false);
        exec::WorkloadCache::instance().clear();
        RoundStateCache::instance().clear();
        setIntraThreads(0);
    }
};

bool
sameMatrix(const CscMatrix &x, const CscMatrix &y)
{
    return x.rows() == y.rows() && x.cols() == y.cols() &&
           x.colPtr() == y.colPtr() && x.rowId() == y.rowId() &&
           x.val() == y.val();
}

bool
sameStats(const SpmmStats &x, const SpmmStats &y)
{
    return x.cycles == y.cycles && x.tasks == y.tasks &&
           x.idealCycles == y.idealCycles &&
           x.syncCycles == y.syncCycles &&
           x.utilization == y.utilization &&
           x.peakQueueDepth == y.peakQueueDepth &&
           x.peakNetworkDepth == y.peakNetworkDepth &&
           x.rounds == y.rounds &&
           x.roundsSimulated == y.roundsSimulated &&
           x.rowsSwitched == y.rowsSwitched &&
           x.convergedRound == y.convergedRound &&
           x.rawStalls == y.rawStalls &&
           x.traffic.total() == y.traffic.total() &&
           x.memoryCycles == y.memoryCycles &&
           x.bwBoundRounds == y.bwBoundRounds &&
           x.roundCycles == y.roundCycles && x.perPeTasks == y.perPeTasks;
}

SpmmStats
runTdq2(EngineKind engine, int pes)
{
    const DatasetSpec &spec = findDataset("cora");
    CscMatrix a = loadSyntheticAdjacency(spec, /*seed=*/3, /*scale=*/0.5);
    Rng rng(3, /*seq=*/2);
    DenseMatrix b(a.cols(), 8);
    b.fillUniform(rng, -1.0f, 1.0f);
    AccelConfig cfg = makePolicyConfig("remote-d", pes, hopBase(spec));
    cfg.engine = engine;
    RowPartition part =
        makePartitionPolicy(cfg)->build(a.rows(), a.rowNnz(), cfg);
    return SpmmEngine(cfg).execute(a, b, TdqKind::Tdq2OmegaCsc, part).stats;
}

// ------------------------------------------------- workload cache

TEST(WorkloadCache, CountsHitsAndMissesAndReturnsSharedInstance)
{
    CacheGuard guard;
    exec::setCachesEnabled(true);
    auto &cache = exec::WorkloadCache::instance();
    const DatasetSpec &spec = findDataset("cora");

    auto a1 = cache.adjacency(spec, 5, 0.5);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    auto a2 = cache.adjacency(spec, 5, 0.5);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(a1.get(), a2.get());  // one shared instance, not a copy

    // Every key axis separates: seed, scale, kind.
    cache.adjacency(spec, 6, 0.5);
    cache.adjacency(spec, 5, 0.25);
    cache.profile(spec, 5, 0.5);
    EXPECT_EQ(cache.misses(), 4u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(WorkloadCache, CachedResultsAreBitIdenticalToFreshLoads)
{
    CacheGuard guard;
    exec::setCachesEnabled(true);
    const DatasetSpec &spec = findDataset("citeseer");
    auto cached = exec::cachedAdjacency(spec, 9, 0.5);
    CscMatrix fresh = loadSyntheticAdjacency(spec, 9, 0.5);
    EXPECT_TRUE(sameMatrix(*cached, fresh));

    auto prof = exec::cachedProfile(spec, 9, 0.5);
    WorkloadProfile fresh_prof = loadProfile(spec, 9, 0.5);
    EXPECT_EQ(prof->aRowNnz, fresh_prof.aRowNnz);
    EXPECT_EQ(prof->x1RowNnz, fresh_prof.x1RowNnz);
    EXPECT_EQ(prof->x2RowNnz, fresh_prof.x2RowNnz);
}

TEST(WorkloadCache, DisabledCacheBuildsFreshAndCountsNothing)
{
    CacheGuard guard;
    auto &cache = exec::WorkloadCache::instance();
    const DatasetSpec &spec = findDataset("cora");
    auto a1 = cache.adjacency(spec, 5, 0.5);
    auto a2 = cache.adjacency(spec, 5, 0.5);
    EXPECT_NE(a1.get(), a2.get());  // distinct fresh instances
    EXPECT_TRUE(sameMatrix(*a1, *a2));
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(WorkloadCache, ConcurrentRequestersShareOneSynthesis)
{
    CacheGuard guard;
    exec::setCachesEnabled(true);
    auto &cache = exec::WorkloadCache::instance();
    const DatasetSpec &spec = findDataset("pubmed");

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const CscMatrix>> got(kThreads);
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back(
            [&, t] { got[t] = cache.adjacency(spec, 11, 0.25); });
    for (auto &t : pool) t.join();

    EXPECT_EQ(cache.misses(), 1u);  // single flight: one synthesis
    EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 1));
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(got[0].get(), got[t].get());
}

// ------------------------------------------------- round-state cache

TEST(RoundStateCache, SharedReplayReproducesEveryStatBitForBit)
{
    CacheGuard guard;
    SpmmStats plain_event = runTdq2(EngineKind::Event, 16);
    SpmmStats plain_batched = runTdq2(EngineKind::Batched, 16);

    RoundStateCache::instance().setEnabled(true);
    SpmmStats warm = runTdq2(EngineKind::Event, 16);  // fills the cache
    EXPECT_TRUE(sameStats(plain_event, warm));
    EXPECT_GT(RoundStateCache::instance().size(), 0u);

    // Fresh engines replaying shared entries: identical stats, including
    // the peak depths (restored from per-round peaks) and
    // roundsSimulated (counts local-memo misses, not shared replays).
    std::uint64_t hits_before = RoundStateCache::instance().hits();
    SpmmStats replay_event = runTdq2(EngineKind::Event, 16);
    SpmmStats replay_batched = runTdq2(EngineKind::Batched, 16);
    EXPECT_GT(RoundStateCache::instance().hits(), hits_before);
    EXPECT_TRUE(sameStats(plain_event, replay_event));
    EXPECT_TRUE(sameStats(plain_batched, replay_batched));
}

// ------------------------------------------------- runner + utilization

TEST(ExecRun, UtilizationIsDerivedInOnePlaceForEveryMode)
{
    CacheGuard guard;
    for (exec::Mode mode :
         {exec::Mode::Model, exec::Mode::SpmmTdq2, exec::Mode::Bfs,
          exec::Mode::ChurnGcn}) {
        exec::RunRequest req;
        req.dataset = "cora";
        req.policy = "remote-d";
        req.pes = 16;
        req.mode = mode;
        req.seed = 3;
        req.scale = 0.5;
        exec::RunResult r = exec::run(req);
        ASSERT_TRUE(r.ok) << exec::modeName(mode) << ": " << r.error;
        ASSERT_GT(r.cycles, 0) << exec::modeName(mode);
        EXPECT_DOUBLE_EQ(r.utilization,
                         static_cast<double>(r.tasks) /
                             (16.0 * static_cast<double>(r.cycles)))
            << exec::modeName(mode);
    }
}

TEST(ExecRun, ErrorsComeBackAsResultsNotAborts)
{
    CacheGuard guard;
    exec::RunRequest req;
    req.dataset = "cora";
    req.pes = 48;  // not a power of two: Omega network rejects it
    req.mode = exec::Mode::SpmmTdq2;
    exec::RunResult r = exec::run(req);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
}

TEST(ExecRun, ModeNamesRoundTripThroughTheCore)
{
    for (exec::Mode m :
         {exec::Mode::Model, exec::Mode::Cycle, exec::Mode::SpmmTdq1,
          exec::Mode::SpmmTdq2, exec::Mode::GraphSage, exec::Mode::Gin,
          exec::Mode::KhopGcn, exec::Mode::Bfs, exec::Mode::Pagerank,
          exec::Mode::ChurnGcn})
        EXPECT_EQ(exec::parseMode(exec::modeName(m)), m);
}

// ------------------------------------------------- cache-independent sweeps

TEST(ExecSweep, JsonIsByteIdenticalWithCachesOnOrOff)
{
    CacheGuard guard;
    SweepOptions opts;
    opts.datasets = {"cora"};
    opts.designs = {"baseline", "remote-d"};
    opts.peCounts = {32};
    opts.modes = {SweepMode::Model, SweepMode::Cycle};
    opts.scale = 0.4;
    opts.seed = 7;
    opts.threads = 2;

    std::string off = sweepToJson(opts, runSweep(opts)).dump(2);
    exec::setCachesEnabled(true);
    std::string on = sweepToJson(opts, runSweep(opts)).dump(2);
    EXPECT_EQ(off, on);
    EXPECT_GT(exec::WorkloadCache::instance().hits(), 0u);
}

TEST(ExecSweep, JsonIsByteIdenticalAtAnyIntraThreadCount)
{
    CacheGuard guard;
    SweepOptions opts;
    opts.datasets = {"cora"};
    opts.designs = {"remote-d"};
    opts.peCounts = {32};
    opts.modes = {SweepMode::Cycle};
    opts.scale = 0.4;
    opts.seed = 7;
    opts.threads = 1;

    setIntraThreads(1);
    std::string serial = sweepToJson(opts, runSweep(opts)).dump(2);
    setIntraThreads(7);
    std::string wide = sweepToJson(opts, runSweep(opts)).dump(2);
    EXPECT_EQ(serial, wide);
}

// ------------------------------------------------- parallel determinism

TEST(Parallel, ChunkedSpmmIsBitIdenticalAtAnyThreadCount)
{
    CacheGuard guard;
    // Big enough that nnz(A) * cols(B) crosses kParallelMinWork, so the
    // parallel path genuinely runs at intra-threads > 1.
    const DatasetSpec &spec = findDataset("cora");
    CscMatrix a = loadSyntheticAdjacency(spec, 13, 1.0);
    Rng rng(13, 2);
    DenseMatrix b(a.cols(), 128);
    b.fillUniform(rng, -1.0f, 1.0f);
    ASSERT_GE(a.nnz() * static_cast<Count>(b.cols()),
              static_cast<Count>(kParallelMinWork));

    setIntraThreads(1);
    DenseMatrix serial_csc = spmmCsc(a, b);
    CsrMatrix a_csr = cscToCsr(a);
    DenseMatrix serial_csr = spmmCsr(a_csr, b);
    for (int threads : {2, 3, 8}) {
        setIntraThreads(threads);
        DenseMatrix par_csc = spmmCsc(a, b);
        DenseMatrix par_csr = spmmCsr(a_csr, b);
        ASSERT_EQ(par_csc.data().size(), serial_csc.data().size());
        EXPECT_EQ(std::memcmp(par_csc.data().data(),
                              serial_csc.data().data(),
                              serial_csc.data().size() * sizeof(Value)),
                  0)
            << "spmmCsc diverged at " << threads << " threads";
        EXPECT_EQ(std::memcmp(par_csr.data().data(),
                              serial_csr.data().data(),
                              serial_csr.data().size() * sizeof(Value)),
                  0)
            << "spmmCsr diverged at " << threads << " threads";
    }
}

// ------------------------------------------------- CLI surfaces

TEST(ExecCliDeath, UnknownDatasetSuggestsNearestName)
{
    EXPECT_EXIT(findDataset("coraa"), ::testing::ExitedWithCode(1),
                "did you mean 'cora'");
    EXPECT_EXIT(findDataset("redit"), ::testing::ExitedWithCode(1),
                "did you mean 'reddit'");
}

TEST(ExecCli, ListDatasetsSucceedsAndGlobalFlagsAreStripped)
{
    CacheGuard guard;
    {
        const char *argv[] = {"awbsim", "--list-datasets"};
        EXPECT_EQ(driverMain(2, const_cast<char **>(argv)), 0);
        EXPECT_TRUE(exec::cachesEnabled());  // driver default: caches on
    }
    {
        const char *argv[] = {"awbsim", "--no-cache", "--list-datasets",
                              "--intra-threads", "2"};
        EXPECT_EQ(driverMain(5, const_cast<char **>(argv)), 0);
        EXPECT_FALSE(exec::cachesEnabled());  // escape hatch honored
        EXPECT_EQ(intraThreads(), 2);
    }
}

} // namespace
