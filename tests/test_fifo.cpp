/**
 * @file
 * Hardened-Fifo tests (serving satellite of DESIGN.md §10): capacity-1
 * behaviour, wrap-around cycling under a bounded capacity, full/empty
 * transition edges, rejected-push accounting, indexed erase semantics,
 * clear vs clearStats, and the panic() guards on out-of-range access.
 */

#include <gtest/gtest.h>

#include "sim/fifo.hpp"

using namespace awb;

TEST(Fifo, UnboundedNeverFillsAndTracksPeak)
{
    Fifo<int> f;
    EXPECT_EQ(f.capacity(), 0u);
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(f.push(i));
    EXPECT_FALSE(f.full());
    EXPECT_EQ(f.size(), 100u);
    EXPECT_EQ(f.peakOccupancy(), 100u);
    EXPECT_EQ(f.totalPushes(), 100);
    EXPECT_EQ(f.rejectedPushes(), 0);
}

TEST(Fifo, CapacityOneAlternatesFullAndEmpty)
{
    Fifo<int> f(1);
    EXPECT_TRUE(f.empty());
    EXPECT_FALSE(f.full());

    EXPECT_TRUE(f.push(7));
    EXPECT_TRUE(f.full());
    EXPECT_FALSE(f.empty());

    // A push into the single full slot is rejected and counted; the
    // resident element is untouched.
    EXPECT_FALSE(f.push(8));
    EXPECT_EQ(f.rejectedPushes(), 1);
    EXPECT_EQ(f.front(), 7);
    EXPECT_EQ(f.size(), 1u);

    EXPECT_EQ(f.pop(), 7);
    EXPECT_TRUE(f.empty());
    EXPECT_FALSE(f.full());

    // After draining, the slot is usable again.
    EXPECT_TRUE(f.push(9));
    EXPECT_EQ(f.pop(), 9);
    EXPECT_EQ(f.totalPushes(), 2);
    EXPECT_EQ(f.rejectedPushes(), 1);
    EXPECT_EQ(f.peakOccupancy(), 1u);
}

TEST(Fifo, WrapAroundCyclingPreservesOrderAtCapacity)
{
    // Push/pop far past capacity so the underlying storage wraps many
    // times; FIFO order and statistics must survive every transition.
    Fifo<int> f(3);
    int next_in = 0;
    int next_out = 0;
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(f.push(next_in++));
    EXPECT_TRUE(f.full());

    for (int round = 0; round < 50; ++round) {
        EXPECT_FALSE(f.push(999));  // full edge: rejected every round
        EXPECT_EQ(f.pop(), next_out++);
        EXPECT_FALSE(f.full());
        EXPECT_TRUE(f.push(next_in++));
        EXPECT_TRUE(f.full());
    }
    // Drain: the survivors come out in exact insertion order.
    while (!f.empty()) EXPECT_EQ(f.pop(), next_out++);
    EXPECT_EQ(next_out, next_in);
    EXPECT_EQ(f.totalPushes(), 53);
    EXPECT_EQ(f.rejectedPushes(), 50);
    EXPECT_EQ(f.peakOccupancy(), 3u);
}

TEST(Fifo, FullEmptyTransitionsAreExact)
{
    Fifo<int> f(2);
    EXPECT_TRUE(f.empty());
    f.push(1);
    EXPECT_FALSE(f.empty());
    EXPECT_FALSE(f.full());  // between the edges
    f.push(2);
    EXPECT_TRUE(f.full());
    f.pop();
    EXPECT_FALSE(f.full());
    f.pop();
    EXPECT_TRUE(f.empty());
}

TEST(Fifo, IndexedAtAndEraseKeepOrder)
{
    Fifo<int> f;
    for (int i = 10; i < 15; ++i) f.push(i);  // 10 11 12 13 14
    EXPECT_EQ(f.at(0), 10);
    EXPECT_EQ(f.at(4), 14);

    EXPECT_EQ(f.erase(2), 12);  // cherry-pick the middle
    EXPECT_EQ(f.size(), 4u);
    EXPECT_EQ(f.at(2), 13);  // the rest closed ranks in order

    EXPECT_EQ(f.erase(0), 10);  // front erase == pop
    EXPECT_EQ(f.front(), 11);

    EXPECT_EQ(f.erase(f.size() - 1), 14);  // back erase
    EXPECT_EQ(f.pop(), 11);
    EXPECT_EQ(f.pop(), 13);
    EXPECT_TRUE(f.empty());
}

TEST(Fifo, ClearDropsElementsButKeepsStats)
{
    Fifo<int> f(4);
    for (int i = 0; i < 4; ++i) f.push(i);
    f.push(99);  // rejected
    f.clear();
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.peakOccupancy(), 4u);
    EXPECT_EQ(f.totalPushes(), 4);
    EXPECT_EQ(f.rejectedPushes(), 1);

    f.clearStats();
    EXPECT_EQ(f.peakOccupancy(), 0u);
    EXPECT_EQ(f.totalPushes(), 0);
    EXPECT_EQ(f.rejectedPushes(), 0);
}

TEST(FifoDeath, EmptyAndOutOfRangeAccessPanics)
{
    Fifo<int> f;
    EXPECT_DEATH(f.front(), "Fifo::front on empty queue");
    EXPECT_DEATH(f.pop(), "Fifo::pop on empty queue");
    EXPECT_DEATH(f.at(0), "Fifo::at index out of range");
    EXPECT_DEATH(f.erase(0), "Fifo::erase index out of range");
    f.push(1);
    EXPECT_DEATH(f.at(1), "Fifo::at index out of range");
    EXPECT_DEATH(f.erase(1), "Fifo::erase index out of range");
}
