/**
 * @file
 * Tests for the GCN reference model: both compute orders agree, shapes and
 * activations are correct, and the op-count analysis reproduces the
 * structure of the paper's Table 2 (XwFirst drastically cheaper).
 */

#include <gtest/gtest.h>

#include "gcn/model.hpp"
#include "gcn/ops_count.hpp"
#include "gcn/reference.hpp"
#include "graph/datasets.hpp"
#include "graph/normalize.hpp"
#include "sparse/convert.hpp"
#include "sparse/spmm.hpp"

using namespace awb;

namespace {

Dataset
smallDataset(const char *name = "cora", double scale = 0.05,
             std::uint64_t seed = 1)
{
    return loadSyntheticByName(name, seed, scale);
}

} // namespace

TEST(GcnModel, WeightShapes)
{
    auto m = makeGcnModel(1433, 16, 7);
    ASSERT_EQ(m.layers(), 2);
    EXPECT_EQ(m.inDim(0), 1433);
    EXPECT_EQ(m.outDim(0), 16);
    EXPECT_EQ(m.inDim(1), 16);
    EXPECT_EQ(m.outDim(1), 7);
}

TEST(GcnModel, GlorotScale)
{
    auto m = makeGcnModel(100, 50, 10, 3);
    double limit = std::sqrt(6.0 / 150.0);
    for (Value v : m.weights[0].data()) {
        EXPECT_LE(std::abs(v), limit + 1e-6);
    }
    // Weights should be dense (Table 1: W density 100%).
    EXPECT_GT(m.weights[0].density(), 0.999);
}

TEST(GcnModel, DeepChain)
{
    auto m = makeDeepGcnModel({64, 32, 32, 16, 8});
    ASSERT_EQ(m.layers(), 4);
    EXPECT_EQ(m.inDim(3), 16);
    EXPECT_EQ(m.outDim(3), 8);
}

TEST(GcnModel, DeterministicPerSeed)
{
    auto a = makeGcnModel(10, 5, 2, 9);
    auto b = makeGcnModel(10, 5, 2, 9);
    EXPECT_EQ(a.weights[0].data(), b.weights[0].data());
}

TEST(Inference, OutputShape)
{
    auto ds = smallDataset();
    auto m = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3);
    auto res = inferGcn(ds, m);
    EXPECT_EQ(res.output.rows(), ds.spec.nodes);
    EXPECT_EQ(res.output.cols(), ds.spec.f3);
    ASSERT_EQ(res.layerInputs.size(), 1u);
    EXPECT_EQ(res.layerInputs[0].cols(), ds.spec.f2);
}

TEST(Inference, HiddenActivationsNonNegative)
{
    auto ds = smallDataset();
    auto m = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3);
    auto res = inferGcn(ds, m);
    for (Value v : res.layerInputs[0].data()) EXPECT_GE(v, 0.0f);
}

TEST(Inference, BothOrdersAgree)
{
    auto ds = smallDataset("citeseer", 0.03);
    auto m = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3);
    auto xw = inferGcn(ds, m, ComputeOrder::XwFirst);
    auto ax = inferGcn(ds, m, ComputeOrder::AxFirst);
    EXPECT_LT(xw.output.maxAbsDiff(ax.output), 1e-3);
}

TEST(Inference, MatchesHandComputedTinyGcn)
{
    // 2 nodes, edge 0-1; f1=1, f2=1, single layer.
    CooMatrix a(2, 2);
    a.add(0, 1, 1.0f);
    a.add(1, 0, 1.0f);
    auto ahat = normalizeAdjacencyCsc(a);  // all entries 0.5

    CooMatrix xc(2, 1);
    xc.add(0, 0, 2.0f);
    xc.add(1, 0, 4.0f);
    auto x = CsrMatrix::fromCoo(xc);

    GcnModel m;
    m.weights.push_back(DenseMatrix(1, 1));
    m.weights[0].at(0, 0) = 3.0f;

    auto res = inferGcn(ahat, x, m);
    // XW = [6; 12]; A_hat = [[.5,.5],[.5,.5]]; out = [9; 9].
    EXPECT_NEAR(res.output.at(0, 0), 9.0f, 1e-5);
    EXPECT_NEAR(res.output.at(1, 0), 9.0f, 1e-5);
}

TEST(Inference, DeeperNetworkRuns)
{
    auto ds = smallDataset("cora", 0.04);
    auto m = makeDeepGcnModel({ds.spec.f1, 32, 16, ds.spec.f3});
    auto res = inferGcn(ds, m);
    EXPECT_EQ(res.output.cols(), ds.spec.f3);
    EXPECT_EQ(res.layerInputs.size(), 2u);
}

TEST(OpsCount, XwFirstMuchCheaper)
{
    auto ds = smallDataset("cora", 0.2);
    auto m = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3);
    auto ops = countOps(ds, m);
    ASSERT_EQ(ops.layer.size(), 2u);
    // Table 2 structure: layer 1 AxFirst dominated by n*f1*f2 dense GEMM,
    // orders of magnitude above XwFirst.
    EXPECT_GT(ops.layer[0].axFirst, 10 * ops.layer[0].xwFirst);
    EXPECT_EQ(ops.total.xwFirst,
              ops.layer[0].xwFirst + ops.layer[1].xwFirst);
}

TEST(OpsCount, Layer1FormulaExact)
{
    auto ds = smallDataset("cora", 0.2);
    auto m = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3);
    auto ops = countOps(ds, m);
    Count expect_xw =
        ds.features.nnz() * ds.spec.f2 + ds.adjacency.nnz() * ds.spec.f2;
    EXPECT_EQ(ops.layer[0].xwFirst, expect_xw);
    // AxFirst includes the dense (AX) x W term n*f1*f2.
    Count dense_term =
        static_cast<Count>(ds.spec.nodes) * ds.spec.f1 * ds.spec.f2;
    EXPECT_GT(ops.layer[0].axFirst, dense_term);
}

TEST(OpsCount, ProfileApproximatesExact)
{
    auto ds = smallDataset("pubmed", 0.1, 5);
    auto m = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3);
    auto exact = countOps(ds, m);
    auto prof = countOpsProfile(loadProfile(findDataset("pubmed"), 5, 0.1));
    // Layer 1 terms are structural (same formulas, same distributions).
    double rel =
        std::abs(static_cast<double>(exact.layer[0].xwFirst) -
                 static_cast<double>(prof.layer[0].xwFirst)) /
        static_cast<double>(exact.layer[0].xwFirst);
    EXPECT_LT(rel, 0.15);
}

TEST(OpsCount, FullScaleTable2Shape)
{
    // Full-scale profile-based Table 2 rows: the paper reports Cora total
    // 62.8M (AxFirst) vs 1.33M (XwFirst) — a ~47x gap. Require at least
    // an order of magnitude with the synthetic data.
    auto prof = loadProfile(findDataset("cora"), 1, 1.0);
    auto ops = countOpsProfile(prof);
    EXPECT_GT(ops.total.axFirst, 10 * ops.total.xwFirst);
    // Layer-1 AxFirst should be ~ n*f1*f2 = 62.1M.
    EXPECT_NEAR(static_cast<double>(ops.layer[0].axFirst), 62.1e6,
                6e6);
}
