/**
 * @file
 * Extended integration tests for the full accelerator: multi-hop
 * aggregation (A^k(XW), §3.3's three-way pipelining), deep GCNs, bounded
 * queue backpressure, design-point sweeps over all datasets, stats
 * invariants, and the multi-stage pipeline combiner.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "accel/gcn_accel.hpp"
#include "accel/spmm_engine.hpp"
#include "common/rng.hpp"
#include "gcn/reference.hpp"
#include "graph/datasets.hpp"

using namespace awb;

TEST(PipelineMulti, ThreeStageChain)
{
    std::vector<Cycle> s1 = {10, 10, 10};
    std::vector<Cycle> s2 = {2, 2, 2};
    std::vector<Cycle> s3 = {3, 3, 3};
    // Stage 1 dominates: 30 + 2 + 3 = 35.
    EXPECT_EQ(pipelineCyclesMulti({&s1, &s2, &s3}), 35);
    // Last stage dominates: 10 + 2 + 3*12 = 48.
    std::vector<Cycle> s4 = {12, 12, 12};
    EXPECT_EQ(pipelineCyclesMulti({&s1, &s2, &s4}), 48);
}

TEST(PipelineMulti, SingleStageIsSum)
{
    std::vector<Cycle> s = {5, 7, 9};
    EXPECT_EQ(pipelineCyclesMulti({&s}), 21);
}

TEST(MultiHop, ReferenceMatchesExplicitChain)
{
    auto ds = loadSyntheticByName("cora", 5, 0.03);
    auto one = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 5);
    auto two = one;
    two.adjHops = 2;

    auto r1 = inferGcn(ds, one);
    auto r2 = inferGcn(ds, two);
    // Two-hop output differs from one-hop (A^2 != A on a real graph).
    EXPECT_GT(r1.output.maxAbsDiff(r2.output), 1e-6);
    // And matches both compute orders.
    auto r2_ax = inferGcn(ds, two, ComputeOrder::AxFirst);
    EXPECT_LT(r2.output.maxAbsDiff(r2_ax.output), 1e-3);
}

TEST(MultiHop, AcceleratorMatchesReference)
{
    auto ds = loadSyntheticByName("cora", 6, 0.03);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 6);
    model.adjHops = 2;

    auto run = runGcn(makeConfig(Design::RemoteD, 16), ds, model);
    auto golden = inferGcn(ds, model);

    EXPECT_LT(run.output.maxAbsDiff(golden.output), 1e-3);
    ASSERT_EQ(run.layers[0].extraHops.size(), 1u);
    EXPECT_GT(run.layers[0].extraHops[0].tasks, 0);
    // The extra stage pipelines: layer delay < serial sum of its SPMMs.
    Cycle serial = run.layers[0].xw.cycles + run.layers[0].ax.cycles +
                   run.layers[0].extraHops[0].cycles;
    EXPECT_LT(run.layers[0].pipelinedCycles, serial);
}

TEST(DeepGcn, FourLayerAcceleratorMatchesReference)
{
    auto ds = loadSyntheticByName("citeseer", 7, 0.02);
    auto model = makeDeepGcnModel({ds.spec.f1, 32, 24, 16, ds.spec.f3}, 7);

    auto run = runGcn(makeConfig(Design::LocalB, 16), ds, model);
    auto golden = inferGcn(ds, model);

    ASSERT_EQ(run.layers.size(), 4u);
    EXPECT_LT(run.output.maxAbsDiff(golden.output), 1e-3);
}

/** Functional sweep: every dataset x every design on the full pipeline. */
class AccelDatasetSweep
    : public ::testing::TestWithParam<std::tuple<const char *, Design>>
{};

TEST_P(AccelDatasetSweep, ExactAcrossDatasetsAndDesigns)
{
    auto [name, design] = GetParam();
    const auto &spec = findDataset(name);
    // Keep cycle-accurate runs small; Nell's f1 = 61278 stays sparse.
    double scale = spec.nodes > 10000 ? 0.01 : 0.05;
    auto ds = loadSynthetic(spec, 8, scale);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 8);

    auto run = runGcn(makeConfig(design, 16, spec.hopOverride > 0
                                                     ? spec.hopOverride
                                                     : 1),
                      ds, model);
    auto golden = inferGcn(ds, model);

    EXPECT_LT(run.output.maxAbsDiff(golden.output), 2e-3);
    EXPECT_GT(run.utilization, 0.0);
    EXPECT_LE(run.utilization, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, AccelDatasetSweep,
    ::testing::Combine(::testing::Values("cora", "citeseer", "pubmed",
                                         "nell", "reddit"),
                       ::testing::Values(Design::Baseline,
                                         Design::RemoteD)));

TEST(BoundedQueues, BackpressureStillExact)
{
    // Tiny queues force constant backpressure through TDQ and network;
    // functional output must be unaffected.
    auto ds = loadSyntheticByName("cora", 9, 0.05);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 9);

    AccelConfig cfg = makeConfig(Design::LocalA, 16);
    cfg.queueDepth = 2;
    cfg.omegaBufferDepth = 1;
    auto run = runGcn(cfg, ds, model);
    auto golden = inferGcn(ds, model);
    EXPECT_LT(run.output.maxAbsDiff(golden.output), 1e-3);

    // Bounded queues cannot report a deeper peak than their capacity.
    for (const auto &layer : run.layers) {
        EXPECT_LE(layer.xw.peakQueueDepth, 2u);
        EXPECT_LE(layer.ax.peakQueueDepth, 2u);
    }
}

TEST(BoundedQueues, SlowerThanUnbounded)
{
    auto ds = loadSyntheticByName("cora", 9, 0.05);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 9);

    AccelConfig tight = makeConfig(Design::Baseline, 16);
    tight.queueDepth = 1;
    tight.omegaBufferDepth = 1;
    tight.networkSpeedup = 1;
    AccelConfig roomy = makeConfig(Design::Baseline, 16);

    auto run_tight = runGcn(tight, ds, model);
    auto run_roomy = runGcn(roomy, ds, model);
    EXPECT_GT(run_tight.totalCycles, run_roomy.totalCycles);
}

TEST(StatsInvariants, RoundCyclesSumToTotal)
{
    auto ds = loadSyntheticByName("citeseer", 10, 0.04);
    Rng rng(2);
    DenseMatrix b(ds.spec.nodes, 6);
    b.fillUniform(rng, -1.0f, 1.0f);

    AccelConfig cfg = makeConfig(Design::RemoteC, 16);
    RowPartition part(ds.spec.nodes, 16, cfg.mapPolicy);
    SpmmStats stats = SpmmEngine(cfg)
                          .execute(ds.adjacency, b,
                                   TdqKind::Tdq2OmegaCsc, part)
                          .stats;

    Cycle sum = std::accumulate(stats.roundCycles.begin(),
                                stats.roundCycles.end(), Cycle(0));
    EXPECT_EQ(sum, stats.cycles);
    EXPECT_EQ(stats.rounds,
              static_cast<Count>(stats.roundCycles.size()));
    EXPECT_EQ(stats.tasks, ds.adjacency.nnz() * 6);
    EXPECT_EQ(stats.syncCycles, stats.cycles - stats.idealCycles);
}

TEST(StatsInvariants, UtilizationIdentity)
{
    auto ds = loadSyntheticByName("cora", 11, 0.05);
    Rng rng(3);
    DenseMatrix b(ds.spec.nodes, 4);
    b.fillUniform(rng, -1.0f, 1.0f);

    AccelConfig cfg = makeConfig(Design::Baseline, 8);
    RowPartition part(ds.spec.nodes, 8, cfg.mapPolicy);
    SpmmStats stats = SpmmEngine(cfg)
                          .execute(ds.adjacency, b,
                                   TdqKind::Tdq2OmegaCsc, part)
                          .stats;
    double expect = static_cast<double>(stats.tasks) /
                    (8.0 * static_cast<double>(stats.cycles));
    EXPECT_NEAR(stats.utilization, expect, 1e-12);
}

TEST(EieLike, FunctionalAndComparableToBaseline)
{
    auto ds = loadSyntheticByName("pubmed", 12, 0.02);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 12);

    auto run_eie = runGcn(makeConfig(Design::EieLike, 16), ds, model);
    auto run_base = runGcn(makeConfig(Design::Baseline, 16), ds, model);
    EXPECT_LT(run_eie.output.maxAbsDiff(run_base.output), 1e-3);
    // Table 3: EIE-like and baseline land within ~10% of each other.
    double ratio = static_cast<double>(run_eie.totalCycles) /
                   static_cast<double>(run_base.totalCycles);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.3);
}

TEST(CyclicMap, FunctionalAndDeclustersNell)
{
    auto ds = loadSyntheticByName("nell", 13, 0.02);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 13);

    AccelConfig blocked = makeConfig(Design::Baseline, 16);
    AccelConfig cyclic = makeConfig(Design::Baseline, 16);
    cyclic.mapPolicy = RowMapPolicy::Cyclic;

    auto run_b = runGcn(blocked, ds, model);
    auto run_c = runGcn(cyclic, ds, model);
    EXPECT_LT(run_c.output.maxAbsDiff(run_b.output), 1e-3);
    // Interleaving spreads the clustered band across PEs statically.
    EXPECT_LT(run_c.totalCycles, run_b.totalCycles);
}

TEST(AdjacencyMapReuse, SecondLayerBenefitsFromTunedMap)
{
    // The adjacency partition persists across layers; with remote
    // switching, layer 2's A-SPMM should start from the tuned map and
    // not be slower per round than layer 1's late rounds.
    auto ds = loadSyntheticByName("nell", 14, 0.03);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 14);
    auto run = runGcn(makeConfig(Design::RemoteD, 16, 2), ds, model);

    ASSERT_FALSE(run.layers[0].ax.roundCycles.empty());
    ASSERT_FALSE(run.layers[1].ax.roundCycles.empty());
    Cycle l1_first = run.layers[0].ax.roundCycles.front();
    Cycle l2_first = run.layers[1].ax.roundCycles.front();
    EXPECT_LE(l2_first, l1_first + l1_first / 10);
}
