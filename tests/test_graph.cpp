/**
 * @file
 * Tests for the graph substrate: degree samplers hit their targets and
 * shapes, generators realize the requested distributions, normalization
 * satisfies the spectral-GCN invariants, and the dataset registry matches
 * the paper's Table 1 statistics.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "graph/datasets.hpp"
#include "graph/degree_dist.hpp"
#include "graph/generator.hpp"
#include "graph/normalize.hpp"
#include "sparse/convert.hpp"

using namespace awb;

TEST(DegreeDist, PowerLawHitsTarget)
{
    Rng rng(1);
    auto deg = samplePowerLawDegrees(rng, 1000, 2.2, 1, 200, 8000);
    Count total = std::accumulate(deg.begin(), deg.end(), Count(0));
    EXPECT_NEAR(static_cast<double>(total), 8000.0, 80.0);
}

TEST(DegreeDist, PowerLawIsSkewed)
{
    Rng rng(2);
    auto pl = samplePowerLawDegrees(rng, 5000, 2.1, 1, 1000, 40000);
    auto un = sampleUniformDegrees(rng, 5000, 40000);
    EXPECT_GT(giniCoefficient(pl), 0.4);
    EXPECT_LT(giniCoefficient(un), 0.05);
}

TEST(DegreeDist, UniformExactTotal)
{
    Rng rng(3);
    auto deg = sampleUniformDegrees(rng, 777, 10000);
    EXPECT_EQ(std::accumulate(deg.begin(), deg.end(), Count(0)), 10000);
}

TEST(DegreeDist, GiniBounds)
{
    EXPECT_DOUBLE_EQ(giniCoefficient({5, 5, 5, 5}), 0.0);
    // One node owns everything out of n=4: gini = (n-1)/n = 0.75.
    EXPECT_NEAR(giniCoefficient({0, 0, 0, 100}), 0.75, 1e-9);
}

TEST(Generator, RealizesDegreeSequence)
{
    Rng rng(4);
    GraphGenParams p;
    p.nodes = 200;
    p.edges = 1500;
    p.style = GraphStyle::PowerLaw;
    Rng rng_deg(4);
    auto deg = synthesizeRowDegrees(rng_deg, p);
    auto m = adjacencyFromDegrees(rng_deg, p.nodes, deg);
    auto csc = CscMatrix::fromCoo(m);
    auto realized = csc.rowNnz();
    for (Index r = 0; r < p.nodes; ++r)
        EXPECT_EQ(realized[static_cast<std::size_t>(r)],
                  std::min<Count>(deg[static_cast<std::size_t>(r)], p.nodes));
}

TEST(Generator, EdgeCountNearTarget)
{
    Rng rng(5);
    GraphGenParams p;
    p.nodes = 500;
    p.edges = 4000;
    p.style = GraphStyle::PowerLaw;
    auto m = synthesizeAdjacency(rng, p);
    EXPECT_NEAR(static_cast<double>(m.nnz()), 4000.0, 120.0);
    EXPECT_TRUE(m.valid());
}

TEST(Generator, ClusteredConcentratesBand)
{
    Rng rng(6);
    GraphGenParams p;
    p.nodes = 1000;
    p.edges = 20000;
    p.style = GraphStyle::Clustered;
    p.clusterRowFrac = 0.01;   // 10 rows
    p.clusterNnzFrac = 0.5;
    auto deg = synthesizeRowDegrees(rng, p);
    Index band_rows = 10;
    Index band_start = p.nodes / 2 - band_rows / 2;
    Count band_total = 0, total = 0;
    for (Index r = 0; r < p.nodes; ++r) {
        total += deg[static_cast<std::size_t>(r)];
        if (r >= band_start && r < band_start + band_rows)
            band_total += deg[static_cast<std::size_t>(r)];
    }
    // 1% of rows should hold roughly half the non-zeros.
    EXPECT_GT(static_cast<double>(band_total) / static_cast<double>(total),
              0.35);
}

TEST(Generator, SymmetricMirrorsEdges)
{
    Rng rng(7);
    GraphGenParams p;
    p.nodes = 60;
    p.edges = 300;
    p.symmetric = true;
    auto m = synthesizeAdjacency(rng, p);
    auto d = cooToDense(m);
    for (Index i = 0; i < p.nodes; ++i)
        for (Index j = 0; j < p.nodes; ++j)
            EXPECT_FLOAT_EQ(d.at(i, j), d.at(j, i));
}

TEST(Normalize, RowColScaling)
{
    // Hand example: path graph 0-1-2. With self loops, D = diag(2,3,2).
    CooMatrix a(3, 3);
    a.add(0, 1, 1.0f);
    a.add(1, 0, 1.0f);
    a.add(1, 2, 1.0f);
    a.add(2, 1, 1.0f);
    auto norm = cooToDense(normalizeAdjacency(a));
    EXPECT_NEAR(norm.at(0, 0), 0.5, 1e-6);
    EXPECT_NEAR(norm.at(0, 1), 1.0 / std::sqrt(6.0), 1e-6);
    EXPECT_NEAR(norm.at(1, 1), 1.0 / 3.0, 1e-6);
    EXPECT_NEAR(norm.at(2, 2), 0.5, 1e-6);
}

TEST(Normalize, SymmetricInputGivesSymmetricOutput)
{
    Rng rng(8);
    GraphGenParams p;
    p.nodes = 50;
    p.edges = 200;
    p.symmetric = true;
    auto a = synthesizeAdjacency(rng, p);
    auto norm = cooToDense(normalizeAdjacency(a));
    for (Index i = 0; i < 50; ++i)
        for (Index j = 0; j < 50; ++j)
            EXPECT_NEAR(norm.at(i, j), norm.at(j, i), 1e-6);
}

TEST(Normalize, SelfLoopsPresent)
{
    CooMatrix a(4, 4);
    a.add(0, 1, 1.0f);
    auto norm = cooToDense(normalizeAdjacency(a));
    for (Index i = 0; i < 4; ++i) EXPECT_GT(norm.at(i, i), 0.0f);
}

TEST(Datasets, RegistryHasFivePaperDatasets)
{
    const auto &specs = paperDatasets();
    ASSERT_EQ(specs.size(), 5u);
    EXPECT_EQ(findDataset("CORA").nodes, 2708);
    EXPECT_EQ(findDataset("citeseer").f1, 3703);
    EXPECT_EQ(findDataset("pubmed").nodes, 19717);
    EXPECT_EQ(findDataset("nell").f3, 186);
    EXPECT_EQ(findDataset("Reddit").f2, 64);
}

TEST(Datasets, NellIsClusteredWithHopOverride)
{
    const auto &nell = findDataset("nell");
    EXPECT_EQ(nell.style, GraphStyle::Clustered);
    EXPECT_EQ(nell.hopOverride, 2);
}

TEST(Datasets, SyntheticCoraMatchesTable1)
{
    auto ds = loadSyntheticByName("cora", 1, 1.0);
    EXPECT_EQ(ds.spec.nodes, 2708);
    EXPECT_EQ(ds.adjacency.rows(), 2708);
    EXPECT_TRUE(ds.adjacency.valid());
    // Density within 20% of the published 0.18% (self loops add ~n).
    EXPECT_NEAR(ds.adjacency.density(), 0.0018, 0.0018 * 0.25);
    EXPECT_NEAR(ds.features.density(), 0.0127, 0.0127 * 0.15);
    EXPECT_EQ(ds.features.cols(), 1433);
}

TEST(Datasets, ScaledLoadShrinksNodes)
{
    auto ds = loadSyntheticByName("pubmed", 1, 0.05);
    EXPECT_NEAR(static_cast<double>(ds.spec.nodes), 19717.0 * 0.05, 2.0);
    EXPECT_EQ(ds.features.cols(), 500);  // feature dims not scaled
    // At small node counts the +I self loops dominate density: expect
    // densityA + 1/n rather than the published full-scale densityA.
    double expect = 0.00028 + 1.0 / static_cast<double>(ds.spec.nodes);
    EXPECT_NEAR(ds.adjacency.density(), expect, expect * 0.2);
}

TEST(Datasets, DeterministicPerSeed)
{
    auto a = loadSyntheticByName("cora", 7, 0.1);
    auto b = loadSyntheticByName("cora", 7, 0.1);
    EXPECT_EQ(a.adjacency.nnz(), b.adjacency.nnz());
    EXPECT_EQ(a.adjacency.rowId(), b.adjacency.rowId());
    EXPECT_EQ(a.features.colId(), b.features.colId());
}

TEST(Datasets, ProfileMatchesSyntheticDistribution)
{
    // The profile loader must produce the same adjacency degree sequence
    // the full loader realizes (both consume synthesizeRowDegrees with the
    // same seed derivation).
    auto ds = loadSyntheticByName("citeseer", 3, 0.2);
    auto prof = loadProfile(findDataset("citeseer"), 3, 0.2);
    ASSERT_EQ(prof.aRowNnz.size(), static_cast<std::size_t>(ds.spec.nodes));
    auto realized = ds.adjacency.rowNnz();
    Count total_prof = std::accumulate(prof.aRowNnz.begin(),
                                       prof.aRowNnz.end(), Count(0));
    Count total_real = std::accumulate(realized.begin(), realized.end(),
                                       Count(0));
    // Self loops + merge effects keep these close but not identical.
    EXPECT_NEAR(static_cast<double>(total_prof),
                static_cast<double>(total_real),
                0.05 * static_cast<double>(total_real));
}

TEST(Datasets, ProfileFullScaleRedditIsCheap)
{
    auto prof = loadProfile(findDataset("reddit"), 1, 1.0);
    EXPECT_EQ(prof.aRowNnz.size(), 232965u);
    Count total = std::accumulate(prof.aRowNnz.begin(), prof.aRowNnz.end(),
                                  Count(0));
    // densityA * n^2 ~ 23.3M plus self loops.
    EXPECT_GT(total, Count(20000000));
    EXPECT_LT(total, Count(27000000));
}

TEST(Datasets, X2DensityProfile)
{
    auto prof = loadProfile(findDataset("cora"), 1, 0.5);
    double mean = 0.0;
    for (auto v : prof.x2RowNnz) mean += static_cast<double>(v);
    mean /= static_cast<double>(prof.x2RowNnz.size()) * 16.0;
    EXPECT_NEAR(mean, 0.78, 0.05);
}
