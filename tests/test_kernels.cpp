/**
 * @file
 * Sparse-output SpGEMM subsystem tests (DESIGN.md §11): functional
 * bit-exactness of kernels::spgemm / spgemmPower against the dense
 * reference on hand-built and synthetic graphs, cycle-level equivalence
 * of SpmmEngine::executeSpgemm across engines and against the
 * PerfModel::runSpgemm traffic accounting, the Spgemm Session node and
 * buildExactKhopGcn factory, and the BFS/PageRank frontier kernels vs
 * their scalar references — including multi-chip sharded runs and the
 * observe-after-last-round rebalance contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "accel/perf_model.hpp"
#include "accel/policy.hpp"
#include "accel/spmm_engine.hpp"
#include "gcn/model.hpp"
#include "graph/datasets.hpp"
#include "kernels/bfs.hpp"
#include "kernels/pagerank.hpp"
#include "kernels/spgemm.hpp"
#include "sim/factories.hpp"
#include "sim/session.hpp"
#include "sparse/convert.hpp"

using namespace awb;

namespace {

/** 6-vertex directed adjacency with a skewed column: vertex 0 points
 *  everywhere, the rest form a ring. */
CscMatrix
handAdjacency()
{
    CooMatrix coo(6, 6);
    for (Index v = 1; v < 6; ++v) coo.add(v, 0, 1.0f);
    for (Index v = 1; v < 6; ++v) coo.add((v + 1) % 6, v, 0.5f);
    return CscMatrix::fromCoo(coo);
}

/** Dense-reference check: C = A×B bit-equal (±0.0f treated equal). */
void
expectSpgemmExact(const CscMatrix &a, const CscMatrix &b)
{
    CscMatrix c = kernels::spgemm(a, b);
    DenseMatrix golden = multiply(cscToDense(a), cscToDense(b));
    ASSERT_EQ(c.rows(), golden.rows());
    ASSERT_EQ(c.cols(), golden.cols());
    EXPECT_EQ(cscToDense(c).maxAbsDiff(golden), 0.0);
}

double
l1Diff(const std::vector<Value> &x, const std::vector<Value> &y)
{
    double l1 = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        l1 += std::fabs(static_cast<double>(x[i]) -
                        static_cast<double>(y[i]));
    return l1;
}

CscMatrix
scaledAdjacency(const std::string &name, double scale)
{
    const DatasetSpec &spec = findDataset(name);
    return loadSyntheticAdjacency(spec, /*seed=*/1, scale);
}

} // namespace

TEST(SpgemmKernel, HandBuiltSquareMatchesDense)
{
    CscMatrix a = handAdjacency();
    expectSpgemmExact(a, a);
}

TEST(SpgemmKernel, RectangularMatchesDense)
{
    CooMatrix ca(4, 3);
    ca.add(0, 0, 2.0f);
    ca.add(2, 1, -1.5f);
    ca.add(3, 1, 4.0f);
    ca.add(1, 2, 0.25f);
    CooMatrix cb(3, 2);
    cb.add(0, 0, 1.0f);
    cb.add(1, 0, -2.0f);
    cb.add(2, 1, 8.0f);
    expectSpgemmExact(CscMatrix::fromCoo(ca), CscMatrix::fromCoo(cb));
}

TEST(SpgemmKernel, CancellationKeepsStructuralZero)
{
    // 1*1 + 1*(-1) = 0: the hash path must keep the structural entry
    // (matching the dense reference, which also writes an exact 0).
    CooMatrix ca(2, 2);
    ca.add(0, 0, 1.0f);
    ca.add(0, 1, 1.0f);
    CooMatrix cb(2, 1);
    cb.add(0, 0, 1.0f);
    cb.add(1, 0, -1.0f);
    CscMatrix c =
        kernels::spgemm(CscMatrix::fromCoo(ca), CscMatrix::fromCoo(cb));
    EXPECT_EQ(c.nnz(), 1);
    EXPECT_EQ(c.val()[0], 0.0f);
}

TEST(SpgemmKernel, CoraAndCiteseerPowersMatchDense)
{
    for (const char *name : {"cora", "citeseer"}) {
        CscMatrix a = scaledAdjacency(name, 0.15);
        expectSpgemmExact(a, a);
        // A^3 = A×(A×A), associated identically by spgemmPower
        // (left-multiply) and by the dense chain below.
        CscMatrix a3 = kernels::spgemmPower(a, 3);
        DenseMatrix d = cscToDense(a);
        DenseMatrix golden = multiply(d, multiply(d, d));
        EXPECT_EQ(cscToDense(a3).maxAbsDiff(golden), 0.0) << name;
    }
}

TEST(SpgemmKernel, PowerOfOneCopies)
{
    CscMatrix a = handAdjacency();
    CscMatrix a1 = kernels::spgemmPower(a, 1);
    EXPECT_EQ(cscToDense(a1).maxAbsDiff(cscToDense(a)), 0.0);
}

TEST(SpgemmKernel, ColumnNnzMatchesMaterialized)
{
    CscMatrix a = scaledAdjacency("cora", 0.1);
    CscMatrix c = kernels::spgemm(a, a);
    std::vector<Count> nnz = kernels::spgemmColumnNnz(a, a);
    ASSERT_EQ(nnz.size(), static_cast<std::size_t>(c.cols()));
    for (Index j = 0; j < c.cols(); ++j)
        EXPECT_EQ(nnz[static_cast<std::size_t>(j)], c.colNnz(j)) << j;
}

TEST(SpgemmEngine, FunctionalOutputEqualsKernel)
{
    CscMatrix a = scaledAdjacency("cora", 0.15);
    for (const char *policy : {"baseline", "remote-d"}) {
        AccelConfig cfg = makePolicyConfig(policy, 32, 1);
        RowPartition part =
            makePartitionPolicy(cfg)->build(a.rows(), a.rowNnz(), cfg);
        SpgemmResult r = SpmmEngine(cfg).executeSpgemm(a, a, part);
        CscMatrix golden = kernels::spgemm(a, a);
        EXPECT_EQ(cscToDense(r.c).maxAbsDiff(cscToDense(golden)), 0.0)
            << policy;
        EXPECT_EQ(r.stats.rounds, a.cols());
        EXPECT_EQ(r.stats.roundsSimulated, r.stats.rounds);
        EXPECT_GT(r.stats.traffic.bRowBytes, 0);
        EXPECT_GT(r.stats.traffic.outputIndexBytes, 0);
    }
}

TEST(SpgemmEngine, BatchedEngineMatchesEvent)
{
    CscMatrix a = scaledAdjacency("citeseer", 0.15);
    for (const char *policy : {"baseline", "remote-d", "work-steal"}) {
        AccelConfig ecfg = makePolicyConfig(policy, 32, 1);
        ecfg.engine = EngineKind::Event;
        AccelConfig bcfg = ecfg;
        bcfg.engine = EngineKind::Batched;
        RowPartition ep =
            makePartitionPolicy(ecfg)->build(a.rows(), a.rowNnz(), ecfg);
        RowPartition bp =
            makePartitionPolicy(bcfg)->build(a.rows(), a.rowNnz(), bcfg);
        SpgemmResult er = SpmmEngine(ecfg).executeSpgemm(a, a, ep);
        SpgemmResult br = SpmmEngine(bcfg).executeSpgemm(a, a, bp);
        EXPECT_EQ(er.stats.cycles, br.stats.cycles) << policy;
        EXPECT_EQ(er.stats.tasks, br.stats.tasks) << policy;
        EXPECT_EQ(er.stats.rowsSwitched, br.stats.rowsSwitched) << policy;
        EXPECT_EQ(er.stats.traffic.total(), br.stats.traffic.total())
            << policy;
        EXPECT_EQ(er.stats.roundCycles, br.stats.roundCycles) << policy;
        EXPECT_EQ(cscToDense(er.c).maxAbsDiff(cscToDense(br.c)), 0.0);
    }
}

TEST(SpgemmEngine, ModelTrafficByteEqualForStaticPolicy)
{
    CscMatrix a = scaledAdjacency("cora", 0.2);
    AccelConfig cfg = makePolicyConfig("baseline", 32, 1);
    RowPartition ep =
        makePartitionPolicy(cfg)->build(a.rows(), a.rowNnz(), cfg);
    RowPartition mp =
        makePartitionPolicy(cfg)->build(a.rows(), a.rowNnz(), cfg);
    SpgemmResult er = SpmmEngine(cfg).executeSpgemm(a, a, ep);
    PerfSpmmResult mr = PerfModel(cfg).runSpgemm(a, a, mp);
    EXPECT_EQ(er.stats.traffic.sparseBytes, mr.traffic.sparseBytes);
    EXPECT_EQ(er.stats.traffic.denseBytes, mr.traffic.denseBytes);
    EXPECT_EQ(er.stats.traffic.outputBytes, mr.traffic.outputBytes);
    EXPECT_EQ(er.stats.traffic.migrationBytes, mr.traffic.migrationBytes);
    EXPECT_EQ(er.stats.traffic.bRowBytes, mr.traffic.bRowBytes);
    EXPECT_EQ(er.stats.traffic.outputIndexBytes,
              mr.traffic.outputIndexBytes);
    EXPECT_EQ(er.stats.tasks, mr.tasks);
    EXPECT_EQ(mr.rounds, a.cols());
}

TEST(SpgemmEngine, ObservesAfterLastRound)
{
    // A 1-column multiply is a single round; a rebalance policy must
    // still get its observation so carried partitions adapt across
    // frontier iterations. The skewed column concentrates all work on
    // one PE, which work stealing must react to.
    CooMatrix heavy(64, 1);
    for (Index v = 0; v < 64; ++v) heavy.add(v, 0, 1.0f);
    CooMatrix coo(64, 64);
    for (Index j = 0; j < 64; ++j) coo.add(0, j, 1.0f);  // dense row 0
    for (Index v = 1; v < 64; ++v) coo.add(v, v, 1.0f);
    CscMatrix a = CscMatrix::fromCoo(coo);
    CscMatrix x = CscMatrix::fromCoo(heavy);
    AccelConfig cfg = makePolicyConfig("work-steal", 8, 1);
    RowPartition part(a.rows(), cfg.numPes, cfg.mapPolicy);
    std::vector<int> before = part.owners();
    SpgemmResult r = SpmmEngine(cfg).executeSpgemm(a, x, part);
    EXPECT_EQ(r.stats.rounds, 1);
    // The single round was observed: the partition changed even though
    // there is no next round inside this executeSpgemm call.
    EXPECT_NE(part.owners(), before);
    EXPECT_GT(r.stats.rowsSwitched, 0);
    EXPECT_GT(r.stats.traffic.migrationBytes, 0);
}

TEST(SpgemmSession, NodeMatchesReferenceAndKernel)
{
    const DatasetSpec &spec = findDataset("cora");
    Dataset ds = loadSynthetic(spec, /*seed=*/1, 0.15);

    sim::WorkloadBundle bundle;
    bundle.name = "a-squared";
    sim::WorkloadBuilder b;
    sim::TensorId a = b.input("A");
    sim::TensorId a2 = b.spgemm(a, a, "A^2", "A2");
    bundle.graph = b.build(a2);
    bundle.sparse.emplace("A", ds.adjacency);

    for (EngineKind kind : {EngineKind::Event, EngineKind::Batched}) {
        AccelConfig cfg = makePolicyConfig("remote-d", 32, 1);
        cfg.engine = kind;
        sim::Session session(cfg);
        sim::SessionResult res = sim::runWorkload(session, bundle);
        ASSERT_TRUE(res.outputSparse);
        DenseMatrix golden = sim::referenceEval(bundle);
        EXPECT_EQ(res.output.maxAbsDiff(golden), 0.0);
        CscMatrix kernel = kernels::spgemm(ds.adjacency, ds.adjacency);
        EXPECT_EQ(cscToDense(res.sparseOutput)
                      .maxAbsDiff(cscToDense(kernel)),
                  0.0);
    }

    // Engine invariance of the Session-level statistics.
    AccelConfig ecfg = makePolicyConfig("remote-d", 32, 1);
    ecfg.engine = EngineKind::Event;
    AccelConfig bcfg = ecfg;
    bcfg.engine = EngineKind::Batched;
    sim::Session es(ecfg), bs(bcfg);
    sim::SessionResult er = sim::runWorkload(es, bundle);
    sim::SessionResult br = sim::runWorkload(bs, bundle);
    EXPECT_EQ(er.totalCycles, br.totalCycles);
    EXPECT_EQ(er.totalTasks, br.totalTasks);
}

TEST(SpgemmSession, ExactKhopFactoryMatchesReference)
{
    const DatasetSpec &spec = findDataset("cora");
    Dataset ds = loadSynthetic(spec, /*seed=*/1, 0.15);
    GcnModel model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 1);
    sim::WorkloadBundle bundle = sim::buildExactKhopGcn(ds, model, 3);
    EXPECT_EQ(bundle.name, "gcn-3hop-exact");
    DenseMatrix golden = sim::referenceEval(bundle);
    AccelConfig cfg = makePolicyConfig("remote-d", 32, 1);
    sim::Session session(cfg);
    sim::SessionResult res = sim::runWorkload(session, bundle);
    EXPECT_FALSE(res.outputSparse);
    EXPECT_LT(res.output.maxAbsDiff(golden), 1e-3);
}

TEST(BfsKernel, HandBuiltMatchesReference)
{
    CscMatrix a = handAdjacency();
    kernels::BfsResult ref = kernels::bfsReference(a, 0);
    // Vertex 0 reaches everything in one hop (its column is full), the
    // ring adds nothing new afterwards.
    EXPECT_EQ(ref.depth[0], 0);
    for (Index v = 1; v < 6; ++v) {
        EXPECT_EQ(ref.depth[static_cast<std::size_t>(v)], 1) << v;
        EXPECT_EQ(ref.parent[static_cast<std::size_t>(v)], 0) << v;
    }
    for (const char *policy : {"baseline", "remote-d"}) {
        AccelConfig cfg = makePolicyConfig(policy, 4, 1);
        kernels::BfsRun run = kernels::runBfs(cfg, a, 0);
        EXPECT_EQ(run.result.parent, ref.parent) << policy;
        EXPECT_EQ(run.result.depth, ref.depth) << policy;
        EXPECT_EQ(run.result.frontierSizes, ref.frontierSizes) << policy;
        EXPECT_EQ(run.stats.rounds,
                  static_cast<Count>(ref.frontierSizes.size()));
    }
}

TEST(BfsKernel, CoraMatchesReferenceBothEngines)
{
    CscMatrix a = scaledAdjacency("cora", 0.3);
    kernels::BfsResult ref = kernels::bfsReference(a, 0);
    for (const char *policy : {"baseline", "local-b", "work-steal"}) {
        for (EngineKind kind : {EngineKind::Event, EngineKind::Batched}) {
            AccelConfig cfg = makePolicyConfig(policy, 32, 1);
            cfg.engine = kind;
            kernels::BfsRun run = kernels::runBfs(cfg, a, 0);
            EXPECT_EQ(run.result.parent, ref.parent) << policy;
            EXPECT_EQ(run.result.depth, ref.depth) << policy;
            EXPECT_EQ(run.result.frontierSizes, ref.frontierSizes)
                << policy;
        }
    }
}

TEST(BfsKernel, ShardedRunMatchesUnshardedFunctionally)
{
    CscMatrix a = scaledAdjacency("cora", 0.3);
    AccelConfig one = makePolicyConfig("remote-d", 32, 1);
    kernels::BfsRun r1 = kernels::runBfs(one, a, 0);
    AccelConfig two = one;
    two.chips = 2;
    kernels::BfsRun r2 = kernels::runBfs(two, a, 0);
    EXPECT_EQ(r2.result.parent, r1.result.parent);
    EXPECT_EQ(r2.result.depth, r1.result.depth);
    // One chip never pays inter-chip frontier traffic.
    EXPECT_EQ(r1.stats.haloBytes, 0);
    EXPECT_GE(r2.stats.chipImbalance, 1.0);
}

TEST(BfsKernel, RingWalkCrossesTheChipBoundary)
{
    // Directed 64-ring: BFS from 0 walks one vertex per level, so the
    // frontier crosses from chip 0's half into chip 1's half and the
    // dynamic halo must charge the boundary iterations.
    CooMatrix coo(64, 64);
    for (Index v = 0; v < 64; ++v) coo.add((v + 1) % 64, v, 1.0f);
    CscMatrix ring = CscMatrix::fromCoo(coo);
    AccelConfig cfg = makePolicyConfig("baseline", 4, 1);
    cfg.chips = 2;
    kernels::BfsRun run = kernels::runBfs(cfg, ring, 0);
    kernels::BfsResult ref = kernels::bfsReference(ring, 0);
    EXPECT_EQ(run.result.depth, ref.depth);
    EXPECT_EQ(run.result.parent, ref.parent);
    for (Index v = 0; v < 64; ++v)
        EXPECT_EQ(run.result.depth[static_cast<std::size_t>(v)], v);
    EXPECT_GT(run.stats.haloBytes, 0);
}

TEST(BfsKernel, ModelTwinCoversReferenceIterations)
{
    CscMatrix a = scaledAdjacency("citeseer", 0.2);
    AccelConfig cfg = makePolicyConfig("baseline", 32, 1);
    kernels::BfsResult ref = kernels::bfsReference(a, 0);
    kernels::FrontierRunStats m = kernels::modelBfs(cfg, a, 0);
    ASSERT_EQ(m.iterations.size(), ref.frontierSizes.size());
    for (std::size_t i = 0; i < m.iterations.size(); ++i)
        EXPECT_EQ(m.iterations[i].frontierNnz, ref.frontierSizes[i]);
    // Traffic byte-equality with the engine under the static baseline.
    kernels::BfsRun run = kernels::runBfs(cfg, a, 0);
    EXPECT_EQ(m.traffic.sparseBytes, run.stats.traffic.sparseBytes);
    EXPECT_EQ(m.traffic.bRowBytes, run.stats.traffic.bRowBytes);
    EXPECT_EQ(m.traffic.outputIndexBytes,
              run.stats.traffic.outputIndexBytes);
    EXPECT_EQ(m.traffic.migrationBytes, run.stats.traffic.migrationBytes);
}

TEST(PagerankKernel, ColumnStochasticColumnsSumToOne)
{
    CscMatrix a = scaledAdjacency("cora", 0.2);
    CscMatrix m = kernels::columnStochastic(a);
    EXPECT_GE(m.nnz(), m.rows());  // self-loops plug dangling columns
    for (Index j = 0; j < m.cols(); ++j) {
        double sum = 0.0;
        for (Count p = m.colPtr()[static_cast<std::size_t>(j)];
             p < m.colPtr()[static_cast<std::size_t>(j) + 1]; ++p)
            sum += static_cast<double>(
                m.val()[static_cast<std::size_t>(p)]);
        EXPECT_NEAR(sum, 1.0, 1e-5) << j;
    }
}

TEST(PagerankKernel, ReferenceConvergesAndSumsToOne)
{
    CscMatrix a = scaledAdjacency("cora", 0.3);
    kernels::PagerankResult ref =
        kernels::pagerankReference(a, 0.85, 1e-6, 200);
    EXPECT_TRUE(ref.converged);
    EXPECT_LE(ref.residual, 1e-6);
    EXPECT_EQ(ref.residuals.size(),
              static_cast<std::size_t>(ref.iterations));
    double sum = 0.0;
    for (Value s : ref.scores) sum += static_cast<double>(s);
    EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST(PagerankKernel, EngineBitMatchesReference)
{
    CscMatrix a = scaledAdjacency("cora", 0.3);
    kernels::PagerankResult ref =
        kernels::pagerankReference(a, 0.85, 1e-6, 200);
    for (const char *policy : {"baseline", "remote-d", "work-steal"}) {
        for (EngineKind kind : {EngineKind::Event, EngineKind::Batched}) {
            AccelConfig cfg = makePolicyConfig(policy, 32, 1);
            cfg.engine = kind;
            kernels::PagerankRun run =
                kernels::runPagerank(cfg, a, 0.85, 1e-6, 200);
            EXPECT_EQ(run.result.iterations, ref.iterations) << policy;
            EXPECT_EQ(run.result.converged, ref.converged) << policy;
            EXPECT_EQ(l1Diff(run.result.scores, ref.scores), 0.0)
                << policy;
        }
    }
}

TEST(PagerankKernel, ShardedScoresMatchUnsharded)
{
    CscMatrix a = scaledAdjacency("citeseer", 0.2);
    AccelConfig one = makePolicyConfig("baseline", 32, 1);
    kernels::PagerankRun r1 = kernels::runPagerank(one, a, 0.85, 1e-6, 200);
    AccelConfig two = one;
    two.chips = 2;
    kernels::PagerankRun r2 = kernels::runPagerank(two, a, 0.85, 1e-6, 200);
    EXPECT_EQ(r2.result.iterations, r1.result.iterations);
    EXPECT_LE(l1Diff(r2.result.scores, r1.result.scores), 1e-6);
    EXPECT_GT(r2.stats.haloBytes, 0);
}

TEST(PagerankKernel, ModelTwinMatchesEngineIterationCount)
{
    CscMatrix a = scaledAdjacency("cora", 0.2);
    AccelConfig cfg = makePolicyConfig("baseline", 32, 1);
    kernels::PagerankRun run = kernels::runPagerank(cfg, a, 0.85, 1e-6, 50);
    kernels::FrontierRunStats m =
        kernels::modelPagerank(cfg, a, 0.85, 1e-6, 50);
    EXPECT_EQ(m.iterations.size(), run.stats.iterations.size());
    EXPECT_EQ(m.traffic.sparseBytes, run.stats.traffic.sparseBytes);
    EXPECT_EQ(m.traffic.bRowBytes, run.stats.traffic.bRowBytes);
}

TEST(FrontierRunner, RejectsBadFrontiers)
{
    EXPECT_DEATH(kernels::frontierVector(4, {{1, 1.0f}, {1, 2.0f}}),
                 "strictly ascending");
    EXPECT_DEATH(kernels::frontierVector(4, {{5, 1.0f}}), "out of range");
}
