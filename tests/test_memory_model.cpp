/**
 * @file
 * Memory-model tests (DESIGN.md §8): platform registry and floor
 * arithmetic, exact traffic accounting in both fidelities, the roofline
 * composition on bandwidth-capped platforms, event/batched equivalence
 * under a constrained platform — and the acceptance lock: on the
 * `unconstrained` platform every timing statistic is bit-identical to a
 * platform-less run on all six paper policies × Cora/Citeseer/Pubmed,
 * in full cycle-mode GCN inference through the sweep engine.
 */

#include <gtest/gtest.h>

#include "accel/perf_model.hpp"
#include "accel/policy.hpp"
#include "accel/spmm_engine.hpp"
#include "common/rng.hpp"
#include "driver/sweep.hpp"
#include "graph/datasets.hpp"
#include "model/memory_model.hpp"
#include "sim/factories.hpp"
#include "sim/session.hpp"

using namespace awb;

namespace {

AccelConfig
configFor(const std::string &policy, int pes, const std::string &platform)
{
    AccelConfig cfg = makePolicyConfig(policy, pes);
    cfg.platform = platform;
    return cfg;
}

SpmmResult
runAdjacencySpmm(const AccelConfig &cfg, const Dataset &ds,
                 const DenseMatrix &b, TdqKind kind)
{
    const CscMatrix &a = ds.adjacency;
    RowPartition part =
        makePartitionPolicy(cfg)->build(a.rows(), a.rowNnz(), cfg);
    return SpmmEngine(cfg).execute(a, b, kind, part);
}

/** Every timing statistic of two runs must agree exactly. */
void
expectStatsIdentical(const SpmmStats &a, const SpmmStats &b,
                     const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.tasks, b.tasks) << what;
    EXPECT_EQ(a.idealCycles, b.idealCycles) << what;
    EXPECT_EQ(a.syncCycles, b.syncCycles) << what;
    EXPECT_EQ(a.rounds, b.rounds) << what;
    EXPECT_EQ(a.rowsSwitched, b.rowsSwitched) << what;
    EXPECT_EQ(a.convergedRound, b.convergedRound) << what;
    EXPECT_EQ(a.rawStalls, b.rawStalls) << what;
    EXPECT_EQ(a.peakQueueDepth, b.peakQueueDepth) << what;
    EXPECT_EQ(a.peakNetworkDepth, b.peakNetworkDepth) << what;
    EXPECT_EQ(a.roundCycles, b.roundCycles) << what;
    EXPECT_EQ(a.perPeTasks, b.perPeTasks) << what;
    EXPECT_DOUBLE_EQ(a.utilization, b.utilization) << what;
}

} // namespace

// ---------------------------------------------------------- registry

TEST(PlatformRegistry, KnownPlatformsResolveAndEmptyIsUnconstrained)
{
    EXPECT_GE(knownPlatforms().size(), 4u);
    EXPECT_EQ(knownPlatforms().front().name, "unconstrained");
    EXPECT_EQ(knownPlatforms().front().bandwidthGBs, 0.0);

    EXPECT_EQ(findPlatform("").name, "unconstrained");
    EXPECT_EQ(findPlatform("unconstrained").name, "unconstrained");
    EXPECT_EQ(findPlatform("d5005-ddr4").bandwidthGBs, 76.8);
    EXPECT_EQ(findPlatform("p100-hbm2").bandwidthGBs, 732.0);
    EXPECT_EQ(findPlatformOrNull("hbm9"), nullptr);
}

TEST(PlatformRegistryDeath, UnknownPlatformIsFatal)
{
    EXPECT_EXIT(findPlatform("hbm9"), ::testing::ExitedWithCode(1),
                "unknown platform");
}

TEST(PlatformRegistryDeath, UnknownPlatformSuggestsNearMiss)
{
    EXPECT_EXIT(findPlatform("d5005-ddr5"), ::testing::ExitedWithCode(1),
                "did you mean 'd5005-ddr4'");
    EXPECT_EXIT(findPlatform("p100-hbm"), ::testing::ExitedWithCode(1),
                "did you mean 'p100-hbm2'");
}

TEST(PlatformRegistry, ConfigValidateRejectsUnknownPlatform)
{
    AccelConfig cfg;
    cfg.platform = "hbm9";
    EXPECT_NE(cfg.validate().find("unknown platform"), std::string::npos);
    cfg.platform = "vcu128-hbm2";
    EXPECT_EQ(cfg.validate(), "");
}

// --------------------------------------------------- floor arithmetic

TEST(MemoryModelUnit, BytesPerCycleAndFloor)
{
    // 76.8 GB/s at 275 MHz = 279.27.. bytes per cycle.
    MemoryModel mem(findPlatform("d5005-ddr4"), 275.0);
    EXPECT_FALSE(mem.unconstrained());
    EXPECT_NEAR(mem.bytesPerCycle(), 76.8e3 / 275.0, 1e-9);
    EXPECT_EQ(mem.floorCycles(0), 0);
    EXPECT_EQ(mem.floorCycles(1), 1);          // ceil rounding
    EXPECT_EQ(mem.floorCycles(280), 2);        // just over one cycle
    EXPECT_EQ(mem.floorCycles(279270), 1000);  // ~1000 cycles

    MemoryModel inf(findPlatform("unconstrained"), 275.0);
    EXPECT_TRUE(inf.unconstrained());
    EXPECT_EQ(inf.floorCycles(1'000'000'000), 0);
}

TEST(MemoryModelUnit, RoundTrafficAndMigrationAccounting)
{
    MemoryModel mem(findPlatform("ddr4-2400"), 275.0);
    MemoryTraffic t = mem.roundTraffic(/*nnz=*/100, /*inner=*/32,
                                       /*rows=*/50);
    EXPECT_EQ(t.sparseBytes, 100 * 8);
    EXPECT_EQ(t.denseBytes, 32 * 4);
    EXPECT_EQ(t.outputBytes, 50 * 4);
    EXPECT_EQ(t.migrationBytes, 0);
    EXPECT_EQ(t.total(), 800 + 128 + 200);

    // Rows 1 and 3 change owner: their nnz re-streams at 8 B/non-zero.
    std::vector<int> before = {0, 0, 1, 1};
    std::vector<int> after = {0, 2, 1, 0};
    std::vector<Count> row_work = {5, 7, 9, 11};
    EXPECT_EQ(mem.migrationBytes(before, after, row_work), (7 + 11) * 8);
    EXPECT_EQ(mem.migrationBytes(before, before, row_work), 0);
}

// ------------------------------------------- traffic in the fidelities

TEST(MemoryModelTraffic, EngineAccountsClosedFormBytesOnStaticPolicy)
{
    Dataset ds = loadSyntheticByName("cora", /*seed=*/3, /*scale=*/0.5);
    Rng rng(3, /*seq=*/2);
    const Index k = 8;
    DenseMatrix b(ds.adjacency.cols(), k);
    b.fillUniform(rng, -1.0f, 1.0f);

    AccelConfig cfg = configFor("baseline", 16, "d5005-ddr4");
    SpmmResult r = runAdjacencySpmm(cfg, ds, b, TdqKind::Tdq2OmegaCsc);

    // Static policy: no migration; per-round traffic is closed-form.
    const Count nnz = ds.adjacency.nnz();
    const Count rows = ds.adjacency.rows();
    EXPECT_EQ(r.stats.traffic.sparseBytes, k * nnz * 8);
    EXPECT_EQ(r.stats.traffic.denseBytes, k * rows * 4);  // square A
    EXPECT_EQ(r.stats.traffic.outputBytes, k * rows * 4);
    EXPECT_EQ(r.stats.traffic.migrationBytes, 0);
    EXPECT_GT(r.stats.memoryCycles, 0);
}

TEST(MemoryModelTraffic, TrafficIsAccountedEvenWhenUnconstrained)
{
    Dataset ds = loadSyntheticByName("cora", /*seed=*/3, /*scale=*/0.5);
    Rng rng(3, /*seq=*/2);
    DenseMatrix b(ds.adjacency.cols(), 8);
    b.fillUniform(rng, -1.0f, 1.0f);

    AccelConfig cfg = configFor("remote-d", 16, "unconstrained");
    SpmmResult r = runAdjacencySpmm(cfg, ds, b, TdqKind::Tdq2OmegaCsc);
    EXPECT_GT(r.stats.traffic.total(), 0);
    if (r.stats.rowsSwitched > 0) {
        EXPECT_GT(r.stats.traffic.migrationBytes, 0);
    }
    // ... but the floor never engages.
    EXPECT_EQ(r.stats.memoryCycles, 0);
    EXPECT_EQ(r.stats.bwBoundRounds, 0);
}

TEST(MemoryModelTraffic, PerfModelMatchesEngineByteAccounting)
{
    Dataset ds = loadSyntheticByName("citeseer", /*seed=*/5, /*scale=*/0.5);
    Rng rng(5, /*seq=*/2);
    const Index k = 6;
    DenseMatrix b(ds.adjacency.cols(), k);
    b.fillUniform(rng, -1.0f, 1.0f);

    AccelConfig cfg = configFor("baseline", 16, "ddr4-2400");
    SpmmResult engine = runAdjacencySpmm(cfg, ds, b, TdqKind::Tdq2OmegaCsc);

    RowPartition part = makePartitionPolicy(cfg)->build(
        ds.adjacency.rows(), ds.adjacency.rowNnz(), cfg);
    PerfSpmmResult model =
        PerfModel(cfg).runSpmm(ds.adjacency.rowNnz(), k, part);

    // Same accounting rules in both fidelities: identical steady bytes
    // for identical operands (baseline moves no rows in either).
    EXPECT_EQ(engine.stats.traffic.sparseBytes, model.traffic.sparseBytes);
    EXPECT_EQ(engine.stats.traffic.denseBytes, model.traffic.denseBytes);
    EXPECT_EQ(engine.stats.traffic.outputBytes, model.traffic.outputBytes);
    EXPECT_EQ(engine.stats.traffic.migrationBytes,
              model.traffic.migrationBytes);
    EXPECT_EQ(engine.stats.memoryCycles, model.memoryCycles);
}

// --------------------------------------------- roofline composition

TEST(MemoryModelRoofline, CappedPlatformStretchesRoundsMonotonically)
{
    Dataset ds = loadSyntheticByName("cora", /*seed=*/7, /*scale=*/0.5);
    Rng rng(7, /*seq=*/2);
    DenseMatrix b(ds.adjacency.cols(), 12);
    b.fillUniform(rng, -1.0f, 1.0f);

    SpmmResult inf = runAdjacencySpmm(configFor("remote-d", 16,
                                                "unconstrained"),
                                      ds, b, TdqKind::Tdq2OmegaCsc);
    SpmmResult cap = runAdjacencySpmm(configFor("remote-d", 16,
                                                "ddr4-2400"),
                                      ds, b, TdqKind::Tdq2OmegaCsc);

    EXPECT_GT(cap.stats.bwBoundRounds, 0);
    EXPECT_GT(cap.stats.memoryCycles, 0);
    EXPECT_GT(cap.stats.cycles, inf.stats.cycles);
    ASSERT_EQ(cap.stats.roundCycles.size(), inf.stats.roundCycles.size());
    // Durations compose per round: the total is exactly the sum of the
    // (possibly stretched) round durations in both runs.
    Cycle cap_sum = 0, inf_sum = 0;
    for (Cycle c : cap.stats.roundCycles) cap_sum += c;
    for (Cycle c : inf.stats.roundCycles) inf_sum += c;
    EXPECT_EQ(cap_sum, cap.stats.cycles);
    EXPECT_EQ(inf_sum, inf.stats.cycles);
    // The result stays functionally exact. Memory stalls shift the Omega
    // arbitration parity between rounds, so task interleaving (and with
    // it FP accumulation order) may differ — rounding-level only.
    EXPECT_LE(cap.c.maxAbsDiff(inf.c), 1e-4f);
}

TEST(MemoryModelRoofline, CappedRunsAreDeterministic)
{
    Dataset ds = loadSyntheticByName("citeseer", /*seed=*/9, /*scale=*/0.5);
    Rng rng(9, /*seq=*/2);
    DenseMatrix b(ds.adjacency.cols(), 8);
    b.fillUniform(rng, -1.0f, 1.0f);

    AccelConfig cfg = configFor("remote-c", 16, "ddr4-2400");
    SpmmResult r1 = runAdjacencySpmm(cfg, ds, b, TdqKind::Tdq2OmegaCsc);
    SpmmResult r2 = runAdjacencySpmm(cfg, ds, b, TdqKind::Tdq2OmegaCsc);
    expectStatsIdentical(r1.stats, r2.stats, "capped repeat");
    EXPECT_EQ(r1.stats.bwBoundRounds, r2.stats.bwBoundRounds);
    EXPECT_EQ(r1.stats.memoryCycles, r2.stats.memoryCycles);
}

// Event and batched engines must stay bit-identical when the platform
// is constrained: the floor composes outside the round dynamics, so the
// batched replay reproduces the same stretched durations.
TEST(MemoryModelRoofline, EventAndBatchedAgreeOnCappedPlatform)
{
    Dataset ds = loadSyntheticByName("cora", /*seed=*/11, /*scale=*/0.5);
    Rng rng(11, /*seq=*/2);
    DenseMatrix b(ds.adjacency.cols(), 16);
    b.fillUniform(rng, -1.0f, 1.0f);

    for (const char *policy : {"baseline", "remote-d"}) {
        AccelConfig ev = configFor(policy, 16, "ddr4-2400");
        ev.engine = EngineKind::Event;
        AccelConfig ba = configFor(policy, 16, "ddr4-2400");
        ba.engine = EngineKind::Batched;
        SpmmResult r_ev = runAdjacencySpmm(ev, ds, b,
                                           TdqKind::Tdq2OmegaCsc);
        SpmmResult r_ba = runAdjacencySpmm(ba, ds, b,
                                           TdqKind::Tdq2OmegaCsc);
        expectStatsIdentical(r_ev.stats, r_ba.stats, policy);
        EXPECT_EQ(r_ev.stats.bwBoundRounds, r_ba.stats.bwBoundRounds)
            << policy;
        EXPECT_EQ(r_ev.stats.memoryCycles, r_ba.stats.memoryCycles)
            << policy;
        EXPECT_LT(r_ba.stats.roundsSimulated, r_ba.stats.rounds) << policy;
    }
}

// ------------------------------------------------ Session threading

TEST(MemoryModelSession, WorkloadGraphReportsTrafficPerLayer)
{
    Dataset ds = loadSyntheticByName("cora", /*seed=*/13, /*scale=*/0.3);
    sim::WorkloadBundle w = sim::buildGraphSage(
        ds, ds.spec.f2, ds.spec.f3, /*meanAggregate=*/true, 13);
    AccelConfig cfg = configFor("remote-d", 16, "d5005-ddr4");
    sim::Session session(cfg);
    sim::SessionResult res = sim::runWorkload(session, std::move(w));

    ASSERT_FALSE(res.nodeStats.empty());
    MemoryTraffic sum;
    Cycle mem_cycles = 0;
    Count bw_rounds = 0;
    for (const SpmmStats &s : res.nodeStats) {
        EXPECT_GT(s.traffic.total(), 0) << s.label;
        sum += s.traffic;
        mem_cycles += s.memoryCycles;
        bw_rounds += s.bwBoundRounds;
    }
    EXPECT_EQ(res.traffic.total(), sum.total());
    EXPECT_EQ(res.memoryCycles, mem_cycles);
    EXPECT_EQ(res.bwBoundRounds, bw_rounds);
    EXPECT_GT(res.memoryCycles, 0);
}

// ------------------------------------------------ the acceptance lock

// Unconstrained platform ⇒ bit-identical to a platform-less run (the
// exact configs every pre-memory-model call site builds): all six paper
// policies × Cora/Citeseer/Pubmed, full cycle-mode GCN through the
// sweep engine, on both cycle engines.
TEST(MemoryModelEquivalence, UnconstrainedIsBitIdenticalOnSixPolicies)
{
    driver::SweepOptions opts;
    opts.datasets = {"cora", "citeseer", "pubmed"};
    opts.designs = {"baseline", "local-a", "local-b",
                    "remote-c", "remote-d", "eie-like"};
    opts.peCounts = {64};
    opts.modes = {driver::SweepMode::Cycle};
    opts.seed = 7;

    for (EngineKind engine : {EngineKind::Event, EngineKind::Batched}) {
        opts.engine = engine;

        opts.platforms = {"unconstrained"};
        auto points = driver::expandGrid(opts);
        auto swept = driver::runSweep(opts, points);
        ASSERT_EQ(swept.size(), 18u);

        for (std::size_t i = 0; i < swept.size(); ++i) {
            const auto &o = swept[i];
            std::string what = o.point.dataset + " " + o.point.policy +
                               " " + engineKindName(engine);
            ASSERT_TRUE(o.ok) << what << ": " << o.error;

            // The platform-less twin: same point executed through the
            // exact config a pre-memory-model sweep built (platform
            // field left empty), same derived seed.
            driver::SweepPoint twin = o.point;
            twin.platform = "";
            driver::SweepOutcome base =
                driver::runSweepPoint(twin, opts);
            ASSERT_TRUE(base.ok) << what << ": " << base.error;

            EXPECT_EQ(o.cycles, base.cycles) << what;
            EXPECT_EQ(o.tasks, base.tasks) << what;
            EXPECT_EQ(o.idealCycles, base.idealCycles) << what;
            EXPECT_EQ(o.syncCycles, base.syncCycles) << what;
            EXPECT_EQ(o.rowsSwitched, base.rowsSwitched) << what;
            EXPECT_EQ(o.convergedRound, base.convergedRound) << what;
            EXPECT_EQ(o.peakTqDepth, base.peakTqDepth) << what;
            EXPECT_EQ(o.rounds, base.rounds) << what;
            EXPECT_EQ(o.roundsSimulated, base.roundsSimulated) << what;
            // The unconstrained floor never engages.
            EXPECT_EQ(o.memoryCycles, 0) << what;
            EXPECT_EQ(o.bwBoundRounds, 0) << what;
            // ... while traffic is still accounted.
            EXPECT_GT(o.bytesTotal, 0) << what;
        }
    }
}
