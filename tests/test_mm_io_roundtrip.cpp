/**
 * @file
 * Matrix Market I/O round-trip tests: write→read→compare on the bundled
 * sample graph (data/example_graph.mtx) and on a freshly generated
 * power-law adjacency, including the CSC/CSR conversion path a loaded
 * matrix takes on its way into the accelerator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "sparse/convert.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/mm_io.hpp"

using namespace awb;

#ifndef AWB_SOURCE_DIR
#define AWB_SOURCE_DIR "."
#endif

namespace {

const char *kSamplePath = AWB_SOURCE_DIR "/data/example_graph.mtx";

void
expectSameStructure(const CooMatrix &a, const CooMatrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    ASSERT_EQ(a.nnz(), b.nnz());
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        EXPECT_EQ(a.entries()[i].row, b.entries()[i].row) << "entry " << i;
        EXPECT_EQ(a.entries()[i].col, b.entries()[i].col) << "entry " << i;
    }
}

} // namespace

// The bundled sample was produced by this writer, so one further
// write→read trip must reproduce it exactly — values included.
TEST(MmIoRoundTrip, BundledSampleGraphIsExactlyStable)
{
    CooMatrix first = readMatrixMarketFile(kSamplePath);
    ASSERT_GT(first.nnz(), 0);
    ASSERT_EQ(first.rows(), first.cols());

    std::ostringstream out;
    writeMatrixMarket(out, first);
    std::istringstream in(out.str());
    CooMatrix second = readMatrixMarket(in);

    expectSameStructure(first, second);
    for (std::size_t i = 0; i < first.entries().size(); ++i)
        EXPECT_EQ(first.entries()[i].val, second.entries()[i].val)
            << "entry " << i;
}

// A generated matrix survives the trip within the writer's text
// precision on the first pass, and exactly from then on (the second
// write emits the already-quantized values verbatim).
TEST(MmIoRoundTrip, GeneratedAdjacencyRoundTrips)
{
    Rng rng(41);
    GraphGenParams params;
    params.nodes = 257;  // deliberately not a power of two
    params.edges = 1800;
    params.style = GraphStyle::PowerLaw;
    CooMatrix generated = synthesizeAdjacency(rng, params);
    for (auto &t : generated.entries())
        t.val = rng.nextFloat(-2.0f, 2.0f);
    generated.canonicalize();

    std::ostringstream out1;
    writeMatrixMarket(out1, generated);
    std::istringstream in1(out1.str());
    CooMatrix trip1 = readMatrixMarket(in1);
    expectSameStructure(generated, trip1);
    for (std::size_t i = 0; i < generated.entries().size(); ++i) {
        float orig = generated.entries()[i].val;
        EXPECT_NEAR(orig, trip1.entries()[i].val,
                    1e-5 * std::max(1.0f, std::fabs(orig)))
            << "entry " << i;
    }

    std::ostringstream out2;
    writeMatrixMarket(out2, trip1);
    EXPECT_EQ(out1.str(), out2.str());
}

// The conversion path a loaded .mtx takes into the engine: COO → CSR →
// CSC must agree with COO → CSC, and both with the dense rendering.
TEST(MmIoRoundTrip, CsrCscConversionPathPreservesTheMatrix)
{
    CooMatrix coo = readMatrixMarketFile(kSamplePath);

    CscMatrix direct = CscMatrix::fromCoo(coo);
    CsrMatrix via_csr = CsrMatrix::fromCoo(coo);
    CscMatrix converted = csrToCsc(via_csr);

    ASSERT_EQ(direct.rows(), converted.rows());
    ASSERT_EQ(direct.cols(), converted.cols());
    ASSERT_EQ(direct.nnz(), converted.nnz());
    EXPECT_EQ(direct.colPtr(), converted.colPtr());
    EXPECT_EQ(direct.rowId(), converted.rowId());
    EXPECT_EQ(direct.val(), converted.val());

    DenseMatrix dense_direct = cscToDense(direct);
    DenseMatrix dense_converted = cscToDense(converted);
    EXPECT_EQ(dense_direct.maxAbsDiff(dense_converted), 0.0);

    // And writing the CSC content back out round-trips structurally.
    CooMatrix back(coo.rows(), coo.cols());
    for (Index j = 0; j < direct.cols(); ++j)
        for (Count p = direct.colPtr()[static_cast<std::size_t>(j)];
             p < direct.colPtr()[static_cast<std::size_t>(j) + 1]; ++p)
            back.add(direct.rowId()[static_cast<std::size_t>(p)], j,
                     direct.val()[static_cast<std::size_t>(p)]);
    back.canonicalize();
    std::ostringstream out;
    writeMatrixMarket(out, back);
    std::istringstream in(out.str());
    CooMatrix again = readMatrixMarket(in);
    EXPECT_EQ(again.nnz(), coo.nnz());
}

// ------------------------------------------- writer precision (bugfix)

// The writer streams values at max_digits10, so a write→read trip is
// exact for every representable float — including values the historic
// 6-significant-digit default silently perturbed.
TEST(MmIoRoundTrip, AdversarialValuesSurviveExactly)
{
    CooMatrix m(4, 4);
    const float adversarial[] = {
        1.0000001f,               // 1e-7 delta off 1.0 (8 sig. digits)
        0.30000001f,              // differs from 0.3f in the last ulp
        1e-7f,
        1.17549435e-38f,          // smallest normal
        1e-40f,                   // subnormal
        -1.4012984643e-45f,       // smallest (negative) subnormal
        16777217.0f,              // 2^24 + 1: not exactly representable,
                                  // rounds to 2^24 — must survive as such
        3.14159274f,              // closest float to pi
    };
    int i = 0;
    for (float v : adversarial) {
        m.add(i / 4, i % 4, v);
        ++i;
    }
    m.canonicalize();

    std::ostringstream out;
    writeMatrixMarket(out, m);
    std::istringstream in(out.str());
    CooMatrix back = readMatrixMarket(in);

    expectSameStructure(m, back);
    for (std::size_t e = 0; e < m.entries().size(); ++e)
        EXPECT_EQ(m.entries()[e].val, back.entries()[e].val)
            << "entry " << e << " perturbed by the text round-trip";
}

// Values that are *almost* equal must stay distinct through the trip —
// the 6-digit writer used to collapse 1e-7-scale deltas.
TEST(MmIoRoundTrip, NearbyValuesStayDistinct)
{
    CooMatrix m(2, 2);
    m.add(0, 0, 1.0f);
    m.add(0, 1, 1.0000001f);
    m.canonicalize();
    ASSERT_NE(m.entries()[0].val, m.entries()[1].val);

    std::ostringstream out;
    writeMatrixMarket(out, m);
    std::istringstream in(out.str());
    CooMatrix back = readMatrixMarket(in);
    ASSERT_EQ(back.nnz(), 2);
    EXPECT_NE(back.entries()[0].val, back.entries()[1].val)
        << "write→read collapsed a 1e-7 delta";
}

// ---------------------------------------- CRLF / blank-line robustness

// A CRLF-terminated file (Windows checkout, curl'd fixture) must parse
// identically to its LF twin: trailing '\r' used to corrupt the size
// line and make "\r"-only lines fatal as out-of-range entries.
TEST(MmIoRoundTrip, CrlfFileParsesIdenticallyToLf)
{
    const std::string lf =
        "%%MatrixMarket matrix coordinate real general\n"
        "% comment line\n"
        "3 3 3\n"
        "1 1 0.5\n"
        "2 3 -1.25\n"
        "3 2 2\n";
    std::string crlf;
    for (char c : lf) {
        if (c == '\n') crlf += '\r';
        crlf += c;
    }

    std::istringstream in_lf(lf), in_crlf(crlf);
    CooMatrix a = readMatrixMarket(in_lf);
    CooMatrix b = readMatrixMarket(in_crlf);
    expectSameStructure(a, b);
    for (std::size_t i = 0; i < a.entries().size(); ++i)
        EXPECT_EQ(a.entries()[i].val, b.entries()[i].val);
}

// Blank (or whitespace-only, or bare-"\r") lines before the size line
// and inside the entry list are separators, not data: they used to be
// parsed as the size line ("bad size line") or as entries ("entry out
// of range").
TEST(MmIoRoundTrip, BlankAndWhitespaceLinesAreSkipped)
{
    const std::string text =
        "%%MatrixMarket matrix coordinate real general\r\n"
        "% comment\r\n"
        "\r\n"
        "   \n"
        "2 2 2\r\n"
        "1 1 1.5\r\n"
        "\r\n"
        "2 2 2.5\r\n";
    std::istringstream in(text);
    CooMatrix m = readMatrixMarket(in);
    ASSERT_EQ(m.rows(), 2);
    ASSERT_EQ(m.cols(), 2);
    ASSERT_EQ(m.nnz(), 2);
    EXPECT_EQ(m.entries()[0].val, 1.5f);
    EXPECT_EQ(m.entries()[1].val, 2.5f);
}

// The bundled sample with synthetic CRLF endings still loads through
// the file-based entry point.
TEST(MmIoRoundTrip, SampleSurvivesCrlfRewrite)
{
    CooMatrix orig = readMatrixMarketFile(kSamplePath);

    std::ifstream src(kSamplePath);
    ASSERT_TRUE(src.is_open());
    std::ostringstream crlf;
    std::string line;
    while (std::getline(src, line)) crlf << line << "\r\n";

    std::istringstream in(crlf.str());
    CooMatrix back = readMatrixMarket(in);
    expectSameStructure(orig, back);
}

// ------------------------------------- degenerate sizes (reader bugfix)

// The writer emits "0 0 0"-style size lines for empty and
// zero-dimension matrices; the reader historically rejected any
// rows/cols of zero as a "bad size line", breaking its own writer's
// output. Degenerate shapes must round-trip like any other matrix.
TEST(MmIoDegenerate, ZeroNnzAndZeroDimensionMatricesRoundTrip)
{
    const struct
    {
        Index rows;
        Index cols;
    } shapes[] = {{0, 0}, {0, 5}, {5, 0}, {5, 5}, {1, 8}, {8, 1}};

    for (const auto &s : shapes) {
        SCOPED_TRACE(std::to_string(s.rows) + "x" +
                     std::to_string(s.cols));
        CooMatrix empty(s.rows, s.cols);
        std::ostringstream out;
        writeMatrixMarket(out, empty);
        std::istringstream in(out.str());
        CooMatrix trip = readMatrixMarket(in);
        EXPECT_EQ(trip.rows(), s.rows);
        EXPECT_EQ(trip.cols(), s.cols);
        EXPECT_EQ(trip.nnz(), 0);
    }
}

TEST(MmIoDegenerate, SingleRowAndSingleColumnMatricesRoundTrip)
{
    // 1×N: every entry lives in row 1 of the one-based format.
    CooMatrix wide(1, 9);
    wide.add(0, 0, 2.5f);
    wide.add(0, 4, -1.25f);
    wide.add(0, 8, 0.5f);
    wide.canonicalize();
    std::ostringstream wout;
    writeMatrixMarket(wout, wide);
    std::istringstream win(wout.str());
    CooMatrix wtrip = readMatrixMarket(win);
    ASSERT_EQ(wtrip.rows(), 1);
    ASSERT_EQ(wtrip.cols(), 9);
    ASSERT_EQ(wtrip.nnz(), 3);
    for (std::size_t i = 0; i < wide.entries().size(); ++i) {
        EXPECT_EQ(wide.entries()[i].col, wtrip.entries()[i].col);
        EXPECT_EQ(wide.entries()[i].val, wtrip.entries()[i].val);
    }

    // N×1, and its CSR/CSC conversions behave on the degenerate shape.
    CooMatrix tall(9, 1);
    tall.add(2, 0, 1.0f);
    tall.add(7, 0, -3.0f);
    tall.canonicalize();
    std::ostringstream tout;
    writeMatrixMarket(tout, tall);
    std::istringstream tin(tout.str());
    CooMatrix ttrip = readMatrixMarket(tin);
    ASSERT_EQ(ttrip.nnz(), 2);
    CscMatrix csc = CscMatrix::fromCoo(ttrip);
    EXPECT_EQ(csc.cols(), 1);
    EXPECT_EQ(csc.colNnz(0), 2);
    CsrMatrix csr = cscToCsr(csc);
    EXPECT_EQ(csr.rowNnz(2), 1);
    EXPECT_EQ(csr.rowNnz(7), 1);
}

TEST(MmIoDegenerateDeath, NegativeGarbageAndImpossibleSizesStillFatal)
{
    auto read = [](const std::string &body) {
        std::istringstream in(
            "%%MatrixMarket matrix coordinate real general\n" + body);
        readMatrixMarket(in);
    };
    EXPECT_EXIT(read("-1 4 0\n"), ::testing::ExitedWithCode(1),
                "bad size line");
    EXPECT_EXIT(read("4 -1 0\n"), ::testing::ExitedWithCode(1),
                "bad size line");
    EXPECT_EXIT(read("4 4 -2\n"), ::testing::ExitedWithCode(1),
                "bad size line");
    EXPECT_EXIT(read("pigeon\n"), ::testing::ExitedWithCode(1),
                "bad size line");
    // nnz > 0 cannot fit in a zero-dimension matrix.
    EXPECT_EXIT(read("0 0 1\n1 1 1.0\n"),
                ::testing::ExitedWithCode(1), "zero-dimension");
}
