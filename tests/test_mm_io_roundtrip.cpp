/**
 * @file
 * Matrix Market I/O round-trip tests: write→read→compare on the bundled
 * sample graph (data/example_graph.mtx) and on a freshly generated
 * power-law adjacency, including the CSC/CSR conversion path a loaded
 * matrix takes on its way into the accelerator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "sparse/convert.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/mm_io.hpp"

using namespace awb;

#ifndef AWB_SOURCE_DIR
#define AWB_SOURCE_DIR "."
#endif

namespace {

const char *kSamplePath = AWB_SOURCE_DIR "/data/example_graph.mtx";

void
expectSameStructure(const CooMatrix &a, const CooMatrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    ASSERT_EQ(a.nnz(), b.nnz());
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        EXPECT_EQ(a.entries()[i].row, b.entries()[i].row) << "entry " << i;
        EXPECT_EQ(a.entries()[i].col, b.entries()[i].col) << "entry " << i;
    }
}

} // namespace

// The bundled sample was produced by this writer, so one further
// write→read trip must reproduce it exactly — values included.
TEST(MmIoRoundTrip, BundledSampleGraphIsExactlyStable)
{
    CooMatrix first = readMatrixMarketFile(kSamplePath);
    ASSERT_GT(first.nnz(), 0);
    ASSERT_EQ(first.rows(), first.cols());

    std::ostringstream out;
    writeMatrixMarket(out, first);
    std::istringstream in(out.str());
    CooMatrix second = readMatrixMarket(in);

    expectSameStructure(first, second);
    for (std::size_t i = 0; i < first.entries().size(); ++i)
        EXPECT_EQ(first.entries()[i].val, second.entries()[i].val)
            << "entry " << i;
}

// A generated matrix survives the trip within the writer's text
// precision on the first pass, and exactly from then on (the second
// write emits the already-quantized values verbatim).
TEST(MmIoRoundTrip, GeneratedAdjacencyRoundTrips)
{
    Rng rng(41);
    GraphGenParams params;
    params.nodes = 257;  // deliberately not a power of two
    params.edges = 1800;
    params.style = GraphStyle::PowerLaw;
    CooMatrix generated = synthesizeAdjacency(rng, params);
    for (auto &t : generated.entries())
        t.val = rng.nextFloat(-2.0f, 2.0f);
    generated.canonicalize();

    std::ostringstream out1;
    writeMatrixMarket(out1, generated);
    std::istringstream in1(out1.str());
    CooMatrix trip1 = readMatrixMarket(in1);
    expectSameStructure(generated, trip1);
    for (std::size_t i = 0; i < generated.entries().size(); ++i) {
        float orig = generated.entries()[i].val;
        EXPECT_NEAR(orig, trip1.entries()[i].val,
                    1e-5 * std::max(1.0f, std::fabs(orig)))
            << "entry " << i;
    }

    std::ostringstream out2;
    writeMatrixMarket(out2, trip1);
    EXPECT_EQ(out1.str(), out2.str());
}

// The conversion path a loaded .mtx takes into the engine: COO → CSR →
// CSC must agree with COO → CSC, and both with the dense rendering.
TEST(MmIoRoundTrip, CsrCscConversionPathPreservesTheMatrix)
{
    CooMatrix coo = readMatrixMarketFile(kSamplePath);

    CscMatrix direct = CscMatrix::fromCoo(coo);
    CsrMatrix via_csr = CsrMatrix::fromCoo(coo);
    CscMatrix converted = csrToCsc(via_csr);

    ASSERT_EQ(direct.rows(), converted.rows());
    ASSERT_EQ(direct.cols(), converted.cols());
    ASSERT_EQ(direct.nnz(), converted.nnz());
    EXPECT_EQ(direct.colPtr(), converted.colPtr());
    EXPECT_EQ(direct.rowId(), converted.rowId());
    EXPECT_EQ(direct.val(), converted.val());

    DenseMatrix dense_direct = cscToDense(direct);
    DenseMatrix dense_converted = cscToDense(converted);
    EXPECT_EQ(dense_direct.maxAbsDiff(dense_converted), 0.0);

    // And writing the CSC content back out round-trips structurally.
    CooMatrix back(coo.rows(), coo.cols());
    for (Index j = 0; j < direct.cols(); ++j)
        for (Count p = direct.colPtr()[static_cast<std::size_t>(j)];
             p < direct.colPtr()[static_cast<std::size_t>(j) + 1]; ++p)
            back.add(direct.rowId()[static_cast<std::size_t>(p)], j,
                     direct.val()[static_cast<std::size_t>(p)]);
    back.canonicalize();
    std::ostringstream out;
    writeMatrixMarket(out, back);
    std::istringstream in(out.str());
    CooMatrix again = readMatrixMarket(in);
    EXPECT_EQ(again.nnz(), coo.nnz());
}
