/**
 * @file
 * Tests for the round-level performance model: the water-filling bound,
 * cross-validation against the cycle-accurate engine (the two fidelities
 * must agree on cycles and utilization within tolerance), full-scale
 * tractability, and the area/energy/platform models.
 */

#include <gtest/gtest.h>

#include "accel/gcn_accel.hpp"
#include "accel/perf_model.hpp"
#include "accel/spmm_engine.hpp"
#include "common/rng.hpp"
#include "gcn/ops_count.hpp"
#include "graph/datasets.hpp"
#include "model/area_model.hpp"
#include "model/energy_model.hpp"
#include "model/platforms.hpp"
#include "sparse/convert.hpp"

using namespace awb;

TEST(BalancedDrain, NoSharingIsMax)
{
    std::vector<Count> w = {10, 2, 2, 2};
    EXPECT_EQ(PerfModel::balancedDrain(w, 0), 10);
}

TEST(BalancedDrain, FullSharingReachesMean)
{
    std::vector<Count> w = {16, 0, 0, 0};
    // hops >= P-1: work can spread everywhere -> ceil(16/4) = 4.
    EXPECT_EQ(PerfModel::balancedDrain(w, 3), 4);
}

TEST(BalancedDrain, OneHopSpreadsToNeighbours)
{
    std::vector<Count> w = {12, 0, 0, 0};
    // PE0's work reaches PEs {0,1}: drain 6.
    EXPECT_EQ(PerfModel::balancedDrain(w, 1), 6);
    // Middle hotspot reaches three PEs: drain 4.
    std::vector<Count> w2 = {0, 12, 0, 0};
    EXPECT_EQ(PerfModel::balancedDrain(w2, 1), 4);
}

TEST(BalancedDrain, ClusterNeedsMoreHops)
{
    // Two adjacent hot PEs: 1 hop reaches 4 PEs -> 24/4 = 6;
    // 2 hops reach 6 PEs -> 4.
    std::vector<Count> w = {0, 0, 12, 12, 0, 0, 0, 0};
    EXPECT_EQ(PerfModel::balancedDrain(w, 1), 6);
    EXPECT_EQ(PerfModel::balancedDrain(w, 2), 4);
}

TEST(BalancedDrain, ServedConservesWork)
{
    std::vector<Count> w = {9, 1, 7, 0, 3, 3, 0, 5};
    std::vector<Count> served;
    Cycle t = PerfModel::balancedDrain(w, 1, &served);
    Count total = 0;
    for (Count s : served) {
        total += s;
        EXPECT_LE(s, t);
    }
    EXPECT_EQ(total, 28);
}

namespace {

/** Results of running both fidelities on the same matrix. */
struct FidelityPair
{
    SpmmStats cyc;
    PerfSpmmResult prf;
};

FidelityPair
runBoth(Design design, const char *dataset, double scale, int pes,
        Index rounds)
{
    auto ds = loadSyntheticByName(dataset, 11, scale);
    const auto &hop = ds.spec.hopOverride;
    AccelConfig cfg = makeConfig(design, pes, hop > 0 ? hop : 1);

    DenseMatrix b(ds.spec.nodes, rounds);
    Rng rng(3);
    b.fillUniform(rng, -1.0f, 1.0f);

    FidelityPair out;
    {
        RowPartition part(ds.spec.nodes, pes, cfg.mapPolicy);
        out.cyc = SpmmEngine(cfg)
                      .execute(ds.adjacency, b, TdqKind::Tdq2OmegaCsc, part)
                      .stats;
    }
    {
        RowPartition part(ds.spec.nodes, pes, cfg.mapPolicy);
        out.prf = PerfModel(cfg).runSpmm(ds.adjacency.rowNnz(), rounds,
                                         part);
    }
    EXPECT_EQ(out.prf.tasks, out.cyc.tasks);
    return out;
}

} // namespace

/** Without rebalancing the two fidelities must agree tightly: the round
 *  duration is just the slowest PE's drain plus fixed overheads. */
class CrossValidateBaseline
    : public ::testing::TestWithParam<std::tuple<const char *, double>>
{};

TEST_P(CrossValidateBaseline, ModelMatchesCycleEngine)
{
    auto [dataset, scale] = GetParam();
    auto pair = runBoth(Design::Baseline, dataset, scale, 16, 8);
    double ratio = static_cast<double>(pair.prf.cycles) /
                   static_cast<double>(pair.cyc.cycles);
    // 35% band: the round model cannot see stream-order effects — e.g.
    // the +I diagonal of the normalized adjacency sends a run of
    // consecutive columns' flits to the same PE (a slow hotspot wave),
    // which costs the cycle engine extra queueing on diagonal-dominated
    // matrices like Pubmed.
    EXPECT_NEAR(ratio, 1.0, 0.35)
        << dataset << ": cycle=" << pair.cyc.cycles
        << " model=" << pair.prf.cycles;
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, CrossValidateBaseline,
    ::testing::Values(std::make_tuple("cora", 0.5),
                      std::make_tuple("citeseer", 0.4),
                      std::make_tuple("pubmed", 0.15),
                      std::make_tuple("nell", 0.05)));

/** With rebalancing the round model is the optimistic envelope (optimal
 *  water-filling vs the engine's greedy online sharing; the paper itself
 *  reports a 4-10% utilization loss to the auto-tuning phase). Validate
 *  that it brackets the engine from below but stays within 2x, and that
 *  both fidelities agree rebalancing beats the baseline. */
class CrossValidateRebalanced
    : public ::testing::TestWithParam<std::tuple<Design, const char *,
                                                 double>>
{};

TEST_P(CrossValidateRebalanced, ModelIsTightLowerEnvelope)
{
    auto [design, dataset, scale] = GetParam();
    auto base = runBoth(Design::Baseline, dataset, scale, 16, 8);
    auto reb = runBoth(design, dataset, scale, 16, 8);

    // Envelope: model <= engine <= 2x model.
    EXPECT_LE(reb.prf.cycles, reb.cyc.cycles + 8);
    EXPECT_LE(reb.cyc.cycles, 2 * reb.prf.cycles);
    // Both fidelities: rebalancing does not lose to baseline (allow a
    // 10% noise band in the engine: on near-balanced workloads diversion
    // decisions on instantaneous queue depths add small jitter).
    EXPECT_LE(reb.cyc.cycles,
              static_cast<Cycle>(1.10 *
                                 static_cast<double>(base.cyc.cycles)));
    EXPECT_LE(reb.prf.cycles, base.prf.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CrossValidateRebalanced,
    ::testing::Combine(::testing::Values(Design::LocalA, Design::RemoteD),
                       ::testing::Values("cora", "pubmed"),
                       ::testing::Values(0.2)));

TEST(PerfModel, RebalancingHelpsSkewAtScale)
{
    // Full-scale Nell profile: baseline utilization must collapse (the
    // paper reports 13%) and Design(D) must recover most of it (77%).
    auto prof = loadProfile(findDataset("nell"), 1, 1.0);
    auto base = PerfModel(makeConfig(Design::Baseline, 1024)).runGcn(prof);
    auto d = PerfModel(makeConfig(Design::RemoteD, 1024, 2)).runGcn(prof);

    EXPECT_LT(base.utilization, 0.45);
    EXPECT_GT(d.utilization, 2.0 * base.utilization);
    EXPECT_LT(d.totalCycles, base.totalCycles / 2);
}

TEST(PerfModel, RedditAlreadyBalanced)
{
    auto prof = loadProfile(findDataset("reddit"), 1, 0.25);
    auto base = PerfModel(makeConfig(Design::Baseline, 1024)).runGcn(prof);
    auto d = PerfModel(makeConfig(Design::RemoteD, 1024)).runGcn(prof);
    EXPECT_GT(base.utilization, 0.7);
    double speedup = static_cast<double>(base.totalCycles) /
                     static_cast<double>(d.totalCycles);
    EXPECT_LT(speedup, 1.5);
}

TEST(PerfModel, FullScaleRedditRuns)
{
    auto prof = loadProfile(findDataset("reddit"), 1, 1.0);
    auto res = PerfModel(makeConfig(Design::RemoteD, 1024)).runGcn(prof);
    EXPECT_GT(res.totalTasks, Count(1000000000));  // ~6.6G per Table 2
    EXPECT_GT(res.totalCycles, 0);
    EXPECT_LE(res.utilization, 1.0);
}

TEST(PerfModel, PipelineNeverSlowerThanSerial)
{
    auto prof = loadProfile(findDataset("citeseer"), 2, 0.3);
    auto res = PerfModel(makeConfig(Design::RemoteC, 64)).runGcn(prof);
    EXPECT_LE(res.totalCycles, res.totalCyclesSerial);
}

TEST(AreaModel, TqDominatedByDepth)
{
    AccelConfig cfg = makeConfig(Design::Baseline, 64);
    auto small = estimateArea(cfg, 64);
    auto big = estimateArea(cfg, 65128);
    EXPECT_GT(big.tqClb, 100.0 * small.tqClb);
    EXPECT_DOUBLE_EQ(big.otherClb, small.otherClb);
}

TEST(AreaModel, RebalancingLogicOverheadSmall)
{
    auto base = estimateArea(makeConfig(Design::Baseline, 64), 100);
    auto d = estimateArea(makeConfig(Design::RemoteD, 64), 100);
    double frac = d.otherClb / base.otherClb;
    EXPECT_NEAR(frac, 1.0 + 0.043 + 0.019, 1e-9);
}

TEST(AreaModel, NetAreaCanShrinkWithRebalancing)
{
    // Paper: rebalancing REDUCES total area because the TQ savings dwarf
    // the logic overhead (Fig. 14 K-O).
    auto base = estimateArea(makeConfig(Design::Baseline, 64), 65128);
    auto d = estimateArea(makeConfig(Design::RemoteD, 64), 2675);
    EXPECT_LT(d.totalClb, base.totalClb);
}

TEST(EnergyModel, LatencyFromCycles)
{
    auto rep = evaluateEnergy(275000, 1000, 275.0);
    EXPECT_NEAR(rep.latencyMs, 1.0, 1e-9);
    EXPECT_GT(rep.energyJ, 0.0);
}

TEST(EnergyModel, FasterIsMoreEfficient)
{
    auto slow = evaluateEnergy(10000000, 1000000, 275.0);
    auto fast = evaluateEnergy(1000000, 1000000, 275.0);
    EXPECT_GT(fast.inferencesPerKj, slow.inferencesPerKj);
}

TEST(EnergyModel, FixedPowerPlatform)
{
    auto rep = evaluateFixedPower(10.0, 100.0);  // 10 ms at 100 W = 1 J
    EXPECT_NEAR(rep.energyJ, 1.0, 1e-12);
    EXPECT_NEAR(rep.inferencesPerKj, 1000.0, 1e-9);
}

TEST(Platforms, CpuMeasurementSane)
{
    auto ds = loadSyntheticByName("cora", 1, 0.1);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3);
    double ms = measureCpuLatencyMs(ds, model, 3);
    EXPECT_GT(ms, 0.0);
    EXPECT_LT(ms, 10000.0);
}

TEST(Platforms, AnalyticOrdering)
{
    // CPU slower than GPU; both far slower than what the accelerator's
    // cycle counts imply — the Table 3 ordering.
    auto prof = loadProfile(findDataset("pubmed"), 1, 1.0);
    auto ops = countOpsProfile(prof);
    double cpu = modelCpuLatencyMs(ops);
    double gpu = modelGpuLatencyMs(ops, 2);
    EXPECT_GT(cpu, gpu);

    auto accel = PerfModel(makeConfig(Design::RemoteD, 1024)).runGcn(prof);
    double accel_ms =
        evaluateEnergy(accel.totalCycles, accel.totalTasks, 275.0).latencyMs;
    EXPECT_GT(gpu, accel_ms);
}
