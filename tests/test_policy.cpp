/**
 * @file
 * Balance-policy layer tests: registry registration/lookup/alias/
 * duplicate-rejection semantics, near-miss suggestions, the enum↔policy
 * equivalence lock (the six paper design points run through the policy
 * registry must reproduce the enum-era numbers bit for bit — cycles,
 * rowsSwitched, convergedRound — on Cora and Citeseer at 512 PEs),
 * round-by-round RemoteSwitcher-vs-policy-wrapper trace equality, the
 * three non-paper policies end-to-end through the sweep engine in Model
 * and Cycle modes, and the AccelConfig::validate combination checks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "accel/gcn_accel.hpp"
#include "accel/perf_model.hpp"
#include "accel/policy.hpp"
#include "accel/rebalance.hpp"
#include "accel/row_map.hpp"
#include "driver/sweep.hpp"
#include "graph/datasets.hpp"

using namespace awb;

// ------------------------------------------------------------- registry

TEST(PolicyRegistry, PaperDesignsAndExtensionsAreRegistered)
{
    auto &reg = PolicyRegistry::instance();
    for (Design d : kAllDesigns) {
        const BalancePolicy *p = reg.find(designPolicyName(d));
        ASSERT_NE(p, nullptr) << designPolicyName(d);
        EXPECT_EQ(p->label, designName(d));
        EXPECT_FALSE(p->description.empty());
    }
    for (const char *name : {"degree-sorted", "work-steal", "rechunk"})
        EXPECT_NE(reg.find(name), nullptr) << name;
}

TEST(PolicyRegistry, AliasesResolveToCanonicalPolicies)
{
    auto &reg = PolicyRegistry::instance();
    EXPECT_EQ(reg.get("base").name, "baseline");
    EXPECT_EQ(reg.get("a").name, "local-a");
    EXPECT_EQ(reg.get("b").name, "local-b");
    EXPECT_EQ(reg.get("c").name, "remote-c");
    EXPECT_EQ(reg.get("d").name, "remote-d");
    EXPECT_EQ(reg.get("eie").name, "eie-like");
    EXPECT_EQ(reg.get("steal").name, "work-steal");
}

TEST(PolicyRegistry, RegistrationAndLookup)
{
    auto &reg = PolicyRegistry::instance();
    // The registry is process-wide; keep the test idempotent under
    // --gtest_repeat by registering only on the first run.
    if (reg.find("test-policy-registration") == nullptr) {
        std::size_t before = reg.all().size();
        BalancePolicy p;
        p.name = "test-policy-registration";
        p.label = "TestReg";
        p.description = "registered by the unit test";
        p.configure = [](AccelConfig &, int) {};
        reg.add(std::move(p));
        EXPECT_EQ(reg.all().size(), before + 1);
    }
    const BalancePolicy *found = reg.find("test-policy-registration");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->label, "TestReg");
    // A registered policy is immediately usable as a config.
    AccelConfig cfg = makePolicyConfig("test-policy-registration", 16);
    EXPECT_EQ(cfg.balancePolicy, "test-policy-registration");
    EXPECT_TRUE(cfg.validate().empty());
}

TEST(PolicyRegistryDeath, DuplicateNameIsRejected)
{
    BalancePolicy dup;
    dup.name = "baseline";
    EXPECT_EXIT(PolicyRegistry::instance().add(std::move(dup)),
                ::testing::ExitedWithCode(1), "duplicate policy name");
}

TEST(PolicyRegistryDeath, DuplicateAliasIsRejected)
{
    BalancePolicy dup;
    dup.name = "unique-enough-name";
    dup.aliases = {"eie"};  // taken by eie-like
    EXPECT_EXIT(PolicyRegistry::instance().add(std::move(dup)),
                ::testing::ExitedWithCode(1), "alias 'eie'");
}

TEST(PolicyRegistryDeath, UnknownPolicySuggestsNearMiss)
{
    EXPECT_EXIT(PolicyRegistry::instance().get("remote-dd"),
                ::testing::ExitedWithCode(1),
                "did you mean 'remote-d'");
    EXPECT_EXIT(makePolicyConfig("basline", 64),
                ::testing::ExitedWithCode(1), "did you mean 'baseline'");
}

TEST(PolicyConfig, MakeConfigIsAThinLookupOverTheRegistry)
{
    for (Design d : kAllDesigns) {
        for (int hop : {1, 2}) {
            AccelConfig via_enum = makeConfig(d, 64, hop);
            AccelConfig via_name =
                makePolicyConfig(designPolicyName(d), 64, hop);
            EXPECT_EQ(via_enum.balancePolicy, designPolicyName(d));
            EXPECT_EQ(via_enum.sharingHops, via_name.sharingHops);
            EXPECT_EQ(via_enum.remoteSwitching, via_name.remoteSwitching);
            EXPECT_EQ(via_enum.numQueuesPerPe, via_name.numQueuesPerPe);
            EXPECT_EQ(via_enum.balancePolicy, via_name.balancePolicy);
        }
    }
    // The EIE-like reference keeps its distinct modelled clock.
    EXPECT_EQ(policyClockMhz(makeConfig(Design::EieLike, 64)), 285.0);
    EXPECT_EQ(policyClockMhz(makeConfig(Design::RemoteD, 64)), 275.0);
}

// --------------------------------------------- validate() combinations

TEST(ConfigValidate, RejectsNonsensicalPolicyCombinations)
{
    AccelConfig cfg = makeConfig(Design::RemoteD, 64);
    EXPECT_TRUE(cfg.validate().empty());

    AccelConfig one_pe = cfg;
    one_pe.numPes = 1;
    EXPECT_NE(one_pe.validate().find("remote switching needs at least 2"),
              std::string::npos);

    AccelConfig wide = makeConfig(Design::LocalB, 8);
    wide.sharingHops = 8;
    EXPECT_NE(wide.validate().find("sharingHops must be smaller"),
              std::string::npos);
    wide.sharingHops = 7;
    EXPECT_TRUE(wide.validate().empty());

    AccelConfig approx = makeConfig(Design::LocalA, 64);
    approx.approximateEq5 = true;
    EXPECT_NE(approx.validate().find("approximateEq5"), std::string::npos);
    approx.remoteSwitching = true;
    EXPECT_TRUE(approx.validate().empty());

    AccelConfig unknown = makeConfig(Design::Baseline, 64);
    unknown.balancePolicy = "workstel";
    std::string err = unknown.validate();
    EXPECT_NE(err.find("unknown balance policy"), std::string::npos);
    EXPECT_NE(err.find("work-steal"), std::string::npos);  // near miss
}

// ------------------------------------- RemoteSwitcher trace equivalence

namespace {

/** Synthetic PESM observation: drain time proportional to home load. */
RoundObservation
observe(const RowPartition &part, const std::vector<Count> &row_work)
{
    RoundObservation obs;
    obs.peWork = part.workload(row_work);
    obs.drainCycle.resize(obs.peWork.size());
    for (std::size_t p = 0; p < obs.peWork.size(); ++p)
        obs.drainCycle[p] = obs.peWork[p];
    return obs;
}

} // namespace

TEST(PolicyWrapper, MatchesRemoteSwitcherRoundByRound)
{
    AccelConfig cfg = makeConfig(Design::RemoteC, 8);
    cfg.sharingHops = 0;  // drain == load, as in the switcher unit tests
    const Index rows = 64;
    std::vector<Count> work(static_cast<std::size_t>(rows), 1);
    for (int r = 0; r < 8; ++r) work[static_cast<std::size_t>(r)] = 20;

    RowPartition part_direct(rows, 8, RowMapPolicy::Blocked);
    RowPartition part_policy(rows, 8, RowMapPolicy::Blocked);
    RemoteSwitcher direct(cfg, rows);
    std::unique_ptr<RebalancePolicy> wrapped =
        makeRebalancePolicy(cfg, rows);

    for (int round = 0; round < 20; ++round) {
        int moved_direct = direct.observeAndAdjust(
            observe(part_direct, work), work, part_direct);
        int moved_policy = wrapped->observeAndAdjust(
            observe(part_policy, work), work, part_policy);
        ASSERT_EQ(moved_direct, moved_policy) << "round " << round;
        ASSERT_EQ(direct.converged(), wrapped->converged())
            << "round " << round;
        for (Index r = 0; r < rows; ++r)
            ASSERT_EQ(part_direct.owner(r), part_policy.owner(r))
                << "round " << round << " row " << r;
    }
    EXPECT_EQ(direct.convergedRound(), wrapped->convergedRound());
    EXPECT_EQ(direct.totalRowsMoved(), wrapped->totalRowsMoved());
}

TEST(PolicyWrapper, StaticDesignsGetTheNullRebalance)
{
    for (Design d : {Design::Baseline, Design::LocalA, Design::LocalB,
                     Design::EieLike}) {
        AccelConfig cfg = makeConfig(d, 8);
        auto rebalance = makeRebalancePolicy(cfg, 64);
        RowPartition part(64, 8, RowMapPolicy::Blocked);
        std::vector<Count> work(64, 1);
        EXPECT_EQ(rebalance->observeAndAdjust(observe(part, work), work,
                                              part),
                  0);
        EXPECT_FALSE(rebalance->converged());
        EXPECT_EQ(rebalance->convergedRound(), -1);
        EXPECT_EQ(rebalance->totalRowsMoved(), 0);
    }
}

// --------------------------------------- enum-era equivalence lock

namespace {

/**
 * The enum-era PerfModel::runSpmm, verbatim: RowPartition from
 * cfg.mapPolicy, a RemoteSwitcher driven only when cfg.remoteSwitching.
 * The policy-driven PerfModel must reproduce these numbers bit for bit.
 */
PerfSpmmResult
legacyRunSpmm(const AccelConfig &cfg, const std::vector<Count> &row_work,
              Index rounds, RowPartition &partition)
{
    const int P = cfg.numPes;
    PerfSpmmResult res;
    res.rounds = rounds;

    RemoteSwitcher switcher(cfg, partition.rows());
    res.perPeTasks.assign(static_cast<std::size_t>(P), 0);
    int log2p = 0;
    while ((1 << log2p) < P) ++log2p;
    const Cycle overhead = cfg.macLatency + log2p + 2;
    constexpr double kSharingInefficiency = 1.15;

    std::vector<Count> served;
    for (Index k = 0; k < rounds; ++k) {
        std::vector<Count> pe_work = partition.workload(row_work);
        Count total = std::accumulate(pe_work.begin(), pe_work.end(),
                                      Count(0));
        Cycle no_share = *std::max_element(pe_work.begin(), pe_work.end());
        Cycle drain =
            PerfModel::balancedDrain(pe_work, cfg.sharingHops, &served);
        if (cfg.sharingHops > 0) {
            drain = std::min(no_share,
                             static_cast<Cycle>(static_cast<double>(drain) *
                                                kSharingInefficiency));
        }
        Cycle inject = (total + P - 1) / P;
        Cycle round_cycles = std::max(drain, inject) + overhead;
        res.roundCycles.push_back(round_cycles);
        res.cycles += round_cycles;
        res.tasks += total;
        res.idealCycles += inject;

        for (int p = 0; p < P; ++p) {
            res.perPeTasks[static_cast<std::size_t>(p)] +=
                served[static_cast<std::size_t>(p)];
            Count backlog = served[static_cast<std::size_t>(p)] - inject;
            if (backlog > 0)
                res.peakQueueDepth = std::max(
                    res.peakQueueDepth, static_cast<std::size_t>(backlog));
        }

        if (cfg.remoteSwitching && k + 1 < rounds) {
            RoundObservation obs;
            obs.peWork = pe_work;
            obs.drainCycle.assign(served.begin(), served.end());
            switcher.observeAndAdjust(obs, row_work, partition);
        }
    }

    res.peakQueueDepth = std::max<std::size_t>(
        res.peakQueueDepth,
        static_cast<std::size_t>(cfg.numQueuesPerPe));
    res.syncCycles = std::max<Cycle>(0, res.cycles - res.idealCycles);
    res.utilization = res.cycles > 0
        ? static_cast<double>(res.tasks) /
          (static_cast<double>(P) * static_cast<double>(res.cycles))
        : 0.0;
    res.rowsSwitched = switcher.totalRowsMoved();
    res.convergedRound = switcher.convergedRound();
    return res;
}

/** The enum-era PerfModel::runGcn orchestration over legacyRunSpmm. */
struct LegacyGcnNumbers
{
    Cycle totalCycles = 0;
    Count totalTasks = 0;
    Count rowsSwitched = 0;
    Count convergedRound = -1;
};

LegacyGcnNumbers
legacyRunGcn(const AccelConfig &cfg, const WorkloadProfile &profile)
{
    const Index n = profile.spec.nodes;
    LegacyGcnNumbers out;
    RowPartition part_a(n, cfg.numPes, cfg.mapPolicy);
    const std::vector<Count> *x_rows[2] = {&profile.x1RowNnz,
                                           &profile.x2RowNnz};
    const Index rounds[2] = {profile.spec.f2, profile.spec.f3};
    for (int l = 0; l < 2; ++l) {
        RowPartition part_x(n, cfg.numPes, cfg.mapPolicy);
        PerfSpmmResult xw =
            legacyRunSpmm(cfg, *x_rows[l], rounds[l], part_x);
        PerfSpmmResult ax =
            legacyRunSpmm(cfg, profile.aRowNnz, rounds[l], part_a);
        out.totalCycles +=
            pipelineCycles(xw.roundCycles, ax.roundCycles);
        out.totalTasks += xw.tasks + ax.tasks;
        out.rowsSwitched += xw.rowsSwitched + ax.rowsSwitched;
        out.convergedRound = std::max(
            {out.convergedRound, xw.convergedRound, ax.convergedRound});
    }
    return out;
}

} // namespace

/**
 * The acceptance lock: all six paper design points, run through the
 * policy registry by the sweep engine, reproduce the enum-era sweep
 * numbers (cycles, rowsSwitched, convergedRound) exactly, per point, on
 * Cora and Citeseer at 512 PEs.
 */
TEST(EnumPolicyEquivalence, SweepMatchesEnumEraNumbersAt512Pes)
{
    driver::SweepOptions opts;
    opts.datasets = {"cora", "citeseer"};
    opts.designs = {"baseline", "local-a", "local-b",
                    "remote-c", "remote-d", "eie-like"};
    opts.peCounts = {512};
    opts.modes = {driver::SweepMode::Model};
    opts.seed = 7;

    auto points = driver::expandGrid(opts);
    auto outcomes = driver::runSweep(opts, points);
    ASSERT_EQ(outcomes.size(), 12u);

    for (const auto &o : outcomes) {
        ASSERT_TRUE(o.ok) << o.error;
        const DatasetSpec &spec = findDataset(o.point.dataset);
        WorkloadProfile prof =
            loadProfile(spec, o.point.seed, opts.scale);
        AccelConfig cfg =
            makePolicyConfig(o.point.policy, o.point.pes, hopBase(spec));
        LegacyGcnNumbers legacy = legacyRunGcn(cfg, prof);
        EXPECT_EQ(o.cycles, legacy.totalCycles)
            << o.point.dataset << " " << o.point.policy;
        EXPECT_EQ(o.tasks, legacy.totalTasks)
            << o.point.dataset << " " << o.point.policy;
        EXPECT_EQ(o.rowsSwitched, legacy.rowsSwitched)
            << o.point.dataset << " " << o.point.policy;
        EXPECT_EQ(o.convergedRound, legacy.convergedRound)
            << o.point.dataset << " " << o.point.policy;
    }

    // And the JSON document itself is stable: rendering the same
    // outcomes twice is byte-identical (no hidden nondeterminism in the
    // policy-name plumbing).
    std::string a = driver::sweepToJson(opts, outcomes).dump(2);
    std::string b = driver::sweepToJson(
                        opts, driver::runSweep(opts, points))
                        .dump(2);
    EXPECT_EQ(a, b);
}

// ------------------------------------------------- non-paper policies

TEST(DegreeSortedPartition, BalancesAtLeastAsWellAsBlocked)
{
    AccelConfig cfg = makePolicyConfig("degree-sorted", 8);
    const Index rows = 64;
    std::vector<Count> work(static_cast<std::size_t>(rows), 1);
    for (int r = 0; r < 8; ++r) work[static_cast<std::size_t>(r)] = 25;

    RowPartition lpt = makePartitionPolicy(cfg)->build(rows, work, cfg);
    EXPECT_TRUE(lpt.consistent());
    RowPartition blocked(rows, 8, RowMapPolicy::Blocked);

    auto spread = [&](const RowPartition &p) {
        auto w = p.workload(work);
        return *std::max_element(w.begin(), w.end());
    };
    EXPECT_LE(spread(lpt), spread(blocked));
    // The heavy block lands one-per-PE under LPT.
    auto w = lpt.workload(work);
    EXPECT_EQ(*std::max_element(w.begin(), w.end()),
              *std::min_element(w.begin(), w.end()));
}

TEST(WorkStealPolicy, ClosesTheGapAndConverges)
{
    AccelConfig cfg = makePolicyConfig("work-steal", 8);
    const Index rows = 64;
    std::vector<Count> work(static_cast<std::size_t>(rows), 1);
    for (int r = 0; r < 8; ++r) work[static_cast<std::size_t>(r)] = 20;
    RowPartition part(rows, 8, RowMapPolicy::Blocked);
    auto rebalance = makeRebalancePolicy(cfg, rows);

    auto gap = [&]() {
        auto w = part.workload(work);
        return *std::max_element(w.begin(), w.end()) -
               *std::min_element(w.begin(), w.end());
    };
    Count initial = gap();
    int rounds = 0;
    while (!rebalance->converged() && rounds < 40) {
        rebalance->observeAndAdjust(observe(part, work), work, part);
        ++rounds;
    }
    EXPECT_TRUE(rebalance->converged());
    EXPECT_GT(rebalance->convergedRound(), 0);
    EXPECT_GT(rebalance->totalRowsMoved(), 0);
    EXPECT_LT(gap(), initial / 2);
    EXPECT_TRUE(part.consistent());
}

TEST(RechunkPolicy, RebuildsContiguousChunksAndReachesAFixedPoint)
{
    AccelConfig cfg = makePolicyConfig("rechunk", 8);
    const Index rows = 64;
    std::vector<Count> work(static_cast<std::size_t>(rows), 1);
    for (int r = 0; r < 8; ++r) work[static_cast<std::size_t>(r)] = 20;
    RowPartition part(rows, 8, RowMapPolicy::Blocked);
    auto rebalance = makeRebalancePolicy(cfg, rows);

    auto max_load = [&]() {
        auto w = part.workload(work);
        return *std::max_element(w.begin(), w.end());
    };
    Count before = max_load();
    int moved_total = 0;
    for (int round = 0; round < 12 && !rebalance->converged(); ++round)
        moved_total +=
            rebalance->observeAndAdjust(observe(part, work), work, part);
    EXPECT_TRUE(rebalance->converged());
    EXPECT_GT(moved_total, 0);
    EXPECT_LT(max_load(), before);
    EXPECT_TRUE(part.consistent());
    // Chunks stay contiguous: owners are non-decreasing in row order.
    for (Index r = 1; r < rows; ++r)
        EXPECT_GE(part.owner(r), part.owner(r - 1));
}

TEST(Sweep, InvalidPolicyCombinationBecomesAPerPointErrorRow)
{
    // A grid point whose config fails the combination checks (remote
    // switching on a single PE) must produce an error row, not abort the
    // sweep; sibling points still run.
    driver::SweepOptions opts;
    opts.datasets = {"cora"};
    opts.designs = {"baseline", "remote-c"};
    opts.peCounts = {1, 32};
    opts.modes = {driver::SweepMode::Model};

    auto outcomes = driver::runSweep(opts);
    ASSERT_EQ(outcomes.size(), 4u);
    int failed = 0;
    for (const auto &o : outcomes) {
        if (o.ok) continue;
        ++failed;
        EXPECT_EQ(o.point.policy, "remote-c");
        EXPECT_EQ(o.point.pes, 1);
        EXPECT_NE(o.error.find("remote switching needs at least 2"),
                  std::string::npos);
    }
    EXPECT_EQ(failed, 1);
}

TEST(NewPolicies, RunEndToEndThroughTheSweepInBothFidelities)
{
    driver::SweepOptions opts;
    opts.datasets = {"cora"};
    opts.designs = {"degree-sorted", "work-steal", "rechunk"};
    opts.peCounts = {32};
    opts.modes = {driver::SweepMode::Model, driver::SweepMode::Cycle};
    opts.scale = 0.2;
    opts.seed = 11;

    auto outcomes = driver::runSweep(opts);
    ASSERT_EQ(outcomes.size(), 6u);
    for (const auto &o : outcomes) {
        ASSERT_TRUE(o.ok) << o.point.policy << " "
                          << driver::sweepModeName(o.point.mode) << ": "
                          << o.error;
        EXPECT_GT(o.cycles, 0);
        EXPECT_GT(o.tasks, 0);
    }
    // The rebalancing policies actually moved rows somewhere in the GCN.
    for (const auto &o : outcomes) {
        if (o.point.policy == "work-steal" ||
            o.point.policy == "rechunk") {
            EXPECT_GT(o.rowsSwitched, 0) << o.point.policy;
        }
    }
}

// --------------------------------------------- churn-safety properties

TEST(PolicyRegistry, DynamicExtensionPoliciesAreRegistered)
{
    auto &reg = PolicyRegistry::instance();
    for (const char *name :
         {"delta-greedy", "delta-threshold", "rescratch"}) {
        const BalancePolicy *p = reg.find(name);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_FALSE(p->description.empty());
        EXPECT_TRUE(p->rebalance != nullptr) << name;
    }
    EXPECT_EQ(reg.get("dgreedy").name, "delta-greedy");
    EXPECT_EQ(reg.get("dthresh").name, "delta-threshold");
    EXPECT_EQ(reg.get("scratch").name, "rescratch");
}

/**
 * Streaming safety (DESIGN.md §12): every registered policy must keep
 * the partition consistent — and conserve the workload total — when
 * the per-row work vector changes between observations, which is
 * exactly what churn does to the row-nnz profile. Static-workload
 * policies may ignore the deltas; none may corrupt the row map.
 */
TEST(PolicyChurnSafety, EveryPolicySurvivesChangingRowWork)
{
    const Index rows = 120;
    const int pes = 16;

    for (const BalancePolicy *spec : PolicyRegistry::instance().all()) {
        // Skip policies other test cases register dynamically; they
        // need not carry full configure/partition hooks.
        if (spec->name.rfind("test-", 0) == 0) continue;
        SCOPED_TRACE("policy " + spec->name);

        AccelConfig cfg = makePolicyConfig(spec->name, pes);
        Rng rng(0xd15ea5e);
        std::vector<Count> work(static_cast<std::size_t>(rows));
        for (auto &w : work) w = 1 + rng.nextIndex(30);

        RowPartition part =
            makePartitionPolicy(cfg)->build(rows, work, cfg);
        auto policy = makeRebalancePolicy(cfg, rows);
        ASSERT_TRUE(part.consistent());

        const Index hub = 7;
        for (int round = 0; round < 24; ++round) {
            SCOPED_TRACE("round " + std::to_string(round));
            // Churn-like mutation: a fattening hub row, random point
            // changes, and occasional whole-row deletions.
            work[hub] += 25;
            for (int k = 0; k < 8; ++k) {
                const auto r =
                    static_cast<std::size_t>(rng.nextIndex(rows));
                work[r] = rng.nextBool(0.2) ? 0 : 1 + rng.nextIndex(40);
            }
            const Count total =
                std::accumulate(work.begin(), work.end(), Count(0));

            RoundObservation obs;
            obs.peWork = part.workload(work);
            obs.drainCycle.assign(obs.peWork.begin(),
                                  obs.peWork.end());
            const int moved = policy->observeAndAdjust(obs, work, part);

            ASSERT_GE(moved, 0);
            ASSERT_TRUE(part.consistent());
            auto pw = part.workload(work);
            ASSERT_EQ(std::accumulate(pw.begin(), pw.end(), Count(0)),
                      total);
            ASSERT_GE(policy->totalRowsMoved(), 0);
        }
    }
}

TEST(PolicyChurnSafety, DeltaPoliciesReactOnlyToDeltas)
{
    const Index rows = 64;
    const int pes = 8;
    AccelConfig cfg = makePolicyConfig("delta-greedy", pes);
    std::vector<Count> work(static_cast<std::size_t>(rows), 10);

    RowPartition part = makePartitionPolicy(cfg)->build(rows, work, cfg);
    auto policy = makeRebalancePolicy(cfg, rows);

    auto observe = [&]() {
        RoundObservation obs;
        obs.peWork = part.workload(work);
        obs.drainCycle.assign(obs.peWork.begin(), obs.peWork.end());
        return policy->observeAndAdjust(obs, work, part);
    };

    EXPECT_EQ(observe(), 0);  // first observation only snapshots
    EXPECT_EQ(observe(), 0);  // no delta, nothing to react to

    // Fatten every row one PE owns: the policy sees the changed rows
    // and sheds work off the hot PE.
    const std::vector<Index> hot_rows = part.rowsOf(0);
    ASSERT_FALSE(hot_rows.empty());
    for (Index r : hot_rows) work[static_cast<std::size_t>(r)] += 200;
    EXPECT_GT(observe(), 0);
    EXPECT_TRUE(part.consistent());

    // rescratch rebuilds equal-work chunks from any skew, then goes
    // idle once the map is its own fixed point.
    AccelConfig rcfg = makePolicyConfig("rescratch", pes);
    RowPartition rpart =
        makePartitionPolicy(rcfg)->build(rows, work, rcfg);
    auto rescratch = makeRebalancePolicy(rcfg, rows);
    RoundObservation obs;
    obs.peWork = rpart.workload(work);
    obs.drainCycle.assign(obs.peWork.begin(), obs.peWork.end());
    const int first = rescratch->observeAndAdjust(obs, work, rpart);
    EXPECT_GT(first, 0);
    obs.peWork = rpart.workload(work);
    obs.drainCycle.assign(obs.peWork.begin(), obs.peWork.end());
    EXPECT_EQ(rescratch->observeAndAdjust(obs, work, rpart), 0);
    EXPECT_TRUE(rpart.consistent());
}
